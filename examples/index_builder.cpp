// Asynchronous index building (§1's first motivating example): when an
// app's schema gains an index, CloudKit must build it "in all CloudKit
// shards and locations, globally" — far too expensive to do inline with the
// schema-update request. This example defers the build through QuiCK as
// LOCAL work items (§6): one per cluster, enqueued directly into each
// cluster's top-level queue. The handler runs the real Record Layer
// OnlineIndexBuilder: the new index starts write-only, existing records
// are backfilled in batches, and only then does it become readable.
//
// Build & run:  ./build/examples/index_builder

#include <atomic>
#include <cstdio>
#include <mutex>
#include <set>

#include "fdb/retry.h"
#include "quick/consumer.h"
#include "quick/quick.h"
#include "reclayer/online_index_builder.h"

namespace {

quick::rl::RecordMetadata BaseSchema() {
  quick::rl::RecordMetadata meta(1);
  quick::rl::RecordTypeDef doc;
  doc.name = "Document";
  doc.fields = {{"id", quick::rl::FieldType::kInt64},
                {"title", quick::rl::FieldType::kString}};
  doc.primary_key_fields = {"id"};
  (void)meta.AddRecordType(std::move(doc));
  return meta;
}

quick::rl::RecordMetadata EvolvedSchema() {
  quick::rl::RecordMetadata meta = BaseSchema();
  quick::rl::IndexDef by_title;
  by_title.name = "by_title";
  by_title.record_types = {"Document"};
  by_title.fields = {"title"};
  (void)meta.AddIndex(std::move(by_title));
  return meta;
}

}  // namespace

int main() {
  using namespace quick;

  // Five clusters, as a miniature of CloudKit's hundreds; each holds a
  // shard of the app's public database records.
  fdb::ClusterSet clusters;
  std::vector<std::string> names;
  for (int i = 0; i < 5; ++i) {
    names.push_back("shard-" + std::to_string(i));
    clusters.AddCluster(names.back());
  }
  ck::CloudKitService cloudkit(&clusters, SystemClock::Default());
  core::Quick quick(&cloudkit);

  const rl::RecordMetadata base = BaseSchema();
  const rl::RecordMetadata evolved = EvolvedSchema();
  const tup::Subspace docs_subspace(tup::Tuple().AddString("docs"));

  // Seed documents on every cluster under the ORIGINAL schema.
  for (const std::string& name : names) {
    Status st = fdb::RunTransaction(clusters.Get(name),
                                    [&](fdb::Transaction& txn) {
      rl::RecordStore store(&txn, docs_subspace, &base);
      for (int i = 0; i < 100; ++i) {
        rl::Record r("Document");
        r.SetInt("id", i).SetString("title", "doc-" + std::to_string(i % 9));
        QUICK_RETURN_IF_ERROR(store.SaveRecord(r));
      }
      return Status::OK();
    });
    if (!st.ok()) return 1;
  }

  // The deferred job: run the online index build for this cluster.
  std::mutex mu;
  std::set<std::string> built_on;
  core::JobRegistry registry;
  registry.Register("build_index", [&](core::WorkContext& ctx) {
    fdb::Database* db = clusters.Get(ctx.db_id.user);  // ClusterDB names it
    if (db == nullptr) return Status::Permanent("cluster gone");
    rl::OnlineIndexBuilder builder(db, docs_subspace, &evolved,
                                   ctx.item.payload);
    QUICK_RETURN_IF_ERROR(builder.MarkWriteOnly());
    QUICK_RETURN_IF_ERROR(builder.Build());
    std::lock_guard<std::mutex> lock(mu);
    built_on.insert(ctx.db_id.user);
    std::printf("  [builder] '%s' built and readable on %s\n",
                ctx.item.payload.c_str(), ctx.db_id.user.c_str());
    return Status::OK();
  });

  // Schema update: fan out one local item per cluster.
  std::printf("[admin] schema gained index 'by_title'; deferring the build "
              "to QuiCK on %zu clusters\n", names.size());
  for (const std::string& name : names) {
    core::WorkItem item;
    item.job_type = "build_index";
    item.payload = "by_title";
    if (!quick.EnqueueLocal(name, item, 0).ok()) return 1;
  }

  // Shared consumer pool executes the builds.
  core::ConsumerConfig config;
  config.sequential = true;
  config.relaxed_reads_for_peek = false;
  core::Consumer consumer(&quick, names, &registry, config, "index-builder");
  for (int pass = 0; pass < 3; ++pass) {
    for (const std::string& name : names) {
      (void)consumer.RunOnePass(name);
    }
  }

  // Every cluster now answers index queries.
  int64_t matches = 0;
  for (const std::string& name : names) {
    Status st = fdb::RunTransaction(clusters.Get(name),
                                    [&](fdb::Transaction& txn) {
      rl::RecordStore store(&txn, docs_subspace, &evolved);
      auto entries = store.ScanIndex(
          "by_title", tup::Tuple().AddString("doc-3"));
      QUICK_RETURN_IF_ERROR(entries.status());
      matches += static_cast<int64_t>(entries->size());
      return Status::OK();
    });
    if (!st.ok()) {
      std::fprintf(stderr, "index query failed on %s: %s\n", name.c_str(),
                   st.ToString().c_str());
      return 1;
    }
  }

  std::printf("[query] by_title == \"doc-3\": %lld documents across the "
              "fleet\n", static_cast<long long>(matches));
  const bool ok = built_on.size() == names.size() && matches == 5 * 11;
  std::printf("%s: index built on %zu/%zu clusters\n",
              ok ? "SUCCESS" : "INCOMPLETE", built_on.size(), names.size());
  return ok ? 0 : 1;
}
