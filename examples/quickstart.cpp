// Quickstart: the smallest end-to-end QuiCK deployment.
//
//   1. Create FoundationDB clusters (simulated, in-process).
//   2. Stand up CloudKit and QuiCK over them.
//   3. Register a work-item handler.
//   4. Enqueue deferred work for a few tenants.
//   5. Run a consumer until everything is processed.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "quick/consumer.h"
#include "quick/quick.h"

int main() {
  using namespace quick;

  // 1. Two simulated FoundationDB clusters.
  fdb::ClusterSet clusters;
  clusters.AddCluster("us-east");
  clusters.AddCluster("us-west");

  // 2. CloudKit assigns each tenant database to a cluster; QuiCK stores
  //    each tenant's deferred work next to its data.
  ck::CloudKitService cloudkit(&clusters, SystemClock::Default());
  core::Quick quick(&cloudkit);

  // 3. One job type: pretend to send a push notification.
  core::JobRegistry registry;
  registry.Register("push_notification", [](core::WorkContext& ctx) {
    std::printf("  [worker] push to %s: \"%s\"\n",
                ctx.db_id.ToString().c_str(), ctx.item.payload.c_str());
    return Status::OK();
  });

  // 4. Enqueue work for three users of one app. Each user's items land in
  //    their own queue zone; QuiCK tracks non-empty queues via per-cluster
  //    top-level queues automatically.
  for (const char* user : {"alice", "bob", "carol"}) {
    const ck::DatabaseId db = ck::DatabaseId::Private("chat-app", user);
    for (int i = 1; i <= 2; ++i) {
      core::WorkItem item;
      item.job_type = "push_notification";
      item.payload = "message " + std::to_string(i) + " for " + user;
      auto id = quick.Enqueue(db, item, /*vesting_delay_millis=*/0);
      if (!id.ok()) {
        std::fprintf(stderr, "enqueue failed: %s\n",
                     id.status().ToString().c_str());
        return 1;
      }
    }
    auto pending = quick.PendingCount(db);
    std::printf("[client] %-6s has %lld queued items\n", user,
                static_cast<long long>(pending.value_or(-1)));
  }

  // 5. One consumer over both clusters, processing synchronously here so
  //    the example is deterministic (Start()/Stop() runs the same thing on
  //    real threads).
  core::ConsumerConfig config;
  config.dequeue_max = 4;
  config.sequential = true;
  config.relaxed_reads_for_peek = false;
  core::Consumer consumer(&quick, {"us-east", "us-west"}, &registry, config,
                          "quickstart-consumer");
  for (int pass = 0; pass < 3; ++pass) {
    for (const char* cluster : {"us-east", "us-west"}) {
      auto n = consumer.RunOnePass(cluster);
      if (!n.ok()) {
        std::fprintf(stderr, "consumer error: %s\n",
                     n.status().ToString().c_str());
        return 1;
      }
    }
  }

  std::printf("[stats] %s\n", consumer.stats().Summary().c_str());
  const long long processed = consumer.stats().items_processed.Value();
  std::printf("%s: processed %lld/6 items\n",
              processed == 6 ? "SUCCESS" : "INCOMPLETE", processed);
  return processed == 6 ? 0 : 1;
}
