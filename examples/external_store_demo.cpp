// External data stores (§6.1): work items that live OUTSIDE FoundationDB
// (here: a simulated eventually-consistent store standing in for
// Cassandra), while QuiCK keeps the top-level queue and pointer index in
// FDB. The enqueue writes the item externally first, then registers the
// pointer in an FDB transaction that — when the pointer already exists —
// is read-only but DECLARES a write conflict on the pointer-index key, so
// pointer garbage collection can never race an enqueue.
//
// Build & run:  ./build/examples/external_store_demo

#include <cstdio>

#include "external/external_queue.h"

int main() {
  using namespace quick;

  fdb::ClusterSet clusters;
  clusters.AddCluster("main");
  ck::CloudKitService cloudkit(&clusters, SystemClock::Default());

  // The external store: full-text index updates destined for a Solr-like
  // system are staged here.
  ext::SimExternalStore store;

  core::JobRegistry registry;
  int indexed = 0;
  registry.Register("solr_index_update", [&](core::WorkContext& ctx) {
    std::printf("  [solr] indexing doc %s for %s\n",
                ctx.item.payload.c_str(), ctx.db_id.ToString().c_str());
    ++indexed;
    return Status::OK();
  });

  ext::ExternalQueue::Options options;
  options.min_inactive_millis = 0;  // aggressive GC to show the re-check
  ext::ExternalQueue queue(&cloudkit, &store, &registry, options);

  // Three users update documents; the index updates are deferred.
  for (const char* user : {"erin", "frank", "grace"}) {
    const ck::DatabaseId db = ck::DatabaseId::Private("docs-app", user);
    auto id = queue.Enqueue(db, "solr_index_update",
                            std::string(user) + "-doc-1");
    if (!id.ok()) {
      std::fprintf(stderr, "enqueue failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
    std::printf("[client] %s staged an index update (external items: %zu)\n",
                user, store.TotalItems());
  }

  // The external-queue consumer: leases pointers in FDB, strong-reads the
  // external store, executes, deletes, and GCs pointers safely.
  for (int pass = 0; pass < 3; ++pass) {
    auto visited = queue.RunOnePass("main");
    if (!visited.ok()) return 1;
    if (*visited == 0) break;
  }

  std::printf(
      "\n[stats] processed=%lld pointers_deleted=%lld external_left=%zu\n",
      static_cast<long long>(queue.stats().items_processed.Value()),
      static_cast<long long>(queue.stats().pointers_deleted.Value()),
      store.TotalItems());
  const bool ok = indexed == 3 && store.TotalItems() == 0;
  std::printf("%s\n", ok ? "SUCCESS" : "INCOMPLETE");
  return ok ? 0 : 1;
}
