// Strict FIFO ordering with commit timestamps (§5 "future work", realized):
// some workloads — here, a per-user filesystem operations log à la iCloud
// Drive, where "create directory" must apply before "move file into it" —
// need strict ordering. Vesting times come from the enqueueing server's
// local clock, so clock skew between application servers can reorder the
// default (priority, vesting) view. A FIFO queue zone orders items by the
// FoundationDB commit version instead, which no clock can skew.
//
// Also demonstrates the QuickAdmin introspection API (§2 operations).
//
// Build & run:  ./build/examples/fifo_operations_log

#include <cstdio>

#include "cloudkit/queue_zone.h"
#include "fdb/retry.h"
#include "quick/admin.h"
#include "quick/quick.h"

int main() {
  using namespace quick;

  // A manual clock lets the example inject clock skew deterministically.
  ManualClock clock(1000000);
  fdb::Database::Options opts;
  opts.clock = &clock;
  fdb::ClusterSet clusters(opts);
  clusters.AddCluster("main");
  ck::CloudKitService cloudkit(&clusters, &clock);

  const ck::DatabaseId user = ck::DatabaseId::Private("drive-app", "erin");
  const ck::DatabaseRef db = cloudkit.OpenDatabase(user);
  const tup::Subspace ops_zone = db.ZoneSubspace("ops_log");

  // Three application servers enqueue operations for the same user; the
  // middle server's clock runs 30 seconds behind.
  struct OpRecord {
    const char* op;
    int64_t server_clock_skew_ms;
  };
  const OpRecord operations[] = {
      {"mkdir /photos", 0},
      {"put /photos/beach.jpg", -30000},  // skewed server
      {"move /photos/beach.jpg /photos/2026/", 0},
  };

  for (const OpRecord& rec : operations) {
    clock.AdvanceMillis(10);
    clock.AdvanceMillis(rec.server_clock_skew_ms);  // this server's view
    Status st = fdb::RunTransaction(db.cluster, [&](fdb::Transaction& txn) {
      ck::QueueZone zone(&txn, ops_zone, &clock, /*fifo=*/true);
      ck::QueuedItem item;
      item.job_type = "fs_op";
      item.payload = rec.op;
      return zone.Enqueue(item, 0).status();
    });
    clock.AdvanceMillis(-rec.server_clock_skew_ms);  // back to true time
    if (!st.ok()) return 1;
    std::printf("[server] enqueued \"%s\" (clock skew %+lld ms)\n", rec.op,
                static_cast<long long>(rec.server_clock_skew_ms));
  }

  // The vesting-ordered view is fooled by the skewed clock...
  Status st = fdb::RunTransaction(db.cluster, [&](fdb::Transaction& txn) {
    ck::QueueZone zone(&txn, ops_zone, &clock, /*fifo=*/true);
    auto by_vesting = zone.Peek(10);
    QUICK_RETURN_IF_ERROR(by_vesting.status());
    std::printf("\nvesting-time order (what local clocks claim):\n");
    for (const ck::QueuedItem& item : *by_vesting) {
      std::printf("  %s\n", item.payload.c_str());
    }
    // ...the commit-order view is not.
    auto fifo = zone.PeekFifo(10);
    QUICK_RETURN_IF_ERROR(fifo.status());
    std::printf("commit order (strict FIFO):\n");
    for (const ck::QueuedItem& item : *fifo) {
      std::printf("  %s\n", item.payload.c_str());
    }
    return Status::OK();
  });
  if (!st.ok()) return 1;

  // Apply the log in FIFO order: dequeue, apply, complete — atomically per
  // item, so the database-side effects are exactly-once (§5).
  std::printf("\napplying in commit order:\n");
  std::vector<std::string> applied;
  for (int i = 0; i < 3; ++i) {
    st = fdb::RunTransaction(db.cluster, [&](fdb::Transaction& txn) {
      ck::QueueZone zone(&txn, ops_zone, &clock, /*fifo=*/true);
      auto batch = zone.DequeueFifo(1, 1000);
      QUICK_RETURN_IF_ERROR(batch.status());
      if (batch->empty()) return Status::OK();
      const ck::LeasedItem& li = (*batch)[0];
      txn.Set(db.subspace.Pack(tup::Tuple().AddString("applied").AddInt(i)),
              li.item.payload);
      QUICK_RETURN_IF_ERROR(zone.Complete(li.item.id, li.lease_id));
      applied.push_back(li.item.payload);
      return Status::OK();
    });
    if (!st.ok()) return 1;
    if (!applied.empty() && applied.size() == static_cast<size_t>(i) + 1) {
      std::printf("  applied: %s\n", applied.back().c_str());
    }
  }

  const bool ok = applied.size() == 3 && applied[0] == "mkdir /photos" &&
                  applied[2].rfind("move", 0) == 0;
  std::printf("\n%s: operations applied in causal order despite a 30s "
              "clock skew\n", ok ? "SUCCESS" : "FAILURE");
  return ok ? 0 : 1;
}
