// Cross-device sync with version indexes (§5 points at the mechanism: "a
// similar mechanism [FoundationDB commit timestamps] is used to implement
// CloudKit sync"). A device holds a sync token — the versionstamp of the
// last change it saw — and fetches "everything that changed since" with one
// ordered scan of a VERSION index. Deletes are synced through a tombstone
// record so they appear in the change feed too.
//
// Build & run:  ./build/examples/record_sync

#include <cstdio>

#include "fdb/retry.h"
#include "fdb/cluster_set.h"
#include "reclayer/record_store.h"

namespace {

quick::rl::RecordMetadata NotesSchema() {
  quick::rl::RecordMetadata meta;
  quick::rl::RecordTypeDef note;
  note.name = "Note";
  note.fields = {{"id", quick::rl::FieldType::kString},
                 {"body", quick::rl::FieldType::kString},
                 {"deleted", quick::rl::FieldType::kBool}};
  note.primary_key_fields = {"id"};
  (void)meta.AddRecordType(std::move(note));

  quick::rl::IndexDef changes;
  changes.name = "changes";
  changes.kind = quick::rl::IndexKind::kVersion;  // last-modified order
  (void)meta.AddIndex(std::move(changes));
  return meta;
}

}  // namespace

int main() {
  using namespace quick;

  fdb::ClusterSet clusters;
  clusters.AddCluster("main");
  fdb::Database* db = clusters.Get("main");
  const rl::RecordMetadata meta = NotesSchema();
  const tup::Subspace subspace(tup::Tuple().AddString("notes"));

  auto save = [&](const std::string& id, const std::string& body,
                  bool deleted = false) {
    return fdb::RunTransaction(db, [&](fdb::Transaction& txn) {
      rl::RecordStore store(&txn, subspace, &meta);
      rl::Record r("Note");
      r.SetString("id", id).SetString("body", body).SetBool("deleted",
                                                            deleted);
      return store.SaveRecord(r);
    });
  };

  // Device A edits three notes while device B is offline.
  if (!save("groceries", "milk, eggs").ok()) return 1;
  if (!save("ideas", "reproduce QuiCK").ok()) return 1;
  if (!save("travel", "pack charger").ok()) return 1;

  // Device B's first sync: empty token, fetch everything, remember the
  // newest stamp as the next token.
  std::string token;
  auto sync = [&](const char* device) -> Result<int> {
    int fetched = 0;
    Status st = fdb::RunTransaction(db, [&](fdb::Transaction& txn) {
      rl::RecordStore store(&txn, subspace, &meta);
      auto entries = store.ScanVersionIndex(
          "changes",
          token.empty() ? std::nullopt : std::optional<std::string>(token));
      QUICK_RETURN_IF_ERROR(entries.status());
      fetched = 0;
      for (const rl::VersionIndexEntry& e : *entries) {
        QUICK_ASSIGN_OR_RETURN(std::optional<rl::Record> rec,
                               store.LoadByFullPrimaryKey(e.primary_key));
        if (!rec.has_value()) continue;
        const bool deleted = (*rec).GetBool("deleted").value_or(false);
        std::printf("  [%s] %s \"%s\"%s\n", device,
                    deleted ? "tombstone" : "changed",
                    (*rec).GetString("id").value().c_str(),
                    deleted ? ""
                            : (" -> " + (*rec).GetString("body").value())
                                  .c_str());
        token = e.versionstamp;  // entries arrive in commit order
        ++fetched;
      }
      return Status::OK();
    });
    if (!st.ok()) return st;
    return fetched;
  };

  std::printf("[device B] initial sync:\n");
  auto n = sync("B");
  if (!n.ok() || *n != 3) return 1;

  std::printf("[device B] nothing new:\n");
  n = sync("B");
  if (!n.ok() || *n != 0) return 1;
  std::printf("  [B] up to date\n");

  // Device A edits one note and tombstones another; B's incremental sync
  // fetches exactly those two, in commit order.
  if (!save("groceries", "milk, eggs, coffee").ok()) return 1;
  if (!save("travel", "", /*deleted=*/true).ok()) return 1;

  std::printf("[device B] incremental sync:\n");
  n = sync("B");
  if (!n.ok() || *n != 2) return 1;

  std::printf("SUCCESS: incremental sync fetched only the delta, in commit "
              "order\n");
  return 0;
}
