// Push-notification pipeline (the paper's running example, §1/§3): a
// client writes data and schedules a push notification *atomically* — the
// enqueue rides in the same FoundationDB transaction as the data write, so
// there are no spurious notifications for aborted writes and no lost
// notifications for committed ones. Delivery goes through a flaky
// simulated APNs; transient failures retry with exponential backoff,
// unregistered devices are permanent failures and are dropped.
//
// Build & run:  ./build/examples/push_notifications

#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>

#include "fdb/retry.h"
#include "quick/consumer.h"
#include "quick/quick.h"

namespace {

// A downstream push service that is throttled and occasionally down.
class SimulatedApns {
 public:
  quick::Status Deliver(const std::string& device, const std::string& body) {
    std::lock_guard<std::mutex> lock(mu_);
    if (device == "unregistered-device") {
      return quick::Status::Permanent("device token revoked");
    }
    // Fail the first two calls per device to exercise retries.
    if (++attempts_[device] <= 2) {
      return quick::Status::Unavailable("APNs throttled, retry later");
    }
    std::printf("  [apns] delivered to %-10s : %s\n", device.c_str(),
                body.c_str());
    ++delivered_;
    return quick::Status::OK();
  }

  int delivered() const { return delivered_; }

 private:
  std::mutex mu_;
  std::map<std::string, int> attempts_;
  std::atomic<int> delivered_{0};
};

}  // namespace

int main() {
  using namespace quick;

  fdb::ClusterSet clusters;
  clusters.AddCluster("main");
  ck::CloudKitService cloudkit(&clusters, SystemClock::Default());
  core::Quick quick(&cloudkit);

  SimulatedApns apns;
  core::JobRegistry registry;
  core::RetryPolicy policy;
  policy.max_inline_retries = 0;           // rely on requeue + backoff
  policy.backoff_initial_millis = 20;      // compressed for the demo
  policy.backoff_max_millis = 100;
  registry.Register(
      "push",
      [&apns](core::WorkContext& ctx) {
        // Payload: "<device>|<message>".
        const size_t sep = ctx.item.payload.find('|');
        return apns.Deliver(ctx.item.payload.substr(0, sep),
                            ctx.item.payload.substr(sep + 1));
      },
      policy);

  // Client request: save a message AND schedule its notification in one
  // transaction. If the data write aborted, no notification would exist.
  auto send_message = [&](const std::string& user, const std::string& device,
                          const std::string& text) {
    const ck::DatabaseId db_id = ck::DatabaseId::Private("chat-app", user);
    const ck::DatabaseRef db = cloudkit.OpenDatabase(db_id);
    core::EnqueueFollowUp follow_up;
    Status st = fdb::RunTransaction(db.cluster, [&](fdb::Transaction& txn) {
      // 1. The user-visible data write.
      txn.Set(db.subspace.Pack(tup::Tuple().AddString("msg").AddString(text)),
              text);
      // 2. The deferred notification, same transaction.
      core::WorkItem item;
      item.job_type = "push";
      item.payload = device + "|" + text;
      return quick.EnqueueInTransaction(&txn, db, item, 0, &follow_up)
          .status();
    });
    if (st.ok()) quick.ExecuteFollowUp(db, follow_up);
    std::printf("[client] %s wrote \"%s\" -> %s\n", user.c_str(), text.c_str(),
                st.ToString().c_str());
    return st;
  };

  (void)send_message("alice", "alice-phone", "lunch?");
  (void)send_message("bob", "bob-tablet", "on my way");
  (void)send_message("carol", "unregistered-device", "hello?");

  // Consumer loop: drive synchronously until the retries play out.
  core::ConsumerConfig config;
  config.dequeue_max = 4;
  config.sequential = true;
  config.relaxed_reads_for_peek = false;
  config.pointer_lease_millis = 20;
  config.item_lease_millis = 50;  // short leases so retries reappear fast
  core::Consumer consumer(&quick, {"main"}, &registry, config, "apns-worker");
  for (int pass = 0; pass < 200 && apns.delivered() < 2; ++pass) {
    (void)consumer.RunOnePass("main");
    SystemClock::Default()->SleepMillis(10);
  }

  core::ConsumerStats& s = consumer.stats();
  std::printf(
      "\n[stats] delivered=%d retried=%lld dropped_permanent=%lld\n",
      apns.delivered(), static_cast<long long>(s.items_requeued.Value()),
      static_cast<long long>(s.items_dropped_permanent.Value()));
  const bool ok = apns.delivered() == 2 &&
                  s.items_dropped_permanent.Value() == 1;
  std::printf("%s\n", ok ? "SUCCESS" : "INCOMPLETE");
  return ok ? 0 : 1;
}
