// Tenant migration (§6 "User-move and local work items"): CloudKit
// rebalances by moving logical databases between FoundationDB clusters,
// and any deferred work must follow the data. This example queues work for
// a user, moves the user mid-flight, and shows the destination's consumers
// executing the carried items while the source is left clean.
//
// Build & run:  ./build/examples/user_migration

#include <cstdio>

#include "control/balancer.h"
#include "fdb/retry.h"
#include "quick/admin.h"
#include "quick/consumer.h"
#include "quick/quick.h"

int main() {
  using namespace quick;

  fdb::ClusterSet clusters;
  clusters.AddCluster("eu-west");
  clusters.AddCluster("ap-east");
  ck::CloudKitService cloudkit(&clusters, SystemClock::Default());
  core::Quick quick(&cloudkit);

  std::vector<std::string> processed_on;
  core::JobRegistry registry;
  registry.Register("compact_backup", [&](core::WorkContext& ctx) {
    // Record which cluster's consumer ran the item (the zone lives where
    // the pointer was found).
    processed_on.push_back(ctx.item.payload);
    return Status::OK();
  });

  const ck::DatabaseId user = ck::DatabaseId::Private("backup-app", "dana");
  const std::string source = cloudkit.placement()->AssignOrGet(user);
  const std::string destination = source == "eu-west" ? "ap-east" : "eu-west";
  std::printf("[placement] dana lives on %s\n", source.c_str());

  // Queue three compaction tasks (deliberately delayed so they are still
  // queued when the move happens).
  for (int i = 1; i <= 3; ++i) {
    core::WorkItem item;
    item.job_type = "compact_backup";
    item.payload = "snapshot-" + std::to_string(i);
    auto id = quick.Enqueue(user, item, /*vesting_delay_millis=*/50);
    if (!id.ok()) return 1;
  }
  std::printf("[client] queued %lld tasks on %s\n",
              static_cast<long long>(quick.PendingCount(user).value_or(-1)),
              source.c_str());

  // Rebalance: move dana — data AND queued tasks — to the other cluster,
  // through the orchestrated state machine (copy -> catch-up -> fenced
  // flip). Raw CommitMove would refuse the flip with work still queued.
  control::TenantBalancer balancer(&quick);
  core::QuickAdmin admin(&quick);
  admin.SetMoveOrchestrator(&balancer);
  Status st = admin.MoveTenant(user, destination);
  std::printf("[move] %s -> %s : %s\n", source.c_str(), destination.c_str(),
              st.ToString().c_str());
  if (!st.ok()) return 1;
  std::printf("[move] source top-level queue: %lld entries, destination: "
              "%lld entries\n",
              static_cast<long long>(quick.TopLevelCount(source).value_or(-1)),
              static_cast<long long>(
                  quick.TopLevelCount(destination).value_or(-1)));

  // Consumers at both sites; only the destination finds dana's work.
  core::ConsumerConfig config;
  config.dequeue_max = 4;
  config.sequential = true;
  config.relaxed_reads_for_peek = false;
  core::Consumer src_consumer(&quick, {source}, &registry, config, "src");
  core::Consumer dst_consumer(&quick, {destination}, &registry, config, "dst");

  SystemClock::Default()->SleepMillis(60);  // let the items vest
  for (int pass = 0; pass < 3; ++pass) {
    (void)src_consumer.RunOnePass(source);
    (void)dst_consumer.RunOnePass(destination);
  }

  std::printf("[stats] source processed %lld, destination processed %lld\n",
              static_cast<long long>(
                  src_consumer.stats().items_processed.Value()),
              static_cast<long long>(
                  dst_consumer.stats().items_processed.Value()));
  const bool ok = dst_consumer.stats().items_processed.Value() == 3 &&
                  src_consumer.stats().items_processed.Value() == 0 &&
                  quick.PendingCount(user).value_or(-1) == 0;
  std::printf("%s\n", ok ? "SUCCESS" : "INCOMPLETE");
  return ok ? 0 : 1;
}
