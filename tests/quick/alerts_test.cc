#include "quick/alerts.h"

#include <gtest/gtest.h>

#include "quick/consumer.h"

namespace quick::core {
namespace {

class AlertsTest : public ::testing::Test {
 protected:
  AlertsTest() {
    fdb::Database::Options opts;
    opts.clock = &clock_;
    clusters_ = std::make_unique<fdb::ClusterSet>(opts);
    clusters_->AddCluster("c1");
    ck_ = std::make_unique<ck::CloudKitService>(clusters_.get(), &clock_);
    quick_ = std::make_unique<Quick>(ck_.get());
  }

  // Consumer is pinned (threads, atomics): construct in place and attach
  // the sink afterwards.
  ConsumerConfig TestConfig() {
    ConsumerConfig config;
    config.sequential = true;
    config.relaxed_reads_for_peek = false;
    return config;
  }

  std::string MustEnqueue(const std::string& type) {
    WorkItem item;
    item.job_type = type;
    auto id = quick_->Enqueue(ck::DatabaseId::Private("app", "u1"), item, 0);
    EXPECT_TRUE(id.ok());
    return id.value_or("");
  }

  ManualClock clock_{44000};
  std::unique_ptr<fdb::ClusterSet> clusters_;
  std::unique_ptr<ck::CloudKitService> ck_;
  std::unique_ptr<Quick> quick_;
  JobRegistry registry_;
  CollectingAlertSink sink_;
};

TEST_F(AlertsTest, PermanentFailureRaisesAlert) {
  RetryPolicy policy;
  policy.quarantine_on_failure = false;  // legacy delete path
  registry_.Register(
      "doomed",
      [](WorkContext&) { return Status::Permanent("user deleted"); }, policy);
  const std::string id = MustEnqueue("doomed");
  Consumer consumer(quick_.get(), {"c1"}, &registry_, TestConfig(), "a");
  consumer.SetAlertSink(&sink_);
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  auto alerts = sink_.Drain();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, Alert::Kind::kPermanentFailure);
  EXPECT_EQ(alerts[0].item_id, id);
  EXPECT_EQ(alerts[0].job_type, "doomed");
  EXPECT_NE(alerts[0].ToString().find("PERMANENT_FAILURE"),
            std::string::npos);
  EXPECT_NE(alerts[0].ToString().find("user deleted"), std::string::npos);
}

TEST_F(AlertsTest, UnknownJobTypeRaisesQuarantineAlert) {
  // Unknown types take the default policy, so they quarantine rather than
  // drop; the alert kind reflects the actual transition.
  MustEnqueue("mystery");
  Consumer consumer(quick_.get(), {"c1"}, &registry_, TestConfig(), "a");
  consumer.SetAlertSink(&sink_);
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  auto alerts = sink_.Drain();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, Alert::Kind::kQuarantined);
  EXPECT_NE(alerts[0].detail.find("unknown_job_type"), std::string::npos);
}

TEST_F(AlertsTest, RepeatedFailuresAlertAtThreshold) {
  RetryPolicy policy;
  policy.max_inline_retries = 0;
  policy.backoff_initial_millis = 10;
  policy.alert_after_errors = 2;
  registry_.Register(
      "flaky", [](WorkContext&) { return Status::Unavailable("down"); },
      policy);
  MustEnqueue("flaky");
  Consumer consumer(quick_.get(), {"c1"}, &registry_, TestConfig(), "a");
  consumer.SetAlertSink(&sink_);

  ASSERT_TRUE(consumer.RunOnePass("c1").ok());  // error_count -> 1: no alert
  EXPECT_EQ(sink_.Count(), 0u);

  clock_.AdvanceMillis(6000);  // past the pointer's lease-derived re-vest
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());  // error_count -> 2: alert
  auto alerts = sink_.Drain();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, Alert::Kind::kRepeatedFailures);
  EXPECT_EQ(alerts[0].error_count, 2);
}

TEST_F(AlertsTest, ExhaustionDropRaisesAlert) {
  RetryPolicy policy;
  policy.max_inline_retries = 0;
  policy.max_attempts = 1;
  policy.drop_on_exhaust = true;
  policy.quarantine_on_failure = false;  // legacy delete path
  registry_.Register(
      "hopeless", [](WorkContext&) { return Status::Unavailable("down"); },
      policy);
  const std::string id = MustEnqueue("hopeless");
  Consumer consumer(quick_.get(), {"c1"}, &registry_, TestConfig(), "a");
  consumer.SetAlertSink(&sink_);
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  auto alerts = sink_.Drain();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, Alert::Kind::kDroppedAfterExhaustion);
  EXPECT_EQ(alerts[0].item_id, id);
  EXPECT_EQ(alerts[0].job_type, "hopeless");
  EXPECT_EQ(alerts[0].error_count, 1);  // the single exhausted attempt
  EXPECT_NE(alerts[0].detail.find("down"), std::string::npos);
  EXPECT_NE(alerts[0].ToString().find("DROPPED_AFTER_EXHAUSTION"),
            std::string::npos);
}

TEST_F(AlertsTest, QuarantineAlertCarriesAttemptsAndReason) {
  RetryPolicy policy;
  policy.max_inline_retries = 0;
  policy.max_attempts = 2;
  policy.drop_on_exhaust = true;
  policy.backoff_initial_millis = 10;
  registry_.Register(
      "sick", [](WorkContext&) { return Status::Unavailable("db down"); },
      policy);
  const std::string id = MustEnqueue("sick");
  Consumer consumer(quick_.get(), {"c1"}, &registry_, TestConfig(), "a");
  consumer.SetAlertSink(&sink_);

  ASSERT_TRUE(consumer.RunOnePass("c1").ok());  // error_count -> 1, requeued
  EXPECT_EQ(sink_.Count(), 0u);
  clock_.AdvanceMillis(6000);
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());  // budget hit -> quarantined
  auto alerts = sink_.Drain();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, Alert::Kind::kQuarantined);
  EXPECT_EQ(alerts[0].item_id, id);
  EXPECT_EQ(alerts[0].job_type, "sick");
  EXPECT_EQ(alerts[0].error_count, 2);  // both attempts counted
  EXPECT_NE(alerts[0].detail.find("exhausted"), std::string::npos);
  EXPECT_NE(alerts[0].detail.find("db down"), std::string::npos);
  EXPECT_NE(alerts[0].ToString().find("QUARANTINED"), std::string::npos);
}

TEST_F(AlertsTest, NoSinkNoCrash) {
  registry_.Register("doomed", [](WorkContext&) {
    return Status::Permanent("x");
  });
  MustEnqueue("doomed");
  ConsumerConfig config;
  config.sequential = true;
  config.relaxed_reads_for_peek = false;
  Consumer consumer(quick_.get(), {"c1"}, &registry_, config, "no-sink");
  EXPECT_TRUE(consumer.RunOnePass("c1").ok());
}

TEST_F(AlertsTest, SuccessRaisesNothing) {
  registry_.Register("fine", [](WorkContext&) { return Status::OK(); });
  MustEnqueue("fine");
  Consumer consumer(quick_.get(), {"c1"}, &registry_, TestConfig(), "a");
  consumer.SetAlertSink(&sink_);
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_EQ(sink_.Count(), 0u);
}

TEST_F(AlertsTest, FullReportListsCounters) {
  registry_.Register("fine", [](WorkContext&) { return Status::OK(); });
  MustEnqueue("fine");
  Consumer consumer(quick_.get(), {"c1"}, &registry_, TestConfig(), "a");
  consumer.SetAlertSink(&sink_);
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  const std::string report = consumer.stats().FullReport();
  EXPECT_NE(report.find("items_processed = 1"), std::string::npos);
  EXPECT_NE(report.find("pointer_leases_acquired = 1"), std::string::npos);
  EXPECT_NE(report.find("pointer_latency_us :"), std::string::npos);
}

}  // namespace
}  // namespace quick::core
