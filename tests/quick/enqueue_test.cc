#include <gtest/gtest.h>

#include "fdb/retry.h"
#include "quick/quick.h"

namespace quick::core {
namespace {

class EnqueueTest : public ::testing::Test {
 protected:
  EnqueueTest() {
    fdb::Database::Options opts;
    opts.clock = &clock_;
    clusters_ = std::make_unique<fdb::ClusterSet>(opts);
    clusters_->AddCluster("c1");
    ck_ = std::make_unique<ck::CloudKitService>(clusters_.get(), &clock_);
    quick_ = std::make_unique<Quick>(ck_.get());
  }

  /// Loads the pointer for `db_id`'s queue zone, if any.
  std::optional<ck::QueuedItem> LoadPointer(const ck::DatabaseId& db_id) {
    const ck::DatabaseRef db = ck_->OpenDatabase(db_id);
    const ck::DatabaseRef cluster_db = ck_->OpenClusterDb(db.cluster->name());
    std::optional<ck::QueuedItem> out;
    Status st = fdb::RunTransaction(db.cluster, [&](fdb::Transaction& txn) {
      ck::QueueZone top = quick_->OpenTopZone(cluster_db, &txn);
      Pointer p{db_id, quick_->config().queue_zone_name};
      QUICK_ASSIGN_OR_RETURN(out, top.Load(p.Key()));
      return Status::OK();
    });
    EXPECT_TRUE(st.ok()) << st;
    return out;
  }

  ManualClock clock_{100000};
  std::unique_ptr<fdb::ClusterSet> clusters_;
  std::unique_ptr<ck::CloudKitService> ck_;
  std::unique_ptr<Quick> quick_;
};

TEST_F(EnqueueTest, EnqueueStoresItemAndCreatesPointer) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  WorkItem item;
  item.job_type = "push";
  item.payload = "hello";
  auto id = quick_->Enqueue(db, item, /*delay=*/0);
  ASSERT_TRUE(id.ok()) << id.status();

  EXPECT_EQ(quick_->PendingCount(db).value(), 1);
  std::optional<ck::QueuedItem> pointer = LoadPointer(db);
  ASSERT_TRUE(pointer.has_value());
  EXPECT_EQ(pointer->job_type, ck::kPointerJobType);
  EXPECT_EQ(pointer->vesting_time, clock_.NowMillis());
  EXPECT_EQ(quick_->TopLevelCount("c1").value(), 1);
}

TEST_F(EnqueueTest, SecondEnqueueReusesPointer) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  WorkItem item;
  item.job_type = "push";
  ASSERT_TRUE(quick_->Enqueue(db, item, 0).ok());
  ASSERT_TRUE(quick_->Enqueue(db, item, 0).ok());
  EXPECT_EQ(quick_->PendingCount(db).value(), 2);
  EXPECT_EQ(quick_->TopLevelCount("c1").value(), 1);  // still one pointer
}

TEST_F(EnqueueTest, DistinctTenantsGetDistinctPointers) {
  WorkItem item;
  item.job_type = "push";
  ASSERT_TRUE(quick_->Enqueue(ck::DatabaseId::Private("app", "u1"), item, 0).ok());
  ASSERT_TRUE(quick_->Enqueue(ck::DatabaseId::Private("app", "u2"), item, 0).ok());
  ASSERT_TRUE(quick_->Enqueue(ck::DatabaseId::Public("app"), item, 0).ok());
  EXPECT_EQ(quick_->TopLevelCount("c1").value(), 3);
}

TEST_F(EnqueueTest, DelayedItemDelaysNewPointer) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  WorkItem item;
  item.job_type = "push";
  ASSERT_TRUE(quick_->Enqueue(db, item, /*delay=*/5000).ok());
  std::optional<ck::QueuedItem> pointer = LoadPointer(db);
  ASSERT_TRUE(pointer.has_value());
  EXPECT_EQ(pointer->vesting_time, clock_.NowMillis() + 5000);
}

TEST_F(EnqueueTest, FollowUpLowersPointerVesting) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  WorkItem item;
  item.job_type = "push";
  // Pointer created vesting far in the future.
  ASSERT_TRUE(quick_->Enqueue(db, item, /*delay=*/60000).ok());
  ASSERT_EQ(LoadPointer(db)->vesting_time, clock_.NowMillis() + 60000);

  // A sooner item triggers part two: the pointer's vesting drops.
  ASSERT_TRUE(quick_->Enqueue(db, item, /*delay=*/1000).ok());
  EXPECT_EQ(LoadPointer(db)->vesting_time, clock_.NowMillis() + 1000);
}

TEST_F(EnqueueTest, FollowUpSkippedWithinSlack) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  WorkItem item;
  item.job_type = "push";
  ASSERT_TRUE(quick_->Enqueue(db, item, /*delay=*/1500).ok());
  const int64_t vesting_before = LoadPointer(db)->vesting_time;
  // New item vests 500ms sooner — within the 1s slack, not worth a write.
  ASSERT_TRUE(quick_->Enqueue(db, item, /*delay=*/1000).ok());
  EXPECT_EQ(LoadPointer(db)->vesting_time, vesting_before);
}

TEST_F(EnqueueTest, FollowUpSkippedWhenPointerLeased) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  WorkItem item;
  item.job_type = "push";
  ASSERT_TRUE(quick_->Enqueue(db, item, /*delay=*/60000).ok());

  // A consumer leases the pointer.
  const ck::DatabaseRef ref = ck_->OpenDatabase(db);
  const ck::DatabaseRef cluster_db = ck_->OpenClusterDb("c1");
  Pointer p{db, quick_->config().queue_zone_name};
  // First make the pointer vested so a lease is possible.
  ASSERT_TRUE(fdb::RunTransaction(ref.cluster, [&](fdb::Transaction& txn) {
                ck::QueueZone top = quick_->OpenTopZone(cluster_db, &txn);
                return top.Requeue(p.Key(), 0, false);
              }).ok());
  std::string lease;
  ASSERT_TRUE(fdb::RunTransaction(ref.cluster, [&](fdb::Transaction& txn) {
                ck::QueueZone top = quick_->OpenTopZone(cluster_db, &txn);
                auto l = top.ObtainLease(p.Key(), 10000);
                QUICK_RETURN_IF_ERROR(l.status());
                lease = *l;
                return Status::OK();
              }).ok());
  const int64_t leased_vesting = LoadPointer(db)->vesting_time;

  // The follow-up must not clobber the lease.
  ASSERT_TRUE(quick_->Enqueue(db, item, /*delay=*/0).ok());
  EXPECT_EQ(LoadPointer(db)->vesting_time, leased_vesting);
  EXPECT_EQ(LoadPointer(db)->lease_id, lease);
}

TEST_F(EnqueueTest, EnqueueAtomicWithClientWrites) {
  const ck::DatabaseId db_id = ck::DatabaseId::Private("app", "u1");
  const ck::DatabaseRef db = ck_->OpenDatabase(db_id);
  // Client transaction: write user data + enqueue, atomically.
  Status st = fdb::RunTransaction(db.cluster, [&](fdb::Transaction& txn) {
    txn.Set(db.subspace.Pack(tup::Tuple().AddString("doc1")), "contents");
    WorkItem item;
    item.job_type = "index_update";
    EnqueueFollowUp follow_up;
    return quick_->EnqueueInTransaction(&txn, db, item, 0, &follow_up)
        .status();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(quick_->PendingCount(db_id).value(), 1);

  // An aborted client transaction leaves no queued item behind.
  fdb::Transaction txn = db.cluster->CreateTransaction();
  {
    // Read a key another transaction will clobber -> guaranteed conflict.
    ASSERT_TRUE(txn.Get("conflict_key").ok());
    WorkItem item;
    item.job_type = "index_update";
    EnqueueFollowUp follow_up;
    ASSERT_TRUE(
        quick_->EnqueueInTransaction(&txn, db, item, 0, &follow_up).ok());
  }
  ASSERT_TRUE(fdb::RunTransaction(db.cluster, [&](fdb::Transaction& t2) {
                t2.Set("conflict_key", "x");
                return Status::OK();
              }).ok());
  ASSERT_TRUE(txn.Commit().IsNotCommitted());
  EXPECT_EQ(quick_->PendingCount(db_id).value(), 1);  // unchanged
}

TEST_F(EnqueueTest, ConcurrentEnqueuesSameTenantBothCommitWhenPointerExists) {
  const ck::DatabaseId db_id = ck::DatabaseId::Private("app", "u1");
  WorkItem item;
  item.job_type = "push";
  ASSERT_TRUE(quick_->Enqueue(db_id, item, 0).ok());  // pointer now exists

  // Two interleaved enqueues: both read the (existing) pointer-index entry
  // and write distinct item keys — no conflict.
  const ck::DatabaseRef db = ck_->OpenDatabase(db_id);
  fdb::Transaction t1 = db.cluster->CreateTransaction();
  fdb::Transaction t2 = db.cluster->CreateTransaction();
  EnqueueFollowUp f1, f2;
  ASSERT_TRUE(quick_->EnqueueInTransaction(&t1, db, item, 0, &f1).ok());
  ASSERT_TRUE(quick_->EnqueueInTransaction(&t2, db, item, 0, &f2).ok());
  EXPECT_TRUE(t1.Commit().ok());
  EXPECT_TRUE(t2.Commit().ok());
  EXPECT_TRUE(f1.pointer_existed);
  EXPECT_TRUE(f2.pointer_existed);
  EXPECT_EQ(quick_->PendingCount(db_id).value(), 3);
}

TEST_F(EnqueueTest, ConcurrentPointerCreationsConflict) {
  // Both transactions see no pointer and try to create it; the pointer
  // index forces one to abort (§6 "Correctness").
  const ck::DatabaseId db_id = ck::DatabaseId::Private("app", "fresh");
  const ck::DatabaseRef db = ck_->OpenDatabase(db_id);
  WorkItem item;
  item.job_type = "push";
  fdb::Transaction t1 = db.cluster->CreateTransaction();
  fdb::Transaction t2 = db.cluster->CreateTransaction();
  EnqueueFollowUp f1, f2;
  ASSERT_TRUE(quick_->EnqueueInTransaction(&t1, db, item, 0, &f1).ok());
  ASSERT_TRUE(quick_->EnqueueInTransaction(&t2, db, item, 0, &f2).ok());
  EXPECT_FALSE(f1.pointer_existed);
  EXPECT_FALSE(f2.pointer_existed);
  const bool c1 = t1.Commit().ok();
  const bool c2 = t2.Commit().ok();
  EXPECT_TRUE(c1 != c2) << "exactly one pointer creation must win";
  EXPECT_EQ(quick_->TopLevelCount("c1").value(), 1);
}

TEST_F(EnqueueTest, LocalItemGoesStraightToTopQueue) {
  WorkItem item;
  item.job_type = "reindex_all";
  item.payload = "shard-7";
  auto id = quick_->EnqueueLocal("c1", item, 0);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(quick_->TopLevelCount("c1").value(), 1);
  EXPECT_FALSE(quick_->EnqueueLocal("ghost", item, 0).ok());
}

TEST_F(EnqueueTest, ClientProvidedIdIsRespected) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  WorkItem item;
  item.job_type = "push";
  item.id = "idempotent-123";
  auto id = quick_->Enqueue(db, item, 0);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, "idempotent-123");
  // Same id again: overwrites, not duplicates.
  ASSERT_TRUE(quick_->Enqueue(db, item, 0).ok());
  EXPECT_EQ(quick_->PendingCount(db).value(), 1);
}

}  // namespace
}  // namespace quick::core
