// Multi-consumer crash/takeover chaos suite (§5 fault tolerance): two
// consumers share two clusters; one "crashes" mid-lease (its process
// freezes, abandoning pointer and item leases), then a scheduled
// full-cluster outage hits one cluster. Verified, per seed:
//   - the survivor recovers every abandoned pointer and item lease after
//     expiry, and every enqueued item executes at least once;
//   - the survivor's circuit breaker opens during the outage (alert +
//     breaker metrics + scans skipped) and it keeps draining the healthy
//     cluster meanwhile;
//   - after the outage the breaker's half-open probes close it again
//     (alert), the backlog drains, and pointer GC leaves both top-level
//     queues empty.
// Everything runs synchronously on a ManualClock, so each seed is
// deterministic.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "common/metrics.h"
#include "common/random.h"
#include "fdb/cluster_set.h"
#include "fdb/fault_plan.h"
#include "quick/consumer.h"

namespace quick::core {
namespace {

class CrashChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashChaosTest, SurvivorRecoversAbandonedLeasesUnderOutage) {
  const uint64_t seed = GetParam();
  constexpr int64_t kT0 = 1000000;
  constexpr int64_t kOutageStart = kT0 + 30000;
  constexpr int64_t kOutageEnd = kT0 + 90000;
  ManualClock clock(kT0);

  fdb::Database::Options base;
  base.clock = &clock;
  base.faults.seed = seed;
  fdb::ClusterSet clusters(base);
  fdb::Database::Options c1_opts = base;
  c1_opts.fault_plan.Add(fdb::FaultWindow::Outage(kOutageStart, kOutageEnd));
  clusters.AddCluster("c1", c1_opts);
  clusters.AddCluster("c2");
  ck::CloudKitService cloudkit(&clusters, &clock);
  Quick quick(&cloudkit);

  // Pin tenants deterministically: even tenants on the cluster that will
  // suffer the outage, odd tenants on the healthy one.
  constexpr int kTenants = 8;
  auto tenant = [&](int i) {
    return ck::DatabaseId::Private("crash-app", "user" + std::to_string(i));
  };
  for (int i = 0; i < kTenants; ++i) {
    cloudkit.placement()->Set(tenant(i), i % 2 == 0 ? "c1" : "c2");
  }

  ConsumerConfig config;
  config.sequential = true;
  config.relaxed_reads_for_peek = false;
  config.dequeue_max = 3;
  config.pointer_lease_millis = 500;
  config.item_lease_millis = 1000;
  config.min_inactive_millis = 2000;
  config.breaker.failure_threshold = 3;
  config.breaker.success_threshold = 2;
  config.breaker.open_initial_millis = 2000;
  config.breaker.open_max_millis = 16000;

  // Consumer A dies from inside its own handler on the third execution —
  // mid-batch, holding a pointer lease and item leases.
  std::set<std::string> executed;
  std::set<std::string> executed_by_b;
  Consumer* a_ptr = nullptr;
  int a_runs = 0;
  JobRegistry registry_a;
  registry_a.Register("crash", [&](WorkContext& ctx) {
    executed.insert(ctx.item.id);
    if (++a_runs == 3) a_ptr->SimulateCrash();
    return Status::OK();
  });
  JobRegistry registry_b;
  registry_b.Register("crash", [&](WorkContext& ctx) {
    executed.insert(ctx.item.id);
    executed_by_b.insert(ctx.item.id);
    return Status::OK();
  });

  Consumer a(&quick, {"c1", "c2"}, &registry_a, config, "consumer-a");
  a_ptr = &a;
  Consumer b(&quick, {"c1", "c2"}, &registry_b, config, "consumer-b");
  CollectingAlertSink sink_b;
  b.SetAlertSink(&sink_b);

  // Breaker metrics live in the process-wide registry; assert on deltas.
  MetricsRegistry* metrics = MetricsRegistry::Default();
  const int64_t opened_before =
      metrics->GetCounter("quick.breaker.c1.opened")->Value();
  const int64_t reopened_before =
      metrics->GetCounter("quick.breaker.c1.reopened")->Value();
  const int64_t closed_before =
      metrics->GetCounter("quick.breaker.c1.closed")->Value();

  // --- Phase 1: enqueue work for tenants on both clusters. ---
  Random rng(seed);
  std::set<std::string> enqueued;
  std::map<std::string, std::string> item_cluster;
  for (int i = 0; i < 24; ++i) {
    const int t = static_cast<int>(rng.Uniform(kTenants));
    WorkItem item;
    item.job_type = "crash";
    auto id = quick.Enqueue(tenant(t), item, 0);
    ASSERT_TRUE(id.ok()) << id.status();
    enqueued.insert(*id);
    item_cluster[*id] = t % 2 == 0 ? "c1" : "c2";
  }
  ASSERT_GT(quick.TopLevelCount("c1").value_or(0), 0);
  ASSERT_GT(quick.TopLevelCount("c2").value_or(0), 0);

  // --- Phase 2: drive A until its handler kills it mid-lease. ---
  for (int round = 0; round < 50 && !a.crashed(); ++round) {
    (void)a.RunOnePass("c1");
    (void)a.RunOnePass("c2");
    clock.AdvanceMillis(50);
  }
  ASSERT_TRUE(a.crashed());
  ASSERT_LT(executed.size(), enqueued.size()) << "no work left to abandon";
  // A is frozen: further passes execute nothing.
  const size_t executed_at_crash = executed.size();
  (void)a.RunOnePass("c1");
  (void)a.RunOnePass("c2");
  EXPECT_EQ(executed.size(), executed_at_crash);

  // --- Phase 3: the outage hits c1 while B is taking over. ---
  ASSERT_LT(clock.NowMillis(), kOutageStart);
  clock.AdvanceMillis(kOutageStart + 10 - clock.NowMillis());
  for (int i = 0;
       i < 10 && b.health().StateOf("c1") != CircuitBreaker::State::kOpen;
       ++i) {
    (void)b.RunOnePass("c1");  // peeks fail kUnavailable; breaker counts them
  }
  EXPECT_EQ(b.health().StateOf("c1"), CircuitBreaker::State::kOpen);
  EXPECT_GT(metrics->GetCounter("quick.breaker.c1.opened")->Value(),
            opened_before);
  bool saw_opened_alert = false;
  for (const Alert& alert : sink_b.Drain()) {
    if (alert.kind == Alert::Kind::kBreakerOpened && alert.cluster == "c1") {
      saw_opened_alert = true;
    }
  }
  EXPECT_TRUE(saw_opened_alert);

  // Open breaker: scans of c1 are skipped without touching the cluster.
  const int64_t skipped_before = b.stats().scans_skipped_breaker.Value();
  (void)b.RunOnePass("c1");
  EXPECT_GT(b.stats().scans_skipped_breaker.Value(), skipped_before);

  // B keeps serving the healthy cluster through the outage; half-open
  // probes against c1 fail and reopen the breaker with growing backoff.
  for (int round = 0; round < 40; ++round) {
    clock.AdvanceMillis(300);  // stays well inside the 60s outage window
    (void)b.RunOnePass("c1");
    (void)b.RunOnePass("c2");
  }
  ASSERT_LT(clock.NowMillis(), kOutageEnd);
  for (const auto& [id, cluster] : item_cluster) {
    if (cluster == "c2") {
      EXPECT_TRUE(executed.count(id))
          << "healthy-cluster item " << id << " starved during the outage";
    }
  }
  EXPECT_GT(metrics->GetCounter("quick.breaker.c1.reopened")->Value(),
            reopened_before);
  EXPECT_EQ(b.health().StateOf("c1"), CircuitBreaker::State::kOpen);

  // --- Phase 4: cluster recovers; probes close the breaker. ---
  clock.AdvanceMillis(kOutageEnd + config.breaker.open_max_millis + 10 -
                      clock.NowMillis());
  for (int i = 0;
       i < 10 && b.health().StateOf("c1") != CircuitBreaker::State::kClosed;
       ++i) {
    (void)b.RunOnePass("c1");
  }
  EXPECT_EQ(b.health().StateOf("c1"), CircuitBreaker::State::kClosed);
  EXPECT_GT(metrics->GetCounter("quick.breaker.c1.closed")->Value(),
            closed_before);
  bool saw_closed_alert = false;
  for (const Alert& alert : sink_b.Drain()) {
    if (alert.kind == Alert::Kind::kBreakerClosed && alert.cluster == "c1") {
      saw_closed_alert = true;
    }
  }
  EXPECT_TRUE(saw_closed_alert);

  // --- Phase 5: full drain — at-least-once across the crash + outage. ---
  auto all_executed = [&] {
    for (const std::string& id : enqueued) {
      if (!executed.count(id)) return false;
    }
    return true;
  };
  for (int round = 0; round < 300 && !all_executed(); ++round) {
    clock.AdvanceMillis(400);
    (void)b.RunOnePass("c1");
    (void)b.RunOnePass("c2");
  }
  for (const std::string& id : enqueued) {
    EXPECT_TRUE(executed.count(id)) << "item " << id << " never executed";
  }
  EXPECT_FALSE(executed_by_b.empty());  // the survivor did the recovery

  // --- Phase 6: pointer GC drains the top-level queues completely. ---
  for (int round = 0; round < 30; ++round) {
    clock.AdvanceMillis(1000);
    (void)b.RunOnePass("c1");
    (void)b.RunOnePass("c2");
  }
  EXPECT_EQ(quick.TopLevelCount("c1").value_or(-1), 0);
  EXPECT_EQ(quick.TopLevelCount("c2").value_or(-1), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashChaosTest,
                         ::testing::Values(1, 7, 42, 1234, 20260705));

}  // namespace
}  // namespace quick::core
