// Multi-seed region-failover chaos: a replicated single-cluster
// deployment (primary + 2 warm standbys) takes enqueues and consumer
// passes while regions die and fail over repeatedly — a clean region
// kill, a partitioned zombie primary that keeps taking traffic while
// fenced, and a flip back. After every storm the ledger must balance:
// each client-confirmed enqueue ends executed or dead-lettered (never
// both, never lost), the zombie's unacknowledged commits die with its
// region (their clients only ever saw kCommitUnknownResult), and the
// queues drain to zero on the promoted primary.
//
// Component-level failover mechanics (fencing, shipping, divergence
// halts, promotion refusal) live in fdb_replication_test; this suite
// pins the end-to-end queue-system accounting invariant across flips.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fdb/database.h"
#include "quick/admin.h"
#include "quick/alerts.h"
#include "quick/consumer.h"
#include "workload/harness.h"

namespace quick::wl {
namespace {

std::string MakeTempDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "quick_failover_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

class FailoverChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FailoverChaosTest, LedgerBalancesAcrossRegionFlips) {
  const uint64_t seed = GetParam();
  constexpr int kTenants = 3;
  constexpr const char* kCluster = "cluster0";

  core::CollectingAlertSink alerts;
  HarnessOptions hopts;
  hopts.num_clusters = 1;
  hopts.work_millis = 0;
  hopts.pointer_vesting_slack_millis = 0;
  hopts.enable_wal = true;
  hopts.wal_dir = MakeTempDir("seed" + std::to_string(seed));
  hopts.replicas_per_cluster = 2;
  hopts.replication_pump_interval_millis = 1;
  hopts.alert_sink = &alerts;
  hopts.seed = seed;
  Harness harness(hopts);

  std::set<std::string> executed;
  std::mutex executed_mu;
  harness.registry()->Register("track", [&](core::WorkContext& ctx) {
    std::lock_guard<std::mutex> lock(executed_mu);
    executed.insert(ctx.item.id);
    return Status::OK();
  });
  harness.registry()->Register("poison", [&](core::WorkContext&) {
    return Status::Permanent("poison handler bug");
  });

  core::ConsumerConfig config;
  config.sequential = true;
  config.relaxed_reads_for_peek = false;
  config.dequeue_max = 2;
  config.pointer_lease_millis = 200;
  config.item_lease_millis = 200;
  auto consumer = harness.MakeConsumer(config, "chaos-consumer");

  std::set<std::string> confirmed;
  // Seed-varied traffic: which steps carry poison and how the storm's
  // step counts skew differ per seed without changing the invariant.
  auto pump_traffic = [&](int steps) {
    for (int step = 0; step < steps; ++step) {
      core::WorkItem item;
      item.job_type = (step + static_cast<int>(seed)) % 7 == 0 ? "poison"
                                                               : "track";
      auto id =
          harness.quick()->Enqueue(harness.ClientDb(step % kTenants), item);
      ASSERT_TRUE(id.ok()) << id.status();
      confirmed.insert(*id);
      if (step % 3 == 0) (void)consumer->RunOnePass(kCluster);
    }
  };
  // Client traffic still hitting a dead or fenced region: raw commits on
  // the region's cached Database pointer, which must fail with
  // kUnavailable (dead) or kCommitUnknownResult (fenced zombie) — never
  // confirm — so the ledger owes them nothing. Raw transactions skip the
  // enqueue path's 25-attempt backoff loop, which would otherwise spend
  // ~18s per call retrying into a region that can never answer.
  auto pump_doomed = [&](fdb::Database* region, int writes) {
    int64_t unknown = 0, unavailable = 0;
    for (int i = 0; i < writes; ++i) {
      fdb::Transaction t = region->CreateTransaction();
      t.Set("doomed" + std::to_string(i), "w");
      const StatusCode code = t.Commit().code();
      unknown += code == StatusCode::kCommitUnknownResult;
      unavailable += code == StatusCode::kUnavailable;
    }
    EXPECT_EQ(unknown + unavailable, writes)
        << "a doomed region confirmed a commit (seed " << seed << ")";
    return unknown;
  };

  // --- Storm: three region flips with traffic throughout. ---
  pump_traffic(30 + static_cast<int>(seed % 5));

  // Flip 1: the primary region dies outright; failover drains its durable
  // store and promotes the most caught-up standby.
  fdb::ReplicationGroup* group = harness.replication(kCluster);
  ASSERT_NE(group, nullptr);
  fdb::Database* dead_primary = group->primary();
  harness.KillRegion(kCluster);
  pump_doomed(dead_primary, 5);
  auto flip1 = harness.Failover(kCluster);
  ASSERT_TRUE(flip1.ok()) << flip1.status();
  pump_traffic(25);

  // Flip 2: the new primary is partitioned from the control plane but
  // keeps taking traffic — the zombie scenario. Every commit it accepts
  // is applied on its disk but demoted to kCommitUnknownResult (acks
  // withheld), never shipped, and dies with the region at failover.
  const std::string zombie_region = group->primary_region();
  fdb::Database* zombie = group->primary();
  group->SetControlPartitioned(zombie_region, true);
  EXPECT_GT(pump_doomed(zombie, 10), 0)
      << "the partitioned zombie stopped taking traffic (seed " << seed
      << ")";
  auto flip2 = harness.Failover(kCluster);
  ASSERT_TRUE(flip2.ok()) << flip2.status();
  ASSERT_NE(*flip2, zombie_region);
  pump_doomed(zombie, 5);  // stale clients still hit the old pointer
  group->SetControlPartitioned(zombie_region, false);
  ASSERT_TRUE(group->RejoinAsFollower(zombie_region).ok());
  pump_traffic(20);

  // Flip 3: one more clean flip, proving the group survives repeated
  // failovers (the rejoined region is a promotion candidate again).
  harness.KillRegion(kCluster);
  auto flip3 = harness.Failover(kCluster);
  ASSERT_TRUE(flip3.ok()) << flip3.status();
  pump_traffic(15);

  EXPECT_GT(confirmed.size(), 0u) << "storm confirmed no traffic at all";

  // --- Drain: leases held across the flips expire, then the consumer
  // finishes everything that survived. ---
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  core::QuickAdmin admin(harness.quick());
  auto dead_lettered = [&]() -> std::set<std::string> {
    std::set<std::string> dl;
    for (int i = 0; i < kTenants; ++i) {
      auto items = admin.ListDeadLetters(harness.ClientDb(i));
      if (!items.ok()) continue;
      for (const ck::DeadLetterItem& item : *items) dl.insert(item.id);
    }
    return dl;
  };
  auto all_accounted = [&] {
    const std::set<std::string> dl = dead_lettered();
    std::lock_guard<std::mutex> lock(executed_mu);
    for (const std::string& id : confirmed) {
      if (!executed.count(id) && !dl.count(id)) return false;
    }
    return true;
  };
  for (int round = 0; round < 400 && !all_accounted(); ++round) {
    (void)consumer->RunOnePass(kCluster);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // The ⊎ accounting: executed and dead-lettered partition the confirmed
  // set — nothing lost across three failovers, nothing double-counted.
  const std::set<std::string> quarantined = dead_lettered();
  {
    std::lock_guard<std::mutex> lock(executed_mu);
    for (const std::string& id : confirmed) {
      EXPECT_TRUE(executed.count(id) || quarantined.count(id))
          << "item " << id << " lost across failover (seed " << seed << ")";
      EXPECT_FALSE(executed.count(id) && quarantined.count(id))
          << "item " << id << " both executed and dead-lettered (seed "
          << seed << ")";
    }
  }
  int64_t pending = 0;
  for (int i = 0; i < kTenants; ++i) {
    auto count = harness.quick()->PendingCount(harness.ClientDb(i));
    ASSERT_TRUE(count.ok()) << count.status();
    pending += *count;
  }
  EXPECT_EQ(pending, 0) << "queues did not drain after the storm";

  // Standbys shipped byte-identical logs throughout: any divergence halt
  // would have surfaced as an operator alert.
  for (const core::Alert& alert : alerts.Drain()) {
    EXPECT_NE(alert.kind, core::Alert::Kind::kReplicaDivergence)
        << alert.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailoverChaosTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 20260808u));

}  // namespace
}  // namespace quick::wl
