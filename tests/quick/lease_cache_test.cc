#include "quick/lease_cache.h"

#include <gtest/gtest.h>

namespace quick::core {
namespace {

TEST(LeaseCacheTest, AcquireFreeLease) {
  ManualClock clock;
  LeaseCache cache(&clock);
  EXPECT_TRUE(cache.TryAcquire("k", "alice", 1000));
  EXPECT_EQ(cache.Holder("k"), "alice");
}

TEST(LeaseCacheTest, HeldLeaseExcludesOthers) {
  ManualClock clock;
  LeaseCache cache(&clock);
  ASSERT_TRUE(cache.TryAcquire("k", "alice", 1000));
  EXPECT_FALSE(cache.TryAcquire("k", "bob", 1000));
}

TEST(LeaseCacheTest, OwnerCanRenew) {
  ManualClock clock;
  LeaseCache cache(&clock);
  ASSERT_TRUE(cache.TryAcquire("k", "alice", 1000));
  clock.AdvanceMillis(900);
  EXPECT_TRUE(cache.TryAcquire("k", "alice", 1000));
  clock.AdvanceMillis(900);
  // Renewal pushed the expiry out.
  EXPECT_FALSE(cache.TryAcquire("k", "bob", 1000));
}

TEST(LeaseCacheTest, ExpiredLeaseIsUpForGrabs) {
  ManualClock clock;
  LeaseCache cache(&clock);
  ASSERT_TRUE(cache.TryAcquire("k", "alice", 1000));
  clock.AdvanceMillis(1000);
  EXPECT_EQ(cache.Holder("k"), "");
  EXPECT_TRUE(cache.TryAcquire("k", "bob", 1000));
  EXPECT_EQ(cache.Holder("k"), "bob");
}

TEST(LeaseCacheTest, ReleaseOnlyByOwner) {
  ManualClock clock;
  LeaseCache cache(&clock);
  ASSERT_TRUE(cache.TryAcquire("k", "alice", 1000));
  cache.Release("k", "bob");
  EXPECT_EQ(cache.Holder("k"), "alice");
  cache.Release("k", "alice");
  EXPECT_EQ(cache.Holder("k"), "");
  EXPECT_TRUE(cache.TryAcquire("k", "bob", 1000));
}

TEST(LeaseCacheTest, IndependentKeys) {
  ManualClock clock;
  LeaseCache cache(&clock);
  EXPECT_TRUE(cache.TryAcquire("k1", "alice", 1000));
  EXPECT_TRUE(cache.TryAcquire("k2", "bob", 1000));
}

}  // namespace
}  // namespace quick::core
