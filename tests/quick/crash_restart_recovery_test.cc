// Full-stack kill-the-process recovery: a WAL-backed single-cluster
// deployment takes enqueues and consumer passes, then a scheduled torn
// write kills the simulated process mid-checkpoint; the harness restarts
// (clusters recovered from their durability directories, new consumer)
// and the run drains to a terminal state. The ledger must balance across
// the restart: every client-confirmed enqueue ends executed or
// dead-lettered — with dead letters and queue state recovered from the
// durable log — and nothing lands in both ledgers.
//
// Mid-WAL-append kills (and their exact-version recovery) are exercised
// by the multi-seed fdb-level chaos suite; this test pins the
// queue-system-level accounting invariant.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <set>
#include <string>
#include <thread>

#include "fdb/database.h"
#include "quick/admin.h"
#include "quick/consumer.h"
#include "workload/harness.h"

namespace quick::wl {
namespace {

std::string MakeTempDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "quick_crash_restart_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(CrashRestartRecoveryTest, LedgerBalancesAcrossKillTheProcess) {
  constexpr int kTenants = 4;
  HarnessOptions hopts;
  hopts.num_clusters = 1;
  hopts.work_millis = 0;
  hopts.pointer_vesting_slack_millis = 0;
  hopts.enable_wal = true;
  hopts.wal_dir = MakeTempDir("ledger");
  // The first checkpoint write tears mid-file and kills the process. The
  // default 4 MiB auto-checkpoint interval keeps the workload phase well
  // clear of it (both before the kill and after the restart, where the
  // same plan is re-armed); the kill is the explicit Checkpoint() below.
  hopts.fault_plan.AddDisk(
      fdb::DiskFault::TornWrite(/*at_op=*/1).OnCheckpoint());
  Harness harness(hopts);

  std::set<std::string> executed;
  harness.registry()->Register("track", [&](core::WorkContext& ctx) {
    executed.insert(ctx.item.id);
    return Status::OK();
  });
  harness.registry()->Register("poison", [&](core::WorkContext&) {
    return Status::Permanent("poison handler bug");
  });

  core::ConsumerConfig config;
  config.sequential = true;
  config.relaxed_reads_for_peek = false;
  config.dequeue_max = 2;
  config.pointer_lease_millis = 300;
  config.item_lease_millis = 300;
  auto consumer = harness.MakeConsumer(config, "crash-consumer");

  // --- Healthy traffic: enqueues across four tenants, consumer passes
  // interleaved, so the crash lands with work executed, work queued, and
  // poison awaiting quarantine. ---
  std::set<std::string> confirmed;
  for (int step = 0; step < 150; ++step) {
    core::WorkItem item;
    item.job_type = step % 9 == 0 ? "poison" : "track";
    auto id = harness.quick()->Enqueue(harness.ClientDb(step % kTenants), item);
    ASSERT_TRUE(id.ok()) << id.status();
    confirmed.insert(*id);
    if (step % 3 == 0) (void)consumer->RunOnePass("cluster0");
  }

  // --- Kill the process mid-checkpoint. ---
  fdb::Database* dying = harness.clusters()->Get("cluster0");
  ASSERT_NE(dying, nullptr);
  ASSERT_FALSE(dying->DurabilityDead());
  auto ckpt = dying->Checkpoint();
  EXPECT_FALSE(ckpt.ok());
  ASSERT_TRUE(dying->DurabilityDead());
  {
    // The dead process rejects everything until restart.
    fdb::Transaction t = dying->CreateTransaction();
    t.Set("post-mortem", "write");
    EXPECT_EQ(t.Commit().code(), StatusCode::kUnavailable);
  }

  // --- Restart: consumer discarded, deployment rebuilt from disk. The
  // torn checkpoint never rolled the WAL, so recovery replays the full
  // intact log. ---
  consumer.reset();
  harness.Restart();
  fdb::Database* db0 = harness.clusters()->Get("cluster0");
  ASSERT_NE(db0, nullptr);
  ASSERT_FALSE(db0->DurabilityDead());
  ASSERT_TRUE(db0->GetRecoveryInfo().recovered);

  consumer = harness.MakeConsumer(config, "crash-consumer-revived");
  // Pre-crash pointer/item leases are durable state; wait them out so the
  // revived consumer can take over anything the dead one held.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  core::QuickAdmin admin(harness.quick());
  auto dead_lettered = [&]() -> std::set<std::string> {
    std::set<std::string> dl;
    for (int i = 0; i < kTenants; ++i) {
      auto items = admin.ListDeadLetters(harness.ClientDb(i));
      if (!items.ok()) continue;
      for (const ck::DeadLetterItem& item : *items) dl.insert(item.id);
    }
    return dl;
  };
  auto all_accounted = [&] {
    const std::set<std::string> dl = dead_lettered();
    for (const std::string& id : confirmed) {
      if (!executed.count(id) && !dl.count(id)) return false;
    }
    return true;
  };
  for (int round = 0; round < 400 && !all_accounted(); ++round) {
    (void)consumer->RunOnePass("cluster0");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // The ⊎ accounting: executed and dead-lettered partition the confirmed
  // set once the queues drain (still-queued has gone to zero).
  const std::set<std::string> quarantined = dead_lettered();
  for (const std::string& id : confirmed) {
    EXPECT_TRUE(executed.count(id) || quarantined.count(id))
        << "item " << id << " lost across the crash";
    EXPECT_FALSE(executed.count(id) && quarantined.count(id))
        << "item " << id << " both executed and dead-lettered";
  }
  int64_t pending = 0;
  for (int i = 0; i < kTenants; ++i) {
    auto count = harness.quick()->PendingCount(harness.ClientDb(i));
    ASSERT_TRUE(count.ok()) << count.status();
    pending += *count;
  }
  EXPECT_EQ(pending, 0) << "queues did not drain after recovery";
}

}  // namespace
}  // namespace quick::wl
