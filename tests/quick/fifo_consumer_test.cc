// End-to-end FIFO tenant zones: QuickConfig::fifo_tenant_zones +
// ConsumerConfig::fifo_tenant_zones make the whole pipeline — enqueue,
// dequeue, retry, GC — run over the strict-commit-order schema (§5's
// commit-timestamp extension).

#include <gtest/gtest.h>

#include "fdb/retry.h"
#include "quick/consumer.h"

namespace quick::core {
namespace {

class FifoConsumerTest : public ::testing::Test {
 protected:
  FifoConsumerTest() {
    fdb::Database::Options opts;
    opts.clock = &clock_;
    clusters_ = std::make_unique<fdb::ClusterSet>(opts);
    clusters_->AddCluster("c1");
    ck_ = std::make_unique<ck::CloudKitService>(clusters_.get(), &clock_);
    QuickConfig qconfig;
    qconfig.fifo_tenant_zones = true;
    quick_ = std::make_unique<Quick>(ck_.get(), qconfig);
    registry_.Register("t", [this](WorkContext& ctx) {
      order_.push_back(ctx.item.payload);
      return Status::OK();
    });
  }

  ConsumerConfig FifoConfig() {
    ConsumerConfig config;
    config.sequential = true;
    config.relaxed_reads_for_peek = false;
    config.fifo_tenant_zones = true;
    config.dequeue_max = 2;
    return config;
  }

  std::string MustEnqueue(const std::string& payload, int64_t priority = 0) {
    WorkItem item;
    item.job_type = "t";
    item.payload = payload;
    item.priority = priority;
    auto id = quick_->Enqueue(ck::DatabaseId::Private("app", "u1"), item, 0);
    EXPECT_TRUE(id.ok()) << id.status();
    return id.value_or("");
  }

  ManualClock clock_{80000};
  std::unique_ptr<fdb::ClusterSet> clusters_;
  std::unique_ptr<ck::CloudKitService> ck_;
  std::unique_ptr<Quick> quick_;
  JobRegistry registry_;
  std::vector<std::string> order_;
};

TEST_F(FifoConsumerTest, ProcessesInEnqueueOrderDespitePriorities) {
  // Priorities would reorder the default view; FIFO mode must not.
  MustEnqueue("first", /*priority=*/9);
  MustEnqueue("second", /*priority=*/0);
  MustEnqueue("third", /*priority=*/5);
  MustEnqueue("fourth", /*priority=*/1);

  Consumer consumer(quick_.get(), {"c1"}, &registry_, FifoConfig(), "fifo");
  for (int pass = 0; pass < 3; ++pass) {
    ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  }
  EXPECT_EQ(order_, (std::vector<std::string>{"first", "second", "third",
                                              "fourth"}));
  EXPECT_EQ(quick_->PendingCount(ck::DatabaseId::Private("app", "u1"))
                .value_or(-1),
            0);
}

TEST_F(FifoConsumerTest, RetriedItemDoesNotJumpTheLine) {
  int failures = 1;
  RetryPolicy policy;
  policy.max_inline_retries = 0;
  policy.backoff_initial_millis = 100;
  registry_.Register(
      "flaky",
      [&](WorkContext& ctx) {
        if (failures > 0 && ctx.item.payload == "a") {
          --failures;
          return Status::Unavailable("x");
        }
        order_.push_back(ctx.item.payload);
        return Status::OK();
      },
      policy);
  WorkItem item;
  item.job_type = "flaky";
  item.payload = "a";
  ASSERT_TRUE(quick_->Enqueue(ck::DatabaseId::Private("app", "u1"), item, 0)
                  .ok());
  item.payload = "b";
  ASSERT_TRUE(quick_->Enqueue(ck::DatabaseId::Private("app", "u1"), item, 0)
                  .ok());

  Consumer consumer(quick_.get(), {"c1"}, &registry_, FifoConfig(), "fifo");
  // Pass 1: "a" fails and is requeued (arrival position retained), "b"
  // cannot run before "a"'s retry vests... but FIFO ordering here is about
  // the dequeue view: "b" was dequeued in the same batch and completes.
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  clock_.AdvanceMillis(6000);
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  // "a" executes on the retry; its arrival stamp never changed.
  EXPECT_EQ(order_, (std::vector<std::string>{"b", "a"}));
}

TEST_F(FifoConsumerTest, GcStillCollectsFifoZonePointers) {
  MustEnqueue("only");
  ConsumerConfig config = FifoConfig();
  config.min_inactive_millis = 100;
  config.pointer_lease_millis = 50;
  Consumer consumer(quick_.get(), {"c1"}, &registry_, config, "fifo-gc");
  for (int round = 0; round < 10; ++round) {
    clock_.AdvanceMillis(3000);
    ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  }
  EXPECT_EQ(order_, std::vector<std::string>{"only"});
  EXPECT_EQ(quick_->TopLevelCount("c1").value_or(-1), 0);
}

}  // namespace
}  // namespace quick::core
