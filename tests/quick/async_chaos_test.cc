// Multi-seed chaos for the async pipelined consumer: two async consumers
// (in-flight window of 256 transaction chains each, batched pointer
// leases) share two clusters while one consumer crashes mid-lease, a
// scheduled outage takes a cluster down, and probabilistic commit faults
// fire throughout. After the storm drains, the ledger must balance:
// every client-confirmed enqueue ends executed or dead-lettered — never
// both, never silently lost — abandoned leases are recovered by the
// surviving consumer, and pointer GC empties both top-level queues.
// This is the §11 analogue of the synchronous crash/outage chaos suites:
// the same invariants must survive hundreds of concurrently in-flight
// lease/dequeue/finish chains instead of one blocking pass at a time.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "common/clock.h"
#include "common/random.h"
#include "fdb/cluster_set.h"
#include "fdb/fault_plan.h"
#include "quick/admin.h"
#include "quick/consumer.h"

namespace quick::core {
namespace {

bool WaitUntil(const std::function<bool()>& pred, int64_t timeout_millis) {
  for (int64_t waited = 0; waited < timeout_millis; waited += 5) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

class AsyncChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AsyncChaosTest, LedgerBalancesAcrossCrashAndOutage) {
  const uint64_t seed = GetParam();
  Clock* clock = SystemClock::Default();
  const int64_t t0 = clock->NowMillis();
  const int64_t kOutageStart = t0 + 1500;
  const int64_t kOutageEnd = t0 + 2500;

  fdb::Database::Options base;
  base.faults.commit_unavailable = 0.02;
  base.faults.seed = seed;
  fdb::ClusterSet clusters(base);
  fdb::Database::Options c1_opts = base;
  c1_opts.fault_plan.Add(fdb::FaultWindow::Outage(kOutageStart, kOutageEnd));
  clusters.AddCluster("c1", c1_opts);
  clusters.AddCluster("c2");
  ck::CloudKitService cloudkit(&clusters, clock);
  Quick quick(&cloudkit);

  // Pin tenants: even on the cluster that will suffer the outage.
  constexpr int kTenants = 6;
  auto tenant = [&](int i) {
    return ck::DatabaseId::Private("async-chaos", "user" + std::to_string(i));
  };
  for (int i = 0; i < kTenants; ++i) {
    cloudkit.placement()->Set(tenant(i), i % 2 == 0 ? "c1" : "c2");
  }

  std::mutex mu;
  std::set<std::string> executed;
  RetryPolicy doom_policy;
  doom_policy.max_inline_retries = 0;
  doom_policy.max_attempts = 2;
  doom_policy.drop_on_exhaust = true;
  doom_policy.backoff_initial_millis = 10;

  // Consumer A crashes from inside its own handler — mid-batch, holding a
  // pointer lease, item leases, and a window full of in-flight chains.
  Consumer* a_ptr = nullptr;
  std::atomic<int> a_runs{0};
  auto register_handlers = [&](JobRegistry* registry, bool crashes) {
    registry->Register("chaos", [&, crashes](WorkContext& ctx) {
      {
        std::lock_guard<std::mutex> lock(mu);
        executed.insert(ctx.item.id);
      }
      if (crashes && a_runs.fetch_add(1) + 1 == 3 && a_ptr != nullptr) {
        a_ptr->SimulateCrash();
      }
      return Status::OK();
    });
    registry->Register("poison",
                       [](WorkContext&) { return Status::Permanent("bug"); });
    registry->Register(
        "doom", [](WorkContext&) { return Status::Unavailable("doomed"); },
        doom_policy);
  };
  JobRegistry registry_a;
  JobRegistry registry_b;
  register_handlers(&registry_a, /*crashes=*/true);
  register_handlers(&registry_b, /*crashes=*/false);

  ConsumerConfig config;
  config.sequential = true;
  config.relaxed_reads_for_peek = false;
  config.dequeue_max = 2;
  config.pointer_lease_millis = 400;
  config.item_lease_millis = 800;
  config.min_inactive_millis = 300;
  config.idle_sleep_millis = 2;
  config.num_worker_threads = 4;
  config.breaker.failure_threshold = 3;
  config.breaker.success_threshold = 1;
  config.breaker.open_initial_millis = 100;
  config.breaker.open_max_millis = 400;
  config.async_pipeline = true;
  config.max_inflight_txns = 256;
  config.lease_batch_size = 8;
  config.async_executor_threads = 4;

  Consumer a(&quick, {"c1", "c2"}, &registry_a, config, "async-chaos-a");
  a_ptr = &a;
  Consumer b(&quick, {"c1", "c2"}, &registry_b, config, "async-chaos-b");
  a.Start();
  b.Start();

  // --- Phase 1: traffic to every tenant while both consumers race. ---
  Random rng(seed);
  std::set<std::string> confirmed;
  for (int i = 0; i < 150; ++i) {
    WorkItem item;
    const uint64_t kind = rng.Uniform(100);
    item.job_type = kind < 70 ? "chaos" : (kind < 85 ? "poison" : "doom");
    auto id = quick.Enqueue(tenant(static_cast<int>(rng.Uniform(kTenants))),
                            item, 0);
    if (id.ok()) confirmed.insert(*id);
  }
  // A dies mid-flight (or is killed here if B won every chaos item).
  WaitUntil([&] { return a.crashed(); }, 10000);
  if (!a.crashed()) a.SimulateCrash();
  a.Stop();  // join threads; its abandoned leases expire under B

  // --- Phase 2: the outage takes c1 down; traffic continues on c2. ---
  WaitUntil([&] { return clock->NowMillis() >= kOutageStart + 50; }, 5000);
  for (int i = 0; i < 60; ++i) {
    WorkItem item;
    item.job_type = rng.Uniform(100) < 80 ? "chaos" : "doom";
    const int t = 1 + 2 * static_cast<int>(rng.Uniform(kTenants / 2));
    auto id = quick.Enqueue(tenant(t), item, 0);  // odd tenants live on c2
    if (id.ok()) confirmed.insert(*id);
  }
  ASSERT_GT(confirmed.size(), 0u);
  WaitUntil([&] { return clock->NowMillis() > kOutageEnd; }, 10000);

  // --- Drain: executed ⊎ dead-lettered must cover every confirmation. ---
  QuickAdmin admin(&quick);
  auto dead_lettered = [&]() -> std::set<std::string> {
    std::set<std::string> dl;
    for (int i = 0; i < kTenants; ++i) {
      for (int tries = 0; tries < 10; ++tries) {
        auto items = admin.ListDeadLetters(tenant(i));
        if (!items.ok()) continue;
        for (const ck::DeadLetterItem& item : *items) dl.insert(item.id);
        break;
      }
    }
    return dl;
  };
  auto all_accounted = [&] {
    const std::set<std::string> dl = dead_lettered();
    std::lock_guard<std::mutex> lock(mu);
    for (const std::string& id : confirmed) {
      if (!executed.count(id) && !dl.count(id)) return false;
    }
    return true;
  };
  EXPECT_TRUE(WaitUntil(all_accounted, 60000))
      << "items still unaccounted after the storm (seed " << seed << ")";

  const std::set<std::string> quarantined = dead_lettered();
  {
    std::lock_guard<std::mutex> lock(mu);
    for (const std::string& id : confirmed) {
      EXPECT_TRUE(executed.count(id) || quarantined.count(id))
          << "item " << id << " silently lost (seed " << seed << ")";
      EXPECT_FALSE(executed.count(id) && quarantined.count(id))
          << "item " << id << " both executed and dead-lettered (seed "
          << seed << ")";
    }
  }

  // Pointer GC drains both top-level queues while B keeps running.
  EXPECT_TRUE(WaitUntil(
      [&] {
        return quick.TopLevelCount("c1").value_or(-1) == 0 &&
               quick.TopLevelCount("c2").value_or(-1) == 0;
      },
      20000))
      << "top-level queues never drained (seed " << seed << ")";
  b.Stop();

  // The async machinery was actually exercised: pointer leases were
  // batched, and the survivor picked up work the crashed consumer left.
  EXPECT_GT(a.stats().lease_batches.Value() + b.stats().lease_batches.Value(),
            0);
  EXPECT_GT(b.stats().items_processed.Value(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsyncChaosTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 20260808u));

}  // namespace
}  // namespace quick::core
