// Randomized end-to-end "chaos" property test: a scripted interleaving of
// enqueues, consumer passes, clock advances, tenant migrations, and
// injected FDB faults, driven synchronously from one thread with a manual
// clock (fully deterministic per seed). After the dust settles the
// invariants of DESIGN.md §4 are checked:
//   1. findability — every enqueued-and-not-yet-executed item is reachable
//      via a pointer in some cluster's top-level queue;
//   2. eventual execution — draining afterwards executes everything
//      exactly the expected number of distinct items (at-least-once);
//   3. no stray pointers — after a full drain plus GC grace, top-level
//      queues hold nothing;
//   4. loss accounting — with poison (permanently failing) and doomed
//      (retry-exhausting) job types in the mix, every enqueued item ends
//      either executed or dead-lettered, never silently lost; and after an
//      operator requeue of every dead letter (handlers healed), everything
//      executes and the quarantines are empty.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/trace.h"
#include "fdb/retry.h"
#include "quick/admin.h"
#include "quick/consumer.h"
#include "quick/trace_hooks.h"

namespace quick::core {
namespace {

class ChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosTest, InvariantsHoldUnderRandomInterleavings) {
  Random rng(GetParam());
  ManualClock clock(1000000);

  fdb::Database::Options opts;
  opts.clock = &clock;
  // Mild fault injection on every cluster (deterministic per seed).
  opts.faults.unknown_result_applied = 0.01;
  opts.faults.unknown_result_dropped = 0.01;
  opts.faults.commit_unavailable = 0.02;
  opts.faults.seed = GetParam();
  // Scheduled fault windows layered on top: a full outage, an
  // elevated-failure window, and a latency spike, placed inside the time
  // range the 400-step script typically covers.
  opts.fault_plan.Add(fdb::FaultWindow::Outage(1003000, 1006000));
  fdb::FaultWindow elevated;
  elevated.start_millis = 1008000;
  elevated.end_millis = 1012000;
  elevated.commit_unavailable = 0.2;
  elevated.read_unavailable = 0.05;
  opts.fault_plan.Add(elevated);
  opts.fault_plan.Add(fdb::FaultWindow::LatencySpike(1014000, 1016000, 50));
  fdb::ClusterSet clusters(opts);
  clusters.AddCluster("c1");
  clusters.AddCluster("c2");
  ck::CloudKitService cloudkit(&clusters, &clock);
  Quick quick(&cloudkit);

  std::set<std::string> executed;
  bool healed = false;  // flips after the operator requeues dead letters
  JobRegistry registry;
  registry.Register("chaos", [&](WorkContext& ctx) {
    executed.insert(ctx.item.id);
    return Status::OK();
  });
  // Poison: fails permanently until "the bug is fixed" — quarantined on
  // first terminal attempt (default policy).
  registry.Register("poison", [&](WorkContext& ctx) {
    if (!healed) return Status::Permanent("poison");
    executed.insert(ctx.item.id);
    return Status::OK();
  });
  // Doomed: transient failures that exhaust a 2-attempt budget.
  RetryPolicy doom_policy;
  doom_policy.max_inline_retries = 0;
  doom_policy.max_attempts = 2;
  doom_policy.drop_on_exhaust = true;
  doom_policy.backoff_initial_millis = 10;
  registry.Register(
      "doom",
      [&](WorkContext& ctx) {
        if (!healed) return Status::Unavailable("doomed");
        executed.insert(ctx.item.id);
        return Status::OK();
      },
      doom_policy);

  ConsumerConfig config;
  config.sequential = true;
  config.relaxed_reads_for_peek = false;
  config.dequeue_max = 2;
  config.pointer_lease_millis = 500;
  config.item_lease_millis = 1000;
  config.min_inactive_millis = 2000;
  Consumer consumer(&quick, {"c1", "c2"}, &registry, config, "chaos-consumer");

  constexpr int kTenants = 6;
  auto tenant = [&](int i) {
    return ck::DatabaseId::Private("chaos-app", "user" + std::to_string(i));
  };
  std::set<std::string> enqueued;

  for (int step = 0; step < 400; ++step) {
    const uint64_t action = rng.Uniform(100);
    if (action < 45) {
      // Enqueue (sometimes delayed) for a random tenant; mostly healthy
      // items, with a poison/doomed minority that must end up quarantined.
      WorkItem item;
      const uint64_t kind = rng.Uniform(100);
      item.job_type = kind < 80 ? "chaos" : (kind < 90 ? "poison" : "doom");
      const int64_t delay =
          rng.Bernoulli(0.3) ? static_cast<int64_t>(rng.Uniform(3000)) : 0;
      auto id = quick.Enqueue(tenant(static_cast<int>(rng.Uniform(kTenants))),
                              item, delay);
      if (id.ok()) enqueued.insert(*id);
      // Enqueues may fail under injected faults — that is fine; the client
      // saw the failure.
    } else if (action < 80) {
      // Consumer pass over a random cluster.
      (void)consumer.RunOnePass(rng.Bernoulli(0.5) ? "c1" : "c2");
    } else if (action < 95) {
      clock.AdvanceMillis(1 + static_cast<int64_t>(rng.Uniform(800)));
    } else {
      // Migrate a random tenant to the other cluster.
      const ck::DatabaseId db = tenant(static_cast<int>(rng.Uniform(kTenants)));
      auto placed = cloudkit.placement()->Get(db);
      if (placed.has_value()) {
        const std::string dest = *placed == "c1" ? "c2" : "c1";
        // Migration may fail under injected faults; retry once later is
        // not modeled — a failed move can leave the tenant mid-move, so
        // only chaos-test it with faults disabled on the copy path. Here
        // we simply tolerate a failed move by skipping.
        (void)quick.MoveTenant(db, dest);
      }
    }
  }

  // Let every scheduled fault window expire before checking invariants:
  // findability is only promised of a reachable cluster.
  if (clock.NowMillis() <= opts.fault_plan.EndMillis()) {
    clock.AdvanceMillis(opts.fault_plan.EndMillis() - clock.NowMillis() + 1);
  }

  // Findability check on the final state: every pending (non-executed)
  // enqueued item must be reachable via some pointer.
  QuickAdmin admin(&quick);
  std::set<std::string> reachable;
  for (const std::string& cluster : {std::string("c1"), std::string("c2")}) {
    auto rows = admin.ListOutstandingQueues(cluster, 0);
    ASSERT_TRUE(rows.ok());
    for (const QuickAdmin::OutstandingQueue& row : *rows) {
      fdb::Database* db = clusters.Get(cluster);
      Status st = fdb::RunTransaction(db, [&](fdb::Transaction& txn) {
        const tup::Subspace zone_subspace =
            ck::CloudKitService::DatabaseSubspace(row.pointer.db_id)
                .Sub("z")
                .Sub(row.pointer.zone);
        ck::QueueZone zone(&txn, zone_subspace, &clock);
        QUICK_ASSIGN_OR_RETURN(std::vector<rl::Record> all,
                               zone.store()->ScanRecords());
        for (const rl::Record& rec : all) {
          QUICK_ASSIGN_OR_RETURN(ck::QueuedItem item,
                                 ck::QueuedItem::FromRecord(rec));
          reachable.insert(item.id);
        }
        return Status::OK();
      });
      ASSERT_TRUE(st.ok());
    }
  }
  // Dead-letter snapshot across every tenant quarantine (reads can fail
  // under the residual probabilistic faults; callers retry).
  auto dead_lettered = [&]() -> std::set<std::string> {
    std::set<std::string> dl;
    for (int i = 0; i < kTenants; ++i) {
      for (int tries = 0; tries < 10; ++tries) {
        auto items = admin.ListDeadLetters(tenant(i));
        if (!items.ok()) continue;
        for (const ck::DeadLetterItem& item : *items) dl.insert(item.id);
        break;
      }
    }
    return dl;
  };

  std::set<std::string> quarantined = dead_lettered();
  for (const std::string& id : enqueued) {
    if (executed.count(id)) continue;
    EXPECT_TRUE(reachable.count(id) || quarantined.count(id))
        << "pending item " << id
        << " neither reachable nor dead-lettered: silently lost";
  }

  // Drain to a terminal state: every enqueued item either executes or
  // lands in a quarantine — the "no item is ever silently lost" invariant.
  // (executed may contain extra ids from enqueues that failed with
  // commit-unknown-result yet actually landed; compare as a superset.)
  auto all_accounted = [&] {
    quarantined = dead_lettered();
    for (const std::string& id : enqueued) {
      if (!executed.count(id) && !quarantined.count(id)) return false;
    }
    return true;
  };
  for (int round = 0; round < 300 && !all_accounted(); ++round) {
    clock.AdvanceMillis(400);
    (void)consumer.RunOnePass("c1");
    (void)consumer.RunOnePass("c2");
  }
  for (const std::string& id : enqueued) {
    EXPECT_TRUE(executed.count(id) || quarantined.count(id))
        << "item " << id << " neither executed nor dead-lettered";
    EXPECT_FALSE(executed.count(id) && quarantined.count(id))
        << "item " << id << " both executed and dead-lettered";
  }

  // Operator drain: fix the handlers, requeue every dead letter, and run
  // to completion — requeued items go through the full enqueue protocol,
  // so their pointers reappear and they execute like fresh work.
  healed = true;
  for (int round = 0; round < 50 && !dead_lettered().empty(); ++round) {
    for (int i = 0; i < kTenants; ++i) {
      (void)admin.RequeueAllDeadLetters(tenant(i));
    }
  }
  auto all_executed = [&] {
    for (const std::string& id : enqueued) {
      if (!executed.count(id)) return false;
    }
    return true;
  };
  for (int round = 0; round < 300 && !all_executed(); ++round) {
    clock.AdvanceMillis(400);
    (void)consumer.RunOnePass("c1");
    (void)consumer.RunOnePass("c2");
  }
  for (const std::string& id : enqueued) {
    EXPECT_TRUE(executed.count(id)) << "item " << id << " never executed";
  }
  EXPECT_TRUE(dead_lettered().empty())
      << "quarantines not empty after operator requeue";

  // GC: after the grace period every pointer disappears.
  for (int round = 0; round < 30; ++round) {
    clock.AdvanceMillis(1000);
    (void)consumer.RunOnePass("c1");
    (void)consumer.RunOnePass("c2");
  }
  EXPECT_EQ(quick.TopLevelCount("c1").value_or(-1), 0);
  EXPECT_EQ(quick.TopLevelCount("c2").value_or(-1), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(1, 7, 42, 1234, 20260705));

// Span-chain completeness under chaos: randomized enqueues (healthy,
// transiently flaky, and poison items), a consumer crash with a takeover
// replacement, a scheduled cluster outage, and probabilistic commit
// failures — then, after the system drains to empty queues and empty
// quarantines, every client-confirmed enqueue must have a complete trace:
//   - the chain starts with a birth span (enqueued);
//   - split at birth spans (operator dead-letter requeues open new
//     incarnations), every incarnation ends in exactly one terminal span
//     (completed/quarantined/dropped), recorded by whichever consumer's
//     transition actually committed — crashes and fences never double- or
//     zero-count a terminal;
//   - every dequeue span links to a live pointer chain;
//   - the span store dropped and evicted nothing.
// Unknown-result faults are deliberately excluded: under those a consumer
// can see an error for a transition that landed, so the true terminal
// span is legitimately missing (the chain ends on a fence instead) and
// exactly-one-terminal is not a theorem.
class SpanChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpanChaosTest, EveryIncarnationEndsInExactlyOneTerminalSpan) {
  const uint64_t seed = GetParam();
  Random rng(seed);
  ManualClock clock(1000000);

  fdb::Database::Options base;
  base.clock = &clock;
  base.faults.commit_unavailable = 0.02;
  base.faults.seed = seed;
  fdb::ClusterSet clusters(base);
  fdb::Database::Options c1_opts = base;
  c1_opts.fault_plan.Add(fdb::FaultWindow::Outage(1004000, 1007000));
  clusters.AddCluster("c1", c1_opts);
  clusters.AddCluster("c2");
  ck::CloudKitService cloudkit(&clusters, &clock);
  Quick quick(&cloudkit);

  // A span store big enough that nothing is evicted or dropped — the
  // completeness property needs every chain intact.
  Tracer::Options topts;
  topts.max_traces = 1 << 16;
  topts.max_spans_per_trace = 1 << 12;
  Tracer tracer(topts);
  quick.set_tracer(&tracer);  // before consumers capture it

  std::set<std::string> executed;
  std::map<std::string, int> flaky_attempts;
  bool healed = false;
  JobRegistry registry;
  registry.Register("chaos", [&](WorkContext& ctx) {
    executed.insert(ctx.item.id);
    return Status::OK();
  });
  RetryPolicy flaky_policy;
  flaky_policy.max_inline_retries = 0;
  flaky_policy.max_attempts = 100;
  flaky_policy.backoff_initial_millis = 50;
  registry.Register(
      "flaky",
      [&](WorkContext& ctx) {
        if (flaky_attempts[ctx.item.id]++ == 0) {
          return Status::Unavailable("first attempt flaps");
        }
        executed.insert(ctx.item.id);
        return Status::OK();
      },
      flaky_policy);
  registry.Register("poison", [&](WorkContext& ctx) {
    if (!healed) return Status::Permanent("poison");
    executed.insert(ctx.item.id);
    return Status::OK();
  });

  ConsumerConfig config;
  config.sequential = true;
  config.relaxed_reads_for_peek = false;
  config.dequeue_max = 2;
  config.pointer_lease_millis = 500;
  config.item_lease_millis = 1000;
  config.min_inactive_millis = 2000;
  std::vector<std::unique_ptr<Consumer>> consumers;
  for (int i = 0; i < 2; ++i) {
    consumers.push_back(std::make_unique<Consumer>(
        &quick, std::vector<std::string>{"c1", "c2"}, &registry, config,
        "chaos-consumer-" + std::to_string(i)));
  }

  constexpr int kTenants = 6;
  auto tenant = [&](int i) {
    return ck::DatabaseId::Private("span-app", "user" + std::to_string(i));
  };
  std::set<std::string> enqueued;

  for (int step = 0; step < 300; ++step) {
    if (step == 150) {
      // Crash/takeover: consumer 0 freezes mid-lease (its pointer and
      // item leases are abandoned and expire); a replacement joins.
      consumers[0]->SimulateCrash();
      consumers.push_back(std::make_unique<Consumer>(
          &quick, std::vector<std::string>{"c1", "c2"}, &registry, config,
          "chaos-consumer-2"));
    }
    const uint64_t action = rng.Uniform(100);
    if (action < 45) {
      WorkItem item;
      const uint64_t kind = rng.Uniform(100);
      item.job_type = kind < 70 ? "chaos" : (kind < 85 ? "flaky" : "poison");
      const int64_t delay =
          rng.Bernoulli(0.3) ? static_cast<int64_t>(rng.Uniform(2000)) : 0;
      auto id = quick.Enqueue(tenant(static_cast<int>(rng.Uniform(kTenants))),
                              item, delay);
      if (id.ok()) enqueued.insert(*id);
    } else if (action < 85) {
      Consumer& c = *consumers[rng.Uniform(consumers.size())];
      if (!c.crashed()) {
        (void)c.RunOnePass(rng.Bernoulli(0.5) ? "c1" : "c2");
      }
    } else {
      clock.AdvanceMillis(1 + static_cast<int64_t>(rng.Uniform(600)));
    }
  }
  ASSERT_FALSE(enqueued.empty());

  // Let the outage window expire, then drain: everything executes or
  // lands in a quarantine.
  if (clock.NowMillis() <= 1007000) {
    clock.AdvanceMillis(1007000 - clock.NowMillis() + 1);
  }
  QuickAdmin admin(&quick);
  auto dead_lettered = [&]() -> std::set<std::string> {
    std::set<std::string> dl;
    for (int i = 0; i < kTenants; ++i) {
      for (int tries = 0; tries < 10; ++tries) {
        auto items = admin.ListDeadLetters(tenant(i));
        if (!items.ok()) continue;
        for (const ck::DeadLetterItem& item : *items) dl.insert(item.id);
        break;
      }
    }
    return dl;
  };
  auto run_all = [&] {
    for (auto& c : consumers) {
      if (c->crashed()) continue;
      (void)c->RunOnePass("c1");
      (void)c->RunOnePass("c2");
    }
  };
  auto all_accounted = [&] {
    const std::set<std::string> dl = dead_lettered();
    for (const std::string& id : enqueued) {
      if (!executed.count(id) && !dl.count(id)) return false;
    }
    return true;
  };
  for (int round = 0; round < 300 && !all_accounted(); ++round) {
    clock.AdvanceMillis(400);
    run_all();
  }
  ASSERT_TRUE(all_accounted());

  // Heal the poison handler and requeue every dead letter; requeued items
  // open a second incarnation that must complete.
  healed = true;
  for (int round = 0; round < 50 && !dead_lettered().empty(); ++round) {
    for (int i = 0; i < kTenants; ++i) {
      (void)admin.RequeueAllDeadLetters(tenant(i));
    }
    clock.AdvanceMillis(400);
    run_all();
  }
  ASSERT_TRUE(dead_lettered().empty());

  // Drain to empty top-level queues: only then has every item's terminal
  // transition actually committed (a completed handler whose commit kept
  // failing would otherwise still hold a span-less lease).
  for (int round = 0; round < 60; ++round) {
    clock.AdvanceMillis(1000);
    run_all();
  }
  ASSERT_EQ(quick.TopLevelCount("c1").value_or(-1), 0);
  ASSERT_EQ(quick.TopLevelCount("c2").value_or(-1), 0);

  // --- The completeness property. ---
  EXPECT_EQ(tracer.EvictedTraces(), 0u);
  EXPECT_EQ(tracer.DroppedSpans(), 0u);
  for (const std::string& id : enqueued) {
    const std::vector<Span> chain = tracer.TraceOf(id);
    ASSERT_FALSE(chain.empty()) << "no trace for enqueued item " << id;
    EXPECT_TRUE(IsBirthStage(chain.front().name))
        << "chain of " << id << " starts with " << chain.front().name;

    std::vector<std::vector<const Span*>> incarnations;
    for (const Span& span : chain) {
      if (IsBirthStage(span.name) || incarnations.empty()) {
        incarnations.emplace_back();
      }
      incarnations.back().push_back(&span);
    }
    for (size_t i = 0; i < incarnations.size(); ++i) {
      int terminals = 0;
      for (const Span* span : incarnations[i]) {
        if (IsTerminalStage(span->name)) ++terminals;
      }
      EXPECT_EQ(terminals, 1)
          << "item " << id << " incarnation " << i << " has " << terminals
          << " terminal spans";
      EXPECT_TRUE(IsTerminalStage(incarnations[i].back()->name))
          << "item " << id << " incarnation " << i << " ends on "
          << incarnations[i].back()->name;
    }

    if (executed.count(id)) {
      bool has_execute = false;
      for (const Span& span : chain) {
        if (span.name == stage::kExecute) has_execute = true;
      }
      EXPECT_TRUE(has_execute) << "executed item " << id << " has no "
                               << "execute span";
    }
    for (const Span& span : chain) {
      if (span.name == stage::kDequeued) {
        EXPECT_FALSE(span.parent_trace.empty());
        EXPECT_TRUE(tracer.Has(span.parent_trace))
            << "dequeue of " << id << " links to unknown pointer trace "
            << span.parent_trace;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpanChaosTest,
                         ::testing::Values(1, 7, 42, 1234, 20260705));

}  // namespace
}  // namespace quick::core
