#include "quick/cluster_health.h"

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/metrics.h"

namespace quick::core {
namespace {

CircuitBreakerConfig TestConfig() {
  CircuitBreakerConfig config;
  config.failure_threshold = 3;
  config.success_threshold = 2;
  config.open_initial_millis = 1000;
  config.open_max_millis = 8000;
  config.open_backoff_multiplier = 2.0;
  return config;
}

Status Infra() { return Status::Unavailable("cluster down"); }

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailures) {
  ManualClock clock(1000);
  CircuitBreaker breaker(TestConfig(), &clock);
  EXPECT_EQ(breaker.RecordFailure(), CircuitBreaker::Transition::kNone);
  EXPECT_EQ(breaker.RecordFailure(), CircuitBreaker::Transition::kNone);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.RecordFailure(), CircuitBreaker::Transition::kOpened);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, SuccessResetsFailureStreak) {
  ManualClock clock(1000);
  CircuitBreaker breaker(TestConfig(), &clock);
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordSuccess();  // streak broken
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenProbeAfterOpenDuration) {
  ManualClock clock(1000);
  CircuitBreaker breaker(TestConfig(), &clock);
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  EXPECT_FALSE(breaker.AllowRequest());
  clock.AdvanceMillis(999);
  EXPECT_FALSE(breaker.AllowRequest());
  clock.AdvanceMillis(1);  // open_initial_millis elapsed
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
}

TEST(CircuitBreakerTest, ClosesAfterEnoughProbeSuccesses) {
  ManualClock clock(1000);
  CircuitBreaker breaker(TestConfig(), &clock);
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  clock.AdvanceMillis(1000);
  ASSERT_TRUE(breaker.AllowRequest());
  EXPECT_EQ(breaker.RecordSuccess(), CircuitBreaker::Transition::kNone);
  EXPECT_EQ(breaker.RecordSuccess(), CircuitBreaker::Transition::kClosed);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.AllowRequest());
}

TEST(CircuitBreakerTest, FailedProbeReopensWithLongerDuration) {
  ManualClock clock(1000);
  CircuitBreaker breaker(TestConfig(), &clock);
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  const int64_t first_open_until = breaker.open_until_millis();
  EXPECT_EQ(first_open_until, 1000 + 1000);

  clock.AdvanceMillis(1000);
  ASSERT_TRUE(breaker.AllowRequest());  // half-open
  EXPECT_EQ(breaker.RecordFailure(), CircuitBreaker::Transition::kReopened);
  // Second open period doubles: 2000ms from now (2000).
  EXPECT_EQ(breaker.open_until_millis(), 2000 + 2000);

  clock.AdvanceMillis(2000);
  ASSERT_TRUE(breaker.AllowRequest());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.open_until_millis(), 4000 + 4000);
}

TEST(CircuitBreakerTest, ClosingResetsOpenBackoff) {
  ManualClock clock(1000);
  CircuitBreaker breaker(TestConfig(), &clock);
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  clock.AdvanceMillis(1000);
  ASSERT_TRUE(breaker.AllowRequest());
  breaker.RecordFailure();  // reopened: next duration would be 2000
  clock.AdvanceMillis(2000);
  ASSERT_TRUE(breaker.AllowRequest());
  breaker.RecordSuccess();
  breaker.RecordSuccess();  // closed: backoff resets
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  // Fresh outage starts back at the initial duration.
  EXPECT_EQ(breaker.open_until_millis(), clock.NowMillis() + 1000);
}

TEST(ClusterHealthTest, InfraFailureClassification) {
  EXPECT_TRUE(ClusterHealth::IsInfraFailure(Status::Unavailable("x")));
  EXPECT_TRUE(ClusterHealth::IsInfraFailure(Status::TimedOut("x")));
  EXPECT_TRUE(ClusterHealth::IsInfraFailure(Status::TransactionTooOld()));
  EXPECT_FALSE(ClusterHealth::IsInfraFailure(Status::NotCommitted()));
  EXPECT_FALSE(ClusterHealth::IsInfraFailure(Status::NotFound("x")));
  EXPECT_FALSE(ClusterHealth::IsInfraFailure(Status::InvalidArgument("x")));
}

TEST(ClusterHealthTest, OpensRaisesAlertAndSkips) {
  ManualClock clock(1000);
  MetricsRegistry metrics;
  ClusterHealth health(TestConfig(), &clock, "consumer-1", &metrics);
  CollectingAlertSink sink;
  health.SetAlertSink(&sink);

  EXPECT_FALSE(health.ShouldSkip("c1"));
  for (int i = 0; i < 3; ++i) health.Observe("c1", Infra());
  EXPECT_EQ(health.StateOf("c1"), CircuitBreaker::State::kOpen);

  auto alerts = sink.Drain();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, Alert::Kind::kBreakerOpened);
  EXPECT_EQ(alerts[0].cluster, "c1");
  EXPECT_NE(alerts[0].detail.find("consumer-1"), std::string::npos);

  EXPECT_TRUE(health.ShouldSkip("c1"));
  EXPECT_TRUE(health.ShouldSkip("c1"));
  EXPECT_EQ(metrics.GetCounter("quick.breaker.c1.skipped")->Value(), 2);
  EXPECT_EQ(metrics.GetCounter("quick.breaker.c1.opened")->Value(), 1);
  // Other clusters are unaffected.
  EXPECT_FALSE(health.ShouldSkip("c2"));
  EXPECT_EQ(health.StateOf("c2"), CircuitBreaker::State::kClosed);
}

TEST(ClusterHealthTest, ContentionOutcomesAreIgnored) {
  ManualClock clock(1000);
  MetricsRegistry metrics;
  ClusterHealth health(TestConfig(), &clock, "consumer-1", &metrics);
  for (int i = 0; i < 20; ++i) {
    health.Observe("c1", Status::NotCommitted());
    health.Observe("c1", Status::NotFound("gone"));
  }
  EXPECT_EQ(health.StateOf("c1"), CircuitBreaker::State::kClosed);
  EXPECT_FALSE(health.ShouldSkip("c1"));
}

TEST(ClusterHealthTest, RecoveryClosesAndAlerts) {
  ManualClock clock(1000);
  MetricsRegistry metrics;
  ClusterHealth health(TestConfig(), &clock, "consumer-1", &metrics);
  CollectingAlertSink sink;
  health.SetAlertSink(&sink);

  for (int i = 0; i < 3; ++i) health.Observe("c1", Infra());
  (void)sink.Drain();

  // Probe due after the open duration; a failed probe reopens silently
  // (same outage), successes close with a fresh alert.
  clock.AdvanceMillis(1000);
  EXPECT_FALSE(health.ShouldSkip("c1"));  // half-open: probe allowed
  health.Observe("c1", Infra());          // probe failed
  EXPECT_EQ(health.StateOf("c1"), CircuitBreaker::State::kOpen);
  EXPECT_EQ(sink.Count(), 0u);
  EXPECT_EQ(metrics.GetCounter("quick.breaker.c1.reopened")->Value(), 1);

  clock.AdvanceMillis(2000);
  EXPECT_FALSE(health.ShouldSkip("c1"));
  health.Observe("c1", Status::OK());
  health.Observe("c1", Status::OK());
  EXPECT_EQ(health.StateOf("c1"), CircuitBreaker::State::kClosed);
  auto alerts = sink.Drain();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, Alert::Kind::kBreakerClosed);
  EXPECT_EQ(alerts[0].cluster, "c1");
  EXPECT_EQ(metrics.GetCounter("quick.breaker.c1.closed")->Value(), 1);
}

TEST(ClusterHealthTest, DisabledConfigNeverTrips) {
  ManualClock clock(1000);
  MetricsRegistry metrics;
  CircuitBreakerConfig config = TestConfig();
  config.enabled = false;
  ClusterHealth health(config, &clock, "consumer-1", &metrics);
  for (int i = 0; i < 50; ++i) health.Observe("c1", Infra());
  EXPECT_FALSE(health.ShouldSkip("c1"));
  EXPECT_EQ(health.StateOf("c1"), CircuitBreaker::State::kClosed);
}

}  // namespace
}  // namespace quick::core
