#include "quick/consumer.h"

#include <gtest/gtest.h>

#include "fdb/retry.h"
#include "quick/admin.h"

namespace quick::core {
namespace {

/// Fixture driving a consumer synchronously (RunOnePass) against a manual
/// clock — deterministic versions of Algorithms 1–3.
class ConsumerTest : public ::testing::Test {
 protected:
  ConsumerTest() {
    fdb::Database::Options opts;
    opts.clock = &clock_;
    clusters_ = std::make_unique<fdb::ClusterSet>(opts);
    clusters_->AddCluster("c1");
    ck_ = std::make_unique<ck::CloudKitService>(clusters_.get(), &clock_);
    quick_ = std::make_unique<Quick>(ck_.get());

    processed_payloads_.clear();
    registry_.Register("ok_job", [this](WorkContext& ctx) {
      std::lock_guard<std::mutex> lock(mu_);
      processed_payloads_.push_back(ctx.item.payload);
      return Status::OK();
    });
  }

  Consumer MakeConsumer(ConsumerConfig config = {}) {
    config.sequential = true;  // deterministic order by default
    // The manual clock never moves on its own, so a cached read version
    // would never expire; use real GRVs for determinism.
    config.relaxed_reads_for_peek = false;
    return Consumer(quick_.get(), {"c1"}, &registry_, config, "test-consumer");
  }

  std::string MustEnqueue(const ck::DatabaseId& db, const std::string& type,
                          const std::string& payload, int64_t delay = 0) {
    WorkItem item;
    item.job_type = type;
    item.payload = payload;
    auto id = quick_->Enqueue(db, item, delay);
    EXPECT_TRUE(id.ok()) << id.status();
    return id.value_or("");
  }

  std::vector<std::string> Processed() {
    std::lock_guard<std::mutex> lock(mu_);
    return processed_payloads_;
  }

  ManualClock clock_{1000000};
  std::unique_ptr<fdb::ClusterSet> clusters_;
  std::unique_ptr<ck::CloudKitService> ck_;
  std::unique_ptr<Quick> quick_;
  JobRegistry registry_;
  std::mutex mu_;
  std::vector<std::string> processed_payloads_;
};

TEST_F(ConsumerTest, ProcessesEnqueuedItemEndToEnd) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  MustEnqueue(db, "ok_job", "payload-1");

  Consumer consumer = MakeConsumer();
  Result<int> n = consumer.RunOnePass("c1");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1);
  EXPECT_EQ(Processed(), std::vector<std::string>{"payload-1"});
  EXPECT_EQ(quick_->PendingCount(db).value(), 0);
  EXPECT_EQ(consumer.stats().items_processed.Value(), 1);
  EXPECT_EQ(consumer.stats().pointer_leases_acquired.Value(), 1);
}

TEST_F(ConsumerTest, ProcessesItemsAcrossTenantsFairly) {
  ConsumerConfig config;
  config.dequeue_max = 1;
  Consumer consumer = MakeConsumer(config);
  // u1 has 5 items, u2 has 1. With dequeue_max=1, one pass serves each
  // pointer once: u2 is not starved behind u1.
  const ck::DatabaseId u1 = ck::DatabaseId::Private("app", "u1");
  const ck::DatabaseId u2 = ck::DatabaseId::Private("app", "u2");
  for (int i = 0; i < 5; ++i) {
    MustEnqueue(u1, "ok_job", "u1-" + std::to_string(i));
  }
  MustEnqueue(u2, "ok_job", "u2-0");

  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_EQ(Processed().size(), 2u);  // one from each tenant
  EXPECT_EQ(quick_->PendingCount(u2).value(), 0);
  EXPECT_EQ(quick_->PendingCount(u1).value(), 4);

  // Subsequent passes drain u1 one item per visit (pointer requeued with
  // delay 0 because vested items remain).
  for (int pass = 0; pass < 4; ++pass) {
    ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  }
  EXPECT_EQ(quick_->PendingCount(u1).value(), 0);
  EXPECT_EQ(Processed().size(), 6u);
}

TEST_F(ConsumerTest, DequeueMaxBatchesAmortizePointerWork) {
  ConsumerConfig config;
  config.dequeue_max = 4;
  Consumer consumer = MakeConsumer(config);
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  for (int i = 0; i < 4; ++i) MustEnqueue(db, "ok_job", std::to_string(i));
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_EQ(Processed().size(), 4u);
  EXPECT_EQ(consumer.stats().pointer_leases_acquired.Value(), 1);
}

TEST_F(ConsumerTest, DelayedItemsWaitForVesting) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  MustEnqueue(db, "ok_job", "later", /*delay=*/5000);

  Consumer consumer = MakeConsumer();
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_TRUE(Processed().empty());  // pointer not vested yet

  clock_.AdvanceMillis(5001);
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_EQ(Processed(), std::vector<std::string>{"later"});
}

TEST_F(ConsumerTest, PointerRequeuedWhileQueueActive) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  MustEnqueue(db, "ok_job", "a");
  MustEnqueue(db, "ok_job", "b", /*delay=*/10000);

  ConsumerConfig config;
  config.dequeue_max = 1;
  Consumer consumer = MakeConsumer(config);
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_EQ(Processed().size(), 1u);
  EXPECT_EQ(consumer.stats().pointers_requeued.Value(), 1);
  EXPECT_EQ(consumer.stats().pointers_deleted.Value(), 0);
  // Pointer still present, vesting at the delayed item's time.
  EXPECT_EQ(quick_->TopLevelCount("c1").value(), 1);
}

TEST_F(ConsumerTest, PointerGcAfterGracePeriod) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  MustEnqueue(db, "ok_job", "only");

  ConsumerConfig config;
  config.min_inactive_millis = 60000;
  config.pointer_lease_millis = 1000;
  Consumer consumer = MakeConsumer(config);

  // Pass 1: drains the item; queue now empty but pointer stays (grace).
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_EQ(Processed().size(), 1u);
  EXPECT_EQ(quick_->TopLevelCount("c1").value(), 1);
  EXPECT_EQ(consumer.stats().pointers_deleted.Value(), 0);

  // Within the grace period: pointer re-vests after lease expiry, gets
  // visited, still not deleted.
  clock_.AdvanceMillis(2000);
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_EQ(quick_->TopLevelCount("c1").value(), 1);

  // Beyond min_inactive: the pointer is garbage-collected.
  clock_.AdvanceMillis(60001);
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_EQ(consumer.stats().pointers_deleted.Value(), 1);
  EXPECT_EQ(quick_->TopLevelCount("c1").value(), 0);
}

TEST_F(ConsumerTest, GraceReuseAvoidsPointerRecreation) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  MustEnqueue(db, "ok_job", "one");
  Consumer consumer = MakeConsumer();
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_EQ(quick_->TopLevelCount("c1").value(), 1);  // pointer kept

  // New item during the grace period reuses the pointer (no create).
  MustEnqueue(db, "ok_job", "two");
  EXPECT_EQ(quick_->TopLevelCount("c1").value(), 1);
  clock_.AdvanceMillis(1001);  // pointer lease from the previous visit
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_EQ(Processed().size(), 2u);
}

TEST_F(ConsumerTest, GcAbortsWhenEnqueueRaces) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  MustEnqueue(db, "ok_job", "only");
  ConsumerConfig config;
  config.min_inactive_millis = 100;
  Consumer consumer = MakeConsumer(config);
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());

  // Let the grace expire; enqueue a fresh item just before the GC pass so
  // the emptiness check sees it and keeps the pointer.
  clock_.AdvanceMillis(5000);
  MustEnqueue(db, "ok_job", "again");
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_EQ(quick_->TopLevelCount("c1").value(), 1);
  EXPECT_EQ(Processed().size(), 2u);
}

TEST_F(ConsumerTest, TransientFailureRequeuedWithBackoff) {
  int failures = 2;
  RetryPolicy policy;
  policy.max_inline_retries = 0;
  policy.backoff_initial_millis = 1000;
  registry_.Register(
      "flaky",
      [&](WorkContext&) {
        if (failures > 0) {
          --failures;
          return Status::Unavailable("downstream busy");
        }
        return Status::OK();
      },
      policy);

  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  MustEnqueue(db, "flaky", "x");
  Consumer consumer = MakeConsumer();

  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_EQ(consumer.stats().items_requeued.Value(), 1);
  EXPECT_EQ(quick_->PendingCount(db).value(), 1);

  // The pointer re-vests after the item-lease window captured at dequeue
  // time (the item itself re-vested sooner, at its 1s backoff).
  clock_.AdvanceMillis(5001);
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_EQ(consumer.stats().items_requeued.Value(), 2);

  clock_.AdvanceMillis(5001);
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_EQ(consumer.stats().items_processed.Value(), 1);
  EXPECT_EQ(quick_->PendingCount(db).value(), 0);
}

TEST_F(ConsumerTest, InlineRetriesHappenBeforeRequeue) {
  int calls = 0;
  RetryPolicy policy;
  policy.max_inline_retries = 2;
  registry_.Register(
      "flaky_inline",
      [&](WorkContext&) {
        ++calls;
        return calls < 3 ? Status::Unavailable("x") : Status::OK();
      },
      policy);
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  MustEnqueue(db, "flaky_inline", "x");
  Consumer consumer = MakeConsumer();
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(consumer.stats().items_processed.Value(), 1);
  EXPECT_EQ(consumer.stats().items_requeued.Value(), 0);
  EXPECT_EQ(consumer.stats().items_failed_attempts.Value(), 2);
}

TEST_F(ConsumerTest, PermanentFailureDeletesImmediately) {
  RetryPolicy policy;
  policy.quarantine_on_failure = false;  // legacy delete path
  registry_.Register(
      "doomed",
      [](WorkContext&) { return Status::Permanent("user was deleted"); },
      policy);
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  MustEnqueue(db, "doomed", "x");
  Consumer consumer = MakeConsumer();
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_EQ(consumer.stats().items_dropped_permanent.Value(), 1);
  EXPECT_EQ(consumer.stats().items_quarantined.Value(), 0);
  EXPECT_EQ(consumer.stats().items_requeued.Value(), 0);
  EXPECT_EQ(quick_->PendingCount(db).value(), 0);
}

TEST_F(ConsumerTest, PermanentFailureQuarantinesByDefault) {
  registry_.Register("doomed", [](WorkContext&) {
    return Status::Permanent("user was deleted");
  });
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  MustEnqueue(db, "doomed", "x");
  Consumer consumer = MakeConsumer();
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_EQ(consumer.stats().items_quarantined.Value(), 1);
  EXPECT_EQ(consumer.stats().items_dropped_permanent.Value(), 0);
  EXPECT_EQ(quick_->PendingCount(db).value(), 0);
  QuickAdmin admin(quick_.get());
  ASSERT_EQ(admin.DeadLetterCount(db).value(), 1);
  auto dls = admin.ListDeadLetters(db).value();
  ASSERT_EQ(dls.size(), 1u);
  EXPECT_EQ(dls[0].job_type, "doomed");
  EXPECT_EQ(dls[0].reason, "permanent");
  EXPECT_EQ(dls[0].attempts, 1);
}

TEST_F(ConsumerTest, AttemptBudgetExhaustionDrops) {
  RetryPolicy policy;
  policy.max_inline_retries = 0;
  policy.max_attempts = 2;
  policy.drop_on_exhaust = true;
  policy.backoff_initial_millis = 10;
  policy.quarantine_on_failure = false;  // legacy delete path
  registry_.Register(
      "always_fails", [](WorkContext&) { return Status::Unavailable("x"); },
      policy);
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  MustEnqueue(db, "always_fails", "x");
  Consumer consumer = MakeConsumer();

  ASSERT_TRUE(consumer.RunOnePass("c1").ok());  // error_count -> 1, requeued
  EXPECT_EQ(quick_->PendingCount(db).value(), 1);
  clock_.AdvanceMillis(6000);  // past the pointer's lease-derived re-vest
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());  // budget hit -> dropped
  EXPECT_EQ(quick_->PendingCount(db).value(), 0);
  EXPECT_EQ(consumer.stats().items_dropped_permanent.Value(), 1);
}

TEST_F(ConsumerTest, UnknownJobTypeQuarantined) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  MustEnqueue(db, "no_such_handler", "x");
  Consumer consumer = MakeConsumer();
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  // Unknown types have no registered policy, so the default (quarantine)
  // applies: the payload is preserved for the operator, not deleted.
  EXPECT_EQ(consumer.stats().items_quarantined.Value(), 1);
  EXPECT_EQ(consumer.stats().items_dropped_permanent.Value(), 0);
  EXPECT_EQ(quick_->PendingCount(db).value(), 0);
  QuickAdmin admin(quick_.get());
  auto dls = admin.ListDeadLetters(db).value();
  ASSERT_EQ(dls.size(), 1u);
  EXPECT_EQ(dls[0].reason, "unknown_job_type");
  EXPECT_EQ(dls[0].payload, "x");
}

TEST_F(ConsumerTest, ThrottleBoundsConcurrentItemsOfType) {
  RetryPolicy policy;
  policy.max_concurrent = 1;
  registry_.Register(
      "throttled",
      [this](WorkContext& ctx) {
        std::lock_guard<std::mutex> lock(mu_);
        processed_payloads_.push_back(ctx.item.payload);
        return Status::OK();
      },
      policy);
  // In synchronous mode items process one at a time, so exercise the
  // throttle bookkeeping directly.
  Consumer consumer = MakeConsumer();
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  MustEnqueue(db, "throttled", "a");
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_EQ(Processed().size(), 1u);
  EXPECT_EQ(consumer.stats().items_throttled.Value(), 0);
}

TEST_F(ConsumerTest, LocalWorkItemsProcessed) {
  WorkItem item;
  item.job_type = "ok_job";
  item.payload = "local-payload";
  ASSERT_TRUE(quick_->EnqueueLocal("c1", item, 0).ok());
  Consumer consumer = MakeConsumer();
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_EQ(Processed(), std::vector<std::string>{"local-payload"});
  EXPECT_EQ(consumer.stats().local_items_processed.Value(), 1);
  EXPECT_EQ(quick_->TopLevelCount("c1").value(), 0);
}

TEST_F(ConsumerTest, SecondConsumerSeesLeaseCollision) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  MustEnqueue(db, "ok_job", "x");

  // Lease the pointer out-of-band, simulating another consumer mid-visit.
  const ck::DatabaseRef cluster_db = ck_->OpenClusterDb("c1");
  Pointer p{db, quick_->config().queue_zone_name};
  ASSERT_TRUE(fdb::RunTransaction(cluster_db.cluster,
                                  [&](fdb::Transaction& txn) {
                                    ck::QueueZone top =
                                        quick_->OpenTopZone(cluster_db, &txn);
                                    return top.ObtainLease(p.Key(), 5000)
                                        .status();
                                  })
                  .ok());

  Consumer consumer = MakeConsumer();
  ASSERT_TRUE(consumer.ProcessTopItem("c1", p.Key()).ok());
  EXPECT_EQ(consumer.stats().lease_collisions_read.Value(), 1);
  EXPECT_EQ(consumer.stats().pointer_leases_acquired.Value(), 0);
  EXPECT_TRUE(Processed().empty());
}

TEST_F(ConsumerTest, RandomizedSelectionRespectsSelectionMax) {
  ConsumerConfig config;
  config.sequential = false;
  config.relaxed_reads_for_peek = false;
  config.selection_frac = 1.0;
  config.selection_max = 3;
  Consumer consumer(quick_.get(), {"c1"}, &registry_, config, "rand");
  for (int i = 0; i < 10; ++i) {
    MustEnqueue(ck::DatabaseId::Private("app", "u" + std::to_string(i)),
                "ok_job", std::to_string(i));
  }
  Result<int> n = consumer.RunOnePass("c1");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 3);
  EXPECT_EQ(Processed().size(), 3u);
}

TEST_F(ConsumerTest, SelectionFracControlsBatchSize) {
  ConsumerConfig config;
  config.sequential = false;
  config.relaxed_reads_for_peek = false;
  config.selection_frac = 0.2;
  config.selection_max = 100;
  Consumer consumer(quick_.get(), {"c1"}, &registry_, config, "rand");
  for (int i = 0; i < 10; ++i) {
    MustEnqueue(ck::DatabaseId::Private("app", "u" + std::to_string(i)),
                "ok_job", std::to_string(i));
  }
  Result<int> n = consumer.RunOnePass("c1");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2);  // ceil(10 * 0.2)
}

TEST_F(ConsumerTest, SequentialElectionViaLeaseCache) {
  LeaseCache cache(&clock_);
  ConsumerConfig config;
  config.relaxed_reads_for_peek = false;
  config.sequential = false;  // ignored when a cache is provided
  Consumer a(quick_.get(), {"c1"}, &registry_, config, "consumer-a", &cache);
  Consumer b(quick_.get(), {"c1"}, &registry_, config, "consumer-b", &cache);
  MustEnqueue(ck::DatabaseId::Private("app", "u1"), "ok_job", "x");

  // First scanner to run wins the election.
  ASSERT_TRUE(a.RunOnePass("c1").ok());
  EXPECT_EQ(cache.Holder("quick-seq|c1"), "consumer-a");
  // The other stays randomized (still works, just not elected).
  MustEnqueue(ck::DatabaseId::Private("app", "u2"), "ok_job", "y");
  ASSERT_TRUE(b.RunOnePass("c1").ok());
  EXPECT_EQ(cache.Holder("quick-seq|c1"), "consumer-a");
  EXPECT_EQ(Processed().size(), 2u);
}

TEST_F(ConsumerTest, ItemLevelLeaseModeStillProcesses) {
  ConsumerConfig config;
  config.item_level_leases_only = true;
  Consumer consumer = MakeConsumer(config);
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  MustEnqueue(db, "ok_job", "x");
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_EQ(Processed(), std::vector<std::string>{"x"});
  EXPECT_EQ(quick_->PendingCount(db).value(), 0);
}

TEST_F(ConsumerTest, PointerLatencyRecorded) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  MustEnqueue(db, "ok_job", "x");
  clock_.AdvanceMillis(250);  // pointer sits vested for 250ms
  Consumer consumer = MakeConsumer();
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  ASSERT_EQ(consumer.stats().pointer_latency_micros.Count(), 1);
  EXPECT_NEAR(consumer.stats().pointer_latency_micros.Max(), 250000, 25000);
  ASSERT_EQ(consumer.stats().item_latency_micros.Count(), 1);
}

TEST_F(ConsumerTest, ProcessTopItemOnMissingIdIsOk) {
  Consumer consumer = MakeConsumer();
  EXPECT_TRUE(consumer.ProcessTopItem("c1", "no-such-pointer").ok());
  EXPECT_FALSE(consumer.ProcessTopItem("ghost-cluster", "x").ok());
}

}  // namespace
}  // namespace quick::core
