// Dead-letter quarantine: terminally-failed items move into a per-zone
// quarantine subspace in the same transaction as the queue removal ("no
// item is ever silently lost"), and leave it only through an explicit
// operator requeue or purge via QuickAdmin. Also covers the FIFO-zone
// exhaustion regression: every terminal transition must use the zone's
// actual schema, or sticky arrival stamps survive the delete.

#include <gtest/gtest.h>

#include "fdb/retry.h"
#include "quick/admin.h"
#include "quick/consumer.h"

namespace quick::core {
namespace {

class QuarantineTest : public ::testing::Test {
 protected:
  QuarantineTest() { Init(QuickConfig{}); }

  void Init(QuickConfig qconfig) {
    fdb::Database::Options opts;
    opts.clock = &clock_;
    clusters_ = std::make_unique<fdb::ClusterSet>(opts);
    clusters_->AddCluster("c1");
    ck_ = std::make_unique<ck::CloudKitService>(clusters_.get(), &clock_);
    quick_ = std::make_unique<Quick>(ck_.get(), qconfig);
    admin_ = std::make_unique<QuickAdmin>(quick_.get());
  }

  ConsumerConfig TestConfig() {
    ConsumerConfig config;
    config.sequential = true;
    config.relaxed_reads_for_peek = false;
    return config;
  }

  std::string MustEnqueue(const ck::DatabaseId& db, const std::string& type,
                          const std::string& payload, int64_t priority = 0) {
    WorkItem item;
    item.job_type = type;
    item.payload = payload;
    item.priority = priority;
    auto id = quick_->Enqueue(db, item, 0);
    EXPECT_TRUE(id.ok()) << id.status();
    return id.value_or("");
  }

  /// Runs `fn` inside one transaction over the tenant's queue zone.
  Status WithZone(const ck::DatabaseId& db_id,
                  const std::function<Status(ck::QueueZone&)>& fn) {
    const ck::DatabaseRef db = ck_->OpenDatabase(db_id);
    return fdb::RunTransaction(db.cluster, [&](fdb::Transaction& txn) {
      ck::QueueZone zone = quick_->OpenTenantZone(db, &txn);
      return fn(zone);
    });
  }

  ManualClock clock_{50000};
  std::unique_ptr<fdb::ClusterSet> clusters_;
  std::unique_ptr<ck::CloudKitService> ck_;
  std::unique_ptr<Quick> quick_;
  std::unique_ptr<QuickAdmin> admin_;
  JobRegistry registry_;
};

// --- Zone-level semantics ---------------------------------------------------

TEST_F(QuarantineTest, QuarantinePreservesItemAndAccounting) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  const std::string id = MustEnqueue(db, "jt", "precious-payload", 7);

  std::string lease;
  ASSERT_TRUE(WithZone(db, [&](ck::QueueZone& zone) {
                QUICK_ASSIGN_OR_RETURN(lease, zone.ObtainLease(id, 5000));
                return Status::OK();
              }).ok());
  clock_.AdvanceMillis(123);
  ASSERT_TRUE(WithZone(db, [&](ck::QueueZone& zone) {
                return zone.Quarantine(id, lease, "permanent", "disk on fire");
              }).ok());

  // Gone from the queue (count, emptiness — i.e. pointer GC proceeds)...
  EXPECT_EQ(quick_->PendingCount(db).value(), 0);
  ASSERT_TRUE(WithZone(db, [&](ck::QueueZone& zone) {
                QUICK_ASSIGN_OR_RETURN(bool empty, zone.IsEmpty());
                EXPECT_TRUE(empty);
                return Status::OK();
              }).ok());

  // ...but fully preserved in the quarantine.
  EXPECT_EQ(admin_->DeadLetterCount(db).value(), 1);
  auto dls = admin_->ListDeadLetters(db).value();
  ASSERT_EQ(dls.size(), 1u);
  EXPECT_EQ(dls[0].id, id);
  EXPECT_EQ(dls[0].job_type, "jt");
  EXPECT_EQ(dls[0].payload, "precious-payload");
  EXPECT_EQ(dls[0].priority, 7);
  EXPECT_EQ(dls[0].attempts, 1);  // error_count 0 + the failing attempt
  EXPECT_EQ(dls[0].reason, "permanent");
  EXPECT_EQ(dls[0].final_error, "disk on fire");
  EXPECT_EQ(dls[0].quarantine_time, clock_.NowMillis());
  EXPECT_GT(dls[0].enqueue_time, 0);
}

TEST_F(QuarantineTest, QuarantineIsFencedByLeaseId) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  const std::string id = MustEnqueue(db, "jt", "x");

  std::string stale;
  ASSERT_TRUE(WithZone(db, [&](ck::QueueZone& zone) {
                QUICK_ASSIGN_OR_RETURN(stale, zone.ObtainLease(id, 1000));
                return Status::OK();
              }).ok());
  clock_.AdvanceMillis(1500);  // lease expires
  std::string fresh;
  ASSERT_TRUE(WithZone(db, [&](ck::QueueZone& zone) {
                QUICK_ASSIGN_OR_RETURN(fresh, zone.ObtainLease(id, 5000));
                return Status::OK();
              }).ok());

  // The zombie's quarantine is rejected; the live lease's succeeds.
  Status z = WithZone(db, [&](ck::QueueZone& zone) {
    return zone.Quarantine(id, stale, "permanent", "zombie says so");
  });
  EXPECT_TRUE(z.IsLeaseLost()) << z;
  EXPECT_EQ(quick_->PendingCount(db).value(), 1);
  EXPECT_EQ(admin_->DeadLetterCount(db).value(), 0);
  EXPECT_TRUE(WithZone(db, [&](ck::QueueZone& zone) {
                return zone.Quarantine(id, fresh, "permanent", "for real");
              }).ok());
  EXPECT_EQ(admin_->DeadLetterCount(db).value(), 1);
}

TEST_F(QuarantineTest, ListOrdersByQuarantineTimeAndHonorsLimit) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  std::vector<std::string> ids;
  for (int i = 0; i < 3; ++i) {
    ids.push_back(MustEnqueue(db, "jt", "p" + std::to_string(i)));
  }
  for (const std::string& id : ids) {
    clock_.AdvanceMillis(10);
    ASSERT_TRUE(WithZone(db, [&](ck::QueueZone& zone) {
                  return zone.Quarantine(id, std::nullopt, "permanent", "e");
                }).ok());
  }
  auto all = admin_->ListDeadLetters(db).value();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].id, ids[0]);  // oldest quarantine first
  EXPECT_EQ(all[2].id, ids[2]);
  EXPECT_EQ(admin_->ListDeadLetters(db, /*limit=*/2).value().size(), 2u);
}

// --- Consumer end-to-end + admin drain --------------------------------------

TEST_F(QuarantineTest, RequeueDeadLetterRoundTripsThroughFullPipeline) {
  // A handler that fails permanently until "healed", then succeeds: the
  // operator-fixes-the-bug-then-requeues story.
  bool healed = false;
  std::vector<std::string> processed;
  registry_.Register("flappy", [&](WorkContext& ctx) {
    if (!healed) return Status::Permanent("bug #123");
    processed.push_back(ctx.item.payload);
    return Status::OK();
  });
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  const std::string id = MustEnqueue(db, "flappy", "the-work");

  ConsumerConfig config = TestConfig();
  config.min_inactive_millis = 500;  // GC cold pointers quickly
  Consumer consumer(quick_.get(), {"c1"}, &registry_, config, "a");
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_EQ(consumer.stats().items_quarantined.Value(), 1);
  EXPECT_EQ(admin_->DeadLetterCount(db).value(), 1);

  // Let the (now empty) pointer re-vest (it was requeued to the dequeued
  // item's lease horizon) and get GCed, so the requeue must recreate it.
  clock_.AdvanceMillis(6000);
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  ASSERT_EQ(quick_->TopLevelCount("c1").value(), 0);

  const int64_t requeued_before =
      MetricsRegistry::Default()->GetCounter("quick.deadletter.requeued")
          ->Value();
  healed = true;
  ASSERT_TRUE(admin_->RequeueDeadLetter(db, id).ok());
  EXPECT_EQ(MetricsRegistry::Default()
                ->GetCounter("quick.deadletter.requeued")
                ->Value(),
            requeued_before + 1);
  // Quarantine emptied, pointer recreated, item findable again.
  EXPECT_EQ(admin_->DeadLetterCount(db).value(), 0);
  EXPECT_EQ(quick_->TopLevelCount("c1").value(), 1);
  EXPECT_EQ(quick_->PendingCount(db).value(), 1);

  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_EQ(processed, std::vector<std::string>{"the-work"});
  EXPECT_EQ(quick_->PendingCount(db).value(), 0);
}

TEST_F(QuarantineTest, RequeueResetsErrorCount) {
  RetryPolicy policy;
  policy.max_inline_retries = 0;
  policy.max_attempts = 2;
  policy.drop_on_exhaust = true;
  policy.backoff_initial_millis = 10;
  int failures = 0;
  registry_.Register(
      "sick",
      [&](WorkContext& ctx) {
        ++failures;
        EXPECT_LE(ctx.item.error_count, 1);  // never resumes an old budget
        return Status::Unavailable("down");
      },
      policy);
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  const std::string id = MustEnqueue(db, "sick", "x");
  Consumer consumer(quick_.get(), {"c1"}, &registry_, TestConfig(), "a");

  for (int pass = 0; pass < 4 && failures < 2; ++pass) {
    ASSERT_TRUE(consumer.RunOnePass("c1").ok());
    clock_.AdvanceMillis(6000);
  }
  ASSERT_EQ(admin_->DeadLetterCount(db).value(), 1);
  EXPECT_EQ(admin_->ListDeadLetters(db).value()[0].attempts, 2);

  // After requeue the attempt budget restarts: two more attempts happen
  // before the item is quarantined again, not zero.
  ASSERT_TRUE(admin_->RequeueDeadLetter(db, id).ok());
  for (int pass = 0; pass < 4 && failures < 4; ++pass) {
    ASSERT_TRUE(consumer.RunOnePass("c1").ok());
    clock_.AdvanceMillis(6000);
  }
  EXPECT_EQ(failures, 4);
  EXPECT_EQ(admin_->DeadLetterCount(db).value(), 1);
}

TEST_F(QuarantineTest, RequeueAllAndPurge) {
  registry_.Register("doomed",
                     [](WorkContext&) { return Status::Permanent("no"); });
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  MustEnqueue(db, "doomed", "a");
  MustEnqueue(db, "doomed", "b");
  const std::string purge_id = MustEnqueue(db, "doomed", "c");
  Consumer consumer(quick_.get(), {"c1"}, &registry_, TestConfig(), "a");
  for (int pass = 0; pass < 3 && admin_->DeadLetterCount(db).value() < 3;
       ++pass) {
    ASSERT_TRUE(consumer.RunOnePass("c1").ok());
    clock_.AdvanceMillis(2000);
  }
  ASSERT_EQ(admin_->DeadLetterCount(db).value(), 3);

  const int64_t purged_before =
      MetricsRegistry::Default()->GetCounter("quick.deadletter.purged")
          ->Value();
  ASSERT_TRUE(admin_->PurgeDeadLetter(db, purge_id).ok());
  EXPECT_EQ(MetricsRegistry::Default()
                ->GetCounter("quick.deadletter.purged")
                ->Value(),
            purged_before + 1);
  EXPECT_TRUE(admin_->PurgeDeadLetter(db, purge_id).IsNotFound());

  EXPECT_EQ(admin_->RequeueAllDeadLetters(db).value(), 2);
  EXPECT_EQ(admin_->DeadLetterCount(db).value(), 0);
  EXPECT_EQ(quick_->PendingCount(db).value(), 2);
  // InspectTenant surfaces the quarantine depth.
  EXPECT_EQ(admin_->InspectTenant(db).value().dead_letters, 0);
}

TEST_F(QuarantineTest, CorruptPointerQuarantinedInClusterShard) {
  // Plant a pointer whose db_key does not parse; the consumer must move it
  // into the top-level zone's quarantine instead of deleting it.
  const ck::DatabaseRef cluster_db = ck_->OpenClusterDb("c1");
  std::string bad_id;
  ASSERT_TRUE(fdb::RunTransaction(cluster_db.cluster,
                                  [&](fdb::Transaction& txn) {
                                    ck::QueueZone top =
                                        quick_->OpenTopZone(cluster_db, &txn);
                                    ck::QueuedItem item;
                                    item.job_type = ck::kPointerJobType;
                                    item.db_key = "not|a|valid|pointer";
                                    item.payload = "junk";
                                    QUICK_ASSIGN_OR_RETURN(
                                        bad_id, top.Enqueue(std::move(item), 0));
                                    return Status::OK();
                                  })
                  .ok());
  Consumer consumer(quick_.get(), {"c1"}, &registry_, TestConfig(), "a");
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_EQ(consumer.stats().items_quarantined.Value(), 1);
  EXPECT_EQ(quick_->TopLevelCount("c1").value(), 0);

  auto dls = admin_->ListClusterDeadLetters("c1").value();
  ASSERT_EQ(dls.size(), 1u);
  EXPECT_EQ(dls[0].id, bad_id);
  EXPECT_EQ(dls[0].reason, "corrupt_pointer");

  // Operator decision: purge it (requeueing junk would just loop).
  ASSERT_TRUE(admin_->PurgeClusterDeadLetter("c1", bad_id).ok());
  EXPECT_EQ(admin_->ListClusterDeadLetters("c1").value().size(), 0u);
}

TEST_F(QuarantineTest, RequeueClusterDeadLetterRestoresLocalItem) {
  // A local work item with no handler quarantines in its top-level shard;
  // a cluster-level requeue makes it runnable again.
  WorkItem item;
  item.job_type = "local_fix";
  item.payload = "local-payload";
  auto id = quick_->EnqueueLocal("c1", item, 0);
  ASSERT_TRUE(id.ok());

  Consumer consumer(quick_.get(), {"c1"}, &registry_, TestConfig(), "a");
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());  // unknown type -> quarantined
  ASSERT_EQ(admin_->ListClusterDeadLetters("c1").value().size(), 1u);
  EXPECT_EQ(quick_->TopLevelCount("c1").value(), 0);

  std::vector<std::string> processed;
  registry_.Register("local_fix", [&](WorkContext& ctx) {
    processed.push_back(ctx.item.payload);
    return Status::OK();
  });
  ASSERT_TRUE(admin_->RequeueClusterDeadLetter("c1", id.value()).ok());
  EXPECT_EQ(quick_->TopLevelCount("c1").value(), 1);
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_EQ(processed, std::vector<std::string>{"local-payload"});
  EXPECT_EQ(admin_->ListClusterDeadLetters("c1").value().size(), 0u);
}

// --- FIFO-zone regression ---------------------------------------------------

TEST_F(QuarantineTest, FifoZoneExhaustionKeepsArrivalOrderConsistent) {
  // Regression: the exhaustion-drop path used to open the tenant zone
  // without the FIFO schema, so the delete left the sticky arrival stamp
  // behind; re-enqueueing the same id then resurrected the OLD stamp and
  // the item jumped the line. Every terminal transition must honour the
  // zone's schema.
  QuickConfig qconfig;
  qconfig.fifo_tenant_zones = true;
  Init(qconfig);

  RetryPolicy policy;
  policy.max_inline_retries = 0;
  policy.max_attempts = 1;
  policy.drop_on_exhaust = true;
  policy.quarantine_on_failure = false;  // the legacy delete had the bug
  bool fail = true;
  std::vector<std::string> order;
  registry_.Register(
      "t",
      [&](WorkContext& ctx) {
        if (fail) return Status::Unavailable("down");
        order.push_back(ctx.item.payload);
        return Status::OK();
      },
      policy);

  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  WorkItem first;
  first.job_type = "t";
  first.payload = "old-x";
  first.id = "x";  // fixed id so the re-enqueue collides with the stamp
  ASSERT_TRUE(quick_->Enqueue(db, first, 0).ok());

  ConsumerConfig config = TestConfig();
  config.fifo_tenant_zones = true;
  Consumer consumer(quick_.get(), {"c1"}, &registry_, config, "fifo");
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());  // exhausted -> legacy drop
  ASSERT_EQ(quick_->PendingCount(db).value(), 0);

  // The drop must have cleared the arrival stamp with the record.
  const ck::DatabaseRef dbref = ck_->OpenDatabase(db);
  ASSERT_TRUE(fdb::RunTransaction(dbref.cluster,
                                  [&](fdb::Transaction& txn) {
                                    ck::QueueZone zone =
                                        quick_->OpenTenantZone(dbref, &txn);
                                    QUICK_ASSIGN_OR_RETURN(
                                        std::optional<std::string> stamp,
                                        zone.ArrivalStamp("x"));
                                    EXPECT_FALSE(stamp.has_value());
                                    return Status::OK();
                                  })
                  .ok());

  // "y" enqueued before "x" returns must process before it.
  fail = false;
  WorkItem second;
  second.job_type = "t";
  second.payload = "y";
  ASSERT_TRUE(quick_->Enqueue(db, second, 0).ok());
  WorkItem again;
  again.job_type = "t";
  again.payload = "new-x";
  again.id = "x";
  ASSERT_TRUE(quick_->Enqueue(db, again, 0).ok());

  clock_.AdvanceMillis(6000);
  for (int pass = 0; pass < 3; ++pass) {
    ASSERT_TRUE(consumer.RunOnePass("c1").ok());
    clock_.AdvanceMillis(2000);
  }
  EXPECT_EQ(order, (std::vector<std::string>{"y", "new-x"}));
}

TEST_F(QuarantineTest, FifoZoneQuarantineClearsArrivalStampToo) {
  QuickConfig qconfig;
  qconfig.fifo_tenant_zones = true;
  Init(qconfig);

  registry_.Register("doomed",
                     [](WorkContext&) { return Status::Permanent("no"); });
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  WorkItem item;
  item.job_type = "doomed";
  item.payload = "p";
  item.id = "x";
  ASSERT_TRUE(quick_->Enqueue(db, item, 0).ok());

  ConsumerConfig config = TestConfig();
  config.fifo_tenant_zones = true;
  Consumer consumer(quick_.get(), {"c1"}, &registry_, config, "fifo");
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_EQ(consumer.stats().items_quarantined.Value(), 1);

  const ck::DatabaseRef dbref = ck_->OpenDatabase(db);
  ASSERT_TRUE(fdb::RunTransaction(dbref.cluster,
                                  [&](fdb::Transaction& txn) {
                                    ck::QueueZone zone =
                                        quick_->OpenTenantZone(dbref, &txn);
                                    QUICK_ASSIGN_OR_RETURN(
                                        std::optional<std::string> stamp,
                                        zone.ArrivalStamp("x"));
                                    EXPECT_FALSE(stamp.has_value());
                                    return Status::OK();
                                  })
                  .ok());
  EXPECT_EQ(admin_->DeadLetterCount(db).value(), 1);
}

}  // namespace
}  // namespace quick::core
