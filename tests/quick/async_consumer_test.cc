// End-to-end tests of the async pipelined consumer core (DESIGN.md §11):
// a Start()ed consumer with config.async_pipeline drives lease / dequeue /
// finish transactions through the cluster's async group-commit pipeline
// with a bounded in-flight window. Verified here:
//   - everything enqueued executes and the pointers GC to empty, with the
//     per-stage histograms and batching counters populated;
//   - a tiny window engages scanner backpressure without deadlocking;
//   - two async consumers contend on the same clusters and still drain;
//   - Stop() mid-flight drains the window (no stuck chains) and a
//     successor finishes the backlog;
//   - the synchronous RunOnePass path is untouched by the async config.

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "quick/consumer.h"
#include "workload/harness.h"

namespace quick::wl {
namespace {

constexpr const char* kCluster = "cluster0";

bool WaitUntil(const std::function<bool()>& pred, int64_t timeout_millis) {
  for (int64_t waited = 0; waited < timeout_millis; waited += 5) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

core::ConsumerConfig AsyncConfig() {
  core::ConsumerConfig config;
  config.sequential = true;
  config.relaxed_reads_for_peek = false;
  config.dequeue_max = 2;
  config.pointer_lease_millis = 2000;
  config.item_lease_millis = 5000;
  config.min_inactive_millis = 200;
  config.idle_sleep_millis = 2;
  config.num_worker_threads = 4;
  config.async_pipeline = true;
  config.max_inflight_txns = 128;
  config.lease_batch_size = 4;
  config.async_executor_threads = 4;
  return config;
}

TEST(AsyncConsumerTest, DrainsEverythingWithBatchedLeases) {
  HarnessOptions hopts;
  hopts.num_clusters = 1;
  hopts.work_millis = 0;
  hopts.pointer_vesting_slack_millis = 0;
  hopts.latency.commit_micros = 1000;  // real commit RTTs to overlap
  Harness harness(hopts);

  std::mutex mu;
  std::set<std::string> executed;
  harness.registry()->Register("track", [&](core::WorkContext& ctx) {
    std::lock_guard<std::mutex> lock(mu);
    executed.insert(ctx.item.id);
    return Status::OK();
  });

  constexpr int kItems = 200;
  constexpr int kClients = 8;
  std::set<std::string> enqueued;
  for (int i = 0; i < kItems; ++i) {
    core::WorkItem item;
    item.job_type = "track";
    auto id = harness.quick()->Enqueue(harness.ClientDb(i % kClients), item);
    ASSERT_TRUE(id.ok()) << id.status();
    enqueued.insert(*id);
  }

  auto consumer = harness.MakeConsumer(AsyncConfig(), "async-drain");
  consumer->Start();
  EXPECT_TRUE(WaitUntil(
      [&] {
        std::lock_guard<std::mutex> lock(mu);
        return executed.size() >= enqueued.size();
      },
      30000))
      << "async pipeline stalled at " << executed.size() << "/"
      << enqueued.size();
  // Keep running until pointer GC empties the top-level queue.
  EXPECT_TRUE(WaitUntil(
      [&] {
        return harness.quick()->TopLevelCount(kCluster).value_or(-1) == 0;
      },
      15000));
  consumer->Stop();

  {
    std::lock_guard<std::mutex> lock(mu);
    for (const std::string& id : enqueued) {
      EXPECT_TRUE(executed.count(id)) << "item " << id << " never executed";
    }
  }
  const core::ConsumerStats& stats = consumer->stats();
  EXPECT_GT(stats.lease_batches.Value(), 0)
      << "no multi-pointer lease batch ever committed";
  EXPECT_GE(stats.items_processed.Value(), static_cast<int64_t>(kItems));
  // Per-stage histograms pin where async time goes (ISSUE acceptance).
  EXPECT_GT(stats.scan_micros.Count(), 0);
  EXPECT_GT(stats.lease_txn_micros.Count(), 0);
  EXPECT_GT(stats.dequeue_txn_micros.Count(), 0);
  EXPECT_GT(stats.finish_txn_micros.Count(), 0);
}

// A window of one forces the scanner to stall between batches: the
// backpressure counter must tick and the drain must still complete (no
// lost slots, no self-deadlock).
TEST(AsyncConsumerTest, TinyWindowEngagesBackpressure) {
  HarnessOptions hopts;
  hopts.num_clusters = 1;
  hopts.work_millis = 0;
  hopts.pointer_vesting_slack_millis = 0;
  hopts.latency.commit_micros = 2000;  // chains linger, window stays full
  Harness harness(hopts);

  std::mutex mu;
  std::set<std::string> executed;
  harness.registry()->Register("track", [&](core::WorkContext& ctx) {
    std::lock_guard<std::mutex> lock(mu);
    executed.insert(ctx.item.id);
    return Status::OK();
  });

  std::set<std::string> enqueued;
  for (int i = 0; i < 40; ++i) {
    core::WorkItem item;
    item.job_type = "track";
    auto id = harness.quick()->Enqueue(harness.ClientDb(i % 8), item);
    ASSERT_TRUE(id.ok()) << id.status();
    enqueued.insert(*id);
  }

  core::ConsumerConfig config = AsyncConfig();
  config.max_inflight_txns = 1;
  config.lease_batch_size = 1;
  auto consumer = harness.MakeConsumer(config, "async-tiny-window");
  consumer->Start();
  EXPECT_TRUE(WaitUntil(
      [&] {
        std::lock_guard<std::mutex> lock(mu);
        return executed.size() >= enqueued.size();
      },
      30000));
  consumer->Stop();

  {
    std::lock_guard<std::mutex> lock(mu);
    for (const std::string& id : enqueued) {
      EXPECT_TRUE(executed.count(id)) << "item " << id << " never executed";
    }
  }
  EXPECT_GT(consumer->stats().backpressure_waits.Value(), 0)
      << "a window of 1 never stalled the scanner";
}

// Two async consumers over the same cluster: lease collisions and batch
// fallbacks may fire, but at-least-once still holds for every item.
TEST(AsyncConsumerTest, TwoConsumersContendAndDrain) {
  HarnessOptions hopts;
  hopts.num_clusters = 1;
  hopts.work_millis = 0;
  hopts.pointer_vesting_slack_millis = 0;
  hopts.latency.commit_micros = 1000;
  Harness harness(hopts);

  std::mutex mu;
  std::set<std::string> executed;
  harness.registry()->Register("track", [&](core::WorkContext& ctx) {
    std::lock_guard<std::mutex> lock(mu);
    executed.insert(ctx.item.id);
    return Status::OK();
  });

  std::set<std::string> enqueued;
  for (int i = 0; i < 100; ++i) {
    core::WorkItem item;
    item.job_type = "track";
    auto id = harness.quick()->Enqueue(harness.ClientDb(i % 8), item);
    ASSERT_TRUE(id.ok()) << id.status();
    enqueued.insert(*id);
  }

  core::ConsumerConfig config = AsyncConfig();
  config.sequential = false;  // randomized selection: contention differs
  auto c1 = harness.MakeConsumer(config, "async-contend-1");
  auto c2 = harness.MakeConsumer(config, "async-contend-2");
  c1->Start();
  c2->Start();
  EXPECT_TRUE(WaitUntil(
      [&] {
        std::lock_guard<std::mutex> lock(mu);
        return executed.size() >= enqueued.size();
      },
      30000));
  c1->Stop();
  c2->Stop();

  std::lock_guard<std::mutex> lock(mu);
  for (const std::string& id : enqueued) {
    EXPECT_TRUE(executed.count(id)) << "item " << id << " never executed";
  }
}

// Stop() mid-flight: the window drains (Stop returns), nothing wedges,
// and a successor consumer finishes the backlog — abandoned leases expire
// and at-least-once carries across the handoff.
TEST(AsyncConsumerTest, StopMidFlightThenSuccessorFinishes) {
  HarnessOptions hopts;
  hopts.num_clusters = 1;
  hopts.work_millis = 0;
  hopts.pointer_vesting_slack_millis = 0;
  hopts.latency.commit_micros = 1000;
  Harness harness(hopts);

  std::mutex mu;
  std::set<std::string> executed;
  harness.registry()->Register("track", [&](core::WorkContext& ctx) {
    std::lock_guard<std::mutex> lock(mu);
    executed.insert(ctx.item.id);
    return Status::OK();
  });

  std::set<std::string> enqueued;
  for (int i = 0; i < 150; ++i) {
    core::WorkItem item;
    item.job_type = "track";
    auto id = harness.quick()->Enqueue(harness.ClientDb(i % 8), item);
    ASSERT_TRUE(id.ok()) << id.status();
    enqueued.insert(*id);
  }

  core::ConsumerConfig config = AsyncConfig();
  config.pointer_lease_millis = 300;  // abandoned leases expire quickly
  config.item_lease_millis = 600;
  auto first = harness.MakeConsumer(config, "async-stopped");
  first->Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  first->Stop();  // mid-flight: must drain the window and return
  EXPECT_FALSE(first->running());

  auto successor = harness.MakeConsumer(config, "async-successor");
  successor->Start();
  EXPECT_TRUE(WaitUntil(
      [&] {
        std::lock_guard<std::mutex> lock(mu);
        return executed.size() >= enqueued.size();
      },
      30000));
  successor->Stop();

  std::lock_guard<std::mutex> lock(mu);
  for (const std::string& id : enqueued) {
    EXPECT_TRUE(executed.count(id)) << "item " << id << " lost across Stop()";
  }
}

// The synchronous single-threaded mode must be unaffected by async
// configuration: a consumer that is never Start()ed processes inline via
// RunOnePass exactly as before.
TEST(AsyncConsumerTest, RunOnePassStillSynchronousWithAsyncConfig) {
  HarnessOptions hopts;
  hopts.num_clusters = 1;
  hopts.work_millis = 0;
  hopts.pointer_vesting_slack_millis = 0;
  Harness harness(hopts);

  std::mutex mu;
  std::set<std::string> executed;
  harness.registry()->Register("track", [&](core::WorkContext& ctx) {
    std::lock_guard<std::mutex> lock(mu);
    executed.insert(ctx.item.id);
    return Status::OK();
  });

  std::set<std::string> enqueued;
  for (int i = 0; i < 5; ++i) {
    core::WorkItem item;
    item.job_type = "track";
    auto id = harness.quick()->Enqueue(harness.ClientDb(i), item);
    ASSERT_TRUE(id.ok()) << id.status();
    enqueued.insert(*id);
  }

  auto consumer = harness.MakeConsumer(AsyncConfig(), "async-inline");
  for (int pass = 0; pass < 20 && executed.size() < enqueued.size(); ++pass) {
    auto processed = consumer->RunOnePass(kCluster);
    ASSERT_TRUE(processed.ok()) << processed.status();
  }
  for (const std::string& id : enqueued) {
    EXPECT_TRUE(executed.count(id)) << "item " << id << " never executed";
  }
  EXPECT_EQ(consumer->stats().lease_batches.Value(), 0)
      << "inline pass leaked into the async path";
}

}  // namespace
}  // namespace quick::wl
