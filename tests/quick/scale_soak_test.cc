// Scale soak (DESIGN.md §12): many clusters × 100k+ tenants under Zipf
// skew, drained by striped async consumers. Asserts the invariants that
// matter at scale:
//   - exact accounting: executed ⊎ dead-lettered covers every confirmed
//     enqueue (nothing lost, nothing duplicated);
//   - the top-level queues drain to zero, including per-shard pointer GC;
//   - memory stays bounded: once idle past the MVCC window, every
//     cluster's version store collapses back to its live keys and the
//     resolver forgets old commits;
//   - per-cluster load scores and per-shard backlogs stay in balance.
//
// The tenant count scales down under sanitizers; QUICK_SCALE_TENANTS /
// QUICK_SCALE_CLUSTERS / QUICK_SCALE_SHARDS override for bigger runs.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "control/load_monitor.h"
#include "fdb/retry.h"
#include "quick/admin.h"
#include "workload/harness.h"
#include "workload/zipf.h"

namespace quick::wl {
namespace {

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoll(v, nullptr, 10) : fallback;
}

int64_t NowMillis() { return SystemClock::Default()->NowMillis(); }

TEST(ScaleSoakTest, ZipfTenantsDrainExactlyAndStayBounded) {
  const int tenants =
      static_cast<int>(EnvInt("QUICK_SCALE_TENANTS", kSanitized ? 6000 : 100000));
  const int n_clusters =
      static_cast<int>(EnvInt("QUICK_SCALE_CLUSTERS", kSanitized ? 4 : 16));
  const int n_shards =
      static_cast<int>(EnvInt("QUICK_SCALE_SHARDS", kSanitized ? 4 : 16));

  HarnessOptions options;
  options.num_clusters = n_clusters;
  options.top_zone_shards = n_shards;
  options.work_millis = 0;
  options.pointer_vesting_slack_millis = 10;
  options.seed = 7;
  Harness harness(options);

  // A poison job type that fails terminally on its first attempt: its
  // items must all land in dead-letter quarantine, never be lost, and
  // never count as executed.
  core::RetryPolicy poison_policy;
  poison_policy.max_inline_retries = 0;
  poison_policy.max_attempts = 1;
  poison_policy.backoff_initial_millis = 1;
  harness.registry()->Register(
      "poison", [](core::WorkContext&) { return Status::Internal("poison"); },
      poison_policy);

  // Load-score baseline before any traffic.
  MetricsRegistry* registry = MetricsRegistry::Default();
  control::LoadMonitor monitor(harness.cloudkit(), {}, SystemClock::Default(),
                               registry);
  core::QuickAdmin admin(harness.quick());
  monitor.SetShardBacklogProbe([&] {
    std::vector<control::ShardBacklogSample> out;
    for (const std::string& cluster : harness.cluster_names()) {
      auto info = admin.InspectCluster(cluster);
      if (!info.ok()) continue;
      for (size_t i = 0; i < info->shards.size(); ++i) {
        control::ShardBacklogSample s;
        s.cluster = cluster;
        s.shard = static_cast<int>(i);
        s.entries = info->shards[i].entries;
        out.push_back(s);
      }
    }
    return out;
  });
  monitor.Tick();

  // Zipf(0.9) offered load over the tenant universe — ~1.5 draws per
  // tenant, capped per tenant so the hottest queue enqueues in a handful
  // of batch transactions (the cap models per-tenant admission control,
  // not the sampler).
  ZipfSampler zipf(tenants, 0.9);
  Random rng(options.seed);
  std::vector<int> items_per_tenant(static_cast<size_t>(tenants), 0);
  const int64_t draws = static_cast<int64_t>(tenants) * 3 / 2;
  for (int64_t i = 0; i < draws; ++i) {
    int& n = items_per_tenant[static_cast<size_t>(zipf.Sample(&rng))];
    if (n < 64) ++n;
  }

  std::atomic<int64_t> enqueued{0};
  std::atomic<int64_t> poison{0};
  std::atomic<int64_t> enqueue_errors{0};
  const int loader_threads = 8;
  std::vector<std::thread> loaders;
  loaders.reserve(loader_threads);
  for (int t = 0; t < loader_threads; ++t) {
    loaders.emplace_back([&, t] {
      for (int client = t; client < tenants; client += loader_threads) {
        int remaining = items_per_tenant[static_cast<size_t>(client)];
        while (remaining > 0) {
          const int batch = std::min(remaining, 8);
          if (harness.EnqueueSim(client, batch).ok()) {
            enqueued.fetch_add(batch, std::memory_order_relaxed);
          } else {
            enqueue_errors.fetch_add(1, std::memory_order_relaxed);
          }
          remaining -= batch;
        }
        if (client % 997 == 0) {
          core::WorkItem item;
          item.job_type = "poison";
          if (harness.quick()->Enqueue(harness.ClientDb(client), item, 0).ok()) {
            poison.fetch_add(1, std::memory_order_relaxed);
          } else {
            enqueue_errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& th : loaders) th.join();
  ASSERT_EQ(enqueue_errors.load(), 0);
  ASSERT_GT(enqueued.load(), tenants / 2);
  ASSERT_GT(poison.load(), 0);

  // Mid-load snapshot: per-cluster enqueue rates and per-shard backlogs
  // while every queue is full.
  monitor.Tick();
  {
    const std::vector<control::ClusterLoad> loads = monitor.ClusterLoads();
    ASSERT_EQ(loads.size(), static_cast<size_t>(n_clusters));
    double total = 0;
    for (const control::ClusterLoad& c : loads) total += c.score;
    const double mean = total / n_clusters;
    ASSERT_GT(mean, 0.0);
    // Hash placement spreads the (capped) Zipf skew: no cluster should
    // carry more than 4x the mean load score.
    EXPECT_LE(loads.front().score, 4.0 * mean)
        << loads.front().cluster << " score " << loads.front().score
        << " vs mean " << mean;
    // Per-shard pointer backlogs inside each cluster stay balanced too.
    for (const auto& [cluster, ratio] : monitor.ShardImbalance()) {
      EXPECT_LE(ratio, 2.5) << cluster;
    }
    // The per-shard gauges were exported.
    int64_t cluster0_backlog = 0;
    for (int i = 0; i < n_shards; ++i) {
      cluster0_backlog +=
          registry->GetGauge("ck.zone.top_backlog.cluster0." + std::to_string(i))
              ->Value();
    }
    EXPECT_GT(cluster0_backlog, 0);
  }

  // Drain with striped async consumers (the tentpole configuration).
  core::ConsumerConfig cc;
  cc.striped_scanners = true;
  cc.async_pipeline = true;
  cc.dequeue_max = 8;
  cc.pointer_lease_millis = 2000;
  cc.min_inactive_millis = 200;
  cc.idle_sleep_millis = 5;
  cc.num_worker_threads = 4;
  cc.async_executor_threads = 4;
  cc.max_inflight_txns = 128;
  const int n_consumers = 4;
  std::vector<std::unique_ptr<core::Consumer>> consumers;
  for (int i = 0; i < n_consumers; ++i) {
    consumers.push_back(
        harness.MakeConsumer(cc, "soak-" + std::to_string(i)));
    consumers.back()->Start();
  }

  const int64_t expected_total = enqueued.load() + poison.load();
  auto quarantined = [&] {
    int64_t total = 0;
    for (const auto& c : consumers) {
      total += c->stats().items_quarantined.Value();
    }
    return total;
  };
  auto accounted = [&] { return harness.WorkExecuted() + quarantined(); };
  const int64_t drain_deadline = NowMillis() + (kSanitized ? 600000 : 300000);
  while (accounted() < expected_total && NowMillis() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // Exact partition: every confirmed enqueue was either executed or
  // dead-lettered — and the two sides match their own ledgers exactly.
  ASSERT_EQ(accounted(), expected_total) << "drain timed out";
  EXPECT_EQ(harness.WorkExecuted(), enqueued.load());
  EXPECT_EQ(quarantined(), poison.load());

  // Every top-level shard drains to zero: executed items leave their
  // queues and per-shard pointer GC reclaims the pointers.
  auto top_total = [&] {
    int64_t total = 0;
    for (const std::string& cluster : harness.cluster_names()) {
      total += harness.quick()->TopLevelCount(cluster).value_or(-1);
    }
    return total;
  };
  const int64_t gc_deadline = NowMillis() + 120000;
  while (top_total() > 0 && NowMillis() < gc_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_EQ(top_total(), 0);

  for (const auto& c : consumers) c->Stop();

  // Bounded memory: idle past the MVCC window, then one write per cluster
  // to trigger the prune sweep. Version chains must collapse back to the
  // live keys and the resolver must forget the soak's commits.
  std::this_thread::sleep_for(std::chrono::milliseconds(6000));
  for (const std::string& cluster : harness.cluster_names()) {
    fdb::Database* db = harness.clusters()->Get(cluster);
    ASSERT_NE(db, nullptr);
    Status st = fdb::RunTransaction(db, [&](fdb::Transaction& txn) {
      txn.Set("soak/settle", "1");
      return Status::OK();
    });
    ASSERT_TRUE(st.ok()) << cluster << ": " << st;
    EXPECT_LE(db->TotalEntryCount(), db->LiveKeyCount() + 64) << cluster;
    EXPECT_LT(db->ResolverTrackedCount(), 1000u) << cluster;
  }

  // Final tick publishes the drained state; shard gauges fall back to 0.
  monitor.Tick();
  int64_t residual = 0;
  for (int i = 0; i < n_shards; ++i) {
    residual +=
        registry->GetGauge("ck.zone.top_backlog.cluster0." + std::to_string(i))
            ->Value();
  }
  EXPECT_EQ(residual, 0);
}

}  // namespace
}  // namespace quick::wl
