#include "quick/pointer.h"

#include <gtest/gtest.h>

#include "cloudkit/queue_zone.h"

namespace quick::core {
namespace {

TEST(PointerTest, KeyIsUniquePerDatabaseAndZone) {
  Pointer a{ck::DatabaseId::Private("app", "u1"), "q"};
  Pointer b{ck::DatabaseId::Private("app", "u2"), "q"};
  Pointer c{ck::DatabaseId::Private("app", "u1"), "other"};
  EXPECT_NE(a.Key(), b.Key());
  EXPECT_NE(a.Key(), c.Key());
  EXPECT_EQ(a.Key(), (Pointer{ck::DatabaseId::Private("app", "u1"), "q"}.Key()));
}

TEST(PointerTest, ToItemSetsPointerFields) {
  Pointer p{ck::DatabaseId::Private("photos", "alice"), "tasks"};
  ck::QueuedItem item = p.ToItem();
  EXPECT_EQ(item.job_type, ck::kPointerJobType);
  EXPECT_EQ(item.id, p.Key());
  EXPECT_EQ(item.db_key, p.Key());
  EXPECT_FALSE(item.payload.empty());
}

TEST(PointerTest, RoundTripThroughItem) {
  const Pointer cases[] = {
      {ck::DatabaseId::Private("photos", "alice"), "tasks"},
      {ck::DatabaseId::Public("news"), "z"},
      {ck::DatabaseId::Cluster("east-1"), "local"},
  };
  for (const Pointer& p : cases) {
    auto back = Pointer::FromItem(p.ToItem());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->db_id, p.db_id);
    EXPECT_EQ(back->zone, p.zone);
  }
}

TEST(PointerTest, FromItemRejectsNonPointer) {
  ck::QueuedItem item;
  item.job_type = "push";
  EXPECT_FALSE(Pointer::FromItem(item).ok());
}

TEST(PointerTest, FromItemRejectsCorruptPayload) {
  Pointer p{ck::DatabaseId::Private("a", "u"), "z"};
  ck::QueuedItem item = p.ToItem();
  item.payload = "garbage\xFF";
  EXPECT_FALSE(Pointer::FromItem(item).ok());
  item.payload = tup::Tuple().AddString("only-one").Encode();
  EXPECT_FALSE(Pointer::FromItem(item).ok());
}

}  // namespace
}  // namespace quick::core
