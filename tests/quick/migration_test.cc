#include <gtest/gtest.h>

#include "fdb/retry.h"
#include "quick/consumer.h"
#include "quick/quick.h"

namespace quick::core {
namespace {

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest() {
    fdb::Database::Options opts;
    opts.clock = &clock_;
    clusters_ = std::make_unique<fdb::ClusterSet>(opts);
    clusters_->AddCluster("east");
    clusters_->AddCluster("west");
    ck_ = std::make_unique<ck::CloudKitService>(clusters_.get(), &clock_);
    quick_ = std::make_unique<Quick>(ck_.get());
    registry_.Register("job", [this](WorkContext& ctx) {
      std::lock_guard<std::mutex> lock(mu_);
      processed_.push_back(ctx.item.payload);
      return Status::OK();
    });
  }

  ManualClock clock_{1000};
  std::unique_ptr<fdb::ClusterSet> clusters_;
  std::unique_ptr<ck::CloudKitService> ck_;
  std::unique_ptr<Quick> quick_;
  JobRegistry registry_;
  std::mutex mu_;
  std::vector<std::string> processed_;
};

TEST_F(MigrationTest, MoveTenantCarriesQueuedWork) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "mover");
  WorkItem item;
  item.job_type = "job";
  item.payload = "queued-before-move";
  ASSERT_TRUE(quick_->Enqueue(db, item, 0).ok());

  const std::string src = ck_->placement()->Get(db).value();
  const std::string dst = src == "east" ? "west" : "east";
  ASSERT_TRUE(quick_->MoveTenant(db, dst).ok());

  // Placement flipped; pending work visible at the destination.
  EXPECT_EQ(ck_->placement()->Get(db).value(), dst);
  EXPECT_EQ(quick_->PendingCount(db).value(), 1);
  EXPECT_EQ(quick_->TopLevelCount(dst).value(), 1);
  EXPECT_EQ(quick_->TopLevelCount(src).value(), 0);

  // Source keyspace is clean.
  fdb::Database* src_db = clusters_->Get(src);
  Status st = fdb::RunTransaction(src_db, [&](fdb::Transaction& txn) {
    auto kvs = txn.GetRange(ck::CloudKitService::DatabaseSubspace(db).Range());
    EXPECT_TRUE(kvs->empty());
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());

  // A consumer at the destination executes the carried item.
  ConsumerConfig config;
  config.sequential = true;
  config.relaxed_reads_for_peek = false;
  Consumer consumer(quick_.get(), {dst}, &registry_, config, "dest-consumer");
  ASSERT_TRUE(consumer.RunOnePass(dst).ok());
  EXPECT_EQ(processed_, std::vector<std::string>{"queued-before-move"});
  EXPECT_EQ(quick_->PendingCount(db).value(), 0);
}

TEST_F(MigrationTest, MoveTenantWithoutPointerStillMovesData) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "quiet");
  const ck::DatabaseRef ref = ck_->OpenDatabase(db);
  // Plain user data, no queued work.
  ASSERT_TRUE(fdb::RunTransaction(ref.cluster, [&](fdb::Transaction& txn) {
                txn.Set(ref.subspace.Pack(tup::Tuple().AddString("doc")),
                        "contents");
                return Status::OK();
              }).ok());
  const std::string src = ref.cluster->name();
  const std::string dst = src == "east" ? "west" : "east";
  ASSERT_TRUE(quick_->MoveTenant(db, dst).ok());
  fdb::Database* dst_db = clusters_->Get(dst);
  Status st = fdb::RunTransaction(dst_db, [&](fdb::Transaction& txn) {
    auto v = txn.Get(ref.subspace.Pack(tup::Tuple().AddString("doc")));
    EXPECT_EQ(v.value().value(), "contents");
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(quick_->TopLevelCount(dst).value(), 0);
}

TEST_F(MigrationTest, MoveToSameClusterIsNoOp) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "stay");
  WorkItem item;
  item.job_type = "job";
  ASSERT_TRUE(quick_->Enqueue(db, item, 0).ok());
  const std::string cluster = ck_->placement()->Get(db).value();
  ASSERT_TRUE(quick_->MoveTenant(db, cluster).ok());
  EXPECT_EQ(quick_->PendingCount(db).value(), 1);
}

TEST_F(MigrationTest, MoveRejectsClusterDbAndUnknowns) {
  EXPECT_FALSE(quick_->MoveTenant(ck::DatabaseId::Cluster("east"), "west").ok());
  EXPECT_TRUE(quick_
                  ->MoveTenant(ck::DatabaseId::Private("app", "ghost"), "west")
                  .IsNotFound());
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u");
  ck_->OpenDatabase(db);
  EXPECT_FALSE(quick_->MoveTenant(db, "mars").ok());
}

TEST_F(MigrationTest, EnqueueAfterMoveLandsAtDestination) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "mover");
  WorkItem item;
  item.job_type = "job";
  item.payload = "before";
  ASSERT_TRUE(quick_->Enqueue(db, item, 0).ok());
  const std::string src = ck_->placement()->Get(db).value();
  const std::string dst = src == "east" ? "west" : "east";
  ASSERT_TRUE(quick_->MoveTenant(db, dst).ok());

  item.payload = "after";
  ASSERT_TRUE(quick_->Enqueue(db, item, 0).ok());
  EXPECT_EQ(quick_->PendingCount(db).value(), 2);
  EXPECT_EQ(quick_->TopLevelCount(dst).value(), 1);  // pointer reused
  EXPECT_EQ(quick_->TopLevelCount(src).value(), 0);
}

}  // namespace
}  // namespace quick::core
