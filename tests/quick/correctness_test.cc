// End-to-end at-least-once tests: threaded consumers + concurrent
// enqueuers, with and without injected FoundationDB faults. The invariant
// under test is the paper's §6 "Correctness" claim — once an enqueue
// commits, consumers eventually find and execute the item (the pointer to
// a non-empty queue is never lost).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>

#include "quick/consumer.h"
#include "fdb/retry.h"
#include "quick/quick.h"

namespace quick::core {
namespace {

class CorrectnessTest : public ::testing::Test {
 protected:
  void Build(const fdb::FaultInjector::Config& faults = {}) {
    fdb::Database::Options opts;
    opts.clock = clock_;
    opts.faults = faults;
    opts.grv_cache_staleness_millis = 20;
    clusters_ = std::make_unique<fdb::ClusterSet>(opts);
    clusters_->AddCluster("c1");
    clusters_->AddCluster("c2");
    ck_ = std::make_unique<ck::CloudKitService>(clusters_.get(), clock_);
    quick_ = std::make_unique<Quick>(ck_.get());
    registry_.Register("track", [this](WorkContext& ctx) {
      std::lock_guard<std::mutex> lock(mu_);
      executed_.insert(ctx.item.id);
      ++executions_;
      return Status::OK();
    });
  }

  ConsumerConfig FastConfig() {
    ConsumerConfig config;
    config.dequeue_max = 4;
    config.pointer_lease_millis = 200;
    config.item_lease_millis = 1000;
    config.lease_extension_interval_millis = 100;
    config.min_inactive_millis = 100;
    config.idle_sleep_millis = 2;
    config.selection_frac = 0.5;
    config.num_manager_threads = 2;
    config.num_worker_threads = 4;
    return config;
  }

  /// Waits until all `expected` item ids executed or the deadline passes.
  bool WaitForExecutions(const std::set<std::string>& expected,
                         int64_t timeout_ms) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        bool all = true;
        for (const std::string& id : expected) {
          if (!executed_.count(id)) {
            all = false;
            break;
          }
        }
        if (all) return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    std::lock_guard<std::mutex> lock(mu_);
    return executed_.size() >= expected.size();
  }

  Clock* clock_ = SystemClock::Default();
  std::unique_ptr<fdb::ClusterSet> clusters_;
  std::unique_ptr<ck::CloudKitService> ck_;
  std::unique_ptr<Quick> quick_;
  JobRegistry registry_;
  std::mutex mu_;
  std::set<std::string> executed_;
  int64_t executions_ = 0;
};

TEST_F(CorrectnessTest, EveryCommittedEnqueueExecutes) {
  Build();
  Consumer consumer(quick_.get(), {"c1", "c2"}, &registry_, FastConfig(),
                    "consumer-1");
  consumer.Start();

  std::set<std::string> expected;
  constexpr int kUsers = 20;
  constexpr int kItemsPerUser = 5;
  for (int u = 0; u < kUsers; ++u) {
    const ck::DatabaseId db =
        ck::DatabaseId::Private("app", "user" + std::to_string(u));
    for (int i = 0; i < kItemsPerUser; ++i) {
      WorkItem item;
      item.job_type = "track";
      auto id = quick_->Enqueue(db, item, 0);
      ASSERT_TRUE(id.ok()) << id.status();
      expected.insert(*id);
    }
  }

  EXPECT_TRUE(WaitForExecutions(expected, 15000))
      << "executed " << executed_.size() << "/" << expected.size();
  consumer.Stop();
}

TEST_F(CorrectnessTest, MultipleConsumersNoLostItems) {
  Build();
  std::vector<std::unique_ptr<Consumer>> consumers;
  LeaseCache election(clock_);
  for (int i = 0; i < 3; ++i) {
    consumers.push_back(std::make_unique<Consumer>(
        quick_.get(), std::vector<std::string>{"c1", "c2"}, &registry_,
        FastConfig(), "consumer-" + std::to_string(i), &election));
    consumers.back()->Start();
  }

  // Enqueue concurrently with consumption.
  std::set<std::string> expected;
  std::mutex expected_mu;
  std::vector<std::thread> enqueuers;
  for (int t = 0; t < 4; ++t) {
    enqueuers.emplace_back([&, t] {
      for (int i = 0; i < 25; ++i) {
        const ck::DatabaseId db = ck::DatabaseId::Private(
            "app", "t" + std::to_string(t) + "u" + std::to_string(i % 7));
        WorkItem item;
        item.job_type = "track";
        auto id = quick_->Enqueue(db, item, 0);
        ASSERT_TRUE(id.ok());
        std::lock_guard<std::mutex> lock(expected_mu);
        expected.insert(*id);
      }
    });
  }
  for (auto& t : enqueuers) t.join();

  EXPECT_TRUE(WaitForExecutions(expected, 20000))
      << "executed " << executed_.size() << "/" << expected.size();
  for (auto& c : consumers) c->Stop();

  // Work was actually shared: a consumer pool, not one hero.
  int64_t total_leases = 0;
  for (auto& c : consumers) {
    total_leases += c->stats().pointer_leases_acquired.Value();
  }
  EXPECT_GT(total_leases, 0);
}

TEST_F(CorrectnessTest, SurvivesInjectedFaults) {
  fdb::FaultInjector::Config faults;
  faults.unknown_result_applied = 0.02;
  faults.unknown_result_dropped = 0.02;
  faults.commit_unavailable = 0.03;
  faults.seed = 20260705;
  Build(faults);

  Consumer consumer(quick_.get(), {"c1", "c2"}, &registry_, FastConfig(),
                    "faulty-world-consumer");
  consumer.Start();

  std::set<std::string> expected;
  for (int u = 0; u < 10; ++u) {
    const ck::DatabaseId db =
        ck::DatabaseId::Private("app", "user" + std::to_string(u));
    for (int i = 0; i < 5; ++i) {
      WorkItem item;
      item.job_type = "track";
      auto id = quick_->Enqueue(db, item, 0);
      ASSERT_TRUE(id.ok()) << id.status();
      expected.insert(*id);
    }
  }

  EXPECT_TRUE(WaitForExecutions(expected, 20000))
      << "executed " << executed_.size() << "/" << expected.size();
  consumer.Stop();
}

TEST_F(CorrectnessTest, AbandonedLeasesAreTakenOver) {
  Build();
  // Simulate a consumer that leased the pointer and several items, then
  // crashed: take the leases directly and abandon them.
  std::set<std::string> expected;
  const ck::DatabaseId db_id = ck::DatabaseId::Private("app", "crashy");
  for (int i = 0; i < 3; ++i) {
    WorkItem item;
    item.job_type = "track";
    auto id = quick_->Enqueue(db_id, item, 0);
    ASSERT_TRUE(id.ok());
    expected.insert(*id);
  }
  const ck::DatabaseRef db = ck_->OpenDatabase(db_id);
  const ck::DatabaseRef cluster_db = ck_->OpenClusterDb(db.cluster->name());
  const Pointer pointer{db_id, quick_->config().queue_zone_name};
  Status st = fdb::RunTransaction(db.cluster, [&](fdb::Transaction& txn) {
    ck::QueueZone top = quick_->OpenTopZone(cluster_db, &txn);
    QUICK_RETURN_IF_ERROR(top.ObtainLease(pointer.Key(), 400).status());
    ck::QueueZone zone = quick_->OpenTenantZone(db, &txn);
    auto leased = zone.Dequeue(3, 400);
    QUICK_RETURN_IF_ERROR(leased.status());
    EXPECT_EQ(leased->size(), 3u);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st;

  // A healthy consumer takes over once the abandoned leases expire.
  Consumer rescuer(quick_.get(), {"c1", "c2"}, &registry_, FastConfig(),
                   "rescuer");
  rescuer.Start();
  EXPECT_TRUE(WaitForExecutions(expected, 20000))
      << "executed " << executed_.size() << "/" << expected.size();
  rescuer.Stop();
}

TEST_F(CorrectnessTest, ThrottledTypeProcessesEventually) {
  Build();
  RetryPolicy policy;
  policy.max_concurrent = 1;
  registry_.Register(
      "throttled_track",
      [this](WorkContext& ctx) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        std::lock_guard<std::mutex> lock(mu_);
        executed_.insert(ctx.item.id);
        return Status::OK();
      },
      policy);

  Consumer consumer(quick_.get(), {"c1", "c2"}, &registry_, FastConfig(),
                    "throttle-consumer");
  consumer.Start();
  std::set<std::string> expected;
  for (int u = 0; u < 8; ++u) {
    const ck::DatabaseId db =
        ck::DatabaseId::Private("app", "tuser" + std::to_string(u));
    WorkItem item;
    item.job_type = "throttled_track";
    auto id = quick_->Enqueue(db, item, 0);
    ASSERT_TRUE(id.ok());
    expected.insert(*id);
  }
  EXPECT_TRUE(WaitForExecutions(expected, 20000))
      << "executed " << executed_.size() << "/" << expected.size();
  consumer.Stop();
}

}  // namespace
}  // namespace quick::core
