// Tests for sharded top-level queues (§6: "While currently a single
// top-level queue per cluster is sufficient for our use-cases, more queues
// can be created for scalability by sharding the key-space").

#include <gtest/gtest.h>

#include <set>

#include "fdb/retry.h"
#include "quick/admin.h"
#include "quick/consumer.h"

namespace quick::core {
namespace {

class ShardedTopQueueTest : public ::testing::Test {
 protected:
  ShardedTopQueueTest() {
    fdb::Database::Options opts;
    opts.clock = &clock_;
    clusters_ = std::make_unique<fdb::ClusterSet>(opts);
    clusters_->AddCluster("c1");
    clusters_->AddCluster("c2");
    ck_ = std::make_unique<ck::CloudKitService>(clusters_.get(), &clock_);
    QuickConfig config;
    config.top_zone_shards = 4;
    quick_ = std::make_unique<Quick>(ck_.get(), config);
    registry_.Register("t", [this](WorkContext& ctx) {
      processed_.insert(ctx.item.id);
      return Status::OK();
    });
  }

  ConsumerConfig TestConfig() {
    ConsumerConfig config;
    config.sequential = true;
    config.relaxed_reads_for_peek = false;
    config.dequeue_max = 4;
    return config;
  }

  std::string MustEnqueue(const ck::DatabaseId& db) {
    WorkItem item;
    item.job_type = "t";
    auto id = quick_->Enqueue(db, item, 0);
    EXPECT_TRUE(id.ok()) << id.status();
    return id.value_or("");
  }

  ManualClock clock_{60000};
  std::unique_ptr<fdb::ClusterSet> clusters_;
  std::unique_ptr<ck::CloudKitService> ck_;
  std::unique_ptr<Quick> quick_;
  JobRegistry registry_;
  std::set<std::string> processed_;
};

TEST_F(ShardedTopQueueTest, ShardNamesStableAndComplete) {
  EXPECT_EQ(quick_->TopZoneNames().size(), 4u);
  // Assignment is deterministic and within the shard set.
  const std::string name = quick_->TopZoneNameFor("some-pointer-key");
  EXPECT_EQ(name, quick_->TopZoneNameFor("some-pointer-key"));
  bool found = false;
  for (const std::string& shard : quick_->TopZoneNames()) {
    if (shard == name) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(ShardedTopQueueTest, PointersSpreadAcrossShards) {
  std::set<std::string> used_shards;
  for (int i = 0; i < 40; ++i) {
    const ck::DatabaseId db =
        ck::DatabaseId::Private("app", "user" + std::to_string(i));
    MustEnqueue(db);
    Pointer p{db, quick_->config().queue_zone_name};
    used_shards.insert(quick_->TopZoneNameFor(p.Key()));
  }
  // 40 hashed keys into 4 shards: all shards essentially surely hit.
  EXPECT_GE(used_shards.size(), 3u);
  // TopLevelCount sums across shards.
  int64_t total = 0;
  for (const char* cluster : {"c1", "c2"}) {
    total += quick_->TopLevelCount(cluster).value_or(0);
  }
  EXPECT_EQ(total, 40);
}

TEST_F(ShardedTopQueueTest, ConsumerDrainsAllShards) {
  std::set<std::string> expected;
  for (int i = 0; i < 25; ++i) {
    expected.insert(MustEnqueue(
        ck::DatabaseId::Private("app", "user" + std::to_string(i))));
  }
  Consumer consumer(quick_.get(), {"c1", "c2"}, &registry_, TestConfig(),
                    "shard-consumer");
  for (int pass = 0; pass < 4; ++pass) {
    ASSERT_TRUE(consumer.RunOnePass("c1").ok());
    ASSERT_TRUE(consumer.RunOnePass("c2").ok());
  }
  EXPECT_EQ(processed_, expected);
}

TEST_F(ShardedTopQueueTest, LocalItemsShardedAndProcessed) {
  std::set<std::string> expected;
  for (int i = 0; i < 12; ++i) {
    WorkItem item;
    item.job_type = "t";
    auto id = quick_->EnqueueLocal("c1", item, 0);
    ASSERT_TRUE(id.ok());
    expected.insert(*id);
  }
  EXPECT_EQ(quick_->TopLevelCount("c1").value_or(-1), 12);
  Consumer consumer(quick_.get(), {"c1"}, &registry_, TestConfig(), "local");
  for (int pass = 0; pass < 4; ++pass) {
    ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  }
  EXPECT_EQ(processed_, expected);
  EXPECT_EQ(consumer.stats().local_items_processed.Value(), 12);
}

TEST_F(ShardedTopQueueTest, AdminSeesAllShards) {
  for (int i = 0; i < 10; ++i) {
    MustEnqueue(ck::DatabaseId::Private("app", "user" + std::to_string(i)));
  }
  QuickAdmin admin(quick_.get());
  int64_t pointers = 0;
  for (const char* cluster : {"c1", "c2"}) {
    auto info = admin.InspectCluster(cluster);
    ASSERT_TRUE(info.ok());
    pointers += info->pointers;
  }
  EXPECT_EQ(pointers, 10);
}

TEST_F(ShardedTopQueueTest, MigrationPreservesShardAssignment) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "mover");
  const std::string id = MustEnqueue(db);
  const std::string src = ck_->placement()->Get(db).value();
  const std::string dst = src == "c1" ? "c2" : "c1";
  ASSERT_TRUE(quick_->MoveTenant(db, dst).ok());
  EXPECT_EQ(quick_->TopLevelCount(dst).value_or(-1), 1);
  EXPECT_EQ(quick_->TopLevelCount(src).value_or(-1), 0);

  Consumer consumer(quick_.get(), {dst}, &registry_, TestConfig(), "m");
  for (int pass = 0; pass < 2; ++pass) {
    ASSERT_TRUE(consumer.RunOnePass(dst).ok());
  }
  EXPECT_TRUE(processed_.count(id));
}

TEST_F(ShardedTopQueueTest, GcWorksPerShard) {
  ConsumerConfig config = TestConfig();
  config.min_inactive_millis = 100;
  config.pointer_lease_millis = 50;
  Consumer consumer(quick_.get(), {"c1", "c2"}, &registry_, config, "gc");
  for (int i = 0; i < 10; ++i) {
    MustEnqueue(ck::DatabaseId::Private("app", "user" + std::to_string(i)));
  }
  // Drain, then let leases and grace expire, then GC everything.
  for (int round = 0; round < 30; ++round) {
    clock_.AdvanceMillis(3000);
    ASSERT_TRUE(consumer.RunOnePass("c1").ok());
    ASSERT_TRUE(consumer.RunOnePass("c2").ok());
  }
  EXPECT_EQ(processed_.size(), 10u);
  EXPECT_EQ(quick_->TopLevelCount("c1").value_or(-1), 0);
  EXPECT_EQ(quick_->TopLevelCount("c2").value_or(-1), 0);
}

}  // namespace
}  // namespace quick::core
