// Tests for sharded top-level queues (§6: "While currently a single
// top-level queue per cluster is sufficient for our use-cases, more queues
// can be created for scalability by sharding the key-space").

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "cloudkit/queue_zone.h"
#include "common/metrics.h"
#include "fdb/retry.h"
#include "quick/admin.h"
#include "quick/consumer.h"
#include "quick/lease_cache.h"

namespace quick::core {
namespace {

class ShardedTopQueueTest : public ::testing::Test {
 protected:
  ShardedTopQueueTest() {
    fdb::Database::Options opts;
    opts.clock = &clock_;
    clusters_ = std::make_unique<fdb::ClusterSet>(opts);
    clusters_->AddCluster("c1");
    clusters_->AddCluster("c2");
    ck_ = std::make_unique<ck::CloudKitService>(clusters_.get(), &clock_);
    QuickConfig config;
    config.top_zone_shards = 4;
    quick_ = std::make_unique<Quick>(ck_.get(), config);
    registry_.Register("t", [this](WorkContext& ctx) {
      processed_.insert(ctx.item.id);
      return Status::OK();
    });
  }

  ConsumerConfig TestConfig() {
    ConsumerConfig config;
    config.sequential = true;
    config.relaxed_reads_for_peek = false;
    config.dequeue_max = 4;
    return config;
  }

  std::string MustEnqueue(const ck::DatabaseId& db) {
    WorkItem item;
    item.job_type = "t";
    auto id = quick_->Enqueue(db, item, 0);
    EXPECT_TRUE(id.ok()) << id.status();
    return id.value_or("");
  }

  std::string MustEnqueueLocal(const std::string& cluster) {
    WorkItem item;
    item.job_type = "t";
    auto id = quick_->EnqueueLocal(cluster, item, 0);
    EXPECT_TRUE(id.ok()) << id.status();
    return id.value_or("");
  }

  /// Distinct shard zones the given item ids hash to on `cluster`.
  std::set<std::string> ShardsOf(const std::string& cluster,
                                 const std::set<std::string>& ids) {
    std::set<std::string> shards;
    for (const std::string& id : ids) {
      shards.insert(quick_->TopZoneNameFor(cluster, id));
    }
    return shards;
  }

  ManualClock clock_{60000};
  std::unique_ptr<fdb::ClusterSet> clusters_;
  std::unique_ptr<ck::CloudKitService> ck_;
  std::unique_ptr<Quick> quick_;
  JobRegistry registry_;
  std::set<std::string> processed_;
};

TEST_F(ShardedTopQueueTest, ShardNamesStableAndComplete) {
  EXPECT_EQ(quick_->TopZoneNames().size(), 4u);
  // Assignment is deterministic and within the shard set.
  const std::string name = quick_->TopZoneNameFor("some-pointer-key");
  EXPECT_EQ(name, quick_->TopZoneNameFor("some-pointer-key"));
  bool found = false;
  for (const std::string& shard : quick_->TopZoneNames()) {
    if (shard == name) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(ShardedTopQueueTest, PointersSpreadAcrossShards) {
  std::set<std::string> used_shards;
  for (int i = 0; i < 40; ++i) {
    const ck::DatabaseId db =
        ck::DatabaseId::Private("app", "user" + std::to_string(i));
    MustEnqueue(db);
    Pointer p{db, quick_->config().queue_zone_name};
    used_shards.insert(quick_->TopZoneNameFor(p.Key()));
  }
  // 40 hashed keys into 4 shards: all shards essentially surely hit.
  EXPECT_GE(used_shards.size(), 3u);
  // TopLevelCount sums across shards.
  int64_t total = 0;
  for (const char* cluster : {"c1", "c2"}) {
    total += quick_->TopLevelCount(cluster).value_or(0);
  }
  EXPECT_EQ(total, 40);
}

TEST_F(ShardedTopQueueTest, ConsumerDrainsAllShards) {
  std::set<std::string> expected;
  for (int i = 0; i < 25; ++i) {
    expected.insert(MustEnqueue(
        ck::DatabaseId::Private("app", "user" + std::to_string(i))));
  }
  Consumer consumer(quick_.get(), {"c1", "c2"}, &registry_, TestConfig(),
                    "shard-consumer");
  for (int pass = 0; pass < 4; ++pass) {
    ASSERT_TRUE(consumer.RunOnePass("c1").ok());
    ASSERT_TRUE(consumer.RunOnePass("c2").ok());
  }
  EXPECT_EQ(processed_, expected);
}

TEST_F(ShardedTopQueueTest, LocalItemsShardedAndProcessed) {
  std::set<std::string> expected;
  for (int i = 0; i < 12; ++i) {
    WorkItem item;
    item.job_type = "t";
    auto id = quick_->EnqueueLocal("c1", item, 0);
    ASSERT_TRUE(id.ok());
    expected.insert(*id);
  }
  EXPECT_EQ(quick_->TopLevelCount("c1").value_or(-1), 12);
  Consumer consumer(quick_.get(), {"c1"}, &registry_, TestConfig(), "local");
  for (int pass = 0; pass < 4; ++pass) {
    ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  }
  EXPECT_EQ(processed_, expected);
  EXPECT_EQ(consumer.stats().local_items_processed.Value(), 12);
}

TEST_F(ShardedTopQueueTest, AdminSeesAllShards) {
  for (int i = 0; i < 10; ++i) {
    MustEnqueue(ck::DatabaseId::Private("app", "user" + std::to_string(i)));
  }
  QuickAdmin admin(quick_.get());
  int64_t pointers = 0;
  for (const char* cluster : {"c1", "c2"}) {
    auto info = admin.InspectCluster(cluster);
    ASSERT_TRUE(info.ok());
    pointers += info->pointers;
  }
  EXPECT_EQ(pointers, 10);
}

TEST_F(ShardedTopQueueTest, MigrationPreservesShardAssignment) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "mover");
  const std::string id = MustEnqueue(db);
  const std::string src = ck_->placement()->Get(db).value();
  const std::string dst = src == "c1" ? "c2" : "c1";
  ASSERT_TRUE(quick_->MoveTenant(db, dst).ok());
  EXPECT_EQ(quick_->TopLevelCount(dst).value_or(-1), 1);
  EXPECT_EQ(quick_->TopLevelCount(src).value_or(-1), 0);

  Consumer consumer(quick_.get(), {dst}, &registry_, TestConfig(), "m");
  for (int pass = 0; pass < 2; ++pass) {
    ASSERT_TRUE(consumer.RunOnePass(dst).ok());
  }
  EXPECT_TRUE(processed_.count(id));
}

TEST_F(ShardedTopQueueTest, GcWorksPerShard) {
  ConsumerConfig config = TestConfig();
  config.min_inactive_millis = 100;
  config.pointer_lease_millis = 50;
  Consumer consumer(quick_.get(), {"c1", "c2"}, &registry_, config, "gc");
  for (int i = 0; i < 10; ++i) {
    MustEnqueue(ck::DatabaseId::Private("app", "user" + std::to_string(i)));
  }
  // Drain, then let leases and grace expire, then GC everything.
  for (int round = 0; round < 30; ++round) {
    clock_.AdvanceMillis(3000);
    ASSERT_TRUE(consumer.RunOnePass("c1").ok());
    ASSERT_TRUE(consumer.RunOnePass("c2").ok());
  }
  EXPECT_EQ(processed_.size(), 10u);
  EXPECT_EQ(quick_->TopLevelCount("c1").value_or(-1), 0);
  EXPECT_EQ(quick_->TopLevelCount("c2").value_or(-1), 0);
}

// Regression for the first-shard peek bias: with peek_max split evenly
// across shards (peek_max / n_shards, min 1) and a rotated starting shard,
// one pass under a tight peek budget must draw from many shards instead of
// exhausting the budget on whichever shard happened to be scanned first.
TEST_F(ShardedTopQueueTest, PeekBudgetSpansShards) {
  for (int i = 0; i < 40; ++i) MustEnqueueLocal("c1");
  ConsumerConfig config = TestConfig();
  config.peek_max = 8;  // 2 per shard across 4 shards
  config.selection_max = 100;
  config.dequeue_max = 8;
  Consumer consumer(quick_.get(), {"c1"}, &registry_, config, "budget");
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  // The old code let the first shard consume the whole budget; now every
  // shard contributes at most peek_max / n_shards = 2 ids per pass.
  EXPECT_LE(processed_.size(), 8u);
  EXPECT_GE(processed_.size(), 6u);
  EXPECT_GE(ShardsOf("c1", processed_).size(), 3u);
}

// Satellite: per-(cluster, shard) sequential-scanner election. Exactly one
// scanner holds each shard's election key; a non-elected scanner still
// makes progress by random sampling; when the holder crashes, every shard
// fails over to a survivor after the election TTL.
TEST_F(ShardedTopQueueTest, PerShardElectionAndFailover) {
  LeaseCache cache(&clock_);
  ConsumerConfig config = TestConfig();
  config.dequeue_max = 8;
  Consumer a(quick_.get(), {"c1"}, &registry_, config, "seq-a", &cache);
  Consumer b(quick_.get(), {"c1"}, &registry_, config, "seq-b", &cache);
  for (int i = 0; i < 40; ++i) MustEnqueueLocal("c1");

  // a's pass visits every (non-empty) shard and wins each shard's election.
  ASSERT_TRUE(a.RunOnePass("c1").ok());
  for (const std::string& shard : quick_->TopZoneNames("c1")) {
    EXPECT_EQ(cache.Holder("quick-seq|c1|" + shard), "seq-a") << shard;
  }
  // The legacy per-cluster key is not used when the cluster is sharded.
  EXPECT_EQ(cache.Holder("quick-seq|c1"), "");

  // b is elected nowhere, yet still progresses via random sampling.
  for (int i = 0; i < 12; ++i) MustEnqueueLocal("c1");
  const size_t after_a = processed_.size();
  ASSERT_TRUE(b.RunOnePass("c1").ok());
  EXPECT_GT(processed_.size(), after_a);
  for (const std::string& shard : quick_->TopZoneNames("c1")) {
    EXPECT_EQ(cache.Holder("quick-seq|c1|" + shard), "seq-a") << shard;
  }

  // Crash the holder; past the election TTL every shard fails over to b.
  a.SimulateCrash();
  clock_.AdvanceMillis(1500);
  for (int i = 0; i < 40; ++i) MustEnqueueLocal("c1");
  ASSERT_TRUE(b.RunOnePass("c1").ok());
  for (const std::string& shard : quick_->TopZoneNames("c1")) {
    EXPECT_EQ(cache.Holder("quick-seq|c1|" + shard), "seq-b") << shard;
  }
}

// Satellite: migration across clusters with *different* shard counts. The
// destination pointer must land in the shard derived at the destination
// (TopZoneShards(dst)), not the source's — and be gone from every source
// shard.
TEST_F(ShardedTopQueueTest, MigrationAcrossDifferentShardCounts) {
  QuickConfig config;
  config.top_zone_shards = 4;
  config.cluster_top_zone_shards["c1"] = 4;
  config.cluster_top_zone_shards["c2"] = 8;
  Quick q(ck_.get(), config);
  ASSERT_EQ(q.TopZoneNames("c1").size(), 4u);
  ASSERT_EQ(q.TopZoneNames("c2").size(), 8u);

  const ck::DatabaseId db = ck::DatabaseId::Private("app", "cross-mover");
  WorkItem item;
  item.job_type = "t";
  auto id = q.Enqueue(db, item, 0);
  ASSERT_TRUE(id.ok()) << id.status();
  const std::string src = ck_->placement()->Get(db).value();
  const std::string dst = src == "c1" ? "c2" : "c1";
  const Pointer p{db, q.config().queue_zone_name};

  // Exactly one shard of `cluster` holds the pointer record; returns it.
  auto pointer_shard = [&](const std::string& cluster) {
    const ck::DatabaseRef cluster_db = ck_->OpenClusterDb(cluster);
    std::string found;
    int hits = 0;
    Status st = fdb::RunTransaction(cluster_db.cluster,
                                    [&](fdb::Transaction& txn) {
      found.clear();
      hits = 0;
      for (const std::string& shard : q.TopZoneNames(cluster)) {
        ck::QueueZone zone = ck_->OpenQueueZone(cluster_db, shard, &txn);
        auto loaded = zone.Load(p.Key());
        QUICK_RETURN_IF_ERROR(loaded.status());
        if (loaded->has_value()) {
          ++hits;
          found = shard;
        }
      }
      return Status::OK();
    });
    EXPECT_TRUE(st.ok()) << st;
    EXPECT_EQ(hits, 1) << cluster;
    return found;
  };
  EXPECT_EQ(pointer_shard(src), q.TopZoneNameFor(src, p.Key()));

  ASSERT_TRUE(q.MoveTenant(db, dst).ok());
  EXPECT_EQ(q.TopLevelCount(src).value_or(-1), 0);
  EXPECT_EQ(q.TopLevelCount(dst).value_or(-1), 1);
  EXPECT_EQ(pointer_shard(dst), q.TopZoneNameFor(dst, p.Key()));

  // And back: the 8-shard -> 4-shard direction re-derives again.
  ASSERT_TRUE(q.MoveTenant(db, src).ok());
  EXPECT_EQ(q.TopLevelCount(dst).value_or(-1), 0);
  EXPECT_EQ(pointer_shard(src), q.TopZoneNameFor(src, p.Key()));

  // The migrated tenant's work is still consumable where it landed — via a
  // consumer over the same per-cluster shard config.
  Consumer consumer(&q, {src}, &registry_, TestConfig(), "xm");
  for (int pass = 0; pass < 3; ++pass) {
    ASSERT_TRUE(consumer.RunOnePass(src).ok());
  }
  EXPECT_TRUE(processed_.count(*id));
}

// Tentpole: a striped scanner that is the only member of the cluster's
// membership group owns every shard and drains them all.
TEST_F(ShardedTopQueueTest, StripedSoloConsumerOwnsAllShards) {
  LeaseCache cache(&clock_);
  ConsumerConfig config = TestConfig();
  config.striped_scanners = true;
  config.steal_probability = 0.0;
  Consumer solo(quick_.get(), {"c1"}, &registry_, config, "solo", &cache);
  std::set<std::string> expected;
  for (int i = 0; i < 20; ++i) expected.insert(MustEnqueueLocal("c1"));
  for (int pass = 0; pass < 6 && processed_ != expected; ++pass) {
    ASSERT_TRUE(solo.RunOnePass("c1").ok());
  }
  EXPECT_EQ(processed_, expected);
  EXPECT_EQ(solo.stats().shards_owned.load(), 4);
  EXPECT_EQ(solo.stats().steals.Value(), 0);
  // The per-consumer ownership gauge is exported process-wide.
  EXPECT_EQ(MetricsRegistry::Default()
                ->GetGauge("quick.scanner.shards_owned.solo")
                ->Value(),
            4);
}

// Tentpole: two striped scanners rendezvous-partition the shard set (the
// stripe sizes sum to the shard count, no shard owned twice) and together
// drain the cluster with stealing disabled.
TEST_F(ShardedTopQueueTest, StripedPairPartitionsAndDrains) {
  LeaseCache cache(&clock_);
  ConsumerConfig config = TestConfig();
  config.striped_scanners = true;
  config.steal_probability = 0.0;
  Consumer a(quick_.get(), {"c1"}, &registry_, config, "stripe-a", &cache);
  Consumer b(quick_.get(), {"c1"}, &registry_, config, "stripe-b", &cache);

  // First passes populate the membership group; subsequent passes compute
  // the stripe split from the full member list.
  ASSERT_TRUE(a.RunOnePass("c1").ok());
  ASSERT_TRUE(b.RunOnePass("c1").ok());
  ASSERT_TRUE(a.RunOnePass("c1").ok());
  ASSERT_TRUE(b.RunOnePass("c1").ok());
  EXPECT_EQ(a.stats().shards_owned.load() + b.stats().shards_owned.load(), 4);

  std::set<std::string> expected;
  for (int i = 0; i < 25; ++i) expected.insert(MustEnqueueLocal("c1"));
  for (int pass = 0; pass < 40 && processed_ != expected; ++pass) {
    ASSERT_TRUE(a.RunOnePass("c1").ok());
    ASSERT_TRUE(b.RunOnePass("c1").ok());
  }
  EXPECT_EQ(processed_, expected);
}

// Tentpole: work-stealing rescues a dead owner's stripe before membership
// expiry, and the stripe re-rendezvouses to the survivor once the dead
// member's announcement lapses.
TEST_F(ShardedTopQueueTest, WorkStealingCoversDeadOwnersShards) {
  LeaseCache cache(&clock_);
  ConsumerConfig config = TestConfig();
  config.striped_scanners = true;
  config.steal_probability = 1.0;
  Consumer a(quick_.get(), {"c1"}, &registry_, config, "steal-a", &cache);
  Consumer b(quick_.get(), {"c1"}, &registry_, config, "steal-b", &cache);
  ASSERT_TRUE(a.RunOnePass("c1").ok());
  ASSERT_TRUE(b.RunOnePass("c1").ok());
  a.SimulateCrash();  // a stops scanning and stops announcing

  std::set<std::string> expected;
  for (int i = 0; i < 20; ++i) expected.insert(MustEnqueueLocal("c1"));
  // The clock never advances here, so a stays in the membership view and
  // keeps "owning" its stripe — only stealing lets b reach those shards.
  for (int pass = 0; pass < 80 && processed_ != expected; ++pass) {
    ASSERT_TRUE(b.RunOnePass("c1").ok());
  }
  EXPECT_EQ(processed_, expected);
  if (b.stats().shards_owned.load() < 4) {
    EXPECT_GT(b.stats().steals.Value(), 0);
    EXPECT_GT(MetricsRegistry::Default()
                  ->GetCounter("quick.scanner.steals")
                  ->Value(),
              0);
  }

  // Past the membership TTL the dead member is pruned and the survivor's
  // stripe grows to the full shard set.
  clock_.AdvanceMillis(1500);
  ASSERT_TRUE(b.RunOnePass("c1").ok());
  EXPECT_EQ(b.stats().shards_owned.load(), 4);
}

}  // namespace
}  // namespace quick::core
