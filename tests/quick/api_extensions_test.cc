// Tests for Quick's API extensions: atomic batch enqueue and the §5
// front-of-queue notification hook.

#include <gtest/gtest.h>

#include "fdb/retry.h"
#include "quick/quick.h"

namespace quick::core {
namespace {

class ApiExtensionsTest : public ::testing::Test {
 protected:
  ApiExtensionsTest() {
    fdb::Database::Options opts;
    opts.clock = &clock_;
    clusters_ = std::make_unique<fdb::ClusterSet>(opts);
    clusters_->AddCluster("c1");
    ck_ = std::make_unique<ck::CloudKitService>(clusters_.get(), &clock_);
    quick_ = std::make_unique<Quick>(ck_.get());
  }

  ManualClock clock_{9000};
  std::unique_ptr<fdb::ClusterSet> clusters_;
  std::unique_ptr<ck::CloudKitService> ck_;
  std::unique_ptr<Quick> quick_;
};

TEST_F(ApiExtensionsTest, BatchEnqueueIsAtomic) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  std::vector<WorkItem> items(4);
  for (int i = 0; i < 4; ++i) {
    items[i].job_type = "t";
    items[i].payload = std::to_string(i);
  }
  auto ids = quick_->EnqueueBatch(db, items, 0);
  ASSERT_TRUE(ids.ok()) << ids.status();
  EXPECT_EQ(ids->size(), 4u);
  EXPECT_EQ(quick_->PendingCount(db).value(), 4);
  EXPECT_EQ(quick_->TopLevelCount("c1").value(), 1);  // one pointer
}

TEST_F(ApiExtensionsTest, BatchEnqueueAllOrNothing) {
  // Make every commit fail: no partial batch may remain.
  fdb::Database::Options opts;
  opts.clock = &clock_;
  opts.faults.commit_unavailable = 1.0;
  fdb::ClusterSet flaky(opts);
  flaky.AddCluster("c1");
  ck::CloudKitService flaky_ck(&flaky, &clock_);
  Quick q(&flaky_ck);

  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  std::vector<WorkItem> items(3);
  for (auto& item : items) item.job_type = "t";
  EXPECT_FALSE(q.EnqueueBatch(db, items, 0).ok());
  // Nothing landed (check through a healthy view of the same cluster).
  fdb::Database* c1 = flaky.Get("c1");
  EXPECT_EQ(c1->LiveKeyCount(), 0u);
}

TEST_F(ApiExtensionsTest, EmptyBatchIsNoOp) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  auto ids = quick_->EnqueueBatch(db, {}, 0);
  ASSERT_TRUE(ids.ok());
  EXPECT_TRUE(ids->empty());
  EXPECT_EQ(quick_->TopLevelCount("c1").value(), 0);
}

TEST_F(ApiExtensionsTest, FrontOfQueueNotifierFiresForFirstItem) {
  std::vector<std::pair<std::string, int64_t>> notifications;
  quick_->SetFrontOfQueueNotifier(
      [&](const ck::DatabaseId& db, const std::string& item_id,
          int64_t vesting) {
        notifications.emplace_back(db.ToString() + "/" + item_id, vesting);
      });
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  WorkItem item;
  item.job_type = "t";
  auto id = quick_->Enqueue(db, item, /*delay=*/1000);
  ASSERT_TRUE(id.ok());
  ASSERT_EQ(notifications.size(), 1u);
  EXPECT_NE(notifications[0].first.find(*id), std::string::npos);
  EXPECT_EQ(notifications[0].second, clock_.NowMillis() + 1000);
}

TEST_F(ApiExtensionsTest, NotifierSkipsItemsBehindTheFront) {
  int notified = 0;
  quick_->SetFrontOfQueueNotifier(
      [&](const ck::DatabaseId&, const std::string&, int64_t) { ++notified; });
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  WorkItem item;
  item.job_type = "t";
  ASSERT_TRUE(quick_->Enqueue(db, item, 0).ok());  // front: notify
  EXPECT_EQ(notified, 1);
  clock_.AdvanceMillis(10);
  ASSERT_TRUE(quick_->Enqueue(db, item, 0).ok());  // behind: silent
  EXPECT_EQ(notified, 1);
}

TEST_F(ApiExtensionsTest, NotifierFiresForEarlierVestingItem) {
  int notified = 0;
  quick_->SetFrontOfQueueNotifier(
      [&](const ck::DatabaseId&, const std::string&, int64_t) { ++notified; });
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  WorkItem item;
  item.job_type = "t";
  ASSERT_TRUE(quick_->Enqueue(db, item, /*delay=*/60000).ok());  // front
  ASSERT_TRUE(quick_->Enqueue(db, item, /*delay=*/1000).ok());   // new front
  EXPECT_EQ(notified, 2);
}

TEST_F(ApiExtensionsTest, NotifierFiresForHigherPriorityItem) {
  int notified = 0;
  quick_->SetFrontOfQueueNotifier(
      [&](const ck::DatabaseId&, const std::string&, int64_t) { ++notified; });
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  WorkItem low;
  low.job_type = "t";
  low.priority = 5;
  ASSERT_TRUE(quick_->Enqueue(db, low, 0).ok());  // front
  clock_.AdvanceMillis(10);
  WorkItem high;
  high.job_type = "t";
  high.priority = 0;  // jumps the line
  ASSERT_TRUE(quick_->Enqueue(db, high, 0).ok());
  EXPECT_EQ(notified, 2);
}

TEST_F(ApiExtensionsTest, NoNotifierNoOverhead) {
  // Without a registered notifier, enqueue performs no head peek and no
  // notification bookkeeping (covered implicitly: this must just work).
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  WorkItem item;
  item.job_type = "t";
  EnqueueFollowUp follow_up;
  const ck::DatabaseRef ref = ck_->OpenDatabase(db);
  Status st = fdb::RunTransaction(ref.cluster, [&](fdb::Transaction& txn) {
    return quick_->EnqueueInTransaction(&txn, ref, item, 0, &follow_up)
        .status();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_FALSE(follow_up.notify_front);
}

}  // namespace
}  // namespace quick::core
