// Zombie-consumer fencing: a consumer that stalls past its item lease and
// then resumes ("zombie") must not be able to complete, quarantine, drop,
// or requeue an item that another consumer has since retaken — every
// transition out of processing is fenced by the lease id (§5: leases make
// takeover safe; the fence makes the takeover exclusive).
//
// Driven deterministically: consumer A's handler advances the ManualClock
// past item_lease_millis mid-execution and runs consumer B's pass inline —
// exactly a process that froze (GC pause, VM migration) and woke up after
// its lease expired.

#include <gtest/gtest.h>

#include "fdb/retry.h"
#include "quick/admin.h"
#include "quick/consumer.h"

namespace quick::core {
namespace {

class ZombieFencingTest : public ::testing::Test {
 protected:
  ZombieFencingTest() {
    fdb::Database::Options opts;
    opts.clock = &clock_;
    clusters_ = std::make_unique<fdb::ClusterSet>(opts);
    clusters_->AddCluster("c1");
    ck_ = std::make_unique<ck::CloudKitService>(clusters_.get(), &clock_);
    quick_ = std::make_unique<Quick>(ck_.get());
  }

  ConsumerConfig TestConfig() {
    ConsumerConfig config;
    config.sequential = true;
    config.relaxed_reads_for_peek = false;
    return config;
  }

  std::unique_ptr<Consumer> MakeConsumer(const std::string& id) {
    return std::make_unique<Consumer>(quick_.get(),
                                      std::vector<std::string>{"c1"},
                                      &registry_, TestConfig(), id);
  }

  std::string MustEnqueue(const std::string& type) {
    WorkItem item;
    item.job_type = type;
    item.payload = "w";
    auto id = quick_->Enqueue(ck::DatabaseId::Private("app", "u1"), item, 0);
    EXPECT_TRUE(id.ok()) << id.status();
    return id.value_or("");
  }

  /// Advances past the item lease (default 5000ms) and the pointer's
  /// re-vest so a second consumer can retake both pointer and item.
  void ExpireLeases() { clock_.AdvanceMillis(6000); }

  const ck::DatabaseId db_ = ck::DatabaseId::Private("app", "u1");
  ManualClock clock_{60000};
  std::unique_ptr<fdb::ClusterSet> clusters_;
  std::unique_ptr<ck::CloudKitService> ck_;
  std::unique_ptr<Quick> quick_;
  JobRegistry registry_;
};

TEST_F(ZombieFencingTest, ZombieCannotDoubleCompleteRetakenItem) {
  auto zombie = MakeConsumer("zombie");
  auto taker = MakeConsumer("taker");
  int executions = 0;
  registry_.Register("job", [&](WorkContext&) {
    ++executions;
    if (executions == 1) {
      // Stall past the lease; the takeover consumer processes the item to
      // completion while we are "frozen".
      ExpireLeases();
      EXPECT_TRUE(taker->RunOnePass("c1").ok());
      EXPECT_EQ(taker->stats().items_processed.Value(), 1);
    }
    return Status::OK();
  });
  MustEnqueue("job");

  ASSERT_TRUE(zombie->RunOnePass("c1").ok());
  EXPECT_EQ(executions, 2);  // at-least-once: the takeover re-executed it

  // The zombie's completion was fenced: not counted as processed, counted
  // as a lost lease, and the item was completed exactly once.
  EXPECT_EQ(zombie->stats().items_processed.Value(), 0);
  EXPECT_EQ(zombie->stats().terminal_fenced.Value(), 1);
  EXPECT_EQ(zombie->stats().leases_lost.Value(), 1);
  EXPECT_EQ(quick_->PendingCount(db_).value(), 0);
}

TEST_F(ZombieFencingTest, ZombieCannotDoubleQuarantineRetakenItem) {
  auto zombie = MakeConsumer("zombie");
  auto taker = MakeConsumer("taker");
  CollectingAlertSink zombie_sink, taker_sink;
  zombie->SetAlertSink(&zombie_sink);
  taker->SetAlertSink(&taker_sink);
  RetryPolicy policy;
  policy.max_inline_retries = 0;
  registry_.Register(
      "job",
      [&](WorkContext& ctx) {
        if (ctx.consumer_id == "zombie") {
          ExpireLeases();
          EXPECT_TRUE(taker->RunOnePass("c1").ok());
        }
        return Status::Permanent("poison");
      },
      policy);
  MustEnqueue("job");

  ASSERT_TRUE(zombie->RunOnePass("c1").ok());

  // Exactly one quarantine record despite two terminal attempts; only the
  // live consumer's transition (and alert) landed.
  QuickAdmin admin(quick_.get());
  EXPECT_EQ(admin.DeadLetterCount(db_).value(), 1);
  EXPECT_EQ(taker->stats().items_quarantined.Value(), 1);
  EXPECT_EQ(taker_sink.Count(), 1u);
  EXPECT_EQ(zombie->stats().items_quarantined.Value(), 0);
  EXPECT_EQ(zombie->stats().terminal_fenced.Value(), 1);
  EXPECT_EQ(zombie->stats().leases_lost.Value(), 1);
  EXPECT_EQ(zombie_sink.Count(), 0u);  // zombies raise no alerts
}

TEST_F(ZombieFencingTest, ZombieCompleteCannotClearAFreshLeaseState) {
  // Strongest variant: the takeover consumer fails transiently and
  // REQUEUES the item — so when the zombie resumes, the item still exists
  // but under different lease state. The zombie's success-complete must
  // hit the lease fence (kLeaseLost, not kNotFound) and leave the item
  // queued for its retry.
  auto zombie = MakeConsumer("zombie");
  auto taker = MakeConsumer("taker");
  RetryPolicy policy;
  policy.max_inline_retries = 0;
  policy.backoff_initial_millis = 1000;
  registry_.Register(
      "job",
      [&](WorkContext& ctx) {
        if (ctx.consumer_id == "zombie") {
          ExpireLeases();
          EXPECT_TRUE(taker->RunOnePass("c1").ok());
          EXPECT_EQ(taker->stats().items_requeued.Value(), 1);
          return Status::OK();  // zombie "succeeds" — but too late
        }
        return Status::Unavailable("transient");  // taker requeues
      },
      policy);
  MustEnqueue("job");

  ASSERT_TRUE(zombie->RunOnePass("c1").ok());

  // The item survived the zombie's completion attempt.
  EXPECT_EQ(zombie->stats().items_processed.Value(), 0);
  EXPECT_EQ(zombie->stats().terminal_fenced.Value(), 1);
  EXPECT_EQ(zombie->stats().leases_lost.Value(), 1);
  EXPECT_EQ(quick_->PendingCount(db_).value(), 1);
  EXPECT_EQ(quick_->TopLevelCount("c1").value(), 1);  // pointer intact
}

TEST_F(ZombieFencingTest, ZombieRequeueCannotResetAnotherConsumersLease) {
  // The zombie fails transiently after the stall: its REQUEUE must also be
  // fenced, or it would clear the lease the takeover consumer still holds
  // mid-processing. Here the taker completes first, so the zombie's
  // requeue would resurrect-delay a finished item if unfenced.
  auto zombie = MakeConsumer("zombie");
  auto taker = MakeConsumer("taker");
  RetryPolicy policy;
  policy.max_inline_retries = 0;
  registry_.Register(
      "job",
      [&](WorkContext& ctx) {
        if (ctx.consumer_id == "zombie") {
          ExpireLeases();
          EXPECT_TRUE(taker->RunOnePass("c1").ok());
          return Status::Unavailable("zombie fails late");
        }
        return Status::OK();
      },
      policy);
  MustEnqueue("job");

  ASSERT_TRUE(zombie->RunOnePass("c1").ok());
  EXPECT_EQ(taker->stats().items_processed.Value(), 1);
  EXPECT_EQ(zombie->stats().items_requeued.Value(), 0);
  EXPECT_EQ(zombie->stats().terminal_fenced.Value(), 1);
  EXPECT_EQ(quick_->PendingCount(db_).value(), 0);  // stays completed
}

TEST_F(ZombieFencingTest, CrashedConsumersLeaseExpiresAndWorkCompletes) {
  // SimulateCrash mid-item: the crashed consumer never reaches FinishItem;
  // the item's lease simply expires and a healthy consumer finishes the
  // work (§5 fault tolerance) — no item lost, no double-processing.
  auto crasher = MakeConsumer("crasher");
  auto taker = MakeConsumer("taker");
  int completions = 0;
  registry_.Register("job", [&](WorkContext& ctx) {
    if (ctx.consumer_id == "crasher") crasher->SimulateCrash();
    ++completions;
    return Status::OK();
  });
  MustEnqueue("job");

  ASSERT_TRUE(crasher->RunOnePass("c1").ok());
  EXPECT_EQ(crasher->stats().items_processed.Value(), 0);
  EXPECT_EQ(quick_->PendingCount(db_).value(), 1);  // still leased-out

  ExpireLeases();
  ASSERT_TRUE(taker->RunOnePass("c1").ok());
  EXPECT_EQ(taker->stats().items_processed.Value(), 1);
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(quick_->PendingCount(db_).value(), 0);
}

}  // namespace
}  // namespace quick::core
