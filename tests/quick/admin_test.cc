#include "quick/admin.h"

#include <gtest/gtest.h>

#include "fdb/retry.h"
#include "quick/consumer.h"

namespace quick::core {
namespace {

class AdminTest : public ::testing::Test {
 protected:
  AdminTest() {
    fdb::Database::Options opts;
    opts.clock = &clock_;
    clusters_ = std::make_unique<fdb::ClusterSet>(opts);
    clusters_->AddCluster("c1");
    ck_ = std::make_unique<ck::CloudKitService>(clusters_.get(), &clock_);
    quick_ = std::make_unique<Quick>(ck_.get());
    admin_ = std::make_unique<QuickAdmin>(quick_.get());
  }

  std::string MustEnqueue(const ck::DatabaseId& db, int64_t delay = 0) {
    WorkItem item;
    item.job_type = "t";
    auto id = quick_->Enqueue(db, item, delay);
    EXPECT_TRUE(id.ok()) << id.status();
    return id.value_or("");
  }

  ManualClock clock_{7000};
  std::unique_ptr<fdb::ClusterSet> clusters_;
  std::unique_ptr<ck::CloudKitService> ck_;
  std::unique_ptr<Quick> quick_;
  std::unique_ptr<QuickAdmin> admin_;
};

TEST_F(AdminTest, InspectTenantEmpty) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  ck_->OpenDatabase(db);
  auto info = admin_->InspectTenant(db);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->depth, 0);
  EXPECT_FALSE(info->pointer_exists);
  EXPECT_FALSE(info->min_vesting_time.has_value());
}

TEST_F(AdminTest, InspectTenantWithWork) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  MustEnqueue(db, 0);
  MustEnqueue(db, 5000);  // delayed
  auto info = admin_->InspectTenant(db);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->depth, 2);
  EXPECT_EQ(info->vested_now, 1);
  EXPECT_EQ(info->min_vesting_time.value(), clock_.NowMillis());
  EXPECT_EQ(info->oldest_enqueue_time.value(), clock_.NowMillis());
  EXPECT_TRUE(info->pointer_exists);
  EXPECT_FALSE(info->pointer_leased);
}

TEST_F(AdminTest, InspectTenantShowsLeasedPointer) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  MustEnqueue(db);
  const ck::DatabaseRef cluster_db = ck_->OpenClusterDb("c1");
  Pointer p{db, quick_->config().queue_zone_name};
  ASSERT_TRUE(fdb::RunTransaction(cluster_db.cluster,
                                  [&](fdb::Transaction& txn) {
                                    ck::QueueZone top =
                                        quick_->OpenTopZone(cluster_db, &txn);
                                    return top.ObtainLease(p.Key(), 5000)
                                        .status();
                                  })
                  .ok());
  auto info = admin_->InspectTenant(db);
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->pointer_leased);
}

TEST_F(AdminTest, InspectClusterCountsKinds) {
  MustEnqueue(ck::DatabaseId::Private("app", "u1"));
  MustEnqueue(ck::DatabaseId::Private("app", "u2"), 9000);
  WorkItem local;
  local.job_type = "reindex";
  ASSERT_TRUE(quick_->EnqueueLocal("c1", local, 0).ok());

  auto info = admin_->InspectCluster("c1");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->top_level_entries, 3);
  EXPECT_EQ(info->pointers, 2);
  EXPECT_EQ(info->local_items, 1);
  EXPECT_EQ(info->vested_now, 2);  // u2's pointer is delayed
  EXPECT_FALSE(admin_->InspectCluster("ghost").ok());
}

TEST_F(AdminTest, ListOutstandingQueuesReportsDepths) {
  const ck::DatabaseId u1 = ck::DatabaseId::Private("app", "u1");
  const ck::DatabaseId u2 = ck::DatabaseId::Private("app", "u2");
  MustEnqueue(u1);
  MustEnqueue(u1);
  MustEnqueue(u2);
  auto rows = admin_->ListOutstandingQueues("c1");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  int64_t total_depth = 0;
  for (const auto& row : *rows) {
    total_depth += row.depth;
    EXPECT_FALSE(row.leased);
  }
  EXPECT_EQ(total_depth, 3);
}

TEST_F(AdminTest, FleetReportMentionsTenants) {
  MustEnqueue(ck::DatabaseId::Private("app", "alice"));
  auto report = admin_->RenderFleetReport();
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->find("cluster c1"), std::string::npos);
  EXPECT_NE(report->find("alice"), std::string::npos);
  EXPECT_NE(report->find("depth=1"), std::string::npos);
}

TEST_F(AdminTest, InspectionDoesNotDisturbConsumers) {
  // Inspection runs snapshot reads only: a consumer processing in parallel
  // (same clock tick) is unaffected, and counts drop to zero after drain.
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  MustEnqueue(db);
  JobRegistry registry;
  registry.Register("t", [](WorkContext&) { return Status::OK(); });
  ConsumerConfig config;
  config.sequential = true;
  config.relaxed_reads_for_peek = false;
  Consumer consumer(quick_.get(), {"c1"}, &registry, config, "admin-test");
  ASSERT_TRUE(admin_->InspectTenant(db).ok());
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  auto info = admin_->InspectTenant(db);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->depth, 0);
  EXPECT_EQ(consumer.stats().items_processed.Value(), 1);
}

}  // namespace
}  // namespace quick::core
