// Item-lifecycle tracing end-to-end: a Quick + Consumer driven
// synchronously over a custom Tracer, asserting the exact span chains the
// observability layer promises — birth at the producer, dequeue linked to
// the pointer chain, handler attempts, and exactly one terminal stage per
// incarnation (DESIGN.md "Observability").

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/trace.h"
#include "fdb/retry.h"
#include "quick/admin.h"
#include "quick/consumer.h"
#include "quick/trace_hooks.h"

namespace quick::core {
namespace {

class TraceLifecycleTest : public ::testing::Test {
 protected:
  TraceLifecycleTest() {
    fdb::Database::Options opts;
    opts.clock = &clock_;
    clusters_ = std::make_unique<fdb::ClusterSet>(opts);
    clusters_->AddCluster("c1");
    ck_ = std::make_unique<ck::CloudKitService>(clusters_.get(), &clock_);
    quick_ = std::make_unique<Quick>(ck_.get());
    quick_->set_tracer(&tracer_);  // before any consumer captures it

    registry_.Register("ok_job",
                       [](WorkContext&) { return Status::OK(); });
  }

  Consumer MakeConsumer(ConsumerConfig config = {}) {
    config.sequential = true;
    config.relaxed_reads_for_peek = false;
    return Consumer(quick_.get(), {"c1"}, &registry_, config,
                    "test-consumer");
  }

  std::string MustEnqueue(const ck::DatabaseId& db, const std::string& type,
                          int64_t delay = 0) {
    WorkItem item;
    item.job_type = type;
    item.payload = "p";
    auto id = quick_->Enqueue(db, item, delay);
    EXPECT_TRUE(id.ok()) << id.status();
    return id.value_or("");
  }

  std::vector<std::string> StageNames(const std::string& trace_id) {
    std::vector<std::string> names;
    for (const Span& span : tracer_.TraceOf(trace_id)) {
      names.push_back(span.name);
    }
    return names;
  }

  ManualClock clock_{1000000};
  Tracer tracer_;
  std::unique_ptr<fdb::ClusterSet> clusters_;
  std::unique_ptr<ck::CloudKitService> ck_;
  std::unique_ptr<Quick> quick_;
  JobRegistry registry_;
};

TEST_F(TraceLifecycleTest, HappyPathChainHasExactStages) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  Consumer consumer = MakeConsumer();
  const std::string id = MustEnqueue(db, "ok_job");
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());

  EXPECT_EQ(StageNames(id),
            (std::vector<std::string>{stage::kEnqueued, stage::kDequeued,
                                      stage::kExecute, stage::kCompleted}));
  std::vector<Span> chain = tracer_.TraceOf(id);
  EXPECT_EQ(chain[0].actor, "producer");
  for (size_t i = 1; i < chain.size(); ++i) {
    EXPECT_EQ(chain[i].actor, "test-consumer");
  }
  EXPECT_NE(chain[0].detail.find("db="), std::string::npos);
  EXPECT_NE(chain[2].detail.find("attempt=0"), std::string::npos);
  EXPECT_NE(chain[2].detail.find("status=OK"), std::string::npos);

  // The dequeue span links the item to the pointer chain whose lease
  // caused it; that chain was born at the producer and leased here.
  const std::string pointer_key = chain[1].parent_trace;
  ASSERT_FALSE(pointer_key.empty());
  ASSERT_TRUE(tracer_.Has(pointer_key));
  std::vector<std::string> pointer_stages = StageNames(pointer_key);
  EXPECT_EQ(pointer_stages[0], stage::kPointerCreated);
  EXPECT_NE(std::find(pointer_stages.begin(), pointer_stages.end(),
                      stage::kTopLeased),
            pointer_stages.end());
  // And the pointer chain points back at the enqueue that created it.
  EXPECT_EQ(tracer_.TraceOf(pointer_key)[0].parent_trace, id);
}

TEST_F(TraceLifecycleTest, PerStageHistogramsObserveThePass) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  Consumer consumer = MakeConsumer();
  MustEnqueue(db, "ok_job");
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_GT(consumer.stats().scan_micros.Count(), 0);
  EXPECT_GT(consumer.stats().lease_txn_micros.Count(), 0);
  EXPECT_GT(consumer.stats().dequeue_txn_micros.Count(), 0);
  EXPECT_GT(consumer.stats().finish_txn_micros.Count(), 0);
}

TEST_F(TraceLifecycleTest, TransientFailureRecordsRequeueThenCompletes) {
  int calls = 0;
  RetryPolicy policy;
  policy.max_inline_retries = 0;
  policy.max_attempts = 10;
  policy.backoff_initial_millis = 100;
  registry_.Register(
      "flaky",
      [&](WorkContext&) {
        return ++calls == 1 ? Status::Unavailable("first try") : Status::OK();
      },
      policy);

  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  Consumer consumer = MakeConsumer();
  const std::string id = MustEnqueue(db, "flaky");
  for (int round = 0; round < 20 && calls < 2; ++round) {
    ASSERT_TRUE(consumer.RunOnePass("c1").ok());
    clock_.AdvanceMillis(500);
  }
  ASSERT_EQ(calls, 2);

  std::vector<std::string> names = StageNames(id);
  int requeues = 0;
  int terminals = 0;
  for (const std::string& name : names) {
    if (name == stage::kRequeued) ++requeues;
    if (IsTerminalStage(name)) ++terminals;
  }
  EXPECT_EQ(requeues, 1);
  EXPECT_EQ(terminals, 1);
  EXPECT_EQ(names.back(), stage::kCompleted);
  for (const Span& span : tracer_.TraceOf(id)) {
    if (span.name == stage::kRequeued) {
      EXPECT_NE(span.detail.find("errors=1"), std::string::npos);
      EXPECT_NE(span.detail.find("delay_ms="), std::string::npos);
    }
  }
}

TEST_F(TraceLifecycleTest, QuarantineAndOperatorRequeueSplitIncarnations) {
  bool healed = false;
  registry_.Register("poison", [&](WorkContext&) {
    return healed ? Status::OK() : Status::Permanent("bug");
  });

  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  Consumer consumer = MakeConsumer();
  const std::string id = MustEnqueue(db, "poison");
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());

  std::vector<std::string> names = StageNames(id);
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.back(), stage::kQuarantined);
  for (const Span& span : tracer_.TraceOf(id)) {
    if (span.name == stage::kQuarantined) {
      EXPECT_EQ(span.detail, "permanent");
    }
  }

  // Operator requeue opens a second incarnation that then completes.
  healed = true;
  QuickAdmin admin(quick_.get());
  ASSERT_TRUE(admin.RequeueDeadLetter(db, id).ok());
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(consumer.RunOnePass("c1").ok());
    clock_.AdvanceMillis(500);
  }

  names = StageNames(id);
  std::vector<std::vector<std::string>> incarnations;
  for (const std::string& name : names) {
    if (IsBirthStage(name) || incarnations.empty()) {
      incarnations.emplace_back();
    }
    incarnations.back().push_back(name);
  }
  ASSERT_EQ(incarnations.size(), 2u);
  EXPECT_EQ(incarnations[0].front(), stage::kEnqueued);
  EXPECT_EQ(incarnations[0].back(), stage::kQuarantined);
  EXPECT_EQ(incarnations[1].front(), stage::kDeadLetterRequeued);
  EXPECT_EQ(incarnations[1].back(), stage::kCompleted);
  for (const Span& span : tracer_.TraceOf(id)) {
    if (span.name == stage::kDeadLetterRequeued) {
      EXPECT_EQ(span.actor, "admin");
    }
  }
}

TEST_F(TraceLifecycleTest, AdminExposesAndRendersTheChain) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  Consumer consumer = MakeConsumer();
  const std::string id = MustEnqueue(db, "ok_job");
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());

  QuickAdmin admin(quick_.get());
  std::vector<Span> chain = admin.ItemTrace(id);
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain.front().name, stage::kEnqueued);
  EXPECT_EQ(chain.back().name, stage::kCompleted);

  const std::string rendered = admin.RenderTrace(id);
  EXPECT_NE(rendered.find("trace " + id), std::string::npos);
  EXPECT_NE(rendered.find("(4 spans)"), std::string::npos);
  EXPECT_NE(rendered.find(stage::kEnqueued), std::string::npos);
  EXPECT_NE(rendered.find(stage::kCompleted), std::string::npos);
  EXPECT_NE(rendered.find("[test-consumer]"), std::string::npos);
  // The dequeue span's pointer link is rendered too.
  EXPECT_NE(rendered.find("parent="), std::string::npos);
  EXPECT_NE(admin.RenderTrace("no-such-item").find("(0 spans)"),
            std::string::npos);
}

TEST_F(TraceLifecycleTest, DisabledTracerRecordsNothing) {
  tracer_.set_enabled(false);
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  Consumer consumer = MakeConsumer();
  MustEnqueue(db, "ok_job");
  ASSERT_TRUE(consumer.RunOnePass("c1").ok());
  EXPECT_EQ(tracer_.TraceCount(), 0u);
  EXPECT_EQ(tracer_.SpanCount(), 0u);
}

}  // namespace
}  // namespace quick::core
