#include "reclayer/query_planner.h"

#include <gtest/gtest.h>

#include "fdb/database.h"
#include "fdb/retry.h"

namespace quick::rl {
namespace {

RecordMetadata PlannerMetadata() {
  RecordMetadata meta;
  RecordTypeDef user;
  user.name = "User";
  user.fields = {{"id", FieldType::kString},
                 {"city", FieldType::kString},
                 {"age", FieldType::kInt64},
                 {"score", FieldType::kInt64}};
  user.primary_key_fields = {"id"};
  EXPECT_TRUE(meta.AddRecordType(std::move(user)).ok());

  IndexDef by_city_age;
  by_city_age.name = "by_city_age";
  by_city_age.record_types = {"User"};
  by_city_age.fields = {"city", "age"};
  EXPECT_TRUE(meta.AddIndex(std::move(by_city_age)).ok());

  IndexDef by_age;
  by_age.name = "by_age";
  by_age.record_types = {"User"};
  by_age.fields = {"age"};
  EXPECT_TRUE(meta.AddIndex(std::move(by_age)).ok());

  IndexDef total;
  total.name = "total";
  total.kind = IndexKind::kCount;
  EXPECT_TRUE(meta.AddIndex(std::move(total)).ok());
  return meta;
}

FieldPredicate Eq(const std::string& field, tup::Element value) {
  return {field, FieldPredicate::Op::kEquals, std::move(value)};
}
FieldPredicate Cmp(const std::string& field, FieldPredicate::Op op,
                   tup::Element value) {
  return {field, op, std::move(value)};
}

class QueryPlannerTest : public ::testing::Test {
 protected:
  QueryPlannerTest()
      : meta_(PlannerMetadata()), planner_(&meta_), db_("planner") {
    // Ten users across two cities, ages 20..29, score = age * 10.
    Status st = fdb::RunTransaction(&db_, [&](fdb::Transaction& txn) {
      RecordStore store(&txn, tup::Subspace(tup::Tuple().AddString("p")),
                        &meta_);
      for (int i = 0; i < 10; ++i) {
        Record r("User");
        r.SetString("id", "u" + std::to_string(i))
            .SetString("city", i % 2 == 0 ? "sf" : "nyc")
            .SetInt("age", 20 + i)
            .SetInt("score", (20 + i) * 10);
        QUICK_RETURN_IF_ERROR(store.SaveRecord(r));
      }
      return Status::OK();
    });
    EXPECT_TRUE(st.ok());
  }

  std::vector<Record> Run(const PlannedQuery& q) {
    std::vector<Record> out;
    Status st = fdb::RunTransaction(&db_, [&](fdb::Transaction& txn) {
      RecordStore store(&txn, tup::Subspace(tup::Tuple().AddString("p")),
                        &meta_);
      QUICK_ASSIGN_OR_RETURN(out, ExecutePlanned(&store, planner_, q));
      return Status::OK();
    });
    EXPECT_TRUE(st.ok()) << st;
    return out;
  }

  RecordMetadata meta_;
  QueryPlanner planner_;
  fdb::Database db_;
};

TEST_F(QueryPlannerTest, EqualityPicksCompositeIndex) {
  PlannedQuery q;
  q.record_type = "User";
  q.predicates = {Eq("city", std::string("sf")), Eq("age", int64_t{24})};
  QueryPlan plan = planner_.Plan(q).value();
  EXPECT_EQ(plan.kind, QueryPlan::Kind::kIndexScan);
  EXPECT_EQ(plan.index_name, "by_city_age");
  EXPECT_EQ(plan.bound_predicates, 2);
  EXPECT_TRUE(plan.residual.empty());
  EXPECT_NE(plan.Explain().find("IndexScan(by_city_age)"), std::string::npos);

  auto rows = Run(q);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].GetString("id").value(), "u4");
}

TEST_F(QueryPlannerTest, RangeOnSingleFieldIndex) {
  PlannedQuery q;
  q.record_type = "User";
  q.predicates = {Cmp("age", FieldPredicate::Op::kGreaterOrEqual,
                      int64_t{26})};
  QueryPlan plan = planner_.Plan(q).value();
  EXPECT_EQ(plan.index_name, "by_age");
  auto rows = Run(q);
  ASSERT_EQ(rows.size(), 4u);  // ages 26..29
  EXPECT_EQ(rows[0].GetInt("age").value(), 26);  // index order
  EXPECT_EQ(rows[3].GetInt("age").value(), 29);
}

TEST_F(QueryPlannerTest, ExclusiveAndInclusiveBounds) {
  PlannedQuery gt;
  gt.record_type = "User";
  gt.predicates = {Cmp("age", FieldPredicate::Op::kGreater, int64_t{26})};
  EXPECT_EQ(Run(gt).size(), 3u);  // 27,28,29

  PlannedQuery le;
  le.record_type = "User";
  le.predicates = {Cmp("age", FieldPredicate::Op::kLessOrEqual, int64_t{22})};
  EXPECT_EQ(Run(le).size(), 3u);  // 20,21,22

  PlannedQuery lt;
  lt.record_type = "User";
  lt.predicates = {Cmp("age", FieldPredicate::Op::kLess, int64_t{22})};
  EXPECT_EQ(Run(lt).size(), 2u);  // 20,21
}

TEST_F(QueryPlannerTest, EqualityPlusRangeUsesCompositePrefix) {
  PlannedQuery q;
  q.record_type = "User";
  q.predicates = {Eq("city", std::string("sf")),
                  Cmp("age", FieldPredicate::Op::kLess, int64_t{26})};
  QueryPlan plan = planner_.Plan(q).value();
  EXPECT_EQ(plan.index_name, "by_city_age");
  EXPECT_EQ(plan.bound_predicates, 2);
  auto rows = Run(q);
  ASSERT_EQ(rows.size(), 3u);  // sf ages 20, 22, 24
  for (const Record& r : rows) {
    EXPECT_EQ(r.GetString("city").value(), "sf");
    EXPECT_LT(r.GetInt("age").value(), 26);
  }
}

TEST_F(QueryPlannerTest, UnindexedPredicateBecomesResidual) {
  PlannedQuery q;
  q.record_type = "User";
  q.predicates = {Eq("city", std::string("nyc")),
                  Cmp("score", FieldPredicate::Op::kGreater, int64_t{250})};
  QueryPlan plan = planner_.Plan(q).value();
  EXPECT_EQ(plan.index_name, "by_city_age");
  EXPECT_EQ(plan.residual.size(), 1u);
  EXPECT_EQ(plan.residual[0].field, "score");
  auto rows = Run(q);
  ASSERT_EQ(rows.size(), 2u);  // nyc ages 27, 29 -> scores 270, 290
}

TEST_F(QueryPlannerTest, NoUsableIndexFallsBackToFullScan) {
  PlannedQuery q;
  q.record_type = "User";
  q.predicates = {Cmp("score", FieldPredicate::Op::kGreaterOrEqual,
                      int64_t{280})};
  QueryPlan plan = planner_.Plan(q).value();
  EXPECT_EQ(plan.kind, QueryPlan::Kind::kFullScan);
  EXPECT_EQ(plan.residual.size(), 1u);
  EXPECT_EQ(Run(q).size(), 2u);  // scores 280, 290
}

TEST_F(QueryPlannerTest, NoPredicatesFullScanReturnsAll) {
  PlannedQuery q;
  q.record_type = "User";
  EXPECT_EQ(Run(q).size(), 10u);
}

TEST_F(QueryPlannerTest, LimitApplies) {
  PlannedQuery q;
  q.record_type = "User";
  q.predicates = {Cmp("age", FieldPredicate::Op::kGreaterOrEqual,
                      int64_t{20})};
  q.limit = 3;
  EXPECT_EQ(Run(q).size(), 3u);
}

TEST_F(QueryPlannerTest, RejectsUnknownTypeAndField) {
  PlannedQuery bad_type;
  bad_type.record_type = "Ghost";
  EXPECT_FALSE(planner_.Plan(bad_type).ok());

  PlannedQuery bad_field;
  bad_field.record_type = "User";
  bad_field.predicates = {Eq("ghost_field", int64_t{1})};
  EXPECT_FALSE(planner_.Plan(bad_field).ok());
}

TEST_F(QueryPlannerTest, PrefersIndexAbsorbingMorePredicates) {
  // city+age hits by_city_age (2 bound) over by_age (1 bound).
  PlannedQuery q;
  q.record_type = "User";
  q.predicates = {Eq("age", int64_t{25}), Eq("city", std::string("nyc"))};
  QueryPlan plan = planner_.Plan(q).value();
  EXPECT_EQ(plan.index_name, "by_city_age");
  EXPECT_EQ(plan.bound_predicates, 2);
  auto rows = Run(q);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].GetString("id").value(), "u5");
}

TEST_F(QueryPlannerTest, EvaluatePredicateHandlesMissingFieldAsNull) {
  Record r("User");
  r.SetString("id", "x");
  // Missing "age" compares as Null, which sorts below every int.
  EXPECT_TRUE(EvaluatePredicate(
      r, Cmp("age", FieldPredicate::Op::kLess, int64_t{0})));
  EXPECT_FALSE(EvaluatePredicate(r, Eq("age", int64_t{0})));
}

}  // namespace
}  // namespace quick::rl
