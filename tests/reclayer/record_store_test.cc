#include "reclayer/record_store.h"

#include <gtest/gtest.h>

#include "fdb/database.h"
#include "fdb/retry.h"

namespace quick::rl {
namespace {

RecordMetadata MakeMetadata() {
  RecordMetadata meta;
  RecordTypeDef user;
  user.name = "User";
  user.fields = {{"id", FieldType::kString},
                 {"age", FieldType::kInt64},
                 {"city", FieldType::kString}};
  user.primary_key_fields = {"id"};
  EXPECT_TRUE(meta.AddRecordType(std::move(user)).ok());

  RecordTypeDef event;
  event.name = "Event";
  event.fields = {{"seq", FieldType::kInt64}, {"kind", FieldType::kString}};
  event.primary_key_fields = {"seq"};
  EXPECT_TRUE(meta.AddRecordType(std::move(event)).ok());

  IndexDef by_age;
  by_age.name = "by_age";
  by_age.record_types = {"User"};
  by_age.fields = {"age"};
  EXPECT_TRUE(meta.AddIndex(std::move(by_age)).ok());

  IndexDef by_city_age;
  by_city_age.name = "by_city_age";
  by_city_age.record_types = {"User"};
  by_city_age.fields = {"city", "age"};
  EXPECT_TRUE(meta.AddIndex(std::move(by_city_age)).ok());

  IndexDef count_by_city;
  count_by_city.name = "count_by_city";
  count_by_city.kind = IndexKind::kCount;
  count_by_city.record_types = {"User"};
  count_by_city.fields = {"city"};
  EXPECT_TRUE(meta.AddIndex(std::move(count_by_city)).ok());

  IndexDef total;
  total.name = "total";
  total.kind = IndexKind::kCount;
  EXPECT_TRUE(meta.AddIndex(std::move(total)).ok());
  return meta;
}

class RecordStoreTest : public ::testing::Test {
 protected:
  RecordStoreTest() : meta_(MakeMetadata()), db_("store-test") {}

  Record User(const std::string& id, int64_t age, const std::string& city) {
    Record r("User");
    r.SetString("id", id).SetInt("age", age).SetString("city", city);
    return r;
  }

  /// Runs `body` with a RecordStore in a committed transaction.
  void WithStore(const std::function<Status(RecordStore&)>& body) {
    Status st = fdb::RunTransaction(&db_, [&](fdb::Transaction& txn) {
      RecordStore store(&txn, tup::Subspace(tup::Tuple().AddString("s")),
                        &meta_);
      return body(store);
    });
    ASSERT_TRUE(st.ok()) << st;
  }

  RecordMetadata meta_;
  fdb::Database db_;
};

TEST_F(RecordStoreTest, SaveAndLoad) {
  WithStore([&](RecordStore& store) {
    return store.SaveRecord(User("u1", 30, "sf"));
  });
  WithStore([&](RecordStore& store) {
    auto loaded = store.LoadRecord("User", tup::Tuple().AddString("u1"));
    QUICK_RETURN_IF_ERROR(loaded.status());
    EXPECT_TRUE(loaded->has_value());
    EXPECT_EQ((*loaded)->GetInt("age").value(), 30);
    return Status::OK();
  });
}

TEST_F(RecordStoreTest, LoadMissingReturnsNullopt) {
  WithStore([&](RecordStore& store) {
    auto loaded = store.LoadRecord("User", tup::Tuple().AddString("ghost"));
    QUICK_RETURN_IF_ERROR(loaded.status());
    EXPECT_FALSE(loaded->has_value());
    return Status::OK();
  });
}

TEST_F(RecordStoreTest, SaveRejectsUnknownTypeAndBadRecord) {
  WithStore([&](RecordStore& store) {
    Record bad("Ghost");
    bad.SetString("id", "x");
    EXPECT_FALSE(store.SaveRecord(bad).ok());

    Record missing_pk("User");
    missing_pk.SetInt("age", 3);
    EXPECT_FALSE(store.SaveRecord(missing_pk).ok());
    return Status::OK();
  });
}

TEST_F(RecordStoreTest, OverwriteReplacesAndReindexes) {
  WithStore([&](RecordStore& store) {
    QUICK_RETURN_IF_ERROR(store.SaveRecord(User("u1", 30, "sf")));
    return store.SaveRecord(User("u1", 31, "nyc"));
  });
  WithStore([&](RecordStore& store) {
    auto loaded = store.LoadRecord("User", tup::Tuple().AddString("u1"));
    EXPECT_EQ((*loaded)->GetInt("age").value(), 31);
    // Old index entry gone, new present.
    auto old_entries =
        store.ScanIndex("by_age", tup::Tuple().AddInt(30));
    EXPECT_TRUE(old_entries->empty());
    auto new_entries =
        store.ScanIndex("by_age", tup::Tuple().AddInt(31));
    EXPECT_EQ(new_entries->size(), 1u);
    return Status::OK();
  });
}

TEST_F(RecordStoreTest, DeleteRemovesRecordAndIndexEntries) {
  WithStore([&](RecordStore& store) {
    return store.SaveRecord(User("u1", 30, "sf"));
  });
  WithStore([&](RecordStore& store) {
    auto deleted = store.DeleteRecord("User", tup::Tuple().AddString("u1"));
    EXPECT_TRUE(deleted.value());
    return Status::OK();
  });
  WithStore([&](RecordStore& store) {
    auto loaded = store.LoadRecord("User", tup::Tuple().AddString("u1"));
    EXPECT_FALSE(loaded->has_value());
    auto entries = store.ScanIndex("by_age", tup::Tuple());
    EXPECT_TRUE(entries->empty());
    auto count = store.GetCount("count_by_city", tup::Tuple().AddString("sf"));
    EXPECT_EQ(count.value(), 0);
    return Status::OK();
  });
}

TEST_F(RecordStoreTest, DeleteMissingReturnsFalse) {
  WithStore([&](RecordStore& store) {
    EXPECT_FALSE(store.DeleteRecord("User", tup::Tuple().AddString("x")).value());
    return Status::OK();
  });
}

TEST_F(RecordStoreTest, IndexScanOrdersByValue) {
  WithStore([&](RecordStore& store) {
    QUICK_RETURN_IF_ERROR(store.SaveRecord(User("a", 40, "sf")));
    QUICK_RETURN_IF_ERROR(store.SaveRecord(User("b", 20, "sf")));
    QUICK_RETURN_IF_ERROR(store.SaveRecord(User("c", 30, "sf")));
    return Status::OK();
  });
  WithStore([&](RecordStore& store) {
    auto entries = store.ScanIndex("by_age", tup::Tuple());
    QUICK_RETURN_IF_ERROR(entries.status());
    EXPECT_EQ(entries->size(), 3u);
    if (entries->size() != 3u) return Status::Internal("unexpected size");
    EXPECT_EQ((*entries)[0].indexed_values.GetInt(0).value(), 20);
    EXPECT_EQ((*entries)[1].indexed_values.GetInt(0).value(), 30);
    EXPECT_EQ((*entries)[2].indexed_values.GetInt(0).value(), 40);
    // Primary keys round-trip.
    EXPECT_EQ((*entries)[0].primary_key.GetString(1).value(), "b");
    return Status::OK();
  });
}

TEST_F(RecordStoreTest, IndexScanReverseAndLimit) {
  WithStore([&](RecordStore& store) {
    for (int i = 0; i < 5; ++i) {
      QUICK_RETURN_IF_ERROR(
          store.SaveRecord(User("u" + std::to_string(i), 20 + i, "sf")));
    }
    return Status::OK();
  });
  WithStore([&](RecordStore& store) {
    IndexScanOptions opts;
    opts.reverse = true;
    opts.limit = 2;
    auto entries = store.ScanIndex("by_age", tup::Tuple(), opts);
    QUICK_RETURN_IF_ERROR(entries.status());
    EXPECT_EQ(entries->size(), 2u);
    if (entries->size() != 2u) return Status::Internal("unexpected size");
    EXPECT_EQ((*entries)[0].indexed_values.GetInt(0).value(), 24);
    EXPECT_EQ((*entries)[1].indexed_values.GetInt(0).value(), 23);
    return Status::OK();
  });
}

TEST_F(RecordStoreTest, CompositeIndexPrefixScan) {
  WithStore([&](RecordStore& store) {
    QUICK_RETURN_IF_ERROR(store.SaveRecord(User("a", 40, "sf")));
    QUICK_RETURN_IF_ERROR(store.SaveRecord(User("b", 20, "nyc")));
    QUICK_RETURN_IF_ERROR(store.SaveRecord(User("c", 30, "sf")));
    return Status::OK();
  });
  WithStore([&](RecordStore& store) {
    auto sf = store.ScanIndex("by_city_age", tup::Tuple().AddString("sf"));
    QUICK_RETURN_IF_ERROR(sf.status());
    EXPECT_EQ(sf->size(), 2u);
    if (sf->size() != 2u) return Status::Internal("unexpected size");
    EXPECT_EQ((*sf)[0].indexed_values.GetInt(1).value(), 30);
    EXPECT_EQ((*sf)[1].indexed_values.GetInt(1).value(), 40);
    return Status::OK();
  });
}

TEST_F(RecordStoreTest, ScanIndexRangeBounds) {
  WithStore([&](RecordStore& store) {
    for (int i = 0; i < 10; ++i) {
      QUICK_RETURN_IF_ERROR(
          store.SaveRecord(User("u" + std::to_string(i), i, "sf")));
    }
    return Status::OK();
  });
  WithStore([&](RecordStore& store) {
    auto entries = store.ScanIndexRange(
        "by_age", tup::Tuple().AddInt(3), tup::Tuple().AddInt(7));
    QUICK_RETURN_IF_ERROR(entries.status());
    EXPECT_EQ(entries->size(), 4u);
    if (entries->size() != 4u) return Status::Internal("unexpected size");  // 3,4,5,6
    EXPECT_EQ((*entries)[0].indexed_values.GetInt(0).value(), 3);
    EXPECT_EQ((*entries)[3].indexed_values.GetInt(0).value(), 6);
    return Status::OK();
  });
}

TEST_F(RecordStoreTest, CountIndexTracksGroups) {
  WithStore([&](RecordStore& store) {
    QUICK_RETURN_IF_ERROR(store.SaveRecord(User("a", 40, "sf")));
    QUICK_RETURN_IF_ERROR(store.SaveRecord(User("b", 20, "sf")));
    QUICK_RETURN_IF_ERROR(store.SaveRecord(User("c", 30, "nyc")));
    return Status::OK();
  });
  WithStore([&](RecordStore& store) {
    EXPECT_EQ(store.GetCount("count_by_city", tup::Tuple().AddString("sf"))
                  .value(),
              2);
    EXPECT_EQ(store.GetCount("count_by_city", tup::Tuple().AddString("nyc"))
                  .value(),
              1);
    EXPECT_EQ(store.GetCount("total", tup::Tuple()).value(), 3);
    return Status::OK();
  });
}

TEST_F(RecordStoreTest, CountIndexFollowsGroupChange) {
  WithStore([&](RecordStore& store) {
    return store.SaveRecord(User("a", 40, "sf"));
  });
  WithStore([&](RecordStore& store) {
    return store.SaveRecord(User("a", 40, "nyc"));  // moved city
  });
  WithStore([&](RecordStore& store) {
    EXPECT_EQ(store.GetCount("count_by_city", tup::Tuple().AddString("sf"))
                  .value(),
              0);
    EXPECT_EQ(store.GetCount("count_by_city", tup::Tuple().AddString("nyc"))
                  .value(),
              1);
    EXPECT_EQ(store.GetCount("total", tup::Tuple()).value(), 1);
    return Status::OK();
  });
}

TEST_F(RecordStoreTest, UpdateNotTouchingIndexedFieldsWritesNoIndexKeys) {
  // The load-bearing behaviour for QuiCK's pointer index: saving a record
  // whose indexed values are unchanged must not write the index key, so a
  // concurrent reader of that index key does not conflict.
  WithStore([&](RecordStore& store) {
    return store.SaveRecord(User("u1", 30, "sf"));
  });

  // Reader transaction: reads the index entry key range for age=30.
  fdb::Transaction reader = db_.CreateTransaction();
  {
    RecordStore store(&reader, tup::Subspace(tup::Tuple().AddString("s")),
                      &meta_);
    ASSERT_EQ(store.ScanIndex("by_age", tup::Tuple().AddInt(30))->size(), 1u);
    reader.Set("reader_out", "1");
  }

  // Concurrent update that does not move any indexed value (same age, same
  // city) — must not conflict with the index reader.
  WithStore([&](RecordStore& store) {
    return store.SaveRecord(User("u1", 30, "sf"));
  });
  EXPECT_TRUE(reader.Commit().ok());

  // Whereas an update that moves the indexed value does conflict.
  fdb::Transaction reader2 = db_.CreateTransaction();
  {
    RecordStore store(&reader2, tup::Subspace(tup::Tuple().AddString("s")),
                      &meta_);
    ASSERT_EQ(store.ScanIndex("by_age", tup::Tuple().AddInt(30))->size(), 1u);
    reader2.Set("reader_out", "2");
  }
  WithStore([&](RecordStore& store) {
    return store.SaveRecord(User("u1", 31, "sf"));
  });
  EXPECT_TRUE(reader2.Commit().IsNotCommitted());
}

TEST_F(RecordStoreTest, ScanRecordsMixedTypes) {
  WithStore([&](RecordStore& store) {
    QUICK_RETURN_IF_ERROR(store.SaveRecord(User("u1", 30, "sf")));
    Record e("Event");
    e.SetInt("seq", 1).SetString("kind", "login");
    return store.SaveRecord(e);
  });
  WithStore([&](RecordStore& store) {
    auto records = store.ScanRecords();
    QUICK_RETURN_IF_ERROR(records.status());
    EXPECT_EQ(records->size(), 2u);
    if (records->size() != 2u) return Status::Internal("unexpected size");
    // Primary-key order: ("Event", 1) < ("User", "u1").
    EXPECT_EQ((*records)[0].type(), "Event");
    EXPECT_EQ((*records)[1].type(), "User");
    return Status::OK();
  });
}

TEST_F(RecordStoreTest, QueryWithPredicateAndLimit) {
  WithStore([&](RecordStore& store) {
    for (int i = 0; i < 10; ++i) {
      QUICK_RETURN_IF_ERROR(store.SaveRecord(
          User("u" + std::to_string(i), i, i % 2 == 0 ? "sf" : "nyc")));
    }
    return Status::OK();
  });
  WithStore([&](RecordStore& store) {
    Query q;
    q.index_name = "by_age";
    q.begin = tup::Tuple().AddInt(2);
    q.limit = 3;
    q.predicate = [](const Record& r) {
      return r.GetString("city").value() == "sf";
    };
    auto records = store.Execute(q);
    QUICK_RETURN_IF_ERROR(records.status());
    EXPECT_EQ(records->size(), 3u);
    if (records->size() != 3u) return Status::Internal("unexpected size");  // ages 2, 4, 6
    EXPECT_EQ((*records)[0].GetInt("age").value(), 2);
    EXPECT_EQ((*records)[2].GetInt("age").value(), 6);
    return Status::OK();
  });
}

TEST_F(RecordStoreTest, IsEmptyAndDeleteAll) {
  WithStore([&](RecordStore& store) {
    EXPECT_TRUE(store.IsEmpty().value());
    return store.SaveRecord(User("u1", 30, "sf"));
  });
  WithStore([&](RecordStore& store) {
    EXPECT_FALSE(store.IsEmpty().value());
    return store.DeleteAllRecords();
  });
  WithStore([&](RecordStore& store) {
    EXPECT_TRUE(store.IsEmpty().value());
    EXPECT_EQ(store.CountRecords().value(), 0);
    return Status::OK();
  });
}

TEST_F(RecordStoreTest, IsEmptyCheckConflictsWithConcurrentInsert) {
  // Pointer-GC safety: a transaction that verified emptiness must abort if
  // an insert commits first.
  fdb::Transaction gc = db_.CreateTransaction();
  {
    RecordStore store(&gc, tup::Subspace(tup::Tuple().AddString("s")), &meta_);
    ASSERT_TRUE(store.IsEmpty().value());
    gc.Set("gc_decision", "delete");
  }
  WithStore([&](RecordStore& store) {
    return store.SaveRecord(User("u1", 30, "sf"));
  });
  EXPECT_TRUE(gc.Commit().IsNotCommitted());
}

TEST_F(RecordStoreTest, StoresInDistinctSubspacesAreIsolated) {
  Status st = fdb::RunTransaction(&db_, [&](fdb::Transaction& txn) {
    RecordStore a(&txn, tup::Subspace(tup::Tuple().AddString("A")), &meta_);
    RecordStore b(&txn, tup::Subspace(tup::Tuple().AddString("B")), &meta_);
    QUICK_RETURN_IF_ERROR(a.SaveRecord(User("u1", 30, "sf")));
    auto in_b = b.LoadRecord("User", tup::Tuple().AddString("u1"));
    QUICK_RETURN_IF_ERROR(in_b.status());
    EXPECT_FALSE(in_b->has_value());
    EXPECT_TRUE(b.IsEmpty().value());
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
}

}  // namespace
}  // namespace quick::rl
