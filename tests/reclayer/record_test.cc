#include "reclayer/record.h"

#include <gtest/gtest.h>

namespace quick::rl {
namespace {

RecordTypeDef ItemType() {
  RecordTypeDef t;
  t.name = "Item";
  t.fields = {{"id", FieldType::kString},
              {"count", FieldType::kInt64},
              {"score", FieldType::kDouble},
              {"active", FieldType::kBool},
              {"blob", FieldType::kBytes}};
  t.primary_key_fields = {"id"};
  return t;
}

TEST(RecordTest, SettersAndGetters) {
  Record r("Item");
  r.SetString("id", "a1").SetInt("count", 5).SetDouble("score", 2.5);
  r.SetBool("active", true).SetBytes("blob", std::string("\x00\x01", 2));
  EXPECT_EQ(r.GetString("id").value(), "a1");
  EXPECT_EQ(r.GetInt("count").value(), 5);
  EXPECT_DOUBLE_EQ(r.GetDouble("score").value(), 2.5);
  EXPECT_TRUE(r.GetBool("active").value());
  EXPECT_EQ(r.GetBytes("blob").value(), std::string("\x00\x01", 2));
}

TEST(RecordTest, MissingFieldIsNotFound) {
  Record r("Item");
  EXPECT_TRUE(r.GetInt("count").status().IsNotFound());
  EXPECT_FALSE(r.HasField("count"));
}

TEST(RecordTest, WrongTypeIsInvalidArgument) {
  Record r("Item");
  r.SetString("id", "a1");
  EXPECT_EQ(r.GetInt("id").status().code(), StatusCode::kInvalidArgument);
}

TEST(RecordTest, ClearFieldRemoves) {
  Record r("Item");
  r.SetInt("count", 1);
  r.ClearField("count");
  EXPECT_FALSE(r.HasField("count"));
}

TEST(RecordTest, SerializeRoundTrip) {
  Record r("Item");
  r.SetString("id", "a1").SetInt("count", -42).SetDouble("score", 1.5);
  r.SetBool("active", false).SetBytes("blob", "xyz");
  auto back = Record::Deserialize(r.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(*back == r);
}

TEST(RecordTest, DeserializeRejectsJunk) {
  EXPECT_FALSE(Record::Deserialize("").ok());
  EXPECT_FALSE(Record::Deserialize("garbage\xFF").ok());
}

TEST(RecordTest, ValidateAcceptsConformingRecord) {
  Record r("Item");
  r.SetString("id", "a1").SetInt("count", 1);
  EXPECT_TRUE(r.Validate(ItemType()).ok());
}

TEST(RecordTest, ValidateRejectsUnknownField) {
  Record r("Item");
  r.SetString("id", "a1").SetInt("mystery", 1);
  EXPECT_FALSE(r.Validate(ItemType()).ok());
}

TEST(RecordTest, ValidateRejectsWrongFieldType) {
  Record r("Item");
  r.SetString("id", "a1").SetString("count", "not-an-int");
  EXPECT_FALSE(r.Validate(ItemType()).ok());
}

TEST(RecordTest, ValidateRejectsMissingPrimaryKey) {
  Record r("Item");
  r.SetInt("count", 1);
  EXPECT_FALSE(r.Validate(ItemType()).ok());
}

TEST(RecordTest, ValidateRejectsTypeMismatch) {
  Record r("Other");
  r.SetString("id", "a1");
  EXPECT_FALSE(r.Validate(ItemType()).ok());
}

TEST(RecordTest, PrimaryKeyIncludesTypePrefix) {
  Record r("Item");
  r.SetString("id", "a1");
  tup::Tuple pk = r.PrimaryKey(ItemType()).value();
  ASSERT_EQ(pk.size(), 2u);
  EXPECT_EQ(pk.GetString(0).value(), "Item");
  EXPECT_EQ(pk.GetString(1).value(), "a1");
}

TEST(RecordTest, ElementOrNullForMissing) {
  Record r("Item");
  tup::Element e = r.ElementOrNull("count");
  EXPECT_TRUE(std::holds_alternative<tup::Null>(e));
}

TEST(RecordTest, EqualityIgnoresInsertionOrder) {
  Record a("Item"), b("Item");
  a.SetString("id", "x").SetInt("count", 1);
  b.SetInt("count", 1).SetString("id", "x");
  EXPECT_TRUE(a == b);
  b.SetInt("count", 2);
  EXPECT_FALSE(a == b);
}

TEST(RecordTest, ToStringReadable) {
  Record r("Item");
  r.SetString("id", "a1").SetInt("count", 3);
  EXPECT_EQ(r.ToString(), "Item{count=3, id=\"a1\"}");
}

}  // namespace
}  // namespace quick::rl
