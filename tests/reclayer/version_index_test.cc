#include <gtest/gtest.h>

#include "fdb/database.h"
#include "fdb/retry.h"
#include "reclayer/record_store.h"

namespace quick::rl {
namespace {

RecordMetadata VersionedMetadata() {
  RecordMetadata meta;
  RecordTypeDef doc;
  doc.name = "Doc";
  doc.fields = {{"id", FieldType::kString}, {"body", FieldType::kString}};
  doc.primary_key_fields = {"id"};
  EXPECT_TRUE(meta.AddRecordType(std::move(doc)).ok());

  IndexDef changes;
  changes.name = "changes";  // last-modified order (CloudKit-sync style)
  changes.kind = IndexKind::kVersion;
  EXPECT_TRUE(meta.AddIndex(std::move(changes)).ok());

  IndexDef arrival;
  arrival.name = "arrival";  // insertion order (sticky)
  arrival.kind = IndexKind::kVersion;
  arrival.sticky_version = true;
  EXPECT_TRUE(meta.AddIndex(std::move(arrival)).ok());
  return meta;
}

class VersionIndexTest : public ::testing::Test {
 protected:
  VersionIndexTest() : meta_(VersionedMetadata()), db_("vtest") {}

  Status Save(const std::string& id, const std::string& body) {
    return fdb::RunTransaction(&db_, [&](fdb::Transaction& txn) {
      RecordStore store(&txn, tup::Subspace(tup::Tuple().AddString("s")),
                        &meta_);
      Record r("Doc");
      r.SetString("id", id).SetString("body", body);
      return store.SaveRecord(r);
    });
  }

  Status Delete(const std::string& id) {
    return fdb::RunTransaction(&db_, [&](fdb::Transaction& txn) {
      RecordStore store(&txn, tup::Subspace(tup::Tuple().AddString("s")),
                        &meta_);
      return store.DeleteRecord("Doc", tup::Tuple().AddString(id)).status();
    });
  }

  std::vector<std::string> ScanIds(const std::string& index,
                                   std::optional<std::string> after = {}) {
    std::vector<std::string> ids;
    Status st = fdb::RunTransaction(&db_, [&](fdb::Transaction& txn) {
      RecordStore store(&txn, tup::Subspace(tup::Tuple().AddString("s")),
                        &meta_);
      auto entries = store.ScanVersionIndex(index, after);
      QUICK_RETURN_IF_ERROR(entries.status());
      ids.clear();
      for (const VersionIndexEntry& e : *entries) {
        ids.push_back(e.primary_key.GetString(1).value());
      }
      return Status::OK();
    });
    EXPECT_TRUE(st.ok()) << st;
    return ids;
  }

  std::optional<std::string> Stamp(const std::string& index,
                                   const std::string& id) {
    std::optional<std::string> out;
    Status st = fdb::RunTransaction(&db_, [&](fdb::Transaction& txn) {
      RecordStore store(&txn, tup::Subspace(tup::Tuple().AddString("s")),
                        &meta_);
      QUICK_ASSIGN_OR_RETURN(
          out, store.GetRecordVersion(index, "Doc",
                                      tup::Tuple().AddString(id)));
      return Status::OK();
    });
    EXPECT_TRUE(st.ok()) << st;
    return out;
  }

  RecordMetadata meta_;
  fdb::Database db_;
};

TEST_F(VersionIndexTest, EntriesInCommitOrder) {
  ASSERT_TRUE(Save("a", "1").ok());
  ASSERT_TRUE(Save("b", "1").ok());
  ASSERT_TRUE(Save("c", "1").ok());
  EXPECT_EQ(ScanIds("changes"), (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(VersionIndexTest, UpdateMovesChangeEntryToEnd) {
  ASSERT_TRUE(Save("a", "1").ok());
  ASSERT_TRUE(Save("b", "1").ok());
  ASSERT_TRUE(Save("a", "2").ok());  // re-modified
  EXPECT_EQ(ScanIds("changes"), (std::vector<std::string>{"b", "a"}));
  // Exactly one entry per record, at the latest write.
  EXPECT_EQ(ScanIds("changes").size(), 2u);
}

TEST_F(VersionIndexTest, StickyIndexKeepsInsertionOrder) {
  ASSERT_TRUE(Save("a", "1").ok());
  ASSERT_TRUE(Save("b", "1").ok());
  ASSERT_TRUE(Save("a", "2").ok());  // update must NOT reorder arrival
  EXPECT_EQ(ScanIds("arrival"), (std::vector<std::string>{"a", "b"}));
}

TEST_F(VersionIndexTest, DeleteRemovesBothKinds) {
  ASSERT_TRUE(Save("a", "1").ok());
  ASSERT_TRUE(Save("b", "1").ok());
  ASSERT_TRUE(Delete("a").ok());
  EXPECT_EQ(ScanIds("changes"), (std::vector<std::string>{"b"}));
  EXPECT_EQ(ScanIds("arrival"), (std::vector<std::string>{"b"}));
  EXPECT_FALSE(Stamp("changes", "a").has_value());
  EXPECT_FALSE(Stamp("arrival", "a").has_value());
}

TEST_F(VersionIndexTest, DeleteAfterUpdateLeavesNothingBehind) {
  ASSERT_TRUE(Save("a", "1").ok());
  ASSERT_TRUE(Save("a", "2").ok());
  ASSERT_TRUE(Delete("a").ok());
  EXPECT_TRUE(ScanIds("changes").empty());
  EXPECT_TRUE(ScanIds("arrival").empty());
}

TEST_F(VersionIndexTest, ReinsertGetsFreshArrivalPosition) {
  ASSERT_TRUE(Save("a", "1").ok());
  ASSERT_TRUE(Save("b", "1").ok());
  ASSERT_TRUE(Delete("a").ok());
  ASSERT_TRUE(Save("a", "again").ok());
  EXPECT_EQ(ScanIds("arrival"), (std::vector<std::string>{"b", "a"}));
}

TEST_F(VersionIndexTest, GetRecordVersionMatchesScanOrder) {
  ASSERT_TRUE(Save("a", "1").ok());
  ASSERT_TRUE(Save("b", "1").ok());
  auto sa = Stamp("changes", "a");
  auto sb = Stamp("changes", "b");
  ASSERT_TRUE(sa.has_value());
  ASSERT_TRUE(sb.has_value());
  EXPECT_LT(*sa, *sb);

  ASSERT_TRUE(Save("a", "2").ok());
  auto sa2 = Stamp("changes", "a");
  EXPECT_GT(*sa2, *sb);
  // Sticky stamp never moved.
  EXPECT_EQ(Stamp("arrival", "a"), sa);
}

TEST_F(VersionIndexTest, ChangesSinceToken) {
  // The CloudKit-sync pattern: remember a sync token (versionstamp) and ask
  // for everything committed after it.
  ASSERT_TRUE(Save("a", "1").ok());
  ASSERT_TRUE(Save("b", "1").ok());
  const std::string token = Stamp("changes", "b").value();

  ASSERT_TRUE(Save("c", "1").ok());
  ASSERT_TRUE(Save("a", "2").ok());  // modified after the token

  EXPECT_EQ(ScanIds("changes", token),
            (std::vector<std::string>{"c", "a"}));
  // Nothing after the newest stamp.
  const std::string newest = Stamp("changes", "a").value();
  EXPECT_TRUE(ScanIds("changes", newest).empty());
}

TEST_F(VersionIndexTest, SameTransactionDoubleWriteSingleEntry) {
  Status st = fdb::RunTransaction(&db_, [&](fdb::Transaction& txn) {
    RecordStore store(&txn, tup::Subspace(tup::Tuple().AddString("s")),
                      &meta_);
    Record r("Doc");
    r.SetString("id", "x").SetString("body", "1");
    QUICK_RETURN_IF_ERROR(store.SaveRecord(r));
    r.SetString("body", "2");
    return store.SaveRecord(r);
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(ScanIds("changes"), (std::vector<std::string>{"x"}));
  EXPECT_EQ(ScanIds("arrival"), (std::vector<std::string>{"x"}));
}

TEST_F(VersionIndexTest, MetadataRejectsVersionIndexWithFields) {
  RecordMetadata meta;
  RecordTypeDef doc;
  doc.name = "D";
  doc.fields = {{"id", FieldType::kInt64}};
  doc.primary_key_fields = {"id"};
  ASSERT_TRUE(meta.AddRecordType(std::move(doc)).ok());
  IndexDef bad;
  bad.name = "bad";
  bad.kind = IndexKind::kVersion;
  bad.fields = {"id"};
  EXPECT_FALSE(meta.AddIndex(bad).ok());
}

TEST_F(VersionIndexTest, ScanRejectsWrongKind) {
  Status st = fdb::RunTransaction(&db_, [&](fdb::Transaction& txn) {
    RecordStore store(&txn, tup::Subspace(tup::Tuple().AddString("s")),
                      &meta_);
    EXPECT_FALSE(store.ScanVersionIndex("nonexistent").ok());
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
}

}  // namespace
}  // namespace quick::rl
