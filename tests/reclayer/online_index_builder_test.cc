#include "reclayer/online_index_builder.h"

#include <gtest/gtest.h>

#include <thread>

#include "fdb/retry.h"

namespace quick::rl {
namespace {

RecordMetadata BaseMetadata() {
  RecordMetadata meta(1);
  RecordTypeDef doc;
  doc.name = "Doc";
  doc.fields = {{"id", FieldType::kInt64},
                {"title", FieldType::kString},
                {"rank", FieldType::kInt64}};
  doc.primary_key_fields = {"id"};
  EXPECT_TRUE(meta.AddRecordType(std::move(doc)).ok());
  return meta;
}

/// The evolved schema: BaseMetadata plus the index being built.
RecordMetadata EvolvedMetadata() {
  RecordMetadata meta = BaseMetadata();
  IndexDef by_title;
  by_title.name = "by_title";
  by_title.record_types = {"Doc"};
  by_title.fields = {"title"};
  EXPECT_TRUE(meta.AddIndex(std::move(by_title)).ok());
  return meta;
}

class OnlineIndexBuilderTest : public ::testing::Test {
 protected:
  OnlineIndexBuilderTest()
      : base_(BaseMetadata()),
        evolved_(EvolvedMetadata()),
        db_("oib"),
        subspace_(tup::Tuple().AddString("s")) {}

  /// Seeds `n` docs under the ORIGINAL schema (no by_title index).
  void Seed(int n) {
    Status st = fdb::RunTransaction(&db_, [&](fdb::Transaction& txn) {
      RecordStore store(&txn, subspace_, &base_);
      for (int i = 0; i < n; ++i) {
        Record r("Doc");
        r.SetInt("id", i)
            .SetString("title", "t" + std::to_string(i % 7))
            .SetInt("rank", i);
        QUICK_RETURN_IF_ERROR(store.SaveRecord(r));
      }
      return Status::OK();
    });
    ASSERT_TRUE(st.ok()) << st;
  }

  Result<size_t> CountIndexEntries() {
    return fdb::RunTransactionResult<size_t>(
        &db_, fdb::TransactionOptions{},
        [&](fdb::Transaction& txn, size_t* out) {
          RecordStore store(&txn, subspace_, &evolved_);
          auto entries = store.ScanIndex("by_title", tup::Tuple());
          QUICK_RETURN_IF_ERROR(entries.status());
          *out = entries->size();
          return Status::OK();
        });
  }

  RecordMetadata base_;
  RecordMetadata evolved_;
  fdb::Database db_;
  tup::Subspace subspace_;
};

TEST_F(OnlineIndexBuilderTest, BuildBackfillsExistingRecords) {
  Seed(200);  // several batches at batch_size 64
  OnlineIndexBuilder builder(&db_, subspace_, &evolved_, "by_title");
  ASSERT_TRUE(builder.MarkWriteOnly().ok());
  ASSERT_TRUE(builder.Build().ok());
  EXPECT_EQ(CountIndexEntries().value(), 200u);
}

TEST_F(OnlineIndexBuilderTest, WriteOnlyIndexRejectsScans) {
  Seed(5);
  OnlineIndexBuilder builder(&db_, subspace_, &evolved_, "by_title");
  ASSERT_TRUE(builder.MarkWriteOnly().ok());
  Status st = fdb::RunTransaction(&db_, [&](fdb::Transaction& txn) {
    RecordStore store(&txn, subspace_, &evolved_);
    return store.ScanIndex("by_title", tup::Tuple()).status();
  });
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  // The query planner's executor hits the same wall.
  ASSERT_TRUE(builder.Build().ok());
  st = fdb::RunTransaction(&db_, [&](fdb::Transaction& txn) {
    RecordStore store(&txn, subspace_, &evolved_);
    return store.ScanIndex("by_title", tup::Tuple()).status();
  });
  EXPECT_TRUE(st.ok());
}

TEST_F(OnlineIndexBuilderTest, WritesDuringBuildAreIndexedOnce) {
  Seed(100);
  OnlineIndexBuilder::Options options;
  options.batch_size = 16;
  OnlineIndexBuilder builder(&db_, subspace_, &evolved_, "by_title", options);
  ASSERT_TRUE(builder.MarkWriteOnly().ok());

  // Writer mutates existing and new records (under the EVOLVED schema, as
  // deployed application servers would) while the backfill runs.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int i = 0;
    while (!stop.load()) {
      Status st = fdb::RunTransaction(&db_, [&](fdb::Transaction& txn) {
        RecordStore store(&txn, subspace_, &evolved_);
        Record r("Doc");
        const int64_t id = (i * 13) % 120;  // overwrites + some new ids
        r.SetInt("id", id)
            .SetString("title", "updated" + std::to_string(i % 3))
            .SetInt("rank", i);
        return store.SaveRecord(r);
      });
      ASSERT_TRUE(st.ok());
      ++i;
    }
  });
  ASSERT_TRUE(builder.Build().ok());
  stop.store(true);
  writer.join();

  // Invariant: exactly one index entry per record, pointing at the
  // record's current title.
  Status st = fdb::RunTransaction(&db_, [&](fdb::Transaction& txn) {
    RecordStore store(&txn, subspace_, &evolved_);
    auto entries = store.ScanIndex("by_title", tup::Tuple());
    QUICK_RETURN_IF_ERROR(entries.status());
    auto records = store.ScanRecords();
    QUICK_RETURN_IF_ERROR(records.status());
    EXPECT_EQ(entries->size(), records->size());
    std::map<int64_t, std::string> by_id;
    for (const Record& r : *records) {
      by_id[r.GetInt("id").value()] = r.GetString("title").value();
    }
    for (const IndexEntry& e : *entries) {
      const int64_t id = e.primary_key.GetInt(1).value();
      EXPECT_EQ(e.indexed_values.GetString(0).value(), by_id[id])
          << "stale entry for id " << id;
    }
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st;
}

TEST_F(OnlineIndexBuilderTest, BuildIsIdempotent) {
  Seed(50);
  OnlineIndexBuilder builder(&db_, subspace_, &evolved_, "by_title");
  ASSERT_TRUE(builder.MarkWriteOnly().ok());
  ASSERT_TRUE(builder.Build().ok());
  ASSERT_TRUE(builder.Build().ok());  // re-run: at-least-once safe
  EXPECT_EQ(CountIndexEntries().value(), 50u);
}

TEST_F(OnlineIndexBuilderTest, RejectsNonValueIndexes) {
  RecordMetadata meta = BaseMetadata();
  IndexDef count;
  count.name = "total";
  count.kind = IndexKind::kCount;
  ASSERT_TRUE(meta.AddIndex(std::move(count)).ok());
  OnlineIndexBuilder builder(&db_, subspace_, &meta, "total");
  EXPECT_FALSE(builder.MarkWriteOnly().ok());
  EXPECT_FALSE(builder.Build().ok());
  OnlineIndexBuilder ghost(&db_, subspace_, &meta, "ghost");
  EXPECT_FALSE(ghost.Build().ok());
}

TEST_F(OnlineIndexBuilderTest, GetIndexStateReflectsLifecycle) {
  OnlineIndexBuilder builder(&db_, subspace_, &evolved_, "by_title");
  auto state_now = [&] {
    fdb::Transaction txn = db_.CreateTransaction();
    return OnlineIndexBuilder::GetIndexState(&txn, subspace_, "by_title")
        .value();
  };
  EXPECT_EQ(state_now(), IndexState::kReadable);  // absent = readable
  ASSERT_TRUE(builder.MarkWriteOnly().ok());
  EXPECT_EQ(state_now(), IndexState::kWriteOnly);
  ASSERT_TRUE(builder.Build().ok());
  EXPECT_EQ(state_now(), IndexState::kReadable);
}

}  // namespace
}  // namespace quick::rl
