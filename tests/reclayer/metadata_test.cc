#include "reclayer/metadata.h"

#include <gtest/gtest.h>

namespace quick::rl {
namespace {

RecordTypeDef UserType() {
  RecordTypeDef t;
  t.name = "User";
  t.fields = {{"id", FieldType::kString},
              {"age", FieldType::kInt64},
              {"name", FieldType::kString}};
  t.primary_key_fields = {"id"};
  return t;
}

TEST(MetadataTest, AddAndFindRecordType) {
  RecordMetadata meta;
  ASSERT_TRUE(meta.AddRecordType(UserType()).ok());
  const RecordTypeDef* t = meta.FindRecordType("User");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->fields.size(), 3u);
  EXPECT_EQ(meta.FindRecordType("Nope"), nullptr);
}

TEST(MetadataTest, RejectDuplicateType) {
  RecordMetadata meta;
  ASSERT_TRUE(meta.AddRecordType(UserType()).ok());
  EXPECT_TRUE(meta.AddRecordType(UserType()).IsAlreadyExists());
}

TEST(MetadataTest, RejectEmptyName) {
  RecordMetadata meta;
  RecordTypeDef t = UserType();
  t.name.clear();
  EXPECT_FALSE(meta.AddRecordType(t).ok());
}

TEST(MetadataTest, RejectMissingPrimaryKey) {
  RecordMetadata meta;
  RecordTypeDef t = UserType();
  t.primary_key_fields.clear();
  EXPECT_FALSE(meta.AddRecordType(t).ok());
  t.primary_key_fields = {"no_such_field"};
  EXPECT_FALSE(meta.AddRecordType(t).ok());
}

TEST(MetadataTest, AddValueIndex) {
  RecordMetadata meta;
  ASSERT_TRUE(meta.AddRecordType(UserType()).ok());
  IndexDef idx;
  idx.name = "by_age";
  idx.kind = IndexKind::kValue;
  idx.record_types = {"User"};
  idx.fields = {"age"};
  ASSERT_TRUE(meta.AddIndex(idx).ok());
  EXPECT_NE(meta.FindIndex("by_age"), nullptr);
}

TEST(MetadataTest, RejectValueIndexWithoutFields) {
  RecordMetadata meta;
  ASSERT_TRUE(meta.AddRecordType(UserType()).ok());
  IndexDef idx;
  idx.name = "bad";
  idx.kind = IndexKind::kValue;
  EXPECT_FALSE(meta.AddIndex(idx).ok());
}

TEST(MetadataTest, RejectIndexOnUnknownTypeOrField) {
  RecordMetadata meta;
  ASSERT_TRUE(meta.AddRecordType(UserType()).ok());
  IndexDef idx;
  idx.name = "bad";
  idx.record_types = {"Ghost"};
  idx.fields = {"age"};
  EXPECT_FALSE(meta.AddIndex(idx).ok());

  idx.record_types = {"User"};
  idx.fields = {"ghost_field"};
  EXPECT_FALSE(meta.AddIndex(idx).ok());
}

TEST(MetadataTest, CountIndexWithoutFieldsAllowed) {
  RecordMetadata meta;
  ASSERT_TRUE(meta.AddRecordType(UserType()).ok());
  IndexDef idx;
  idx.name = "total";
  idx.kind = IndexKind::kCount;
  idx.record_types = {"User"};
  EXPECT_TRUE(meta.AddIndex(idx).ok());
}

TEST(MetadataTest, IndexCoversExplicitAndImplicit) {
  IndexDef all;
  EXPECT_TRUE(all.Covers("Anything"));
  IndexDef some;
  some.record_types = {"A", "B"};
  EXPECT_TRUE(some.Covers("A"));
  EXPECT_FALSE(some.Covers("C"));
}

TEST(MetadataTest, RejectDuplicateIndex) {
  RecordMetadata meta;
  ASSERT_TRUE(meta.AddRecordType(UserType()).ok());
  IndexDef idx;
  idx.name = "by_age";
  idx.record_types = {"User"};
  idx.fields = {"age"};
  ASSERT_TRUE(meta.AddIndex(idx).ok());
  EXPECT_TRUE(meta.AddIndex(idx).IsAlreadyExists());
}

}  // namespace
}  // namespace quick::rl
