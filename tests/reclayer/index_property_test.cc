// Property test: after an arbitrary random sequence of saves and deletes,
// every value index contains exactly one entry per live record (at the
// record's current indexed values) and every count index equals the number
// of live records per group — the index-consistency invariant transactional
// maintenance must provide.

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "fdb/database.h"
#include "fdb/retry.h"
#include "reclayer/record_store.h"

namespace quick::rl {
namespace {

class IndexPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexPropertyTest, IndexesMatchRecordsAfterRandomOps) {
  RecordMetadata meta;
  RecordTypeDef doc;
  doc.name = "Doc";
  doc.fields = {{"id", FieldType::kInt64},
                {"bucket", FieldType::kInt64},
                {"rank", FieldType::kInt64}};
  doc.primary_key_fields = {"id"};
  ASSERT_TRUE(meta.AddRecordType(std::move(doc)).ok());
  IndexDef by_rank;
  by_rank.name = "by_rank";
  by_rank.fields = {"rank"};
  ASSERT_TRUE(meta.AddIndex(std::move(by_rank)).ok());
  IndexDef per_bucket;
  per_bucket.name = "per_bucket";
  per_bucket.kind = IndexKind::kCount;
  per_bucket.fields = {"bucket"};
  ASSERT_TRUE(meta.AddIndex(std::move(per_bucket)).ok());

  fdb::Database db("prop");
  const tup::Subspace subspace(tup::Tuple().AddString("p"));
  Random rng(GetParam());

  // Reference model: id -> (bucket, rank).
  std::map<int64_t, std::pair<int64_t, int64_t>> model;

  for (int step = 0; step < 300; ++step) {
    const int64_t id = static_cast<int64_t>(rng.Uniform(40));
    const bool do_delete = rng.Bernoulli(0.3);
    Status st = fdb::RunTransaction(&db, [&](fdb::Transaction& txn) {
      RecordStore store(&txn, subspace, &meta);
      if (do_delete) {
        return store.DeleteRecord("Doc", tup::Tuple().AddInt(id)).status();
      }
      Record r("Doc");
      r.SetInt("id", id)
          .SetInt("bucket", static_cast<int64_t>(rng.Uniform(4)))
          .SetInt("rank", static_cast<int64_t>(rng.Uniform(100)));
      QUICK_RETURN_IF_ERROR(store.SaveRecord(r));
      return Status::OK();
    });
    ASSERT_TRUE(st.ok());
    // Mirror into the model (rng consumed identically inside/outside is
    // fragile; re-read the stored record instead).
    Status st2 = fdb::RunTransaction(&db, [&](fdb::Transaction& txn) {
      RecordStore store(&txn, subspace, &meta);
      auto rec = store.LoadRecord("Doc", tup::Tuple().AddInt(id));
      QUICK_RETURN_IF_ERROR(rec.status());
      if (rec->has_value()) {
        model[id] = {(*rec)->GetInt("bucket").value(),
                     (*rec)->GetInt("rank").value()};
      } else {
        model.erase(id);
      }
      return Status::OK();
    });
    ASSERT_TRUE(st2.ok());
  }

  // Verify value index: one entry per live record at its rank.
  Status st = fdb::RunTransaction(&db, [&](fdb::Transaction& txn) {
    RecordStore store(&txn, subspace, &meta);
    auto entries = store.ScanIndex("by_rank", tup::Tuple());
    QUICK_RETURN_IF_ERROR(entries.status());
    EXPECT_EQ(entries->size(), model.size());
    std::map<int64_t, int64_t> index_view;  // id -> rank
    int64_t prev_rank = INT64_MIN;
    for (const IndexEntry& e : *entries) {
      const int64_t rank = e.indexed_values.GetInt(0).value();
      EXPECT_GE(rank, prev_rank) << "index not ordered";
      prev_rank = rank;
      index_view[e.primary_key.GetInt(1).value()] = rank;
    }
    EXPECT_EQ(index_view.size(), model.size());
    for (const auto& [id, br] : model) {
      EXPECT_TRUE(index_view.count(id)) << "missing index entry for " << id;
      if (!index_view.count(id)) return Status::Internal("missing entry");
      EXPECT_EQ(index_view[id], br.second) << "stale index entry for " << id;
    }

    // Verify count index per bucket.
    std::map<int64_t, int64_t> expected_counts;
    for (const auto& [id, br] : model) ++expected_counts[br.first];
    for (int64_t bucket = 0; bucket < 4; ++bucket) {
      auto count = store.GetCount("per_bucket", tup::Tuple().AddInt(bucket));
      QUICK_RETURN_IF_ERROR(count.status());
      EXPECT_EQ(*count, expected_counts[bucket]) << "bucket " << bucket;
    }
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 42, 99, 123,
                                           20260705));

}  // namespace
}  // namespace quick::rl
