// Deterministic unit tests for the Future/Promise/combinator layer and the
// executors that drive async transaction chains: completion and callback
// ordering, Then chaining (including flattening), WhenAll fan-in, sticky
// cancellation tokens, ManualExecutor virtual-time timers, and the
// ThreadPoolExecutor's shutdown contract.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "fdb/executor.h"
#include "fdb/future.h"

namespace quick::fdb {
namespace {

TEST(FutureTest, SetBeforeGet) {
  Promise<int> p;
  Future<int> f = p.GetFuture();
  EXPECT_TRUE(f.valid());
  EXPECT_FALSE(f.IsReady());
  p.Set(42);
  EXPECT_TRUE(f.IsReady());
  EXPECT_EQ(f.Get(), 42);
}

TEST(FutureTest, DefaultConstructedIsInvalid) {
  Future<int> f;
  EXPECT_FALSE(f.valid());
}

TEST(FutureTest, CallbacksRegisteredBeforeCompletionRunInOrder) {
  Promise<int> p;
  Future<int> f = p.GetFuture();
  std::vector<int> order;
  f.OnReady([&](const int& v) { order.push_back(v * 10); });
  f.OnReady([&](const int& v) { order.push_back(v * 10 + 1); });
  EXPECT_TRUE(order.empty());  // nothing runs before completion
  p.Set(1);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 10);
  EXPECT_EQ(order[1], 11);
}

TEST(FutureTest, CallbackAfterCompletionRunsInline) {
  Promise<int> p;
  p.Set(7);
  int seen = 0;
  p.GetFuture().OnReady([&](const int& v) { seen = v; });
  EXPECT_EQ(seen, 7);
}

TEST(FutureTest, FirstCompletionWins) {
  Promise<std::string> p;
  Promise<std::string> copy = p;  // copies complete the same future
  p.Set("first");
  copy.Set("second");
  EXPECT_EQ(p.GetFuture().Get(), "first");
}

TEST(FutureTest, ThenTransformsValue) {
  Promise<int> p;
  Future<std::string> chained =
      p.GetFuture().Then([](const int& v) { return std::to_string(v + 1); });
  p.Set(41);
  EXPECT_EQ(chained.Get(), "42");
}

TEST(FutureTest, ThenFlattensFutureReturningFn) {
  Promise<int> outer;
  Promise<int> inner;
  // fn returns Future<int>; the chain must be Future<int>, not
  // Future<Future<int>>, and completes only when the inner one does.
  Future<int> chained = outer.GetFuture().Then(
      [&inner](const int&) { return inner.GetFuture(); });
  outer.Set(1);
  EXPECT_FALSE(chained.IsReady());
  inner.Set(99);
  EXPECT_EQ(chained.Get(), 99);
}

TEST(FutureTest, WhenAllPreservesInputOrder) {
  std::vector<Promise<int>> promises(3);
  std::vector<Future<int>> futures;
  for (auto& p : promises) futures.push_back(p.GetFuture());
  Future<std::vector<int>> all = WhenAll(std::move(futures));
  // Complete out of order; results must still be in input order.
  promises[2].Set(30);
  promises[0].Set(10);
  EXPECT_FALSE(all.IsReady());
  promises[1].Set(20);
  ASSERT_TRUE(all.IsReady());
  EXPECT_EQ(all.Get(), (std::vector<int>{10, 20, 30}));
}

TEST(FutureTest, WhenAllOfNothingCompletesImmediately) {
  Future<std::vector<int>> all = WhenAll(std::vector<Future<int>>{});
  ASSERT_TRUE(all.IsReady());
  EXPECT_TRUE(all.Get().empty());
}

TEST(FutureTest, WaitBlocksUntilCompletedFromAnotherThread) {
  Promise<int> p;
  Future<int> f = p.GetFuture();
  std::thread completer([&p] { p.Set(5); });
  f.Wait();
  EXPECT_EQ(f.Get(), 5);
  completer.join();
}

TEST(CancelTokenTest, CopiesShareTheFlagAndCancelIsSticky) {
  CancelToken token;
  CancelToken copy = token;
  EXPECT_FALSE(token.Cancelled());
  EXPECT_FALSE(copy.Cancelled());
  copy.Cancel();
  EXPECT_TRUE(token.Cancelled());
  token.Cancel();  // idempotent
  EXPECT_TRUE(copy.Cancelled());
}

TEST(ManualExecutorTest, PostedTasksRunFifoOnRunUntilIdle) {
  ManualExecutor exec;
  std::vector<int> order;
  exec.Post([&] { order.push_back(1); });
  exec.Post([&] { order.push_back(2); });
  EXPECT_TRUE(order.empty());  // nothing runs until pumped
  EXPECT_EQ(exec.RunUntilIdle(), 2);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ManualExecutorTest, TasksPostedByTasksRunInTheSamePump) {
  ManualExecutor exec;
  int ran = 0;
  exec.Post([&] {
    ++ran;
    exec.Post([&] { ++ran; });
  });
  EXPECT_EQ(exec.RunUntilIdle(), 2);
  EXPECT_EQ(ran, 2);
}

TEST(ManualExecutorTest, TimersFireInDeadlineOrderOnAdvance) {
  ManualExecutor exec;
  std::vector<int> order;
  exec.PostAfter(50, [&] { order.push_back(50); });
  exec.PostAfter(10, [&] { order.push_back(10); });
  exec.PostAfter(30, [&] { order.push_back(30); });
  EXPECT_EQ(exec.PendingTimers(), 3u);

  exec.AdvanceMillis(10);
  exec.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{10}));
  EXPECT_EQ(exec.PendingTimers(), 2u);

  exec.AdvanceMillis(40);  // t=50: both remaining timers are due
  exec.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{10, 30, 50}));
  EXPECT_EQ(exec.PendingTimers(), 0u);
}

TEST(ManualExecutorTest, NonPositiveDelayIsDueImmediately) {
  ManualExecutor exec;
  bool ran = false;
  exec.PostAfter(0, [&] { ran = true; });
  exec.AdvanceMillis(0);
  exec.RunUntilIdle();
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolExecutorTest, RunsPostedTasks) {
  ThreadPoolExecutor exec(2);
  std::atomic<int> ran{0};
  Promise<bool> done;
  for (int i = 0; i < 10; ++i) {
    exec.Post([&] {
      if (ran.fetch_add(1) + 1 == 10) done.Set(true);
    });
  }
  done.GetFuture().Wait();
  EXPECT_EQ(ran.load(), 10);
  exec.Shutdown();
}

TEST(ThreadPoolExecutorTest, PostAfterFiresAfterTheDelay) {
  ThreadPoolExecutor exec(1);
  const int64_t start = SystemClock::Default()->NowMillis();
  Promise<int64_t> fired;
  exec.PostAfter(20, [&] { fired.Set(SystemClock::Default()->NowMillis()); });
  EXPECT_GE(fired.GetFuture().Get() - start, 20);
  exec.Shutdown();
}

TEST(ThreadPoolExecutorTest, ShutdownDropsPendingTimersAndIsIdempotent) {
  auto exec = std::make_unique<ThreadPoolExecutor>(2);
  std::atomic<bool> fired{false};
  exec->PostAfter(60000, [&] { fired.store(true); });
  exec->Shutdown();
  exec->Shutdown();  // safe to call twice
  exec->Post([&] { fired.store(true); });  // dropped after shutdown
  exec.reset();
  EXPECT_FALSE(fired.load());
}

}  // namespace
}  // namespace quick::fdb
