// Kill-the-process chaos, multi-seed: a randomized single-threaded
// workload (puts, clears, atomic adds, checkpoints) runs against a
// WAL-backed Database while a scheduled disk fault kills the process at a
// random point — mid-batch-append or mid-checkpoint. A shadow model
// tracks every *acknowledged* commit. After each kill the Database is
// reconstructed from the directory and must match the shadow exactly:
// the recovered version is the last acknowledged commit version
// (invariant 14), every acknowledged write is present, and nothing
// unacknowledged resurfaces as committed state the shadow lacks.
//
// Commits that returned kCommitUnknownResult are the one legitimate
// ambiguity (the fault fired between apply and fsync): they are allowed
// to be absent — and with this WAL design are always absent, since the
// version is only published after fsync — so the shadow simply excludes
// them.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "fdb/database.h"

namespace quick::fdb {
namespace {

std::string MakeTempDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "quick_recovery_chaos_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

class RecoveryChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RecoveryChaosTest, RecoversExactlyToLastAcknowledgedCommit) {
  const uint64_t seed = GetParam();
  Random rng(seed);
  const std::string dir = MakeTempDir(std::to_string(seed));
  ManualClock clock(1000000);

  // Shadow of acknowledged state only.
  std::map<std::string, std::string> shadow;
  Version acked_version = 0;
  int64_t unknown_results = 0;

  const int kKills = 4;
  for (int incarnation = 0; incarnation <= kKills; ++incarnation) {
    Database::Options opts;
    opts.clock = &clock;
    opts.durability.enable_wal = true;
    opts.durability.dir = dir;
    // Small interval so checkpoints happen organically mid-run.
    opts.durability.checkpoint_interval_bytes = 1 << 12;
    const bool last = incarnation == kKills;
    if (!last) {
      // Schedule the kill at a random upcoming disk operation, mixing
      // torn writes and corruption, sometimes against the checkpoint
      // writer instead of the WAL append (ordinals sized so either
      // stream deterministically reaches the kill point).
      const bool on_checkpoint = rng.Bernoulli(0.4);
      const int64_t at_op =
          1 + static_cast<int64_t>(rng.Uniform(on_checkpoint ? 6 : 30));
      DiskFault fault = rng.Bernoulli(0.5)
                            ? DiskFault::TornWrite(
                                  at_op, static_cast<int64_t>(rng.Uniform(40)))
                            : DiskFault::Corruption(
                                  at_op, static_cast<int64_t>(rng.Uniform(64)));
      if (on_checkpoint) fault = fault.OnCheckpoint();
      opts.fault_plan.AddDisk(fault);
    }
    Database db("chaos", opts);

    // --- Recovery must match the shadow exactly. ---
    ASSERT_EQ(db.LastCommittedVersion(), acked_version)
        << "incarnation " << incarnation << " recovered to the wrong version";
    {
      Transaction t = db.CreateTransaction();
      for (const auto& [key, value] : shadow) {
        auto got = t.Get(key);
        ASSERT_TRUE(got.ok()) << got.status();
        ASSERT_TRUE(got->has_value()) << "acked key " << key << " lost";
        ASSERT_EQ(**got, value) << "acked key " << key << " diverged";
      }
      // Full scan: nothing beyond the shadow (unacked writes must not
      // resurface as live state).
      auto all = t.GetRange(KeyRange{"", "\xFF"});
      ASSERT_TRUE(all.ok()) << all.status();
      ASSERT_EQ(all->size(), shadow.size())
          << "recovered state has keys the acknowledged history lacks";
    }

    // --- Random workload until the scheduled fault kills the process
    // (or, in the final incarnation, until the step budget runs out). ---
    const int step_budget = last ? 120 : 2000;
    for (int step = 0; step < step_budget; ++step) {
      const uint64_t action = rng.Uniform(100);
      Status st;
      if (action < 55) {
        const std::string key = "k" + std::to_string(rng.Uniform(40));
        const std::string value =
            "v" + std::to_string(rng.Uniform(1u << 30)) +
            std::string(rng.Uniform(100), 'p');
        Transaction t = db.CreateTransaction();
        t.Set(key, value);
        st = t.Commit();
        if (st.ok()) {
          shadow[key] = value;
          acked_version = db.LastCommittedVersion();
        }
      } else if (action < 70) {
        const std::string key = "k" + std::to_string(rng.Uniform(40));
        Transaction t = db.CreateTransaction();
        t.Clear(key);
        st = t.Commit();
        if (st.ok()) {
          shadow.erase(key);
          acked_version = db.LastCommittedVersion();
        }
      } else if (action < 85) {
        // Blind atomic add on a counter key (no read conflict).
        const std::string key = "ctr" + std::to_string(rng.Uniform(4));
        Transaction t = db.CreateTransaction();
        t.Atomic(AtomicOp::kAdd, key,
                 std::string("\x01\x00\x00\x00\x00\x00\x00\x00", 8));
        st = t.Commit();
        if (st.ok()) {
          std::string cur = shadow.count(key) ? shadow[key]
                                              : std::string(8, '\0');
          uint64_t n = 0;
          for (int i = 7; i >= 0; --i) {
            n = (n << 8) | static_cast<unsigned char>(cur[i]);
          }
          ++n;
          for (int i = 0; i < 8; ++i) {
            cur[i] = static_cast<char>((n >> (8 * i)) & 0xFF);
          }
          shadow[key] = cur;
          acked_version = db.LastCommittedVersion();
        }
      } else if (action < 92) {
        clock.AdvanceMillis(1 + rng.Uniform(300));
        continue;
      } else {
        // Explicit checkpoint (may also fire automatically).
        (void)db.Checkpoint();
        continue;
      }
      if (!st.ok()) {
        if (st.IsCommitUnknownResult()) ++unknown_results;
        if (db.DurabilityDead()) break;  // killed; next incarnation recovers
        // Otherwise: conflict etc. — keep going.
      }
    }
    if (!last) {
      ASSERT_TRUE(db.DurabilityDead())
          << "incarnation " << incarnation
          << " survived its scheduled kill (seed " << seed << ")";
      // Once dead, everything is kUnavailable until restart.
      Transaction t = db.CreateTransaction();
      t.Set("dead", "write");
      EXPECT_EQ(t.Commit().code(), StatusCode::kUnavailable);
    }
  }
  // The scripted kills actually exercised the ambiguity at least once
  // across the default seeds (not asserted per-seed; some geometries kill
  // inside a checkpoint where no commit is in flight).
  (void)unknown_results;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryChaosTest,
                         ::testing::Values(1, 7, 42, 1234, 20260807));

}  // namespace
}  // namespace quick::fdb
