// Parameterized conflict matrix: transaction T1 performs one operation,
// transaction T2 performs another and commits first; the table says whether
// T1's commit must then abort. This pins down the optimistic-concurrency
// semantics every layer above relies on.

#include <gtest/gtest.h>

#include "fdb/database.h"

namespace quick::fdb {
namespace {

enum class Op {
  kStrongRead,      // Get("k1")
  kSnapshotRead,    // Get("k1", snapshot)
  kRangeRead,       // GetRange(["a","c"))
  kWrite,           // Set("k1")
  kWriteOther,      // Set("k2")
  kWriteEdge,       // Set("c") — just outside the range read
  kWriteInRange,    // Set("b")
  kAtomicAdd,       // Atomic(kAdd, "k1")
  kClearRangeOver,  // ClearRange(["k","l")) covering k1
  kDeclaredRead,    // AddReadConflictKey("k1")
  kDeclaredWrite,   // AddWriteConflictKey("k1")
};

void Apply(Transaction* txn, Op op) {
  switch (op) {
    case Op::kStrongRead:
      ASSERT_TRUE(txn->Get("k1").ok());
      break;
    case Op::kSnapshotRead:
      ASSERT_TRUE(txn->Get("k1", /*snapshot=*/true).ok());
      break;
    case Op::kRangeRead:
      ASSERT_TRUE(txn->GetRange(KeyRange{"a", "c"}).ok());
      break;
    case Op::kWrite:
      txn->Set("k1", "v");
      break;
    case Op::kWriteOther:
      txn->Set("k2", "v");
      break;
    case Op::kWriteEdge:
      txn->Set("c", "v");
      break;
    case Op::kWriteInRange:
      txn->Set("b", "v");
      break;
    case Op::kAtomicAdd:
      txn->Atomic(AtomicOp::kAdd, "k1", EncodeLittleEndian64(1));
      break;
    case Op::kClearRangeOver:
      txn->ClearRange(KeyRange{"k", "l"});
      break;
    case Op::kDeclaredRead:
      ASSERT_TRUE(txn->GetReadVersion().ok());
      txn->AddReadConflictKey("k1");
      break;
    case Op::kDeclaredWrite:
      txn->AddWriteConflictKey("k1");
      break;
  }
}

struct MatrixCase {
  const char* name;
  Op t1_op;
  Op t2_op;
  bool t1_must_abort;
};

class ConflictMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(ConflictMatrixTest, CommitOutcomeMatchesTable) {
  const MatrixCase& c = GetParam();
  Database db("matrix");
  // Seed so reads have something to observe.
  {
    Transaction seed = db.CreateTransaction();
    seed.Set("k1", "seed");
    seed.Set("b", "seed");
    ASSERT_TRUE(seed.Commit().ok());
  }

  Transaction t1 = db.CreateTransaction();
  Apply(&t1, c.t1_op);
  // T1 must have something to commit so the resolver actually runs.
  t1.Set("t1_marker", "x");

  Transaction t2 = db.CreateTransaction();
  // Declared-write-only transactions still need their conflicts checked
  // against a read version; touch one for realism.
  ASSERT_TRUE(t2.GetReadVersion().ok());
  Apply(&t2, c.t2_op);
  t2.Set("t2_marker", "y");
  ASSERT_TRUE(t2.Commit().ok()) << c.name;

  const Status st = t1.Commit();
  if (c.t1_must_abort) {
    EXPECT_TRUE(st.IsNotCommitted()) << c.name << ": expected abort, got "
                                     << st;
  } else {
    EXPECT_TRUE(st.ok()) << c.name << ": expected commit, got " << st;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ConflictMatrixTest,
    ::testing::Values(
        MatrixCase{"read_vs_write", Op::kStrongRead, Op::kWrite, true},
        MatrixCase{"snapshot_read_vs_write", Op::kSnapshotRead, Op::kWrite,
                   false},
        MatrixCase{"read_vs_write_other_key", Op::kStrongRead, Op::kWriteOther,
                   false},
        MatrixCase{"range_read_vs_write_inside", Op::kRangeRead,
                   Op::kWriteInRange, true},
        MatrixCase{"range_read_vs_write_at_end", Op::kRangeRead, Op::kWriteEdge,
                   false},
        MatrixCase{"atomic_vs_write", Op::kAtomicAdd, Op::kWrite, false},
        MatrixCase{"atomic_vs_atomic", Op::kAtomicAdd, Op::kAtomicAdd, false},
        MatrixCase{"read_vs_atomic", Op::kStrongRead, Op::kAtomicAdd, true},
        MatrixCase{"read_vs_clear_range", Op::kStrongRead, Op::kClearRangeOver,
                   true},
        MatrixCase{"write_vs_write", Op::kWrite, Op::kWrite, false},
        MatrixCase{"declared_read_vs_write", Op::kDeclaredRead, Op::kWrite,
                   true},
        MatrixCase{"read_vs_declared_write", Op::kStrongRead,
                   Op::kDeclaredWrite, true},
        MatrixCase{"snapshot_read_vs_declared_write", Op::kSnapshotRead,
                   Op::kDeclaredWrite, false},
        MatrixCase{"declared_write_vs_write", Op::kDeclaredWrite, Op::kWrite,
                   false}),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace quick::fdb
