#include "fdb/transaction.h"

#include <gtest/gtest.h>

#include "common/clock.h"
#include "fdb/database.h"

namespace quick::fdb {
namespace {

class TransactionTest : public ::testing::Test {
 protected:
  TransactionTest() {
    Database::Options opts;
    opts.clock = &clock_;
    db_ = std::make_unique<Database>("test", opts);
  }

  void Put(const std::string& key, const std::string& value) {
    Transaction txn = db_->CreateTransaction();
    txn.Set(key, value);
    ASSERT_TRUE(txn.Commit().ok());
  }

  std::optional<std::string> ReadBack(const std::string& key) {
    Transaction txn = db_->CreateTransaction();
    auto r = txn.Get(key);
    EXPECT_TRUE(r.ok());
    return r.ok() ? *r : std::nullopt;
  }

  ManualClock clock_;
  std::unique_ptr<Database> db_;
};

TEST_F(TransactionTest, SetThenGetAfterCommit) {
  Put("k", "v");
  EXPECT_EQ(ReadBack("k").value(), "v");
}

TEST_F(TransactionTest, GetMissingKey) {
  EXPECT_FALSE(ReadBack("missing").has_value());
}

TEST_F(TransactionTest, ReadYourWrites) {
  Transaction txn = db_->CreateTransaction();
  txn.Set("k", "v");
  EXPECT_EQ(txn.Get("k").value().value(), "v");
  txn.Clear("k");
  EXPECT_FALSE(txn.Get("k").value().has_value());
}

TEST_F(TransactionTest, UncommittedWritesInvisibleToOthers) {
  Transaction writer = db_->CreateTransaction();
  writer.Set("k", "v");
  EXPECT_FALSE(ReadBack("k").has_value());
}

TEST_F(TransactionTest, SnapshotIsolationWithinTransaction) {
  Put("k", "v1");
  Transaction reader = db_->CreateTransaction();
  EXPECT_EQ(reader.Get("k").value().value(), "v1");
  Put("k", "v2");
  // Still sees the snapshot.
  EXPECT_EQ(reader.Get("k").value().value(), "v1");
}

TEST_F(TransactionTest, WriteWriteNoReadNoConflict) {
  // Blind writes never conflict: neither transaction read anything.
  Transaction t1 = db_->CreateTransaction();
  Transaction t2 = db_->CreateTransaction();
  t1.Set("k", "a");
  t2.Set("k", "b");
  EXPECT_TRUE(t1.Commit().ok());
  EXPECT_TRUE(t2.Commit().ok());
  EXPECT_EQ(ReadBack("k").value(), "b");
}

TEST_F(TransactionTest, ReadWriteConflictAborts) {
  Put("k", "v0");
  Transaction t1 = db_->CreateTransaction();
  ASSERT_TRUE(t1.Get("k").ok());  // read at old version
  t1.Set("out", "1");

  Put("k", "v1");  // concurrent commit overwrites what t1 read

  Status st = t1.Commit();
  EXPECT_TRUE(st.IsNotCommitted()) << st;
}

TEST_F(TransactionTest, SnapshotReadDoesNotConflict) {
  Put("k", "v0");
  Transaction t1 = db_->CreateTransaction();
  ASSERT_TRUE(t1.Get("k", /*snapshot=*/true).ok());
  t1.Set("out", "1");

  Put("k", "v1");

  EXPECT_TRUE(t1.Commit().ok());
}

TEST_F(TransactionTest, ConflictOnlyWhenRangesIntersect) {
  Put("a", "0");
  Put("b", "0");
  Transaction t1 = db_->CreateTransaction();
  ASSERT_TRUE(t1.Get("a").ok());
  t1.Set("a2", "x");

  Put("b", "1");  // writes a key t1 did not read

  EXPECT_TRUE(t1.Commit().ok());
}

TEST_F(TransactionTest, RangeReadConflictsWithInsertInRange) {
  Put("m1", "x");
  Transaction t1 = db_->CreateTransaction();
  ASSERT_TRUE(t1.GetRange(KeyRange{"m", "n"}).ok());
  t1.Set("out", "1");

  Put("m2", "new");  // insert into the scanned range

  EXPECT_TRUE(t1.Commit().IsNotCommitted());
}

TEST_F(TransactionTest, CommittedTransactionRejectsFurtherUse) {
  Transaction txn = db_->CreateTransaction();
  txn.Set("k", "v");
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_FALSE(txn.Get("k").ok());
  EXPECT_FALSE(txn.Commit().ok());
}

TEST_F(TransactionTest, ReadOnlyCommitIsNoOp) {
  Put("k", "v");
  Transaction txn = db_->CreateTransaction();
  ASSERT_TRUE(txn.Get("k").ok());
  const Version before = db_->LastCommittedVersion();
  EXPECT_TRUE(txn.Commit().ok());
  EXPECT_EQ(db_->LastCommittedVersion(), before);
}

TEST_F(TransactionTest, GetCommittedVersionAdvances) {
  Transaction t1 = db_->CreateTransaction();
  t1.Set("a", "1");
  ASSERT_TRUE(t1.Commit().ok());
  Transaction t2 = db_->CreateTransaction();
  t2.Set("b", "2");
  ASSERT_TRUE(t2.Commit().ok());
  EXPECT_GT(t2.GetCommittedVersion(), t1.GetCommittedVersion());
}

TEST_F(TransactionTest, ClearRangeRemovesCommittedKeys) {
  Put("a1", "1");
  Put("a2", "2");
  Put("b1", "3");
  Transaction txn = db_->CreateTransaction();
  txn.ClearRange(KeyRange::Prefix("a"));
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_FALSE(ReadBack("a1").has_value());
  EXPECT_FALSE(ReadBack("a2").has_value());
  EXPECT_EQ(ReadBack("b1").value(), "3");
}

TEST_F(TransactionTest, ClearRangeThenSetWithinTransaction) {
  Put("a1", "old");
  Transaction txn = db_->CreateTransaction();
  txn.ClearRange(KeyRange::Prefix("a"));
  txn.Set("a1", "new");
  EXPECT_EQ(txn.Get("a1").value().value(), "new");
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(ReadBack("a1").value(), "new");
}

TEST_F(TransactionTest, SetThenClearRangeWithinTransaction) {
  Transaction txn = db_->CreateTransaction();
  txn.Set("a1", "v");
  txn.ClearRange(KeyRange::Prefix("a"));
  EXPECT_FALSE(txn.Get("a1").value().has_value());
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_FALSE(ReadBack("a1").has_value());
}

TEST_F(TransactionTest, GetRangeMergesWriteBuffer) {
  Put("b", "stored");
  Put("d", "stored");
  Transaction txn = db_->CreateTransaction();
  txn.Set("a", "buffered");
  txn.Set("d", "overridden");
  txn.Clear("b");
  auto kvs = txn.GetRange(KeyRange::All()).value();
  ASSERT_EQ(kvs.size(), 2u);
  EXPECT_EQ(kvs[0].key, "a");
  EXPECT_EQ(kvs[0].value, "buffered");
  EXPECT_EQ(kvs[1].key, "d");
  EXPECT_EQ(kvs[1].value, "overridden");
}

TEST_F(TransactionTest, GetRangeLimitWithWriteOverlay) {
  Put("a", "1");
  Put("c", "3");
  Transaction txn = db_->CreateTransaction();
  txn.Set("b", "2");
  RangeOptions opts;
  opts.limit = 2;
  auto kvs = txn.GetRange(KeyRange::All(), opts).value();
  ASSERT_EQ(kvs.size(), 2u);
  EXPECT_EQ(kvs[0].key, "a");
  EXPECT_EQ(kvs[1].key, "b");
}

TEST_F(TransactionTest, GetRangeReverseWithWriteOverlay) {
  Put("a", "1");
  Transaction txn = db_->CreateTransaction();
  txn.Set("z", "26");
  RangeOptions opts;
  opts.reverse = true;
  opts.limit = 1;
  auto kvs = txn.GetRange(KeyRange::All(), opts).value();
  ASSERT_EQ(kvs.size(), 1u);
  EXPECT_EQ(kvs[0].key, "z");
}

TEST_F(TransactionTest, AtomicAddNoConflictBetweenConcurrent) {
  Transaction t1 = db_->CreateTransaction();
  Transaction t2 = db_->CreateTransaction();
  t1.Atomic(AtomicOp::kAdd, "n", EncodeLittleEndian64(1));
  t2.Atomic(AtomicOp::kAdd, "n", EncodeLittleEndian64(2));
  EXPECT_TRUE(t1.Commit().ok());
  EXPECT_TRUE(t2.Commit().ok());
  EXPECT_EQ(DecodeLittleEndian64(ReadBack("n").value()), 3u);
}

TEST_F(TransactionTest, AtomicReadYourWritesComputesValue) {
  Put("n", EncodeLittleEndian64(10));
  Transaction txn = db_->CreateTransaction();
  txn.Atomic(AtomicOp::kAdd, "n", EncodeLittleEndian64(5));
  EXPECT_EQ(DecodeLittleEndian64(txn.Get("n").value().value()), 15u);
}

TEST_F(TransactionTest, AtomicAfterSetFoldsLocally) {
  Transaction txn = db_->CreateTransaction();
  txn.Set("n", EncodeLittleEndian64(10));
  txn.Atomic(AtomicOp::kAdd, "n", EncodeLittleEndian64(5));
  EXPECT_EQ(DecodeLittleEndian64(txn.Get("n").value().value()), 15u);
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(DecodeLittleEndian64(ReadBack("n").value()), 15u);
}

TEST_F(TransactionTest, AtomicAfterClearUsesEmptyBase) {
  Put("n", EncodeLittleEndian64(100));
  Transaction txn = db_->CreateTransaction();
  txn.Clear("n");
  txn.Atomic(AtomicOp::kAdd, "n", EncodeLittleEndian64(5));
  ASSERT_TRUE(txn.Commit().ok());
  EXPECT_EQ(DecodeLittleEndian64(ReadBack("n").value()), 5u);
}

TEST_F(TransactionTest, ExplicitWriteConflictMakesReaderAbort) {
  // The §6.1 pattern: a "read-only" enqueue declares a write conflict on an
  // index key; a concurrent consumer that read that key must abort.
  Put("idx", "pointer");

  Transaction consumer = db_->CreateTransaction();
  ASSERT_TRUE(consumer.Get("idx").ok());
  consumer.Set("consumer_out", "x");

  Transaction enqueue = db_->CreateTransaction();
  ASSERT_TRUE(enqueue.Get("idx", /*snapshot=*/true).ok());
  enqueue.AddWriteConflictKey("idx");
  ASSERT_TRUE(enqueue.Commit().ok());  // declared-write commit

  EXPECT_TRUE(consumer.Commit().IsNotCommitted());
}

TEST_F(TransactionTest, ExplicitWriteConflictCommitChecksOwnReads) {
  Put("idx", "pointer");
  Transaction enqueue = db_->CreateTransaction();
  ASSERT_TRUE(enqueue.Get("idx").ok());  // real read conflict
  enqueue.AddWriteConflictKey("idx");

  Put("idx", "changed");  // someone else wins

  EXPECT_TRUE(enqueue.Commit().IsNotCommitted());
}

TEST_F(TransactionTest, ExplicitReadConflictRange) {
  Transaction t1 = db_->CreateTransaction();
  ASSERT_TRUE(t1.GetReadVersion().ok());
  t1.AddReadConflictRange(KeyRange::Prefix("p"));
  t1.Set("out", "1");

  Put("p5", "x");

  EXPECT_TRUE(t1.Commit().IsNotCommitted());
}

TEST_F(TransactionTest, TransactionTooOldAfterTimeout) {
  Transaction txn = db_->CreateTransaction();
  ASSERT_TRUE(txn.Get("k").ok());
  clock_.AdvanceMillis(6000);  // beyond the 5s lifetime
  auto r = txn.Get("k2");
  EXPECT_EQ(r.status().code(), StatusCode::kTransactionTooOld);
  txn.Set("k3", "v");
  EXPECT_EQ(txn.Commit().code(), StatusCode::kTransactionTooOld);
}

TEST_F(TransactionTest, ResetRestoresUsability) {
  Transaction txn = db_->CreateTransaction();
  txn.Set("k", "v1");
  clock_.AdvanceMillis(6000);
  ASSERT_EQ(txn.Commit().code(), StatusCode::kTransactionTooOld);
  txn.Reset();
  txn.Set("k", "v2");
  EXPECT_TRUE(txn.Commit().ok());
  EXPECT_EQ(ReadBack("k").value(), "v2");
}

TEST_F(TransactionTest, TransactionTooLarge) {
  Database::Options opts;
  opts.clock = &clock_;
  opts.max_transaction_bytes = 100;
  Database small("small", opts);
  Transaction txn = small.CreateTransaction();
  txn.Set("k", std::string(200, 'x'));
  EXPECT_EQ(txn.Commit().code(), StatusCode::kTransactionTooLarge);
}

TEST_F(TransactionTest, PerTransactionSizeLimitOverride) {
  TransactionOptions topts;
  topts.size_limit_bytes = 10;
  Transaction txn = db_->CreateTransaction(topts);
  txn.Set("key", "a-longer-value");
  EXPECT_EQ(txn.Commit().code(), StatusCode::kTransactionTooLarge);
}

TEST_F(TransactionTest, SetReadVersionPinsSnapshot) {
  Put("k", "v1");
  const Version pinned = db_->LastCommittedVersion();
  Put("k", "v2");
  Transaction txn = db_->CreateTransaction();
  txn.SetReadVersion(pinned);
  EXPECT_EQ(txn.Get("k").value().value(), "v1");
}

TEST_F(TransactionTest, CachedReadVersionMayBeStale) {
  Put("k", "v1");
  // Seed the GRV cache.
  {
    Transaction txn = db_->CreateTransaction();
    ASSERT_TRUE(txn.GetReadVersion().ok());
  }
  Put("k", "v2");
  TransactionOptions topts;
  topts.use_cached_read_version = true;
  Transaction stale = db_->CreateTransaction(topts);
  EXPECT_EQ(stale.Get("k").value().value(), "v1");

  // After the staleness window expires, a fresh version is fetched.
  clock_.AdvanceMillis(db_->options().grv_cache_staleness_millis + 1);
  Transaction fresh = db_->CreateTransaction(topts);
  EXPECT_EQ(fresh.Get("k").value().value(), "v2");
}

TEST_F(TransactionTest, CachedVersionReadWriteStillSerializable) {
  Put("k", "v1");
  {
    Transaction txn = db_->CreateTransaction();
    ASSERT_TRUE(txn.GetReadVersion().ok());
  }
  Put("k", "v2");
  TransactionOptions topts;
  topts.use_cached_read_version = true;
  Transaction rw = db_->CreateTransaction(topts);
  ASSERT_TRUE(rw.Get("k").ok());  // stale read of v1
  rw.Set("out", "derived");
  // Must abort: the value it read was overwritten after its read version.
  EXPECT_TRUE(rw.Commit().IsNotCommitted());
}

TEST_F(TransactionTest, OnErrorRetryableResets) {
  Transaction txn = db_->CreateTransaction();
  txn.Set("k", "v");
  Status st = txn.OnError(Status::NotCommitted());
  EXPECT_TRUE(st.ok());
  // After reset the buffered write is gone.
  EXPECT_TRUE(txn.Commit().ok());  // no-op commit
  EXPECT_FALSE(ReadBack("k").has_value());
}

TEST_F(TransactionTest, OnErrorNonRetryableSurfaces) {
  Transaction txn = db_->CreateTransaction();
  Status st = txn.OnError(Status::InvalidArgument("bad"));
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace quick::fdb
