#include "fdb/retry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace quick::fdb {
namespace {

TEST(RetryTest, CommitsOnFirstAttempt) {
  Database db("r");
  int attempts = 0;
  Status st = RunTransaction(&db, [&](Transaction& txn) {
    ++attempts;
    txn.Set("k", "v");
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(attempts, 1);
}

TEST(RetryTest, RetriesConflictsUntilSuccess) {
  ManualClock clock;
  Database::Options opts;
  opts.clock = &clock;
  Database db("r", opts);
  {
    Transaction t = db.CreateTransaction();
    t.Set("counter", "0");
    ASSERT_TRUE(t.Commit().ok());
  }

  // Body reads "counter" and conflicts with an external write on the first
  // two attempts.
  int attempts = 0;
  Status st = RunTransaction(&db, [&](Transaction& txn) {
    ++attempts;
    auto v = txn.Get("counter");
    QUICK_RETURN_IF_ERROR(v.status());
    if (attempts <= 2) {
      Transaction interferer = db.CreateTransaction();
      interferer.Set("counter", std::to_string(attempts));
      QUICK_RETURN_IF_ERROR(interferer.Commit());
    }
    txn.Set("out", v.value().value_or(""));
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(attempts, 3);
}

TEST(RetryTest, NonRetryableErrorSurfacesImmediately) {
  Database db("r");
  int attempts = 0;
  Status st = RunTransaction(&db, [&](Transaction&) {
    ++attempts;
    return Status::InvalidArgument("bad input");
  });
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(attempts, 1);
}

TEST(RetryTest, RetriesTransientCommitFaults) {
  ManualClock clock;
  Database::Options opts;
  opts.clock = &clock;
  opts.faults.commit_unavailable = 0.5;
  opts.faults.seed = 7;
  Database db("r", opts);
  for (int i = 0; i < 50; ++i) {
    Status st = RunTransaction(&db, [&](Transaction& txn) {
      txn.Set("k" + std::to_string(i), "v");
      return Status::OK();
    });
    ASSERT_TRUE(st.ok()) << st;
  }
  EXPECT_EQ(db.LiveKeyCount(), 50u);
}

TEST(RetryTest, UnknownResultRetriedIdempotently) {
  ManualClock clock;
  Database::Options opts;
  opts.clock = &clock;
  opts.faults.unknown_result_applied = 0.3;
  opts.faults.unknown_result_dropped = 0.2;
  opts.faults.seed = 11;
  Database db("r", opts);
  for (int i = 0; i < 50; ++i) {
    const std::string key = "k" + std::to_string(i);
    Status st = RunTransaction(&db, [&](Transaction& txn) {
      txn.Set(key, "v");  // idempotent body
      return Status::OK();
    });
    ASSERT_TRUE(st.ok()) << st;
    Transaction probe = db.CreateTransaction();
    EXPECT_EQ(probe.Get(key).value().value(), "v");
  }
}

TEST(RetryTest, BudgetExhaustedReturnsTimedOut) {
  ManualClock clock;
  Database::Options opts;
  opts.clock = &clock;
  opts.faults.commit_unavailable = 1.0;
  Database db("r", opts);
  Status st = RunTransaction(
      &db,
      [&](Transaction& txn) {
        txn.Set("k", "v");
        return Status::OK();
      },
      /*max_attempts=*/3);
  EXPECT_EQ(st.code(), StatusCode::kTimedOut);
}

TEST(RetryTest, ExhaustionSurfacesLastUnderlyingError) {
  ManualClock clock;
  Database::Options opts;
  opts.clock = &clock;
  opts.faults.commit_unavailable = 1.0;
  Database db("r", opts);
  Status st = RunTransaction(
      &db,
      [&](Transaction& txn) {
        txn.Set("k", "v");
        return Status::OK();
      },
      /*max_attempts=*/3);
  ASSERT_EQ(st.code(), StatusCode::kTimedOut);
  // Not a bare "budget exhausted": the final underlying error rides along.
  EXPECT_NE(st.message().find("UNAVAILABLE"), std::string::npos) << st;
}

TEST(RetryTest, RetriesAndExhaustionsAreCounted) {
  Counter* retries =
      MetricsRegistry::Default()->GetCounter(kRetryCounterName);
  Counter* exhausted =
      MetricsRegistry::Default()->GetCounter(kRetryExhaustedCounterName);
  const int64_t retries_before = retries->Value();
  const int64_t exhausted_before = exhausted->Value();

  ManualClock clock;
  Database::Options opts;
  opts.clock = &clock;
  opts.faults.commit_unavailable = 1.0;
  Database db("r", opts);
  (void)RunTransaction(
      &db,
      [&](Transaction& txn) {
        txn.Set("k", "v");
        return Status::OK();
      },
      /*max_attempts=*/3);
  EXPECT_EQ(retries->Value(), retries_before + 3);
  EXPECT_EQ(exhausted->Value(), exhausted_before + 1);
}

TEST(RetryTest, RunTransactionResultReturnsValue) {
  Database db("r");
  {
    Transaction t = db.CreateTransaction();
    t.Set("k", "hello");
    ASSERT_TRUE(t.Commit().ok());
  }
  Result<std::string> r = RunTransactionResult<std::string>(
      &db, TransactionOptions{}, [](Transaction& txn, std::string* out) {
        auto v = txn.Get("k");
        QUICK_RETURN_IF_ERROR(v.status());
        *out = v.value().value_or("");
        return Status::OK();
      });
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "hello");
}

TEST(RetryTest, ConcurrentIncrementsSerializeCorrectly) {
  // Classic lost-update check: N threads read-modify-write one counter
  // through the retry loop; the final value must be exactly N * K.
  Database db("r");
  {
    Transaction t = db.CreateTransaction();
    t.Set("counter", "0");
    ASSERT_TRUE(t.Commit().ok());
  }
  constexpr int kThreads = 4;
  constexpr int kIncrements = 50;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&db] {
      for (int j = 0; j < kIncrements; ++j) {
        Status st = RunTransaction(&db, [](Transaction& txn) {
          auto v = txn.Get("counter");
          QUICK_RETURN_IF_ERROR(v.status());
          int n = std::stoi(v.value().value_or("0"));
          txn.Set("counter", std::to_string(n + 1));
          return Status::OK();
        }, /*max_attempts=*/1000);
        ASSERT_TRUE(st.ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  Transaction probe = db.CreateTransaction();
  EXPECT_EQ(probe.Get("counter").value().value(),
            std::to_string(kThreads * kIncrements));
}

}  // namespace
}  // namespace quick::fdb
