// Cold-start recovery edge cases (DESIGN.md §9, invariant 14): empty log,
// checkpoint-only, checkpoint + log tail, torn tail truncation, corrupt-
// checkpoint fallback, duplicate-replay idempotence, and the checkpoint /
// prune floor interaction.

#include "fdb/recovery.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "fdb/checkpoint.h"
#include "fdb/cluster_set.h"
#include "fdb/database.h"
#include "fdb/wal.h"

namespace quick::fdb {
namespace {

std::string MakeTempDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "quick_recovery_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

Database::Options WalOptions(Clock* clock, const std::string& dir) {
  Database::Options opts;
  opts.clock = clock;
  opts.durability.enable_wal = true;
  opts.durability.dir = dir;
  // Manual checkpoints only, unless a test opts in.
  opts.durability.checkpoint_interval_bytes = 0;
  return opts;
}

Status Put(Database& db, const std::string& key, const std::string& value) {
  Transaction t = db.CreateTransaction();
  t.Set(key, value);
  return t.Commit();
}

Result<std::optional<std::string>> Get(Database& db, const std::string& key) {
  Transaction t = db.CreateTransaction();
  return t.Get(key);
}

TEST(RecoveryTest, EmptyDirectoryIsAFreshStore) {
  const std::string dir = MakeTempDir("empty");
  ManualClock clock;
  Database db("r", WalOptions(&clock, dir));
  EXPECT_FALSE(db.GetRecoveryInfo().recovered);
  EXPECT_EQ(db.LastCommittedVersion(), 0);
  ASSERT_TRUE(Put(db, "k", "v").ok());
  EXPECT_EQ(db.LastCommittedVersion(), 1);
}

TEST(RecoveryTest, RestartRecoversToExactDurableVersion) {
  const std::string dir = MakeTempDir("exact");
  ManualClock clock;
  Version before;
  {
    Database db("r", WalOptions(&clock, dir));
    for (int i = 0; i < 25; ++i) {
      ASSERT_TRUE(Put(db, "k" + std::to_string(i % 7),
                      "v" + std::to_string(i))
                      .ok());
    }
    before = db.LastCommittedVersion();
    ASSERT_EQ(before, 25);
  }
  Database db("r", WalOptions(&clock, dir));
  EXPECT_TRUE(db.GetRecoveryInfo().recovered);
  EXPECT_EQ(db.GetRecoveryInfo().last_durable_version, before);
  EXPECT_EQ(db.GetRecoveryInfo().replayed_records, 25);
  EXPECT_EQ(db.LastCommittedVersion(), before);
  auto v = Get(db, "k3");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->value_or(""), "v24");
  // Version allocation resumes above the recovered prefix.
  ASSERT_TRUE(Put(db, "after", "restart").ok());
  EXPECT_EQ(db.LastCommittedVersion(), before + 1);
}

TEST(RecoveryTest, CheckpointOnlyRecoveryReplaysNothing) {
  const std::string dir = MakeTempDir("ckpt_only");
  ManualClock clock;
  Version before;
  {
    Database db("r", WalOptions(&clock, dir));
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(Put(db, "k" + std::to_string(i), "v").ok());
    }
    before = db.LastCommittedVersion();
    Result<Version> ckpt = db.Checkpoint();
    ASSERT_TRUE(ckpt.ok()) << ckpt.status();
    EXPECT_EQ(*ckpt, before);
    EXPECT_EQ(db.DurableCheckpointVersion(), before);
  }
  Database db("r", WalOptions(&clock, dir));
  const RecoveryInfo& info = db.GetRecoveryInfo();
  EXPECT_TRUE(info.recovered);
  EXPECT_EQ(info.checkpoint_version, before);
  EXPECT_EQ(info.replayed_records, 0);
  EXPECT_EQ(info.last_durable_version, before);
  EXPECT_EQ(db.LastCommittedVersion(), before);
  auto v = Get(db, "k7");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->value_or(""), "v");
}

TEST(RecoveryTest, CheckpointPlusTailReplay) {
  const std::string dir = MakeTempDir("ckpt_tail");
  ManualClock clock;
  Version before;
  {
    Database db("r", WalOptions(&clock, dir));
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(Put(db, "base" + std::to_string(i), "b").ok());
    }
    ASSERT_TRUE(db.Checkpoint().ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(Put(db, "tail" + std::to_string(i), "t").ok());
    }
    // Overwrite a checkpointed key from the tail: replay must supersede.
    ASSERT_TRUE(Put(db, "base0", "newer").ok());
    before = db.LastCommittedVersion();
  }
  Database db("r", WalOptions(&clock, dir));
  const RecoveryInfo& info = db.GetRecoveryInfo();
  EXPECT_EQ(info.checkpoint_version, 5);
  EXPECT_EQ(info.replayed_records, 5);
  EXPECT_EQ(info.last_durable_version, before);
  EXPECT_EQ(Get(db, "base0")->value_or(""), "newer");
  EXPECT_EQ(Get(db, "tail3")->value_or(""), "t");
  EXPECT_EQ(Get(db, "base4")->value_or(""), "b");
}

TEST(RecoveryTest, TornAppendTruncatesToLastAcknowledgedCommit) {
  const std::string dir = MakeTempDir("torn_tail");
  ManualClock clock;
  Database::Options opts = WalOptions(&clock, dir);
  opts.fault_plan.AddDisk(DiskFault::TornWrite(/*at_op=*/4));
  Version durable;
  {
    Database db("r", opts);
    for (int i = 1; i <= 3; ++i) {
      ASSERT_TRUE(Put(db, "k" + std::to_string(i), "v").ok());
    }
    durable = db.LastCommittedVersion();
    // The 4th append tears mid-record: the commit comes back unknown and
    // the published version must NOT advance.
    Transaction t = db.CreateTransaction();
    t.Set("k4", "lost");
    Status st = t.Commit();
    EXPECT_TRUE(st.IsCommitUnknownResult()) << st;
    EXPECT_TRUE(db.DurabilityDead());
    EXPECT_EQ(db.LastCommittedVersion(), durable);
    // The dead process rejects everything.
    EXPECT_EQ(Put(db, "k5", "v").code(), StatusCode::kUnavailable);
    EXPECT_EQ(Get(db, "k1").status().code(), StatusCode::kUnavailable);
  }
  Database db("r", WalOptions(&clock, dir));
  const RecoveryInfo& info = db.GetRecoveryInfo();
  EXPECT_TRUE(info.truncated);
  EXPECT_EQ(info.last_durable_version, durable);
  EXPECT_EQ(db.LastCommittedVersion(), durable);
  EXPECT_EQ(Get(db, "k3")->value_or(""), "v");
  EXPECT_FALSE(Get(db, "k4")->has_value()) << "torn write resurfaced";
}

TEST(RecoveryTest, TornCheckpointFallsBackToWalReplay) {
  const std::string dir = MakeTempDir("torn_ckpt");
  ManualClock clock;
  Database::Options opts = WalOptions(&clock, dir);
  opts.fault_plan.AddDisk(DiskFault::TornWrite(/*at_op=*/1).OnCheckpoint());
  Version durable;
  {
    Database db("r", opts);
    for (int i = 1; i <= 6; ++i) {
      ASSERT_TRUE(Put(db, "k" + std::to_string(i), "v").ok());
    }
    durable = db.LastCommittedVersion();
    // The checkpoint write tears: the process dies mid-checkpoint, having
    // rolled nothing and retired nothing.
    Result<Version> ckpt = db.Checkpoint();
    EXPECT_EQ(ckpt.status().code(), StatusCode::kUnavailable);
    EXPECT_TRUE(db.DurabilityDead());
    EXPECT_EQ(Put(db, "k7", "v").code(), StatusCode::kUnavailable);
  }
  Database db("r", WalOptions(&clock, dir));
  const RecoveryInfo& info = db.GetRecoveryInfo();
  EXPECT_EQ(info.invalid_checkpoints, 1);
  EXPECT_EQ(info.checkpoint_version, 0);
  EXPECT_EQ(info.replayed_records, 6);
  EXPECT_EQ(info.last_durable_version, durable);
  EXPECT_EQ(Get(db, "k6")->value_or(""), "v");
}

TEST(RecoveryTest, CorruptCheckpointFallsBackToOlderCheckpoint) {
  // Assembled at the module level so the older checkpoint still exists:
  // checkpoint at v2, full log to v4, newest checkpoint (v4) corrupted.
  const std::string dir = MakeTempDir("ckpt_fallback");
  ManualClock clock;
  FaultInjector faults;
  {
    Wal wal(dir, 1, &faults, &clock);
    ASSERT_TRUE(wal.Open().ok());
    for (Version v = 1; v <= 4; ++v) {
      std::vector<Mutation> muts;
      Mutation set;
      set.type = Mutation::Type::kSet;
      set.key = "k" + std::to_string(v);
      set.value = "v";
      muts.push_back(set);
      WalBatchRef ref;
      ref.version = v;
      ref.members.emplace_back(0, &muts);
      ASSERT_TRUE(wal.AppendBatchAndSync(ref).ok());
    }
  }
  {
    CheckpointBuilder older(2);
    older.Add("k1", "v");
    older.Add("k2", "v");
    ASSERT_TRUE(
        AtomicWriteFile(dir + "/" + CheckpointFileName(2), older.Finish())
            .ok());
    CheckpointBuilder newer(4);
    newer.Add("k1", "v");
    newer.Add("k2", "v");
    newer.Add("k3", "v");
    newer.Add("k4", "v");
    std::string blob = newer.Finish();
    blob[10] = static_cast<char>(blob[10] ^ 0x40);  // bit rot
    ASSERT_TRUE(
        AtomicWriteFile(dir + "/" + CheckpointFileName(4), blob).ok());
  }
  VersionedStore store;
  Result<RecoveryInfo> info = RecoverVersionedStore(dir, &store);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->invalid_checkpoints, 1);
  EXPECT_EQ(info->checkpoint_version, 2);
  EXPECT_EQ(info->skipped_records, 2);   // v1, v2 covered by the checkpoint
  EXPECT_EQ(info->replayed_records, 2);  // v3, v4 from the log
  EXPECT_EQ(info->last_durable_version, 4);
  EXPECT_EQ(store.Get("k4", 4).value_or(""), "v");
  EXPECT_EQ(store.Get("k1", 4).value_or(""), "v");
}

TEST(RecoveryTest, DuplicateRecoveryIsIdempotent) {
  const std::string dir = MakeTempDir("idempotent");
  ManualClock clock;
  {
    Database db("r", WalOptions(&clock, dir));
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(Put(db, "k" + std::to_string(i % 3), std::to_string(i)).ok());
    }
    ASSERT_TRUE(db.Checkpoint().ok());
    for (int i = 8; i < 12; ++i) {
      ASSERT_TRUE(Put(db, "k" + std::to_string(i % 3), std::to_string(i)).ok());
    }
  }
  VersionedStore first;
  Result<RecoveryInfo> info1 = RecoverVersionedStore(dir, &first);
  ASSERT_TRUE(info1.ok());
  VersionedStore second;
  Result<RecoveryInfo> info2 = RecoverVersionedStore(dir, &second);
  ASSERT_TRUE(info2.ok());
  EXPECT_EQ(info1->last_durable_version, info2->last_durable_version);
  EXPECT_EQ(info1->checkpoint_version, info2->checkpoint_version);
  EXPECT_EQ(info1->replayed_records, info2->replayed_records);
  const Version v = info1->last_durable_version;
  for (int i = 0; i < 3; ++i) {
    const std::string key = "k" + std::to_string(i);
    EXPECT_EQ(first.Get(key, v), second.Get(key, v)) << key;
  }
  EXPECT_EQ(first.LiveKeyCount(), second.LiveKeyCount());
}

TEST(RecoveryTest, PruneFloorNeverPassesDurableCheckpoint) {
  const std::string dir = MakeTempDir("prune_floor");
  ManualClock clock;
  Database::Options opts = WalOptions(&clock, dir);
  opts.mvcc_window_millis = 1000;
  Database db("r", opts);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(Put(db, "k" + std::to_string(i), "v").ok());
  }
  Transaction old_reader = db.CreateTransaction();
  ASSERT_TRUE(old_reader.GetReadVersion().ok());  // version 10

  // Age everything far past the MVCC window. Without the checkpoint
  // clamp the sweep would advance the floor past the old reader; with no
  // checkpoint yet the floor must stay pinned at 0.
  for (int round = 0; round < 6; ++round) {
    clock.AdvanceMillis(400);
    ASSERT_TRUE(Put(db, "churn", "r" + std::to_string(round)).ok());
  }
  auto read = old_reader.Get("k1");
  ASSERT_TRUE(read.ok()) << "pruned past the durable-checkpoint floor: "
                         << read.status();
  EXPECT_EQ(read->value_or(""), "v");

  // After a checkpoint the floor may advance up to it — and does, once
  // the window expires again: the old reader's version predates the
  // checkpoint and is now legitimately pruned.
  Result<Version> ckpt = db.Checkpoint();
  ASSERT_TRUE(ckpt.ok());
  ASSERT_GT(*ckpt, 10);
  Transaction young_reader = db.CreateTransaction();
  ASSERT_TRUE(young_reader.GetReadVersion().ok());
  for (int round = 0; round < 6; ++round) {
    clock.AdvanceMillis(400);
    ASSERT_TRUE(Put(db, "churn", "s" + std::to_string(round)).ok());
  }
  EXPECT_EQ(old_reader.Get("k1").status().code(),
            StatusCode::kTransactionTooOld)
      << "floor failed to advance after the checkpoint";
  // Readers at or above the checkpoint stay valid (floor <= checkpoint),
  // modulo the transaction lifetime — which this reader is inside.
  auto young = young_reader.Get("k1");
  ASSERT_TRUE(young.ok()) << young.status();
  EXPECT_EQ(young->value_or(""), "v");
}

TEST(RecoveryTest, RecheckpointingADurableVersionIsANoOp) {
  // Regression (found by the chaos suite, seed 42): a checkpoint at a
  // version already durably checkpointed targets the same
  // CHECKPOINT-<version> file whose WAL coverage was retired — a write
  // fault there would destroy the only copy of the state. It must be a
  // no-op that never touches disk, so the scheduled torn write here
  // cannot fire on it.
  const std::string dir = MakeTempDir("reckpt");
  ManualClock clock;
  Version durable;
  {
    Database::Options opts = WalOptions(&clock, dir);
    opts.fault_plan.AddDisk(DiskFault::TornWrite(2).OnCheckpoint());
    Database db("r", opts);
    ASSERT_TRUE(Put(db, "a", "1").ok());
    ASSERT_TRUE(Put(db, "b", "2").ok());
    auto first = db.Checkpoint();
    ASSERT_TRUE(first.ok()) << first.status();
    durable = *first;
    // No commits since: the re-checkpoint short-circuits instead of
    // consuming checkpoint-write ordinal 2 (the scheduled kill).
    auto again = db.Checkpoint();
    ASSERT_TRUE(again.ok()) << again.status();
    EXPECT_EQ(*again, durable);
    EXPECT_FALSE(db.DurabilityDead());
  }
  Database db("r", WalOptions(&clock, dir));
  EXPECT_EQ(db.LastCommittedVersion(), durable);
  EXPECT_EQ(db.GetRecoveryInfo().checkpoint_version, durable);
  EXPECT_EQ(Get(db, "a").value().value_or(""), "1");
  EXPECT_EQ(Get(db, "b").value().value_or(""), "2");
}

TEST(RecoveryTest, WalOffBehavesExactlyAsBefore) {
  ManualClock clock;
  Database::Options opts;
  opts.clock = &clock;
  Database db("plain", opts);
  ASSERT_TRUE(Put(db, "k", "v").ok());
  const Database::Stats stats = db.GetStats();
  EXPECT_EQ(stats.wal_appends, 0);
  EXPECT_EQ(stats.wal_syncs, 0);
  EXPECT_EQ(stats.checkpoints_written, 0);
  EXPECT_FALSE(db.DurabilityDead());
  EXPECT_FALSE(db.GetRecoveryInfo().recovered);
  EXPECT_EQ(db.Checkpoint().status().code(), StatusCode::kFailedPrecondition);
}

TEST(RecoveryTest, AutoCheckpointTriggersOnSegmentGrowth) {
  const std::string dir = MakeTempDir("auto_ckpt");
  ManualClock clock;
  Database::Options opts = WalOptions(&clock, dir);
  opts.durability.checkpoint_interval_bytes = 2048;
  Database db("r", opts);
  for (int i = 0; i < 200 && db.GetStats().checkpoints_written == 0; ++i) {
    ASSERT_TRUE(
        Put(db, "k" + std::to_string(i % 17), std::string(64, 'x')).ok());
  }
  const Database::Stats stats = db.GetStats();
  EXPECT_GE(stats.checkpoints_written, 1);
  EXPECT_GE(stats.wal_segments_created, 2);
  EXPECT_GT(db.DurableCheckpointVersion(), 0);
}

}  // namespace
}  // namespace quick::fdb
