// Group-commit semantics: concurrently arriving commits are resolved and
// applied as one batch at a single storage version, with distinct
// versionstamp batch-order bytes, and the result must be indistinguishable
// from some serial order (the batch order).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/random.h"
#include "fdb/database.h"
#include "fdb/retry.h"

namespace quick::fdb {
namespace {

uint16_t BatchOrderOf(const std::string& stamp) {
  EXPECT_EQ(stamp.size(), 10u);
  return static_cast<uint16_t>(
      (static_cast<uint8_t>(stamp[8]) << 8) | static_cast<uint8_t>(stamp[9]));
}

Version VersionOf(const std::string& stamp) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<uint8_t>(stamp[i]);
  }
  return static_cast<Version>(v);
}

TEST(GroupCommitTest, SingleCommitsAreBatchesOfOne) {
  Database db("single");
  for (int i = 0; i < 5; ++i) {
    Transaction t = db.CreateTransaction();
    t.Set("k" + std::to_string(i), "v");
    ASSERT_TRUE(t.Commit().ok());
    auto stamp = t.GetVersionstamp();
    ASSERT_TRUE(stamp.ok());
    EXPECT_EQ(BatchOrderOf(*stamp), 0u);
    EXPECT_EQ(VersionOf(*stamp), t.GetCommittedVersion());
  }
  const Database::Stats stats = db.GetStats();
  EXPECT_EQ(stats.commits_succeeded, 5);
  EXPECT_EQ(stats.commit_batches, 5);
}

TEST(GroupCommitTest, DisabledMatchesLegacyVersionPerCommit) {
  Database::Options opts;
  opts.enable_group_commit = false;
  Database db("nogroup", opts);
  for (int i = 0; i < 3; ++i) {
    Transaction t = db.CreateTransaction();
    t.Set("k", std::to_string(i));
    ASSERT_TRUE(t.Commit().ok());
    EXPECT_EQ(t.GetCommittedVersion(), i + 1);
  }
}

// Concurrent disjoint writers: every successful transaction gets a unique
// versionstamp; transactions sharing a storage version carry contiguous
// batch orders starting at 0; and at least one real multi-member batch
// forms under simultaneous release (commit latency widens the pile-up
// window).
TEST(GroupCommitTest, ConcurrentCommitsShareVersionWithDistinctOrders) {
  Database::Options opts;
  opts.latency.commit_micros = 2000;
  Database db("batching", opts);

  constexpr int kThreads = 8;
  constexpr int kRounds = 60;
  std::mutex mu;
  std::vector<std::string> stamps;

  for (int round = 0; round < kRounds; ++round) {
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t, round] {
        ready.fetch_add(1);
        while (!go.load()) {
        }
        Transaction txn = db.CreateTransaction();
        txn.Set("r" + std::to_string(round) + "t" + std::to_string(t), "v");
        ASSERT_TRUE(txn.Commit().ok());
        auto stamp = txn.GetVersionstamp();
        ASSERT_TRUE(stamp.ok());
        std::lock_guard<std::mutex> lock(mu);
        stamps.push_back(*stamp);
      });
    }
    while (ready.load() < kThreads) {
    }
    go.store(true);
    for (auto& th : threads) th.join();
  }

  ASSERT_EQ(stamps.size(), static_cast<size_t>(kThreads * kRounds));

  // Uniqueness: versionstamps are a total order over commits.
  std::sort(stamps.begin(), stamps.end());
  EXPECT_EQ(std::adjacent_find(stamps.begin(), stamps.end()), stamps.end())
      << "duplicate versionstamp";

  // Per shared version: contiguous batch orders 0..k-1.
  std::map<Version, std::vector<uint16_t>> by_version;
  for (const std::string& s : stamps) {
    by_version[VersionOf(s)].push_back(BatchOrderOf(s));
  }
  size_t multi_member_batches = 0;
  for (auto& [version, orders] : by_version) {
    std::sort(orders.begin(), orders.end());
    for (size_t i = 0; i < orders.size(); ++i) {
      EXPECT_EQ(orders[i], i) << "non-contiguous batch orders at version "
                              << version;
    }
    if (orders.size() > 1) ++multi_member_batches;
  }
  EXPECT_GT(multi_member_batches, 0u)
      << "no multi-member batch formed across " << kThreads * kRounds
      << " simultaneous commits";

  const Database::Stats stats = db.GetStats();
  EXPECT_EQ(stats.commits_succeeded, kThreads * kRounds);
  EXPECT_EQ(stats.commit_batches, static_cast<int64_t>(by_version.size()));
}

// Model replay: record every committed transaction's writes with its
// (version, batch order); replaying them in versionstamp order into a
// plain map must reproduce the database contents exactly. This pins the
// intra-batch apply order to the advertised batch orders.
TEST(GroupCommitTest, ReplayInBatchOrderMatchesDatabase) {
  Database::Options opts;
  opts.latency.commit_micros = 1000;
  Database db("replay", opts);

  struct Committed {
    std::string stamp;
    std::vector<std::pair<std::string, std::string>> writes;
  };
  std::mutex mu;
  std::vector<Committed> log;

  constexpr int kThreads = 8;
  constexpr int kTxnsPerThread = 100;
  constexpr int kKeys = 12;  // heavy overlap → real intra-batch conflicts
  std::vector<std::thread> threads;
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      Random rng(7000 + tid);
      for (int i = 0; i < kTxnsPerThread; ++i) {
        std::vector<std::pair<std::string, std::string>> writes;
        const int n = 1 + static_cast<int>(rng.Uniform(3));
        for (int w = 0; w < n; ++w) {
          writes.emplace_back(
              "key" + std::to_string(rng.Uniform(kKeys)),
              "t" + std::to_string(tid) + "i" + std::to_string(i) + "w" +
                  std::to_string(w));
        }
        Transaction txn = db.CreateTransaction();
        for (const auto& [k, v] : writes) txn.Set(k, v);
        // Blind writes: no reads, so commits never conflict and the log
        // records exactly the applied transactions.
        Status st = txn.Commit();
        ASSERT_TRUE(st.ok()) << st;
        auto stamp = txn.GetVersionstamp();
        ASSERT_TRUE(stamp.ok());
        std::lock_guard<std::mutex> lock(mu);
        log.push_back({*stamp, std::move(writes)});
      }
    });
  }
  for (auto& th : threads) th.join();

  std::sort(log.begin(), log.end(),
            [](const Committed& a, const Committed& b) {
              return a.stamp < b.stamp;
            });
  std::map<std::string, std::string> model;
  for (const Committed& c : log) {
    for (const auto& [k, v] : c.writes) model[k] = v;
  }

  Transaction probe = db.CreateTransaction();
  auto rows = probe.GetRange(KeyRange{"key", "key\xFF"});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), model.size());
  for (const KeyValue& kv : *rows) {
    EXPECT_EQ(kv.value, model[kv.key]) << "divergence at " << kv.key;
  }
}

// Versionstamped keys written by concurrent enqueuers: every commit gets a
// unique, commit-ordered key even when commits share a storage version.
TEST(GroupCommitTest, VersionstampedKeysUniqueAcrossBatchMembers) {
  Database::Options opts;
  opts.latency.commit_micros = 1000;
  Database db("stamps", opts);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      for (int i = 0; i < kPerThread; ++i) {
        Transaction txn = db.CreateTransaction();
        txn.SetVersionstampedKey("fifo/", "",
                                 "t" + std::to_string(tid) + "i" +
                                     std::to_string(i));
        ASSERT_TRUE(txn.Commit().ok());
      }
    });
  }
  for (auto& th : threads) th.join();

  Transaction probe = db.CreateTransaction();
  auto rows = probe.GetRange(KeyRange::Prefix("fifo/"));
  ASSERT_TRUE(rows.ok());
  // No two commits may collide on a stamp: all entries survive.
  EXPECT_EQ(rows->size(), static_cast<size_t>(kThreads * kPerThread));
}

// Read-version floor fast path + batch members: a reader pinned at the
// batch version sees the whole batch; one pinned just before sees none of
// it (batch atomicity at the version granularity).
TEST(GroupCommitTest, BatchIsAtomicAtVersionGranularity) {
  Database db("atomicity");
  {
    Transaction t = db.CreateTransaction();
    t.Set("seed", "s");
    ASSERT_TRUE(t.Commit().ok());
  }
  const Version before = db.LastCommittedVersion();

  // Sequential commits are batches of one, but the invariant is the same
  // one group commit must preserve: nothing at version v is partially
  // visible at v-1.
  Transaction t = db.CreateTransaction();
  t.Set("a", "1");
  t.Set("b", "2");
  ASSERT_TRUE(t.Commit().ok());
  const Version after = t.GetCommittedVersion();

  Transaction old_reader = db.CreateTransaction();
  old_reader.SetReadVersion(before);
  EXPECT_FALSE(old_reader.Get("a").value().has_value());
  EXPECT_FALSE(old_reader.Get("b").value().has_value());

  Transaction new_reader = db.CreateTransaction();
  new_reader.SetReadVersion(after);
  EXPECT_EQ(new_reader.Get("a").value().value(), "1");
  EXPECT_EQ(new_reader.Get("b").value().value(), "2");
}

}  // namespace
}  // namespace quick::fdb
