// Randomized strict-serializability checks for the FDB simulator. These
// validate the exact property QuiCK's correctness argument leans on (§6
// "Isolation level"): committed read-write transactions behave as if
// executed sequentially in commit-version order.
//
// The whole suite runs twice — with group commit on and off — because the
// batched commit pipeline must be observationally identical to one-at-a-
// time commits (same serializable outcomes, only cheaper).

#include <gtest/gtest.h>

#include <atomic>
#include <map>

#include <mutex>
#include <thread>
#include <vector>

#include "common/random.h"
#include "fdb/database.h"
#include "fdb/retry.h"

namespace quick::fdb {
namespace {

class SerializabilityTest : public ::testing::TestWithParam<bool> {
 protected:
  Database::Options Opts() const {
    Database::Options opts;
    opts.enable_group_commit = GetParam();
    return opts;
  }
};

// Bank-transfer invariant: the sum across accounts is conserved by
// concurrent randomized transfers.
TEST_P(SerializabilityTest, BankTransfersConserveTotal) {
  Database db("bank", Opts());
  constexpr int kAccounts = 10;
  constexpr int64_t kInitial = 1000;
  {
    Transaction t = db.CreateTransaction();
    for (int i = 0; i < kAccounts; ++i) {
      t.Set("acct" + std::to_string(i), std::to_string(kInitial));
    }
    ASSERT_TRUE(t.Commit().ok());
  }

  constexpr int kThreads = 4;
  constexpr int kTransfers = 100;
  std::vector<std::thread> threads;
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&db, tid] {
      Random rng(1000 + tid);
      for (int i = 0; i < kTransfers; ++i) {
        const int from = static_cast<int>(rng.Uniform(kAccounts));
        int to = static_cast<int>(rng.Uniform(kAccounts));
        if (to == from) to = (to + 1) % kAccounts;
        const int64_t amount = 1 + static_cast<int64_t>(rng.Uniform(50));
        Status st = RunTransaction(
            &db,
            [&](Transaction& txn) {
              auto fv = txn.Get("acct" + std::to_string(from));
              QUICK_RETURN_IF_ERROR(fv.status());
              auto tv = txn.Get("acct" + std::to_string(to));
              QUICK_RETURN_IF_ERROR(tv.status());
              int64_t fb = std::stoll(fv.value().value());
              int64_t tb = std::stoll(tv.value().value());
              if (fb < amount) return Status::OK();  // skip, still commits
              txn.Set("acct" + std::to_string(from),
                      std::to_string(fb - amount));
              txn.Set("acct" + std::to_string(to),
                      std::to_string(tb + amount));
              return Status::OK();
            },
            /*max_attempts=*/1000);
        ASSERT_TRUE(st.ok());
      }
    });
  }
  for (auto& t : threads) t.join();

  Transaction probe = db.CreateTransaction();
  int64_t total = 0;
  for (int i = 0; i < kAccounts; ++i) {
    total += std::stoll(probe.Get("acct" + std::to_string(i)).value().value());
  }
  EXPECT_EQ(total, kAccounts * kInitial);
}

// Write-skew detection: two transactions each read both keys and write one.
// Under strict serializability at most one of two overlapping ones commits;
// the invariant x + y >= 1 must hold if every writer preserves it.
TEST_P(SerializabilityTest, NoWriteSkew) {
  Database db("skew", Opts());
  {
    Transaction t = db.CreateTransaction();
    t.Set("x", "1");
    t.Set("y", "1");
    ASSERT_TRUE(t.Commit().ok());
  }

  // Two concurrent transactions, each zeroing a different key if the sum
  // allows. Snapshot isolation would let both commit (classic write skew);
  // serializability must abort one. With group commit the two may land in
  // one batch — intra-batch resolution must still abort the later one.
  Transaction t1 = db.CreateTransaction();
  Transaction t2 = db.CreateTransaction();
  auto sum = [](Transaction& t) {
    return std::stoi(t.Get("x").value().value()) +
           std::stoi(t.Get("y").value().value());
  };
  ASSERT_GE(sum(t1), 2);
  ASSERT_GE(sum(t2), 2);
  t1.Set("x", "0");
  t2.Set("y", "0");
  const bool c1 = t1.Commit().ok();
  const bool c2 = t2.Commit().ok();
  EXPECT_TRUE(c1 != c2) << "write skew: both or neither committed";

  Transaction probe = db.CreateTransaction();
  const int x = std::stoi(probe.Get("x").value().value());
  const int y = std::stoi(probe.Get("y").value().value());
  EXPECT_GE(x + y, 1);
}

// Snapshot consistency across keys: a writer keeps x == y in every
// commit; concurrent readers must never observe x != y at any read
// version, proving reads are instantaneous snapshots rather than
// key-by-key latest values.
TEST_P(SerializabilityTest, SnapshotReadsSeeConsistentPairs) {
  Database db("pairs", Opts());
  {
    Transaction t = db.CreateTransaction();
    t.Set("x", "0");
    t.Set("y", "0");
    ASSERT_TRUE(t.Commit().ok());
  }

  std::atomic<bool> stop{false};
  std::thread writer([&db, &stop] {
    int n = 1;
    while (!stop.load()) {
      Transaction t = db.CreateTransaction();
      t.Set("x", std::to_string(n));
      t.Set("y", std::to_string(n));
      ASSERT_TRUE(t.Commit().ok());
      ++n;
    }
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&db] {
      for (int i = 0; i < 500; ++i) {
        Transaction t = db.CreateTransaction();
        auto x = t.Get("x");
        auto y = t.Get("y");
        ASSERT_TRUE(x.ok());
        ASSERT_TRUE(y.ok());
        ASSERT_EQ(x.value().value(), y.value().value())
            << "torn snapshot at iteration " << i;
      }
    });
  }
  for (auto& t : readers) t.join();
  stop.store(true);
  writer.join();
}

// Atomic increments from many threads: no lost updates without any retries
// beyond transient faults (atomics never conflict). Under group commit,
// increments sharing one batch fold into one version chain — the total
// must still be exact.
TEST_P(SerializabilityTest, AtomicIncrementsNeverLost) {
  Database db("atomic", Opts());
  constexpr int kThreads = 8;
  constexpr int kIncrements = 500;
  std::atomic<int> conflicts{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, &conflicts] {
      for (int i = 0; i < kIncrements; ++i) {
        Transaction txn = db.CreateTransaction();
        txn.Atomic(AtomicOp::kAdd, "n", EncodeLittleEndian64(1));
        Status st = txn.Commit();
        if (!st.ok()) conflicts.fetch_add(1);
        ASSERT_TRUE(st.ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(conflicts.load(), 0);
  Transaction probe = db.CreateTransaction();
  EXPECT_EQ(DecodeLittleEndian64(probe.Get("n").value().value()),
            static_cast<uint64_t>(kThreads * kIncrements));
}

INSTANTIATE_TEST_SUITE_P(GroupCommit, SerializabilityTest,
                         ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "batched" : "single";
                         });

}  // namespace
}  // namespace quick::fdb
