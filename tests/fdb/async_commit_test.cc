// The async commit pipeline: Database::CommitAsync must preserve the
// blocking path's semantics (visibility, conflicts, read-only no-ops,
// group batching) while completing on a future instead of owning a thread
// — and RunTransactionAsync must preserve the canonical retry-loop
// contract (retryable errors re-execute, non-retryable surface, budget
// exhaustion carries the last error, cancellation stops the chain) with
// the backoff as a scheduled re-arm rather than a sleeping thread.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "fdb/database.h"
#include "fdb/executor.h"
#include "fdb/future.h"
#include "fdb/retry.h"

namespace quick::fdb {
namespace {

// Pumps a ManualExecutor (tasks + virtual-time timers) until the future
// resolves. Commit acks arrive from the database's pump thread and re-post
// onto the executor, so this polls with a short real-time yield.
void PumpUntilReady(ManualExecutor* exec, const Future<Status>& future) {
  for (int i = 0; i < 20000 && !future.IsReady(); ++i) {
    exec->RunUntilIdle();
    exec->AdvanceMillis(50);  // any pending backoff re-arm comes due
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_TRUE(future.IsReady()) << "async chain never resolved";
}

TEST(AsyncCommitTest, CommittedWriteIsVisible) {
  Database db("async-basic");
  Transaction txn = db.CreateTransaction();
  txn.Set("k", "v");
  Future<Status> f = txn.CommitAsync();
  f.Wait();
  ASSERT_TRUE(f.Get().ok()) << f.Get();
  EXPECT_GT(txn.GetCommittedVersion(), 0);

  Transaction probe = db.CreateTransaction();
  EXPECT_EQ(probe.Get("k").value().value(), "v");
}

TEST(AsyncCommitTest, ReadOnlyCommitCompletesImmediately) {
  Database db("async-ro");
  Transaction txn = db.CreateTransaction();
  (void)txn.Get("missing");
  Future<Status> f = txn.CommitAsync();
  ASSERT_TRUE(f.IsReady());  // no mutations: resolved without the pipeline
  EXPECT_TRUE(f.Get().ok());
}

TEST(AsyncCommitTest, ConflictSurfacesAsNotCommitted) {
  Database db("async-conflict");
  {
    Transaction seed = db.CreateTransaction();
    seed.Set("k", "0");
    ASSERT_TRUE(seed.Commit().ok());
  }
  Transaction loser = db.CreateTransaction();
  ASSERT_TRUE(loser.Get("k").ok());  // read conflict range on "k"
  {
    Transaction winner = db.CreateTransaction();
    winner.Set("k", "interloper");
    ASSERT_TRUE(winner.Commit().ok());
  }
  loser.Set("k", "stale");
  Future<Status> f = loser.CommitAsync();
  f.Wait();
  EXPECT_EQ(f.Get().code(), StatusCode::kNotCommitted);

  Transaction probe = db.CreateTransaction();
  EXPECT_EQ(probe.Get("k").value().value(), "interloper");
}

// Hundreds of concurrent async commits from one thread: none of them may
// block the submitter, every one must land, and the group-commit pipeline
// must coalesce them into far fewer batches than commits — the whole point
// of decoupling commit submission from thread ownership.
TEST(AsyncCommitTest, ConcurrentAsyncCommitsShareBatches) {
  Database::Options opts;
  opts.latency.commit_micros = 2000;  // widen the pile-up window
  Database db("async-batching", opts);

  constexpr int kCommits = 300;
  std::deque<Transaction> txns;  // stable addresses: commits resolve late
  std::vector<Future<Status>> futures;
  for (int i = 0; i < kCommits; ++i) {
    txns.push_back(db.CreateTransaction());
    txns.back().Set("k" + std::to_string(i), "v");
    futures.push_back(txns.back().CommitAsync());
  }
  Future<std::vector<Status>> all = WhenAll(std::move(futures));
  all.Wait();
  for (const Status& st : all.Get()) ASSERT_TRUE(st.ok()) << st;

  const Database::Stats stats = db.GetStats();
  EXPECT_EQ(stats.commits_succeeded, kCommits);
  EXPECT_LT(stats.commit_batches, kCommits)
      << "async commits never formed a multi-member batch";

  Transaction probe = db.CreateTransaction();
  auto rows = probe.GetRange(KeyRange{"k", "k\xFF"});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), static_cast<size_t>(kCommits));
}

TEST(AsyncCommitTest, MixedSyncAndAsyncCommitsCoexist) {
  Database db("async-mixed");
  std::deque<Transaction> txns;
  std::vector<Future<Status>> futures;
  for (int i = 0; i < 20; ++i) {
    txns.push_back(db.CreateTransaction());
    txns.back().Set("a" + std::to_string(i), "v");
    futures.push_back(txns.back().CommitAsync());
    Transaction sync = db.CreateTransaction();
    sync.Set("s" + std::to_string(i), "v");
    ASSERT_TRUE(sync.Commit().ok());
  }
  for (auto& f : futures) {
    f.Wait();
    ASSERT_TRUE(f.Get().ok());
  }
  Transaction probe = db.CreateTransaction();
  auto rows = probe.GetRange(KeyRange{"a", "t"});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 40u);
}

TEST(RunTransactionAsyncTest, SuccessfulBodyCommitsOnce) {
  Database db("rta-ok");
  ManualExecutor exec;
  std::atomic<int> attempts{0};
  Future<Status> f = RunTransactionAsync(
      &db,
      [&](Transaction& txn) {
        attempts.fetch_add(1);
        txn.Set("k", "v");
        return Status::OK();
      },
      &exec);
  PumpUntilReady(&exec, f);
  EXPECT_TRUE(f.Get().ok()) << f.Get();
  EXPECT_EQ(attempts.load(), 1);

  Transaction probe = db.CreateTransaction();
  EXPECT_EQ(probe.Get("k").value().value(), "v");
}

// A commit conflict on the first attempt must re-arm (via the executor's
// timer queue, not a sleeping thread) and re-execute the body against a
// reset transaction; the second attempt wins.
TEST(RunTransactionAsyncTest, ConflictRetriesAndSucceeds) {
  Database db("rta-retry");
  {
    Transaction seed = db.CreateTransaction();
    seed.Set("k", "0");
    ASSERT_TRUE(seed.Commit().ok());
  }
  Counter* retries =
      MetricsRegistry::Default()->GetCounter(kRetryCounterName);
  const int64_t retries_before = retries->Value();

  ManualExecutor exec;
  std::atomic<int> attempts{0};
  Future<Status> f = RunTransactionAsync(
      &db,
      [&](Transaction& txn) {
        const int attempt = attempts.fetch_add(1) + 1;
        auto read = txn.Get("k");  // read conflict range on "k"
        if (!read.ok()) return read.status();
        if (attempt == 1) {
          // Invalidate this attempt's read before its commit resolves.
          Transaction winner = db.CreateTransaction();
          winner.Set("k", "interloper");
          Status st = winner.Commit();
          if (!st.ok()) return st;
        }
        txn.Set("k", "attempt" + std::to_string(attempt));
        return Status::OK();
      },
      &exec);
  PumpUntilReady(&exec, f);
  EXPECT_TRUE(f.Get().ok()) << f.Get();
  EXPECT_EQ(attempts.load(), 2);
  EXPECT_GE(retries->Value(), retries_before + 1);

  Transaction probe = db.CreateTransaction();
  EXPECT_EQ(probe.Get("k").value().value(), "attempt2");
}

TEST(RunTransactionAsyncTest, NonRetryableErrorSurfacesWithoutRetry) {
  Database db("rta-permanent");
  ManualExecutor exec;
  std::atomic<int> attempts{0};
  Future<Status> f = RunTransactionAsync(
      &db,
      [&](Transaction&) {
        attempts.fetch_add(1);
        return Status::Permanent("handler bug");
      },
      &exec);
  PumpUntilReady(&exec, f);
  EXPECT_EQ(f.Get().code(), StatusCode::kPermanent);
  EXPECT_EQ(attempts.load(), 1);
  EXPECT_EQ(exec.PendingTimers(), 0u);  // no backoff re-arm was scheduled
}

// Budget exhaustion surfaces kTimedOut carrying the last underlying error,
// exactly like the blocking RunTransaction loop.
TEST(RunTransactionAsyncTest, ExhaustionCarriesLastError) {
  Database db("rta-exhaust");
  Counter* exhausted =
      MetricsRegistry::Default()->GetCounter(kRetryExhaustedCounterName);
  const int64_t exhausted_before = exhausted->Value();

  ManualExecutor exec;
  std::atomic<int> attempts{0};
  Future<Status> f = RunTransactionAsync(
      &db, TransactionOptions{},
      [&](Transaction&) {
        attempts.fetch_add(1);
        return Status::Unavailable("cluster down");
      },
      &exec, CancelToken{}, /*max_attempts=*/3);
  PumpUntilReady(&exec, f);
  EXPECT_EQ(f.Get().code(), StatusCode::kTimedOut);
  EXPECT_NE(f.Get().message().find("cluster down"), std::string::npos)
      << f.Get();
  EXPECT_EQ(attempts.load(), 3);
  EXPECT_EQ(exhausted->Value(), exhausted_before + 1);
}

TEST(RunTransactionAsyncTest, CancelBeforeFirstStepResolvesCancelled) {
  Database db("rta-cancel-early");
  ManualExecutor exec;
  CancelToken cancel;
  std::atomic<int> attempts{0};
  Future<Status> f = RunTransactionAsync(
      &db,
      [&](Transaction&) {
        attempts.fetch_add(1);
        return Status::OK();
      },
      &exec, cancel);
  cancel.Cancel();  // before the executor ever runs the first step
  PumpUntilReady(&exec, f);
  EXPECT_EQ(f.Get().code(), StatusCode::kCancelled);
  EXPECT_EQ(attempts.load(), 0);
}

// Cancellation between attempts: a retryable failure whose chain has been
// cancelled resolves kCancelled instead of re-arming — the future still
// completes, so window-draining callers never hang.
TEST(RunTransactionAsyncTest, CancelMidChainStopsTheReArm) {
  Database db("rta-cancel-mid");
  ManualExecutor exec;
  CancelToken cancel;
  std::atomic<int> attempts{0};
  Future<Status> f = RunTransactionAsync(
      &db,
      [&](Transaction&) {
        attempts.fetch_add(1);
        cancel.Cancel();  // e.g. Stop() lands while the attempt is in flight
        return Status::Unavailable("flap");
      },
      &exec, cancel);
  PumpUntilReady(&exec, f);
  EXPECT_EQ(f.Get().code(), StatusCode::kCancelled);
  EXPECT_EQ(attempts.load(), 1);
  EXPECT_EQ(exec.PendingTimers(), 0u);  // the chain did not re-arm
}

TEST(RunTransactionAsyncTest, CancelledIsNotRetryable) {
  EXPECT_FALSE(Status::Cancelled("chain torn down").retryable());
}

// Integration smoke on a real thread pool: many chains in flight at once,
// all resolving without the submitter blocking.
TEST(RunTransactionAsyncTest, ManyChainsOnThreadPool) {
  Database::Options opts;
  opts.latency.commit_micros = 500;
  Database db("rta-pool", opts);
  ThreadPoolExecutor exec(4);

  constexpr int kChains = 200;
  std::vector<Future<Status>> futures;
  futures.reserve(kChains);
  for (int i = 0; i < kChains; ++i) {
    futures.push_back(RunTransactionAsync(
        &db,
        [i](Transaction& txn) {
          txn.Set("pool" + std::to_string(i), "v");
          return Status::OK();
        },
        &exec));
  }
  Future<std::vector<Status>> all = WhenAll(std::move(futures));
  all.Wait();
  for (const Status& st : all.Get()) ASSERT_TRUE(st.ok()) << st;

  Transaction probe = db.CreateTransaction();
  auto rows = probe.GetRange(KeyRange::Prefix("pool"));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), static_cast<size_t>(kChains));
  const Database::Stats stats = db.GetStats();
  EXPECT_LT(stats.commit_batches, stats.commits_succeeded)
      << "no batching across concurrent async chains";
  exec.Shutdown();
}

}  // namespace
}  // namespace quick::fdb
