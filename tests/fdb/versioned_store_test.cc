#include "fdb/versioned_store.h"

#include <gtest/gtest.h>

#include "common/bytes.h"

namespace quick::fdb {
namespace {

Mutation SetMut(std::string key, std::string value) {
  Mutation m;
  m.type = Mutation::Type::kSet;
  m.key = std::move(key);
  m.value = std::move(value);
  return m;
}

Mutation ClearMut(std::string key) {
  Mutation m;
  m.type = Mutation::Type::kClear;
  m.key = std::move(key);
  return m;
}

Mutation ClearRangeMut(std::string begin, std::string end) {
  Mutation m;
  m.type = Mutation::Type::kClearRange;
  m.key = std::move(begin);
  m.end_key = std::move(end);
  return m;
}

Mutation AtomicMut(AtomicOp op, std::string key, std::string operand,
                   bool base_cleared = false) {
  Mutation m;
  m.type = Mutation::Type::kAtomic;
  m.key = std::move(key);
  m.value = std::move(operand);
  m.op = op;
  m.base_cleared = base_cleared;
  return m;
}

TEST(VersionedStoreTest, GetMissingKey) {
  VersionedStore store;
  EXPECT_FALSE(store.Get("nope", 100).has_value());
}

TEST(VersionedStoreTest, SetVisibleAtAndAfterVersion) {
  VersionedStore store;
  store.Apply({SetMut("k", "v")}, 5);
  EXPECT_FALSE(store.Get("k", 4).has_value());
  EXPECT_EQ(store.Get("k", 5).value(), "v");
  EXPECT_EQ(store.Get("k", 100).value(), "v");
}

TEST(VersionedStoreTest, MvccReadsOldVersions) {
  VersionedStore store;
  store.Apply({SetMut("k", "v1")}, 1);
  store.Apply({SetMut("k", "v2")}, 2);
  store.Apply({ClearMut("k")}, 3);
  store.Apply({SetMut("k", "v4")}, 4);
  EXPECT_EQ(store.Get("k", 1).value(), "v1");
  EXPECT_EQ(store.Get("k", 2).value(), "v2");
  EXPECT_FALSE(store.Get("k", 3).has_value());
  EXPECT_EQ(store.Get("k", 4).value(), "v4");
}

TEST(VersionedStoreTest, ClearRangeTombstonesLiveKeys) {
  VersionedStore store;
  store.Apply({SetMut("a", "1"), SetMut("b", "2"), SetMut("c", "3")}, 1);
  store.Apply({ClearRangeMut("a", "c")}, 2);
  EXPECT_FALSE(store.Get("a", 2).has_value());
  EXPECT_FALSE(store.Get("b", 2).has_value());
  EXPECT_EQ(store.Get("c", 2).value(), "3");
  // Old snapshot unaffected.
  EXPECT_EQ(store.Get("a", 1).value(), "1");
}

TEST(VersionedStoreTest, SetAfterClearRangeSameVersionWins) {
  VersionedStore store;
  store.Apply({SetMut("b", "old")}, 1);
  // One commit clearing a range then re-setting a key inside it.
  store.Apply({ClearRangeMut("a", "z"), SetMut("b", "new")}, 2);
  EXPECT_EQ(store.Get("b", 2).value(), "new");
}

TEST(VersionedStoreTest, GetRangeBasic) {
  VersionedStore store;
  store.Apply({SetMut("a", "1"), SetMut("b", "2"), SetMut("d", "4")}, 1);
  auto kvs = store.GetRange(KeyRange{"a", "d"}, 1);
  ASSERT_EQ(kvs.size(), 2u);
  EXPECT_EQ(kvs[0].key, "a");
  EXPECT_EQ(kvs[1].key, "b");
}

TEST(VersionedStoreTest, GetRangeRespectsVersion) {
  VersionedStore store;
  store.Apply({SetMut("a", "1")}, 1);
  store.Apply({SetMut("b", "2")}, 2);
  EXPECT_EQ(store.GetRange(KeyRange::All(), 1).size(), 1u);
  EXPECT_EQ(store.GetRange(KeyRange::All(), 2).size(), 2u);
}

TEST(VersionedStoreTest, GetRangeSkipsTombstones) {
  VersionedStore store;
  store.Apply({SetMut("a", "1"), SetMut("b", "2")}, 1);
  store.Apply({ClearMut("a")}, 2);
  auto kvs = store.GetRange(KeyRange::All(), 2);
  ASSERT_EQ(kvs.size(), 1u);
  EXPECT_EQ(kvs[0].key, "b");
}

TEST(VersionedStoreTest, GetRangeLimitAndReverse) {
  VersionedStore store;
  store.Apply({SetMut("a", "1"), SetMut("b", "2"), SetMut("c", "3")}, 1);
  RangeOptions fwd;
  fwd.limit = 2;
  auto kvs = store.GetRange(KeyRange::All(), 1, fwd);
  ASSERT_EQ(kvs.size(), 2u);
  EXPECT_EQ(kvs[0].key, "a");

  RangeOptions rev;
  rev.limit = 2;
  rev.reverse = true;
  kvs = store.GetRange(KeyRange::All(), 1, rev);
  ASSERT_EQ(kvs.size(), 2u);
  EXPECT_EQ(kvs[0].key, "c");
  EXPECT_EQ(kvs[1].key, "b");
}

TEST(VersionedStoreTest, AtomicAddFromMissing) {
  VersionedStore store;
  store.Apply({AtomicMut(AtomicOp::kAdd, "n", EncodeLittleEndian64(5))}, 1);
  EXPECT_EQ(DecodeLittleEndian64(store.Get("n", 1).value()), 5u);
}

TEST(VersionedStoreTest, AtomicAddAccumulates) {
  VersionedStore store;
  store.Apply({AtomicMut(AtomicOp::kAdd, "n", EncodeLittleEndian64(5))}, 1);
  store.Apply({AtomicMut(AtomicOp::kAdd, "n", EncodeLittleEndian64(7))}, 2);
  EXPECT_EQ(DecodeLittleEndian64(store.Get("n", 2).value()), 12u);
  EXPECT_EQ(DecodeLittleEndian64(store.Get("n", 1).value()), 5u);
}

TEST(VersionedStoreTest, AtomicAddNegativeWraps) {
  VersionedStore store;
  store.Apply({AtomicMut(AtomicOp::kAdd, "n", EncodeLittleEndian64(5))}, 1);
  // Two's-complement -2.
  store.Apply({AtomicMut(AtomicOp::kAdd, "n",
                         EncodeLittleEndian64(static_cast<uint64_t>(-2)))},
              2);
  EXPECT_EQ(DecodeLittleEndian64(store.Get("n", 2).value()), 3u);
}

TEST(VersionedStoreTest, AtomicMinMax) {
  VersionedStore store;
  store.Apply({AtomicMut(AtomicOp::kMax, "m", EncodeLittleEndian64(10))}, 1);
  store.Apply({AtomicMut(AtomicOp::kMax, "m", EncodeLittleEndian64(3))}, 2);
  EXPECT_EQ(DecodeLittleEndian64(store.Get("m", 2).value()), 10u);
  store.Apply({AtomicMut(AtomicOp::kMin, "m", EncodeLittleEndian64(4))}, 3);
  EXPECT_EQ(DecodeLittleEndian64(store.Get("m", 3).value()), 4u);
}

TEST(VersionedStoreTest, AtomicByteMinMax) {
  VersionedStore store;
  store.Apply({AtomicMut(AtomicOp::kByteMax, "b", "mango")}, 1);
  store.Apply({AtomicMut(AtomicOp::kByteMax, "b", "apple")}, 2);
  EXPECT_EQ(store.Get("b", 2).value(), "mango");
  store.Apply({AtomicMut(AtomicOp::kByteMin, "b", "kiwi")}, 3);
  EXPECT_EQ(store.Get("b", 3).value(), "kiwi");
}

TEST(VersionedStoreTest, AtomicBaseClearedIgnoresStorage) {
  VersionedStore store;
  store.Apply({SetMut("n", EncodeLittleEndian64(100))}, 1);
  store.Apply({AtomicMut(AtomicOp::kAdd, "n", EncodeLittleEndian64(5),
                         /*base_cleared=*/true)},
              2);
  EXPECT_EQ(DecodeLittleEndian64(store.Get("n", 2).value()), 5u);
}

TEST(VersionedStoreTest, AtomicSeesEarlierMutationInSameCommit) {
  VersionedStore store;
  store.Apply({SetMut("n", EncodeLittleEndian64(10)),
               AtomicMut(AtomicOp::kAdd, "n", EncodeLittleEndian64(1))},
              1);
  EXPECT_EQ(DecodeLittleEndian64(store.Get("n", 1).value()), 11u);
}

TEST(VersionedStoreTest, PruneDropsOldVersionsKeepsVisible) {
  VersionedStore store;
  store.Apply({SetMut("k", "v1")}, 1);
  store.Apply({SetMut("k", "v2")}, 5);
  store.Apply({SetMut("k", "v3")}, 9);
  store.Prune(5);
  // Reads at or above the prune floor still correct.
  EXPECT_EQ(store.Get("k", 5).value(), "v2");
  EXPECT_EQ(store.Get("k", 9).value(), "v3");
  EXPECT_EQ(store.TotalEntryCount(), 2u);
}

TEST(VersionedStoreTest, PruneRemovesDeadTombstones) {
  VersionedStore store;
  store.Apply({SetMut("k", "v")}, 1);
  store.Apply({ClearMut("k")}, 2);
  store.Prune(10);
  EXPECT_EQ(store.TotalEntryCount(), 0u);
  EXPECT_EQ(store.LiveKeyCount(), 0u);
}

TEST(VersionedStoreTest, LiveKeyCount) {
  VersionedStore store;
  store.Apply({SetMut("a", "1"), SetMut("b", "2")}, 1);
  EXPECT_EQ(store.LiveKeyCount(), 2u);
  store.Apply({ClearMut("a")}, 2);
  EXPECT_EQ(store.LiveKeyCount(), 1u);
}

TEST(ApplyAtomicOpTest, AddResultWidthFollowsOperand) {
  // 4-byte operand produces a 4-byte result, as in FDB.
  std::string operand("\x05\x00\x00\x00", 4);
  std::string result = ApplyAtomicOp(AtomicOp::kAdd, std::nullopt, operand);
  EXPECT_EQ(result.size(), 4u);
  EXPECT_EQ(DecodeLittleEndian64(result), 5u);
}

TEST(VersionedStoreTest, ScanRangeStreamsInOrderAndHonorsLimit) {
  VersionedStore store;
  store.Apply({SetMut("a", "1"), SetMut("b", "2"), SetMut("c", "3"),
               SetMut("d", "4")},
              1);
  store.Apply({ClearMut("b")}, 2);

  std::vector<std::string> keys;
  RangeOptions opts;
  opts.limit = 2;
  store.ScanRange(KeyRange{"a", "z"}, 2, opts,
                  [&](std::string_view k, std::string_view) {
                    keys.emplace_back(k);
                    return true;
                  });
  // Tombstoned "b" is skipped during iteration; limit counts emitted pairs.
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "c"}));
}

TEST(VersionedStoreTest, ScanRangeReverse) {
  VersionedStore store;
  store.Apply({SetMut("a", "1"), SetMut("b", "2"), SetMut("c", "3")}, 1);
  std::vector<std::string> keys;
  RangeOptions opts;
  opts.reverse = true;
  opts.limit = 2;
  store.ScanRange(KeyRange{"a", "z"}, 1, opts,
                  [&](std::string_view k, std::string_view) {
                    keys.emplace_back(k);
                    return true;
                  });
  EXPECT_EQ(keys, (std::vector<std::string>{"c", "b"}));
}

TEST(VersionedStoreTest, ScanRangeSinkCanStopEarly) {
  VersionedStore store;
  for (char c = 'a'; c <= 'j'; ++c) {
    store.Apply({SetMut(std::string(1, c), "v")}, 1);
  }
  int visited = 0;
  store.ScanRange(KeyRange{"a", "z"}, 1, RangeOptions{},
                  [&](std::string_view, std::string_view) {
                    ++visited;
                    return visited < 3;
                  });
  EXPECT_EQ(visited, 3);
}

TEST(VersionedStoreTest, BatchOrderLastMemberWinsAtSharedVersion) {
  VersionedStore store;
  // Two commit-batch members share version 7; member 1 overwrites what
  // member 0 wrote. A reader at 7 must see member 1's value; a reader at 6
  // must see neither.
  store.Apply({SetMut("k", "first")}, 7, /*batch_order=*/0);
  store.Apply({SetMut("k", "second")}, 7, /*batch_order=*/1);
  EXPECT_EQ(store.Get("k", 7).value(), "second");
  EXPECT_FALSE(store.Get("k", 6).has_value());
}

TEST(VersionedStoreTest, VersionstampBatchOrderBytes) {
  EXPECT_EQ(VersionstampFor(1, 0).size(), 10u);
  // Batch order is the low 2 bytes: same version, increasing order sorts
  // between the version and its successor.
  EXPECT_LT(VersionstampFor(1, 0), VersionstampFor(1, 1));
  EXPECT_LT(VersionstampFor(1, 65535), VersionstampFor(2, 0));

  VersionedStore store;
  Mutation m;
  m.type = Mutation::Type::kSetVersionstampedKey;
  m.key = "q/";
  m.value = "a";
  store.Apply({m}, 3, 0);
  m.value = "b";
  store.Apply({m}, 3, 1);
  // Distinct batch orders produce distinct keys even at a shared version.
  EXPECT_EQ(store.GetRange(KeyRange::Prefix("q/"), 3).size(), 2u);
}

// Regression: sustained enqueue/dequeue churn (write then clear) must not
// grow the key map or the version chains without bound once pruning passes
// the clears — the store converges back to its live size.
TEST(VersionedStoreTest, ChurnConvergesAfterPrune) {
  VersionedStore store;
  Version v = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 10; ++i) {
      store.Apply({SetMut("item" + std::to_string(round * 10 + i), "x")}, ++v);
    }
    for (int i = 0; i < 10; ++i) {
      store.Apply({ClearMut("item" + std::to_string(round * 10 + i))}, ++v);
    }
    // Periodic pruning as the Database performs it (monotone floors).
    if (round % 7 == 6) store.Prune(v - 15);
  }
  store.Apply({SetMut("survivor", "s")}, ++v);
  store.Prune(v);
  EXPECT_EQ(store.LiveKeyCount(), 1u);
  EXPECT_EQ(store.TotalEntryCount(), 1u);
}

}  // namespace
}  // namespace quick::fdb
