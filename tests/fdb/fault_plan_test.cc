#include "fdb/fault_plan.h"

#include <gtest/gtest.h>

#include <vector>

#include "fdb/database.h"
#include "fdb/fault_injector.h"

namespace quick::fdb {
namespace {

TEST(FaultPlanTest, EmptyPlanHasNoEffect) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(plan.ActiveAt(0));
  EXPECT_EQ(plan.EndMillis(), 0);
  const FaultWindow effect = plan.EffectAt(12345);
  EXPECT_FALSE(effect.full_outage);
  EXPECT_EQ(effect.commit_unavailable, 0.0);
  EXPECT_EQ(effect.extra_latency_millis, 0);
}

TEST(FaultPlanTest, WindowBoundsAreHalfOpen) {
  const FaultWindow w = FaultWindow::Outage(100, 200);
  EXPECT_FALSE(w.Contains(99));
  EXPECT_TRUE(w.Contains(100));
  EXPECT_TRUE(w.Contains(199));
  EXPECT_FALSE(w.Contains(200));
}

TEST(FaultPlanTest, OverlappingWindowsAggregate) {
  FaultWindow elevated;
  elevated.start_millis = 100;
  elevated.end_millis = 200;
  elevated.commit_unavailable = 0.2;
  elevated.extra_latency_millis = 10;

  FaultWindow more;
  more.start_millis = 150;
  more.end_millis = 250;
  more.commit_unavailable = 0.3;
  more.extra_latency_millis = 5;

  FaultPlan plan;
  plan.Add(elevated).Add(more).Add(FaultWindow::Outage(150, 160));

  // Probabilities add, latencies add, outages OR.
  const FaultWindow mid = plan.EffectAt(155);
  EXPECT_TRUE(mid.full_outage);
  EXPECT_DOUBLE_EQ(mid.commit_unavailable, 0.5);
  EXPECT_EQ(mid.extra_latency_millis, 15);

  const FaultWindow early = plan.EffectAt(120);
  EXPECT_FALSE(early.full_outage);
  EXPECT_DOUBLE_EQ(early.commit_unavailable, 0.2);
  EXPECT_EQ(early.extra_latency_millis, 10);

  EXPECT_FALSE(plan.ActiveAt(99));
  EXPECT_TRUE(plan.ActiveAt(225));
  EXPECT_FALSE(plan.ActiveAt(250));
  EXPECT_EQ(plan.EndMillis(), 250);
}

TEST(FaultPlanTest, OutageBlocksCommitsReadsAndGrv) {
  ManualClock clock(1000);
  Database::Options opts;
  opts.clock = &clock;
  opts.fault_plan.Add(FaultWindow::Outage(2000, 5000));
  Database db("c", opts);

  // Before the window everything works.
  {
    Transaction t = db.CreateTransaction();
    t.Set("k", "v");
    ASSERT_TRUE(t.Commit().ok());
  }

  clock.AdvanceMillis(1500);  // now = 2500: inside the window
  {
    Transaction t = db.CreateTransaction();
    Result<std::optional<std::string>> read = t.Get("k");
    EXPECT_EQ(read.status().code(), StatusCode::kUnavailable);
  }
  {
    Transaction t = db.CreateTransaction();
    t.Set("k2", "v");
    EXPECT_EQ(t.Commit().code(), StatusCode::kUnavailable);
  }
  EXPECT_GT(db.fault_injector()->counts().outage_rejections, 0);

  clock.AdvanceMillis(3000);  // now = 5500: window over
  {
    Transaction t = db.CreateTransaction();
    EXPECT_EQ(t.Get("k").value().value_or(""), "v");
    t.Set("k2", "v");
    EXPECT_TRUE(t.Commit().ok());
  }
}

TEST(FaultPlanTest, ForcedTransactionTooOldAtCommit) {
  ManualClock clock(1000);
  FaultWindow w;
  w.start_millis = 0;
  w.end_millis = 100000;
  w.transaction_too_old = 1.0;
  Database::Options opts;
  opts.clock = &clock;
  opts.fault_plan.Add(w);
  Database db("c", opts);

  Transaction t = db.CreateTransaction();
  t.Set("k", "v");
  EXPECT_EQ(t.Commit().code(), StatusCode::kTransactionTooOld);
  EXPECT_GT(db.fault_injector()->counts().forced_too_old, 0);
  EXPECT_GT(db.GetStats().too_old, 0);
}

TEST(FaultPlanTest, InjectedReadFaults) {
  ManualClock clock(1000);
  FaultWindow w;
  w.start_millis = 0;
  w.end_millis = 100000;
  w.read_unavailable = 1.0;
  Database::Options opts;
  opts.clock = &clock;
  opts.fault_plan.Add(w);
  Database db("c", opts);

  Transaction t = db.CreateTransaction();
  EXPECT_EQ(t.Get("k").status().code(), StatusCode::kUnavailable);
  EXPECT_GT(db.fault_injector()->counts().read_faults, 0);
}

TEST(FaultPlanTest, LatencySpikeAdvancesManualClock) {
  ManualClock clock(1000);
  Database::Options opts;
  opts.clock = &clock;
  opts.fault_plan.Add(FaultWindow::LatencySpike(0, 100000, 250));
  Database db("c", opts);

  const int64_t before = clock.NowMillis();
  Transaction t = db.CreateTransaction();
  (void)t.Get("k");
  EXPECT_GE(clock.NowMillis(), before + 250);
  EXPECT_GT(db.fault_injector()->counts().latency_spike_millis, 0);
}

TEST(FaultPlanTest, LongSpikeAgesTransactionsPastLifetime) {
  // A 6s spike exceeds the 5s transaction lifetime: a transaction started
  // before paying the spike comes back too old, exactly like a real
  // degraded cluster.
  ManualClock clock(1000);
  Database::Options opts;
  opts.clock = &clock;
  opts.fault_plan.Add(FaultWindow::LatencySpike(2000, 100000, 6000));
  Database db("c", opts);

  Transaction t = db.CreateTransaction();
  ASSERT_TRUE(t.Get("k").ok());   // started at now = 1000
  clock.AdvanceMillis(1500);      // now = 2500: spike window active
  ASSERT_TRUE(t.Get("k2").ok());  // pays the 6s spike; now = 8500
  EXPECT_EQ(t.Get("k3").status().code(), StatusCode::kTransactionTooOld);
}

TEST(FaultPlanTest, DiskFaultFactoriesEncodeKindAndStream) {
  const DiskFault torn = DiskFault::TornWrite(3, 17);
  EXPECT_EQ(torn.kind, DiskFault::Kind::kTornWrite);
  EXPECT_EQ(torn.op, DiskFault::Op::kWalAppend);
  EXPECT_EQ(torn.at_op, 3);
  EXPECT_EQ(torn.torn_bytes, 17);

  const DiskFault stall = DiskFault::FsyncStall(5, 750);
  EXPECT_EQ(stall.kind, DiskFault::Kind::kFsyncStall);
  EXPECT_EQ(stall.stall_millis, 750);

  // OnCheckpoint retargets the stream and keeps everything else.
  const DiskFault rot = DiskFault::Corruption(2, 9).OnCheckpoint();
  EXPECT_EQ(rot.kind, DiskFault::Kind::kChecksumCorruption);
  EXPECT_EQ(rot.op, DiskFault::Op::kCheckpointWrite);
  EXPECT_EQ(rot.at_op, 2);
  EXPECT_EQ(rot.corrupt_offset, 9);

  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.AddDisk(torn);
  EXPECT_FALSE(plan.empty());
  ASSERT_EQ(plan.disk_faults().size(), 1u);
}

TEST(FaultPlanTest, DiskFaultsFireOnTheirOrdinalPerStream) {
  FaultPlan plan;
  plan.AddDisk(DiskFault::TornWrite(2))
      .AddDisk(DiskFault::FsyncStall(3, 40))
      .AddDisk(DiskFault::Corruption(1, 8).OnCheckpoint());
  FaultInjector injector(FaultInjector::Config{}, plan);

  // WAL-append stream: ordinals 1..4 → none, torn, stall, none.
  EXPECT_FALSE(injector.NextDiskFault(DiskFault::Op::kWalAppend).has_value());
  auto second = injector.NextDiskFault(DiskFault::Op::kWalAppend);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->kind, DiskFault::Kind::kTornWrite);
  auto third = injector.NextDiskFault(DiskFault::Op::kWalAppend);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->kind, DiskFault::Kind::kFsyncStall);
  EXPECT_FALSE(injector.NextDiskFault(DiskFault::Op::kWalAppend).has_value());

  // The checkpoint stream counts its own ordinals: its first write rots
  // even though the WAL stream is already past ordinal 1.
  auto ckpt = injector.NextDiskFault(DiskFault::Op::kCheckpointWrite);
  ASSERT_TRUE(ckpt.has_value());
  EXPECT_EQ(ckpt->kind, DiskFault::Kind::kChecksumCorruption);
  EXPECT_EQ(ckpt->corrupt_offset, 8);

  const FaultInjector::Counts counts = injector.counts();
  EXPECT_EQ(counts.torn_writes, 1);
  EXPECT_EQ(counts.corrupted_writes, 1);
  EXPECT_EQ(counts.fsync_stall_millis, 40);
}

TEST(FaultPlanTest, FirstScheduledDiskFaultWinsASharedOrdinal) {
  FaultPlan plan;
  plan.AddDisk(DiskFault::FsyncStall(1, 10)).AddDisk(DiskFault::TornWrite(1));
  FaultInjector injector(FaultInjector::Config{}, plan);

  auto fault = injector.NextDiskFault(DiskFault::Op::kWalAppend);
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->kind, DiskFault::Kind::kFsyncStall);
  // The ordinal is consumed; the loser never fires.
  EXPECT_FALSE(injector.NextDiskFault(DiskFault::Op::kWalAppend).has_value());
  EXPECT_EQ(injector.counts().torn_writes, 0);
}

TEST(FaultPlanTest, DiskFaultsComposeWithTimeWindows) {
  // Disk faults are keyed by operation ordinal, not the clock, so a plan
  // can carry both without the streams interfering.
  ManualClock clock(1000);
  FaultPlan plan;
  plan.Add(FaultWindow::Outage(5000, 6000))
      .AddDisk(DiskFault::TornWrite(1));
  FaultInjector injector(FaultInjector::Config{}, plan, &clock);

  EXPECT_EQ(injector.NextCommitFault(), FaultInjector::CommitFault::kNone);
  EXPECT_TRUE(injector.NextDiskFault(DiskFault::Op::kWalAppend).has_value());

  clock.AdvanceMillis(4500);  // now = 5500: inside the outage window
  EXPECT_EQ(injector.NextCommitFault(),
            FaultInjector::CommitFault::kUnavailable);
  EXPECT_FALSE(injector.NextDiskFault(DiskFault::Op::kWalAppend).has_value());
}

TEST(FaultPlanTest, LinkFaultFactoriesEncodeKind) {
  const LinkFault drop = LinkFault::Drop(2);
  EXPECT_EQ(drop.kind, LinkFault::Kind::kDrop);
  EXPECT_EQ(drop.at_op, 2);

  const LinkFault delay = LinkFault::Delay(3, 20);
  EXPECT_EQ(delay.kind, LinkFault::Kind::kDelay);
  EXPECT_EQ(delay.delay_millis, 20);

  const LinkFault dup = LinkFault::Duplicate(4);
  EXPECT_EQ(dup.kind, LinkFault::Kind::kDuplicate);

  const LinkFault cut = LinkFault::Partition(5);
  EXPECT_EQ(cut.kind, LinkFault::Kind::kPartition);

  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  plan.AddLink(drop);
  EXPECT_FALSE(plan.empty());
  ASSERT_EQ(plan.link_faults().size(), 1u);
}

TEST(FaultPlanTest, LinkFaultsFireOnTheirOrdinal) {
  ManualClock clock(1000);
  FaultPlan plan;
  plan.AddLink(LinkFault::Drop(1))
      .AddLink(LinkFault::Delay(3, 20))
      .AddLink(LinkFault::Duplicate(4))
      .AddLink(LinkFault::Partition(5));
  FaultInjector injector(FaultInjector::Config{}, plan, &clock);

  auto first = injector.NextLinkFault();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->kind, LinkFault::Kind::kDrop);
  EXPECT_FALSE(injector.NextLinkFault().has_value());
  auto third = injector.NextLinkFault();
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->kind, LinkFault::Kind::kDelay);
  auto fourth = injector.NextLinkFault();
  ASSERT_TRUE(fourth.has_value());
  EXPECT_EQ(fourth->kind, LinkFault::Kind::kDuplicate);
  auto fifth = injector.NextLinkFault();
  ASSERT_TRUE(fifth.has_value());
  EXPECT_EQ(fifth->kind, LinkFault::Kind::kPartition);
  EXPECT_FALSE(injector.NextLinkFault().has_value());

  const FaultInjector::Counts counts = injector.counts();
  EXPECT_EQ(counts.link_drops, 1);
  EXPECT_EQ(counts.link_duplicates, 1);
  EXPECT_EQ(counts.link_delay_millis, 20);
  EXPECT_EQ(counts.link_partitions, 1);
}

TEST(FaultPlanTest, LinkFaultsShareOrdinalFirstWins) {
  FaultPlan plan;
  plan.AddLink(LinkFault::Duplicate(1)).AddLink(LinkFault::Drop(1));
  FaultInjector injector(FaultInjector::Config{}, plan);

  auto fault = injector.NextLinkFault();
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->kind, LinkFault::Kind::kDuplicate);
  EXPECT_FALSE(injector.NextLinkFault().has_value());
  EXPECT_EQ(injector.counts().link_drops, 0);
}

TEST(FaultPlanTest, LinkAndDiskStreamsAreIndependent) {
  FaultPlan plan;
  plan.AddDisk(DiskFault::TornWrite(1)).AddLink(LinkFault::Drop(1));
  FaultInjector injector(FaultInjector::Config{}, plan);

  // Consuming the disk stream's ordinal 1 leaves the link stream's
  // ordinal 1 untouched, and vice versa.
  EXPECT_TRUE(injector.NextDiskFault(DiskFault::Op::kWalAppend).has_value());
  EXPECT_TRUE(injector.NextLinkFault().has_value());
}

TEST(FaultPlanTest, DeterministicUnderSameSeed) {
  FaultWindow w;
  w.start_millis = 0;
  w.end_millis = 1000000;
  w.commit_unavailable = 0.4;
  w.transaction_too_old = 0.2;
  auto roll_sequence = [&](uint64_t seed) {
    ManualClock clock(1000);
    FaultInjector::Config config;
    config.seed = seed;
    FaultPlan plan;
    plan.Add(w);
    FaultInjector injector(config, plan, &clock);
    std::vector<FaultInjector::CommitFault> rolls;
    for (int i = 0; i < 100; ++i) {
      rolls.push_back(injector.NextCommitFault());
      clock.AdvanceMillis(10);
    }
    return rolls;
  };
  EXPECT_EQ(roll_sequence(7), roll_sequence(7));
  EXPECT_NE(roll_sequence(7), roll_sequence(8));
}

}  // namespace
}  // namespace quick::fdb
