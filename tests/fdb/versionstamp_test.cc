#include <gtest/gtest.h>

#include "common/bytes.h"
#include "fdb/database.h"

namespace quick::fdb {
namespace {

TEST(VersionstampTest, StampEncodesCommitVersionBigEndian) {
  const std::string stamp = VersionstampFor(0x0102030405060708);
  ASSERT_EQ(stamp.size(), 10u);
  EXPECT_EQ(DecodeBigEndian64(stamp.substr(0, 8)), 0x0102030405060708u);
  EXPECT_EQ(stamp[8], '\x00');
  EXPECT_EQ(stamp[9], '\x00');
}

TEST(VersionstampTest, StampsSortByCommitOrder) {
  EXPECT_LT(VersionstampFor(1), VersionstampFor(2));
  EXPECT_LT(VersionstampFor(255), VersionstampFor(256));
}

TEST(VersionstampTest, SetVersionstampedKeyLandsAtCommitVersion) {
  Database db("vs");
  Transaction txn = db.CreateTransaction();
  txn.SetVersionstampedKey("log/", "/suffix", "payload");
  ASSERT_TRUE(txn.Commit().ok());
  const std::string stamp = txn.GetVersionstamp().value();

  Transaction probe = db.CreateTransaction();
  auto v = probe.Get("log/" + stamp + "/suffix");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v.value().has_value());
  EXPECT_EQ(*v.value(), "payload");
}

TEST(VersionstampTest, KeysFromSuccessiveCommitsAreOrdered) {
  Database db("vs");
  for (int i = 0; i < 5; ++i) {
    Transaction txn = db.CreateTransaction();
    txn.SetVersionstampedKey("log/", "", "item" + std::to_string(i));
    ASSERT_TRUE(txn.Commit().ok());
  }
  Transaction probe = db.CreateTransaction();
  auto kvs = probe.GetRange(KeyRange::Prefix("log/"));
  ASSERT_TRUE(kvs.ok());
  ASSERT_EQ(kvs->size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ((*kvs)[i].value, "item" + std::to_string(i));
  }
}

TEST(VersionstampTest, SetVersionstampedValue) {
  Database db("vs");
  Transaction txn = db.CreateTransaction();
  txn.SetVersionstampedValue("header", "pre-");
  ASSERT_TRUE(txn.Commit().ok());
  const std::string stamp = txn.GetVersionstamp().value();

  Transaction probe = db.CreateTransaction();
  EXPECT_EQ(probe.Get("header").value().value(), "pre-" + stamp);
}

TEST(VersionstampTest, GetVersionstampBeforeCommitFails) {
  Database db("vs");
  Transaction txn = db.CreateTransaction();
  txn.SetVersionstampedKey("log/", "", "x");
  EXPECT_FALSE(txn.GetVersionstamp().ok());
}

TEST(VersionstampTest, MultipleStampedWritesShareOneStamp) {
  Database db("vs");
  Transaction txn = db.CreateTransaction();
  txn.SetVersionstampedKey("a/", "1", "");
  txn.SetVersionstampedKey("b/", "2", "");
  ASSERT_TRUE(txn.Commit().ok());
  const std::string stamp = txn.GetVersionstamp().value();
  Transaction probe = db.CreateTransaction();
  EXPECT_TRUE(probe.Get("a/" + stamp + "1").value().has_value());
  EXPECT_TRUE(probe.Get("b/" + stamp + "2").value().has_value());
}

TEST(VersionstampTest, StampedWriteConflictsWithPrefixReaders) {
  Database db("vs");
  // Reader scans the prefix strongly.
  Transaction reader = db.CreateTransaction();
  ASSERT_TRUE(reader.GetRange(KeyRange::Prefix("log/")).ok());
  reader.Set("out", "x");

  Transaction writer = db.CreateTransaction();
  writer.SetVersionstampedKey("log/", "", "new");
  ASSERT_TRUE(writer.Commit().ok());

  EXPECT_TRUE(reader.Commit().IsNotCommitted());
}

TEST(VersionstampTest, ResetDropsStampedWrites) {
  Database db("vs");
  Transaction txn = db.CreateTransaction();
  txn.SetVersionstampedKey("log/", "", "x");
  txn.Reset();
  EXPECT_TRUE(txn.Commit().ok());  // no-op commit now
  Transaction probe = db.CreateTransaction();
  EXPECT_TRUE(probe.GetRange(KeyRange::Prefix("log/")).value().empty());
}

}  // namespace
}  // namespace quick::fdb
