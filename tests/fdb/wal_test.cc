#include "fdb/wal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "common/file_io.h"

namespace quick::fdb {
namespace {

std::string MakeTempDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "quick_wal_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<Mutation> SampleMutations() {
  std::vector<Mutation> muts;
  Mutation set;
  set.type = Mutation::Type::kSet;
  set.key = "alpha";
  set.value = "one";
  muts.push_back(set);

  Mutation clear;
  clear.type = Mutation::Type::kClear;
  clear.key = "beta";
  muts.push_back(clear);

  Mutation clear_range;
  clear_range.type = Mutation::Type::kClearRange;
  clear_range.key = "c";
  clear_range.end_key = "d";
  muts.push_back(clear_range);

  Mutation atomic;
  atomic.type = Mutation::Type::kAtomic;
  atomic.key = "counter";
  atomic.value = std::string("\x05\x00\x00\x00", 4);
  atomic.op = AtomicOp::kAdd;
  atomic.base_cleared = true;
  muts.push_back(atomic);

  Mutation vs_key;
  vs_key.type = Mutation::Type::kSetVersionstampedKey;
  vs_key.key = "prefix/";
  vs_key.end_key = "/suffix";
  vs_key.value = "payload";
  muts.push_back(vs_key);

  Mutation vs_value;
  vs_value.type = Mutation::Type::kSetVersionstampedValue;
  vs_value.key = "stamped";
  vs_value.value = "vp";
  muts.push_back(vs_value);
  return muts;
}

void ExpectMutationsEqual(const std::vector<Mutation>& a,
                          const std::vector<Mutation>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].type, b[i].type) << "mutation " << i;
    EXPECT_EQ(a[i].key, b[i].key) << "mutation " << i;
    EXPECT_EQ(a[i].end_key, b[i].end_key) << "mutation " << i;
    EXPECT_EQ(a[i].value, b[i].value) << "mutation " << i;
    EXPECT_EQ(a[i].op, b[i].op) << "mutation " << i;
    EXPECT_EQ(a[i].base_cleared, b[i].base_cleared) << "mutation " << i;
  }
}

TEST(WalRecordTest, EncodeDecodeRoundtrip) {
  const std::vector<Mutation> m0 = SampleMutations();
  std::vector<Mutation> m1;
  Mutation set;
  set.type = Mutation::Type::kSet;
  set.key = "k";
  set.value = std::string(1000, 'x');
  m1.push_back(set);

  WalBatchRef ref;
  ref.version = 42;
  ref.members.emplace_back(0, &m0);
  ref.members.emplace_back(3, &m1);
  const std::string record = EncodeWalRecord(ref, 128);

  size_t offset = 0;
  Result<WalBatch> decoded = DecodeWalRecord(record, &offset);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(offset, record.size());
  EXPECT_EQ(decoded->version, 42);
  ASSERT_EQ(decoded->members.size(), 2u);
  EXPECT_EQ(decoded->members[0].batch_order, 0);
  EXPECT_EQ(decoded->members[1].batch_order, 3);
  ExpectMutationsEqual(decoded->members[0].mutations, m0);
  ExpectMutationsEqual(decoded->members[1].mutations, m1);
}

TEST(WalRecordTest, TombstoneOnlyFlagSetForAllClearBatch) {
  std::vector<Mutation> clears;
  Mutation c;
  c.type = Mutation::Type::kClear;
  c.key = "gone";
  clears.push_back(c);
  Mutation cr;
  cr.type = Mutation::Type::kClearRange;
  cr.key = "a";
  cr.end_key = "b";
  clears.push_back(cr);

  WalBatchRef ref;
  ref.version = 7;
  ref.members.emplace_back(0, &clears);
  const std::string record = EncodeWalRecord(ref, kNoPrevOffset);
  // flags live at header offset 28 (u16 LE).
  const uint16_t flags =
      static_cast<uint16_t>(static_cast<unsigned char>(record[28])) |
      (static_cast<uint16_t>(static_cast<unsigned char>(record[29])) << 8);
  EXPECT_EQ(flags & kWalFlagTombstoneOnly, kWalFlagTombstoneOnly);

  const std::vector<Mutation> mixed = SampleMutations();
  WalBatchRef ref2;
  ref2.version = 8;
  ref2.members.emplace_back(0, &mixed);
  const std::string record2 = EncodeWalRecord(ref2, kNoPrevOffset);
  const uint16_t flags2 =
      static_cast<uint16_t>(static_cast<unsigned char>(record2[28])) |
      (static_cast<uint16_t>(static_cast<unsigned char>(record2[29])) << 8);
  EXPECT_EQ(flags2 & kWalFlagTombstoneOnly, 0);
}

TEST(WalRecordTest, DecodeRejectsFlippedByte) {
  const std::vector<Mutation> muts = SampleMutations();
  WalBatchRef ref;
  ref.version = 9;
  ref.members.emplace_back(0, &muts);
  std::string record = EncodeWalRecord(ref, kNoPrevOffset);
  // Flip one payload byte: the CRC must catch it.
  record[kWalHeaderSize + 5] =
      static_cast<char>(record[kWalHeaderSize + 5] ^ 1);
  size_t offset = 0;
  EXPECT_FALSE(DecodeWalRecord(record, &offset).ok());
}

TEST(WalRecordTest, DecodeRejectsTornPrefix) {
  const std::vector<Mutation> muts = SampleMutations();
  WalBatchRef ref;
  ref.version = 9;
  ref.members.emplace_back(0, &muts);
  const std::string record = EncodeWalRecord(ref, kNoPrevOffset);
  for (const size_t keep :
       {size_t{0}, size_t{7}, kWalHeaderSize - 1, kWalHeaderSize,
        record.size() - 1}) {
    size_t offset = 0;
    EXPECT_FALSE(DecodeWalRecord(record.substr(0, keep), &offset).ok())
        << "torn at " << keep << " bytes decoded";
  }
}

TEST(WalRecordTest, SegmentNameRoundtrip) {
  const std::string name = WalSegmentName(0x1Bu);
  uint64_t seq = 0;
  ASSERT_TRUE(ParseWalSegmentName(name, &seq));
  EXPECT_EQ(seq, 0x1Bu);
  EXPECT_FALSE(ParseWalSegmentName("CHECKPOINT-0000.ckpt", &seq));
  EXPECT_FALSE(ParseWalSegmentName("WAL-zzz.log", &seq));
}

TEST(WalTest, AppendAndReplayRoundtrip) {
  const std::string dir = MakeTempDir("append_replay");
  FaultInjector faults;
  ManualClock clock;
  Wal wal(dir, 1, &faults, &clock);
  ASSERT_TRUE(wal.Open().ok());

  const std::vector<Mutation> muts = SampleMutations();
  for (Version v = 1; v <= 3; ++v) {
    WalBatchRef ref;
    ref.version = v;
    ref.members.emplace_back(0, &muts);
    ASSERT_TRUE(wal.AppendBatchAndSync(ref).ok());
  }
  EXPECT_FALSE(wal.dead());
  EXPECT_EQ(wal.GetStats().appends, 3);
  EXPECT_EQ(wal.GetStats().syncs, 3);

  std::vector<Version> seen;
  Result<WalReplayResult> replay =
      ReplayWalDir(dir, 0, [&](const WalBatch& batch) {
        seen.push_back(batch.version);
        EXPECT_EQ(batch.members.size(), 1u);
        ExpectMutationsEqual(batch.members[0].mutations, muts);
        return Status::OK();
      });
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_EQ(seen, (std::vector<Version>{1, 2, 3}));
  EXPECT_EQ(replay->last_version, 3);
  EXPECT_EQ(replay->records_applied, 3);
  EXPECT_EQ(replay->records_skipped, 0);
  EXPECT_FALSE(replay->truncated);

  // from_version skips covered records (checkpoint idempotence).
  seen.clear();
  replay = ReplayWalDir(dir, 2, [&](const WalBatch& batch) {
    seen.push_back(batch.version);
    return Status::OK();
  });
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(seen, (std::vector<Version>{3}));
  EXPECT_EQ(replay->records_skipped, 2);
}

TEST(WalTest, RollSegmentRetiresCoveredSegments) {
  const std::string dir = MakeTempDir("roll");
  FaultInjector faults;
  ManualClock clock;
  Wal wal(dir, 1, &faults, &clock);
  ASSERT_TRUE(wal.Open().ok());

  std::vector<Mutation> muts;
  Mutation set;
  set.type = Mutation::Type::kSet;
  set.key = "k";
  set.value = "v";
  muts.push_back(set);
  for (Version v = 1; v <= 3; ++v) {
    WalBatchRef ref;
    ref.version = v;
    ref.members.emplace_back(0, &muts);
    ASSERT_TRUE(wal.AppendBatchAndSync(ref).ok());
  }
  EXPECT_GT(wal.CurrentSegmentBytes(), 0);
  // Checkpoint at version 3 covers segment 1 entirely: it is deleted.
  ASSERT_TRUE(wal.RollSegment(3).ok());
  EXPECT_EQ(wal.CurrentSegmentBytes(), 0);
  EXPECT_FALSE(FileExists(dir + "/" + WalSegmentName(1)));
  EXPECT_TRUE(FileExists(dir + "/" + WalSegmentName(2)));
  EXPECT_EQ(wal.GetStats().segments_deleted, 1);

  WalBatchRef ref;
  ref.version = 4;
  ref.members.emplace_back(0, &muts);
  ASSERT_TRUE(wal.AppendBatchAndSync(ref).ok());

  std::vector<Version> seen;
  Result<WalReplayResult> replay =
      ReplayWalDir(dir, 3, [&](const WalBatch& batch) {
        seen.push_back(batch.version);
        return Status::OK();
      });
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(seen, (std::vector<Version>{4}));
  EXPECT_EQ(replay->max_segment_seq, 2u);
}

TEST(WalTest, TornWriteKillsWalAndReplayTruncates) {
  const std::string dir = MakeTempDir("torn");
  FaultPlan plan;
  plan.AddDisk(DiskFault::TornWrite(/*at_op=*/2));
  ManualClock clock;
  FaultInjector faults(FaultInjector::Config{}, plan, &clock);
  Wal wal(dir, 1, &faults, &clock);
  ASSERT_TRUE(wal.Open().ok());

  std::vector<Mutation> muts;
  Mutation set;
  set.type = Mutation::Type::kSet;
  set.key = "key";
  set.value = "value";
  muts.push_back(set);

  WalBatchRef ref;
  ref.version = 1;
  ref.members.emplace_back(0, &muts);
  ASSERT_TRUE(wal.AppendBatchAndSync(ref).ok());
  ref.version = 2;
  EXPECT_FALSE(wal.AppendBatchAndSync(ref).ok());
  EXPECT_TRUE(wal.dead());
  EXPECT_EQ(faults.counts().torn_writes, 1);
  // Dead WAL rejects everything.
  ref.version = 3;
  EXPECT_FALSE(wal.AppendBatchAndSync(ref).ok());

  std::vector<Version> seen;
  Result<WalReplayResult> replay =
      ReplayWalDir(dir, 0, [&](const WalBatch& batch) {
        seen.push_back(batch.version);
        return Status::OK();
      });
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(seen, (std::vector<Version>{1}));
  EXPECT_TRUE(replay->truncated);
  EXPECT_GT(replay->truncated_bytes, 0);

  // Truncation is idempotent: a second replay sees a clean log.
  replay = ReplayWalDir(dir, 0, [&](const WalBatch&) { return Status::OK(); });
  ASSERT_TRUE(replay.ok());
  EXPECT_FALSE(replay->truncated);
  EXPECT_EQ(replay->records_applied, 1);
}

TEST(WalTest, CorruptionKillsWalAndReplayTruncates) {
  const std::string dir = MakeTempDir("corrupt");
  FaultPlan plan;
  plan.AddDisk(DiskFault::Corruption(/*at_op=*/1, /*corrupt_offset=*/40));
  ManualClock clock;
  FaultInjector faults(FaultInjector::Config{}, plan, &clock);
  Wal wal(dir, 1, &faults, &clock);
  ASSERT_TRUE(wal.Open().ok());

  std::vector<Mutation> muts;
  Mutation set;
  set.type = Mutation::Type::kSet;
  set.key = "key";
  set.value = "value";
  muts.push_back(set);
  WalBatchRef ref;
  ref.version = 1;
  ref.members.emplace_back(0, &muts);
  EXPECT_FALSE(wal.AppendBatchAndSync(ref).ok());
  EXPECT_TRUE(wal.dead());
  EXPECT_EQ(faults.counts().corrupted_writes, 1);

  Result<WalReplayResult> replay =
      ReplayWalDir(dir, 0, [&](const WalBatch&) { return Status::OK(); });
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records_applied, 0);
  EXPECT_TRUE(replay->truncated);
}

TEST(WalTest, FsyncStallSleepsOnClusterClockAndSurvives) {
  const std::string dir = MakeTempDir("stall");
  FaultPlan plan;
  plan.AddDisk(DiskFault::FsyncStall(/*at_op=*/1, /*stall_millis=*/750));
  ManualClock clock(1000);
  FaultInjector faults(FaultInjector::Config{}, plan, &clock);
  Wal wal(dir, 1, &faults, &clock);
  ASSERT_TRUE(wal.Open().ok());

  std::vector<Mutation> muts;
  Mutation set;
  set.type = Mutation::Type::kSet;
  set.key = "k";
  set.value = "v";
  muts.push_back(set);
  WalBatchRef ref;
  ref.version = 1;
  ref.members.emplace_back(0, &muts);
  ASSERT_TRUE(wal.AppendBatchAndSync(ref).ok());
  EXPECT_FALSE(wal.dead());
  EXPECT_EQ(clock.NowMillis(), 1750);
  EXPECT_EQ(faults.counts().fsync_stall_millis, 750);
}

TEST(SegmentReaderTest, YieldsRecordsWithRawBytesAndOffsets) {
  const std::vector<Mutation> muts = SampleMutations();
  std::string data;
  std::vector<std::string> encoded;
  uint64_t prev = kNoPrevOffset;
  for (Version v = 1; v <= 3; ++v) {
    WalBatchRef ref;
    ref.version = v;
    ref.members.emplace_back(0, &muts);
    const uint64_t at = data.size();
    encoded.push_back(EncodeWalRecord(ref, prev));
    data += encoded.back();
    prev = at;
  }

  SegmentReader reader(data);
  SegmentReader::Record rec;
  uint64_t expected_offset = 0;
  for (Version v = 1; v <= 3; ++v) {
    ASSERT_TRUE(reader.Next(&rec)) << "record " << v;
    EXPECT_EQ(rec.batch.version, v);
    EXPECT_EQ(rec.offset, expected_offset);
    // The raw view is the exact framed bytes — what the log shipper
    // forwards verbatim to a standby.
    EXPECT_EQ(rec.raw, encoded[static_cast<size_t>(v - 1)]);
    expected_offset += rec.raw.size();
  }
  EXPECT_FALSE(reader.Next(&rec));
  EXPECT_TRUE(reader.status().ok());
  EXPECT_EQ(reader.offset(), data.size());
}

TEST(SegmentReaderTest, StopsAtFirstInvalidRecordAndReportsOffset) {
  const std::vector<Mutation> muts = SampleMutations();
  WalBatchRef ref;
  ref.version = 1;
  ref.members.emplace_back(0, &muts);
  std::string data = EncodeWalRecord(ref, kNoPrevOffset);
  const size_t second_at = data.size();
  ref.version = 2;
  data += EncodeWalRecord(ref, 0);
  // Flip a payload byte of the second record: the reader yields the first
  // and stops exactly at the second's header (the truncation point).
  data[second_at + kWalHeaderSize + 3] =
      static_cast<char>(data[second_at + kWalHeaderSize + 3] ^ 1);

  SegmentReader reader(data);
  SegmentReader::Record rec;
  ASSERT_TRUE(reader.Next(&rec));
  EXPECT_EQ(rec.batch.version, 1);
  EXPECT_FALSE(reader.Next(&rec));
  EXPECT_FALSE(reader.status().ok());
  EXPECT_EQ(reader.offset(), second_at);
}

TEST(WalTest, SyncToCoalescesCoveredSyncs) {
  const std::string dir = MakeTempDir("coalesce");
  FaultInjector faults;
  ManualClock clock;
  Wal wal(dir, 1, &faults, &clock);
  ASSERT_TRUE(wal.Open().ok());

  std::vector<Mutation> muts;
  Mutation set;
  set.type = Mutation::Type::kSet;
  set.key = "k";
  set.value = "v";
  muts.push_back(set);

  WalBatchRef r1;
  r1.version = 1;
  r1.members.emplace_back(0, &muts);
  Result<uint64_t> end1 = wal.AppendBatch(r1);
  ASSERT_TRUE(end1.ok());
  WalBatchRef r2;
  r2.version = 2;
  r2.members.emplace_back(0, &muts);
  Result<uint64_t> end2 = wal.AppendBatch(r2);
  ASSERT_TRUE(end2.ok());
  EXPECT_GT(*end2, *end1);
  // Appending alone fsyncs nothing.
  EXPECT_EQ(wal.GetStats().syncs, 0);

  // One fsync covers both batches; the narrower SyncTo afterwards is
  // already durable and issues no fsync of its own.
  ASSERT_TRUE(wal.SyncTo(*end2).ok());
  EXPECT_EQ(wal.GetStats().syncs, 1);
  EXPECT_EQ(wal.GetStats().fsyncs_coalesced, 0);
  ASSERT_TRUE(wal.SyncTo(*end1).ok());
  EXPECT_EQ(wal.GetStats().syncs, 1);
  EXPECT_EQ(wal.GetStats().fsyncs_coalesced, 1);

  std::vector<Version> seen;
  Result<WalReplayResult> replay =
      ReplayWalDir(dir, 0, [&](const WalBatch& batch) {
        seen.push_back(batch.version);
        return Status::OK();
      });
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(seen, (std::vector<Version>{1, 2}));
}

TEST(WalTest, ConcurrentAppendsRideAlongOneStalledFsync) {
  const std::string dir = MakeTempDir("coalesce_stall");
  FaultPlan plan;
  plan.AddDisk(DiskFault::FsyncStall(/*at_op=*/1, /*stall_millis=*/150));
  // SystemClock so the stall genuinely blocks the syncing thread while
  // the second append slips in behind it (ManualClock would advance
  // instantly and close the window).
  FaultInjector faults(FaultInjector::Config{}, plan,
                       SystemClock::Default());
  Wal wal(dir, 1, &faults, SystemClock::Default());
  ASSERT_TRUE(wal.Open().ok());

  std::vector<Mutation> muts;
  Mutation set;
  set.type = Mutation::Type::kSet;
  set.key = "k";
  set.value = "v";
  muts.push_back(set);

  WalBatchRef r1;
  r1.version = 1;
  r1.members.emplace_back(0, &muts);
  Result<uint64_t> end1 = wal.AppendBatch(r1);
  ASSERT_TRUE(end1.ok());
  std::thread syncer([&] { ASSERT_TRUE(wal.SyncTo(*end1).ok()); });
  // Append batch 2 while the stalled fsync is (very likely) in flight,
  // then wait for durability: whoever's fsync covers it, both batches
  // must replay, and at most two real fsyncs ever happen.
  WalBatchRef r2;
  r2.version = 2;
  r2.members.emplace_back(0, &muts);
  Result<uint64_t> end2 = wal.AppendBatch(r2);
  ASSERT_TRUE(end2.ok());
  ASSERT_TRUE(wal.SyncTo(*end2).ok());
  syncer.join();

  const Wal::Stats stats = wal.GetStats();
  EXPECT_GE(stats.syncs, 1);
  EXPECT_LE(stats.syncs, 2);
  EXPECT_EQ(stats.syncs == 1, stats.fsyncs_coalesced == 1);

  std::vector<Version> seen;
  Result<WalReplayResult> replay =
      ReplayWalDir(dir, 0, [&](const WalBatch& batch) {
        seen.push_back(batch.version);
        return Status::OK();
      });
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(seen, (std::vector<Version>{1, 2}));
}

TEST(WalTest, ReplayMissingDirIsEmpty) {
  Result<WalReplayResult> replay = ReplayWalDir(
      ::testing::TempDir() + "quick_wal_does_not_exist",
      0, [&](const WalBatch&) { return Status::OK(); });
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay->records_applied, 0);
  EXPECT_EQ(replay->segments_scanned, 0);
  EXPECT_EQ(replay->max_segment_seq, 0u);
}

}  // namespace
}  // namespace quick::fdb
