#include "fdb/replication.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/file_io.h"
#include "fdb/database.h"
#include "fdb/fault_injector.h"
#include "fdb/fault_plan.h"
#include "fdb/wal.h"

namespace quick::fdb {
namespace {

std::string MakeTempDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "quick_replication_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<Mutation> OneSet(const std::string& key, const std::string& value) {
  Mutation m;
  m.type = Mutation::Type::kSet;
  m.key = key;
  m.value = value;
  return {m};
}

/// A framed WAL record at `version` — what a log shipper would forward.
std::string MakeFrame(Version version, const std::vector<Mutation>& muts) {
  WalBatchRef ref;
  ref.version = version;
  ref.members.emplace_back(0, &muts);
  return EncodeWalRecord(ref, kNoPrevOffset);
}

// ---------------------------------------------------------------------------
// FencingService

TEST(FencingServiceTest, EpochLifecyclePersistsAcrossReload) {
  const std::string dir = MakeTempDir("fencing");
  const std::string path = dir + "/MANIFEST";
  {
    FencingService fencing(path);
    ASSERT_TRUE(fencing.Load().ok());  // missing manifest = fresh group
    EXPECT_EQ(fencing.current_epoch(), 0u);

    Result<uint64_t> epoch = fencing.BeginEpoch("region0");
    ASSERT_TRUE(epoch.ok());
    EXPECT_EQ(*epoch, 1u);
    EXPECT_EQ(fencing.primary_region(), "region0");
    EXPECT_FALSE(fencing.sealed());

    // Only the owning region under the current epoch may ack.
    EXPECT_TRUE(fencing.AckFence(1, "region0", 5).ok());
    EXPECT_TRUE(fencing.AckFence(1, "region0", 3).ok());  // max, no regress
    EXPECT_EQ(fencing.acked_version(), 5);
    EXPECT_EQ(fencing.AckFence(1, "region1", 6).code(),
              StatusCode::kFailedPrecondition);
    EXPECT_EQ(fencing.AckFence(2, "region0", 6).code(),
              StatusCode::kFailedPrecondition);

    // An unsealed epoch blocks the next one.
    EXPECT_EQ(fencing.BeginEpoch("region1").status().code(),
              StatusCode::kFailedPrecondition);

    ASSERT_TRUE(fencing.SealEpoch().ok());
    ASSERT_TRUE(fencing.SealEpoch().ok());  // idempotent
    EXPECT_TRUE(fencing.sealed());
    EXPECT_EQ(fencing.SealedAckedVersion(1), 5);
    // Invariant 17: nothing is acknowledged under a sealed epoch.
    EXPECT_EQ(fencing.AckFence(1, "region0", 7).code(),
              StatusCode::kFailedPrecondition);

    Result<uint64_t> next = fencing.BeginEpoch("region1");
    ASSERT_TRUE(next.ok());
    EXPECT_EQ(*next, 2u);
    // The acked floor carries over: acked history never regresses.
    EXPECT_EQ(fencing.acked_version(), 5);
  }

  FencingService reloaded(path);
  ASSERT_TRUE(reloaded.Load().ok());
  EXPECT_EQ(reloaded.current_epoch(), 2u);
  EXPECT_EQ(reloaded.primary_region(), "region1");
  EXPECT_FALSE(reloaded.sealed());
  EXPECT_EQ(reloaded.acked_version(), 5);
  EXPECT_EQ(reloaded.SealedAckedVersion(1), 5);
}

TEST(FencingServiceTest, ControlPartitionMakesAcksUnavailable) {
  const std::string dir = MakeTempDir("fencing_partition");
  FencingService fencing(dir + "/MANIFEST");
  ASSERT_TRUE(fencing.Load().ok());
  ASSERT_TRUE(fencing.BeginEpoch("region0").ok());

  fencing.SetPartitioned("region0", true);
  EXPECT_TRUE(fencing.IsPartitioned("region0"));
  // kUnavailable, not kFailedPrecondition: the region still owns the
  // epoch, it just cannot prove it — the primary demotes the batch but
  // keeps serving.
  EXPECT_EQ(fencing.AckFence(1, "region0", 1).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(fencing.acked_version(), 0);

  fencing.SetPartitioned("region0", false);
  EXPECT_TRUE(fencing.AckFence(1, "region0", 1).ok());
  EXPECT_EQ(fencing.acked_version(), 1);
}

TEST(FencingServiceTest, CorruptManifestRefusesToLoad) {
  const std::string dir = MakeTempDir("fencing_corrupt");
  const std::string path = dir + "/MANIFEST";
  ASSERT_TRUE(AtomicWriteFile(path, "not a manifest").ok());
  FencingService fencing(path);
  EXPECT_EQ(fencing.Load().code(), StatusCode::kInternal);
}

// ---------------------------------------------------------------------------
// ReplicationLink

TEST(ReplicationLinkTest, ScheduledFaultsShapeDelivery) {
  ManualClock clock(1000);
  FaultPlan plan;
  plan.AddLink(LinkFault::Drop(1))
      .AddLink(LinkFault::Duplicate(2))
      .AddLink(LinkFault::Delay(3, 25))
      .AddLink(LinkFault::Partition(4));
  FaultInjector faults(FaultInjector::Config{}, plan, &clock);
  ReplicationLink link(&faults, &clock);

  EXPECT_EQ(link.Transfer(100), 0);  // dropped
  EXPECT_EQ(link.Transfer(100), 2);  // duplicated
  const int64_t before = clock.NowMillis();
  EXPECT_EQ(link.Transfer(100), 1);  // delayed but delivered
  EXPECT_GE(clock.NowMillis(), before + 25);
  EXPECT_EQ(link.Transfer(100), 0);  // partition fires...
  EXPECT_TRUE(link.partitioned());
  EXPECT_EQ(link.Transfer(100), 0);  // ...and is sticky
  link.SetPartitioned(false);
  EXPECT_EQ(link.Transfer(100), 1);

  const ReplicationLink::Stats stats = link.stats();
  EXPECT_EQ(stats.sends, 6);
  EXPECT_EQ(stats.dropped, 3);
  EXPECT_EQ(stats.duplicated, 1);
  EXPECT_EQ(stats.delivered, 4);  // 2 (duplicate) + delayed + healed
}

// ---------------------------------------------------------------------------
// ReplicaApplier

TEST(ReplicaApplierTest, AppliesInOrderSkipsDuplicatesRecoversOnRestart) {
  const std::string dir = MakeTempDir("applier_order");
  ReplicaApplier::Options opts;
  opts.dir = dir;
  opts.region = "region1";
  const std::string f1 = MakeFrame(1, OneSet("a", "1"));
  const std::string f2 = MakeFrame(2, OneSet("b", "2"));
  {
    ReplicaApplier applier(opts);
    ASSERT_TRUE(applier.Open().ok());
    EXPECT_EQ(applier.applied_version(), 0);

    ASSERT_TRUE(applier.ApplyFrame(1, f1).ok());
    EXPECT_EQ(applier.applied_version(), 1);
    // A byte-identical duplicate (re-ship after a dropped ack) is verified
    // and skipped.
    ASSERT_TRUE(applier.ApplyFrame(1, f1).ok());
    EXPECT_EQ(applier.applied_version(), 1);
    ASSERT_TRUE(applier.ApplyFrame(1, f2).ok());
    EXPECT_EQ(applier.applied_version(), 2);
    EXPECT_FALSE(applier.halted());

    const ReplicaApplier::Stats stats = applier.stats();
    EXPECT_EQ(stats.frames_applied, 2);
    EXPECT_EQ(stats.frames_skipped, 1);
    ASSERT_TRUE(applier.Sync().ok());
    ASSERT_TRUE(applier.Close().ok());
  }

  // A replica restart recovers its applied position from its own log.
  ReplicaApplier revived(opts);
  ASSERT_TRUE(revived.Open().ok());
  EXPECT_EQ(revived.applied_version(), 2);
  ASSERT_TRUE(revived.ApplyFrame(1, MakeFrame(3, OneSet("c", "3"))).ok());
  EXPECT_EQ(revived.applied_version(), 3);
}

TEST(ReplicaApplierTest, VersionGapHaltsWithDivergenceEvent) {
  const std::string dir = MakeTempDir("applier_gap");
  std::vector<ReplicationEvent> events;
  ReplicaApplier::Options opts;
  opts.dir = dir;
  opts.region = "region1";
  opts.on_event = [&](const ReplicationEvent& e) { events.push_back(e); };
  ReplicaApplier applier(opts);
  ASSERT_TRUE(applier.Open().ok());

  ASSERT_TRUE(applier.ApplyFrame(1, MakeFrame(1, OneSet("a", "1"))).ok());
  // Version 3 without 2: invariant 16 says halt, never fork.
  const Status st = applier.ApplyFrame(1, MakeFrame(3, OneSet("c", "3")));
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_TRUE(applier.halted());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, ReplicationEvent::Kind::kReplicaDivergence);
  EXPECT_EQ(events[0].region, "region1");

  // A halted replica refuses everything afterwards.
  EXPECT_EQ(applier.ApplyFrame(1, MakeFrame(2, OneSet("b", "2"))).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(applier.applied_version(), 1);
}

TEST(ReplicaApplierTest, ByteDivergenceAtKnownVersionHalts) {
  const std::string dir = MakeTempDir("applier_fork");
  std::vector<ReplicationEvent> events;
  ReplicaApplier::Options opts;
  opts.dir = dir;
  opts.region = "region2";
  opts.on_event = [&](const ReplicationEvent& e) { events.push_back(e); };
  ReplicaApplier applier(opts);
  ASSERT_TRUE(applier.Open().ok());

  ASSERT_TRUE(applier.ApplyFrame(1, MakeFrame(1, OneSet("a", "1"))).ok());
  // The same version re-shipped with different (but CRC-valid) bytes is a
  // forked history, not a duplicate.
  const Status st =
      applier.ApplyFrame(1, MakeFrame(1, OneSet("a", "DIFFERENT")));
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_TRUE(applier.halted());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, ReplicationEvent::Kind::kReplicaDivergence);
}

TEST(ReplicaApplierTest, CorruptFrameHalts) {
  const std::string dir = MakeTempDir("applier_corrupt");
  ReplicaApplier::Options opts;
  opts.dir = dir;
  opts.region = "region1";
  ReplicaApplier applier(opts);
  ASSERT_TRUE(applier.Open().ok());

  std::string frame = MakeFrame(1, OneSet("a", "1"));
  frame[kWalHeaderSize + 1] = static_cast<char>(frame[kWalHeaderSize + 1] ^ 1);
  EXPECT_EQ(applier.ApplyFrame(1, frame).code(), StatusCode::kInternal);
  EXPECT_TRUE(applier.halted());
}

TEST(ReplicaApplierTest, StaleEpochRefusedWithoutHalting) {
  const std::string dir = MakeTempDir("applier_stale");
  ReplicaApplier::Options opts;
  opts.dir = dir;
  opts.region = "region1";
  ReplicaApplier applier(opts);
  ASSERT_TRUE(applier.Open().ok());

  ASSERT_TRUE(applier.ApplyFrame(2, MakeFrame(1, OneSet("a", "1"))).ok());
  // A zombie primary shipping under the sealed epoch is refused — but the
  // replica stays healthy for the real primary.
  EXPECT_EQ(applier.ApplyFrame(1, MakeFrame(2, OneSet("b", "2"))).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(applier.halted());
  ASSERT_TRUE(applier.ApplyFrame(2, MakeFrame(2, OneSet("b", "2"))).ok());
  EXPECT_EQ(applier.applied_version(), 2);
}

TEST(ReplicaApplierTest, CheckpointInstallJumpsApplied) {
  const std::string dir = MakeTempDir("applier_ckpt");
  ReplicaApplier::Options opts;
  opts.dir = dir;
  opts.region = "region1";
  ReplicaApplier applier(opts);
  ASSERT_TRUE(applier.Open().ok());

  ASSERT_TRUE(applier.InstallCheckpoint(1, 10, "checkpoint-bytes").ok());
  EXPECT_EQ(applier.applied_version(), 10);
  EXPECT_EQ(applier.stats().checkpoints_installed, 1);
  // Applying resumes right after the checkpoint version.
  ASSERT_TRUE(applier.ApplyFrame(1, MakeFrame(11, OneSet("k", "v"))).ok());
  EXPECT_EQ(applier.applied_version(), 11);
  // An older checkpoint is a no-op, not a rollback.
  ASSERT_TRUE(applier.InstallCheckpoint(1, 5, "stale").ok());
  EXPECT_EQ(applier.applied_version(), 11);
}

// ---------------------------------------------------------------------------
// LogShipper

struct ShipperRig {
  explicit ShipperRig(const std::string& tag, FaultPlan link_plan = {},
                      int64_t checkpoint_interval_bytes = 0,
                      std::function<Status(Version)> fence = nullptr)
      : clock(1000),
        link_faults(FaultInjector::Config{}, link_plan, &clock),
        link(&link_faults, &clock) {
    const std::string root = MakeTempDir("shipper_" + tag);
    Database::Options opts;
    opts.clock = &clock;
    opts.durability.enable_wal = true;
    opts.durability.dir = root + "/primary";
    opts.durability.checkpoint_interval_bytes = checkpoint_interval_bytes;
    opts.durability.commit_fence = std::move(fence);
    primary = std::make_unique<Database>("primary", opts);

    ReplicaApplier::Options aopts;
    aopts.dir = root + "/follower";
    aopts.region = "region1";
    follower = std::make_unique<ReplicaApplier>(std::move(aopts));
    EXPECT_TRUE(follower->Open().ok());
    shipper = std::make_unique<LogShipper>(primary.get(), follower.get(),
                                           &link, /*epoch=*/1);
  }

  void Commit(const std::string& key, const std::string& value) {
    Transaction t = primary->CreateTransaction();
    t.Set(key, value);
    ASSERT_TRUE(t.Commit().ok());
  }

  ManualClock clock;
  FaultInjector link_faults;
  ReplicationLink link;
  std::unique_ptr<Database> primary;
  std::unique_ptr<ReplicaApplier> follower;
  std::unique_ptr<LogShipper> shipper;
};

TEST(LogShipperTest, ShipsThePublishedLogInOrder) {
  ShipperRig rig("basic");
  rig.Commit("a", "1");
  rig.Commit("b", "2");
  rig.Commit("c", "3");
  ASSERT_EQ(rig.primary->LastCommittedVersion(), 3);

  ASSERT_TRUE(rig.shipper->PumpOnce().ok());
  EXPECT_EQ(rig.follower->applied_version(), 3);
  EXPECT_EQ(rig.shipper->stats().frames_shipped, 3);
  // An idle pump ships nothing.
  ASSERT_TRUE(rig.shipper->PumpOnce().ok());
  EXPECT_EQ(rig.shipper->stats().frames_shipped, 3);
  // New traffic resumes from the remembered position.
  rig.Commit("d", "4");
  ASSERT_TRUE(rig.shipper->PumpOnce().ok());
  EXPECT_EQ(rig.follower->applied_version(), 4);
}

TEST(LogShipperTest, DropStallsTheStreamThenResumes) {
  FaultPlan plan;
  plan.AddLink(LinkFault::Drop(2));
  ShipperRig rig("drop", plan);
  rig.Commit("a", "1");
  rig.Commit("b", "2");
  rig.Commit("c", "3");

  // Frame 2 is dropped: the shipper must stall there — shipping 3 before
  // 2 would be a version gap at the replica.
  ASSERT_TRUE(rig.shipper->PumpOnce().ok());
  EXPECT_EQ(rig.follower->applied_version(), 1);
  EXPECT_FALSE(rig.follower->halted());
  // The retry re-ships from the same position.
  ASSERT_TRUE(rig.shipper->PumpOnce().ok());
  EXPECT_EQ(rig.follower->applied_version(), 3);
  EXPECT_FALSE(rig.follower->halted());
}

TEST(LogShipperTest, DuplicateDeliveryIsIdempotent) {
  FaultPlan plan;
  plan.AddLink(LinkFault::Duplicate(1));
  ShipperRig rig("duplicate", plan);
  rig.Commit("a", "1");
  rig.Commit("b", "2");

  ASSERT_TRUE(rig.shipper->PumpOnce().ok());
  EXPECT_EQ(rig.follower->applied_version(), 2);
  EXPECT_FALSE(rig.follower->halted());
  EXPECT_EQ(rig.follower->stats().frames_skipped, 1);
}

TEST(LogShipperTest, PartitionStallsUntilHealed) {
  ShipperRig rig("partition");
  rig.Commit("a", "1");
  rig.link.SetPartitioned(true);
  ASSERT_TRUE(rig.shipper->PumpOnce().ok());
  EXPECT_EQ(rig.follower->applied_version(), 0);
  rig.link.SetPartitioned(false);
  ASSERT_TRUE(rig.shipper->PumpOnce().ok());
  EXPECT_EQ(rig.follower->applied_version(), 1);
}

TEST(LogShipperTest, CheckpointCatchUpWhenPrimaryCompacted) {
  // A 1-byte auto-checkpoint interval: every commit checkpoints and
  // retires its segments, so a fresh follower can only catch up via the
  // shipped checkpoint.
  ShipperRig rig("ckpt", FaultPlan{}, /*checkpoint_interval_bytes=*/1);
  rig.Commit("a", "1");
  rig.Commit("b", "2");
  rig.Commit("c", "3");

  ASSERT_TRUE(rig.shipper->PumpOnce().ok());
  EXPECT_GE(rig.follower->stats().checkpoints_installed, 1);
  EXPECT_EQ(rig.follower->applied_version(),
            rig.primary->LastCommittedVersion());
}

TEST(LogShipperTest, UnacknowledgedCommitsNeverShip) {
  // The primary's fence is unreachable: every commit is demoted to
  // kCommitUnknownResult and never published — the zombie's appends are
  // durable on its own disk but must not reach a standby.
  ShipperRig rig("zombie", FaultPlan{}, 0,
                 [](Version) { return Status::Unavailable("partitioned"); });
  {
    Transaction t = rig.primary->CreateTransaction();
    t.Set("phantom", "w");
    EXPECT_EQ(t.Commit().code(), StatusCode::kCommitUnknownResult);
  }
  EXPECT_EQ(rig.primary->LastCommittedVersion(), 0);

  ASSERT_TRUE(rig.shipper->PumpOnce().ok());
  EXPECT_EQ(rig.follower->applied_version(), 0);
  EXPECT_EQ(rig.shipper->stats().frames_shipped, 0);
}

// ---------------------------------------------------------------------------
// ReplicationGroup

TEST(ReplicationGroupTest, FailoverPromotesCaughtUpStandby) {
  ManualClock clock(1000);
  std::vector<ReplicationEvent> events;
  ReplicationGroupOptions gopts;
  gopts.num_replicas = 2;
  gopts.dir = MakeTempDir("group_failover");
  gopts.db_options.clock = &clock;
  gopts.on_event = [&](const ReplicationEvent& e) { events.push_back(e); };
  ReplicationGroup group("c0", gopts);
  ASSERT_TRUE(group.Start().ok());
  EXPECT_EQ(group.epoch(), 1u);
  EXPECT_EQ(group.primary_region(), "region0");

  Database* old_primary = group.primary();
  for (int i = 0; i < 5; ++i) {
    Transaction t = old_primary->CreateTransaction();
    t.Set("k" + std::to_string(i), "v" + std::to_string(i));
    ASSERT_TRUE(t.Commit().ok());
  }
  ASSERT_TRUE(group.PumpOnce().ok());
  EXPECT_EQ(group.ReplicaAppliedVersion("region1"), 5);
  EXPECT_EQ(group.ReplicaAppliedVersion("region2"), 5);
  EXPECT_EQ(group.fencing()->acked_version(), 5);

  group.KillPrimary();
  {
    Transaction t = old_primary->CreateTransaction();
    t.Set("dead", "w");
    EXPECT_EQ(t.Commit().code(), StatusCode::kUnavailable);
  }

  Result<std::string> promoted = group.Failover();
  ASSERT_TRUE(promoted.ok()) << promoted.status();
  EXPECT_EQ(group.epoch(), 2u);
  EXPECT_EQ(group.primary_region(), *promoted);
  Database* new_primary = group.primary();
  ASSERT_NE(new_primary, nullptr);
  ASSERT_NE(new_primary, old_primary);

  // The promoted standby holds every acknowledged commit.
  EXPECT_EQ(new_primary->LastCommittedVersion(), 5);
  {
    Transaction t = new_primary->CreateTransaction();
    EXPECT_EQ(t.Get("k4").value().value_or(""), "v4");
  }
  // The retired zombie pointer stays valid and keeps refusing.
  {
    Transaction t = old_primary->CreateTransaction();
    t.Set("late", "w");
    EXPECT_EQ(t.Commit().code(), StatusCode::kUnavailable);
  }
  // New traffic replicates to the remaining standby under the new epoch.
  {
    Transaction t = new_primary->CreateTransaction();
    t.Set("k5", "v5");
    ASSERT_TRUE(t.Commit().ok());
  }
  ASSERT_TRUE(group.PumpOnce().ok());
  const std::string other = *promoted == "region1" ? "region2" : "region1";
  EXPECT_EQ(group.ReplicaAppliedVersion(other), 6);

  bool saw_promoted = false;
  for (const ReplicationEvent& e : events) {
    saw_promoted |= e.kind == ReplicationEvent::Kind::kPromoted;
  }
  EXPECT_TRUE(saw_promoted);
}

TEST(ReplicationGroupTest, StalePromotionRefusedUntilDrained) {
  ManualClock clock(1000);
  std::vector<ReplicationEvent> events;
  ReplicationGroupOptions gopts;
  gopts.num_replicas = 1;
  gopts.dir = MakeTempDir("group_refuse");
  gopts.db_options.clock = &clock;
  gopts.on_event = [&](const ReplicationEvent& e) { events.push_back(e); };
  ReplicationGroup group("c0", gopts);
  ASSERT_TRUE(group.Start().ok());

  // The standby never hears a byte; three commits get acked regardless.
  group.SetLinkPartitioned("region1", true);
  for (int i = 0; i < 3; ++i) {
    Transaction t = group.primary()->CreateTransaction();
    t.Set("k" + std::to_string(i), "v");
    ASSERT_TRUE(t.Commit().ok());
  }
  (void)group.PumpOnce();
  EXPECT_EQ(group.ReplicaAppliedVersion("region1"), 0);
  EXPECT_EQ(group.fencing()->acked_version(), 3);

  // Without the drain, promoting the stale standby would lose the three
  // acknowledged commits — refused (invariant 17's guard).
  ReplicationGroup::FailoverOptions no_drain;
  no_drain.drain_from_old_region = false;
  Result<std::string> refused = group.Failover(no_drain);
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  bool saw_refused = false;
  for (const ReplicationEvent& e : events) {
    saw_refused |= e.kind == ReplicationEvent::Kind::kPromotionRefused;
  }
  EXPECT_TRUE(saw_refused);

  // The default drain reads the failed region's durable store directly
  // and catches the target up to the sealed acked version.
  Result<std::string> promoted = group.Failover();
  ASSERT_TRUE(promoted.ok()) << promoted.status();
  EXPECT_EQ(*promoted, "region1");
  EXPECT_EQ(group.primary()->LastCommittedVersion(), 3);
  Transaction t = group.primary()->CreateTransaction();
  EXPECT_EQ(t.Get("k2").value().value_or(""), "v");
}

TEST(ReplicationGroupTest, PartitionedZombieIsFencedAndCanRejoin) {
  ManualClock clock(1000);
  ReplicationGroupOptions gopts;
  gopts.num_replicas = 1;
  gopts.dir = MakeTempDir("group_zombie");
  gopts.db_options.clock = &clock;
  ReplicationGroup group("c0", gopts);
  ASSERT_TRUE(group.Start().ok());

  Database* zombie = group.primary();
  for (int i = 0; i < 3; ++i) {
    Transaction t = zombie->CreateTransaction();
    t.Set("k" + std::to_string(i), "v");
    ASSERT_TRUE(t.Commit().ok());
  }
  ASSERT_TRUE(group.PumpOnce().ok());
  ASSERT_EQ(group.ReplicaAppliedVersion("region1"), 3);

  // Control partition: the primary keeps serving but no ack can land.
  group.SetControlPartitioned("region0", true);
  {
    Transaction t = zombie->CreateTransaction();
    t.Set("phantom1", "w");
    EXPECT_EQ(t.Commit().code(), StatusCode::kCommitUnknownResult);
  }
  {
    Transaction t = zombie->CreateTransaction();
    t.Set("phantom2", "w");
    EXPECT_EQ(t.Commit().code(), StatusCode::kCommitUnknownResult);
  }
  EXPECT_EQ(zombie->LastCommittedVersion(), 3);  // unpublished
  (void)group.PumpOnce();
  EXPECT_EQ(group.ReplicaAppliedVersion("region1"), 3);  // never shipped

  Result<std::string> promoted = group.Failover();
  ASSERT_TRUE(promoted.ok()) << promoted.status();
  EXPECT_EQ(*promoted, "region1");
  Database* new_primary = group.primary();
  // Exactly the acknowledged history survives; the phantoms' clients
  // only ever saw kCommitUnknownResult, never success.
  EXPECT_EQ(new_primary->LastCommittedVersion(), 3);
  {
    Transaction t = new_primary->CreateTransaction();
    EXPECT_EQ(t.Get("phantom1").value().has_value(), false);
    EXPECT_EQ(t.Get("k2").value().value_or(""), "v");
  }

  // The zombie is still partitioned and still taking traffic — every
  // commit stays unconfirmed.
  {
    Transaction t = zombie->CreateTransaction();
    t.Set("phantom3", "w");
    EXPECT_EQ(t.Commit().code(), StatusCode::kCommitUnknownResult);
  }
  // The partition heals; the zombie's next ack hits the sealed epoch,
  // which refuses it and fences the region for good.
  group.SetControlPartitioned("region0", false);
  {
    Transaction t = zombie->CreateTransaction();
    t.Set("phantom4", "w");
    EXPECT_EQ(t.Commit().code(), StatusCode::kCommitUnknownResult);
  }
  {
    Transaction t = zombie->CreateTransaction();
    t.Set("after-fence", "w");
    EXPECT_EQ(t.Commit().code(), StatusCode::kUnavailable);
  }

  // The fenced region re-enrols as an empty standby and catches up.
  ASSERT_TRUE(group.RejoinAsFollower("region0").ok());
  {
    Transaction t = new_primary->CreateTransaction();
    t.Set("k3", "v");
    ASSERT_TRUE(t.Commit().ok());
  }
  for (int i = 0; i < 3 && group.ReplicaAppliedVersion("region0") <
                               new_primary->LastCommittedVersion();
       ++i) {
    ASSERT_TRUE(group.PumpOnce().ok());
  }
  EXPECT_EQ(group.ReplicaAppliedVersion("region0"),
            new_primary->LastCommittedVersion());
  EXPECT_FALSE(group.ReplicaHalted("region0"));
}

TEST(ReplicationGroupTest, RestartResumesEpochAndState) {
  ManualClock clock(1000);
  ReplicationGroupOptions gopts;
  gopts.num_replicas = 1;
  gopts.dir = MakeTempDir("group_restart");
  gopts.db_options.clock = &clock;
  {
    ReplicationGroup group("c0", gopts);
    ASSERT_TRUE(group.Start().ok());
    Transaction t = group.primary()->CreateTransaction();
    t.Set("persisted", "yes");
    ASSERT_TRUE(t.Commit().ok());
    ASSERT_TRUE(group.PumpOnce().ok());
  }
  {
    // A clean restart resumes the same epoch with the same primary.
    ReplicationGroup group("c0", gopts);
    ASSERT_TRUE(group.Start().ok());
    EXPECT_EQ(group.epoch(), 1u);
    EXPECT_EQ(group.primary_region(), "region0");
    Transaction t = group.primary()->CreateTransaction();
    EXPECT_EQ(t.Get("persisted").value().value_or(""), "yes");
    // A seal with no completed promotion (crash mid-failover) re-opens a
    // fresh epoch on the sealed region at the next restart.
    ASSERT_TRUE(group.fencing()->SealEpoch().ok());
  }
  {
    ReplicationGroup group("c0", gopts);
    ASSERT_TRUE(group.Start().ok());
    EXPECT_EQ(group.epoch(), 2u);
    EXPECT_EQ(group.primary_region(), "region0");
    Transaction t = group.primary()->CreateTransaction();
    t.Set("post-reseal", "yes");
    EXPECT_TRUE(t.Commit().ok());
  }
}

}  // namespace
}  // namespace quick::fdb
