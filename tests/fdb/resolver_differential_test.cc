// Differential test: the interval-map resolver must give verdicts
// identical to the legacy linear-scan ConflictTracker on randomized
// commit/query/prune schedules — for every read version at or above the
// prune floor, which is the regime the Database guarantees (older read
// versions are rejected with kTransactionTooOld before reaching the
// resolver).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "fdb/conflict_tracker.h"
#include "fdb/interval_resolver.h"

namespace quick::fdb {
namespace {

std::string RandomKey(Random& rng, int space) {
  // Two-byte keys over a small alphabet so ranges overlap often.
  std::string k;
  k.push_back(static_cast<char>('a' + rng.Uniform(space)));
  k.push_back(static_cast<char>('a' + rng.Uniform(space)));
  return k;
}

KeyRange RandomRange(Random& rng, int space) {
  std::string a = RandomKey(rng, space);
  std::string b = RandomKey(rng, space);
  if (b < a) std::swap(a, b);
  if (a == b) b.push_back('\x01');  // non-empty range
  return KeyRange{a, b};
}

std::vector<KeyRange> RandomRanges(Random& rng, int space, int max_ranges) {
  std::vector<KeyRange> out;
  const int n = 1 + static_cast<int>(rng.Uniform(max_ranges));
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(RandomRange(rng, space));
  return out;
}

void RunSchedule(uint64_t seed) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  Random rng(seed);
  ConflictTracker legacy;
  IntervalResolver interval;

  Version next_version = 1;
  Version prune_floor = 0;
  constexpr int kSpace = 6;
  constexpr int kOps = 2000;

  for (int op = 0; op < kOps; ++op) {
    const uint64_t roll = rng.Uniform(100);
    if (roll < 45) {
      // Commit: identical write ranges into both, at a fresh version.
      std::vector<KeyRange> writes = RandomRanges(rng, kSpace, 4);
      legacy.AddCommit(next_version, writes);
      interval.AddCommit(next_version, writes);
      ++next_version;
    } else if (roll < 95) {
      // Query at a read version in the checkable window.
      const Version span = next_version - prune_floor;
      const Version read_version =
          prune_floor + static_cast<Version>(rng.Uniform(
                            static_cast<uint64_t>(span) + 1));
      std::vector<KeyRange> reads = RandomRanges(rng, kSpace, 4);
      EXPECT_EQ(legacy.HasConflict(reads, read_version),
                interval.HasConflict(reads, read_version))
          << "verdict divergence at op " << op << " read_version "
          << read_version;
    } else if (next_version > prune_floor + 1) {
      // Prune both to a random floor inside the retained window.
      const Version span = next_version - 1 - prune_floor;
      prune_floor += static_cast<Version>(
          rng.Uniform(static_cast<uint64_t>(span)) + 1);
      legacy.Prune(prune_floor);
      interval.Prune(prune_floor);
      EXPECT_EQ(legacy.MinCheckableVersion(), interval.MinCheckableVersion());
    }
  }
}

TEST(ResolverDifferentialTest, IdenticalVerdictsAcrossSeeds) {
  for (uint64_t seed : {11u, 222u, 3333u, 44444u, 555555u, 6666666u}) {
    RunSchedule(seed);
  }
}

// Directed cases where interval splitting is easy to get wrong.
TEST(IntervalResolverTest, SplitPreservesOlderTails) {
  IntervalResolver r;
  r.AddCommit(10, {KeyRange{"b", "z"}});   // wide old interval
  r.AddCommit(20, {KeyRange{"d", "f"}});   // punches a hole
  // Tail [f, z) must still carry version 10, head [b, d) too.
  EXPECT_TRUE(r.HasConflict({KeyRange{"b", "c"}}, 5));
  EXPECT_FALSE(r.HasConflict({KeyRange{"b", "c"}}, 10));
  EXPECT_TRUE(r.HasConflict({KeyRange{"d", "e"}}, 10));
  EXPECT_FALSE(r.HasConflict({KeyRange{"d", "e"}}, 20));
  EXPECT_TRUE(r.HasConflict({KeyRange{"g", "h"}}, 5));
  EXPECT_FALSE(r.HasConflict({KeyRange{"g", "h"}}, 10));
}

TEST(IntervalResolverTest, PredecessorOverlapDetected) {
  IntervalResolver r;
  r.AddCommit(7, {KeyRange{"a", "m"}});
  // A read range starting inside [a, m) but after its start key must still
  // see the conflict (predecessor check).
  EXPECT_TRUE(r.HasConflict({KeyRange{"f", "g"}}, 3));
  EXPECT_FALSE(r.HasConflict({KeyRange{"m", "n"}}, 3));  // half-open end
}

TEST(IntervalResolverTest, PruneDropsOnlyStaleNodes) {
  IntervalResolver r;
  r.AddCommit(1, {KeyRange{"a", "b"}});
  r.AddCommit(2, {KeyRange{"c", "d"}});
  r.AddCommit(3, {KeyRange{"e", "f"}});
  EXPECT_EQ(r.NodeCount(), 3u);
  r.Prune(2);
  EXPECT_EQ(r.NodeCount(), 1u);
  EXPECT_EQ(r.MinCheckableVersion(), 2);
  EXPECT_TRUE(r.HasConflict({KeyRange{"e", "f"}}, 2));
  EXPECT_FALSE(r.HasConflict({KeyRange{"e", "f"}}, 3));
}

TEST(IntervalResolverTest, StaleHeapEntriesDoNotEraseNewerNodes) {
  IntervalResolver r;
  r.AddCommit(1, {KeyRange{"a", "z"}});
  // Rewrites the same start key at a newer version; the heap still holds a
  // (1, "a") entry that must not erase the version-5 node.
  r.AddCommit(5, {KeyRange{"a", "z"}});
  r.Prune(1);
  EXPECT_EQ(r.NodeCount(), 1u);
  EXPECT_TRUE(r.HasConflict({KeyRange{"m", "n"}}, 2));
}

}  // namespace
}  // namespace quick::fdb
