#include <gtest/gtest.h>

#include "fdb/database.h"

namespace quick::fdb {
namespace {

class KeySelectorTest : public ::testing::Test {
 protected:
  KeySelectorTest() : db_("sel") {
    Transaction txn = db_.CreateTransaction();
    for (const char* key : {"b", "d", "f", "h"}) {
      txn.Set(key, key);
    }
    EXPECT_TRUE(txn.Commit().ok());
  }

  std::optional<std::string> Resolve(const KeySelector& selector) {
    Transaction txn = db_.CreateTransaction();
    auto r = txn.GetKey(selector);
    EXPECT_TRUE(r.ok());
    return r.ok() ? *r : std::nullopt;
  }

  Database db_;
};

TEST_F(KeySelectorTest, FirstGreaterOrEqual) {
  EXPECT_EQ(Resolve(KeySelector::FirstGreaterOrEqual("d")).value(), "d");
  EXPECT_EQ(Resolve(KeySelector::FirstGreaterOrEqual("c")).value(), "d");
  EXPECT_EQ(Resolve(KeySelector::FirstGreaterOrEqual("a")).value(), "b");
  EXPECT_FALSE(Resolve(KeySelector::FirstGreaterOrEqual("z")).has_value());
}

TEST_F(KeySelectorTest, FirstGreaterThan) {
  EXPECT_EQ(Resolve(KeySelector::FirstGreaterThan("d")).value(), "f");
  EXPECT_EQ(Resolve(KeySelector::FirstGreaterThan("c")).value(), "d");
  EXPECT_FALSE(Resolve(KeySelector::FirstGreaterThan("h")).has_value());
}

TEST_F(KeySelectorTest, LastLessOrEqual) {
  EXPECT_EQ(Resolve(KeySelector::LastLessOrEqual("d")).value(), "d");
  EXPECT_EQ(Resolve(KeySelector::LastLessOrEqual("e")).value(), "d");
  EXPECT_EQ(Resolve(KeySelector::LastLessOrEqual("z")).value(), "h");
  EXPECT_FALSE(Resolve(KeySelector::LastLessOrEqual("a")).has_value());
}

TEST_F(KeySelectorTest, LastLessThan) {
  EXPECT_EQ(Resolve(KeySelector::LastLessThan("d")).value(), "b");
  EXPECT_EQ(Resolve(KeySelector::LastLessThan("e")).value(), "d");
  EXPECT_FALSE(Resolve(KeySelector::LastLessThan("b")).has_value());
}

TEST_F(KeySelectorTest, PositiveOffsetsStepForward) {
  KeySelector sel = KeySelector::FirstGreaterOrEqual("b");
  sel.offset = 3;
  EXPECT_EQ(Resolve(sel).value(), "f");
  sel.offset = 4;
  EXPECT_EQ(Resolve(sel).value(), "h");
  sel.offset = 5;
  EXPECT_FALSE(Resolve(sel).has_value());
}

TEST_F(KeySelectorTest, NegativeOffsetsStepBackward) {
  // Offset counts from the resolved base: LastLessOrEqual("h") is "h", so
  // -1 is one key before it.
  KeySelector sel = KeySelector::LastLessOrEqual("h");
  sel.offset = -1;
  EXPECT_EQ(Resolve(sel).value(), "f");
  sel.offset = -2;
  EXPECT_EQ(Resolve(sel).value(), "d");
  sel.offset = -3;
  EXPECT_EQ(Resolve(sel).value(), "b");
  sel.offset = -4;
  EXPECT_FALSE(Resolve(sel).has_value());
}

TEST_F(KeySelectorTest, ResolvesAgainstWriteBuffer) {
  Transaction txn = db_.CreateTransaction();
  txn.Set("e", "buffered");
  auto r = txn.GetKey(KeySelector::FirstGreaterThan("d"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().value(), "e");
}

TEST_F(KeySelectorTest, GetRangeSelectorHalfOpen) {
  Transaction txn = db_.CreateTransaction();
  auto kvs = txn.GetRangeSelector(KeySelector::FirstGreaterOrEqual("c"),
                                  KeySelector::FirstGreaterOrEqual("g"));
  ASSERT_TRUE(kvs.ok());
  ASSERT_EQ(kvs->size(), 2u);
  EXPECT_EQ((*kvs)[0].key, "d");
  EXPECT_EQ((*kvs)[1].key, "f");
}

TEST_F(KeySelectorTest, GetRangeSelectorInclusiveEnd) {
  Transaction txn = db_.CreateTransaction();
  auto kvs = txn.GetRangeSelector(KeySelector::FirstGreaterOrEqual("d"),
                                  KeySelector::FirstGreaterThan("f"));
  ASSERT_TRUE(kvs.ok());
  ASSERT_EQ(kvs->size(), 2u);
  EXPECT_EQ((*kvs)[1].key, "f");
}

TEST_F(KeySelectorTest, EmptySelectorRangeIsEmpty) {
  Transaction txn = db_.CreateTransaction();
  auto kvs = txn.GetRangeSelector(KeySelector::FirstGreaterOrEqual("z"),
                                  KeySelector::FirstGreaterOrEqual("g"));
  ASSERT_TRUE(kvs.ok());
  EXPECT_TRUE(kvs->empty());
}

TEST_F(KeySelectorTest, StrongResolutionConflictsWithInserts) {
  // Resolving a selector reads a key range; an insert into that range by
  // another transaction must abort this one.
  Transaction t1 = db_.CreateTransaction();
  ASSERT_TRUE(t1.GetKey(KeySelector::FirstGreaterOrEqual("c")).ok());  // "d"
  t1.Set("out", "x");

  Transaction t2 = db_.CreateTransaction();
  t2.Set("c2", "inserted before d");
  ASSERT_TRUE(t2.Commit().ok());

  EXPECT_TRUE(t1.Commit().IsNotCommitted());
}

TEST_F(KeySelectorTest, SnapshotResolutionDoesNotConflict) {
  Transaction t1 = db_.CreateTransaction();
  ASSERT_TRUE(
      t1.GetKey(KeySelector::FirstGreaterOrEqual("c"), /*snapshot=*/true)
          .ok());
  t1.Set("out", "x");
  Transaction t2 = db_.CreateTransaction();
  t2.Set("c2", "inserted");
  ASSERT_TRUE(t2.Commit().ok());
  EXPECT_TRUE(t1.Commit().ok());
}

}  // namespace
}  // namespace quick::fdb
