#include "fdb/conflict_tracker.h"

#include <gtest/gtest.h>

namespace quick::fdb {
namespace {

TEST(ConflictTrackerTest, NoCommitsNoConflict) {
  ConflictTracker t;
  EXPECT_FALSE(t.HasConflict({KeyRange::All()}, 0));
}

TEST(ConflictTrackerTest, ConflictWhenCommitAfterReadVersionIntersects) {
  ConflictTracker t;
  t.AddCommit(5, {KeyRange::Single("k")});
  EXPECT_TRUE(t.HasConflict({KeyRange::Single("k")}, 4));
  EXPECT_TRUE(t.HasConflict({KeyRange::Single("k")}, 0));
}

TEST(ConflictTrackerTest, NoConflictWhenReaderSawTheCommit) {
  ConflictTracker t;
  t.AddCommit(5, {KeyRange::Single("k")});
  EXPECT_FALSE(t.HasConflict({KeyRange::Single("k")}, 5));
  EXPECT_FALSE(t.HasConflict({KeyRange::Single("k")}, 6));
}

TEST(ConflictTrackerTest, NoConflictOnDisjointKeys) {
  ConflictTracker t;
  t.AddCommit(5, {KeyRange::Single("a")});
  EXPECT_FALSE(t.HasConflict({KeyRange::Single("b")}, 0));
}

TEST(ConflictTrackerTest, RangeIntersection) {
  ConflictTracker t;
  t.AddCommit(5, {KeyRange{"m", "p"}});
  EXPECT_TRUE(t.HasConflict({KeyRange{"a", "n"}}, 0));
  EXPECT_FALSE(t.HasConflict({KeyRange{"a", "m"}}, 0));  // half-open
  EXPECT_TRUE(t.HasConflict({KeyRange{"o", "z"}}, 0));
  EXPECT_FALSE(t.HasConflict({KeyRange{"p", "z"}}, 0));
}

TEST(ConflictTrackerTest, EmptyReadSetNeverConflicts) {
  ConflictTracker t;
  t.AddCommit(5, {KeyRange::All()});
  EXPECT_FALSE(t.HasConflict({}, 0));
}

TEST(ConflictTrackerTest, EmptyWriteSetNotTracked) {
  ConflictTracker t;
  t.AddCommit(5, {});
  EXPECT_EQ(t.TrackedCommitCount(), 0u);
  EXPECT_FALSE(t.HasConflict({KeyRange::All()}, 0));
}

TEST(ConflictTrackerTest, MultipleCommitsAnyMatchConflicts) {
  ConflictTracker t;
  t.AddCommit(3, {KeyRange::Single("a")});
  t.AddCommit(5, {KeyRange::Single("b")});
  t.AddCommit(7, {KeyRange::Single("c")});
  EXPECT_TRUE(t.HasConflict({KeyRange::Single("b")}, 4));
  EXPECT_FALSE(t.HasConflict({KeyRange::Single("b")}, 5));
  EXPECT_TRUE(t.HasConflict({KeyRange::Single("c")}, 5));
}

TEST(ConflictTrackerTest, PruneForgetsOldAndRaisesFloor) {
  ConflictTracker t;
  t.AddCommit(3, {KeyRange::Single("a")});
  t.AddCommit(6, {KeyRange::Single("b")});
  t.Prune(4);
  EXPECT_EQ(t.MinCheckableVersion(), 4);
  EXPECT_EQ(t.TrackedCommitCount(), 1u);
  // Commit at 6 still conflicts for read versions in the valid window.
  EXPECT_TRUE(t.HasConflict({KeyRange::Single("b")}, 5));
}

TEST(ConflictTrackerTest, PruneNeverLowersFloor) {
  ConflictTracker t;
  t.Prune(10);
  t.Prune(5);
  EXPECT_EQ(t.MinCheckableVersion(), 10);
}

}  // namespace
}  // namespace quick::fdb
