// Edge cases across the FDB simulator: pagination idioms, boundary keys,
// retry escalation, and GRV-cache interactions that the main suites don't
// pin down.

#include <gtest/gtest.h>

#include "common/clock.h"
#include "fdb/database.h"
#include "fdb/retry.h"

namespace quick::fdb {
namespace {

TEST(FdbEdgeTest, PagedScanWithKeyAfterSeesEveryKeyOnce) {
  Database db("page");
  {
    Transaction txn = db.CreateTransaction();
    for (int i = 0; i < 97; ++i) {
      char key[16];
      std::snprintf(key, sizeof(key), "k%03d", i);
      txn.Set(key, std::to_string(i));
    }
    ASSERT_TRUE(txn.Commit().ok());
  }
  // The CopyDatabaseData paging idiom: resume from KeyAfter(last).
  std::vector<std::string> seen;
  std::string cursor = "k";
  while (true) {
    Transaction txn = db.CreateTransaction();
    RangeOptions opts;
    opts.limit = 10;
    auto kvs = txn.GetRange(KeyRange{cursor, "l"}, opts);
    ASSERT_TRUE(kvs.ok());
    if (kvs->empty()) break;
    for (const KeyValue& kv : *kvs) seen.push_back(kv.key);
    cursor = KeyAfter(kvs->back().key);
  }
  ASSERT_EQ(seen.size(), 97u);
  for (size_t i = 1; i < seen.size(); ++i) {
    EXPECT_LT(seen[i - 1], seen[i]);
  }
}

TEST(FdbEdgeTest, EmptyKeyAndEmptyValue) {
  Database db("empty");
  Transaction txn = db.CreateTransaction();
  txn.Set("", "empty-key-value");
  txn.Set("k", "");
  ASSERT_TRUE(txn.Commit().ok());
  Transaction probe = db.CreateTransaction();
  EXPECT_EQ(probe.Get("").value().value(), "empty-key-value");
  auto v = probe.Get("k");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(v.value().has_value());
  EXPECT_TRUE(v.value()->empty());
}

TEST(FdbEdgeTest, ClearRangeOnEmptyDatabaseIsNoOp) {
  Database db("noop");
  Transaction txn = db.CreateTransaction();
  txn.ClearRange(KeyRange::All());
  EXPECT_TRUE(txn.Commit().ok());
}

TEST(FdbEdgeTest, OverlappingClearRangesCompose) {
  Database db("overlap");
  {
    Transaction txn = db.CreateTransaction();
    for (char c = 'a'; c <= 'f'; ++c) {
      txn.Set(std::string(1, c), "v");
    }
    ASSERT_TRUE(txn.Commit().ok());
  }
  Transaction txn = db.CreateTransaction();
  txn.ClearRange(KeyRange{"a", "d"});
  txn.ClearRange(KeyRange{"c", "f"});
  txn.Set("b", "resurrected");
  ASSERT_TRUE(txn.Commit().ok());
  Transaction probe = db.CreateTransaction();
  auto kvs = probe.GetRange(KeyRange::All());
  ASSERT_TRUE(kvs.ok());
  ASSERT_EQ(kvs->size(), 2u);
  EXPECT_EQ((*kvs)[0].key, "b");
  EXPECT_EQ((*kvs)[1].key, "f");
}

TEST(FdbEdgeTest, RetryBackoffEscalates) {
  ManualClock clock;
  Database::Options opts;
  opts.clock = &clock;
  Database db("backoff", opts);
  Transaction txn = db.CreateTransaction();
  // Repeated retryable errors must keep succeeding at OnError and the
  // transaction must stay usable afterwards.
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(txn.OnError(Status::NotCommitted()).ok()) << "attempt " << i;
  }
  txn.Set("k", "v");
  EXPECT_TRUE(txn.Commit().ok());
}

TEST(FdbEdgeTest, CausalReadRiskyStillReturnsLatestVersion) {
  Database db("risky");
  {
    Transaction txn = db.CreateTransaction();
    txn.Set("k", "v1");
    ASSERT_TRUE(txn.Commit().ok());
  }
  TransactionOptions topts;
  topts.causal_read_risky = true;
  Transaction txn = db.CreateTransaction(topts);
  EXPECT_EQ(txn.Get("k").value().value(), "v1");
}

TEST(FdbEdgeTest, SnapshotRangeReadIgnoresLaterInserts) {
  Database db("snap");
  {
    Transaction txn = db.CreateTransaction();
    txn.Set("m1", "x");
    ASSERT_TRUE(txn.Commit().ok());
  }
  Transaction reader = db.CreateTransaction();
  ASSERT_TRUE(reader.GetRange(KeyRange{"m", "n"}, {}, /*snapshot=*/true).ok());
  reader.Set("out", "1");
  {
    Transaction txn = db.CreateTransaction();
    txn.Set("m2", "new");
    ASSERT_TRUE(txn.Commit().ok());
  }
  EXPECT_TRUE(reader.Commit().ok());  // snapshot scan: no conflict
}

TEST(FdbEdgeTest, WriteThenReadRangeSeesBufferedWriteOnly) {
  Database db("ryw");
  Transaction txn = db.CreateTransaction();
  txn.Set("p1", "buffered");
  auto kvs = txn.GetRange(KeyRange::Prefix("p"));
  ASSERT_TRUE(kvs.ok());
  ASSERT_EQ(kvs->size(), 1u);
  EXPECT_EQ((*kvs)[0].value, "buffered");
}

TEST(FdbEdgeTest, TransactionSizeAccumulatesAcrossOps) {
  Database db("size");
  Transaction txn = db.CreateTransaction();
  const int64_t s0 = txn.Size();
  txn.Set("abc", "0123456789");
  EXPECT_GE(txn.Size() - s0, 13);
  txn.Atomic(AtomicOp::kAdd, "ctr", EncodeLittleEndian64(1));
  txn.ClearRange(KeyRange{"x", "y"});
  EXPECT_GT(txn.Size(), s0 + 13);
}

TEST(FdbEdgeTest, ConflictAfterResetIsIndependent) {
  Database db("reset");
  {
    Transaction t = db.CreateTransaction();
    t.Set("k", "v0");
    ASSERT_TRUE(t.Commit().ok());
  }
  Transaction t1 = db.CreateTransaction();
  ASSERT_TRUE(t1.Get("k").ok());
  t1.Set("out", "1");
  {
    Transaction t2 = db.CreateTransaction();
    t2.Set("k", "v1");
    ASSERT_TRUE(t2.Commit().ok());
  }
  ASSERT_TRUE(t1.Commit().IsNotCommitted());
  // After OnError + fresh read, the same logic commits.
  ASSERT_TRUE(t1.OnError(Status::NotCommitted()).ok());
  ASSERT_TRUE(t1.Get("k").ok());
  t1.Set("out", "2");
  EXPECT_TRUE(t1.Commit().ok());
}

TEST(FdbEdgeTest, ManyVersionsOfOneKeyReadCorrectly) {
  Database db("versions");
  std::vector<Version> versions;
  for (int i = 0; i < 50; ++i) {
    Transaction txn = db.CreateTransaction();
    txn.Set("hot", "v" + std::to_string(i));
    ASSERT_TRUE(txn.Commit().ok());
    versions.push_back(txn.GetCommittedVersion());
  }
  // Each historical version returns its own value.
  for (int i = 0; i < 50; i += 7) {
    Transaction txn = db.CreateTransaction();
    txn.SetReadVersion(versions[i]);
    EXPECT_EQ(txn.Get("hot").value().value(), "v" + std::to_string(i));
  }
}

}  // namespace
}  // namespace quick::fdb
