#include "fdb/database.h"

#include <gtest/gtest.h>

#include <thread>

#include "fdb/cluster_set.h"

namespace quick::fdb {
namespace {

TEST(DatabaseTest, StatsTrackCommitsAndConflicts) {
  ManualClock clock;
  Database::Options opts;
  opts.clock = &clock;
  Database db("stats", opts);

  {
    Transaction t = db.CreateTransaction();
    t.Set("k", "v0");
    ASSERT_TRUE(t.Commit().ok());
  }
  // Force one conflict.
  Transaction loser = db.CreateTransaction();
  ASSERT_TRUE(loser.Get("k").ok());
  loser.Set("out", "x");
  {
    Transaction winner = db.CreateTransaction();
    winner.Set("k", "v1");
    ASSERT_TRUE(winner.Commit().ok());
  }
  ASSERT_TRUE(loser.Commit().IsNotCommitted());

  Database::Stats stats = db.GetStats();
  EXPECT_EQ(stats.commits_succeeded, 2);
  EXPECT_EQ(stats.conflicts, 1);
  EXPECT_EQ(stats.commits_attempted, 3);
  EXPECT_GE(stats.grv_calls, 1);
}

TEST(DatabaseTest, GrvCacheHitCounted) {
  ManualClock clock;
  Database::Options opts;
  opts.clock = &clock;
  Database db("cache", opts);
  {
    Transaction t = db.CreateTransaction();
    ASSERT_TRUE(t.GetReadVersion().ok());
  }
  TransactionOptions topts;
  topts.use_cached_read_version = true;
  Transaction t2 = db.CreateTransaction(topts);
  ASSERT_TRUE(t2.GetReadVersion().ok());
  EXPECT_EQ(db.GetStats().grv_cache_hits, 1);
}

TEST(DatabaseTest, MvccPruningRaisesReadFloor) {
  ManualClock clock;
  Database::Options opts;
  opts.clock = &clock;
  opts.mvcc_window_millis = 1000;
  Database db("prune", opts);

  Transaction old_reader = db.CreateTransaction();
  ASSERT_TRUE(old_reader.GetReadVersion().ok());

  // 300 commits over 3 simulated seconds so the window-driven prune pass
  // runs with old versions out of the window.
  for (int i = 0; i < 300; ++i) {
    Transaction t = db.CreateTransaction();
    t.Set("k" + std::to_string(i % 10), "v");
    ASSERT_TRUE(t.Commit().ok());
    if (i % 10 == 0) clock.AdvanceMillis(100);
  }

  // The old reader's version fell out of the MVCC window.
  auto r = old_reader.Get("k1");
  // Either the lifetime check or the prune floor rejects it.
  EXPECT_EQ(r.status().code(), StatusCode::kTransactionTooOld);
}

TEST(DatabaseTest, InjectedCommitUnavailable) {
  Database::Options opts;
  opts.faults.commit_unavailable = 1.0;
  Database db("flaky", opts);
  Transaction t = db.CreateTransaction();
  t.Set("k", "v");
  EXPECT_EQ(t.Commit().code(), StatusCode::kUnavailable);
}

TEST(DatabaseTest, InjectedUnknownResultApplied) {
  Database::Options opts;
  opts.faults.unknown_result_applied = 1.0;
  Database db("flaky", opts);
  Transaction t = db.CreateTransaction();
  t.Set("k", "v");
  EXPECT_TRUE(t.Commit().IsCommitUnknownResult());
  // The write actually landed.
  Transaction probe = db.CreateTransaction();
  EXPECT_EQ(probe.Get("k").value().value(), "v");
}

TEST(DatabaseTest, InjectedUnknownResultDropped) {
  Database::Options opts;
  opts.faults.unknown_result_dropped = 1.0;
  Database db("flaky", opts);
  Transaction t = db.CreateTransaction();
  t.Set("k", "v");
  EXPECT_TRUE(t.Commit().IsCommitUnknownResult());
  Database::Options clean;
  Transaction probe = db.CreateTransaction();
  EXPECT_FALSE(probe.Get("k").value().has_value());
}

TEST(DatabaseTest, InjectedGrvFault) {
  Database::Options opts;
  opts.faults.grv_unavailable = 1.0;
  Database db("flaky", opts);
  Transaction t = db.CreateTransaction();
  EXPECT_EQ(t.GetReadVersion().status().code(), StatusCode::kUnavailable);
}

TEST(DatabaseTest, ConcurrentBlindWritesAllSucceed) {
  Database db("conc");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&db, i] {
      for (int j = 0; j < kPerThread; ++j) {
        Transaction t = db.CreateTransaction();
        t.Set("t" + std::to_string(i) + "_" + std::to_string(j), "v");
        ASSERT_TRUE(t.Commit().ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(db.LiveKeyCount(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(db.GetStats().commits_succeeded, kThreads * kPerThread);
}

// Pruning is driven by the MVCC window, not a commit count: a handful of
// commits spread across simulated time must still raise the read floor
// (the old implementation waited for 256 commits regardless of age).
TEST(DatabaseTest, PruningIsWindowDrivenNotCommitCountDriven) {
  ManualClock clock;
  Database::Options opts;
  opts.clock = &clock;
  opts.mvcc_window_millis = 1000;
  Database db("window", opts);

  Transaction old_reader = db.CreateTransaction();
  ASSERT_TRUE(old_reader.GetReadVersion().ok());
  {
    Transaction t = db.CreateTransaction();
    t.Set("k", "v1");
    ASSERT_TRUE(t.Commit().ok());
  }
  clock.AdvanceMillis(3000);
  // Far fewer than 256 commits — the stale window alone must arm the sweep.
  for (int i = 0; i < 3; ++i) {
    Transaction t = db.CreateTransaction();
    t.Set("k", "v" + std::to_string(i + 2));
    ASSERT_TRUE(t.Commit().ok());
    clock.AdvanceMillis(500);
  }
  EXPECT_EQ(old_reader.Get("k").status().code(),
            StatusCode::kTransactionTooOld);
}

// Regression: sustained enqueue/dequeue-style churn (write then clear) must
// converge — dead chains are erased once the window passes, so the key map
// does not grow without bound under a queue workload.
TEST(DatabaseTest, ChurnConvergesUnderWindowDrivenPruning) {
  ManualClock clock;
  Database::Options opts;
  opts.clock = &clock;
  opts.mvcc_window_millis = 1000;
  Database db("churn", opts);

  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 10; ++i) {
      Transaction t = db.CreateTransaction();
      t.Set("item" + std::to_string(round * 10 + i), "payload");
      ASSERT_TRUE(t.Commit().ok());
    }
    for (int i = 0; i < 10; ++i) {
      Transaction t = db.CreateTransaction();
      t.Clear("item" + std::to_string(round * 10 + i));
      ASSERT_TRUE(t.Commit().ok());
    }
    clock.AdvanceMillis(300);
  }

  // Let every churn version fall out of the window; the next commits carry
  // the sweep (pruning piggybacks on the commit path).
  for (int i = 0; i < 3; ++i) {
    clock.AdvanceMillis(2000);
    Transaction t = db.CreateTransaction();
    t.Set("tick", std::to_string(i));
    ASSERT_TRUE(t.Commit().ok());
  }

  EXPECT_EQ(db.LiveKeyCount(), 1u);  // just "tick"
  // All 200 churned chains were erased; only "tick"'s short chain remains.
  EXPECT_LE(db.TotalEntryCount(), 3u);
}

TEST(DatabaseTest, ResolverKindLegacyGivesSameOutcomes) {
  for (auto kind : {Database::ResolverKind::kInterval,
                    Database::ResolverKind::kLegacyLinear}) {
    Database::Options opts;
    opts.resolver = kind;
    Database db("res", opts);
    {
      Transaction t = db.CreateTransaction();
      t.Set("k", "v0");
      ASSERT_TRUE(t.Commit().ok());
    }
    Transaction loser = db.CreateTransaction();
    ASSERT_TRUE(loser.Get("k").ok());
    loser.Set("out", "x");
    {
      Transaction winner = db.CreateTransaction();
      winner.Set("k", "v1");
      ASSERT_TRUE(winner.Commit().ok());
    }
    EXPECT_TRUE(loser.Commit().IsNotCommitted());
    EXPECT_GE(db.ResolverTrackedCount(), 1u);
  }
}

TEST(ClusterSetTest, AddAndGet) {
  ClusterSet clusters;
  Database* a = clusters.AddCluster("east");
  Database* b = clusters.AddCluster("west");
  EXPECT_NE(a, b);
  EXPECT_EQ(clusters.Get("east"), a);
  EXPECT_EQ(clusters.Get("missing"), nullptr);
  EXPECT_EQ(clusters.size(), 2u);
}

TEST(ClusterSetTest, AddExistingReturnsSame) {
  ClusterSet clusters;
  Database* a = clusters.AddCluster("east");
  EXPECT_EQ(clusters.AddCluster("east"), a);
  EXPECT_EQ(clusters.size(), 1u);
}

TEST(ClusterSetTest, ClustersAreIndependent) {
  ClusterSet clusters;
  Database* a = clusters.AddCluster("east");
  Database* b = clusters.AddCluster("west");
  {
    Transaction t = a->CreateTransaction();
    t.Set("k", "east-value");
    ASSERT_TRUE(t.Commit().ok());
  }
  Transaction t = b->CreateTransaction();
  EXPECT_FALSE(t.Get("k").value().has_value());
}

TEST(ClusterSetTest, NamesPreserveInsertionOrder) {
  ClusterSet clusters;
  clusters.AddCluster("c");
  clusters.AddCluster("a");
  clusters.AddCluster("b");
  ASSERT_EQ(clusters.names().size(), 3u);
  EXPECT_EQ(clusters.names()[0], "c");
  EXPECT_EQ(clusters.names()[1], "a");
}

}  // namespace
}  // namespace quick::fdb
