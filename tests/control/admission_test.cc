#include "control/admission.h"

#include <gtest/gtest.h>

#include "fdb/cluster_set.h"
#include "quick/quick.h"

namespace quick::control {
namespace {

using core::AdmissionDecision;

class AdmissionTest : public ::testing::Test {
 protected:
  AdmissionController Make(AdmissionConfig config) {
    return AdmissionController(config, &clock_, &registry_);
  }

  int64_t Count(const std::string& name) {
    return registry_.GetCounter(name)->Value();
  }

  ManualClock clock_{1000};
  MetricsRegistry registry_;
  const ck::DatabaseId alice_ = ck::DatabaseId::Private("app", "alice");
  const ck::DatabaseId bob_ = ck::DatabaseId::Private("app", "bob");
};

TEST_F(AdmissionTest, AdmitsWithinBudgetAndRefillsOnManualClock) {
  AdmissionConfig config;
  config.tenant = {10, 10};  // 10/sec, burst 10
  config.app = {0, 0};       // unlimited
  config.cluster = {0, 0};
  AdmissionController ac = Make(config);

  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(ac.AdmitEnqueue(alice_, "c0", 1).admitted()) << i;
  }
  AdmissionDecision d = ac.AdmitEnqueue(alice_, "c0", 1);
  EXPECT_FALSE(d.admitted());
  EXPECT_EQ(d.outcome, AdmissionDecision::Outcome::kThrottle);
  EXPECT_STREQ(d.level, "tenant");
  EXPECT_GT(d.retry_after_millis, 0);

  // Honoring the hint earns admission again.
  clock_.AdvanceMillis(d.retry_after_millis);
  EXPECT_TRUE(ac.AdmitEnqueue(alice_, "c0", 1).admitted());
  EXPECT_EQ(Count("quick.admission.admitted"), 11);
  EXPECT_EQ(Count("quick.admission.throttled.tenant"), 1);
}

TEST_F(AdmissionTest, HierarchyPrecedenceTenantFirst) {
  AdmissionConfig config;
  config.tenant = {10, 5};
  config.app = {10, 8};
  config.cluster = {10, 100};
  config.fair_share = false;
  AdmissionController ac = Make(config);

  // The tenant bucket (burst 5) trips before the app bucket (burst 8).
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ac.AdmitEnqueue(alice_, "c0", 1).admitted());
  }
  AdmissionDecision d = ac.AdmitEnqueue(alice_, "c0", 1);
  EXPECT_STREQ(d.level, "tenant");

  // A tenant-level refusal charged nothing shared: bob still has the
  // app bucket's remaining 3 tokens available.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(ac.AdmitEnqueue(bob_, "c0", 1).admitted()) << i;
  }
  AdmissionDecision app_refusal = ac.AdmitEnqueue(bob_, "c0", 1);
  EXPECT_FALSE(app_refusal.admitted());
  EXPECT_STREQ(app_refusal.level, "app");
  EXPECT_EQ(Count("quick.admission.throttled.app"), 1);
}

TEST_F(AdmissionTest, OuterRefusalRefundsInnerTokens) {
  AdmissionConfig config;
  config.tenant = {10, 10};
  config.app = {10, 3};
  config.cluster = {0, 0};
  config.fair_share = false;
  AdmissionController ac = Make(config);

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ac.AdmitEnqueue(alice_, "c0", 1).admitted());
  }
  // App refuses; alice's tenant tokens must be returned each time. With
  // only 7 tenant tokens left, 20 refusals charging the tenant bucket
  // would flip the refusal level to "tenant" — every one staying "app"
  // proves the refund.
  for (int i = 0; i < 20; ++i) {
    EXPECT_STREQ(ac.AdmitEnqueue(alice_, "c0", 1).level, "app");
  }
  clock_.AdvanceMillis(700);  // app refills to its burst cap of 3
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(ac.AdmitEnqueue(alice_, "c0", 1).admitted()) << i;
  }
  EXPECT_STREQ(ac.AdmitEnqueue(alice_, "c0", 1).level, "app");
}

TEST_F(AdmissionTest, ClusterLevelRefusalNamesCluster) {
  AdmissionConfig config;
  config.tenant = {0, 0};
  config.app = {0, 0};
  config.cluster = {10, 2};
  config.fair_share = false;
  AdmissionController ac = Make(config);
  ASSERT_TRUE(ac.AdmitEnqueue(alice_, "c0", 2).admitted());
  AdmissionDecision d = ac.AdmitEnqueue(bob_, "c0", 1);
  EXPECT_STREQ(d.level, "cluster");
  // Another cluster is unaffected.
  EXPECT_TRUE(ac.AdmitEnqueue(bob_, "c1", 1).admitted());
}

TEST_F(AdmissionTest, DebtExtendsRetryAfterAndEscalatesToShed) {
  AdmissionConfig config;
  config.tenant = {10, 10};
  config.app = {0, 0};
  config.cluster = {0, 0};
  config.fair_share = true;
  config.shed_after_millis = 2000;
  AdmissionController ac = Make(config);

  ASSERT_TRUE(ac.AdmitEnqueue(alice_, "c0", 10).admitted());
  // Keep hammering: each refusal adds debt, stretching retry-after until
  // the refusals escalate to shed.
  int64_t last_retry = 0;
  bool shed = false;
  for (int i = 0; i < 100 && !shed; ++i) {
    AdmissionDecision d = ac.AdmitEnqueue(alice_, "c0", 1);
    ASSERT_FALSE(d.admitted());
    EXPECT_GE(d.retry_after_millis, last_retry);
    last_retry = d.retry_after_millis;
    shed = d.outcome == AdmissionDecision::Outcome::kShed;
  }
  EXPECT_TRUE(shed);
  EXPECT_GT(ac.DebtOf(alice_.ToString()), 0.0);
  EXPECT_GE(Count("quick.admission.shed"), 1);

  // The noisy tenant degraded only itself: bob is untouched.
  EXPECT_TRUE(ac.AdmitEnqueue(bob_, "c0", 1).admitted());

  // Going quiet decays the debt back to zero at the tenant rate.
  clock_.AdvanceMillis(60000);
  EXPECT_TRUE(ac.AdmitEnqueue(alice_, "c0", 1).admitted());
  EXPECT_EQ(ac.DebtOf(alice_.ToString()), 0.0);
}

TEST_F(AdmissionTest, RetryAfterClampedToMax) {
  AdmissionConfig config;
  config.tenant = {0.001, 1};  // pathological: ~1000s to refill a token
  config.app = {0, 0};
  config.cluster = {0, 0};
  config.fair_share = false;
  config.max_retry_after_millis = 1234;
  AdmissionController ac = Make(config);
  ASSERT_TRUE(ac.AdmitEnqueue(alice_, "c0", 1).admitted());
  AdmissionDecision d = ac.AdmitEnqueue(alice_, "c0", 1);
  EXPECT_EQ(d.retry_after_millis, 1234);
}

TEST_F(AdmissionTest, DispatchGateDisabledByDefaultThenThrottles) {
  AdmissionConfig config;
  AdmissionController off = Make(config);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(off.AdmitDispatch(alice_, "c0", 1).admitted());
  }

  config.dispatch_tenant = {10, 2};
  AdmissionController on = Make(config);
  EXPECT_TRUE(on.AdmitDispatch(alice_, "c0", 1).admitted());
  EXPECT_TRUE(on.AdmitDispatch(alice_, "c0", 1).admitted());
  AdmissionDecision d = on.AdmitDispatch(alice_, "c0", 1);
  EXPECT_FALSE(d.admitted());
  // Dispatch refusals never shed — the item is already queued.
  EXPECT_EQ(d.outcome, AdmissionDecision::Outcome::kThrottle);
  EXPECT_GT(d.retry_after_millis, 0);
  EXPECT_TRUE(on.AdmitDispatch(bob_, "c0", 1).admitted());
}

TEST_F(AdmissionTest, DisabledControllerAdmitsEverything) {
  AdmissionConfig config;
  config.enabled = false;
  config.tenant = {1, 1};
  AdmissionController ac = Make(config);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(ac.AdmitEnqueue(alice_, "c0", 10).admitted());
  }
}

// End-to-end: a gated Quick surfaces kThrottled with a parseable
// retry-after hint, and honoring the hint lets the enqueue through.
TEST_F(AdmissionTest, EnqueueHonorsRetryAfterEndToEnd) {
  fdb::Database::Options opts;
  opts.clock = &clock_;
  fdb::ClusterSet clusters(opts);
  clusters.AddCluster("east");
  ck::CloudKitService ck(&clusters, &clock_);
  core::Quick quick(&ck);

  AdmissionConfig config;
  config.tenant = {10, 2};
  config.app = {0, 0};
  config.cluster = {0, 0};
  config.fair_share = false;
  AdmissionController ac = Make(config);
  quick.set_admission(&ac);

  core::WorkItem item;
  item.job_type = "job";
  ASSERT_TRUE(quick.Enqueue(alice_, item, 0).ok());
  ASSERT_TRUE(quick.Enqueue(alice_, item, 0).ok());
  Result<std::string> refused = quick.Enqueue(alice_, item, 0);
  ASSERT_TRUE(refused.status().IsThrottled());
  const int64_t wait = core::RetryAfterMillis(refused.status());
  ASSERT_GT(wait, 0);
  clock_.AdvanceMillis(wait);
  EXPECT_TRUE(quick.Enqueue(alice_, item, 0).ok());
  EXPECT_EQ(quick.PendingCount(alice_).value(), 3);
}

}  // namespace
}  // namespace quick::control
