// Migration-under-load chaos suite: a tenant is live-migrated while
// producers keep enqueueing, consumers keep executing (some items failing
// permanently into the dead-letter quarantine), and the orchestrator
// "crashes" at a seeded random state-machine boundary and is resumed by a
// fresh instance. Verified, per seed:
//   - exact accounting: every successfully-enqueued item ends up executed
//     (exactly once), dead-lettered (exactly once), or still queued —
//     the three sets are disjoint and their union covers everything;
//   - zero loss: no enqueued item vanishes across the move;
//   - zero double-execution: the fenced flip never leaves an executable
//     copy on both clusters;
//   - enqueues refused mid-seal surface kTenantMoving (never silently
//     dropped), and the tenant's single home ends at the destination.
// Everything runs synchronously on a ManualClock, so each seed is
// deterministic.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "common/random.h"
#include "control/balancer.h"
#include "fdb/cluster_set.h"
#include "fdb/retry.h"
#include "quick/admin.h"
#include "quick/consumer.h"

namespace quick::control {
namespace {

class MigrationChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MigrationChaosTest, LosslessUnderLoadAndOrchestratorCrash) {
  const uint64_t seed = GetParam();
  ManualClock clock(1000000);
  Random rng(seed);

  fdb::Database::Options opts;
  opts.clock = &clock;
  opts.faults.seed = seed;
  fdb::ClusterSet clusters(opts);
  clusters.AddCluster("east");
  clusters.AddCluster("west");
  ck::CloudKitService cloudkit(&clusters, &clock);
  core::Quick quick(&cloudkit);

  const ck::DatabaseId mover = ck::DatabaseId::Private("chaos-app", "mover");
  const ck::DatabaseId bystander =
      ck::DatabaseId::Private("chaos-app", "bystander");
  cloudkit.placement()->Set(mover, "east");
  cloudkit.placement()->Set(bystander, "east");

  // Items whose payload says "poison" fail permanently and must land in
  // the dead-letter quarantine; everything else executes exactly once.
  std::map<std::string, int> executed;  // id -> times executed
  core::JobRegistry jobs;
  jobs.Register("chaos", [&](core::WorkContext& ctx) {
    if (ctx.item.payload == "poison") {
      return Status::Permanent("poison pill");
    }
    executed[ctx.item.id]++;
    return Status::OK();
  });

  core::ConsumerConfig config;
  config.sequential = true;
  config.relaxed_reads_for_peek = false;
  config.dequeue_max = 2;
  config.pointer_lease_millis = 500;
  config.item_lease_millis = 1000;
  config.min_inactive_millis = 2000;
  core::Consumer consumer(&quick, {"east", "west"}, &jobs, config, "worker");

  std::set<std::string> enqueued_ok;      // expected to execute
  std::set<std::string> enqueued_poison;  // expected to dead-letter
  int moving_refusals = 0;
  auto produce = [&](const ck::DatabaseId& db, int n) {
    for (int i = 0; i < n; ++i) {
      const bool poison = db == mover && rng.Uniform(5) == 0;
      core::WorkItem item;
      item.job_type = "chaos";
      item.payload = poison ? "poison" : "work";
      Result<std::string> id = quick.Enqueue(db, item, 0);
      if (id.ok()) {
        (poison ? enqueued_poison : enqueued_ok).insert(*id);
      } else {
        // The only acceptable refusal is the migration fence — a refused
        // enqueue is the client's to retry, never silent loss.
        ASSERT_TRUE(id.status().IsTenantMoving()) << id.status();
        ++moving_refusals;
      }
    }
  };

  // --- Phase 1: pre-move traffic, partially consumed. ---
  produce(mover, static_cast<int>(5 + rng.Uniform(6)));
  produce(bystander, 3);
  for (int round = 0; round < 3; ++round) {
    (void)consumer.RunOnePass("east");
    clock.AdvanceMillis(50);
  }

  // --- Phase 2: the move, stepped manually with load interleaved and the
  // orchestrator crashing (dropped on the floor) at a seeded boundary. ---
  BalancerConfig bconfig;
  bconfig.catchup_rounds = 1 + static_cast<int>(rng.Uniform(2));
  const int crash_after_steps = static_cast<int>(rng.Uniform(5));
  MetricsRegistry registry;

  {
    TenantBalancer first(&quick, bconfig, &registry);
    MovePhase phase = MovePhase::kIdle;
    for (int steps = 0; steps < crash_after_steps; ++steps) {
      if (phase == MovePhase::kDone) break;
      Result<MovePhase> r = first.Step(mover, "west");
      ASSERT_TRUE(r.ok()) << r.status();
      phase = *r;
      // Load keeps flowing between transitions (fenced once sealed).
      produce(mover, static_cast<int>(rng.Uniform(4)));
      produce(bystander, 1);
      (void)consumer.RunOnePass("east");
      (void)consumer.RunOnePass("west");
      clock.AdvanceMillis(30);
    }
  }  // crash: the orchestrator dies; MoveState persists on the source

  TenantBalancer second(&quick, bconfig, &registry);
  Status resumed = second.Resume(mover);
  if (resumed.IsNotFound()) {
    // Crashed before the first transition (or after completion): run the
    // whole move fresh.
    ASSERT_TRUE(second.MoveTenant(mover, "west").ok());
  } else {
    ASSERT_TRUE(resumed.ok()) << resumed;
  }
  ASSERT_EQ(cloudkit.placement()->Get(mover).value(), "west");
  ASSERT_EQ(second.Phase(mover).value(), MovePhase::kIdle);

  // --- Phase 3: post-move traffic at the new home, then a full drain. ---
  produce(mover, static_cast<int>(3 + rng.Uniform(4)));
  produce(bystander, 2);
  auto all_done = [&] {
    // Drained means: every ok item executed AND every queue empty (poison
    // items have left the live queue into quarantine).
    if (quick.PendingCount(mover).value_or(-1) != 0) return false;
    if (quick.PendingCount(bystander).value_or(-1) != 0) return false;
    for (const std::string& id : enqueued_ok) {
      if (!executed.count(id)) return false;
    }
    return true;
  };
  for (int round = 0; round < 200 && !all_done(); ++round) {
    (void)consumer.RunOnePass("east");
    (void)consumer.RunOnePass("west");
    clock.AdvanceMillis(200);
  }

  // --- Accounting: executed (+) dead-lettered (+) still-queued covers
  // every enqueued item exactly once. ---
  core::QuickAdmin admin(&quick);
  std::set<std::string> dead_lettered;
  // Named (not a temporary): the range-for below holds a reference into
  // the Result for the whole loop.
  const Result<std::vector<ck::DeadLetterItem>> dl_result =
      admin.ListDeadLetters(mover);
  ASSERT_TRUE(dl_result.ok()) << dl_result.status();
  for (const ck::DeadLetterItem& d : dl_result.value()) {
    EXPECT_TRUE(dead_lettered.insert(d.id).second)
        << "item " << d.id << " dead-lettered twice";
  }

  for (const std::string& id : enqueued_ok) {
    auto it = executed.find(id);
    ASSERT_NE(it, executed.end()) << "item " << id << " lost in the move";
    EXPECT_EQ(it->second, 1) << "item " << id << " executed twice";
    EXPECT_FALSE(dead_lettered.count(id))
        << "item " << id << " executed AND dead-lettered";
  }
  for (const std::string& id : enqueued_poison) {
    EXPECT_TRUE(dead_lettered.count(id))
        << "poison item " << id << " missing from quarantine";
    EXPECT_FALSE(executed.count(id))
        << "poison item " << id << " recorded as executed";
  }
  EXPECT_EQ(dead_lettered.size(), enqueued_poison.size());
  EXPECT_EQ(executed.size(), enqueued_ok.size());

  // The tenant has exactly one home: its pending queue is empty (all ok
  // items ran), and the source keyspace holds nothing.
  EXPECT_EQ(quick.PendingCount(mover).value(), 0);
  bool source_empty = false;
  ASSERT_TRUE(fdb::RunTransaction(
                  clusters.Get("east"),
                  [&](fdb::Transaction& txn) {
                    auto kvs = txn.GetRange(
                        ck::CloudKitService::DatabaseSubspace(mover).Range());
                    source_empty = kvs->empty();
                    return Status::OK();
                  })
                  .ok());
  EXPECT_TRUE(source_empty);

  // The bystander never noticed: all its items executed on east.
  EXPECT_EQ(cloudkit.placement()->Get(bystander).value(), "east");
  EXPECT_EQ(quick.PendingCount(bystander).value(), 0);

  // Refusals can only have come from the sealed window.
  if (moving_refusals > 0) {
    EXPECT_GE(registry.GetCounter("quick.balancer.moves_resumed")->Value() +
                  registry.GetCounter("quick.balancer.moves_started")->Value(),
              1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MigrationChaosTest,
                         ::testing::Values(1, 7, 42, 1234, 98765, 20260806));

}  // namespace
}  // namespace quick::control
