#include "control/balancer.h"

#include <gtest/gtest.h>

#include "fdb/retry.h"
#include "quick/consumer.h"
#include "quick/quick.h"
#include "quick/tenant_metrics.h"

namespace quick::control {
namespace {

class BalancerTest : public ::testing::Test {
 protected:
  BalancerTest() {
    fdb::Database::Options opts;
    opts.clock = &clock_;
    clusters_ = std::make_unique<fdb::ClusterSet>(opts);
    clusters_->AddCluster("east");
    clusters_->AddCluster("west");
    ck_ = std::make_unique<ck::CloudKitService>(clusters_.get(), &clock_);
    quick_ = std::make_unique<core::Quick>(ck_.get());
    jobs_.Register("job", [this](core::WorkContext& ctx) {
      processed_.push_back(ctx.item.payload);
      return Status::OK();
    });
  }

  TenantBalancer Make(BalancerConfig config = {}) {
    return TenantBalancer(quick_.get(), config, &registry_);
  }

  Result<std::string> Enqueue(const ck::DatabaseId& db,
                              const std::string& payload,
                              int64_t delay_millis = 0) {
    core::WorkItem item;
    item.job_type = "job";
    item.payload = payload;
    return quick_->Enqueue(db, item, delay_millis);
  }

  std::string OtherCluster(const std::string& c) {
    return c == "east" ? "west" : "east";
  }

  bool SourceKeyspaceEmpty(const ck::DatabaseId& db, const std::string& src) {
    bool empty = false;
    Status st = fdb::RunTransaction(
        clusters_->Get(src), [&](fdb::Transaction& txn) {
          auto kvs =
              txn.GetRange(ck::CloudKitService::DatabaseSubspace(db).Range());
          empty = kvs->empty();
          return Status::OK();
        });
    EXPECT_TRUE(st.ok());
    return empty;
  }

  int64_t Count(const std::string& name) {
    return registry_.GetCounter(name)->Value();
  }

  ManualClock clock_{1000};
  MetricsRegistry registry_;
  std::unique_ptr<fdb::ClusterSet> clusters_;
  std::unique_ptr<ck::CloudKitService> ck_;
  std::unique_ptr<core::Quick> quick_;
  core::JobRegistry jobs_;
  std::vector<std::string> processed_;
};

TEST_F(BalancerTest, MoveCarriesQueuedWorkEndToEnd) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "mover");
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(Enqueue(db, "task-" + std::to_string(i)).ok());
  }
  const std::string src = ck_->placement()->Get(db).value();
  const std::string dst = OtherCluster(src);

  TenantBalancer balancer = Make();
  ASSERT_TRUE(balancer.MoveTenant(db, dst).ok());

  EXPECT_EQ(ck_->placement()->Get(db).value(), dst);
  EXPECT_EQ(quick_->PendingCount(db).value(), 3);
  EXPECT_EQ(quick_->TopLevelCount(dst).value(), 1);
  EXPECT_EQ(quick_->TopLevelCount(src).value(), 0);
  EXPECT_TRUE(SourceKeyspaceEmpty(db, src));
  EXPECT_EQ(balancer.Phase(db).value(), MovePhase::kIdle);
  EXPECT_EQ(Count("quick.balancer.moves_started"), 1);
  EXPECT_EQ(Count("quick.balancer.moves_completed"), 1);

  core::ConsumerConfig config;
  config.sequential = true;
  config.relaxed_reads_for_peek = false;
  config.dequeue_max = 8;
  core::Consumer consumer(quick_.get(), {dst}, &jobs_, config, "dst");
  ASSERT_TRUE(consumer.RunOnePass(dst).ok());
  EXPECT_EQ(processed_.size(), 3u);
  EXPECT_EQ(quick_->PendingCount(db).value(), 0);
}

TEST_F(BalancerTest, EmptyTenantMovesWithoutPointer) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "quiet");
  const ck::DatabaseRef ref = ck_->OpenDatabase(db);
  ASSERT_TRUE(fdb::RunTransaction(ref.cluster, [&](fdb::Transaction& txn) {
                txn.Set(ref.subspace.Pack(tup::Tuple().AddString("doc")),
                        "contents");
                return Status::OK();
              }).ok());
  const std::string src = ref.cluster->name();
  const std::string dst = OtherCluster(src);
  TenantBalancer balancer = Make();
  ASSERT_TRUE(balancer.MoveTenant(db, dst).ok());
  EXPECT_EQ(quick_->TopLevelCount(dst).value(), 0);
  Status st = fdb::RunTransaction(
      clusters_->Get(dst), [&](fdb::Transaction& txn) {
        auto v = txn.Get(ref.subspace.Pack(tup::Tuple().AddString("doc")));
        EXPECT_EQ(v.value().value(), "contents");
        return Status::OK();
      });
  ASSERT_TRUE(st.ok());
}

TEST_F(BalancerTest, StepWalksTheStateMachine) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "stepper");
  ASSERT_TRUE(Enqueue(db, "before-copy").ok());
  const std::string src = ck_->placement()->Get(db).value();
  const std::string dst = OtherCluster(src);

  BalancerConfig config;
  config.catchup_rounds = 1;
  TenantBalancer balancer = Make(config);

  ASSERT_EQ(balancer.Step(db, dst).value(), MovePhase::kCopying);
  EXPECT_EQ(balancer.Phase(db).value(), MovePhase::kCopying);
  // Traffic still flows while copying; the catch-up round carries it.
  ASSERT_TRUE(Enqueue(db, "during-copy").ok());
  ASSERT_EQ(balancer.Step(db, dst).value(), MovePhase::kCopying);
  EXPECT_EQ(Count("quick.balancer.catchup_rounds"), 1);

  ASSERT_EQ(balancer.Step(db, dst).value(), MovePhase::kSealed);
  EXPECT_EQ(balancer.Phase(db).value(), MovePhase::kSealed);
  // Sealed: enqueues are fenced (the client retry loop gives up against
  // a fence that stays up) and the source pointer is gone.
  EXPECT_TRUE(Enqueue(db, "while-sealed").status().IsTenantMoving());
  EXPECT_EQ(quick_->TopLevelCount(src).value(), 0);

  ASSERT_EQ(balancer.Step(db, dst).value(), MovePhase::kFlipped);
  EXPECT_EQ(ck_->placement()->Get(db).value(), dst);
  ASSERT_EQ(balancer.Step(db, dst).value(), MovePhase::kDone);
  EXPECT_TRUE(SourceKeyspaceEmpty(db, src));

  // Nothing lost: both pre-seal items are at the destination, and new
  // traffic lands there.
  EXPECT_EQ(quick_->PendingCount(db).value(), 2);
  ASSERT_TRUE(Enqueue(db, "after-move").ok());
  EXPECT_EQ(quick_->PendingCount(db).value(), 3);
  EXPECT_EQ(quick_->TopLevelCount(dst).value(), 1);
}

TEST_F(BalancerTest, ResumeCompletesACrashedMoveAtEveryPhase) {
  struct Scenario {
    std::string user;
    int steps_before_crash;
  };
  // Crash after: the initial copy; the seal; the flip.
  for (const Scenario& s : {Scenario{"crash-copy", 1}, Scenario{"crash-seal", 2},
                            Scenario{"crash-flip", 3}}) {
    const ck::DatabaseId db = ck::DatabaseId::Private("app", s.user);
    ASSERT_TRUE(Enqueue(db, s.user + "-item").ok());
    const std::string src = ck_->placement()->Get(db).value();
    const std::string dst = OtherCluster(src);
    // Earlier scenarios may have left their own pointer on this cluster.
    const int64_t dst_pointers_before = quick_->TopLevelCount(dst).value();

    BalancerConfig config;
    config.catchup_rounds = 0;
    {
      TenantBalancer crashed = Make(config);
      for (int i = 0; i < s.steps_before_crash; ++i) {
        ASSERT_TRUE(crashed.Step(db, dst).ok()) << s.user;
      }
    }  // "crash": the orchestrator process dies; MoveState persists

    TenantBalancer fresh = Make(config);
    // Resume needs no destination argument — the persisted state has it.
    ASSERT_TRUE(fresh.Resume(db).ok()) << s.user;
    EXPECT_EQ(ck_->placement()->Get(db).value(), dst) << s.user;
    EXPECT_EQ(quick_->PendingCount(db).value(), 1) << s.user;
    EXPECT_EQ(quick_->TopLevelCount(dst).value(), dst_pointers_before + 1)
        << s.user;
    EXPECT_TRUE(SourceKeyspaceEmpty(db, src)) << s.user;
    EXPECT_EQ(fresh.Phase(db).value(), MovePhase::kIdle) << s.user;
  }
  EXPECT_EQ(Count("quick.balancer.moves_resumed"), 3);
  EXPECT_TRUE(
      Make().Resume(ck::DatabaseId::Private("app", "nobody")).IsNotFound());
}

TEST_F(BalancerTest, ResumeDetectsTheFlipStateCrashWindow) {
  // Crash between CommitMove's placement flip and the kFlipped state
  // write: placement already names the destination while the persisted
  // state still says kSealed. Resume must run forward WITHOUT touching
  // the (live) destination data again.
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "window");
  ASSERT_TRUE(Enqueue(db, "carried").ok());
  const std::string src = ck_->placement()->Get(db).value();
  const std::string dst = OtherCluster(src);

  BalancerConfig config;
  config.catchup_rounds = 0;
  {
    TenantBalancer crashed = Make(config);
    ASSERT_EQ(crashed.Step(db, dst).value(), MovePhase::kCopying);
    ASSERT_EQ(crashed.Step(db, dst).value(), MovePhase::kSealed);
    ASSERT_EQ(crashed.Step(db, dst).value(), MovePhase::kFlipped);
    // Rewind the persisted record to kSealed, emulating the lost write.
    ck::MoveState stale;
    stale.phase = ck::MoveState::kSealed;
    stale.dest_cluster = dst;
    ASSERT_TRUE(fdb::RunTransaction(clusters_->Get(src),
                                    [&](fdb::Transaction& txn) {
                                      txn.Set(ck::MoveState::Key(db),
                                              stale.Encode());
                                      return Status::OK();
                                    })
                    .ok());
  }

  // The destination is live: new traffic may land before the resume.
  ASSERT_TRUE(Enqueue(db, "after-flip").ok());

  TenantBalancer fresh = Make(config);
  ASSERT_TRUE(fresh.Resume(db).ok());
  EXPECT_EQ(quick_->PendingCount(db).value(), 2);  // nothing clobbered
  EXPECT_TRUE(SourceKeyspaceEmpty(db, src));
  EXPECT_EQ(fresh.Phase(db).value(), MovePhase::kIdle);
}

TEST_F(BalancerTest, AbortBeforeFlipRestoresTheSource) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "aborter");
  ASSERT_TRUE(Enqueue(db, "stays-home").ok());
  const std::string src = ck_->placement()->Get(db).value();
  const std::string dst = OtherCluster(src);

  BalancerConfig config;
  config.catchup_rounds = 0;
  TenantBalancer balancer = Make(config);
  ASSERT_EQ(balancer.Step(db, dst).value(), MovePhase::kCopying);
  ASSERT_EQ(balancer.Step(db, dst).value(), MovePhase::kSealed);

  ASSERT_TRUE(balancer.Abort(db).ok());
  EXPECT_EQ(balancer.Phase(db).value(), MovePhase::kIdle);
  EXPECT_EQ(ck_->placement()->Get(db).value(), src);
  // Fence down, pointer restored: traffic and consumption work again.
  ASSERT_TRUE(Enqueue(db, "post-abort").ok());
  EXPECT_EQ(quick_->TopLevelCount(src).value(), 1);
  EXPECT_EQ(quick_->PendingCount(db).value(), 2);
  // The partial destination copy is gone.
  EXPECT_TRUE(SourceKeyspaceEmpty(db, dst));

  core::ConsumerConfig cc;
  cc.sequential = true;
  cc.relaxed_reads_for_peek = false;
  cc.dequeue_max = 8;
  core::Consumer consumer(quick_.get(), {src}, &jobs_, cc, "src");
  ASSERT_TRUE(consumer.RunOnePass(src).ok());
  EXPECT_EQ(processed_.size(), 2u);
  EXPECT_EQ(Count("quick.balancer.moves_aborted"), 1);

  EXPECT_TRUE(balancer.Abort(db).IsNotFound());  // nothing in flight now
}

TEST_F(BalancerTest, AbortAfterFlipRefuses) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "committed");
  ASSERT_TRUE(Enqueue(db, "x").ok());
  const std::string dst =
      OtherCluster(ck_->placement()->Get(db).value());
  BalancerConfig config;
  config.catchup_rounds = 0;
  TenantBalancer balancer = Make(config);
  ASSERT_EQ(balancer.Step(db, dst).value(), MovePhase::kCopying);
  ASSERT_EQ(balancer.Step(db, dst).value(), MovePhase::kSealed);
  ASSERT_EQ(balancer.Step(db, dst).value(), MovePhase::kFlipped);
  EXPECT_EQ(balancer.Abort(db).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(balancer.Resume(db).ok());  // forward is the only way out
  EXPECT_EQ(quick_->PendingCount(db).value(), 1);
}

TEST_F(BalancerTest, DrainWaitsOutLiveLeasesAndSupersedesZombies) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "leased");
  Result<std::string> id = Enqueue(db, "in-flight");
  ASSERT_TRUE(id.ok());
  const std::string src = ck_->placement()->Get(db).value();
  const std::string dst = OtherCluster(src);

  // A consumer holds a live lease on the item (100ms).
  const ck::DatabaseRef ref = ck_->OpenDatabase(db);
  ASSERT_TRUE(fdb::RunTransaction(ref.cluster, [&](fdb::Transaction& txn) {
                ck::QueueZone zone = quick_->OpenTenantZone(ref, &txn);
                return zone.ObtainLease(*id, 100).status();
              }).ok());

  BalancerConfig config;
  config.catchup_rounds = 0;
  TenantBalancer balancer = Make(config);
  ASSERT_EQ(balancer.Step(db, dst).value(), MovePhase::kCopying);
  ASSERT_EQ(balancer.Step(db, dst).value(), MovePhase::kSealed);

  // Live lease: the drain holds the move at kSealed.
  ASSERT_EQ(balancer.Step(db, dst).value(), MovePhase::kSealed);
  EXPECT_GE(Count("quick.balancer.drain_waits"), 1);

  // The lease expires without its holder completing — a zombie. The next
  // step supersedes it (unfenced requeue), then the move proceeds.
  clock_.AdvanceMillis(150);
  ASSERT_EQ(balancer.Step(db, dst).value(), MovePhase::kSealed);
  EXPECT_EQ(Count("quick.balancer.zombie_requeues"), 1);
  ASSERT_EQ(balancer.Step(db, dst).value(), MovePhase::kFlipped);
  ASSERT_EQ(balancer.Step(db, dst).value(), MovePhase::kDone);

  // The item crossed unleased and executable.
  EXPECT_EQ(quick_->PendingCount(db).value(), 1);
  core::ConsumerConfig cc;
  cc.sequential = true;
  cc.relaxed_reads_for_peek = false;
  core::Consumer consumer(quick_.get(), {dst}, &jobs_, cc, "dst");
  ASSERT_TRUE(consumer.RunOnePass(dst).ok());
  EXPECT_EQ(processed_, std::vector<std::string>{"in-flight"});
}

TEST_F(BalancerTest, MoveTenantPollsThroughALiveLease) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "patient");
  Result<std::string> id = Enqueue(db, "held");
  ASSERT_TRUE(id.ok());
  const std::string dst =
      OtherCluster(ck_->placement()->Get(db).value());
  const ck::DatabaseRef ref = ck_->OpenDatabase(db);
  ASSERT_TRUE(fdb::RunTransaction(ref.cluster, [&](fdb::Transaction& txn) {
                ck::QueueZone zone = quick_->OpenTenantZone(ref, &txn);
                return zone.ObtainLease(*id, 200).status();
              }).ok());
  // Under ManualClock the drain polls advance time past the lease expiry;
  // the zombie is superseded and the move completes unattended.
  TenantBalancer balancer = Make();
  ASSERT_TRUE(balancer.MoveTenant(db, dst).ok());
  EXPECT_EQ(quick_->PendingCount(db).value(), 1);
}

TEST_F(BalancerTest, DrainTimeoutAbortsTheMove) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "stuck");
  Result<std::string> id = Enqueue(db, "pinned");
  ASSERT_TRUE(id.ok());
  const std::string src = ck_->placement()->Get(db).value();
  const std::string dst = OtherCluster(src);
  const ck::DatabaseRef ref = ck_->OpenDatabase(db);
  // A lease far longer than the drain budget.
  ASSERT_TRUE(fdb::RunTransaction(ref.cluster, [&](fdb::Transaction& txn) {
                ck::QueueZone zone = quick_->OpenTenantZone(ref, &txn);
                return zone.ObtainLease(*id, 60000).status();
              }).ok());
  BalancerConfig config;
  config.catchup_rounds = 0;
  config.drain_timeout_millis = 200;
  config.drain_poll_millis = 50;
  TenantBalancer balancer = Make(config);
  EXPECT_EQ(balancer.MoveTenant(db, dst).code(), StatusCode::kTimedOut);
  // The abort restored the source; the tenant never moved.
  EXPECT_EQ(ck_->placement()->Get(db).value(), src);
  EXPECT_EQ(balancer.Phase(db).value(), MovePhase::kIdle);
  EXPECT_EQ(quick_->PendingCount(db).value(), 1);
}

TEST_F(BalancerTest, RejectsClusterDbUnknownDestAndUnplaced) {
  TenantBalancer balancer = Make();
  EXPECT_EQ(balancer.MoveTenant(ck::DatabaseId::Cluster("east"), "west")
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(balancer.MoveTenant(ck::DatabaseId::Private("app", "ghost"),
                                  "west")
                  .IsNotFound());
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u");
  ck_->OpenDatabase(db);
  EXPECT_EQ(balancer.MoveTenant(db, "mars").code(),
            StatusCode::kInvalidArgument);
  // Same-cluster move is a no-op.
  EXPECT_TRUE(
      balancer.MoveTenant(db, ck_->placement()->Get(db).value()).ok());
}

TEST_F(BalancerTest, AdminRoutesMovesThroughTheOrchestrator) {
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "routed");
  ASSERT_TRUE(Enqueue(db, "x").ok());
  const std::string dst =
      OtherCluster(ck_->placement()->Get(db).value());
  TenantBalancer balancer = Make();
  core::QuickAdmin admin(quick_.get());
  admin.SetMoveOrchestrator(&balancer);
  ASSERT_TRUE(admin.MoveTenant(db, dst).ok());
  EXPECT_EQ(ck_->placement()->Get(db).value(), dst);
  EXPECT_EQ(Count("quick.balancer.moves_completed"), 1);
}

TEST_F(BalancerTest, RunPolicyOnceExecutesTheMonitorsPlan) {
  const ck::DatabaseId noisy = ck::DatabaseId::Private("app", "noisy");
  ASSERT_TRUE(Enqueue(noisy, "n").ok());
  const std::string src = ck_->placement()->Get(noisy).value();
  const std::string dst = OtherCluster(src);

  core::TenantMetrics metrics(&registry_);
  LoadMonitorConfig mconfig;
  mconfig.ewma_alpha = 1.0;
  mconfig.rebalance_min_gap = 50.0;
  LoadMonitor monitor(ck_.get(), mconfig, &clock_, &registry_);
  TenantBalancer balancer = Make();

  monitor.Tick();
  ASSERT_FALSE(balancer.RunPolicyOnce(&monitor).value());  // no plan yet

  metrics.OnEnqueued(noisy, 500);
  clock_.AdvanceMillis(1000);
  monitor.Tick();
  ASSERT_TRUE(balancer.RunPolicyOnce(&monitor).value());
  EXPECT_EQ(ck_->placement()->Get(noisy).value(), dst);
  EXPECT_EQ(quick_->PendingCount(noisy).value(), 1);
}

}  // namespace
}  // namespace quick::control
