#include "control/load_monitor.h"

#include <gtest/gtest.h>

#include "fdb/cluster_set.h"
#include "quick/tenant_metrics.h"

namespace quick::control {
namespace {

TEST(ParseTenantKeyTest, RoundTripsToStringForms) {
  const ck::DatabaseId pub = ck::DatabaseId::Public("news");
  const ck::DatabaseId priv = ck::DatabaseId::Private("mail", "alice");
  const ck::DatabaseId cluster = ck::DatabaseId::Cluster("east");
  EXPECT_EQ(ParseTenantKey(pub.ToString()), pub);
  EXPECT_EQ(ParseTenantKey(priv.ToString()), priv);
  EXPECT_EQ(ParseTenantKey(cluster.ToString()), cluster);
  EXPECT_FALSE(ParseTenantKey("").has_value());
  EXPECT_FALSE(ParseTenantKey("no-slash").has_value());
  EXPECT_FALSE(ParseTenantKey("/leading").has_value());
  EXPECT_FALSE(ParseTenantKey("app/unknown").has_value());
}

class LoadMonitorTest : public ::testing::Test {
 protected:
  LoadMonitorTest() {
    fdb::Database::Options opts;
    opts.clock = &clock_;
    clusters_ = std::make_unique<fdb::ClusterSet>(opts);
    clusters_->AddCluster("hot");
    clusters_->AddCluster("cool");
    ck_ = std::make_unique<ck::CloudKitService>(clusters_.get(), &clock_);
  }

  LoadMonitor Make(LoadMonitorConfig config = {}) {
    return LoadMonitor(ck_.get(), config, &clock_, &registry_);
  }

  ManualClock clock_{1000};
  MetricsRegistry registry_;
  core::TenantMetrics tenant_metrics_{&registry_};
  std::unique_ptr<fdb::ClusterSet> clusters_;
  std::unique_ptr<ck::CloudKitService> ck_;
};

TEST_F(LoadMonitorTest, FirstTickIsBaselineOnly) {
  const ck::DatabaseId alice = ck::DatabaseId::Private("app", "alice");
  ck_->placement()->Set(alice, "hot");
  tenant_metrics_.OnEnqueued(alice, 500);

  LoadMonitor monitor = Make();
  monitor.Tick();
  // Pre-existing counter values are the baseline, not an interval's worth
  // of traffic.
  for (const ClusterLoad& c : monitor.ClusterLoads()) {
    EXPECT_EQ(c.score, 0.0) << c.cluster;
  }
  EXPECT_TRUE(monitor.HotTenants().empty());
}

TEST_F(LoadMonitorTest, FoldsTenantRatesIntoClusterScores) {
  const ck::DatabaseId alice = ck::DatabaseId::Private("app", "alice");
  const ck::DatabaseId bob = ck::DatabaseId::Private("app", "bob");
  ck_->placement()->Set(alice, "hot");
  ck_->placement()->Set(bob, "cool");

  LoadMonitorConfig config;
  config.ewma_alpha = 1.0;  // no smoothing: score == sample
  LoadMonitor monitor = Make(config);
  monitor.Tick();  // baseline

  tenant_metrics_.OnEnqueued(alice, 100);
  tenant_metrics_.OnDequeued(alice, 40);
  tenant_metrics_.OnEnqueued(bob, 10);
  tenant_metrics_.OnDequeued(bob, 10);
  clock_.AdvanceMillis(1000);
  monitor.Tick();

  const std::vector<ClusterLoad> loads = monitor.ClusterLoads();
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_EQ(loads[0].cluster, "hot");
  EXPECT_DOUBLE_EQ(loads[0].enqueue_rate, 100.0);
  EXPECT_DOUBLE_EQ(loads[0].dequeue_rate, 40.0);
  // score = rate_weight*100 + backlog_weight*(100-40) = 160
  EXPECT_DOUBLE_EQ(loads[0].score, 160.0);
  EXPECT_EQ(loads[1].cluster, "cool");
  EXPECT_DOUBLE_EQ(loads[1].score, 10.0);  // no backlog

  // Published as x1000 gauges.
  EXPECT_EQ(registry_.GetGauge("quick.load.score.hot")->Value(), 160000);
  EXPECT_EQ(registry_.GetGauge("quick.load.score.cool")->Value(), 10000);

  const std::vector<TenantLoad> hot = monitor.HotTenants();
  ASSERT_GE(hot.size(), 1u);
  EXPECT_EQ(hot[0].db_id, alice);
  EXPECT_EQ(hot[0].cluster, "hot");
  EXPECT_DOUBLE_EQ(hot[0].enqueue_rate, 100.0);
}

TEST_F(LoadMonitorTest, BreakerEventsRaiseTheScore) {
  LoadMonitorConfig config;
  config.ewma_alpha = 1.0;
  config.breaker_weight = 100.0;
  LoadMonitor monitor = Make(config);
  monitor.Tick();

  registry_.GetCounter("quick.breaker.hot.opened")->Increment(2);
  registry_.GetCounter("quick.breaker.hot.reopened")->Increment();
  registry_.GetCounter("quick.breaker.hot.closed")->Increment();  // ignored
  clock_.AdvanceMillis(1000);
  monitor.Tick();

  const std::vector<ClusterLoad> loads = monitor.ClusterLoads();
  ASSERT_EQ(loads.size(), 2u);
  EXPECT_EQ(loads[0].cluster, "hot");
  EXPECT_EQ(loads[0].breaker_events, 3);
  EXPECT_DOUBLE_EQ(loads[0].score, 300.0);
}

TEST_F(LoadMonitorTest, EwmaSmoothsAcrossIntervals) {
  const ck::DatabaseId alice = ck::DatabaseId::Private("app", "alice");
  ck_->placement()->Set(alice, "hot");
  LoadMonitorConfig config;
  config.ewma_alpha = 0.5;
  LoadMonitor monitor = Make(config);
  monitor.Tick();

  tenant_metrics_.OnEnqueued(alice, 100);
  clock_.AdvanceMillis(1000);
  monitor.Tick();
  const double first = monitor.ClusterLoads().front().score;
  EXPECT_GT(first, 0.0);

  // Silence: the score decays by alpha each interval instead of dropping
  // straight to zero.
  clock_.AdvanceMillis(1000);
  monitor.Tick();
  const double second = monitor.ClusterLoads().front().score;
  EXPECT_DOUBLE_EQ(second, first * 0.5);
}

TEST_F(LoadMonitorTest, HotTenantsExcludesClusterDbsAndCapsAtTopK) {
  LoadMonitorConfig config;
  config.top_k = 2;
  config.ewma_alpha = 1.0;
  LoadMonitor monitor = Make(config);
  monitor.Tick();

  for (int i = 0; i < 4; ++i) {
    const ck::DatabaseId id =
        ck::DatabaseId::Private("app", "u" + std::to_string(i));
    ck_->placement()->Set(id, "hot");
    tenant_metrics_.OnEnqueued(id, 10 * (i + 1));
  }
  tenant_metrics_.OnEnqueued(ck::DatabaseId::Cluster("hot"), 1000);
  clock_.AdvanceMillis(1000);
  monitor.Tick();

  const std::vector<TenantLoad> hot = monitor.HotTenants();
  ASSERT_EQ(hot.size(), 2u);
  EXPECT_EQ(hot[0].db_id, ck::DatabaseId::Private("app", "u3"));
  EXPECT_EQ(hot[1].db_id, ck::DatabaseId::Private("app", "u2"));
}

TEST_F(LoadMonitorTest, SuggestsMovingTheHottestTenantOffTheHottestCluster) {
  const ck::DatabaseId noisy = ck::DatabaseId::Private("app", "noisy");
  const ck::DatabaseId quiet = ck::DatabaseId::Private("app", "quiet");
  ck_->placement()->Set(noisy, "hot");
  ck_->placement()->Set(quiet, "cool");

  LoadMonitorConfig config;
  config.ewma_alpha = 1.0;
  config.rebalance_min_gap = 50.0;
  LoadMonitor monitor = Make(config);
  monitor.Tick();

  // Below the gap: no plan.
  tenant_metrics_.OnEnqueued(noisy, 20);
  tenant_metrics_.OnDequeued(noisy, 20);
  clock_.AdvanceMillis(1000);
  monitor.Tick();
  EXPECT_FALSE(monitor.SuggestRebalance().has_value());

  // A sustained hot tenant opens the gap.
  tenant_metrics_.OnEnqueued(noisy, 200);
  clock_.AdvanceMillis(1000);
  monitor.Tick();
  const std::optional<RebalancePlan> plan = monitor.SuggestRebalance();
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->db_id, noisy);
  EXPECT_EQ(plan->source_cluster, "hot");
  EXPECT_EQ(plan->dest_cluster, "cool");
  EXPECT_GE(plan->score_gap, 50.0);
}

}  // namespace
}  // namespace quick::control
