#include <gtest/gtest.h>

#include <numeric>

#include "workload/harness.h"
#include "workload/load_generator.h"
#include "workload/pareto.h"

namespace quick::wl {
namespace {

TEST(ParetoTest, PaperAlphaValue) {
  // α = log₄5 ≈ 1.1609.
  EXPECT_NEAR(PaperAlpha(), 1.1609, 0.001);
}

TEST(ParetoTest, SamplesAreAtLeastScale) {
  Random rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(SamplePareto(PaperAlpha(), &rng), 1.0);
  }
}

TEST(ParetoTest, RatesPreserveAggregate) {
  Random rng(2);
  const std::vector<double> rates =
      ParetoClientRates(500, PaperAlpha(), /*base_rate_hz=*/2.0, &rng);
  ASSERT_EQ(rates.size(), 500u);
  const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
  EXPECT_NEAR(total, 500 * 2.0, 1e-6);
  for (double r : rates) EXPECT_GT(r, 0.0);
}

TEST(ParetoTest, RatesAreHeavyTailed) {
  Random rng(3);
  std::vector<double> rates =
      ParetoClientRates(1000, PaperAlpha(), 1.0, &rng);
  std::sort(rates.begin(), rates.end());
  // The top 10% of clients should carry far more than 10% of the load —
  // the skew Figure 6 is about.
  const double total = std::accumulate(rates.begin(), rates.end(), 0.0);
  const double top_decile =
      std::accumulate(rates.end() - 100, rates.end(), 0.0);
  EXPECT_GT(top_decile / total, 0.3);
}

TEST(HarnessTest, SetsUpClusterFleet) {
  HarnessOptions options;
  options.num_clusters = 3;
  options.work_millis = 0;
  Harness harness(options);
  EXPECT_EQ(harness.cluster_names().size(), 3u);
  EXPECT_NE(harness.cloudkit()->clusters()->Get("cluster1"), nullptr);
}

TEST(HarnessTest, EnqueueSimCreatesBacklog) {
  HarnessOptions options;
  options.work_millis = 0;
  Harness harness(options);
  ASSERT_TRUE(harness.EnqueueSim(/*client=*/0, /*items=*/3).ok());
  ASSERT_TRUE(harness.EnqueueSim(/*client=*/1, /*items=*/2).ok());
  EXPECT_EQ(harness.quick()->PendingCount(harness.ClientDb(0)).value_or(-1),
            3);
  EXPECT_EQ(harness.quick()->PendingCount(harness.ClientDb(1)).value_or(-1),
            2);
}

TEST(HarnessTest, ConsumerExecutesSimWork) {
  HarnessOptions options;
  options.work_millis = 0;
  Harness harness(options);
  ASSERT_TRUE(harness.EnqueueSim(0, 2).ok());
  core::ConsumerConfig config;
  config.sequential = true;
  config.relaxed_reads_for_peek = false;
  config.dequeue_max = 2;
  auto consumer = harness.MakeConsumer(config, "wl-test");
  ASSERT_TRUE(consumer->RunOnePass("cluster0").ok());
  EXPECT_EQ(harness.WorkExecuted(), 2);
}

TEST(LoadGeneratorTest, OpenLoopProducesApproximateRate) {
  HarnessOptions hopts;
  hopts.work_millis = 0;
  Harness harness(hopts);
  LoadOptions lopts;
  lopts.num_clients = 20;
  lopts.rate_per_client_hz = 20.0;  // aggregate 400/s
  lopts.num_threads = 2;
  lopts.seed = 5;
  OpenLoopGenerator generator(&harness, lopts);
  generator.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  generator.Stop();
  // ~200 expected in 0.5s; allow wide tolerance for CI noise.
  EXPECT_GT(generator.ItemsEnqueued(), 60);
  EXPECT_LT(generator.ItemsEnqueued(), 400);
  EXPECT_EQ(generator.Errors(), 0);
}

TEST(LoadGeneratorTest, SkewedLoadStillEnqueues) {
  HarnessOptions hopts;
  hopts.work_millis = 0;
  Harness harness(hopts);
  LoadOptions lopts;
  lopts.num_clients = 30;
  lopts.rate_per_client_hz = 10.0;
  lopts.skewed = true;
  lopts.num_threads = 2;
  OpenLoopGenerator generator(&harness, lopts);
  generator.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  generator.Stop();
  EXPECT_GT(generator.ItemsEnqueued(), 10);
}

TEST(LoadGeneratorTest, StopIsIdempotentAndRestartSafe) {
  HarnessOptions hopts;
  hopts.work_millis = 0;
  Harness harness(hopts);
  LoadOptions lopts;
  lopts.num_clients = 4;
  lopts.rate_per_client_hz = 5.0;
  OpenLoopGenerator generator(&harness, lopts);
  generator.Start();
  generator.Start();  // no-op
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  generator.Stop();
  generator.Stop();  // no-op
}

TEST(SaturationFeederTest, MaintainsBacklogTarget) {
  HarnessOptions hopts;
  hopts.work_millis = 0;
  Harness harness(hopts);
  SaturationFeeder feeder(&harness, /*num_clients=*/8,
                          /*items_per_enqueue=*/2, /*num_threads=*/2);
  feeder.Start(/*backlog_target_per_client=*/4);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  feeder.Stop();
  // Every client should be at (or above, in 2-item steps) the target.
  for (int c = 0; c < 8; ++c) {
    const int64_t pending =
        harness.quick()->PendingCount(harness.ClientDb(c)).value_or(-1);
    EXPECT_GE(pending, 4) << "client " << c;
    EXPECT_LE(pending, 6) << "client " << c;
  }
  EXPECT_GE(feeder.ItemsEnqueued(), 8 * 4);
}

}  // namespace
}  // namespace quick::wl
