#include "tuple/tuple.h"

#include <gtest/gtest.h>

#include <limits>

namespace quick::tup {
namespace {

TEST(TupleTest, EmptyTupleEncodesEmpty) {
  Tuple t;
  EXPECT_TRUE(t.Encode().empty());
  auto back = Tuple::Decode("");
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(TupleTest, RoundTripBasicTypes) {
  Tuple t;
  t.AddNull()
      .AddBytes(std::string("\x00\x01\xFF", 3))
      .AddString("hello")
      .AddInt(42)
      .AddDouble(3.25)
      .AddBool(true)
      .AddBool(false);
  auto back = Tuple::Decode(t.Encode());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 7u);
  EXPECT_TRUE(back->IsNull(0));
  EXPECT_EQ(back->GetBytes(1).value(), std::string("\x00\x01\xFF", 3));
  EXPECT_EQ(back->GetString(2).value(), "hello");
  EXPECT_EQ(back->GetInt(3).value(), 42);
  EXPECT_DOUBLE_EQ(back->GetDouble(4).value(), 3.25);
  EXPECT_TRUE(back->GetBool(5).value());
  EXPECT_FALSE(back->GetBool(6).value());
}

TEST(TupleTest, RoundTripIntegerBoundaries) {
  const int64_t cases[] = {0,
                           1,
                           -1,
                           255,
                           256,
                           -255,
                           -256,
                           65535,
                           -65536,
                           std::numeric_limits<int64_t>::max(),
                           std::numeric_limits<int64_t>::min(),
                           std::numeric_limits<int64_t>::min() + 1};
  for (int64_t v : cases) {
    Tuple t;
    t.AddInt(v);
    auto back = Tuple::Decode(t.Encode());
    ASSERT_TRUE(back.ok()) << v;
    EXPECT_EQ(back->GetInt(0).value(), v);
  }
}

TEST(TupleTest, IntegerOrderPreserved) {
  const int64_t cases[] = {std::numeric_limits<int64_t>::min(),
                           -1000000,
                           -65536,
                           -256,
                           -255,
                           -2,
                           -1,
                           0,
                           1,
                           2,
                           255,
                           256,
                           65535,
                           1000000,
                           std::numeric_limits<int64_t>::max()};
  for (size_t i = 0; i + 1 < std::size(cases); ++i) {
    Tuple a, b;
    a.AddInt(cases[i]);
    b.AddInt(cases[i + 1]);
    EXPECT_LT(a.Encode(), b.Encode())
        << cases[i] << " vs " << cases[i + 1];
  }
}

TEST(TupleTest, StringWithEmbeddedNulRoundTrips) {
  Tuple t;
  t.AddString(std::string("a\x00" "b", 3));
  auto back = Tuple::Decode(t.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->GetString(0).value(), std::string("a\x00" "b", 3));
}

TEST(TupleTest, StringPrefixSortsFirst) {
  Tuple a, b;
  a.AddString("abc");
  b.AddString("abcd");
  EXPECT_LT(a.Encode(), b.Encode());
}

TEST(TupleTest, DoubleOrderingIncludingNegatives) {
  const double cases[] = {-1e300, -2.5, -1.0, -0.5, 0.0,
                          0.5,    1.0,  2.5,  1e300};
  for (size_t i = 0; i + 1 < std::size(cases); ++i) {
    Tuple a, b;
    a.AddDouble(cases[i]);
    b.AddDouble(cases[i + 1]);
    EXPECT_LT(a.Encode(), b.Encode())
        << cases[i] << " vs " << cases[i + 1];
  }
}

TEST(TupleTest, NestedTupleRoundTrip) {
  Tuple inner;
  inner.AddString("in").AddInt(7).AddNull();
  Tuple t;
  t.AddTuple(inner).AddString("after");
  auto back = Tuple::Decode(t.Encode());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 2u);
  Tuple in = back->GetTuple(0).value();
  ASSERT_EQ(in.size(), 3u);
  EXPECT_EQ(in.GetString(0).value(), "in");
  EXPECT_EQ(in.GetInt(1).value(), 7);
  EXPECT_TRUE(in.IsNull(2));
  EXPECT_EQ(back->GetString(1).value(), "after");
}

TEST(TupleTest, UuidRoundTrip) {
  Uuid u = Uuid::FromHex("0123456789abcdef0123456789abcdef").value();
  Tuple t;
  t.AddUuid(u);
  auto back = Tuple::Decode(t.Encode());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->GetUuid(0).value().ToHex(),
            "0123456789abcdef0123456789abcdef");
}

TEST(TupleTest, UuidFromHexRejectsBadInput) {
  EXPECT_FALSE(Uuid::FromHex("short").ok());
  EXPECT_FALSE(Uuid::FromHex(std::string(32, 'g')).ok());
}

TEST(TupleTest, CrossTypeOrdering) {
  // null < bytes < string < nested < int < double < bool < uuid.
  std::vector<Tuple> ts(8);
  ts[0].AddNull();
  ts[1].AddBytes("zzz");
  ts[2].AddString("aaa");
  ts[3].AddTuple(Tuple().AddInt(1));
  ts[4].AddInt(-999);
  ts[5].AddDouble(-1e308);
  ts[6].AddBool(false);
  ts[7].AddUuid(Uuid{});
  for (size_t i = 0; i + 1 < ts.size(); ++i) {
    EXPECT_LT(ts[i].Encode(), ts[i + 1].Encode()) << i;
  }
}

TEST(TupleTest, PrefixTupleSortsBeforeExtension) {
  Tuple a, b;
  a.AddString("user").AddInt(1);
  b.AddString("user").AddInt(1);
  b.AddInt(0);
  EXPECT_LT(a.Encode(), b.Encode());
  EXPECT_EQ(a.Encode(), b.Prefix(2).Encode());
}

TEST(TupleTest, TypedGettersRejectWrongType) {
  Tuple t;
  t.AddString("x");
  EXPECT_FALSE(t.GetInt(0).ok());
  EXPECT_FALSE(t.GetInt(5).ok());
  EXPECT_FALSE(t.GetBool(0).ok());
  EXPECT_TRUE(t.GetString(0).ok());
}

TEST(TupleTest, DecodeRejectsMalformed) {
  EXPECT_FALSE(Tuple::Decode("\x21three").ok());   // truncated double
  EXPECT_FALSE(Tuple::Decode("\x30short").ok());   // truncated uuid
  EXPECT_FALSE(Tuple::Decode("\x01no-term").ok()); // unterminated bytes
  EXPECT_FALSE(Tuple::Decode("\x7F").ok());        // unknown code
  EXPECT_FALSE(Tuple::Decode("\x05\x15\x01").ok());// unterminated nested
}

TEST(TupleTest, ConcatAppendsElements) {
  Tuple a, b;
  a.AddInt(1);
  b.AddInt(2).AddString("x");
  a.Concat(b);
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a.GetInt(1).value(), 2);
}

TEST(TupleTest, ComparisonMatchesEncoding) {
  Tuple a, b;
  a.AddString("abc").AddInt(5);
  b.AddString("abc").AddInt(6);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE((a.Encode() < b.Encode()));
  EXPECT_TRUE(a == a);
}

TEST(TupleTest, ToStringReadable) {
  Tuple t;
  t.AddString("u1").AddInt(3).AddNull();
  EXPECT_EQ(t.ToString(), "(\"u1\", 3, null)");
}

TEST(TupleTest, NestedNullVsNestedEmpty) {
  Tuple with_null;
  with_null.AddTuple(Tuple().AddNull());
  Tuple empty_nested;
  empty_nested.AddTuple(Tuple());
  auto a = Tuple::Decode(with_null.Encode());
  auto b = Tuple::Decode(empty_nested.Encode());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->GetTuple(0).value().size(), 1u);
  EXPECT_EQ(b->GetTuple(0).value().size(), 0u);
}

}  // namespace
}  // namespace quick::tup
