#include "tuple/subspace.h"

#include <gtest/gtest.h>

namespace quick::tup {
namespace {

TEST(SubspaceTest, PackPrependsPrefix) {
  Subspace s(Tuple().AddString("zone"));
  Tuple t;
  t.AddInt(5);
  const std::string key = s.Pack(t);
  EXPECT_TRUE(s.Contains(key));
  EXPECT_EQ(key, Tuple().AddString("zone").AddInt(5).Encode());
}

TEST(SubspaceTest, UnpackInvertsPack) {
  Subspace s(Tuple().AddString("a").AddInt(1));
  Tuple t;
  t.AddString("item").AddInt(99);
  auto back = s.Unpack(s.Pack(t));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(*back == t);
}

TEST(SubspaceTest, UnpackRejectsForeignKey) {
  Subspace s(Tuple().AddString("a"));
  Subspace other(Tuple().AddString("b"));
  EXPECT_FALSE(s.Unpack(other.Pack(Tuple().AddInt(1))).ok());
}

TEST(SubspaceTest, NestedSub) {
  Subspace root(Tuple().AddString("db"));
  Subspace zone = root.Sub("zoneA").Sub(int64_t{7});
  const std::string key = zone.Pack(Tuple().AddString("rec"));
  EXPECT_TRUE(root.Contains(key));
  EXPECT_TRUE(zone.Contains(key));
  auto back = zone.Unpack(key);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->GetString(0).value(), "rec");
}

TEST(SubspaceTest, RangeCoversOnlyOwnKeys) {
  Subspace a(Tuple().AddString("a"));
  Subspace b(Tuple().AddString("b"));
  KeyRange ra = a.Range();
  EXPECT_TRUE(ra.Contains(a.Pack(Tuple().AddInt(0))));
  EXPECT_TRUE(ra.Contains(a.Pack(Tuple().AddString("zzz"))));
  EXPECT_FALSE(ra.Contains(b.Pack(Tuple().AddInt(0))));
}

TEST(SubspaceTest, TuplePrefixRange) {
  Subspace s(Tuple().AddString("idx"));
  KeyRange r = s.Range(Tuple().AddInt(5));
  EXPECT_TRUE(r.Contains(s.Pack(Tuple().AddInt(5).AddString("x"))));
  EXPECT_FALSE(r.Contains(s.Pack(Tuple().AddInt(6))));
  EXPECT_FALSE(r.Contains(s.Pack(Tuple().AddInt(4).AddString("x"))));
}

TEST(SubspaceTest, SiblingSubspacesDisjoint) {
  Subspace root(Tuple().AddString("db"));
  Subspace s1 = root.Sub(int64_t{1});
  Subspace s2 = root.Sub(int64_t{2});
  EXPECT_FALSE(s1.Range().Intersects(s2.Range()));
}

TEST(SubspaceTest, RawPrefixConstructor) {
  Subspace s(std::string("\x15\x01"));
  EXPECT_EQ(s.prefix(), "\x15\x01");
  EXPECT_TRUE(s.Contains(s.Pack(Tuple().AddInt(3))));
}

}  // namespace
}  // namespace quick::tup
