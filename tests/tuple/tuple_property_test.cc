// Property tests for the tuple layer: for randomly generated tuples,
// (1) Decode(Encode(t)) == t, and (2) element-wise comparison agrees with
// lexicographic comparison of the encodings. Both properties are what the
// Record Layer indexes rely on.

#include <gtest/gtest.h>

#include <limits>

#include "common/random.h"
#include "tuple/tuple.h"

namespace quick::tup {
namespace {

Element RandomElement(Random* rng, int depth);

Tuple RandomTuple(Random* rng, int max_len, int depth) {
  Tuple t;
  const int n = static_cast<int>(rng->Uniform(max_len + 1));
  for (int i = 0; i < n; ++i) {
    t.Add(RandomElement(rng, depth));
  }
  return t;
}

std::string RandomBytesValue(Random* rng, int max_len) {
  const int n = static_cast<int>(rng->Uniform(max_len + 1));
  std::string s(n, '\0');
  for (int i = 0; i < n; ++i) {
    // Bias towards interesting bytes: 0x00, 0xFF, and a narrow alphabet so
    // shared prefixes and escape sequences happen often.
    switch (rng->Uniform(4)) {
      case 0:
        s[i] = '\x00';
        break;
      case 1:
        s[i] = '\xFF';
        break;
      default:
        s[i] = static_cast<char>('a' + rng->Uniform(3));
    }
  }
  return s;
}

int64_t RandomInt(Random* rng) {
  // Mix of magnitudes so every byte-width branch is exercised.
  const int bits = 1 + static_cast<int>(rng->Uniform(63));
  const uint64_t mask = bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
  int64_t v = static_cast<int64_t>(rng->NextU64() & mask);
  if (rng->Bernoulli(0.5)) v = -v;
  if (rng->Bernoulli(0.01)) v = std::numeric_limits<int64_t>::min();
  if (rng->Bernoulli(0.01)) v = std::numeric_limits<int64_t>::max();
  return v;
}

double RandomDouble(Random* rng) {
  switch (rng->Uniform(5)) {
    case 0:
      return 0.0;
    case 1:
      return -0.0;
    case 2:
      return (rng->NextDouble() - 0.5) * 10;
    case 3:
      return (rng->NextDouble() - 0.5) * 1e300;
    default:
      return static_cast<double>(RandomInt(rng));
  }
}

Element RandomElement(Random* rng, int depth) {
  const int kinds = depth > 0 ? 8 : 7;  // nested tuples only while depth > 0
  switch (rng->Uniform(kinds)) {
    case 0:
      return Null{};
    case 1:
      return Bytes{RandomBytesValue(rng, 6)};
    case 2:
      return RandomBytesValue(rng, 6);  // string
    case 3:
      return RandomInt(rng);
    case 4:
      return RandomDouble(rng);
    case 5:
      return rng->Bernoulli(0.5);
    case 6: {
      Uuid u;
      for (auto& b : u.data) b = static_cast<uint8_t>(rng->Uniform(4));
      return u;
    }
    default:
      return RandomTuple(rng, 3, depth - 1);
  }
}

TEST(TuplePropertyTest, EncodeDecodeRoundTrip) {
  Random rng(20260705);
  for (int iter = 0; iter < 5000; ++iter) {
    Tuple t = RandomTuple(&rng, 5, 2);
    const std::string encoded = t.Encode();
    auto back = Tuple::Decode(encoded);
    ASSERT_TRUE(back.ok()) << "iter " << iter << " tuple " << t.ToString();
    EXPECT_TRUE(t == *back)
        << "iter " << iter << ": " << t.ToString() << " != "
        << back->ToString();
    // Re-encoding is byte-identical (canonical encoding).
    EXPECT_EQ(back->Encode(), encoded);
  }
}

TEST(TuplePropertyTest, EncodingPreservesOrder) {
  Random rng(77);
  for (int iter = 0; iter < 5000; ++iter) {
    Tuple a = RandomTuple(&rng, 4, 2);
    Tuple b = RandomTuple(&rng, 4, 2);
    const auto semantic = a <=> b;
    const std::string ea = a.Encode();
    const std::string eb = b.Encode();
    if (semantic == std::strong_ordering::less) {
      EXPECT_LT(ea, eb) << a.ToString() << " vs " << b.ToString();
    } else if (semantic == std::strong_ordering::greater) {
      EXPECT_GT(ea, eb) << a.ToString() << " vs " << b.ToString();
    } else {
      EXPECT_EQ(ea, eb) << a.ToString() << " vs " << b.ToString();
    }
  }
}

TEST(TuplePropertyTest, IntRoundTripSweep) {
  Random rng(99);
  for (int iter = 0; iter < 20000; ++iter) {
    const int64_t v = RandomInt(&rng);
    Tuple t;
    t.AddInt(v);
    auto back = Tuple::Decode(t.Encode());
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(back->GetInt(0).value(), v);
  }
}

TEST(TuplePropertyTest, IntOrderSweep) {
  Random rng(100);
  for (int iter = 0; iter < 20000; ++iter) {
    const int64_t a = RandomInt(&rng);
    const int64_t b = RandomInt(&rng);
    Tuple ta, tb;
    ta.AddInt(a);
    tb.AddInt(b);
    ASSERT_EQ(a < b, ta.Encode() < tb.Encode()) << a << " vs " << b;
  }
}

TEST(TuplePropertyTest, DecodeNeverCrashesOnRandomBytes) {
  Random rng(123);
  for (int iter = 0; iter < 20000; ++iter) {
    const int n = static_cast<int>(rng.Uniform(20));
    std::string junk(n, '\0');
    for (int i = 0; i < n; ++i) {
      junk[i] = static_cast<char>(rng.Uniform(256));
    }
    // Must either decode or return an error; never crash or hang.
    auto result = Tuple::Decode(junk);
    if (result.ok()) {
      // If it decoded, re-encoding must reproduce a decodable string.
      auto again = Tuple::Decode(result->Encode());
      EXPECT_TRUE(again.ok());
    }
  }
}

}  // namespace
}  // namespace quick::tup
