#include <gtest/gtest.h>

#include "cloudkit/queue_zone.h"
#include "fdb/database.h"
#include "fdb/retry.h"

namespace quick::ck {
namespace {

class FifoZoneTest : public ::testing::Test {
 protected:
  FifoZoneTest() {
    fdb::Database::Options opts;
    opts.clock = &clock_;
    db_ = std::make_unique<fdb::Database>("fifo", opts);
  }

  Status WithZone(const std::function<Status(QueueZone&)>& body) {
    return fdb::RunTransaction(db_.get(), [&](fdb::Transaction& txn) {
      QueueZone zone(&txn, tup::Subspace(tup::Tuple().AddString("fz")),
                     &clock_, /*fifo=*/true);
      return body(zone);
    });
  }

  std::string MustEnqueue(const std::string& id, int64_t priority = 0,
                          int64_t delay = 0) {
    std::string out;
    Status st = WithZone([&](QueueZone& zone) {
      QueuedItem item;
      item.id = id;
      item.job_type = "t";
      item.priority = priority;
      auto r = zone.Enqueue(item, delay);
      QUICK_RETURN_IF_ERROR(r.status());
      out = *r;
      return Status::OK();
    });
    EXPECT_TRUE(st.ok()) << st;
    return out;
  }

  std::vector<std::string> FifoIds() {
    std::vector<std::string> ids;
    EXPECT_TRUE(WithZone([&](QueueZone& zone) {
                  auto items = zone.PeekFifo(100);
                  QUICK_RETURN_IF_ERROR(items.status());
                  ids.clear();
                  for (const QueuedItem& item : *items) ids.push_back(item.id);
                  return Status::OK();
                }).ok());
    return ids;
  }

  ManualClock clock_{1000};
  std::unique_ptr<fdb::Database> db_;
};

TEST_F(FifoZoneTest, StrictEnqueueOrderIgnoringPriority) {
  // Higher-priority items would jump the line under (priority, vesting)
  // order; FIFO order is strictly by enqueue commit.
  MustEnqueue("first", /*priority=*/9);
  MustEnqueue("second", /*priority=*/0);
  MustEnqueue("third", /*priority=*/5);
  EXPECT_EQ(FifoIds(), (std::vector<std::string>{"first", "second", "third"}));
}

TEST_F(FifoZoneTest, OrderImmuneToClockSkew) {
  // The §5 motivation: vesting times come from the enqueueing server's
  // local clock, which may be skewed. Move the clock BACKWARD between
  // enqueues: (priority, vesting) order would flip the two items; the
  // commit-order view must not.
  MustEnqueue("early");
  clock_.AdvanceMillis(-500);  // skewed second server
  MustEnqueue("late-with-skewed-clock");
  clock_.AdvanceMillis(600);  // both items now vested
  EXPECT_EQ(FifoIds(),
            (std::vector<std::string>{"early", "late-with-skewed-clock"}));
  // The vesting-ordered view is fooled by the skew — that is the point.
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                auto items = zone.Peek(10);
                QUICK_RETURN_IF_ERROR(items.status());
                EXPECT_EQ((*items)[0].id, "late-with-skewed-clock");
                return Status::OK();
              }).ok());
}

TEST_F(FifoZoneTest, LeaseDoesNotReorderArrival) {
  MustEnqueue("a");
  MustEnqueue("b");
  // Lease + requeue "a": its vesting changes twice, its arrival stamp not.
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                return zone.ObtainLease("a", 1000).status();
              }).ok());
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                return zone.Requeue("a", 0);
              }).ok());
  EXPECT_EQ(FifoIds(), (std::vector<std::string>{"a", "b"}));
}

TEST_F(FifoZoneTest, LeasedItemsHiddenFromFifoPeek) {
  MustEnqueue("a");
  MustEnqueue("b");
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                return zone.ObtainLease("a", 5000).status();
              }).ok());
  EXPECT_EQ(FifoIds(), (std::vector<std::string>{"b"}));
}

TEST_F(FifoZoneTest, DelayedItemsHiddenUntilVesting) {
  MustEnqueue("now");
  MustEnqueue("later", 0, /*delay=*/5000);
  EXPECT_EQ(FifoIds(), (std::vector<std::string>{"now"}));
  clock_.AdvanceMillis(5001);
  EXPECT_EQ(FifoIds(), (std::vector<std::string>{"now", "later"}));
}

TEST_F(FifoZoneTest, DequeueFifoLeasesInOrder) {
  MustEnqueue("a", 9);
  MustEnqueue("b", 0);
  MustEnqueue("c", 5);
  std::vector<LeasedItem> leased;
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                auto batch = zone.DequeueFifo(2, 1000);
                QUICK_RETURN_IF_ERROR(batch.status());
                leased = *batch;
                return Status::OK();
              }).ok());
  ASSERT_EQ(leased.size(), 2u);
  EXPECT_EQ(leased[0].item.id, "a");
  EXPECT_EQ(leased[1].item.id, "b");
  EXPECT_EQ(FifoIds(), (std::vector<std::string>{"c"}));
}

TEST_F(FifoZoneTest, CompleteRemovesArrivalEntry) {
  MustEnqueue("a");
  MustEnqueue("b");
  ASSERT_TRUE(WithZone([&](QueueZone& zone) { return zone.Complete("a"); })
                  .ok());
  EXPECT_EQ(FifoIds(), (std::vector<std::string>{"b"}));
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                auto stamp = zone.ArrivalStamp("a");
                QUICK_RETURN_IF_ERROR(stamp.status());
                EXPECT_FALSE(stamp->has_value());
                return Status::OK();
              }).ok());
}

TEST_F(FifoZoneTest, ArrivalStampsAreMonotonic) {
  MustEnqueue("a");
  MustEnqueue("b");
  std::string sa, sb;
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                QUICK_ASSIGN_OR_RETURN(auto a, zone.ArrivalStamp("a"));
                QUICK_ASSIGN_OR_RETURN(auto b, zone.ArrivalStamp("b"));
                sa = a.value_or("");
                sb = b.value_or("");
                return Status::OK();
              }).ok());
  ASSERT_FALSE(sa.empty());
  ASSERT_FALSE(sb.empty());
  EXPECT_LT(sa, sb);
}

TEST_F(FifoZoneTest, VestingOrderApisStillWork) {
  // A FIFO zone also supports the regular (priority, vesting) API; both
  // views coexist.
  MustEnqueue("low", 9);
  MustEnqueue("high", 0);
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                auto items = zone.Peek(10);
                QUICK_RETURN_IF_ERROR(items.status());
                EXPECT_EQ((*items)[0].id, "high");  // priority order
                return Status::OK();
              }).ok());
  EXPECT_EQ(FifoIds()[0], "low");  // arrival order
}

}  // namespace
}  // namespace quick::ck
