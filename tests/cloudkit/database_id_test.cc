#include "cloudkit/database_id.h"

#include <gtest/gtest.h>

namespace quick::ck {
namespace {

TEST(DatabaseIdTest, Factories) {
  DatabaseId priv = DatabaseId::Private("photos", "alice");
  EXPECT_EQ(priv.kind, DatabaseKind::kPrivate);
  EXPECT_EQ(priv.app, "photos");
  EXPECT_EQ(priv.user, "alice");

  DatabaseId pub = DatabaseId::Public("photos");
  EXPECT_EQ(pub.kind, DatabaseKind::kPublic);
  EXPECT_TRUE(pub.user.empty());

  DatabaseId cluster = DatabaseId::Cluster("east-1");
  EXPECT_EQ(cluster.kind, DatabaseKind::kCluster);
  EXPECT_EQ(cluster.user, "east-1");
}

TEST(DatabaseIdTest, KeyStringRoundTrip) {
  const DatabaseId ids[] = {
      DatabaseId::Private("photos", "alice"),
      DatabaseId::Public("notes"),
      DatabaseId::Cluster("east-1"),
      DatabaseId::Private("app with spaces", "user/with/slashes"),
  };
  for (const DatabaseId& id : ids) {
    auto back = DatabaseId::FromKeyString(id.ToKeyString());
    ASSERT_TRUE(back.ok()) << id.ToString();
    EXPECT_EQ(*back, id);
  }
}

TEST(DatabaseIdTest, FromKeyStringRejectsJunk) {
  EXPECT_FALSE(DatabaseId::FromKeyString("no separators").ok());
  EXPECT_FALSE(DatabaseId::FromKeyString("a\x1f" "b").ok());
  EXPECT_FALSE(DatabaseId::FromKeyString("a\x1f" "b\x1f" "9").ok());
  EXPECT_FALSE(DatabaseId::FromKeyString("a\x1f" "b\x1f" "xx").ok());
}

TEST(DatabaseIdTest, DistinctIdsDistinctKeys) {
  EXPECT_NE(DatabaseId::Private("a", "u").ToKeyString(),
            DatabaseId::Private("a", "v").ToKeyString());
  EXPECT_NE(DatabaseId::Private("a", "").ToKeyString(),
            DatabaseId::Public("a").ToKeyString());
}

TEST(DatabaseIdTest, TupleEncodingDistinct) {
  EXPECT_NE(DatabaseId::Private("a", "u").ToTuple().Encode(),
            DatabaseId::Public("a").ToTuple().Encode());
}

TEST(DatabaseIdTest, OrderingIsTotal) {
  DatabaseId a = DatabaseId::Private("a", "u");
  DatabaseId b = DatabaseId::Private("b", "u");
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_TRUE(a == a);
}

}  // namespace
}  // namespace quick::ck
