#include "cloudkit/queue_zone.h"

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "fdb/database.h"
#include "fdb/retry.h"

namespace quick::ck {
namespace {

class QueueZoneTest : public ::testing::Test {
 protected:
  QueueZoneTest() {
    fdb::Database::Options opts;
    opts.clock = &clock_;
    db_ = std::make_unique<fdb::Database>("qz", opts);
  }

  /// Runs `body` with a QueueZone in a committed transaction.
  Status WithZone(const std::function<Status(QueueZone&)>& body) {
    return fdb::RunTransaction(db_.get(), [&](fdb::Transaction& txn) {
      QueueZone zone(&txn, tup::Subspace(tup::Tuple().AddString("qz")),
                     &clock_);
      return body(zone);
    });
  }

  std::string MustEnqueue(int64_t delay_ms, int64_t priority = 0,
                          const std::string& id = "") {
    std::string out_id;
    Status st = WithZone([&](QueueZone& zone) {
      QueuedItem item;
      item.id = id;
      item.job_type = "test";
      item.priority = priority;
      item.payload = "payload";
      auto r = zone.Enqueue(item, delay_ms);
      QUICK_RETURN_IF_ERROR(r.status());
      out_id = *r;
      return Status::OK();
    });
    EXPECT_TRUE(st.ok()) << st;
    return out_id;
  }

  ManualClock clock_{1000000};
  std::unique_ptr<fdb::Database> db_;
};

TEST_F(QueueZoneTest, EnqueueGeneratesIdAndSetsVesting) {
  const std::string id = MustEnqueue(500);
  EXPECT_EQ(id.size(), 32u);
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                auto item = zone.Load(id);
                QUICK_RETURN_IF_ERROR(item.status());
                EXPECT_TRUE(item->has_value());
                EXPECT_EQ((*item)->vesting_time, clock_.NowMillis() + 500);
                EXPECT_EQ((*item)->enqueue_time, clock_.NowMillis());
                EXPECT_FALSE((*item)->leased());
                return Status::OK();
              }).ok());
}

TEST_F(QueueZoneTest, EnqueueWithClientIdIsIdempotentKey) {
  EXPECT_EQ(MustEnqueue(0, 0, "my-id"), "my-id");
  // Re-enqueueing the same id overwrites rather than duplicating.
  EXPECT_EQ(MustEnqueue(0, 0, "my-id"), "my-id");
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                EXPECT_EQ(zone.Count().value(), 1);
                return Status::OK();
              }).ok());
}

TEST_F(QueueZoneTest, PeekReturnsOnlyVestedItems) {
  MustEnqueue(0);
  MustEnqueue(5000);  // delayed
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                auto items = zone.Peek(10);
                QUICK_RETURN_IF_ERROR(items.status());
                EXPECT_EQ(items->size(), 1u);
                return Status::OK();
              }).ok());
  clock_.AdvanceMillis(5001);
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                EXPECT_EQ(zone.Peek(10)->size(), 2u);
                return Status::OK();
              }).ok());
}

TEST_F(QueueZoneTest, PeekOrdersByPriorityThenVesting) {
  const std::string low = MustEnqueue(0, /*priority=*/5, "low");
  clock_.AdvanceMillis(10);
  const std::string high_late = MustEnqueue(0, /*priority=*/1, "high_late");
  clock_.AdvanceMillis(10);
  const std::string high_early = MustEnqueue(0, /*priority=*/1, "high_early");
  // high_late enqueued before high_early, so it vests earlier.
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                auto items = zone.Peek(10);
                QUICK_RETURN_IF_ERROR(items.status());
                EXPECT_EQ(items->size(), 3u);
                if (items->size() != 3u) return Status::Internal("unexpected size");
                EXPECT_EQ((*items)[0].id, "high_late");
                EXPECT_EQ((*items)[1].id, "high_early");
                EXPECT_EQ((*items)[2].id, "low");
                return Status::OK();
              }).ok());
}

TEST_F(QueueZoneTest, PeekRespectsMaxItemsAndPredicate) {
  for (int i = 0; i < 5; ++i) MustEnqueue(0, 0, "item" + std::to_string(i));
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                EXPECT_EQ(zone.Peek(3)->size(), 3u);
                auto filtered = zone.Peek(10, [](const QueuedItem& item) {
                  return item.id == "item2";
                });
                QUICK_RETURN_IF_ERROR(filtered.status());
                EXPECT_EQ(filtered->size(), 1u);
                return Status::OK();
              }).ok());
}

TEST_F(QueueZoneTest, PeekIdsMatchesPeek) {
  MustEnqueue(0, 2, "b");
  MustEnqueue(0, 1, "a");
  MustEnqueue(9999, 0, "delayed");
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                auto ids = zone.PeekIds(10);
                QUICK_RETURN_IF_ERROR(ids.status());
                EXPECT_EQ(ids->size(), 2u);
                if (ids->size() != 2u) return Status::Internal("unexpected size");
                EXPECT_EQ((*ids)[0], "a");
                EXPECT_EQ((*ids)[1], "b");
                return Status::OK();
              }).ok());
}

TEST_F(QueueZoneTest, ObtainLeaseHidesItem) {
  const std::string id = MustEnqueue(0);
  std::string lease;
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                auto l = zone.ObtainLease(id, 1000);
                QUICK_RETURN_IF_ERROR(l.status());
                lease = *l;
                return Status::OK();
              }).ok());
  EXPECT_EQ(lease.size(), 32u);
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                EXPECT_TRUE(zone.Peek(10)->empty());
                auto item = zone.Load(id);
                EXPECT_EQ((*item)->lease_id, lease);
                EXPECT_EQ((*item)->vesting_time, clock_.NowMillis() + 1000);
                return Status::OK();
              }).ok());
}

TEST_F(QueueZoneTest, ObtainLeaseFailsWhileLeased) {
  const std::string id = MustEnqueue(0);
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                return zone.ObtainLease(id, 1000).status();
              }).ok());
  Status st = WithZone(
      [&](QueueZone& zone) { return zone.ObtainLease(id, 1000).status(); });
  EXPECT_TRUE(st.IsLeaseLost());
}

TEST_F(QueueZoneTest, ExpiredLeaseCanBeTakenOver) {
  const std::string id = MustEnqueue(0);
  std::string lease1;
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                auto l = zone.ObtainLease(id, 1000);
                QUICK_RETURN_IF_ERROR(l.status());
                lease1 = *l;
                return Status::OK();
              }).ok());
  clock_.AdvanceMillis(1001);  // lease expires
  std::string lease2;
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                auto l = zone.ObtainLease(id, 1000);
                QUICK_RETURN_IF_ERROR(l.status());
                lease2 = *l;
                return Status::OK();
              }).ok());
  EXPECT_NE(lease1, lease2);
}

TEST_F(QueueZoneTest, ObtainLeaseOnMissingItemIsNotFound) {
  Status st = WithZone([&](QueueZone& zone) {
    return zone.ObtainLease("ghost", 1000).status();
  });
  EXPECT_TRUE(st.IsNotFound());
}

TEST_F(QueueZoneTest, CompleteWithValidLeaseDeletes) {
  const std::string id = MustEnqueue(0);
  std::string lease;
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                auto l = zone.ObtainLease(id, 1000);
                QUICK_RETURN_IF_ERROR(l.status());
                lease = *l;
                return Status::OK();
              }).ok());
  ASSERT_TRUE(
      WithZone([&](QueueZone& zone) { return zone.Complete(id, lease); })
          .ok());
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                EXPECT_FALSE(zone.Load(id)->has_value());
                EXPECT_EQ(zone.Count().value(), 0);
                return Status::OK();
              }).ok());
}

TEST_F(QueueZoneTest, CompleteWithStaleLeaseFails) {
  const std::string id = MustEnqueue(0);
  std::string lease1;
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                auto l = zone.ObtainLease(id, 1000);
                lease1 = l.value();
                return Status::OK();
              }).ok());
  clock_.AdvanceMillis(1001);
  // Someone else takes over.
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                return zone.ObtainLease(id, 1000).status();
              }).ok());
  Status st =
      WithZone([&](QueueZone& zone) { return zone.Complete(id, lease1); });
  EXPECT_TRUE(st.IsLeaseLost());
}

TEST_F(QueueZoneTest, CompleteWithoutLeaseCancels) {
  const std::string id = MustEnqueue(0);
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                return zone.ObtainLease(id, 1000).status();
              }).ok());
  // Cancellation ignores the lease.
  ASSERT_TRUE(
      WithZone([&](QueueZone& zone) { return zone.Complete(id); }).ok());
}

TEST_F(QueueZoneTest, CompleteMissingIsNotFound) {
  Status st = WithZone([&](QueueZone& zone) { return zone.Complete("ghost"); });
  EXPECT_TRUE(st.IsNotFound());
}

TEST_F(QueueZoneTest, ExtendLeaseWhileHeld) {
  const std::string id = MustEnqueue(0);
  std::string lease;
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                lease = zone.ObtainLease(id, 1000).value();
                return Status::OK();
              }).ok());
  clock_.AdvanceMillis(900);
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                return zone.ExtendLease(id, lease, 1000);
              }).ok());
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                EXPECT_EQ(zone.Load(id).value()->vesting_time,
                          clock_.NowMillis() + 1000);
                return Status::OK();
              }).ok());
}

TEST_F(QueueZoneTest, ExtendLeaseAfterExpiryIfNotRetaken) {
  const std::string id = MustEnqueue(0);
  std::string lease;
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                lease = zone.ObtainLease(id, 1000).value();
                return Status::OK();
              }).ok());
  clock_.AdvanceMillis(5000);  // expired, but nobody re-leased
  EXPECT_TRUE(WithZone([&](QueueZone& zone) {
                return zone.ExtendLease(id, lease, 1000);
              }).ok());
}

TEST_F(QueueZoneTest, ExtendLeaseFailsAfterTakeover) {
  const std::string id = MustEnqueue(0);
  std::string lease1;
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                lease1 = zone.ObtainLease(id, 1000).value();
                return Status::OK();
              }).ok());
  clock_.AdvanceMillis(1001);
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                return zone.ObtainLease(id, 1000).status();
              }).ok());
  Status st = WithZone(
      [&](QueueZone& zone) { return zone.ExtendLease(id, lease1, 1000); });
  EXPECT_TRUE(st.IsLeaseLost());
}

TEST_F(QueueZoneTest, RequeueSetsVestingAndErrorCount) {
  const std::string id = MustEnqueue(0);
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                return zone.ObtainLease(id, 1000).status();
              }).ok());
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                return zone.Requeue(id, 2000);
              }).ok());
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                auto item = zone.Load(id);
                EXPECT_EQ((*item)->error_count, 1);
                EXPECT_EQ((*item)->vesting_time, clock_.NowMillis() + 2000);
                EXPECT_FALSE((*item)->leased());  // requeue releases leases
                return Status::OK();
              }).ok());
}

TEST_F(QueueZoneTest, RequeueWithoutErrorIncrement) {
  const std::string id = MustEnqueue(0);
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                return zone.Requeue(id, 0, /*increment_error_count=*/false);
              }).ok());
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                EXPECT_EQ(zone.Load(id).value()->error_count, 0);
                return Status::OK();
              }).ok());
}

TEST_F(QueueZoneTest, DequeueLeasesBatch) {
  for (int i = 0; i < 5; ++i) MustEnqueue(0, 0, "i" + std::to_string(i));
  std::vector<LeasedItem> leased;
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                auto batch = zone.Dequeue(3, 1000);
                QUICK_RETURN_IF_ERROR(batch.status());
                leased = *batch;
                return Status::OK();
              }).ok());
  ASSERT_EQ(leased.size(), 3u);
  // Leased items hidden; two remain.
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                EXPECT_EQ(zone.Peek(10)->size(), 2u);
                return Status::OK();
              }).ok());
  // Every lease valid for completion.
  for (const LeasedItem& li : leased) {
    EXPECT_TRUE(WithZone([&](QueueZone& zone) {
                  return zone.Complete(li.item.id, li.lease_id);
                }).ok());
  }
}

TEST_F(QueueZoneTest, CountTracksEnqueueAndComplete) {
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                EXPECT_EQ(zone.Count().value(), 0);
                return Status::OK();
              }).ok());
  const std::string a = MustEnqueue(0);
  MustEnqueue(1000);
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                EXPECT_EQ(zone.Count().value(), 2);
                return Status::OK();
              }).ok());
  ASSERT_TRUE(WithZone([&](QueueZone& zone) { return zone.Complete(a); }).ok());
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                EXPECT_EQ(zone.Count().value(), 1);
                return Status::OK();
              }).ok());
}

TEST_F(QueueZoneTest, MinVestingTimeIncludesUnvested) {
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                EXPECT_FALSE(zone.MinVestingTime().value().has_value());
                return Status::OK();
              }).ok());
  MustEnqueue(5000);
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                EXPECT_EQ(zone.MinVestingTime().value().value(),
                          clock_.NowMillis() + 5000);
                return Status::OK();
              }).ok());
}

TEST_F(QueueZoneTest, MinVestingTimeIsTrueMinimumAcrossPriorities) {
  // Regression: the (priority, vesting) index's FIRST entry is not the
  // minimum vesting when priorities differ — a high-priority leased item
  // must not hide an already-vested low-priority one.
  MustEnqueue(/*delay=*/5000, /*priority=*/0, "high-but-late");
  MustEnqueue(/*delay=*/100, /*priority=*/9, "low-but-soon");
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                EXPECT_EQ(zone.MinVestingTime().value().value(),
                          clock_.NowMillis() + 100);
                return Status::OK();
              }).ok());
}

TEST_F(QueueZoneTest, IsEmptyReflectsContents) {
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                EXPECT_TRUE(zone.IsEmpty().value());
                return Status::OK();
              }).ok());
  const std::string id = MustEnqueue(0);
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                EXPECT_FALSE(zone.IsEmpty().value());
                return zone.Complete(id);
              }).ok());
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                EXPECT_TRUE(zone.IsEmpty().value());
                return Status::OK();
              }).ok());
}

TEST_F(QueueZoneTest, AtomicBatchEnqueue) {
  // Multiple enqueues in one transaction commit or abort together — the
  // transactional batch the related-work section contrasts with SQS.
  Status st = WithZone([&](QueueZone& zone) {
    for (int i = 0; i < 4; ++i) {
      QueuedItem item;
      item.job_type = "batch";
      QUICK_RETURN_IF_ERROR(zone.Enqueue(item, 0).status());
    }
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  ASSERT_TRUE(WithZone([&](QueueZone& zone) {
                EXPECT_EQ(zone.Count().value(), 4);
                return Status::OK();
              }).ok());
}

TEST_F(QueueZoneTest, DequeueProcessCompleteInOneTransaction) {
  // §5: consume an item and write its database side effect atomically —
  // exactly-once when effects stay in the same cluster.
  const std::string id = MustEnqueue(0);
  Status st = fdb::RunTransaction(db_.get(), [&](fdb::Transaction& txn) {
    QueueZone zone(&txn, tup::Subspace(tup::Tuple().AddString("qz")), &clock_);
    auto batch = zone.Dequeue(1, 1000);
    QUICK_RETURN_IF_ERROR(batch.status());
    if (batch->empty()) return Status::Internal("item missing");
    txn.Set("side-effect", (*batch)[0].item.id);
    return zone.Complete((*batch)[0].item.id, (*batch)[0].lease_id);
  });
  ASSERT_TRUE(st.ok());
  // Both the side effect and the deletion are visible.
  Status check = fdb::RunTransaction(db_.get(), [&](fdb::Transaction& txn) {
    auto v = txn.Get("side-effect");
    QUICK_RETURN_IF_ERROR(v.status());
    EXPECT_EQ(v.value().value(), id);
    QueueZone zone(&txn, tup::Subspace(tup::Tuple().AddString("qz")), &clock_);
    EXPECT_TRUE(zone.IsEmpty().value());
    return Status::OK();
  });
  ASSERT_TRUE(check.ok());
}

TEST_F(QueueZoneTest, PeekContributesNoReadConflictWork) {
  // Scanner peeks are fully snapshot: a transaction that only peeks (plus
  // a blind marker write so the commit is non-trivial) hands the resolver
  // zero read-conflict ranges, so top-level queue polling costs the commit
  // path nothing.
  MustEnqueue(0);
  MustEnqueue(0);
  Counter* checked = MetricsRegistry::Default()->GetCounter(
      "fdb.resolver.read_ranges_checked");
  const int64_t before = checked->Value();
  Status st = fdb::RunTransaction(db_.get(), [&](fdb::Transaction& txn) {
    QueueZone zone(&txn, tup::Subspace(tup::Tuple().AddString("qz")), &clock_);
    auto items = zone.Peek(10);
    QUICK_RETURN_IF_ERROR(items.status());
    EXPECT_EQ(items->size(), 2u);
    txn.Set("peek-marker", "x");
    return Status::OK();
  });
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(checked->Value(), before)
      << "peek-only transaction fed read-conflict ranges to the resolver";

  // Control: an acting path (dequeue leases the item via SaveRecord's
  // previous-image read) must still feed the resolver — that read conflict
  // is what makes concurrent leases mutually exclusive.
  Status act = WithZone([&](QueueZone& zone) {
    auto batch = zone.Dequeue(1, 1000);
    QUICK_RETURN_IF_ERROR(batch.status());
    EXPECT_EQ(batch->size(), 1u);
    return Status::OK();
  });
  ASSERT_TRUE(act.ok()) << act;
  EXPECT_GT(checked->Value(), before)
      << "dequeue lost its lease-exclusivity read conflicts";
}

TEST_F(QueueZoneTest, ConcurrentEnqueuesDoNotConflict) {
  // §2 "Low overhead": enqueues write distinct keys, so two enqueue
  // transactions into the same zone commit without aborting each other.
  fdb::Transaction t1 = db_->CreateTransaction();
  fdb::Transaction t2 = db_->CreateTransaction();
  {
    QueueZone z1(&t1, tup::Subspace(tup::Tuple().AddString("qz")), &clock_);
    QueueZone z2(&t2, tup::Subspace(tup::Tuple().AddString("qz")), &clock_);
    QueuedItem a;
    a.job_type = "t";
    QueuedItem b;
    b.job_type = "t";
    ASSERT_TRUE(z1.Enqueue(a, 0).ok());
    ASSERT_TRUE(z2.Enqueue(b, 0).ok());
  }
  EXPECT_TRUE(t1.Commit().ok());
  EXPECT_TRUE(t2.Commit().ok());
}

}  // namespace
}  // namespace quick::ck
