#include "cloudkit/placement.h"

#include <gtest/gtest.h>

#include <set>

namespace quick::ck {
namespace {

TEST(PlacementTest, AssignmentIsSticky) {
  PlacementDirectory dir({"c1", "c2", "c3"});
  DatabaseId id = DatabaseId::Private("app", "user1");
  const std::string first = dir.AssignOrGet(id);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(dir.AssignOrGet(id), first);
  }
}

TEST(PlacementTest, GetBeforeAssignIsEmpty) {
  PlacementDirectory dir({"c1"});
  EXPECT_FALSE(dir.Get(DatabaseId::Private("app", "u")).has_value());
}

TEST(PlacementTest, ClusterDbAlwaysPinned) {
  PlacementDirectory dir({"c1", "c2"});
  EXPECT_EQ(dir.AssignOrGet(DatabaseId::Cluster("c2")), "c2");
  EXPECT_EQ(dir.Get(DatabaseId::Cluster("c1")).value(), "c1");
  // Pinning does not consume an assignment slot.
  EXPECT_EQ(dir.AssignmentCount(), 0u);
}

TEST(PlacementTest, SpreadsAcrossClusters) {
  PlacementDirectory dir({"c1", "c2", "c3", "c4"});
  std::set<std::string> used;
  for (int i = 0; i < 200; ++i) {
    used.insert(dir.AssignOrGet(
        DatabaseId::Private("app", "user" + std::to_string(i))));
  }
  EXPECT_EQ(used.size(), 4u) << "hash placement should reach every cluster";
}

TEST(PlacementTest, SetOverridesAssignment) {
  PlacementDirectory dir({"c1", "c2"});
  DatabaseId id = DatabaseId::Private("app", "mover");
  dir.AssignOrGet(id);
  dir.Set(id, "c2");
  EXPECT_EQ(dir.Get(id).value(), "c2");
  EXPECT_EQ(dir.AssignOrGet(id), "c2");
}

}  // namespace
}  // namespace quick::ck
