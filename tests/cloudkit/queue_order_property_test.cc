// Parameterized property sweep: for random mixes of priorities and vesting
// delays, Peek returns exactly the vested items sorted by (priority,
// vesting time), and PeekIds agrees with Peek — the §5 ordering contract.

#include <gtest/gtest.h>

#include <algorithm>

#include "cloudkit/queue_zone.h"
#include "common/random.h"
#include "fdb/database.h"
#include "fdb/retry.h"

namespace quick::ck {
namespace {

struct SweepCase {
  uint64_t seed;
  int num_items;
  int priority_levels;
  int64_t max_delay;
};

class QueueOrderPropertyTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(QueueOrderPropertyTest, PeekOrderMatchesSortedModel) {
  const SweepCase& param = GetParam();
  Random rng(param.seed);
  ManualClock clock(500000);
  fdb::Database::Options opts;
  opts.clock = &clock;
  fdb::Database db("sweep", opts);
  const tup::Subspace subspace(tup::Tuple().AddString("q"));

  struct Model {
    std::string id;
    int64_t priority;
    int64_t vesting;
  };
  std::vector<Model> model;

  for (int i = 0; i < param.num_items; ++i) {
    const int64_t priority =
        static_cast<int64_t>(rng.Uniform(param.priority_levels));
    const int64_t delay = static_cast<int64_t>(rng.Uniform(param.max_delay));
    std::string id = "item" + std::to_string(i);
    Status st = fdb::RunTransaction(&db, [&](fdb::Transaction& txn) {
      QueueZone zone(&txn, subspace, &clock);
      QueuedItem item;
      item.id = id;
      item.job_type = "sweep";
      item.priority = priority;
      return zone.Enqueue(item, delay).status();
    });
    ASSERT_TRUE(st.ok());
    model.push_back({id, priority, clock.NowMillis() + delay});
    // Occasionally advance time so enqueue order and vesting diverge.
    if (rng.Bernoulli(0.3)) {
      clock.AdvanceMillis(static_cast<int64_t>(rng.Uniform(50)));
    }
  }

  // Advance to a random observation point.
  clock.AdvanceMillis(static_cast<int64_t>(rng.Uniform(param.max_delay)));
  const int64_t now = clock.NowMillis();

  // Reference: vested items sorted by (priority, vesting, id-as-tiebreak).
  std::vector<Model> expected;
  for (const Model& m : model) {
    if (m.vesting <= now) expected.push_back(m);
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Model& a, const Model& b) {
                     return std::tie(a.priority, a.vesting, a.id) <
                            std::tie(b.priority, b.vesting, b.id);
                   });

  Status st = fdb::RunTransaction(&db, [&](fdb::Transaction& txn) {
    QueueZone zone(&txn, subspace, &clock);
    QUICK_ASSIGN_OR_RETURN(std::vector<QueuedItem> peeked, zone.Peek(0));
    EXPECT_EQ(peeked.size(), expected.size());
    for (size_t i = 0; i < std::min(peeked.size(), expected.size()); ++i) {
      EXPECT_EQ(peeked[i].id, expected[i].id) << "position " << i;
      EXPECT_EQ(peeked[i].priority, expected[i].priority);
    }
    // PeekIds agrees with Peek.
    QUICK_ASSIGN_OR_RETURN(std::vector<std::string> ids, zone.PeekIds(0));
    EXPECT_EQ(ids.size(), peeked.size());
    for (size_t i = 0; i < std::min(ids.size(), peeked.size()); ++i) {
      EXPECT_EQ(ids[i], peeked[i].id);
    }
    // Count index equals total items regardless of vesting.
    QUICK_ASSIGN_OR_RETURN(int64_t count, zone.Count());
    EXPECT_EQ(count, static_cast<int64_t>(model.size()));
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QueueOrderPropertyTest,
    ::testing::Values(SweepCase{1, 20, 1, 100}, SweepCase{2, 20, 3, 100},
                      SweepCase{3, 50, 5, 1000}, SweepCase{4, 50, 1, 1000},
                      SweepCase{5, 100, 10, 500}, SweepCase{6, 100, 2, 2000},
                      SweepCase{7, 5, 5, 10}, SweepCase{8, 200, 4, 300}));

}  // namespace
}  // namespace quick::ck
