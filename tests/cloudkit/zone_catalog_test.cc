#include "cloudkit/zone_catalog.h"

#include <gtest/gtest.h>

#include "fdb/retry.h"

namespace quick::ck {
namespace {

class ZoneCatalogTest : public ::testing::Test {
 protected:
  ZoneCatalogTest() {
    fdb::Database::Options opts;
    opts.clock = &clock_;
    clusters_ = std::make_unique<fdb::ClusterSet>(opts);
    clusters_->AddCluster("c1");
    ck_ = std::make_unique<CloudKitService>(clusters_.get(), &clock_);
    db_ = ck_->OpenDatabase(DatabaseId::Private("app", "u1"));
  }

  Status WithCatalog(const std::function<Status(ZoneCatalog&)>& body) {
    return fdb::RunTransaction(db_.cluster, [&](fdb::Transaction& txn) {
      ZoneCatalog catalog(&txn, db_, &clock_);
      return body(catalog);
    });
  }

  ManualClock clock_{3000};
  std::unique_ptr<fdb::ClusterSet> clusters_;
  std::unique_ptr<CloudKitService> ck_;
  DatabaseRef db_;
};

TEST_F(ZoneCatalogTest, CreateAndLookup) {
  ASSERT_TRUE(WithCatalog([](ZoneCatalog& c) {
                return c.CreateZone("docs", ZoneType::kRegular);
              }).ok());
  ASSERT_TRUE(WithCatalog([](ZoneCatalog& c) {
                EXPECT_EQ(c.GetZoneType("docs").value().value(),
                          ZoneType::kRegular);
                EXPECT_FALSE(c.GetZoneType("ghost").value().has_value());
                return Status::OK();
              }).ok());
}

TEST_F(ZoneCatalogTest, DuplicateCreateRejected) {
  ASSERT_TRUE(WithCatalog([](ZoneCatalog& c) {
                return c.CreateZone("tasks", ZoneType::kQueue);
              }).ok());
  // Same name, same or different type: a zone's designation is permanent.
  EXPECT_TRUE(WithCatalog([](ZoneCatalog& c) {
                return c.CreateZone("tasks", ZoneType::kQueue);
              }).IsAlreadyExists());
  EXPECT_TRUE(WithCatalog([](ZoneCatalog& c) {
                return c.CreateZone("tasks", ZoneType::kRegular);
              }).IsAlreadyExists());
}

TEST_F(ZoneCatalogTest, EmptyNameRejected) {
  EXPECT_FALSE(WithCatalog([](ZoneCatalog& c) {
                 return c.CreateZone("", ZoneType::kQueue);
               }).ok());
}

TEST_F(ZoneCatalogTest, ListZonesOrdered) {
  ASSERT_TRUE(WithCatalog([](ZoneCatalog& c) {
                QUICK_RETURN_IF_ERROR(c.CreateZone("b", ZoneType::kQueue));
                QUICK_RETURN_IF_ERROR(c.CreateZone("a", ZoneType::kRegular));
                return c.CreateZone("c", ZoneType::kFifoQueue);
              }).ok());
  ASSERT_TRUE(WithCatalog([](ZoneCatalog& c) {
                auto zones = c.ListZones();
                QUICK_RETURN_IF_ERROR(zones.status());
                EXPECT_EQ(zones->size(), 3u);
                EXPECT_EQ((*zones)[0].first, "a");
                EXPECT_EQ((*zones)[1].first, "b");
                EXPECT_EQ((*zones)[2].first, "c");
                EXPECT_EQ((*zones)[2].second, ZoneType::kFifoQueue);
                return Status::OK();
              }).ok());
}

TEST_F(ZoneCatalogTest, OpenQueueZoneHonoursType) {
  ASSERT_TRUE(WithCatalog([](ZoneCatalog& c) {
                QUICK_RETURN_IF_ERROR(c.CreateZone("plain", ZoneType::kQueue));
                QUICK_RETURN_IF_ERROR(
                    c.CreateZone("ordered", ZoneType::kFifoQueue));
                return c.CreateZone("docs", ZoneType::kRegular);
              }).ok());

  // FIFO zones opened through the catalog support the FIFO view; plain
  // queue zones are the default schema. (Enqueue and peek run in separate
  // transactions: versionstamped arrival entries only materialize at
  // commit, so they are invisible to read-your-writes.)
  ASSERT_TRUE(WithCatalog([&](ZoneCatalog& c) {
                QUICK_ASSIGN_OR_RETURN(QueueZone zone,
                                       c.OpenQueueZone("ordered"));
                QueuedItem item;
                item.id = "x";
                item.job_type = "t";
                return zone.Enqueue(item, 0).status();
              }).ok());
  ASSERT_TRUE(WithCatalog([&](ZoneCatalog& c) {
                QUICK_ASSIGN_OR_RETURN(QueueZone zone,
                                       c.OpenQueueZone("ordered"));
                auto fifo = zone.PeekFifo(10);
                QUICK_RETURN_IF_ERROR(fifo.status());
                EXPECT_EQ(fifo->size(), 1u);
                return Status::OK();
              }).ok());

  EXPECT_TRUE(WithCatalog([](ZoneCatalog& c) {
                return c.OpenQueueZone("ghost").status();
              }).IsNotFound());
  EXPECT_EQ(WithCatalog([](ZoneCatalog& c) {
              return c.OpenQueueZone("docs").status();
            }).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ZoneCatalogTest, DeleteZoneRemovesDataAndEntry) {
  ASSERT_TRUE(WithCatalog([&](ZoneCatalog& c) {
                QUICK_RETURN_IF_ERROR(c.CreateZone("tasks", ZoneType::kQueue));
                QUICK_ASSIGN_OR_RETURN(QueueZone zone,
                                       c.OpenQueueZone("tasks"));
                QueuedItem item;
                item.job_type = "t";
                return zone.Enqueue(item, 0).status();
              }).ok());
  ASSERT_TRUE(
      WithCatalog([](ZoneCatalog& c) { return c.DeleteZone("tasks"); }).ok());
  ASSERT_TRUE(WithCatalog([&](ZoneCatalog& c) {
                EXPECT_FALSE(c.GetZoneType("tasks").value().has_value());
                return Status::OK();
              }).ok());
  // Zone data is gone.
  Status st = fdb::RunTransaction(db_.cluster, [&](fdb::Transaction& txn) {
    auto kvs = txn.GetRange(db_.ZoneSubspace("tasks").Range());
    QUICK_RETURN_IF_ERROR(kvs.status());
    EXPECT_TRUE(kvs->empty());
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(
      WithCatalog([](ZoneCatalog& c) { return c.DeleteZone("tasks"); })
          .IsNotFound());
}

TEST_F(ZoneCatalogTest, ConcurrentCreationsConflict) {
  // Two transactions both observe "no zone" and create it: the catalog
  // record write makes exactly one win.
  fdb::Transaction t1 = db_.cluster->CreateTransaction();
  fdb::Transaction t2 = db_.cluster->CreateTransaction();
  {
    ZoneCatalog c1(&t1, db_, &clock_);
    ZoneCatalog c2(&t2, db_, &clock_);
    ASSERT_TRUE(c1.CreateZone("z", ZoneType::kQueue).ok());
    ASSERT_TRUE(c2.CreateZone("z", ZoneType::kFifoQueue).ok());
  }
  const bool ok1 = t1.Commit().ok();
  const bool ok2 = t2.Commit().ok();
  EXPECT_TRUE(ok1 != ok2);
}

}  // namespace
}  // namespace quick::ck
