#include "cloudkit/service.h"

#include <gtest/gtest.h>

#include "fdb/retry.h"

namespace quick::ck {
namespace {

class ServiceTest : public ::testing::Test {
 protected:
  ServiceTest() {
    fdb::Database::Options opts;
    opts.clock = &clock_;
    clusters_ = std::make_unique<fdb::ClusterSet>(opts);
    clusters_->AddCluster("east");
    clusters_->AddCluster("west");
    service_ = std::make_unique<CloudKitService>(clusters_.get(), &clock_);
  }

  ManualClock clock_{5000};
  std::unique_ptr<fdb::ClusterSet> clusters_;
  std::unique_ptr<CloudKitService> service_;
};

TEST_F(ServiceTest, OpenDatabaseAssignsCluster) {
  DatabaseRef ref = service_->OpenDatabase(DatabaseId::Private("app", "u1"));
  ASSERT_NE(ref.cluster, nullptr);
  EXPECT_TRUE(ref.cluster->name() == "east" || ref.cluster->name() == "west");
  // Sticky.
  DatabaseRef again = service_->OpenDatabase(DatabaseId::Private("app", "u1"));
  EXPECT_EQ(again.cluster, ref.cluster);
}

TEST_F(ServiceTest, ClusterDbPinned) {
  DatabaseRef ref = service_->OpenClusterDb("west");
  EXPECT_EQ(ref.cluster->name(), "west");
  EXPECT_EQ(ref.id.kind, DatabaseKind::kCluster);
}

TEST_F(ServiceTest, DistinctDatabasesDistinctSubspaces) {
  DatabaseRef a = service_->OpenDatabase(DatabaseId::Private("app", "u1"));
  DatabaseRef b = service_->OpenDatabase(DatabaseId::Private("app", "u2"));
  EXPECT_FALSE(a.subspace.Range().Intersects(b.subspace.Range()));
  EXPECT_FALSE(a.ZoneSubspace("z").Range().Intersects(
      b.ZoneSubspace("z").Range()));
  // Same database, different zones are disjoint too.
  EXPECT_FALSE(a.ZoneSubspace("z1").Range().Intersects(
      a.ZoneSubspace("z2").Range()));
}

TEST_F(ServiceTest, QueueZoneUsableThroughService) {
  DatabaseRef db = service_->OpenDatabase(DatabaseId::Private("app", "u1"));
  Status st = fdb::RunTransaction(db.cluster, [&](fdb::Transaction& txn) {
    QueueZone zone = service_->OpenQueueZone(db, "tasks", &txn);
    QueuedItem item;
    item.job_type = "push";
    return zone.Enqueue(item, 0).status();
  });
  ASSERT_TRUE(st.ok());
  st = fdb::RunTransaction(db.cluster, [&](fdb::Transaction& txn) {
    QueueZone zone = service_->OpenQueueZone(db, "tasks", &txn);
    EXPECT_EQ(zone.Count().value(), 1);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
}

TEST_F(ServiceTest, CrossDatabaseTransactionWithinCluster) {
  // The CloudKit extension QuiCK required: one transaction spanning a user
  // database and the ClusterDB on the same cluster.
  DatabaseRef user_db = service_->OpenDatabase(DatabaseId::Private("app", "u1"));
  DatabaseRef cluster_db = service_->OpenClusterDb(user_db.cluster->name());
  ASSERT_EQ(user_db.cluster, cluster_db.cluster);

  Status st = fdb::RunTransaction(user_db.cluster, [&](fdb::Transaction& txn) {
    QueueZone user_zone = service_->OpenQueueZone(user_db, "tasks", &txn);
    QueueZone top_zone = service_->OpenQueueZone(cluster_db, "q", &txn);
    QueuedItem work;
    work.job_type = "w";
    QUICK_RETURN_IF_ERROR(user_zone.Enqueue(work, 0).status());
    QueuedItem pointer;
    pointer.job_type = kPointerJobType;
    pointer.id = "ptr1";
    return top_zone.Enqueue(pointer, 0).status();
  });
  ASSERT_TRUE(st.ok());

  st = fdb::RunTransaction(user_db.cluster, [&](fdb::Transaction& txn) {
    QueueZone user_zone = service_->OpenQueueZone(user_db, "tasks", &txn);
    QueueZone top_zone = service_->OpenQueueZone(cluster_db, "q", &txn);
    EXPECT_EQ(user_zone.Count().value(), 1);
    EXPECT_EQ(top_zone.Count().value(), 1);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
}

TEST_F(ServiceTest, CopyDatabaseDataMovesAllKeys) {
  DatabaseId id = DatabaseId::Private("app", "mover");
  DatabaseRef src = service_->OpenDatabase(id);
  const std::string src_cluster = src.cluster->name();
  const std::string dst_cluster = src_cluster == "east" ? "west" : "east";

  // Write enough data to require several copy pages.
  Status st = Status::OK();
  for (int batch = 0; batch < 3 && st.ok(); ++batch) {
    st = fdb::RunTransaction(src.cluster, [&](fdb::Transaction& txn) {
      for (int i = 0; i < 200; ++i) {
        const int n = batch * 200 + i;
        txn.Set(src.subspace.Pack(tup::Tuple().AddInt(n)),
                "v" + std::to_string(n));
      }
      return Status::OK();
    });
  }
  ASSERT_TRUE(st.ok());

  ASSERT_TRUE(service_->CopyDatabaseData(id, dst_cluster).ok());

  fdb::Database* dst = clusters_->Get(dst_cluster);
  st = fdb::RunTransaction(dst, [&](fdb::Transaction& txn) {
    auto kvs = txn.GetRange(src.subspace.Range());
    QUICK_RETURN_IF_ERROR(kvs.status());
    EXPECT_EQ(kvs->size(), 600u);
    EXPECT_EQ((*kvs)[0].value, "v0");
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());

  // Source untouched until deletion.
  st = fdb::RunTransaction(src.cluster, [&](fdb::Transaction& txn) {
    auto kvs = txn.GetRange(src.subspace.Range());
    EXPECT_EQ(kvs->size(), 600u);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());

  ASSERT_TRUE(service_->DeleteDatabaseData(id, src_cluster).ok());
  st = fdb::RunTransaction(src.cluster, [&](fdb::Transaction& txn) {
    auto kvs = txn.GetRange(src.subspace.Range());
    EXPECT_TRUE(kvs->empty());
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());

  ASSERT_TRUE(service_->CommitMove(id, dst_cluster).ok());
  EXPECT_EQ(service_->OpenDatabase(id).cluster, dst);
}

TEST_F(ServiceTest, CommitMoveRefusedWhileQueueHasWork) {
  const DatabaseId id = DatabaseId::Private("app", "queued");
  const DatabaseRef src = service_->OpenDatabase(id);
  const std::string src_cluster = src.cluster->name();
  const std::string dst_cluster = src_cluster == "east" ? "west" : "east";

  // One queued item in the default zone: a bare flip would strand it.
  Status st = fdb::RunTransaction(src.cluster, [&](fdb::Transaction& txn) {
    QueueZone zone = service_->OpenQueueZone(src, "_queue", &txn);
    QueuedItem item;
    item.job_type = "job";
    return zone.Enqueue(std::move(item), 0).status();
  });
  ASSERT_TRUE(st.ok());

  EXPECT_EQ(service_->CommitMove(id, dst_cluster).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service_->OpenDatabase(id).cluster, src.cluster);

  // Draining the queue clears the refusal.
  st = fdb::RunTransaction(src.cluster, [&](fdb::Transaction& txn) {
    QueueZone zone = service_->OpenQueueZone(src, "_queue", &txn);
    QUICK_ASSIGN_OR_RETURN(std::vector<QueuedItem> items, zone.Peek(10));
    for (const QueuedItem& item : items) {
      QUICK_RETURN_IF_ERROR(zone.Complete(item.id));
    }
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(service_->CommitMove(id, dst_cluster).ok());
}

TEST_F(ServiceTest, CopyUnplacedDatabaseFails) {
  EXPECT_TRUE(service_
                  ->CopyDatabaseData(DatabaseId::Private("app", "ghost"),
                                     "west")
                  .IsNotFound());
}

}  // namespace
}  // namespace quick::ck
