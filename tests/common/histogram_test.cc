#include "common/histogram.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace quick {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0);
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_EQ(h.Max(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(100);
  EXPECT_EQ(h.Count(), 1);
  EXPECT_EQ(h.Max(), 100);
  // Log-linear buckets: percentile returns the bucket's upper bound, which
  // must be within ~7% of the recorded value at this scale.
  EXPECT_NEAR(h.Percentile(0.5), 100, 8);
  EXPECT_NEAR(h.Mean(), 100.0, 0.01);
}

TEST(HistogramTest, SmallValuesExact) {
  Histogram h;
  for (int i = 0; i < 16; ++i) h.Record(i);
  // Values below 16 land in exact unit buckets; the lowest rank maps to the
  // bucket holding value 0.
  EXPECT_EQ(h.Percentile(0.0), 0);
  EXPECT_EQ(h.Max(), 15);
  EXPECT_EQ(h.Count(), 16);
}

TEST(HistogramTest, PercentilesOrdered) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.Record(i);
  const int64_t p50 = h.Percentile(0.50);
  const int64_t p90 = h.Percentile(0.90);
  const int64_t p99 = h.Percentile(0.99);
  const int64_t p999 = h.Percentile(0.999);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, p999);
  // Bounded relative error (1/16 within a power of two).
  EXPECT_NEAR(p50, 5000, 5000 / 14.0);
  EXPECT_NEAR(p99, 9900, 9900 / 14.0);
}

TEST(HistogramTest, NegativeClampedToZero) {
  Histogram h;
  h.Record(-5);
  EXPECT_EQ(h.Count(), 1);
  EXPECT_EQ(h.Percentile(1.0), 0);
}

TEST(HistogramTest, LargeValues) {
  Histogram h;
  const int64_t big = int64_t{1} << 40;
  h.Record(big);
  EXPECT_EQ(h.Max(), big);
  const int64_t p = h.Percentile(0.99);
  EXPECT_GE(p, big);
  EXPECT_LE(p, big + big / 14);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.Count(), 0);
  EXPECT_EQ(h.Max(), 0);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(10);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 2);
  EXPECT_EQ(a.Max(), 1000);
  EXPECT_NEAR(a.Mean(), 505.0, 0.01);
}

TEST(HistogramTest, ConcurrentRecording) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Record(i % 1000);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), kThreads * kPerThread);
}

TEST(HistogramTest, SummaryMentionsFields) {
  Histogram h;
  h.Record(5);
  std::string s = h.Summary();
  EXPECT_NE(s.find("count=1"), std::string::npos);
  EXPECT_NE(s.find("p50="), std::string::npos);
  EXPECT_NE(s.find("p999="), std::string::npos);
}

}  // namespace
}  // namespace quick
