#include "common/clock.h"

#include <gtest/gtest.h>

#include <thread>

namespace quick {
namespace {

TEST(SystemClockTest, MonotonicAndConsistent) {
  SystemClock* clock = SystemClock::Default();
  const int64_t a_ms = clock->NowMillis();
  const int64_t a_us = clock->NowMicros();
  const int64_t b_ms = clock->NowMillis();
  EXPECT_LE(a_ms, b_ms);
  EXPECT_GE(a_us, a_ms * 1000 - 1000);
}

TEST(SystemClockTest, SleepAdvances) {
  SystemClock* clock = SystemClock::Default();
  const int64_t before = clock->NowMillis();
  clock->SleepMillis(10);
  EXPECT_GE(clock->NowMillis() - before, 9);
}

TEST(ManualClockTest, StartsAtGivenTime) {
  ManualClock clock(1000);
  EXPECT_EQ(clock.NowMillis(), 1000);
  EXPECT_EQ(clock.NowMicros(), 1000000);
}

TEST(ManualClockTest, AdvanceMoves) {
  ManualClock clock;
  clock.AdvanceMillis(250);
  EXPECT_EQ(clock.NowMillis(), 250);
}

TEST(ManualClockTest, SleepAutoAdvances) {
  ManualClock clock(100);
  clock.SleepMillis(50);
  EXPECT_EQ(clock.NowMillis(), 150);
}

TEST(ManualClockTest, SleepZeroOrNegativeIsNoOp) {
  ManualClock clock;
  clock.SleepMillis(0);
  clock.SleepMillis(-5);
  EXPECT_EQ(clock.NowMillis(), 0);
}

}  // namespace
}  // namespace quick
