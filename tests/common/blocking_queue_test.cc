#include "common/blocking_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace quick {
namespace {

TEST(BlockingQueueTest, PushPopFifo) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_EQ(q.Pop().value(), 3);
}

TEST(BlockingQueueTest, TryPopEmptyReturnsNullopt) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueueTest, TryPushRespectsCapacity) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  q.Pop();
  EXPECT_TRUE(q.TryPush(3));
}

TEST(BlockingQueueTest, PopBlocksUntilPush) {
  BlockingQueue<int> q;
  std::atomic<int> got{0};
  std::thread consumer([&] { got.store(q.Pop().value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(got.load(), 0);
  q.Push(42);
  consumer.join();
  EXPECT_EQ(got.load(), 42);
}

TEST(BlockingQueueTest, CloseWakesBlockedPop) {
  BlockingQueue<int> q;
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    EXPECT_FALSE(q.Pop().has_value());
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(BlockingQueueTest, CloseDrainsRemainingItems) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, PushAfterCloseFails) {
  BlockingQueue<int> q;
  q.Close();
  EXPECT_FALSE(q.Push(1));
  EXPECT_FALSE(q.TryPush(1));
}

TEST(BlockingQueueTest, ManyProducersManyConsumers) {
  BlockingQueue<int> q(64);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2500;
  std::atomic<int64_t> sum{0};
  std::atomic<int> count{0};

  std::vector<std::thread> consumers;
  for (int i = 0; i < 4; ++i) {
    consumers.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum.fetch_add(*v);
        count.fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) q.Push(i);
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();

  EXPECT_EQ(count.load(), kProducers * kPerProducer);
  EXPECT_EQ(sum.load(),
            int64_t{kProducers} * kPerProducer * (kPerProducer + 1) / 2);
}

TEST(BlockingQueueTest, SizeTracksContents) {
  BlockingQueue<int> q;
  EXPECT_EQ(q.Size(), 0u);
  EXPECT_TRUE(q.Empty());
  q.Push(1);
  q.Push(2);
  EXPECT_EQ(q.Size(), 2u);
  q.Pop();
  EXPECT_EQ(q.Size(), 1u);
}

}  // namespace
}  // namespace quick
