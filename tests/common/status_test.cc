#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace quick {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such record");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "no such record");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such record");
}

TEST(StatusTest, RetryableClassification) {
  EXPECT_TRUE(Status::NotCommitted().retryable());
  EXPECT_TRUE(Status::TransactionTooOld().retryable());
  EXPECT_TRUE(Status::CommitUnknownResult().retryable());
  EXPECT_TRUE(Status::Unavailable("x").retryable());
  EXPECT_TRUE(Status::TimedOut("x").retryable());

  EXPECT_FALSE(Status::OK().retryable());
  EXPECT_FALSE(Status::NotFound().retryable());
  EXPECT_FALSE(Status::InvalidArgument("x").retryable());
  EXPECT_FALSE(Status::Permanent("x").retryable());
  EXPECT_FALSE(Status::LeaseLost().retryable());
  EXPECT_FALSE(Status::TransactionTooLarge().retryable());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kNotCommitted), "NOT_COMMITTED");
  EXPECT_EQ(StatusCodeName(StatusCode::kCommitUnknownResult),
            "COMMIT_UNKNOWN_RESULT");
  EXPECT_EQ(StatusCodeName(StatusCode::kLeaseLost), "LEASE_LOST");
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound() == Status::OK());
}

Status FailWhen(bool fail) {
  if (fail) return Status::Internal("boom");
  return Status::OK();
}

Status Chained(bool fail) {
  QUICK_RETURN_IF_ERROR(FailWhen(fail));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Chained(false).ok());
  EXPECT_EQ(Chained(true).code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> HalfOf(int v) {
  if (v % 2 != 0) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> QuarterOf(int v) {
  QUICK_ASSIGN_OR_RETURN(int half, HalfOf(v));
  return HalfOf(half);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = QuarterOf(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  Result<int> err = QuarterOf(6);  // 6/2 == 3, odd
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace quick
