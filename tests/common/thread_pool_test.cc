#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

namespace quick {
namespace {

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Submit([&done] { done.fetch_add(1); }));
  }
  pool.Shutdown();
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, ShutdownDrainsQueue) {
  ThreadPool pool(1);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1);
    });
  }
  pool.Shutdown();
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, HasIdleThreadReflectsLoad) {
  ThreadPool pool(2);
  EXPECT_TRUE(pool.HasIdleThread());

  std::atomic<bool> release{false};
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&release] {
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  // Both threads busy soon.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pool.HasIdleThread());
  release.store(true);
  pool.Shutdown();
}

TEST(ThreadPoolTest, TrySubmitRespectsCapacity) {
  ThreadPool pool(1, /*queue_capacity=*/1);
  std::atomic<bool> release{false};
  pool.Submit([&release] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // Worker busy; one slot in queue.
  EXPECT_TRUE(pool.TrySubmit([] {}));
  EXPECT_FALSE(pool.TrySubmit([] {}));
  release.store(true);
  pool.Shutdown();
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 4; ++i) {
    pool.Submit([&] {
      int now = running.fetch_add(1) + 1;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      running.fetch_sub(1);
    });
  }
  pool.Shutdown();
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, DoubleShutdownIsSafe) {
  ThreadPool pool(2);
  pool.Shutdown();
  pool.Shutdown();
}

}  // namespace
}  // namespace quick
