#include "common/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace quick {
namespace {

TEST(MetricsTest, CounterStartsAtZero) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("a")->Value(), 0);
}

TEST(MetricsTest, CounterIncrements) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("ops");
  c->Increment();
  c->Increment(4);
  EXPECT_EQ(c->Value(), 5);
}

TEST(MetricsTest, SameNameSameCounter) {
  MetricsRegistry registry;
  registry.GetCounter("x")->Increment();
  EXPECT_EQ(registry.GetCounter("x")->Value(), 1);
  EXPECT_EQ(registry.GetCounter("y")->Value(), 0);
}

TEST(MetricsTest, HistogramRegistered) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat");
  h->Record(10);
  EXPECT_EQ(registry.GetHistogram("lat")->Count(), 1);
}

TEST(MetricsTest, SnapshotSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("b")->Increment(2);
  registry.GetCounter("a")->Increment(1);
  auto snap = registry.CounterSnapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "a");
  EXPECT_EQ(snap[0].second, 1);
  EXPECT_EQ(snap[1].first, "b");
  EXPECT_EQ(snap[1].second, 2);
}

TEST(MetricsTest, ReportContainsEntries) {
  MetricsRegistry registry;
  registry.GetCounter("enqueues")->Increment(3);
  registry.GetHistogram("latency")->Record(7);
  std::string report = registry.Report();
  EXPECT_NE(report.find("enqueues = 3"), std::string::npos);
  EXPECT_NE(report.find("latency :"), std::string::npos);
}

TEST(MetricsTest, ResetAllZeroes) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(9);
  registry.GetHistogram("h")->Record(1);
  registry.ResetAll();
  EXPECT_EQ(registry.GetCounter("c")->Value(), 0);
  EXPECT_EQ(registry.GetHistogram("h")->Count(), 0);
}

TEST(MetricsTest, ConcurrentGetAndIncrement) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry.GetCounter("shared")->Increment();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("shared")->Value(), 8000);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("depth");
  EXPECT_EQ(g->Value(), 0);
  g->Set(7);
  EXPECT_EQ(g->Value(), 7);
  g->Add(-2);
  EXPECT_EQ(g->Value(), 5);
  g->Set(3);  // last write wins, no accumulation
  EXPECT_EQ(registry.GetGauge("depth")->Value(), 3);
}

TEST(MetricsTest, CounterTakeDrains) {
  Counter c;
  c.Increment(42);
  EXPECT_EQ(c.Take(), 42);
  EXPECT_EQ(c.Value(), 0);
  EXPECT_EQ(c.Take(), 0);
}

TEST(MetricsTest, HistogramSnapshotSortedWithStats) {
  MetricsRegistry registry;
  registry.GetHistogram("b.lat")->Record(100);
  registry.GetHistogram("a.lat")->Record(10);
  registry.GetHistogram("a.lat")->Record(30);
  auto snap = registry.HistogramSnapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "a.lat");
  EXPECT_EQ(snap[0].second.count, 2);
  EXPECT_EQ(snap[0].second.sum, 40);
  EXPECT_EQ(snap[1].first, "b.lat");
  EXPECT_EQ(snap[1].second.count, 1);
}

TEST(MetricsTest, SnapshotCapturesAllThreeKinds) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(3);
  registry.GetGauge("g")->Set(-5);
  registry.GetHistogram("h")->Record(12);
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].second, 3);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, -5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1);
  // Snapshot() does not reset.
  EXPECT_EQ(registry.GetCounter("c")->Value(), 3);
}

TEST(MetricsTest, SnapshotAndResetDrains) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(9);
  registry.GetHistogram("h")->Record(1);
  MetricsSnapshot snap = registry.SnapshotAndReset();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].second, 9);
  EXPECT_EQ(snap.histograms[0].second.count, 1);
  EXPECT_EQ(registry.GetCounter("c")->Value(), 0);
  EXPECT_EQ(registry.GetHistogram("h")->Count(), 0);
}

TEST(MetricsTest, SnapshotAndResetLosesNoIncrementsUnderConcurrency) {
  // The scrape-epoch contract: with writers racing periodic
  // SnapshotAndReset() scrapes, every increment lands in exactly one
  // epoch — sum(scrapes) + residue == total written.
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 20000;
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry] {
      for (int i = 0; i < kIncrements; ++i) {
        registry.GetCounter("racy")->Increment();
      }
    });
  }
  int64_t scraped = 0;
  std::thread scraper([&] {
    while (!done.load()) {
      for (const auto& [name, value] : registry.SnapshotAndReset().counters) {
        if (name == "racy") scraped += value;
      }
    }
  });
  for (auto& t : writers) t.join();
  done.store(true);
  scraper.join();
  scraped += registry.GetCounter("racy")->Take();
  EXPECT_EQ(scraped, int64_t{kThreads} * kIncrements);
}

TEST(MetricsTest, PrometheusExportSanitizesNamesAndEmitsQuantiles) {
  MetricsRegistry registry;
  registry.GetCounter("quick.enqueues")->Increment(3);
  registry.GetGauge("quick.depth")->Set(11);
  for (int i = 1; i <= 100; ++i) {
    registry.GetHistogram("ck.lat.us")->Record(i);
  }
  std::string text = registry.ExportPrometheusText();
  // Dots become underscores; counters/gauges are single samples.
  EXPECT_NE(text.find("# TYPE quick_enqueues counter"), std::string::npos);
  EXPECT_NE(text.find("quick_enqueues 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE quick_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("quick_depth 11"), std::string::npos);
  // Histograms export as summaries with quantile labels plus _sum/_count.
  EXPECT_NE(text.find("# TYPE ck_lat_us summary"), std::string::npos);
  EXPECT_NE(text.find("ck_lat_us{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("ck_lat_us{quantile=\"0.999\"}"), std::string::npos);
  EXPECT_NE(text.find("ck_lat_us_count 100"), std::string::npos);
  EXPECT_NE(text.find("ck_lat_us_sum 5050"), std::string::npos);
  // No raw dotted names survive.
  EXPECT_EQ(text.find("quick.enqueues"), std::string::npos);
}

// Pulls `"key":<number>` out of a flat JSON object chunk — enough of a
// parser to round-trip the exporter's own output.
int64_t JsonInt(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle);
  EXPECT_NE(at, std::string::npos) << "missing " << key << " in " << json;
  if (at == std::string::npos) return -1;
  return std::stoll(json.substr(at + needle.size()));
}

TEST(MetricsTest, JsonExportRoundTripsSnapshot) {
  MetricsRegistry registry;
  registry.GetCounter("quick.enqueues")->Increment(17);
  registry.GetGauge("quick.consumer.depth")->Set(4);
  registry.GetHistogram("lat")->Record(10);
  registry.GetHistogram("lat")->Record(20);
  std::string json = registry.ExportJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(JsonInt(json, "quick.enqueues"), 17);
  EXPECT_EQ(JsonInt(json, "quick.consumer.depth"), 4);
  const size_t lat = json.find("\"lat\":{");
  ASSERT_NE(lat, std::string::npos);
  const std::string lat_obj = json.substr(lat);
  EXPECT_EQ(JsonInt(lat_obj, "count"), 2);
  EXPECT_EQ(JsonInt(lat_obj, "sum"), 30);
}

TEST(MetricsTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
}

}  // namespace
}  // namespace quick
