#include "common/metrics.h"

#include <gtest/gtest.h>

#include <thread>

namespace quick {
namespace {

TEST(MetricsTest, CounterStartsAtZero) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("a")->Value(), 0);
}

TEST(MetricsTest, CounterIncrements) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("ops");
  c->Increment();
  c->Increment(4);
  EXPECT_EQ(c->Value(), 5);
}

TEST(MetricsTest, SameNameSameCounter) {
  MetricsRegistry registry;
  registry.GetCounter("x")->Increment();
  EXPECT_EQ(registry.GetCounter("x")->Value(), 1);
  EXPECT_EQ(registry.GetCounter("y")->Value(), 0);
}

TEST(MetricsTest, HistogramRegistered) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat");
  h->Record(10);
  EXPECT_EQ(registry.GetHistogram("lat")->Count(), 1);
}

TEST(MetricsTest, SnapshotSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("b")->Increment(2);
  registry.GetCounter("a")->Increment(1);
  auto snap = registry.CounterSnapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "a");
  EXPECT_EQ(snap[0].second, 1);
  EXPECT_EQ(snap[1].first, "b");
  EXPECT_EQ(snap[1].second, 2);
}

TEST(MetricsTest, ReportContainsEntries) {
  MetricsRegistry registry;
  registry.GetCounter("enqueues")->Increment(3);
  registry.GetHistogram("latency")->Record(7);
  std::string report = registry.Report();
  EXPECT_NE(report.find("enqueues = 3"), std::string::npos);
  EXPECT_NE(report.find("latency :"), std::string::npos);
}

TEST(MetricsTest, ResetAllZeroes) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(9);
  registry.GetHistogram("h")->Record(1);
  registry.ResetAll();
  EXPECT_EQ(registry.GetCounter("c")->Value(), 0);
  EXPECT_EQ(registry.GetHistogram("h")->Count(), 0);
}

TEST(MetricsTest, ConcurrentGetAndIncrement) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry.GetCounter("shared")->Increment();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("shared")->Value(), 8000);
}

}  // namespace
}  // namespace quick
