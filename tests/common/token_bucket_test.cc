#include "common/token_bucket.h"

#include <gtest/gtest.h>

#include "common/clock.h"

namespace quick {
namespace {

TEST(TokenBucketTest, StartsFullAndDrains) {
  ManualClock clock(1000);
  TokenBucket bucket(/*burst=*/3, /*rate_per_sec=*/1, &clock);
  EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_FALSE(bucket.TryAcquire());
}

TEST(TokenBucketTest, RefillsAtRate) {
  ManualClock clock(1000);
  TokenBucket bucket(/*burst=*/10, /*rate_per_sec=*/10, &clock);
  ASSERT_TRUE(bucket.TryAcquire(10));
  EXPECT_FALSE(bucket.TryAcquire());
  clock.AdvanceMillis(100);  // 10/sec * 0.1s = 1 token
  EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_FALSE(bucket.TryAcquire());
  clock.AdvanceMillis(550);  // 5.5 tokens
  EXPECT_TRUE(bucket.TryAcquire(5));
  EXPECT_FALSE(bucket.TryAcquire(1));
}

TEST(TokenBucketTest, RefillCapsAtBurst) {
  ManualClock clock(1000);
  TokenBucket bucket(/*burst=*/5, /*rate_per_sec=*/100, &clock);
  clock.AdvanceMillis(60000);  // would refill 6000 tokens
  EXPECT_TRUE(bucket.TryAcquire(5));
  EXPECT_FALSE(bucket.TryAcquire(1));
}

TEST(TokenBucketTest, RetryAfterPredictsRefill) {
  ManualClock clock(1000);
  TokenBucket bucket(/*burst=*/2, /*rate_per_sec=*/2, &clock);
  ASSERT_TRUE(bucket.TryAcquire(2));
  // Missing 1 token at 2/sec -> 500ms (+1 rounding).
  const int64_t wait = bucket.RetryAfterMillis(1);
  EXPECT_GE(wait, 500);
  EXPECT_LE(wait, 501);
  clock.AdvanceMillis(wait);
  EXPECT_TRUE(bucket.TryAcquire(1));
  EXPECT_EQ(bucket.RetryAfterMillis(0), 0);
}

TEST(TokenBucketTest, ReturnRestoresUpToBurst) {
  ManualClock clock(1000);
  TokenBucket bucket(/*burst=*/4, /*rate_per_sec=*/1, &clock);
  ASSERT_TRUE(bucket.TryAcquire(3));
  bucket.Return(3);
  EXPECT_TRUE(bucket.TryAcquire(4));
  bucket.Return(100);  // capped at burst
  EXPECT_TRUE(bucket.TryAcquire(4));
  EXPECT_FALSE(bucket.TryAcquire(1));
}

TEST(TokenBucketTest, NonPositiveRateDisables) {
  ManualClock clock(1000);
  TokenBucket bucket(/*burst=*/0, /*rate_per_sec=*/0, &clock);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.TryAcquire(1000));
  EXPECT_EQ(bucket.RetryAfterMillis(1000), 0);
}

}  // namespace
}  // namespace quick
