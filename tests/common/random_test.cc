#include "common/random.h"

#include <gtest/gtest.h>

#include <thread>

#include <set>

namespace quick {
namespace {

TEST(RandomTest, UniformStaysInRange) {
  Random rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RandomTest, UniformRangeInclusive) {
  Random rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, DeterministicGivenSeed) {
  Random a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RandomTest, DoubleInUnitInterval) {
  Random rng(3);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, UuidFormatAndUniqueness) {
  Random rng(5);
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    std::string id = rng.NextUuid();
    EXPECT_EQ(id.size(), 32u);
    EXPECT_EQ(id.find_first_not_of("0123456789abcdef"), std::string::npos);
    EXPECT_TRUE(seen.insert(id).second) << "duplicate uuid " << id;
  }
}

TEST(RandomTest, ThreadLocalInstancesDiffer) {
  std::string a = Random::ThreadLocal().NextUuid();
  std::string b;
  std::thread t([&] { b = Random::ThreadLocal().NextUuid(); });
  t.join();
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace quick
