#include "common/backoff.h"

#include <gtest/gtest.h>

namespace quick {
namespace {

TEST(BackoffTest, GrowsExponentially) {
  ExponentialBackoff b(10, 10000, 2.0);
  EXPECT_EQ(b.DelayForAttempt(0), 10);
  EXPECT_EQ(b.DelayForAttempt(1), 20);
  EXPECT_EQ(b.DelayForAttempt(2), 40);
  EXPECT_EQ(b.DelayForAttempt(3), 80);
}

TEST(BackoffTest, CapsAtMax) {
  ExponentialBackoff b(10, 100, 2.0);
  EXPECT_EQ(b.DelayForAttempt(10), 100);
  EXPECT_EQ(b.DelayForAttempt(100), 100);
}

TEST(BackoffTest, CustomMultiplier) {
  ExponentialBackoff b(1, 1000000, 10.0);
  EXPECT_EQ(b.DelayForAttempt(3), 1000);
}

TEST(BackoffTest, JitterWithinBounds) {
  ExponentialBackoff b(100, 10000, 2.0);
  Random rng(7);
  for (int attempt = 0; attempt < 8; ++attempt) {
    const int64_t cap = b.DelayForAttempt(attempt);
    for (int i = 0; i < 100; ++i) {
      const int64_t d = b.JitteredDelayForAttempt(attempt, &rng);
      EXPECT_GE(d, 0);
      EXPECT_LE(d, cap);
    }
  }
}

TEST(BackoffTest, ZeroInitialStaysZero) {
  ExponentialBackoff b(0, 100, 2.0);
  EXPECT_EQ(b.DelayForAttempt(0), 0);
  EXPECT_EQ(b.DelayForAttempt(5), 0);
  Random rng(1);
  EXPECT_EQ(b.JitteredDelayForAttempt(3, &rng), 0);
}

TEST(RetryBackoffTest, AdvancesAcrossCallsAndResets) {
  RetryBackoff b(10, 10000, 2.0);
  EXPECT_EQ(b.NextDelayMillis(), 10);
  EXPECT_EQ(b.NextDelayMillis(), 20);
  EXPECT_EQ(b.NextDelayMillis(), 40);
  EXPECT_EQ(b.attempt(), 3);
  b.Reset();
  EXPECT_EQ(b.attempt(), 0);
  EXPECT_EQ(b.NextDelayMillis(), 10);
}

TEST(RetryBackoffTest, CapsAtMax) {
  RetryBackoff b(10, 100, 2.0);
  for (int i = 0; i < 20; ++i) {
    EXPECT_LE(b.NextDelayMillis(), 100);
  }
  EXPECT_EQ(b.NextDelayMillis(), 100);
}

TEST(RetryBackoffTest, JitteredDelaysStayWithinSchedule) {
  ExponentialBackoff schedule(100, 10000, 2.0);
  RetryBackoff b(schedule);
  Random rng(7);
  for (int attempt = 0; attempt < 8; ++attempt) {
    const int64_t cap = schedule.DelayForAttempt(attempt);
    const int64_t d = b.NextJitteredDelayMillis(&rng);
    EXPECT_GE(d, 0);
    EXPECT_LE(d, cap);
  }
  EXPECT_EQ(b.attempt(), 8);
}

}  // namespace
}  // namespace quick
