#include "common/backoff.h"

#include <gtest/gtest.h>

namespace quick {
namespace {

TEST(BackoffTest, GrowsExponentially) {
  ExponentialBackoff b(10, 10000, 2.0);
  EXPECT_EQ(b.DelayForAttempt(0), 10);
  EXPECT_EQ(b.DelayForAttempt(1), 20);
  EXPECT_EQ(b.DelayForAttempt(2), 40);
  EXPECT_EQ(b.DelayForAttempt(3), 80);
}

TEST(BackoffTest, CapsAtMax) {
  ExponentialBackoff b(10, 100, 2.0);
  EXPECT_EQ(b.DelayForAttempt(10), 100);
  EXPECT_EQ(b.DelayForAttempt(100), 100);
}

TEST(BackoffTest, CustomMultiplier) {
  ExponentialBackoff b(1, 1000000, 10.0);
  EXPECT_EQ(b.DelayForAttempt(3), 1000);
}

TEST(BackoffTest, JitterWithinBounds) {
  ExponentialBackoff b(100, 10000, 2.0);
  Random rng(7);
  for (int attempt = 0; attempt < 8; ++attempt) {
    const int64_t cap = b.DelayForAttempt(attempt);
    for (int i = 0; i < 100; ++i) {
      const int64_t d = b.JitteredDelayForAttempt(attempt, &rng);
      EXPECT_GE(d, 0);
      EXPECT_LE(d, cap);
    }
  }
}

TEST(BackoffTest, ZeroInitialStaysZero) {
  ExponentialBackoff b(0, 100, 2.0);
  EXPECT_EQ(b.DelayForAttempt(0), 0);
  EXPECT_EQ(b.DelayForAttempt(5), 0);
  Random rng(1);
  EXPECT_EQ(b.JitteredDelayForAttempt(3, &rng), 0);
}

}  // namespace
}  // namespace quick
