#include "common/bytes.h"

#include <gtest/gtest.h>

namespace quick {
namespace {

TEST(BytesTest, StrincSimple) {
  EXPECT_EQ(Strinc("a").value(), "b");
  EXPECT_EQ(Strinc("abc").value(), "abd");
}

TEST(BytesTest, StrincStripsTrailingFF) {
  std::string key = "a";
  key.push_back('\xFF');
  EXPECT_EQ(Strinc(key).value(), "b");
}

TEST(BytesTest, StrincUndefinedCases) {
  EXPECT_FALSE(Strinc("").has_value());
  EXPECT_FALSE(Strinc("\xFF").has_value());
  EXPECT_FALSE(Strinc("\xFF\xFF").has_value());
}

TEST(BytesTest, StrincBoundsAllPrefixedKeys) {
  // Every key starting with "ab" is >= "ab" and < Strinc("ab").
  std::string inc = Strinc("ab").value();
  EXPECT_LT(std::string("ab"), inc);
  EXPECT_LT(std::string("ab\xFF\xFF\xFF"), inc);
  EXPECT_LT(std::string("abzzzz"), inc);
  EXPECT_GE(std::string("ac"), inc);
}

TEST(BytesTest, KeyAfterIsImmediateSuccessor) {
  EXPECT_EQ(KeyAfter("a"), std::string("a\0", 2));
  EXPECT_LT(std::string("a"), KeyAfter("a"));
  // Nothing fits between key and KeyAfter(key).
  EXPECT_GE(std::string("a\0", 2), KeyAfter("a"));
}

TEST(BytesTest, StartsWith) {
  EXPECT_TRUE(StartsWith("abcdef", "abc"));
  EXPECT_TRUE(StartsWith("abc", "abc"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_FALSE(StartsWith("xbc", "abc"));
}

TEST(BytesTest, EscapeBytes) {
  EXPECT_EQ(EscapeBytes("abc"), "abc");
  EXPECT_EQ(EscapeBytes(std::string("\x00\x01", 2)), "\\x00\\x01");
  EXPECT_EQ(EscapeBytes("a\\b"), "a\\x5Cb");
}

TEST(BytesTest, BigEndian64RoundTrip) {
  for (uint64_t v : {0ULL, 1ULL, 255ULL, 256ULL, 0xDEADBEEFULL,
                     ~0ULL, 1ULL << 63}) {
    EXPECT_EQ(DecodeBigEndian64(EncodeBigEndian64(v)), v);
  }
}

TEST(BytesTest, BigEndian64PreservesOrder) {
  EXPECT_LT(EncodeBigEndian64(1), EncodeBigEndian64(2));
  EXPECT_LT(EncodeBigEndian64(255), EncodeBigEndian64(256));
  EXPECT_LT(EncodeBigEndian64(0), EncodeBigEndian64(~0ULL));
}

TEST(BytesTest, LittleEndian64RoundTrip) {
  for (uint64_t v : {0ULL, 1ULL, 0x0102030405060708ULL, ~0ULL}) {
    EXPECT_EQ(DecodeLittleEndian64(EncodeLittleEndian64(v)), v);
  }
}

TEST(BytesTest, LittleEndianDecodeShortInput) {
  EXPECT_EQ(DecodeLittleEndian64("\x05"), 5u);
  EXPECT_EQ(DecodeLittleEndian64(""), 0u);
}

TEST(KeyRangeTest, Contains) {
  KeyRange r{"b", "d"};
  EXPECT_TRUE(r.Contains("b"));
  EXPECT_TRUE(r.Contains("c"));
  EXPECT_TRUE(r.Contains("czzz"));
  EXPECT_FALSE(r.Contains("d"));
  EXPECT_FALSE(r.Contains("a"));
}

TEST(KeyRangeTest, Intersects) {
  KeyRange ab{"a", "b"};
  KeyRange bc{"b", "c"};
  KeyRange ac{"a", "c"};
  EXPECT_FALSE(ab.Intersects(bc));  // half-open: touching is disjoint
  EXPECT_TRUE(ab.Intersects(ac));
  EXPECT_TRUE(bc.Intersects(ac));
  EXPECT_TRUE(ac.Intersects(ac));
}

TEST(KeyRangeTest, SingleCoversExactlyOneKey) {
  KeyRange r = KeyRange::Single("abc");
  EXPECT_TRUE(r.Contains("abc"));
  EXPECT_FALSE(r.Contains(KeyAfter("abc")));
  EXPECT_FALSE(r.Contains("abd"));
  EXPECT_FALSE(r.Contains("ab"));
}

TEST(KeyRangeTest, PrefixCoversAllPrefixedKeys) {
  KeyRange r = KeyRange::Prefix("ab");
  EXPECT_TRUE(r.Contains("ab"));
  EXPECT_TRUE(r.Contains("abz"));
  EXPECT_TRUE(r.Contains(std::string("ab\xFF")));
  EXPECT_FALSE(r.Contains("ac"));
  EXPECT_FALSE(r.Contains("aa"));
}

TEST(KeyRangeTest, PrefixOfUnincrementableIsEmpty) {
  KeyRange r = KeyRange::Prefix("\xFF");
  EXPECT_TRUE(r.empty());
}

TEST(KeyRangeTest, EmptyRange) {
  EXPECT_TRUE((KeyRange{"b", "b"}.empty()));
  EXPECT_TRUE((KeyRange{"c", "b"}.empty()));
  EXPECT_FALSE((KeyRange{"b", "c"}.empty()));
}

}  // namespace
}  // namespace quick
