#include "common/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace quick {
namespace {

Span MakeSpan(const std::string& trace_id, const std::string& name,
              int64_t start = 0, int64_t end = 0) {
  Span span;
  span.trace_id = trace_id;
  span.name = name;
  span.actor = "test";
  span.start_micros = start;
  span.end_micros = end;
  return span;
}

TEST(TracerTest, RecordAndQueryRoundTrip) {
  Tracer tracer;
  Span span = MakeSpan("item-1", "enqueued", 10, 20);
  span.detail = "db=x";
  span.parent_trace = "pointer-1";
  tracer.Record(span);
  tracer.Record(MakeSpan("item-1", "completed", 30, 40));
  tracer.Record(MakeSpan("item-2", "enqueued"));

  EXPECT_TRUE(tracer.Has("item-1"));
  EXPECT_TRUE(tracer.Has("item-2"));
  EXPECT_FALSE(tracer.Has("item-3"));
  EXPECT_EQ(tracer.TraceCount(), 2u);
  EXPECT_EQ(tracer.SpanCount(), 3u);

  std::vector<Span> chain = tracer.TraceOf("item-1");
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0].name, "enqueued");
  EXPECT_EQ(chain[0].actor, "test");
  EXPECT_EQ(chain[0].detail, "db=x");
  EXPECT_EQ(chain[0].parent_trace, "pointer-1");
  EXPECT_EQ(chain[0].start_micros, 10);
  EXPECT_EQ(chain[0].end_micros, 20);
  EXPECT_EQ(chain[1].name, "completed");
  EXPECT_TRUE(tracer.TraceOf("unknown").empty());
}

TEST(TracerTest, SeqReflectsGlobalRecordOrder) {
  Tracer tracer;
  // Interleave two chains; seq must be store-global and strictly
  // increasing in record order, so cross-chain ordering is recoverable.
  tracer.Record(MakeSpan("a", "s1"));
  tracer.Record(MakeSpan("b", "s2"));
  tracer.Record(MakeSpan("a", "s3"));
  tracer.Record(MakeSpan("b", "s4"));

  std::vector<Span> a = tracer.TraceOf("a");
  std::vector<Span> b = tracer.TraceOf("b");
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  EXPECT_LT(a[0].seq, b[0].seq);
  EXPECT_LT(b[0].seq, a[1].seq);
  EXPECT_LT(a[1].seq, b[1].seq);
}

TEST(TracerTest, TraceIdsSorted) {
  Tracer tracer;
  tracer.Record(MakeSpan("c", "s"));
  tracer.Record(MakeSpan("a", "s"));
  tracer.Record(MakeSpan("b", "s"));
  EXPECT_EQ(tracer.TraceIds(),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(TracerTest, EvictsLeastRecentlyUpdatedChain) {
  Tracer::Options options;
  options.max_traces = 2;
  options.shards = 1;  // deterministic: all chains share one LRU
  Tracer tracer(options);
  tracer.Record(MakeSpan("a", "s"));
  tracer.Record(MakeSpan("b", "s"));
  tracer.Record(MakeSpan("c", "s"));  // evicts a (least recently updated)

  EXPECT_FALSE(tracer.Has("a"));
  EXPECT_TRUE(tracer.Has("b"));
  EXPECT_TRUE(tracer.Has("c"));
  EXPECT_EQ(tracer.TraceCount(), 2u);
  EXPECT_EQ(tracer.EvictedTraces(), 1u);
}

TEST(TracerTest, RecordingTouchesChainSoActiveChainsSurvive) {
  Tracer::Options options;
  options.max_traces = 2;
  options.shards = 1;
  Tracer tracer(options);
  tracer.Record(MakeSpan("a", "s1"));
  tracer.Record(MakeSpan("b", "s1"));
  tracer.Record(MakeSpan("a", "s2"));  // a becomes most recently updated
  tracer.Record(MakeSpan("c", "s1"));  // evicts b, not the active a

  EXPECT_TRUE(tracer.Has("a"));
  EXPECT_FALSE(tracer.Has("b"));
  EXPECT_TRUE(tracer.Has("c"));
}

TEST(TracerTest, PerChainSpanCapDropsExcessSpans) {
  Tracer::Options options;
  options.max_spans_per_trace = 2;
  Tracer tracer(options);
  tracer.Record(MakeSpan("a", "s1"));
  tracer.Record(MakeSpan("a", "s2"));
  tracer.Record(MakeSpan("a", "s3"));  // over the cap: dropped

  std::vector<Span> chain = tracer.TraceOf("a");
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0].name, "s1");
  EXPECT_EQ(chain[1].name, "s2");
  EXPECT_EQ(tracer.DroppedSpans(), 1u);
  EXPECT_EQ(tracer.SpanCount(), 2u);
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer::Options options;
  options.enabled = false;
  Tracer tracer(options);
  EXPECT_FALSE(tracer.enabled());
  tracer.Record(MakeSpan("a", "s"));
  EXPECT_EQ(tracer.TraceCount(), 0u);
  EXPECT_EQ(tracer.SpanCount(), 0u);

  tracer.set_enabled(true);
  tracer.Record(MakeSpan("a", "s"));
  EXPECT_EQ(tracer.SpanCount(), 1u);
}

TEST(TracerTest, ClearDropsChainsButSeqKeepsAdvancing) {
  Tracer tracer;
  tracer.Record(MakeSpan("a", "s"));
  const uint64_t seq_before = tracer.TraceOf("a")[0].seq;
  tracer.Clear();
  EXPECT_EQ(tracer.TraceCount(), 0u);
  EXPECT_EQ(tracer.SpanCount(), 0u);
  EXPECT_EQ(tracer.EvictedTraces(), 0u);
  EXPECT_EQ(tracer.DroppedSpans(), 0u);

  tracer.Record(MakeSpan("a", "s"));
  EXPECT_GT(tracer.TraceOf("a")[0].seq, seq_before);
}

TEST(TracerTest, ConcurrentRecordingKeepsEveryChainOrdered) {
  Tracer tracer;
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        // Chains are shared across threads: every thread appends to the
        // same 16 trace ids.
        tracer.Record(MakeSpan("item-" + std::to_string(i % 16),
                               "t" + std::to_string(t), i, i + 1));
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(tracer.SpanCount(),
            static_cast<size_t>(kThreads * kSpansPerThread));
  EXPECT_EQ(tracer.TraceCount(), 16u);
  EXPECT_EQ(tracer.EvictedTraces(), 0u);
  EXPECT_EQ(tracer.DroppedSpans(), 0u);
  std::set<uint64_t> seqs;
  for (const std::string& id : tracer.TraceIds()) {
    std::vector<Span> chain = tracer.TraceOf(id);
    for (size_t i = 1; i < chain.size(); ++i) {
      EXPECT_LT(chain[i - 1].seq, chain[i].seq) << "chain " << id;
    }
    for (const Span& span : chain) seqs.insert(span.seq);
  }
  // Seqs are store-global and unique.
  EXPECT_EQ(seqs.size(), static_cast<size_t>(kThreads * kSpansPerThread));
}

}  // namespace
}  // namespace quick
