#include "external/external_queue.h"

#include <gtest/gtest.h>

#include "fdb/retry.h"

namespace quick::ext {
namespace {

class ExternalQueueTest : public ::testing::Test {
 protected:
  ExternalQueueTest() {
    fdb::Database::Options opts;
    opts.clock = &clock_;
    clusters_ = std::make_unique<fdb::ClusterSet>(opts);
    clusters_->AddCluster("c1");
    ck_ = std::make_unique<ck::CloudKitService>(clusters_.get(), &clock_);

    SimExternalStore::Options sopts;
    sopts.clock = &clock_;
    store_ = std::make_unique<SimExternalStore>(sopts);

    registry_.Register("ext_job", [this](core::WorkContext& ctx) {
      processed_.push_back(ctx.item.payload);
      return Status::OK();
    });
  }

  ExternalQueue MakeQueue(ExternalQueue::Options options = {}) {
    return ExternalQueue(ck_.get(), store_.get(), &registry_, options);
  }

  ManualClock clock_{50000};
  std::unique_ptr<fdb::ClusterSet> clusters_;
  std::unique_ptr<ck::CloudKitService> ck_;
  std::unique_ptr<SimExternalStore> store_;
  core::JobRegistry registry_;
  std::vector<std::string> processed_;
};

TEST_F(ExternalQueueTest, EnqueueStoresExternallyAndCreatesPointer) {
  ExternalQueue q = MakeQueue();
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  auto id = q.Enqueue(db, "ext_job", "hello");
  ASSERT_TRUE(id.ok()) << id.status();
  EXPECT_EQ(store_->TotalItems(), 1u);
  EXPECT_FALSE(store_->IsEmpty(q.QueueKey(db)).value());
  EXPECT_EQ(q.stats().items_enqueued.Value(), 1);
}

TEST_F(ExternalQueueTest, EndToEndProcessing) {
  ExternalQueue q = MakeQueue();
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  ASSERT_TRUE(q.Enqueue(db, "ext_job", "one").ok());
  ASSERT_TRUE(q.Enqueue(db, "ext_job", "two").ok());

  Result<int> visited = q.RunOnePass("c1");
  ASSERT_TRUE(visited.ok()) << visited.status();
  EXPECT_EQ(*visited, 1);  // one pointer covers both items
  EXPECT_EQ(processed_.size(), 2u);
  EXPECT_EQ(q.stats().items_processed.Value(), 2);
  EXPECT_TRUE(store_->IsEmpty(q.QueueKey(db)).value());
}

TEST_F(ExternalQueueTest, PointerGcAfterGrace) {
  ExternalQueue::Options options;
  options.min_inactive_millis = 1000;
  options.pointer_lease_millis = 100;
  ExternalQueue q = MakeQueue(options);
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  ASSERT_TRUE(q.Enqueue(db, "ext_job", "x").ok());

  // First pass drains; pointer stays (active just now).
  ASSERT_TRUE(q.RunOnePass("c1").ok());
  EXPECT_EQ(q.stats().pointers_deleted.Value(), 0);

  // After grace + lease expiry, the pointer is collected.
  clock_.AdvanceMillis(2000);
  ASSERT_TRUE(q.RunOnePass("c1").ok());
  EXPECT_EQ(q.stats().pointers_deleted.Value(), 1);

  // Nothing left to find.
  clock_.AdvanceMillis(2000);
  EXPECT_EQ(q.RunOnePass("c1").value(), 0);
}

TEST_F(ExternalQueueTest, GcRecheckKeepsPointerWhenItemAppears) {
  ExternalQueue::Options options;
  options.min_inactive_millis = 0;  // aggressive GC
  options.pointer_lease_millis = 100;
  ExternalQueue q = MakeQueue(options);
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  ASSERT_TRUE(q.Enqueue(db, "ext_job", "first").ok());
  ASSERT_TRUE(q.RunOnePass("c1").ok());

  // Put an item directly (simulating an enqueue racing the GC between the
  // consumer's list and its delete transaction).
  clock_.AdvanceMillis(200);
  ExternalItem sneaky;
  sneaky.id = "sneaky";
  sneaky.job_type = "ext_job";
  sneaky.payload = "raced";
  sneaky.enqueue_time = clock_.NowMillis();
  ASSERT_TRUE(store_->Put(q.QueueKey(db), sneaky).ok());

  // The GC pass re-checks emptiness strongly and must keep the pointer,
  // then the item is processed on a later visit.
  ASSERT_TRUE(q.RunOnePass("c1").ok());
  clock_.AdvanceMillis(200);
  ASSERT_TRUE(q.RunOnePass("c1").ok());
  EXPECT_TRUE(std::find(processed_.begin(), processed_.end(), "raced") !=
              processed_.end());
}

TEST_F(ExternalQueueTest, EnqueueGarbageCollectsOnFdbFailure) {
  // Make the FDB side fail every commit: the externally written item must
  // be cleaned up and the enqueue must surface the error.
  fdb::Database::Options opts;
  opts.clock = &clock_;
  opts.faults.commit_unavailable = 1.0;
  fdb::ClusterSet flaky_clusters(opts);
  flaky_clusters.AddCluster("c1");
  ck::CloudKitService flaky_ck(&flaky_clusters, &clock_);
  ExternalQueue q(&flaky_ck, store_.get(), &registry_,
                  ExternalQueue::Options{});

  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  auto id = q.Enqueue(db, "ext_job", "doomed");
  EXPECT_FALSE(id.ok());
  EXPECT_EQ(q.stats().enqueue_fdb_aborts.Value(), 1);
  EXPECT_EQ(q.stats().orphans_garbage_collected.Value(), 1);
  EXPECT_TRUE(store_->IsEmpty(q.QueueKey(db)).value());
}

TEST_F(ExternalQueueTest, DeclaredWriteConflictAbortsConcurrentGc) {
  // The §6.1 conflict dance: a GC transaction that read the pointer-index
  // key must abort when an enqueue (which only DECLARED a write on that
  // key) commits first.
  ExternalQueue q = MakeQueue();
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  ASSERT_TRUE(q.Enqueue(db, "ext_job", "a").ok());  // pointer exists now

  const ck::DatabaseRef cluster_db = ck_->OpenClusterDb("c1");
  const core::Pointer pointer{db, "_quick_q_ext"};

  // GC-style transaction: read the index key, then delete the pointer.
  fdb::Transaction gc = cluster_db.cluster->CreateTransaction();
  {
    ck::QueueZone top(&gc, cluster_db.ZoneSubspace("_quick_q_ext"), &clock_);
    const std::string index_key =
        top.DbKeyIndexEntryKey(pointer.Key(), pointer.Key());
    ASSERT_TRUE(gc.Get(index_key).ok());
    ASSERT_TRUE(top.Complete(pointer.Key()).ok());
  }

  // Concurrent enqueue: pointer exists, so its FDB transaction is
  // read-only with a declared write conflict on the index key.
  ASSERT_TRUE(q.Enqueue(db, "ext_job", "b").ok());

  EXPECT_TRUE(gc.Commit().IsNotCommitted());
}

TEST_F(ExternalQueueTest, WeakReadsLoseItemsStrongReadsDoNot) {
  // Demonstrates WHY §6.1 requires strong reads: with lagged weak reads
  // and aggressive GC, a freshly enqueued item is invisible to the
  // consumer, the queue looks empty, and the pointer gets deleted with the
  // item stranded. Strong reads close the hole.
  SimExternalStore::Options sopts;
  sopts.clock = &clock_;
  sopts.replication_lag_millis = 1000;
  SimExternalStore lagged(sopts);

  for (bool strong : {false, true}) {
    ExternalQueue::Options options;
    options.min_inactive_millis = 0;
    options.pointer_lease_millis = 10;
    options.strong_reads = strong;
    ExternalQueue q(ck_.get(), &lagged, &registry_, options);
    const ck::DatabaseId db = ck::DatabaseId::Private(
        "app", strong ? "strong-user" : "weak-user");
    ASSERT_TRUE(q.Enqueue(db, "ext_job", "fresh").ok());
    // The consumer runs before replication catches up.
    ASSERT_TRUE(q.RunOnePass("c1").ok());
    if (strong) {
      // Strong reads saw and processed the item (and, incidentally, the
      // one the weak pass stranded — both pointers share the top zone).
      EXPECT_GE(q.stats().items_processed.Value(), 1);
      EXPECT_TRUE(lagged.IsEmpty(q.QueueKey(db)).value());
    } else {
      // Weak reads missed it; worse, the pointer may already be gone while
      // the item is stranded externally.
      EXPECT_EQ(q.stats().items_processed.Value(), 0);
      EXPECT_FALSE(lagged.IsEmpty(q.QueueKey(db)).value());
    }
  }
}

TEST_F(ExternalQueueTest, FailedHandlerLeavesItemForRetry) {
  int attempts = 0;
  registry_.Register("flaky_ext", [&](core::WorkContext&) {
    ++attempts;
    return attempts < 3 ? Status::Unavailable("x") : Status::OK();
  });
  ExternalQueue::Options options;
  options.pointer_lease_millis = 50;
  ExternalQueue q = MakeQueue(options);
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  ASSERT_TRUE(q.Enqueue(db, "flaky_ext", "x").ok());

  ASSERT_TRUE(q.RunOnePass("c1").ok());  // attempt 1 fails; item stays
  EXPECT_FALSE(store_->IsEmpty(q.QueueKey(db)).value());
  ASSERT_TRUE(q.RunOnePass("c1").ok());  // attempt 2 fails
  ASSERT_TRUE(q.RunOnePass("c1").ok());  // attempt 3 succeeds
  EXPECT_EQ(attempts, 3);
  EXPECT_TRUE(store_->IsEmpty(q.QueueKey(db)).value());
}

TEST_F(ExternalQueueTest, UnknownJobTypeDroppedAsPermanent) {
  ExternalQueue q = MakeQueue();
  const ck::DatabaseId db = ck::DatabaseId::Private("app", "u1");
  ASSERT_TRUE(q.Enqueue(db, "mystery", "x").ok());
  ASSERT_TRUE(q.RunOnePass("c1").ok());
  EXPECT_EQ(q.stats().items_failed.Value(), 1);
  EXPECT_TRUE(store_->IsEmpty(q.QueueKey(db)).value());
}

}  // namespace
}  // namespace quick::ext
