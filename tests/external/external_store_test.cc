#include "external/external_store.h"

#include <gtest/gtest.h>

namespace quick::ext {
namespace {

ExternalItem Item(const std::string& id, int64_t enqueue_time = 0) {
  ExternalItem item;
  item.id = id;
  item.job_type = "t";
  item.payload = "p-" + id;
  item.enqueue_time = enqueue_time;
  return item;
}

TEST(SimExternalStoreTest, PutListDelete) {
  SimExternalStore store;
  ASSERT_TRUE(store.Put("q1", Item("a")).ok());
  ASSERT_TRUE(store.Put("q1", Item("b")).ok());
  auto items = store.List("q1", 10, /*strong=*/true);
  ASSERT_TRUE(items.ok());
  EXPECT_EQ(items->size(), 2u);
  ASSERT_TRUE(store.Delete("q1", "a").ok());
  EXPECT_EQ(store.List("q1", 10, true)->size(), 1u);
  EXPECT_EQ((*store.List("q1", 10, true))[0].id, "b");
}

TEST(SimExternalStoreTest, ListOrdersByEnqueueTime) {
  SimExternalStore store;
  ASSERT_TRUE(store.Put("q", Item("late", 200)).ok());
  ASSERT_TRUE(store.Put("q", Item("early", 100)).ok());
  auto items = store.List("q", 10, true);
  ASSERT_EQ(items->size(), 2u);
  EXPECT_EQ((*items)[0].id, "early");
  EXPECT_EQ((*items)[1].id, "late");
}

TEST(SimExternalStoreTest, ListRespectsLimit) {
  SimExternalStore store;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.Put("q", Item("i" + std::to_string(i), i)).ok());
  }
  EXPECT_EQ(store.List("q", 3, true)->size(), 3u);
  EXPECT_EQ(store.List("q", 0, true)->size(), 5u);
}

TEST(SimExternalStoreTest, QueuesAreIsolated) {
  SimExternalStore store;
  ASSERT_TRUE(store.Put("q1", Item("a")).ok());
  EXPECT_TRUE(store.List("q2", 10, true)->empty());
  EXPECT_TRUE(store.IsEmpty("q2").value());
  EXPECT_FALSE(store.IsEmpty("q1").value());
}

TEST(SimExternalStoreTest, DeleteMissingIsNotFound) {
  SimExternalStore store;
  EXPECT_TRUE(store.Delete("q", "ghost").IsNotFound());
  ASSERT_TRUE(store.Put("q", Item("a")).ok());
  ASSERT_TRUE(store.Delete("q", "a").ok());
  EXPECT_TRUE(store.Delete("q", "a").IsNotFound());
}

TEST(SimExternalStoreTest, WeakReadsLagBehindWrites) {
  ManualClock clock(1000);
  SimExternalStore::Options options;
  options.clock = &clock;
  options.replication_lag_millis = 500;
  SimExternalStore store(options);

  ASSERT_TRUE(store.Put("q", Item("fresh")).ok());
  // Strong read sees the write immediately; weak read lags.
  EXPECT_EQ(store.List("q", 10, /*strong=*/true)->size(), 1u);
  EXPECT_TRUE(store.List("q", 10, /*strong=*/false)->empty());

  clock.AdvanceMillis(500);
  EXPECT_EQ(store.List("q", 10, /*strong=*/false)->size(), 1u);
}

TEST(SimExternalStoreTest, InjectedPutFailures) {
  SimExternalStore::Options options;
  options.put_failure_probability = 1.0;
  SimExternalStore store(options);
  EXPECT_EQ(store.Put("q", Item("a")).code(), StatusCode::kUnavailable);
  EXPECT_TRUE(store.IsEmpty("q").value());
}

TEST(SimExternalStoreTest, TotalItemsCountsLiveOnly) {
  SimExternalStore store;
  ASSERT_TRUE(store.Put("q1", Item("a")).ok());
  ASSERT_TRUE(store.Put("q2", Item("b")).ok());
  EXPECT_EQ(store.TotalItems(), 2u);
  ASSERT_TRUE(store.Delete("q1", "a").ok());
  EXPECT_EQ(store.TotalItems(), 1u);
}

}  // namespace
}  // namespace quick::ext
