// The saga/workflow engine's queued-transaction semantics, driven
// deterministically over a ManualClock:
//  - a multi-step saga chains step payloads through transactional
//    continuations and lands kCompleted with every step executed once;
//  - a consumer crash between handler execution and finish commit leaves
//    NEITHER the Complete nor the continuation nor the record update
//    (atomicity of the finish transaction), and recovery completes the
//    saga exactly once at the record level;
//  - a fenced (zombie) finish applies no extras at all;
//  - a permanently failing step launches compensations in reverse step
//    order, atomically with its own dead-lettering;
//  - outbox effects survive a relay that crashes before acking: the
//    attempt duplicates, the effect never does;
//  - Start is idempotent on the workflow id; EnqueueAsync / StartAsync
//    ride the async commit pipeline; the admin can render the whole
//    saga's story from the workflow trace chain.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/trace.h"
#include "external/outbox_relay.h"
#include "fdb/cluster_set.h"
#include "fdb/executor.h"
#include "quick/admin.h"
#include "quick/consumer.h"
#include "workflow/workflow.h"

namespace quick::wf {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

class WorkflowTest : public ::testing::Test {
 protected:
  WorkflowTest() {
    fdb::Database::Options opts;
    opts.clock = &clock_;
    clusters_ = std::make_unique<fdb::ClusterSet>(opts);
    clusters_->AddCluster("c1");
    ck_ = std::make_unique<ck::CloudKitService>(clusters_.get(), &clock_);
    quick_ = std::make_unique<core::Quick>(ck_.get());
    quick_->set_tracer(&tracer_);  // before the engine/consumers capture it
    engine_ = std::make_unique<WorkflowEngine>(quick_.get(), &registry_);
  }

  core::ConsumerConfig TestConfig() {
    core::ConsumerConfig config;
    config.sequential = true;
    config.relaxed_reads_for_peek = false;
    return config;
  }

  std::unique_ptr<core::Consumer> MakeConsumer(const std::string& id) {
    return std::make_unique<core::Consumer>(quick_.get(),
                                            std::vector<std::string>{"c1"},
                                            &registry_, TestConfig(), id);
  }

  /// Runs consumer passes with lease-expiring clock advances in between
  /// until the queue drains (or `passes` runs out).
  void Drain(core::Consumer* consumer, int passes = 40) {
    for (int i = 0; i < passes; ++i) {
      (void)consumer->RunOnePass("c1");
      clock_.AdvanceMillis(6000);
      if (quick_->PendingCount(db_).value_or(-1) == 0) return;
    }
  }

  ck::WorkflowRecord MustLoad(const std::string& workflow_id) {
    auto r = engine_->Load(db_, workflow_id);
    EXPECT_TRUE(r.ok()) << r.status();
    EXPECT_TRUE(r.ok() && r->has_value()) << "no record for " << workflow_id;
    return r.ok() && r->has_value() ? **r : ck::WorkflowRecord{};
  }

  /// Pumps a ManualExecutor (and both virtual clocks) until the async
  /// chain resolves; commit acks arrive from the cluster's pump thread.
  void Pump(fdb::ManualExecutor* exec, const fdb::Future<Status>& future) {
    for (int i = 0; i < 20000 && !future.IsReady(); ++i) {
      exec->RunUntilIdle();
      exec->AdvanceMillis(50);
      clock_.AdvanceMillis(2);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    ASSERT_TRUE(future.IsReady()) << "async chain never resolved";
  }

  const ck::DatabaseId db_ = ck::DatabaseId::Private("wfapp", "alice");
  ManualClock clock_{60000};
  Tracer tracer_;
  std::unique_ptr<fdb::ClusterSet> clusters_;
  std::unique_ptr<ck::CloudKitService> ck_;
  std::unique_ptr<core::Quick> quick_;
  core::JobRegistry registry_;
  std::unique_ptr<WorkflowEngine> engine_;
};

TEST_F(WorkflowTest, ThreeStepSagaCompletesWithPayloadChaining) {
  std::vector<std::string> log;
  SagaSpec saga;
  saga.name = "ship";
  for (int i = 0; i < 3; ++i) {
    StepSpec s;
    s.name = "step" + std::to_string(i);
    s.run = [&log, i](core::WorkContext&, StepContext& sctx) {
      log.push_back("run" + std::to_string(i) + ":" + sctx.payload);
      sctx.next_payload = sctx.payload + ">" + std::to_string(i);
      return Status::OK();
    };
    saga.steps.push_back(std::move(s));
  }
  ASSERT_TRUE(engine_->RegisterSaga(saga).ok());

  auto wf = engine_->Start(db_, "ship", "p0");
  ASSERT_TRUE(wf.ok()) << wf.status();

  auto consumer = MakeConsumer("wf-consumer");
  Drain(consumer.get());

  const ck::WorkflowRecord r = MustLoad(*wf);
  EXPECT_EQ(r.state, ck::WorkflowRecord::State::kCompleted);
  EXPECT_EQ(r.step_status, "XXX");
  EXPECT_EQ(r.current_step, 3);
  EXPECT_EQ(r.total_steps, 3);
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "run0:p0");
  EXPECT_EQ(log[1], "run1:p0>0");
  EXPECT_EQ(log[2], "run2:p0>0>1");
  // Steps 1 and 2 arrived as transactional continuations of their
  // predecessors' finish transactions.
  EXPECT_EQ(consumer->stats().continuations_enqueued.Value(), 2);
  EXPECT_EQ(quick_->PendingCount(db_).value_or(-1), 0);
}

TEST_F(WorkflowTest, CrashBeforeFinishCommitsNeitherCompleteNorContinuation) {
  std::map<int, int> runs;
  core::Consumer* doomed = nullptr;
  bool crash_armed = true;
  SagaSpec saga;
  saga.name = "atomic";
  for (int i = 0; i < 3; ++i) {
    StepSpec s;
    s.name = "step" + std::to_string(i);
    s.run = [&, i](core::WorkContext&, StepContext&) {
      ++runs[i];
      if (i == 0 && crash_armed) {
        crash_armed = false;
        doomed->SimulateCrash();  // dies after executing, before finishing
      }
      return Status::OK();
    };
    saga.steps.push_back(std::move(s));
  }
  ASSERT_TRUE(engine_->RegisterSaga(saga).ok());
  auto wf = engine_->Start(db_, "atomic", "p");
  ASSERT_TRUE(wf.ok()) << wf.status();

  auto crasher = MakeConsumer("crasher");
  doomed = crasher.get();
  (void)crasher->RunOnePass("c1");

  // The handler ran once, but the dead consumer never committed the finish
  // transaction: the step item is still queued (leased to a corpse), the
  // record untouched, and no step-1 continuation exists. All-or-nothing.
  EXPECT_EQ(runs[0], 1);
  EXPECT_EQ(runs.count(1), 0u);
  ck::WorkflowRecord r = MustLoad(*wf);
  EXPECT_EQ(r.state, ck::WorkflowRecord::State::kRunning);
  EXPECT_EQ(r.step_status, "PPP");
  EXPECT_EQ(r.current_step, 0);
  EXPECT_EQ(quick_->PendingCount(db_).value_or(-1), 1);

  // The abandoned lease expires; a healthy consumer re-executes step 0
  // (at-least-once handlers) and the saga completes — the record and the
  // continuation chain transition exactly once.
  clock_.AdvanceMillis(6000);
  auto healthy = MakeConsumer("healthy");
  Drain(healthy.get());
  r = MustLoad(*wf);
  EXPECT_EQ(r.state, ck::WorkflowRecord::State::kCompleted);
  EXPECT_EQ(r.step_status, "XXX");
  EXPECT_EQ(runs[0], 2);
  EXPECT_EQ(runs[1], 1);
  EXPECT_EQ(runs[2], 1);
  EXPECT_EQ(healthy->stats().continuations_enqueued.Value(), 2);
}

TEST_F(WorkflowTest, FencedZombieFinishAppliesNoExtras) {
  std::atomic<int> step0_runs{0};
  std::atomic<int> step1_runs{0};
  core::Consumer* takeover = nullptr;
  SagaSpec saga;
  saga.name = "fence";
  StepSpec s0;
  s0.name = "stall";
  s0.run = [&](core::WorkContext&, StepContext&) {
    if (step0_runs.fetch_add(1) == 0) {
      // The zombie incarnation: stall past the item lease, let the
      // takeover consumer retake and finish the step inline.
      clock_.AdvanceMillis(6000);
      (void)takeover->RunOnePass("c1");
    }
    return Status::OK();
  };
  StepSpec s1;
  s1.name = "after";
  s1.run = [&](core::WorkContext&, StepContext&) {
    ++step1_runs;
    return Status::OK();
  };
  saga.steps.push_back(std::move(s0));
  saga.steps.push_back(std::move(s1));
  ASSERT_TRUE(engine_->RegisterSaga(saga).ok());
  auto wf = engine_->Start(db_, "fence", "p");
  ASSERT_TRUE(wf.ok()) << wf.status();

  auto zombie = MakeConsumer("zombie");
  auto fresh = MakeConsumer("takeover");
  takeover = fresh.get();
  (void)zombie->RunOnePass("c1");

  // The zombie's finish hit the lease fence: no Complete, no continuation,
  // no record write from it — the takeover's finish carried the extras.
  EXPECT_EQ(zombie->stats().leases_lost.Value(), 1);
  EXPECT_EQ(zombie->stats().continuations_enqueued.Value(), 0);
  Drain(fresh.get());
  const ck::WorkflowRecord r = MustLoad(*wf);
  EXPECT_EQ(r.state, ck::WorkflowRecord::State::kCompleted);
  EXPECT_EQ(r.step_status, "XX");
  EXPECT_EQ(step0_runs.load(), 2);  // zombie + takeover incarnations
  EXPECT_EQ(step1_runs.load(), 1);  // the chain never forked
  EXPECT_EQ(fresh->stats().continuations_enqueued.Value(), 1);
}

TEST_F(WorkflowTest, CompensationsRunInReverseOrderAfterPermanentFailure) {
  std::vector<std::string> events;
  SagaSpec saga;
  saga.name = "book";
  saga.policy.max_inline_retries = 0;
  const bool compensable[] = {true, true, false};
  for (int i = 0; i < 3; ++i) {
    StepSpec s;
    s.name = "step" + std::to_string(i);
    s.run = [&events, i](core::WorkContext&, StepContext&) {
      events.push_back("run" + std::to_string(i));
      return Status::OK();
    };
    if (compensable[i]) {
      s.compensate = [&events, i](core::WorkContext&, StepContext&) {
        events.push_back("comp" + std::to_string(i));
        return Status::OK();
      };
    }
    saga.steps.push_back(std::move(s));
  }
  StepSpec doomed;
  doomed.name = "charge";
  doomed.run = [&events](core::WorkContext&, StepContext&) {
    events.push_back("run3");
    return Status::Permanent("card declined");
  };
  saga.steps.push_back(std::move(doomed));
  ASSERT_TRUE(engine_->RegisterSaga(saga).ok());

  auto wf = engine_->Start(db_, "book", "p");
  ASSERT_TRUE(wf.ok()) << wf.status();
  auto consumer = MakeConsumer("comp-consumer");
  Drain(consumer.get());

  // Forward 0..3, then compensations strictly in reverse step order,
  // skipping step 2 (no compensate function).
  const std::vector<std::string> expected = {"run0", "run1", "run2", "run3",
                                             "comp1", "comp0"};
  EXPECT_EQ(events, expected);

  // The ⊎ ledger in miniature: steps 0/1 compensated, step 2 executed
  // (uncompensable), step 3 dead-lettered — and the failing item sits in
  // the zone's quarantine under its deterministic id.
  const ck::WorkflowRecord r = MustLoad(*wf);
  EXPECT_EQ(r.state, ck::WorkflowRecord::State::kCompensated);
  EXPECT_EQ(r.step_status, "CCXD");
  EXPECT_TRUE(Contains(r.failure, "card declined")) << r.failure;
  core::QuickAdmin admin(quick_.get());
  auto dead = admin.ListDeadLetters(db_);
  ASSERT_TRUE(dead.ok()) << dead.status();
  ASSERT_EQ(dead->size(), 1u);
  EXPECT_EQ((*dead)[0].id, WorkflowEngine::ForwardItemId(*wf, 3));
}

TEST_F(WorkflowTest, FailedCompensationMarksTheWorkflowFailed) {
  SagaSpec saga;
  saga.name = "fragile";
  saga.policy.max_inline_retries = 0;
  StepSpec s0;
  s0.name = "reserve";
  s0.run = [](core::WorkContext&, StepContext&) { return Status::OK(); };
  s0.compensate = [](core::WorkContext&, StepContext&) {
    return Status::Permanent("release failed");
  };
  StepSpec s1;
  s1.name = "doom";
  s1.run = [](core::WorkContext&, StepContext&) {
    return Status::Permanent("step bug");
  };
  saga.steps.push_back(std::move(s0));
  saga.steps.push_back(std::move(s1));
  ASSERT_TRUE(engine_->RegisterSaga(saga).ok());

  auto wf = engine_->Start(db_, "fragile", "p");
  ASSERT_TRUE(wf.ok()) << wf.status();
  auto consumer = MakeConsumer("fragile-consumer");
  Drain(consumer.get());

  const ck::WorkflowRecord r = MustLoad(*wf);
  EXPECT_EQ(r.state, ck::WorkflowRecord::State::kFailed);
  EXPECT_TRUE(Contains(r.failure, "release failed")) << r.failure;
  // Both the failed step item and the failed compensation item are in the
  // quarantine — nothing is silently lost.
  core::QuickAdmin admin(quick_.get());
  EXPECT_EQ(admin.DeadLetterCount(db_).value_or(-1), 2);
}

TEST_F(WorkflowTest, OutboxEffectsApplyExactlyOnceAcrossRelayCrash) {
  SagaSpec saga;
  saga.name = "email";
  for (int i = 0; i < 2; ++i) {
    StepSpec s;
    s.name = "send" + std::to_string(i);
    s.run = [i](core::WorkContext&, StepContext& sctx) {
      core::OutboxEffect e;
      e.target = "mailer";
      e.idempotency_key = "msg" + std::to_string(i);
      e.payload = "body" + std::to_string(i);
      sctx.effects.push_back(std::move(e));
      return Status::OK();
    };
    saga.steps.push_back(std::move(s));
  }
  ASSERT_TRUE(engine_->RegisterSaga(saga).ok());
  auto wf = engine_->Start(db_, "email", "p");
  ASSERT_TRUE(wf.ok()) << wf.status();
  auto consumer = MakeConsumer("fx-consumer");
  Drain(consumer.get());
  EXPECT_EQ(consumer->stats().outbox_effects_recorded.Value(), 2);

  // First relay applies both effects, then "crashes" before acking any
  // row (ack_enabled=false): the rows survive.
  ext::SimEffectStore store;
  ext::OutboxRelay::Options crash_opts;
  crash_opts.ack_enabled = false;
  ext::OutboxRelay crashy(ck_.get(), &store, crash_opts);
  auto visited = crashy.RunOnePass("c1");
  ASSERT_TRUE(visited.ok()) << visited.status();
  EXPECT_EQ(*visited, 2);
  EXPECT_EQ(store.TotalApplied(), 2);
  EXPECT_EQ(crashy.Lag("c1").value_or(-1), 2);

  // The recovery relay re-delivers both attempts; the store's idempotency
  // keys dedupe them — duplicate attempts, zero duplicate effects — and
  // the rows are acked away.
  ext::OutboxRelay relay(ck_.get(), &store);
  visited = relay.RunOnePass("c1");
  ASSERT_TRUE(visited.ok()) << visited.status();
  EXPECT_EQ(*visited, 2);
  EXPECT_EQ(store.MaxApplications(), 1);
  EXPECT_EQ(store.TotalApplied(), 2);
  EXPECT_EQ(store.DuplicateAttempts(), 2);
  EXPECT_EQ(relay.stats().effects_deduped.Value(), 2);
  EXPECT_EQ(relay.stats().rows_acked.Value(), 2);
  EXPECT_EQ(relay.Lag("c1").value_or(-1), 0);
  EXPECT_EQ(store.PayloadFor("msg0"), "mailer|body0");
}

TEST_F(WorkflowTest, StartIsIdempotentOnTheWorkflowId) {
  SagaSpec saga;
  saga.name = "noop";
  StepSpec s;
  s.name = "only";
  s.run = [](core::WorkContext&, StepContext&) { return Status::OK(); };
  saga.steps.push_back(std::move(s));
  ASSERT_TRUE(engine_->RegisterSaga(saga).ok());

  auto first = engine_->Start(db_, "noop", "p", "wf-dup");
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(*first, "wf-dup");
  auto second = engine_->Start(db_, "noop", "p", "wf-dup");
  EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists);
  // The duplicate Start enqueued nothing: still exactly one step item.
  EXPECT_EQ(quick_->PendingCount(db_).value_or(-1), 1);

  auto unknown = engine_->Start(db_, "no-such-saga", "p");
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(WorkflowTest, EnqueueAsyncDeliversThroughThePipeline) {
  std::atomic<int> ran{0};
  registry_.Register("async_job", [&](core::WorkContext&) {
    ++ran;
    return Status::OK();
  });
  fdb::ManualExecutor exec;
  std::string id;
  core::WorkItem item;
  item.job_type = "async_job";
  fdb::Future<Status> f = quick_->EnqueueAsync(db_, item, 0, &id, &exec);
  Pump(&exec, f);
  ASSERT_TRUE(f.Get().ok()) << f.Get();
  EXPECT_FALSE(id.empty());
  EXPECT_EQ(quick_->PendingCount(db_).value_or(-1), 1);

  auto consumer = MakeConsumer("async-drainer");
  Drain(consumer.get());
  EXPECT_EQ(ran.load(), 1);
}

TEST_F(WorkflowTest, StartAsyncRunsTheSagaEndToEnd) {
  std::atomic<int> steps_run{0};
  SagaSpec saga;
  saga.name = "asaga";
  for (int i = 0; i < 2; ++i) {
    StepSpec s;
    s.name = "step" + std::to_string(i);
    s.run = [&](core::WorkContext&, StepContext&) {
      ++steps_run;
      return Status::OK();
    };
    saga.steps.push_back(std::move(s));
  }
  ASSERT_TRUE(engine_->RegisterSaga(saga).ok());

  fdb::ManualExecutor exec;
  std::string wf;
  fdb::Future<Status> f = engine_->StartAsync(db_, "asaga", "p", &wf, &exec);
  Pump(&exec, f);
  ASSERT_TRUE(f.Get().ok()) << f.Get();
  ASSERT_FALSE(wf.empty());

  auto consumer = MakeConsumer("async-saga-drainer");
  Drain(consumer.get());
  const ck::WorkflowRecord r = MustLoad(wf);
  EXPECT_EQ(r.state, ck::WorkflowRecord::State::kCompleted);
  EXPECT_EQ(r.step_status, "XX");
  EXPECT_EQ(steps_run.load(), 2);
}

TEST_F(WorkflowTest, WorkflowTraceAndRenderingTellTheSagaStory) {
  SagaSpec saga;
  saga.name = "traced";
  for (int i = 0; i < 2; ++i) {
    StepSpec s;
    s.name = "step" + std::to_string(i);
    s.run = [](core::WorkContext&, StepContext&) { return Status::OK(); };
    saga.steps.push_back(std::move(s));
  }
  ASSERT_TRUE(engine_->RegisterSaga(saga).ok());
  auto wf = engine_->Start(db_, "traced", "p", "wf-trace");
  ASSERT_TRUE(wf.ok()) << wf.status();
  auto consumer = MakeConsumer("trace-consumer");
  Drain(consumer.get());

  core::QuickAdmin admin(quick_.get());
  std::vector<std::string> names;
  std::vector<std::string> step_items;
  for (const Span& span : admin.WorkflowTrace("wf-trace")) {
    names.push_back(span.name);
    step_items.push_back(span.parent_trace);
  }
  const std::vector<std::string> expected = {
      core::stage::kWorkflowStarted,    core::stage::kWorkflowStepStart,
      core::stage::kWorkflowStepFinish, core::stage::kWorkflowStepStart,
      core::stage::kWorkflowStepFinish, core::stage::kWorkflowDone};
  EXPECT_EQ(names, expected);
  // Every workflow span is parented to the step item that carried it.
  ASSERT_EQ(step_items.size(), 6u);
  EXPECT_EQ(step_items[1], WorkflowEngine::ForwardItemId("wf-trace", 0));
  EXPECT_EQ(step_items[3], WorkflowEngine::ForwardItemId("wf-trace", 1));

  const std::string render = admin.RenderWorkflowTrace(db_, "wf-trace");
  EXPECT_TRUE(Contains(render, "workflow wf-trace")) << render;
  EXPECT_TRUE(Contains(render, "state=completed")) << render;
  EXPECT_TRUE(Contains(render, "saga=traced")) << render;
  EXPECT_TRUE(Contains(render, "steps=XX")) << render;
  EXPECT_TRUE(Contains(render, core::stage::kWorkflowDone)) << render;
  EXPECT_TRUE(Contains(render, WorkflowEngine::ForwardItemId("wf-trace", 1))) << render;
}

}  // namespace
}  // namespace quick::wf
