// Crash/outage chaos for the workflow engine, over the WAL-backed
// workload harness:
//
//  - CrashAfterEveryStepResumesExactlyOnce: a 3-step saga is killed and
//    restarted after EVERY step's finish commit; each restart rebuilds
//    QuiCK from the durable log, a fresh engine re-registers the saga,
//    and the run completes with every step executed exactly once and
//    every outbox effect applied exactly once.
//
//  - SagaLedgerExactAcrossCrashRestart (5 seeds): a fleet of sagas —
//    some healthy, some with a permanently failing last step — takes a
//    kill-the-process crash mid-traffic while a crash-prone relay
//    (applies effects, never acks) drains the outbox. After recovery the
//    ledger must be exact: every workflow record terminal with the
//    executed ⊎ dead-lettered ⊎ compensated partition of its steps,
//    compensations in reverse step order, the quarantine holding exactly
//    the failed step items, and the external store having applied every
//    effect exactly once (duplicate *attempts* are fine and expected).

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "external/outbox_relay.h"
#include "fdb/database.h"
#include "quick/admin.h"
#include "quick/consumer.h"
#include "workflow/workflow.h"
#include "workload/harness.h"

namespace quick::wf {
namespace {

std::string MakeTempDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "quick_wf_chaos_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

core::ConsumerConfig ChaosConsumerConfig() {
  core::ConsumerConfig config;
  config.sequential = true;
  config.relaxed_reads_for_peek = false;
  config.dequeue_max = 2;
  config.pointer_lease_millis = 1000;
  config.item_lease_millis = 1000;
  return config;
}

/// Shared across harness restarts: the handlers' side of the ledger.
struct Ledger {
  std::mutex mu;
  /// workflow id -> step -> forward executions (at-least-once).
  std::map<std::string, std::map<int, int>> forward_runs;
  /// workflow id -> compensated steps, in execution order.
  std::map<std::string, std::vector<int>> comp_order;
};

/// The chaos saga: 3 steps, every step compensable, every forward step and
/// every compensation intending one outbox effect. A payload containing
/// "doom" makes the last step fail permanently, triggering rollback.
SagaSpec MakeChaosSaga(Ledger* ledger) {
  SagaSpec saga;
  saga.name = "order";
  saga.policy.max_inline_retries = 0;
  saga.policy.backoff_initial_millis = 10;
  for (int i = 0; i < 3; ++i) {
    StepSpec s;
    s.name = "step" + std::to_string(i);
    s.run = [ledger, i](core::WorkContext& ctx, StepContext& sctx) {
      // Step item ids are deterministic ("<wf>.f<i>"): recover the
      // workflow id for the ledger.
      const std::string wf =
          ctx.item.id.substr(0, ctx.item.id.rfind(".f"));
      {
        std::lock_guard<std::mutex> lock(ledger->mu);
        ++ledger->forward_runs[wf][i];
      }
      if (i == 2 && sctx.payload.find("doom") != std::string::npos) {
        return Status::Permanent("doomed step");
      }
      core::OutboxEffect e;
      e.target = "ext";
      e.idempotency_key = wf + ".e" + std::to_string(i);
      e.payload = "fwd" + std::to_string(i);
      sctx.effects.push_back(std::move(e));
      return Status::OK();
    };
    s.compensate = [ledger, i](core::WorkContext& ctx, StepContext& sctx) {
      const std::string wf =
          ctx.item.id.substr(0, ctx.item.id.rfind(".c"));
      {
        std::lock_guard<std::mutex> lock(ledger->mu);
        ledger->comp_order[wf].push_back(i);
      }
      core::OutboxEffect e;
      e.target = "ext";
      e.idempotency_key = wf + ".u" + std::to_string(i);
      e.payload = "undo" + std::to_string(i);
      sctx.effects.push_back(std::move(e));
      return Status::OK();
    };
    saga.steps.push_back(std::move(s));
  }
  return saga;
}

TEST(WorkflowChaosTest, CrashAfterEveryStepResumesExactlyOnce) {
  wl::HarnessOptions hopts;
  hopts.num_clusters = 1;
  hopts.work_millis = 0;
  hopts.pointer_vesting_slack_millis = 0;
  hopts.enable_wal = true;
  hopts.wal_dir = MakeTempDir("every_step");
  wl::Harness harness(hopts);

  Ledger ledger;
  auto engine = std::make_unique<WorkflowEngine>(harness.quick(),
                                                 harness.registry());
  ASSERT_TRUE(engine->RegisterSaga(MakeChaosSaga(&ledger)).ok());
  const ck::DatabaseId db = harness.ClientDb(0);
  auto wf = engine->Start(db, "order", "ok");
  ASSERT_TRUE(wf.ok()) << wf.status();

  auto consumer = harness.MakeConsumer(ChaosConsumerConfig(), "wf-stepper");
  // After each step's finish commits, kill the process and recover from
  // the durable log: the continuation item, the outbox rows, and the
  // record update all survive (they committed atomically), and nothing
  // re-executes.
  for (int step = 0; step < 3; ++step) {
    auto reached = [&]() {
      auto r = engine->Load(db, *wf);
      return r.ok() && r->has_value() && (*r)->current_step >= step + 1;
    };
    for (int round = 0; round < 400 && !reached(); ++round) {
      (void)consumer->RunOnePass("cluster0");
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(reached()) << "step " << step << " never committed";

    consumer.reset();
    engine.reset();
    harness.Restart();
    ASSERT_TRUE(
        harness.clusters()->Get("cluster0")->GetRecoveryInfo().recovered);
    engine = std::make_unique<WorkflowEngine>(harness.quick(),
                                              harness.registry());
    ASSERT_TRUE(engine->RegisterSaga(MakeChaosSaga(&ledger)).ok());
    consumer = harness.MakeConsumer(ChaosConsumerConfig(),
                                    "wf-stepper-" + std::to_string(step));
    // Pre-crash leases are durable state; wait them out.
    std::this_thread::sleep_for(std::chrono::milliseconds(1100));
  }

  auto record = engine->Load(db, *wf);
  ASSERT_TRUE(record.ok()) << record.status();
  ASSERT_TRUE(record->has_value()) << "workflow record lost across crashes";
  EXPECT_EQ((*record)->state, ck::WorkflowRecord::State::kCompleted);
  EXPECT_EQ((*record)->step_status, "XXX");
  {
    std::lock_guard<std::mutex> lock(ledger.mu);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(ledger.forward_runs[*wf][i], 1)
          << "step " << i << " did not execute exactly once";
    }
    EXPECT_TRUE(ledger.comp_order.empty());
  }

  // Drain the outbox: three rows, each effect applied exactly once.
  ext::SimEffectStore store;
  ext::OutboxRelay relay(harness.cloudkit(), &store);
  auto visited = relay.RunOnePass("cluster0");
  ASSERT_TRUE(visited.ok()) << visited.status();
  EXPECT_EQ(*visited, 3);
  EXPECT_EQ(store.TotalApplied(), 3);
  EXPECT_LE(store.MaxApplications(), 1);
  EXPECT_EQ(relay.Lag("cluster0").value_or(-1), 0);
}

class WorkflowChaosSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WorkflowChaosSeedTest, SagaLedgerExactAcrossCrashRestart) {
  const uint64_t seed = GetParam();
  constexpr int kTenants = 4;
  constexpr int kWorkflows = 12;

  wl::HarnessOptions hopts;
  hopts.num_clusters = 1;
  hopts.work_millis = 0;
  hopts.pointer_vesting_slack_millis = 0;
  hopts.enable_wal = true;
  hopts.wal_dir = MakeTempDir("seed" + std::to_string(seed));
  hopts.seed = seed;
  // The explicit Checkpoint() below is the kill: its first write tears.
  hopts.fault_plan.AddDisk(
      fdb::DiskFault::TornWrite(/*at_op=*/1).OnCheckpoint());
  wl::Harness harness(hopts);

  Ledger ledger;
  ext::SimEffectStore store;  // the external system outlives the process
  auto engine = std::make_unique<WorkflowEngine>(harness.quick(),
                                                 harness.registry());
  ASSERT_TRUE(engine->RegisterSaga(MakeChaosSaga(&ledger)).ok());
  auto consumer = harness.MakeConsumer(ChaosConsumerConfig(), "wf-chaos");
  // A relay that applies effects but never acknowledges rows — the
  // crash-prone half of the protocol; recovery redelivers its rows.
  ext::OutboxRelay::Options crashy_opts;
  crashy_opts.ack_enabled = false;
  auto crashy = std::make_unique<ext::OutboxRelay>(harness.cloudkit(),
                                                   &store, crashy_opts);

  // --- Phase 1: starts, consumer passes, and no-ack relay passes race
  // until the process dies mid-traffic. ---
  struct Started {
    std::string id;
    int tenant;
    bool doomed;
  };
  Random rng(seed);
  std::vector<Started> started;
  for (int i = 0; i < kWorkflows; ++i) {
    const int tenant = static_cast<int>(rng.Uniform(kTenants));
    const bool doomed = rng.Uniform(100) < 35;
    auto wf = engine->Start(harness.ClientDb(tenant), "order",
                            doomed ? "doom" : "ok");
    ASSERT_TRUE(wf.ok()) << wf.status();
    started.push_back({*wf, tenant, doomed});
    for (uint64_t p = rng.Uniform(3); p > 0; --p) {
      (void)consumer->RunOnePass("cluster0");
    }
    if (rng.Uniform(100) < 30) (void)crashy->RunOnePass("cluster0");
  }

  // --- Kill the process mid-checkpoint; its durable log survives. ---
  fdb::Database* dying = harness.clusters()->Get("cluster0");
  ASSERT_NE(dying, nullptr);
  EXPECT_FALSE(dying->Checkpoint().ok());
  ASSERT_TRUE(dying->DurabilityDead());

  // --- Restart: rebuild QuiCK from disk, fresh engine + consumer +
  // (now acknowledging) relay. ---
  consumer.reset();
  crashy.reset();
  engine.reset();
  harness.Restart();
  ASSERT_TRUE(
      harness.clusters()->Get("cluster0")->GetRecoveryInfo().recovered);
  engine = std::make_unique<WorkflowEngine>(harness.quick(),
                                            harness.registry());
  ASSERT_TRUE(engine->RegisterSaga(MakeChaosSaga(&ledger)).ok());
  consumer = harness.MakeConsumer(ChaosConsumerConfig(), "wf-chaos-revived");
  ext::OutboxRelay relay(harness.cloudkit(), &store);
  std::this_thread::sleep_for(std::chrono::milliseconds(1100));

  auto all_terminal = [&] {
    for (const Started& s : started) {
      auto r = engine->Load(harness.ClientDb(s.tenant), s.id);
      if (!r.ok() || !r->has_value() || !(*r)->Terminal()) return false;
    }
    return relay.Lag("cluster0").value_or(-1) == 0;
  };
  for (int round = 0; round < 600 && !all_terminal(); ++round) {
    (void)consumer->RunOnePass("cluster0");
    if (round % 3 == 0) (void)relay.RunOnePass("cluster0");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(all_terminal())
      << "workflows never drained to terminal states (seed " << seed << ")";

  // --- The exact ledger. ---
  core::QuickAdmin admin(harness.quick());
  std::set<std::string> quarantined;
  for (int t = 0; t < kTenants; ++t) {
    auto items = admin.ListDeadLetters(harness.ClientDb(t));
    ASSERT_TRUE(items.ok()) << items.status();
    for (const ck::DeadLetterItem& item : *items) quarantined.insert(item.id);
  }

  int expected_effects = 0;
  std::set<std::string> expected_quarantine;
  std::lock_guard<std::mutex> lock(ledger.mu);
  for (const Started& s : started) {
    auto r = engine->Load(harness.ClientDb(s.tenant), s.id);
    ASSERT_TRUE(r.ok() && r->has_value())
        << "record lost for " << s.id << " (seed " << seed << ")";
    const ck::WorkflowRecord& record = **r;
    if (s.doomed) {
      // Steps 0/1 executed then compensated, step 2 dead-lettered; the
      // rollback ran strictly in reverse order.
      EXPECT_EQ(record.state, ck::WorkflowRecord::State::kCompensated)
          << s.id << " (seed " << seed << ")";
      EXPECT_EQ(record.step_status, "CCD") << s.id;
      const std::vector<int> reverse = {1, 0};
      EXPECT_EQ(ledger.comp_order[s.id], reverse) << s.id;
      expected_quarantine.insert(WorkflowEngine::ForwardItemId(s.id, 2));
      expected_effects += 4;  // e0, e1, u1, u0
    } else {
      EXPECT_EQ(record.state, ck::WorkflowRecord::State::kCompleted)
          << s.id << " (seed " << seed << ")";
      EXPECT_EQ(record.step_status, "XXX") << s.id;
      EXPECT_EQ(ledger.comp_order.count(s.id), 0u) << s.id;
      expected_effects += 3;  // e0, e1, e2
    }
    for (int i = 0; i < 3; ++i) {
      EXPECT_GE(ledger.forward_runs[s.id][i], 1)
          << s.id << " step " << i << " never ran";
    }
  }
  // The quarantine holds exactly the failed step items — dead-lettered ⊎
  // executed ⊎ compensated, nothing lost, nothing duplicated.
  EXPECT_EQ(quarantined, expected_quarantine) << "(seed " << seed << ")";

  // Zero duplicate external effects: every intended effect applied exactly
  // once, even though the no-ack relay forced redeliveries.
  EXPECT_EQ(store.TotalApplied(), expected_effects);
  EXPECT_LE(store.MaxApplications(), 1);
  EXPECT_EQ(relay.Lag("cluster0").value_or(-1), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkflowChaosSeedTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 20260808u));

}  // namespace
}  // namespace quick::wf
