#ifndef QUICK_TUPLE_SUBSPACE_H_
#define QUICK_TUPLE_SUBSPACE_H_

#include <string>
#include <string_view>

#include "common/bytes.h"
#include "tuple/tuple.h"

namespace quick::tup {

/// A keyspace region identified by a byte prefix, with tuple-encoded keys
/// inside it — the Record Layer's unit of data placement. Logical databases,
/// zones, record stores and indexes are all Subspaces in this repository.
class Subspace {
 public:
  Subspace() = default;
  explicit Subspace(std::string raw_prefix) : prefix_(std::move(raw_prefix)) {}
  explicit Subspace(const Tuple& t) : prefix_(t.Encode()) {}

  /// Child subspace: this prefix + Encode(t).
  Subspace Sub(const Tuple& t) const { return Subspace(prefix_ + t.Encode()); }

  /// Convenience single-element children.
  Subspace Sub(int64_t v) const { return Sub(Tuple().AddInt(v)); }
  Subspace Sub(std::string_view s) const {
    return Sub(Tuple().AddString(std::string(s)));
  }

  /// Key for tuple `t` within this subspace.
  std::string Pack(const Tuple& t) const { return prefix_ + t.Encode(); }

  /// Inverse of Pack: strips the prefix and decodes the remainder. Fails if
  /// `key` is not within this subspace.
  Result<Tuple> Unpack(std::string_view key) const;

  bool Contains(std::string_view key) const {
    return StartsWith(key, prefix_);
  }

  /// Range covering every key packed in this subspace.
  KeyRange Range() const { return KeyRange::Prefix(prefix_); }

  /// Range covering keys in this subspace whose tuple starts with `t`.
  KeyRange Range(const Tuple& t) const {
    return KeyRange::Prefix(prefix_ + t.Encode());
  }

  const std::string& prefix() const { return prefix_; }

  bool operator==(const Subspace& other) const = default;

 private:
  std::string prefix_;
};

}  // namespace quick::tup

#endif  // QUICK_TUPLE_SUBSPACE_H_
