#include "tuple/subspace.h"

namespace quick::tup {

Result<Tuple> Subspace::Unpack(std::string_view key) const {
  if (!Contains(key)) {
    return Status::InvalidArgument("key not in subspace");
  }
  return Tuple::Decode(key.substr(prefix_.size()));
}

}  // namespace quick::tup
