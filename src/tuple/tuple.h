#ifndef QUICK_TUPLE_TUPLE_H_
#define QUICK_TUPLE_TUPLE_H_

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace quick::tup {

/// FoundationDB tuple-layer encoding (the subset the Record Layer and
/// QuiCK need). The defining property — relied on by every index in this
/// repository and property-tested in tests/tuple — is order preservation:
/// for tuples a, b:  a < b (element-wise, by type then value)  <=>
/// Encode(a) < Encode(b) (lexicographic byte order).
///
/// Supported element types, in their cross-type sort order:
///   null < bytes < string < nested tuple < int64 < double < bool < uuid

struct Null {
  bool operator==(const Null&) const { return true; }
};

/// Distinguishes raw byte strings from UTF-8 strings (different type codes,
/// different sort classes).
struct Bytes {
  std::string data;
  bool operator==(const Bytes&) const = default;
};

struct Uuid {
  std::array<uint8_t, 16> data{};
  bool operator==(const Uuid&) const = default;

  /// Parses 32 hex chars (as produced by Random::NextUuid).
  static Result<Uuid> FromHex(std::string_view hex);
  std::string ToHex() const;
};

class Tuple;

using Element = std::variant<Null, Bytes, std::string, Tuple, int64_t, double,
                             bool, Uuid>;

class Tuple {
 public:
  Tuple() = default;

  /// Builder-style appends; return *this for chaining.
  Tuple& AddNull();
  Tuple& AddBytes(std::string bytes);
  Tuple& AddString(std::string s);
  Tuple& AddInt(int64_t v);
  Tuple& AddDouble(double v);
  Tuple& AddBool(bool v);
  Tuple& AddUuid(const Uuid& u);
  Tuple& AddTuple(Tuple t);
  Tuple& Add(Element e);

  /// Appends all elements of `t`.
  Tuple& Concat(const Tuple& t);

  size_t size() const { return elements_.size(); }
  bool empty() const { return elements_.empty(); }
  const Element& at(size_t i) const { return elements_.at(i); }
  const std::vector<Element>& elements() const { return elements_; }

  /// Typed accessors; return an error Status on index or type mismatch.
  Result<int64_t> GetInt(size_t i) const;
  Result<std::string> GetString(size_t i) const;
  Result<std::string> GetBytes(size_t i) const;
  Result<double> GetDouble(size_t i) const;
  Result<bool> GetBool(size_t i) const;
  Result<Uuid> GetUuid(size_t i) const;
  Result<Tuple> GetTuple(size_t i) const;
  bool IsNull(size_t i) const;

  /// Order-preserving serialization.
  std::string Encode() const;

  /// Inverse of Encode. Fails on malformed input.
  static Result<Tuple> Decode(std::string_view encoded);

  /// The prefix of this tuple of length `n` elements.
  Tuple Prefix(size_t n) const;

  /// Debug rendering, e.g. ("user1", 42, null).
  std::string ToString() const;

  bool operator==(const Tuple& other) const;

  /// Element-wise comparison consistent with encoded-byte comparison.
  std::strong_ordering operator<=>(const Tuple& other) const;

 private:
  std::vector<Element> elements_;
};

/// Compares single elements with the same order the encoding induces.
std::strong_ordering CompareElements(const Element& a, const Element& b);

}  // namespace quick::tup

#endif  // QUICK_TUPLE_TUPLE_H_
