#include "tuple/tuple.h"

#include <bit>
#include <cstring>
#include <sstream>

namespace quick::tup {

namespace {

// Type codes follow the FoundationDB tuple-layer specification so encoded
// tuples sort identically to the reference implementation.
constexpr uint8_t kNullCode = 0x00;
constexpr uint8_t kBytesCode = 0x01;
constexpr uint8_t kStringCode = 0x02;
constexpr uint8_t kNestedCode = 0x05;
constexpr uint8_t kIntZeroCode = 0x14;  // negatives 0x0B..0x13, positives 0x15..0x1D
constexpr uint8_t kDoubleCode = 0x21;
constexpr uint8_t kFalseCode = 0x26;
constexpr uint8_t kTrueCode = 0x27;
constexpr uint8_t kUuidCode = 0x30;
constexpr uint8_t kEscape = 0xFF;

void EncodeRawWithEscaping(std::string_view s, std::string* out) {
  for (char c : s) {
    out->push_back(c);
    if (c == '\x00') out->push_back(static_cast<char>(kEscape));
  }
  out->push_back('\x00');
}

// Sortable 8-byte transform of an IEEE-754 double: positive values get the
// sign bit flipped; negative values get all bits flipped. Big-endian byte
// order then sorts numerically.
uint64_t DoubleToSortableBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  if (bits & 0x8000000000000000ULL) {
    return ~bits;
  }
  return bits ^ 0x8000000000000000ULL;
}

double SortableBitsToDouble(uint64_t bits) {
  if (bits & 0x8000000000000000ULL) {
    bits ^= 0x8000000000000000ULL;
  } else {
    bits = ~bits;
  }
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

void EncodeElement(const Element& e, std::string* out);

void EncodeInt(int64_t v, std::string* out) {
  if (v == 0) {
    out->push_back(static_cast<char>(kIntZeroCode));
    return;
  }
  if (v > 0) {
    uint64_t u = static_cast<uint64_t>(v);
    int n = 0;
    for (uint64_t t = u; t != 0; t >>= 8) ++n;
    out->push_back(static_cast<char>(kIntZeroCode + n));
    for (int i = n - 1; i >= 0; --i) {
      out->push_back(static_cast<char>((u >> (8 * i)) & 0xFF));
    }
    return;
  }
  // Negative: encode magnitude's one's complement so larger (closer to zero)
  // values sort later; byte length determines the type code below zero.
  uint64_t mag = ~static_cast<uint64_t>(v) + 1;  // |v| without UB at INT64_MIN
  int n = 0;
  for (uint64_t t = mag; t != 0; t >>= 8) ++n;
  const uint64_t max_for_n =
      n == 8 ? ~uint64_t{0} : ((uint64_t{1} << (8 * n)) - 1);
  const uint64_t offset = max_for_n - mag;
  out->push_back(static_cast<char>(kIntZeroCode - n));
  for (int i = n - 1; i >= 0; --i) {
    out->push_back(static_cast<char>((offset >> (8 * i)) & 0xFF));
  }
}

void EncodeNested(const Tuple& t, std::string* out) {
  out->push_back(static_cast<char>(kNestedCode));
  for (const Element& e : t.elements()) {
    if (std::holds_alternative<Null>(e)) {
      // Nulls inside nested tuples are escaped so the terminator stays
      // unambiguous.
      out->push_back('\x00');
      out->push_back(static_cast<char>(kEscape));
    } else {
      EncodeElement(e, out);
    }
  }
  out->push_back('\x00');
}

void EncodeElement(const Element& e, std::string* out) {
  if (std::holds_alternative<Null>(e)) {
    out->push_back(static_cast<char>(kNullCode));
  } else if (const auto* b = std::get_if<Bytes>(&e)) {
    out->push_back(static_cast<char>(kBytesCode));
    EncodeRawWithEscaping(b->data, out);
  } else if (const auto* s = std::get_if<std::string>(&e)) {
    out->push_back(static_cast<char>(kStringCode));
    EncodeRawWithEscaping(*s, out);
  } else if (const auto* t = std::get_if<Tuple>(&e)) {
    EncodeNested(*t, out);
  } else if (const auto* i = std::get_if<int64_t>(&e)) {
    EncodeInt(*i, out);
  } else if (const auto* d = std::get_if<double>(&e)) {
    out->push_back(static_cast<char>(kDoubleCode));
    const uint64_t bits = DoubleToSortableBits(*d);
    for (int k = 7; k >= 0; --k) {
      out->push_back(static_cast<char>((bits >> (8 * k)) & 0xFF));
    }
  } else if (const auto* v = std::get_if<bool>(&e)) {
    out->push_back(static_cast<char>(*v ? kTrueCode : kFalseCode));
  } else if (const auto* u = std::get_if<Uuid>(&e)) {
    out->push_back(static_cast<char>(kUuidCode));
    for (uint8_t byte : u->data) out->push_back(static_cast<char>(byte));
  }
}

class Decoder {
 public:
  explicit Decoder(std::string_view in) : in_(in) {}

  Status DecodeAll(Tuple* out) {
    while (pos_ < in_.size()) {
      Element e;
      QUICK_RETURN_IF_ERROR(DecodeOne(&e, /*nested=*/false));
      out->Add(std::move(e));
    }
    return Status::OK();
  }

 private:
  Status DecodeOne(Element* out, bool nested) {
    if (pos_ >= in_.size()) {
      return Status::InvalidArgument("truncated tuple");
    }
    const uint8_t code = Byte(pos_++);
    switch (code) {
      case kNullCode:
        *out = Null{};
        return Status::OK();
      case kBytesCode: {
        std::string s;
        QUICK_RETURN_IF_ERROR(DecodeEscaped(&s));
        *out = Bytes{std::move(s)};
        return Status::OK();
      }
      case kStringCode: {
        std::string s;
        QUICK_RETURN_IF_ERROR(DecodeEscaped(&s));
        *out = std::move(s);
        return Status::OK();
      }
      case kNestedCode: {
        Tuple t;
        while (true) {
          if (pos_ >= in_.size()) {
            return Status::InvalidArgument("unterminated nested tuple");
          }
          if (Byte(pos_) == 0x00) {
            if (pos_ + 1 < in_.size() && Byte(pos_ + 1) == kEscape) {
              t.AddNull();
              pos_ += 2;
              continue;
            }
            ++pos_;  // terminator
            break;
          }
          Element e;
          QUICK_RETURN_IF_ERROR(DecodeOne(&e, /*nested=*/true));
          t.Add(std::move(e));
        }
        *out = std::move(t);
        return Status::OK();
      }
      case kDoubleCode: {
        if (pos_ + 8 > in_.size()) {
          return Status::InvalidArgument("truncated double");
        }
        uint64_t bits = 0;
        for (int k = 0; k < 8; ++k) bits = (bits << 8) | Byte(pos_++);
        *out = SortableBitsToDouble(bits);
        return Status::OK();
      }
      case kFalseCode:
        *out = false;
        return Status::OK();
      case kTrueCode:
        *out = true;
        return Status::OK();
      case kUuidCode: {
        if (pos_ + 16 > in_.size()) {
          return Status::InvalidArgument("truncated uuid");
        }
        Uuid u;
        for (int k = 0; k < 16; ++k) u.data[k] = Byte(pos_++);
        *out = u;
        return Status::OK();
      }
      default:
        break;
    }
    if (code >= kIntZeroCode - 8 && code <= kIntZeroCode + 8) {
      return DecodeIntBody(code, out);
    }
    (void)nested;
    return Status::InvalidArgument("unknown tuple type code");
  }

  Status DecodeIntBody(uint8_t code, Element* out) {
    if (code == kIntZeroCode) {
      *out = int64_t{0};
      return Status::OK();
    }
    const bool negative = code < kIntZeroCode;
    const int n = negative ? kIntZeroCode - code : code - kIntZeroCode;
    if (pos_ + static_cast<size_t>(n) > in_.size()) {
      return Status::InvalidArgument("truncated integer");
    }
    uint64_t raw = 0;
    for (int k = 0; k < n; ++k) raw = (raw << 8) | Byte(pos_++);
    if (!negative) {
      if (n == 8 && raw > static_cast<uint64_t>(INT64_MAX)) {
        return Status::InvalidArgument("integer overflow");
      }
      *out = static_cast<int64_t>(raw);
      return Status::OK();
    }
    const uint64_t max_for_n =
        n == 8 ? ~uint64_t{0} : ((uint64_t{1} << (8 * n)) - 1);
    const uint64_t mag = max_for_n - raw;
    if (n == 8 && mag > static_cast<uint64_t>(INT64_MAX) + 1) {
      return Status::InvalidArgument("integer underflow");
    }
    *out = static_cast<int64_t>(~mag + 1);  // -mag without UB at INT64_MIN
    return Status::OK();
  }

  Status DecodeEscaped(std::string* out) {
    while (true) {
      if (pos_ >= in_.size()) {
        return Status::InvalidArgument("unterminated byte string");
      }
      const uint8_t b = Byte(pos_++);
      if (b == 0x00) {
        if (pos_ < in_.size() && Byte(pos_) == kEscape) {
          out->push_back('\x00');
          ++pos_;
          continue;
        }
        return Status::OK();
      }
      out->push_back(static_cast<char>(b));
    }
  }

  uint8_t Byte(size_t i) const { return static_cast<uint8_t>(in_[i]); }

  std::string_view in_;
  size_t pos_ = 0;
};

int TypeRank(const Element& e) {
  // Must match the cross-type order induced by the type codes.
  if (std::holds_alternative<Null>(e)) return 0;
  if (std::holds_alternative<Bytes>(e)) return 1;
  if (std::holds_alternative<std::string>(e)) return 2;
  if (std::holds_alternative<Tuple>(e)) return 3;
  if (std::holds_alternative<int64_t>(e)) return 4;
  if (std::holds_alternative<double>(e)) return 5;
  if (std::holds_alternative<bool>(e)) return 6;
  return 7;  // Uuid
}

}  // namespace

Result<Uuid> Uuid::FromHex(std::string_view hex) {
  if (hex.size() != 32) {
    return Status::InvalidArgument("uuid hex must be 32 chars");
  }
  auto nib = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  Uuid u;
  for (int i = 0; i < 16; ++i) {
    const int hi = nib(hex[2 * i]);
    const int lo = nib(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) return Status::InvalidArgument("bad uuid hex");
    u.data[i] = static_cast<uint8_t>((hi << 4) | lo);
  }
  return u;
}

std::string Uuid::ToHex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[2 * i] = kHex[data[i] >> 4];
    out[2 * i + 1] = kHex[data[i] & 0xF];
  }
  return out;
}

Tuple& Tuple::AddNull() { return Add(Null{}); }
Tuple& Tuple::AddBytes(std::string bytes) {
  return Add(Bytes{std::move(bytes)});
}
Tuple& Tuple::AddString(std::string s) { return Add(Element(std::move(s))); }
Tuple& Tuple::AddInt(int64_t v) { return Add(Element(v)); }
Tuple& Tuple::AddDouble(double v) { return Add(Element(v)); }
Tuple& Tuple::AddBool(bool v) { return Add(Element(v)); }
Tuple& Tuple::AddUuid(const Uuid& u) { return Add(Element(u)); }
Tuple& Tuple::AddTuple(Tuple t) { return Add(Element(std::move(t))); }

Tuple& Tuple::Add(Element e) {
  elements_.push_back(std::move(e));
  return *this;
}

Tuple& Tuple::Concat(const Tuple& t) {
  for (const Element& e : t.elements_) elements_.push_back(e);
  return *this;
}

Result<int64_t> Tuple::GetInt(size_t i) const {
  if (i >= elements_.size()) return Status::InvalidArgument("index oob");
  if (const auto* v = std::get_if<int64_t>(&elements_[i])) return *v;
  return Status::InvalidArgument("element is not an int");
}

Result<std::string> Tuple::GetString(size_t i) const {
  if (i >= elements_.size()) return Status::InvalidArgument("index oob");
  if (const auto* v = std::get_if<std::string>(&elements_[i])) return *v;
  return Status::InvalidArgument("element is not a string");
}

Result<std::string> Tuple::GetBytes(size_t i) const {
  if (i >= elements_.size()) return Status::InvalidArgument("index oob");
  if (const auto* v = std::get_if<Bytes>(&elements_[i])) return v->data;
  return Status::InvalidArgument("element is not bytes");
}

Result<double> Tuple::GetDouble(size_t i) const {
  if (i >= elements_.size()) return Status::InvalidArgument("index oob");
  if (const auto* v = std::get_if<double>(&elements_[i])) return *v;
  return Status::InvalidArgument("element is not a double");
}

Result<bool> Tuple::GetBool(size_t i) const {
  if (i >= elements_.size()) return Status::InvalidArgument("index oob");
  if (const auto* v = std::get_if<bool>(&elements_[i])) return *v;
  return Status::InvalidArgument("element is not a bool");
}

Result<Uuid> Tuple::GetUuid(size_t i) const {
  if (i >= elements_.size()) return Status::InvalidArgument("index oob");
  if (const auto* v = std::get_if<Uuid>(&elements_[i])) return *v;
  return Status::InvalidArgument("element is not a uuid");
}

Result<Tuple> Tuple::GetTuple(size_t i) const {
  if (i >= elements_.size()) return Status::InvalidArgument("index oob");
  if (const auto* v = std::get_if<Tuple>(&elements_[i])) return *v;
  return Status::InvalidArgument("element is not a tuple");
}

bool Tuple::IsNull(size_t i) const {
  return i < elements_.size() && std::holds_alternative<Null>(elements_[i]);
}

std::string Tuple::Encode() const {
  std::string out;
  for (const Element& e : elements_) EncodeElement(e, &out);
  return out;
}

Result<Tuple> Tuple::Decode(std::string_view encoded) {
  Tuple t;
  Decoder d(encoded);
  QUICK_RETURN_IF_ERROR(d.DecodeAll(&t));
  return t;
}

Tuple Tuple::Prefix(size_t n) const {
  Tuple t;
  for (size_t i = 0; i < n && i < elements_.size(); ++i) {
    t.Add(elements_[i]);
  }
  return t;
}

std::string Tuple::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < elements_.size(); ++i) {
    if (i > 0) os << ", ";
    const Element& e = elements_[i];
    if (std::holds_alternative<Null>(e)) {
      os << "null";
    } else if (const auto* b = std::get_if<Bytes>(&e)) {
      os << "b\"" << b->data << "\"";
    } else if (const auto* s = std::get_if<std::string>(&e)) {
      os << '"' << *s << '"';
    } else if (const auto* t = std::get_if<Tuple>(&e)) {
      os << t->ToString();
    } else if (const auto* v = std::get_if<int64_t>(&e)) {
      os << *v;
    } else if (const auto* d = std::get_if<double>(&e)) {
      os << *d;
    } else if (const auto* v2 = std::get_if<bool>(&e)) {
      os << (*v2 ? "true" : "false");
    } else if (const auto* u = std::get_if<Uuid>(&e)) {
      os << u->ToHex();
    }
  }
  os << ")";
  return os.str();
}

bool Tuple::operator==(const Tuple& other) const {
  if (elements_.size() != other.elements_.size()) return false;
  for (size_t i = 0; i < elements_.size(); ++i) {
    if (CompareElements(elements_[i], other.elements_[i]) !=
        std::strong_ordering::equal) {
      return false;
    }
  }
  return true;
}

std::strong_ordering Tuple::operator<=>(const Tuple& other) const {
  const size_t n = std::min(elements_.size(), other.elements_.size());
  for (size_t i = 0; i < n; ++i) {
    const auto c = CompareElements(elements_[i], other.elements_[i]);
    if (c != std::strong_ordering::equal) return c;
  }
  return elements_.size() <=> other.elements_.size();
}

std::strong_ordering CompareElements(const Element& a, const Element& b) {
  const int ra = TypeRank(a);
  const int rb = TypeRank(b);
  if (ra != rb) return ra <=> rb;
  switch (ra) {
    case 0:
      return std::strong_ordering::equal;
    case 1:
      return std::get<Bytes>(a).data <=> std::get<Bytes>(b).data;
    case 2:
      return std::get<std::string>(a) <=> std::get<std::string>(b);
    case 3:
      return std::get<Tuple>(a) <=> std::get<Tuple>(b);
    case 4:
      return std::get<int64_t>(a) <=> std::get<int64_t>(b);
    case 5:
      // Compare through the sortable-bits transform so the comparison is a
      // total order consistent with the encoding (handles -0.0 and NaN).
      return DoubleToSortableBits(std::get<double>(a)) <=>
             DoubleToSortableBits(std::get<double>(b));
    case 6:
      return static_cast<int>(std::get<bool>(a)) <=>
             static_cast<int>(std::get<bool>(b));
    default:
      return std::get<Uuid>(a).data <=> std::get<Uuid>(b).data;
  }
}

}  // namespace quick::tup
