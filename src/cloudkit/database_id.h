#ifndef QUICK_CLOUDKIT_DATABASE_ID_H_
#define QUICK_CLOUDKIT_DATABASE_ID_H_

#include <string>

#include "common/result.h"
#include "tuple/tuple.h"

namespace quick::ck {

/// CloudKit logical database kinds (§4): every user of an app gets a
/// private database; each app has one shared public database; ClusterDB is
/// the QuiCK-specific kind pinned to a FoundationDB cluster (§6).
enum class DatabaseKind : int64_t {
  kPrivate = 0,
  kPublic = 1,
  kCluster = 2,
};

/// Identity of one logical database — CloudKit's tenancy unit. Sharding,
/// fairness, observability, and migration all key off this.
struct DatabaseId {
  std::string app;
  /// User identifier for kPrivate; empty for kPublic; the pinned cluster
  /// name for kCluster.
  std::string user;
  DatabaseKind kind = DatabaseKind::kPrivate;

  static DatabaseId Private(std::string app, std::string user) {
    return {std::move(app), std::move(user), DatabaseKind::kPrivate};
  }
  static DatabaseId Public(std::string app) {
    return {std::move(app), "", DatabaseKind::kPublic};
  }
  /// The per-cluster system database holding the top-level queue Q_C.
  static DatabaseId Cluster(std::string cluster_name) {
    return {"_quick", std::move(cluster_name), DatabaseKind::kCluster};
  }

  tup::Tuple ToTuple() const {
    return tup::Tuple()
        .AddString(app)
        .AddString(user)
        .AddInt(static_cast<int64_t>(kind));
  }

  /// Canonical string form; used as the pointer-index key component.
  std::string ToKeyString() const {
    return app + "\x1f" + user + "\x1f" +
           std::to_string(static_cast<int64_t>(kind));
  }

  static Result<DatabaseId> FromKeyString(std::string_view s);

  std::string ToString() const {
    switch (kind) {
      case DatabaseKind::kPrivate:
        return app + "/private/" + user;
      case DatabaseKind::kPublic:
        return app + "/public";
      case DatabaseKind::kCluster:
        return app + "/cluster/" + user;
    }
    return app + "/?";
  }

  bool operator==(const DatabaseId&) const = default;
  auto operator<=>(const DatabaseId&) const = default;
};

}  // namespace quick::ck

#endif  // QUICK_CLOUDKIT_DATABASE_ID_H_
