#ifndef QUICK_CLOUDKIT_QUEUE_ZONE_H_
#define QUICK_CLOUDKIT_QUEUE_ZONE_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cloudkit/queued_item.h"
#include "common/clock.h"
#include "fdb/transaction.h"
#include "reclayer/record_store.h"
#include "tuple/subspace.h"

namespace quick::ck {

/// Job-type name used for QuiCK's top-level-queue pointers.
inline constexpr const char* kPointerJobType = "__pointer";

/// A CloudKit zone designated as a queue (§5): queued items ordered by
/// (priority, vesting time) through a Record Layer value index, an atomic
/// count index for observability, and a value index on db_key — the
/// pointer index QuiCK's enqueue protocol reads (§6).
///
/// Like a RecordStore, a QueueZone is opened per transaction: every method
/// buffers into the supplied transaction and takes effect when the caller
/// commits. Multiple operations in one transaction are atomic — e.g.
/// enqueue a batch, or dequeue + process side effects + complete.
class QueueZone {
 public:
  /// Index/metadata names.
  static constexpr const char* kVestingIndex = "vesting";
  static constexpr const char* kDbKeyIndex = "by_db_key";
  static constexpr const char* kCountIndex = "cnt";
  static constexpr const char* kArrivalIndex = "arrival";
  /// Dead-letter store: child-subspace tag and index names.
  static constexpr const char* kDeadLetterTag = "dl";
  static constexpr const char* kDeadLetterCountIndex = "dl_cnt";
  static constexpr const char* kQuarantineTimeIndex = "by_qtime";

  /// The shared schema of every queue zone.
  static const rl::RecordMetadata& Metadata();

  /// Schema of the per-zone dead-letter quarantine (see Quarantine()).
  static const rl::RecordMetadata& DeadLetterMetadata();

  /// Schema for FIFO-ordered queue zones: adds a sticky version index that
  /// stamps each item with its enqueue commit version — the §5 future-work
  /// ordering ("we can leverage FoundationDB's commit timestamps to order
  /// queued items, rather than relying on local server clocks").
  static const rl::RecordMetadata& FifoMetadata();

  /// `fifo` selects the FIFO schema; a zone must be opened with the same
  /// choice for its whole lifetime.
  QueueZone(fdb::Transaction* txn, tup::Subspace zone_subspace, Clock* clock,
            bool fifo = false);

  /// §5 enqueue: stores the item with vesting time = now + delay. A random
  /// id is generated unless item.id is set (idempotent enqueue). Returns
  /// the item id.
  Result<std::string> Enqueue(QueuedItem item, int64_t vesting_delay_millis);

  /// §5 peek: up to max_items vested items in (priority, vesting) order
  /// that satisfy `predicate` (when given). Does not lease. The index scan
  /// is snapshot (never aborts writers); record loads are snapshot too
  /// since peek makes no decision a conflict must protect.
  Result<std::vector<QueuedItem>> Peek(
      int max_items,
      const std::function<bool(const QueuedItem&)>& predicate = nullptr);

  /// Scanner fast path (§6 optimization): ids of vested items straight from
  /// the vesting index without touching the records. Also returns the ids'
  /// priorities' order implicitly (index order).
  Result<std::vector<std::string>> PeekIds(int max_items);

  /// FIFO-zone peek: vested items in strict enqueue-commit order (ignores
  /// priority). Requires the FIFO schema. Fully snapshot, like Peek.
  Result<std::vector<QueuedItem>> PeekFifo(int max_items);

  /// Transactional FIFO peek+lease.
  Result<std::vector<LeasedItem>> DequeueFifo(int max_items,
                                              int64_t lease_duration_millis);

  /// The 10-byte enqueue-commit stamp of an item in a FIFO zone (its
  /// position in the strict order); nullopt for unknown items.
  Result<std::optional<std::string>> ArrivalStamp(const std::string& item_id);

  /// §5 obtain lease: leases the item for `lease_duration_millis` by
  /// advancing its vesting time; returns the generated lease id. Fails with
  /// kLeaseLost when the item is not vested (someone else holds a live
  /// lease or the item is delayed) and kNotFound when it does not exist.
  Result<std::string> ObtainLease(const std::string& item_id,
                                  int64_t lease_duration_millis);

  /// §5 complete: deletes the item. With a lease id, succeeds only while
  /// that lease is still the item's current one (kLeaseLost otherwise);
  /// without one it cancels unconditionally.
  Status Complete(const std::string& item_id,
                  const std::optional<std::string>& lease_id = std::nullopt);

  /// §5 extend lease: pushes the vesting time out again. Succeeds while the
  /// caller's lease id is still current — including after expiry, provided
  /// no other consumer has re-leased the item.
  Status ExtendLease(const std::string& item_id, const std::string& lease_id,
                     int64_t lease_duration_millis);

  /// §5 requeue: re-vests the item after `vesting_delay_millis`, optionally
  /// bumping the error count (retry bookkeeping), and releases any lease.
  /// With a lease id the requeue is fenced: it succeeds only while that
  /// lease is still the item's current one (kLeaseLost otherwise), so an
  /// expired-lease consumer cannot clear a lease another consumer took.
  Status Requeue(const std::string& item_id, int64_t vesting_delay_millis,
                 bool increment_error_count = true,
                 const std::optional<std::string>& lease_id = std::nullopt);

  /// Dead-letter quarantine: atomically (within the caller's transaction)
  /// removes the item from the queue and records it in the zone's
  /// dead-letter subspace with the final error, attempt count (the item's
  /// error count plus the final failing attempt), and quarantine time.
  /// With a lease id the transition is fenced like Complete: kLeaseLost
  /// when the lease was superseded, kNotFound when the item is gone —
  /// an expired-lease ("zombie") consumer can never quarantine an item
  /// another consumer has retaken. The dead-letter subspace is a sibling
  /// of the queue's record store, so IsEmpty()/Count() — and therefore
  /// pointer GC — ignore quarantined items, while the zone's keyspace
  /// prefix still covers them (they migrate with the tenant).
  Status Quarantine(const std::string& item_id,
                    const std::optional<std::string>& lease_id,
                    const std::string& reason, const std::string& final_error);

  /// Dead-lettered items in quarantine-time order (limit 0 = all).
  /// Snapshot reads: inspection never aborts producers or consumers.
  Result<std::vector<DeadLetterItem>> ListDeadLetters(int max_items = 0);

  /// Loads one dead-lettered item; nullopt when absent.
  Result<std::optional<DeadLetterItem>> LoadDeadLetter(
      const std::string& item_id);

  /// Removes and returns a dead-lettered item (kNotFound when absent) —
  /// the first half of an operator requeue; the caller re-enqueues the
  /// returned item in the same transaction.
  Result<DeadLetterItem> TakeDeadLetter(const std::string& item_id);

  /// Permanently discards a dead-lettered item (operator decision; the
  /// only deliberate data-loss path, and it is explicit).
  Status PurgeDeadLetter(const std::string& item_id);

  /// Number of quarantined items, from the dead-letter count index
  /// (snapshot read).
  Result<int64_t> DeadLetterCount();

  /// Every item in the zone regardless of vesting state — leased, delayed,
  /// and vested alike (limit 0 = all). Fully snapshot like Peek; the
  /// migration orchestrator uses it to audit lease drain before the fenced
  /// final copy, when the fence already guarantees quiescence.
  Result<std::vector<QueuedItem>> SnapshotAll(int max_items = 0);

  /// Transactional peek+lease of up to `max_items` vested items (§5
  /// dequeue, batched as QuiCK's Managers use it).
  Result<std::vector<LeasedItem>> Dequeue(int max_items,
                                          int64_t lease_duration_millis);

  /// Loads one item (strong read).
  Result<std::optional<QueuedItem>> Load(const std::string& item_id);

  /// Current queue length from the atomic count index (snapshot read; never
  /// conflicts — the per-tenant observability the paper highlights).
  Result<int64_t> Count();

  /// Earliest vesting time over all items including unvested ones, or
  /// nullopt when empty. Snapshot index read.
  Result<std::optional<int64_t>> MinVestingTime();

  /// Strong emptiness check: adds a read conflict over the zone's records
  /// so a concurrent enqueue aborts this transaction (pointer-GC safety,
  /// §6 "Correctness").
  Result<bool> IsEmpty();

  /// Exact key of the db_key-index entry for an item — the "pointer index"
  /// key QuiCK's enqueue reads (and declares write conflicts on, §6.1).
  std::string DbKeyIndexEntryKey(const std::string& db_key,
                                 const std::string& item_id) {
    return store_.ValueIndexEntryKey(
        kDbKeyIndex, tup::Tuple().AddString(db_key),
        tup::Tuple().AddString(QueuedItem::kRecordType).AddString(item_id));
  }

  /// Low-level save preserving every field as given (QuiCK's pointer
  /// maintenance: vesting/lease/last_active updates in one write).
  Status SaveItem(const QueuedItem& item) { return Save(item); }

  /// Direct record-store access (update-in-place of pointers).
  rl::RecordStore* store() { return &store_; }
  Clock* clock() const { return clock_; }

 private:
  Result<QueuedItem> LoadOrNotFound(const std::string& item_id);
  Status Save(const QueuedItem& item);

  fdb::Transaction* txn_;
  rl::RecordStore store_;
  /// Dead-letter quarantine, rooted at a child tag of the zone subspace —
  /// disjoint from the queue store's records/indexes, inside the zone's
  /// keyspace prefix.
  rl::RecordStore dl_store_;
  Clock* clock_;
};

}  // namespace quick::ck

#endif  // QUICK_CLOUDKIT_QUEUE_ZONE_H_
