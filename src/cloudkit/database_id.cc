#include "cloudkit/database_id.h"

namespace quick::ck {

Result<DatabaseId> DatabaseId::FromKeyString(std::string_view s) {
  const size_t first = s.find('\x1f');
  if (first == std::string_view::npos) {
    return Status::InvalidArgument("malformed database key");
  }
  const size_t second = s.find('\x1f', first + 1);
  if (second == std::string_view::npos) {
    return Status::InvalidArgument("malformed database key");
  }
  DatabaseId id;
  id.app = std::string(s.substr(0, first));
  id.user = std::string(s.substr(first + 1, second - first - 1));
  const std::string_view kind_str = s.substr(second + 1);
  if (kind_str.size() != 1 || kind_str[0] < '0' || kind_str[0] > '2') {
    return Status::InvalidArgument("bad database kind");
  }
  id.kind = static_cast<DatabaseKind>(kind_str[0] - '0');
  return id;
}

}  // namespace quick::ck
