#include "cloudkit/workflow_record.h"

#include "cloudkit/service.h"
#include "tuple/tuple.h"

namespace quick::ck {

namespace {
constexpr const char* kWorkflowTag = "_quick_wf";
}  // namespace

std::string WorkflowRecord::Encode() const {
  return tup::Tuple()
      .AddString(id)
      .AddString(saga)
      .AddInt(static_cast<int64_t>(state))
      .AddInt(current_step)
      .AddInt(total_steps)
      .AddString(step_status)
      .AddString(failure)
      .AddInt(created_millis)
      .AddInt(updated_millis)
      .Encode();
}

std::optional<WorkflowRecord> WorkflowRecord::Decode(std::string_view encoded) {
  Result<tup::Tuple> t = tup::Tuple::Decode(encoded);
  if (!t.ok() || t->size() != 9) return std::nullopt;
  WorkflowRecord r;
  auto id = t->GetString(0);
  auto saga = t->GetString(1);
  auto state = t->GetInt(2);
  auto current = t->GetInt(3);
  auto total = t->GetInt(4);
  auto statuses = t->GetString(5);
  auto failure = t->GetString(6);
  auto created = t->GetInt(7);
  auto updated = t->GetInt(8);
  if (!id.ok() || !saga.ok() || !state.ok() || !current.ok() || !total.ok() ||
      !statuses.ok() || !failure.ok() || !created.ok() || !updated.ok()) {
    return std::nullopt;
  }
  if (*state < 0 || *state > static_cast<int64_t>(State::kFailed)) {
    return std::nullopt;
  }
  r.id = *std::move(id);
  r.saga = *std::move(saga);
  r.state = static_cast<State>(*state);
  r.current_step = *current;
  r.total_steps = *total;
  r.step_status = *std::move(statuses);
  r.failure = *std::move(failure);
  r.created_millis = *created;
  r.updated_millis = *updated;
  return r;
}

std::string WorkflowRecord::Key(const DatabaseId& db_id,
                                const std::string& workflow_id) {
  return SubspaceFor(db_id).Pack(tup::Tuple().AddString(workflow_id));
}

tup::Subspace WorkflowRecord::SubspaceFor(const DatabaseId& db_id) {
  return CloudKitService::DatabaseSubspace(db_id).Sub(kWorkflowTag);
}

const char* WorkflowRecord::StateName(State state) {
  switch (state) {
    case State::kRunning:
      return "running";
    case State::kCompensating:
      return "compensating";
    case State::kCompleted:
      return "completed";
    case State::kCompensated:
      return "compensated";
    case State::kFailed:
      return "failed";
  }
  return "?";
}

}  // namespace quick::ck
