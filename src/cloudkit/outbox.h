#ifndef QUICK_CLOUDKIT_OUTBOX_H_
#define QUICK_CLOUDKIT_OUTBOX_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "tuple/subspace.h"

namespace quick::fdb {
class Transaction;
}  // namespace quick::fdb

namespace quick::ck {

/// One intended external side-effect, written by the consumer finish path in
/// the SAME FoundationDB transaction as the work item's Complete/Quarantine
/// (the transactional-outbox pattern). Rows are keyed by idempotency key, so
/// a handler re-executed after a lost lease overwrites its own row instead of
/// duplicating the effect.
struct OutboxEntry {
  std::string target;           // external destination (free-form)
  std::string idempotency_key;  // globally unique per intended effect
  std::string payload;
  std::string origin_item;  // work-item id whose finish recorded the effect
  int64_t created_millis = 0;

  std::string Encode() const;
  static std::optional<OutboxEntry> Decode(std::string_view encoded);
};

/// Static helpers over the per-cluster outbox subspace
/// (`ck/_quick/<cluster>/_quick_outbox`). All mutations run inside a caller-
/// provided transaction: Append rides the finish transaction, Ack rides the
/// relay's conflict-checked delete transaction.
class Outbox {
 public:
  static tup::Subspace SubspaceFor(const std::string& cluster_name);
  static std::string KeyFor(const std::string& cluster_name,
                            const std::string& idempotency_key);

  /// Records (or overwrites — same idempotency key, same intended effect)
  /// one row in `txn`.
  static Status Append(fdb::Transaction& txn, const std::string& cluster_name,
                       const OutboxEntry& entry);

  /// Oldest-first scan (keys are idempotency-key ordered; relays drain the
  /// whole prefix, so ordering is a detail). `limit` 0 means unlimited.
  static Result<std::vector<OutboxEntry>> List(fdb::Transaction& txn,
                                               const std::string& cluster_name,
                                               int limit = 0);

  /// Deletes the row after the relay applied the effect. Reads the key first
  /// so the delete conflicts with any concurrent re-append, and returns
  /// NotFound when another relay already acknowledged it.
  static Status Ack(fdb::Transaction& txn, const std::string& cluster_name,
                    const std::string& idempotency_key);

  /// Rows currently pending — the relay lag, in effects.
  static Result<int64_t> Count(fdb::Transaction& txn,
                               const std::string& cluster_name);
};

}  // namespace quick::ck

#endif  // QUICK_CLOUDKIT_OUTBOX_H_
