#ifndef QUICK_CLOUDKIT_MIGRATION_STATE_H_
#define QUICK_CLOUDKIT_MIGRATION_STATE_H_

#include <optional>
#include <string>
#include <string_view>

#include "cloudkit/database_id.h"
#include "tuple/subspace.h"

namespace quick::ck {

/// Durable state of an in-flight tenant move, persisted on the SOURCE
/// cluster under a key OUTSIDE the tenant's "ck"-prefixed database
/// subspace (so bulk copy/delete of the tenant never touches it).
///
/// The record doubles as the migration fence: once the move is sealed
/// (phase >= kSealed), every enqueue and every consumer dequeue for the
/// tenant performs a NON-snapshot read of this key inside its transaction
/// and backs off when the fence is up. Serializability then guarantees the
/// source zone is quiescent — any writer that raced the seal either saw
/// the fence or conflicted with the seal transaction's write and retried
/// into seeing it.
struct MoveState {
  enum Phase : int {
    kCopying = 1,  // bulk copy / catch-up rounds in progress; traffic flows
    kSealed = 2,   // fence up: source frozen, draining leases, final copy
    kFlipped = 3,  // placement points at dest; source data pending delete
  };

  int phase = kCopying;
  std::string dest_cluster;
  int catchup_rounds = 0;

  bool FencesEnqueues() const { return phase >= kSealed; }

  /// Fence key for `id` — same bytes on every cluster, but the record only
  /// ever exists on the move's source cluster.
  static std::string Key(const DatabaseId& id) {
    return tup::Subspace(tup::Tuple().AddString("ckmv")).Pack(id.ToTuple());
  }

  std::string Encode() const {
    return std::to_string(phase) + "|" + dest_cluster + "|" +
           std::to_string(catchup_rounds);
  }

  static std::optional<MoveState> Decode(std::string_view s) {
    const size_t p1 = s.find('|');
    if (p1 == std::string_view::npos) return std::nullopt;
    const size_t p2 = s.rfind('|');
    if (p2 == p1) return std::nullopt;
    MoveState out;
    out.phase = 0;
    for (char c : s.substr(0, p1)) {
      if (c < '0' || c > '9') return std::nullopt;
      out.phase = out.phase * 10 + (c - '0');
    }
    out.dest_cluster = std::string(s.substr(p1 + 1, p2 - p1 - 1));
    out.catchup_rounds = 0;
    for (char c : s.substr(p2 + 1)) {
      if (c < '0' || c > '9') return std::nullopt;
      out.catchup_rounds = out.catchup_rounds * 10 + (c - '0');
    }
    if (out.phase < kCopying || out.phase > kFlipped) return std::nullopt;
    return out;
  }
};

}  // namespace quick::ck

#endif  // QUICK_CLOUDKIT_MIGRATION_STATE_H_
