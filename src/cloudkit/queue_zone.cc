#include "cloudkit/queue_zone.h"

#include "common/metrics.h"
#include "common/random.h"

namespace quick::ck {

namespace {

/// Storage-layer operation counters (ck.zone.*). They count attempts at
/// this layer, including ones whose enclosing transaction later aborts —
/// the delta against the consumer-level counters is itself a useful
/// signal (retry amplification). Counter pointers are cached per call
/// site so the hot paths never touch the registry mutex.
Counter* ZoneCounter(const char* name) {
  return MetricsRegistry::Default()->GetCounter(name);
}

rl::RecordMetadata BuildMetadata(bool fifo) {
  rl::RecordMetadata meta(fifo ? 2 : 1);
  rl::RecordTypeDef item;
  item.name = QueuedItem::kRecordType;
  item.fields = {
      {"id", rl::FieldType::kString},
      {"job_type", rl::FieldType::kString},
      {"priority", rl::FieldType::kInt64},
      {"vesting_time", rl::FieldType::kInt64},
      {"lease_id", rl::FieldType::kString},
      {"error_count", rl::FieldType::kInt64},
      {"payload", rl::FieldType::kBytes},
      {"enqueue_time", rl::FieldType::kInt64},
      {"db_key", rl::FieldType::kString},
      {"last_active_time", rl::FieldType::kInt64},
  };
  item.primary_key_fields = {"id"};
  Status st = meta.AddRecordType(std::move(item));
  (void)st;

  rl::IndexDef vesting;
  vesting.name = QueueZone::kVestingIndex;
  vesting.kind = rl::IndexKind::kValue;
  vesting.record_types = {QueuedItem::kRecordType};
  vesting.fields = {"priority", "vesting_time"};
  st = meta.AddIndex(std::move(vesting));

  rl::IndexDef by_db_key;
  by_db_key.name = QueueZone::kDbKeyIndex;
  by_db_key.kind = rl::IndexKind::kValue;
  by_db_key.record_types = {QueuedItem::kRecordType};
  by_db_key.fields = {"db_key"};
  st = meta.AddIndex(std::move(by_db_key));

  rl::IndexDef count;
  count.name = QueueZone::kCountIndex;
  count.kind = rl::IndexKind::kCount;
  count.record_types = {QueuedItem::kRecordType};
  st = meta.AddIndex(std::move(count));

  if (fifo) {
    // Sticky version index: each item keeps the commit version of its
    // enqueue across lease/requeue updates, giving a strict arrival order
    // immune to clock skew (§5).
    rl::IndexDef arrival;
    arrival.name = QueueZone::kArrivalIndex;
    arrival.kind = rl::IndexKind::kVersion;
    arrival.sticky_version = true;
    arrival.record_types = {QueuedItem::kRecordType};
    st = meta.AddIndex(std::move(arrival));
  }
  return meta;
}

rl::RecordMetadata BuildDeadLetterMetadata() {
  rl::RecordMetadata meta(1);
  rl::RecordTypeDef item;
  item.name = DeadLetterItem::kRecordType;
  item.fields = {
      {"id", rl::FieldType::kString},
      {"job_type", rl::FieldType::kString},
      {"priority", rl::FieldType::kInt64},
      {"payload", rl::FieldType::kBytes},
      {"enqueue_time", rl::FieldType::kInt64},
      {"db_key", rl::FieldType::kString},
      {"attempts", rl::FieldType::kInt64},
      {"reason", rl::FieldType::kString},
      {"final_error", rl::FieldType::kString},
      {"quarantine_time", rl::FieldType::kInt64},
  };
  item.primary_key_fields = {"id"};
  Status st = meta.AddRecordType(std::move(item));
  (void)st;

  rl::IndexDef by_qtime;
  by_qtime.name = QueueZone::kQuarantineTimeIndex;
  by_qtime.kind = rl::IndexKind::kValue;
  by_qtime.record_types = {DeadLetterItem::kRecordType};
  by_qtime.fields = {"quarantine_time"};
  st = meta.AddIndex(std::move(by_qtime));

  rl::IndexDef count;
  count.name = QueueZone::kDeadLetterCountIndex;
  count.kind = rl::IndexKind::kCount;
  count.record_types = {DeadLetterItem::kRecordType};
  st = meta.AddIndex(std::move(count));
  return meta;
}

}  // namespace

const rl::RecordMetadata& QueueZone::Metadata() {
  static const rl::RecordMetadata* meta =
      new rl::RecordMetadata(BuildMetadata(false));
  return *meta;
}

const rl::RecordMetadata& QueueZone::FifoMetadata() {
  static const rl::RecordMetadata* meta =
      new rl::RecordMetadata(BuildMetadata(true));
  return *meta;
}

const rl::RecordMetadata& QueueZone::DeadLetterMetadata() {
  static const rl::RecordMetadata* meta =
      new rl::RecordMetadata(BuildDeadLetterMetadata());
  return *meta;
}

QueueZone::QueueZone(fdb::Transaction* txn, tup::Subspace zone_subspace,
                     Clock* clock, bool fifo)
    : txn_(txn),
      store_(txn, zone_subspace, fifo ? &FifoMetadata() : &Metadata()),
      dl_store_(txn, zone_subspace.Sub(kDeadLetterTag), &DeadLetterMetadata()),
      clock_(clock) {}

Result<std::string> QueueZone::Enqueue(QueuedItem item,
                                       int64_t vesting_delay_millis) {
  if (item.id.empty()) {
    item.id = Random::ThreadLocal().NextUuid();
  }
  const int64_t now = clock_->NowMillis();
  item.vesting_time = now + vesting_delay_millis;
  item.enqueue_time = now;
  item.lease_id.clear();
  QUICK_RETURN_IF_ERROR(Save(item));
  static Counter* counter = ZoneCounter("ck.zone.enqueues");
  counter->Increment();
  return item.id;
}

Result<QueuedItem> QueueZone::LoadOrNotFound(const std::string& item_id) {
  QUICK_ASSIGN_OR_RETURN(
      std::optional<rl::Record> rec,
      store_.LoadRecord(QueuedItem::kRecordType,
                        tup::Tuple().AddString(item_id)));
  if (!rec.has_value()) {
    return Status::NotFound("queued item " + item_id);
  }
  return QueuedItem::FromRecord(*rec);
}

Status QueueZone::Save(const QueuedItem& item) {
  return store_.SaveRecord(item.ToRecord());
}

Result<std::vector<QueuedItem>> QueueZone::Peek(
    int max_items, const std::function<bool(const QueuedItem&)>& predicate) {
  const int64_t now = clock_->NowMillis();
  rl::IndexScanOptions options;
  options.snapshot = true;
  QUICK_ASSIGN_OR_RETURN(
      std::vector<rl::IndexEntry> entries,
      store_.ScanIndex(kVestingIndex, tup::Tuple(), options));
  std::vector<QueuedItem> out;
  for (const rl::IndexEntry& entry : entries) {
    QUICK_ASSIGN_OR_RETURN(int64_t vesting, entry.indexed_values.GetInt(1));
    if (vesting > now) continue;  // not vested (or leased into the future)
    QUICK_ASSIGN_OR_RETURN(std::string id, entry.primary_key.GetString(1));
    // Snapshot load: peek makes no decision a conflict must protect, and a
    // dequeue that acts on the item conflicts via SaveRecord's
    // previous-image read — so peeking never feeds the resolver.
    QUICK_ASSIGN_OR_RETURN(
        std::optional<rl::Record> rec,
        store_.LoadRecord(QueuedItem::kRecordType,
                          tup::Tuple().AddString(id), /*snapshot=*/true));
    if (!rec.has_value()) continue;  // raced with a delete; snapshot scan
    QUICK_ASSIGN_OR_RETURN(QueuedItem item, QueuedItem::FromRecord(*rec));
    if (predicate && !predicate(item)) continue;
    out.push_back(std::move(item));
    if (max_items > 0 && static_cast<int>(out.size()) >= max_items) break;
  }
  return out;
}

Result<std::vector<QueuedItem>> QueueZone::SnapshotAll(int max_items) {
  rl::IndexScanOptions options;
  options.snapshot = true;
  QUICK_ASSIGN_OR_RETURN(
      std::vector<rl::IndexEntry> entries,
      store_.ScanIndex(kVestingIndex, tup::Tuple(), options));
  std::vector<QueuedItem> out;
  for (const rl::IndexEntry& entry : entries) {
    QUICK_ASSIGN_OR_RETURN(std::string id, entry.primary_key.GetString(1));
    QUICK_ASSIGN_OR_RETURN(
        std::optional<rl::Record> rec,
        store_.LoadRecord(QueuedItem::kRecordType,
                          tup::Tuple().AddString(id), /*snapshot=*/true));
    if (!rec.has_value()) continue;  // raced with a delete; snapshot scan
    QUICK_ASSIGN_OR_RETURN(QueuedItem item, QueuedItem::FromRecord(*rec));
    out.push_back(std::move(item));
    if (max_items > 0 && static_cast<int>(out.size()) >= max_items) break;
  }
  return out;
}

Result<std::vector<std::string>> QueueZone::PeekIds(int max_items) {
  const int64_t now = clock_->NowMillis();
  rl::IndexScanOptions options;
  options.snapshot = true;
  QUICK_ASSIGN_OR_RETURN(
      std::vector<rl::IndexEntry> entries,
      store_.ScanIndex(kVestingIndex, tup::Tuple(), options));
  std::vector<std::string> ids;
  for (const rl::IndexEntry& entry : entries) {
    QUICK_ASSIGN_OR_RETURN(int64_t vesting, entry.indexed_values.GetInt(1));
    if (vesting > now) continue;
    QUICK_ASSIGN_OR_RETURN(std::string id, entry.primary_key.GetString(1));
    ids.push_back(std::move(id));
    if (max_items > 0 && static_cast<int>(ids.size()) >= max_items) break;
  }
  return ids;
}

Result<std::string> QueueZone::ObtainLease(const std::string& item_id,
                                           int64_t lease_duration_millis) {
  QUICK_ASSIGN_OR_RETURN(QueuedItem item, LoadOrNotFound(item_id));
  const int64_t now = clock_->NowMillis();
  if (item.vesting_time > now) {
    // Either delayed or under someone else's live lease — the cheap,
    // read-detected collision of Figure 7(a).
    static Counter* unvested = ZoneCounter("ck.zone.lease_unvested");
    unvested->Increment();
    return Status::LeaseLost("item not vested until " +
                             std::to_string(item.vesting_time));
  }
  item.lease_id = Random::ThreadLocal().NextUuid();
  item.vesting_time = now + lease_duration_millis;
  QUICK_RETURN_IF_ERROR(Save(item));
  static Counter* obtained = ZoneCounter("ck.zone.leases_obtained");
  obtained->Increment();
  return item.lease_id;
}

Status QueueZone::Complete(const std::string& item_id,
                           const std::optional<std::string>& lease_id) {
  QUICK_ASSIGN_OR_RETURN(QueuedItem item, LoadOrNotFound(item_id));
  if (lease_id.has_value() && item.lease_id != *lease_id) {
    return Status::LeaseLost("lease superseded on " + item_id);
  }
  QUICK_ASSIGN_OR_RETURN(
      bool deleted,
      store_.DeleteRecord(QueuedItem::kRecordType,
                          tup::Tuple().AddString(item_id)));
  if (!deleted) return Status::NotFound("queued item " + item_id);
  static Counter* counter = ZoneCounter("ck.zone.completes");
  counter->Increment();
  return Status::OK();
}

Status QueueZone::ExtendLease(const std::string& item_id,
                              const std::string& lease_id,
                              int64_t lease_duration_millis) {
  QUICK_ASSIGN_OR_RETURN(QueuedItem item, LoadOrNotFound(item_id));
  if (item.lease_id != lease_id) {
    return Status::LeaseLost("lease superseded on " + item_id);
  }
  item.vesting_time = clock_->NowMillis() + lease_duration_millis;
  return Save(item);
}

Status QueueZone::Requeue(const std::string& item_id,
                          int64_t vesting_delay_millis,
                          bool increment_error_count,
                          const std::optional<std::string>& lease_id) {
  QUICK_ASSIGN_OR_RETURN(QueuedItem item, LoadOrNotFound(item_id));
  if (lease_id.has_value() && item.lease_id != *lease_id) {
    return Status::LeaseLost("lease superseded on " + item_id);
  }
  item.vesting_time = clock_->NowMillis() + vesting_delay_millis;
  if (increment_error_count) ++item.error_count;
  item.lease_id.clear();
  QUICK_RETURN_IF_ERROR(Save(item));
  static Counter* counter = ZoneCounter("ck.zone.requeues");
  counter->Increment();
  return Status::OK();
}

Status QueueZone::Quarantine(const std::string& item_id,
                             const std::optional<std::string>& lease_id,
                             const std::string& reason,
                             const std::string& final_error) {
  QUICK_ASSIGN_OR_RETURN(QueuedItem item, LoadOrNotFound(item_id));
  if (lease_id.has_value() && item.lease_id != *lease_id) {
    return Status::LeaseLost("lease superseded on " + item_id);
  }
  QUICK_ASSIGN_OR_RETURN(
      bool deleted,
      store_.DeleteRecord(QueuedItem::kRecordType,
                          tup::Tuple().AddString(item_id)));
  if (!deleted) return Status::NotFound("queued item " + item_id);
  DeadLetterItem dl;
  dl.id = item.id;
  dl.job_type = item.job_type;
  dl.priority = item.priority;
  dl.payload = item.payload;
  dl.enqueue_time = item.enqueue_time;
  dl.db_key = item.db_key;
  dl.attempts = item.error_count + 1;
  dl.reason = reason;
  dl.final_error = final_error;
  dl.quarantine_time = clock_->NowMillis();
  QUICK_RETURN_IF_ERROR(dl_store_.SaveRecord(dl.ToRecord()));
  static Counter* counter = ZoneCounter("ck.zone.quarantines");
  counter->Increment();
  return Status::OK();
}

Result<std::vector<DeadLetterItem>> QueueZone::ListDeadLetters(int max_items) {
  rl::IndexScanOptions options;
  options.snapshot = true;
  QUICK_ASSIGN_OR_RETURN(
      std::vector<rl::IndexEntry> entries,
      dl_store_.ScanIndex(kQuarantineTimeIndex, tup::Tuple(), options));
  std::vector<DeadLetterItem> out;
  for (const rl::IndexEntry& entry : entries) {
    QUICK_ASSIGN_OR_RETURN(std::string id, entry.primary_key.GetString(1));
    QUICK_ASSIGN_OR_RETURN(
        std::optional<rl::Record> rec,
        dl_store_.LoadRecord(DeadLetterItem::kRecordType,
                             tup::Tuple().AddString(id), /*snapshot=*/true));
    if (!rec.has_value()) continue;  // raced with a purge; snapshot scan
    QUICK_ASSIGN_OR_RETURN(DeadLetterItem item,
                           DeadLetterItem::FromRecord(*rec));
    out.push_back(std::move(item));
    if (max_items > 0 && static_cast<int>(out.size()) >= max_items) break;
  }
  return out;
}

Result<std::optional<DeadLetterItem>> QueueZone::LoadDeadLetter(
    const std::string& item_id) {
  QUICK_ASSIGN_OR_RETURN(
      std::optional<rl::Record> rec,
      dl_store_.LoadRecord(DeadLetterItem::kRecordType,
                           tup::Tuple().AddString(item_id)));
  if (!rec.has_value()) return std::optional<DeadLetterItem>(std::nullopt);
  QUICK_ASSIGN_OR_RETURN(DeadLetterItem item,
                         DeadLetterItem::FromRecord(*rec));
  return std::optional<DeadLetterItem>(std::move(item));
}

Result<DeadLetterItem> QueueZone::TakeDeadLetter(const std::string& item_id) {
  QUICK_ASSIGN_OR_RETURN(std::optional<DeadLetterItem> item,
                         LoadDeadLetter(item_id));
  if (!item.has_value()) {
    return Status::NotFound("dead-lettered item " + item_id);
  }
  QUICK_ASSIGN_OR_RETURN(
      bool deleted,
      dl_store_.DeleteRecord(DeadLetterItem::kRecordType,
                             tup::Tuple().AddString(item_id)));
  if (!deleted) return Status::NotFound("dead-lettered item " + item_id);
  return *std::move(item);
}

Status QueueZone::PurgeDeadLetter(const std::string& item_id) {
  QUICK_ASSIGN_OR_RETURN(
      bool deleted,
      dl_store_.DeleteRecord(DeadLetterItem::kRecordType,
                             tup::Tuple().AddString(item_id)));
  return deleted ? Status::OK()
                 : Status::NotFound("dead-lettered item " + item_id);
}

Result<int64_t> QueueZone::DeadLetterCount() {
  return dl_store_.GetCount(kDeadLetterCountIndex, tup::Tuple(),
                            /*snapshot=*/true);
}

Result<std::vector<LeasedItem>> QueueZone::Dequeue(
    int max_items, int64_t lease_duration_millis) {
  QUICK_ASSIGN_OR_RETURN(std::vector<QueuedItem> items, Peek(max_items));
  const int64_t now = clock_->NowMillis();
  std::vector<LeasedItem> out;
  out.reserve(items.size());
  for (QueuedItem& item : items) {
    item.lease_id = Random::ThreadLocal().NextUuid();
    item.vesting_time = now + lease_duration_millis;
    QUICK_RETURN_IF_ERROR(Save(item));
    out.push_back({item, item.lease_id});
  }
  static Counter* counter = ZoneCounter("ck.zone.dequeued_items");
  counter->Increment(static_cast<int64_t>(out.size()));
  return out;
}

Result<std::optional<QueuedItem>> QueueZone::Load(const std::string& item_id) {
  QUICK_ASSIGN_OR_RETURN(
      std::optional<rl::Record> rec,
      store_.LoadRecord(QueuedItem::kRecordType,
                        tup::Tuple().AddString(item_id)));
  if (!rec.has_value()) return std::optional<QueuedItem>(std::nullopt);
  QUICK_ASSIGN_OR_RETURN(QueuedItem item, QueuedItem::FromRecord(*rec));
  return std::optional<QueuedItem>(std::move(item));
}

Result<int64_t> QueueZone::Count() {
  return store_.GetCount(kCountIndex, tup::Tuple(), /*snapshot=*/true);
}

Result<std::optional<int64_t>> QueueZone::MinVestingTime() {
  // The index orders by (priority, vesting), so the minimum vesting time
  // across priorities requires inspecting every priority group; queue
  // zones are small (they hold one tenant's pending work), so a full
  // snapshot scan of the index is fine.
  rl::IndexScanOptions options;
  options.snapshot = true;
  QUICK_ASSIGN_OR_RETURN(
      std::vector<rl::IndexEntry> entries,
      store_.ScanIndex(kVestingIndex, tup::Tuple(), options));
  std::optional<int64_t> min_vesting;
  for (const rl::IndexEntry& entry : entries) {
    QUICK_ASSIGN_OR_RETURN(int64_t vesting, entry.indexed_values.GetInt(1));
    if (!min_vesting.has_value() || vesting < *min_vesting) {
      min_vesting = vesting;
    }
  }
  return min_vesting;
}

Result<bool> QueueZone::IsEmpty() { return store_.IsEmpty(); }

Result<std::vector<QueuedItem>> QueueZone::PeekFifo(int max_items) {
  const int64_t now = clock_->NowMillis();
  rl::IndexScanOptions options;
  options.snapshot = true;
  QUICK_ASSIGN_OR_RETURN(std::vector<rl::VersionIndexEntry> entries,
                         store_.ScanVersionIndex(kArrivalIndex,
                                                 std::nullopt, options));
  std::vector<QueuedItem> out;
  for (const rl::VersionIndexEntry& entry : entries) {
    QUICK_ASSIGN_OR_RETURN(std::string id, entry.primary_key.GetString(1));
    // Snapshot load, as in Peek: leasing paths conflict via SaveRecord.
    QUICK_ASSIGN_OR_RETURN(
        std::optional<rl::Record> rec,
        store_.LoadRecord(QueuedItem::kRecordType,
                          tup::Tuple().AddString(id), /*snapshot=*/true));
    if (!rec.has_value()) continue;
    QUICK_ASSIGN_OR_RETURN(QueuedItem item, QueuedItem::FromRecord(*rec));
    if (item.vesting_time > now) continue;  // leased or delayed
    out.push_back(std::move(item));
    if (max_items > 0 && static_cast<int>(out.size()) >= max_items) break;
  }
  return out;
}

Result<std::vector<LeasedItem>> QueueZone::DequeueFifo(
    int max_items, int64_t lease_duration_millis) {
  QUICK_ASSIGN_OR_RETURN(std::vector<QueuedItem> items, PeekFifo(max_items));
  const int64_t now = clock_->NowMillis();
  std::vector<LeasedItem> out;
  out.reserve(items.size());
  for (QueuedItem& item : items) {
    item.lease_id = Random::ThreadLocal().NextUuid();
    item.vesting_time = now + lease_duration_millis;
    QUICK_RETURN_IF_ERROR(Save(item));
    out.push_back({item, item.lease_id});
  }
  static Counter* counter = ZoneCounter("ck.zone.dequeued_items");
  counter->Increment(static_cast<int64_t>(out.size()));
  return out;
}

Result<std::optional<std::string>> QueueZone::ArrivalStamp(
    const std::string& item_id) {
  return store_.GetRecordVersion(
      kArrivalIndex, QueuedItem::kRecordType,
      tup::Tuple().AddString(item_id));
}

}  // namespace quick::ck
