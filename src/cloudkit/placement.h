#ifndef QUICK_CLOUDKIT_PLACEMENT_H_
#define QUICK_CLOUDKIT_PLACEMENT_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cloudkit/database_id.h"

namespace quick::ck {

/// Directory mapping logical databases to FoundationDB clusters. CloudKit
/// assigns each logical database to one cluster and rebalances by moving
/// databases (§1); this in-process directory models that metadata service.
/// ClusterDBs are always pinned to their own cluster.
class PlacementDirectory {
 public:
  explicit PlacementDirectory(std::vector<std::string> cluster_names)
      : cluster_names_(std::move(cluster_names)) {}

  /// Cluster for `id`, assigning one (hash placement) on first sight.
  std::string AssignOrGet(const DatabaseId& id);

  /// Cluster for `id` if already assigned.
  std::optional<std::string> Get(const DatabaseId& id) const;

  /// Re-pins a database (tenant migration). The caller is responsible for
  /// moving the data first.
  void Set(const DatabaseId& id, const std::string& cluster);

  const std::vector<std::string>& cluster_names() const {
    return cluster_names_;
  }

  /// Number of explicit assignments (diagnostics).
  size_t AssignmentCount() const;

 private:
  std::vector<std::string> cluster_names_;
  mutable std::mutex mu_;
  std::map<DatabaseId, std::string> assignments_;
};

}  // namespace quick::ck

#endif  // QUICK_CLOUDKIT_PLACEMENT_H_
