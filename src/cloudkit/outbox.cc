#include "cloudkit/outbox.h"

#include "cloudkit/database_id.h"
#include "cloudkit/service.h"
#include "fdb/transaction.h"
#include "tuple/tuple.h"

namespace quick::ck {

namespace {
constexpr const char* kOutboxTag = "_quick_outbox";
}  // namespace

std::string OutboxEntry::Encode() const {
  return tup::Tuple()
      .AddString(target)
      .AddString(idempotency_key)
      .AddString(payload)
      .AddString(origin_item)
      .AddInt(created_millis)
      .Encode();
}

std::optional<OutboxEntry> OutboxEntry::Decode(std::string_view encoded) {
  Result<tup::Tuple> t = tup::Tuple::Decode(encoded);
  if (!t.ok() || t->size() != 5) return std::nullopt;
  auto target = t->GetString(0);
  auto key = t->GetString(1);
  auto payload = t->GetString(2);
  auto origin = t->GetString(3);
  auto created = t->GetInt(4);
  if (!target.ok() || !key.ok() || !payload.ok() || !origin.ok() ||
      !created.ok()) {
    return std::nullopt;
  }
  OutboxEntry e;
  e.target = *std::move(target);
  e.idempotency_key = *std::move(key);
  e.payload = *std::move(payload);
  e.origin_item = *std::move(origin);
  e.created_millis = *created;
  return e;
}

tup::Subspace Outbox::SubspaceFor(const std::string& cluster_name) {
  return CloudKitService::DatabaseSubspace(DatabaseId::Cluster(cluster_name))
      .Sub(kOutboxTag);
}

std::string Outbox::KeyFor(const std::string& cluster_name,
                           const std::string& idempotency_key) {
  return SubspaceFor(cluster_name)
      .Pack(tup::Tuple().AddString(idempotency_key));
}

Status Outbox::Append(fdb::Transaction& txn, const std::string& cluster_name,
                      const OutboxEntry& entry) {
  if (entry.idempotency_key.empty()) {
    return Status::InvalidArgument("outbox effect needs an idempotency key");
  }
  txn.Set(KeyFor(cluster_name, entry.idempotency_key), entry.Encode());
  return Status::OK();
}

Result<std::vector<OutboxEntry>> Outbox::List(fdb::Transaction& txn,
                                              const std::string& cluster_name,
                                              int limit) {
  fdb::RangeOptions opts;
  opts.limit = limit;
  QUICK_ASSIGN_OR_RETURN(
      std::vector<fdb::KeyValue> rows,
      txn.GetRange(SubspaceFor(cluster_name).Range(), opts));
  std::vector<OutboxEntry> entries;
  entries.reserve(rows.size());
  for (const fdb::KeyValue& kv : rows) {
    std::optional<OutboxEntry> e = OutboxEntry::Decode(kv.value);
    if (!e.has_value()) {
      return Status::Internal("corrupt outbox row at " + kv.key);
    }
    entries.push_back(*std::move(e));
  }
  return entries;
}

Status Outbox::Ack(fdb::Transaction& txn, const std::string& cluster_name,
                   const std::string& idempotency_key) {
  const std::string key = KeyFor(cluster_name, idempotency_key);
  // The read makes the delete conflict-checked: if a finish transaction
  // re-appends the row concurrently, one of the two aborts and the effect
  // is either re-relayed or kept pending — never silently dropped.
  QUICK_ASSIGN_OR_RETURN(std::optional<std::string> row, txn.Get(key));
  if (!row.has_value()) {
    return Status::NotFound("outbox row already acknowledged");
  }
  txn.Clear(key);
  return Status::OK();
}

Result<int64_t> Outbox::Count(fdb::Transaction& txn,
                              const std::string& cluster_name) {
  QUICK_ASSIGN_OR_RETURN(std::vector<fdb::KeyValue> rows,
                         txn.GetRange(SubspaceFor(cluster_name).Range()));
  return static_cast<int64_t>(rows.size());
}

}  // namespace quick::ck
