#include "cloudkit/queued_item.h"

namespace quick::ck {

rl::Record QueuedItem::ToRecord() const {
  rl::Record rec(kRecordType);
  rec.SetString("id", id)
      .SetString("job_type", job_type)
      .SetInt("priority", priority)
      .SetInt("vesting_time", vesting_time)
      .SetString("lease_id", lease_id)
      .SetInt("error_count", error_count)
      .SetBytes("payload", payload)
      .SetInt("enqueue_time", enqueue_time)
      .SetString("db_key", db_key)
      .SetInt("last_active_time", last_active_time);
  return rec;
}

Result<QueuedItem> QueuedItem::FromRecord(const rl::Record& record) {
  if (record.type() != kRecordType) {
    return Status::InvalidArgument("record is not a QueuedItem");
  }
  QueuedItem item;
  QUICK_ASSIGN_OR_RETURN(item.id, record.GetString("id"));
  QUICK_ASSIGN_OR_RETURN(item.job_type, record.GetString("job_type"));
  QUICK_ASSIGN_OR_RETURN(item.priority, record.GetInt("priority"));
  QUICK_ASSIGN_OR_RETURN(item.vesting_time, record.GetInt("vesting_time"));
  QUICK_ASSIGN_OR_RETURN(item.lease_id, record.GetString("lease_id"));
  QUICK_ASSIGN_OR_RETURN(item.error_count, record.GetInt("error_count"));
  QUICK_ASSIGN_OR_RETURN(item.payload, record.GetBytes("payload"));
  QUICK_ASSIGN_OR_RETURN(item.enqueue_time, record.GetInt("enqueue_time"));
  QUICK_ASSIGN_OR_RETURN(item.db_key, record.GetString("db_key"));
  QUICK_ASSIGN_OR_RETURN(item.last_active_time,
                         record.GetInt("last_active_time"));
  return item;
}

rl::Record DeadLetterItem::ToRecord() const {
  rl::Record rec(kRecordType);
  rec.SetString("id", id)
      .SetString("job_type", job_type)
      .SetInt("priority", priority)
      .SetBytes("payload", payload)
      .SetInt("enqueue_time", enqueue_time)
      .SetString("db_key", db_key)
      .SetInt("attempts", attempts)
      .SetString("reason", reason)
      .SetString("final_error", final_error)
      .SetInt("quarantine_time", quarantine_time);
  return rec;
}

Result<DeadLetterItem> DeadLetterItem::FromRecord(const rl::Record& record) {
  if (record.type() != kRecordType) {
    return Status::InvalidArgument("record is not a DeadLetterItem");
  }
  DeadLetterItem item;
  QUICK_ASSIGN_OR_RETURN(item.id, record.GetString("id"));
  QUICK_ASSIGN_OR_RETURN(item.job_type, record.GetString("job_type"));
  QUICK_ASSIGN_OR_RETURN(item.priority, record.GetInt("priority"));
  QUICK_ASSIGN_OR_RETURN(item.payload, record.GetBytes("payload"));
  QUICK_ASSIGN_OR_RETURN(item.enqueue_time, record.GetInt("enqueue_time"));
  QUICK_ASSIGN_OR_RETURN(item.db_key, record.GetString("db_key"));
  QUICK_ASSIGN_OR_RETURN(item.attempts, record.GetInt("attempts"));
  QUICK_ASSIGN_OR_RETURN(item.reason, record.GetString("reason"));
  QUICK_ASSIGN_OR_RETURN(item.final_error, record.GetString("final_error"));
  QUICK_ASSIGN_OR_RETURN(item.quarantine_time,
                         record.GetInt("quarantine_time"));
  return item;
}

}  // namespace quick::ck
