#ifndef QUICK_CLOUDKIT_SERVICE_H_
#define QUICK_CLOUDKIT_SERVICE_H_

#include <string>
#include <vector>

#include "cloudkit/database_id.h"
#include "cloudkit/placement.h"
#include "cloudkit/queue_zone.h"
#include "common/clock.h"
#include "fdb/cluster_set.h"

namespace quick::ck {

/// A logical database resolved to its physical location: the cluster that
/// stores it and its keyspace prefix there.
struct DatabaseRef {
  DatabaseId id;
  fdb::Database* cluster = nullptr;
  tup::Subspace subspace;

  /// Subspace of a zone within this database.
  tup::Subspace ZoneSubspace(const std::string& zone_name) const {
    return subspace.Sub("z").Sub(zone_name);
  }
};

/// The CloudKit storage service over a fleet of FoundationDB clusters:
/// resolves logical databases to clusters (assigning placement on first
/// use), scopes zones within them, opens queue zones, and provides the
/// data-movement primitives tenant migration is built from (§4–§6).
///
/// Transactions are created against a DatabaseRef's cluster and may touch
/// any number of logical databases on that cluster — the cross-database
/// transactional enqueue the paper added to CloudKit ("arbitrary
/// transactions across multiple keys in the same FoundationDB cluster").
class CloudKitService {
 public:
  CloudKitService(fdb::ClusterSet* clusters, Clock* clock)
      : clusters_(clusters),
        clock_(clock),
        placement_(clusters->names()) {}

  /// Resolves `id`, assigning it to a cluster on first use.
  DatabaseRef OpenDatabase(const DatabaseId& id);

  /// The per-cluster ClusterDB (always pinned to `cluster_name`).
  DatabaseRef OpenClusterDb(const std::string& cluster_name) {
    return OpenDatabase(DatabaseId::Cluster(cluster_name));
  }

  /// Opens a queue zone of `db` inside an existing transaction on the
  /// database's cluster. `fifo` selects the FIFO schema and must match the
  /// zone's designation for its whole lifetime (ZoneCatalog enforces this
  /// for catalogued zones).
  QueueZone OpenQueueZone(const DatabaseRef& db, const std::string& zone_name,
                          fdb::Transaction* txn, bool fifo = false) {
    return QueueZone(txn, db.ZoneSubspace(zone_name), clock_, fifo);
  }

  /// Copies every key of `id`'s database to `dest_cluster` (same keyspace
  /// prefix), in batches of its own transactions. First phase of a tenant
  /// move; the source stays readable.
  Status CopyDatabaseData(const DatabaseId& id,
                          const std::string& dest_cluster);

  /// Deletes every key of `id`'s database on `cluster_name`.
  Status DeleteDatabaseData(const DatabaseId& id,
                            const std::string& cluster_name);

  /// Re-points the placement directory at `dest_cluster` (metadata flip of
  /// a tenant move). Guarded: when the source still has queue items (live
  /// or dead-lettered) in `queue_zone_name`, the flip is refused unless a
  /// sealed MoveState fence is up on the source — i.e. the caller is the
  /// migration orchestrator, which has frozen the source and will carry
  /// the items over. A bare flip with queued work would strand (and later
  /// delete) that work on the source.
  Status CommitMove(const DatabaseId& id, const std::string& dest_cluster,
                    const std::string& queue_zone_name = "_queue");

  PlacementDirectory* placement() { return &placement_; }
  fdb::ClusterSet* clusters() { return clusters_; }
  Clock* clock() const { return clock_; }

  /// Keyspace prefix of a logical database (identical on every cluster, so
  /// moves are prefix-preserving copies).
  static tup::Subspace DatabaseSubspace(const DatabaseId& id) {
    return tup::Subspace(tup::Tuple().AddString("ck")).Sub(id.ToTuple());
  }

 private:
  fdb::ClusterSet* clusters_;
  Clock* clock_;
  PlacementDirectory placement_;
};

}  // namespace quick::ck

#endif  // QUICK_CLOUDKIT_SERVICE_H_
