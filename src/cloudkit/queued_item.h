#ifndef QUICK_CLOUDKIT_QUEUED_ITEM_H_
#define QUICK_CLOUDKIT_QUEUED_ITEM_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "reclayer/record.h"

namespace quick::ck {

/// Metadata CloudKit queue zones keep for every enqueued record (§5):
/// priority (lower = higher), lease identifier, vesting time, and error
/// count — plus the fields QuiCK adds for pointers (db_key,
/// last_active_time) and observability (job_type, enqueue_time).
struct QueuedItem {
  /// Record id; randomly generated at enqueue unless the client supplies
  /// one for idempotency.
  std::string id;
  /// Work-item type; selects the handler and retry policy. QuiCK's
  /// top-level-queue pointers use kPointerJobType.
  std::string job_type;
  int64_t priority = 0;
  /// Wall-clock millis at which the item becomes visible to consumers.
  /// Leases advance it by the lease duration (fault-tolerant leasing, §5).
  int64_t vesting_time = 0;
  /// Empty when unleased; otherwise the random UUID the lease holder must
  /// present to complete/extend.
  std::string lease_id;
  int64_t error_count = 0;
  /// Opaque application payload (any CloudKit record, serialized).
  std::string payload;
  int64_t enqueue_time = 0;
  /// For pointer items: the canonical key of the logical database whose
  /// queue zone this pointer references (indexed — the pointer index, §6).
  std::string db_key;
  /// For pointer items: the last time work items were observed in the
  /// referenced queue zone (drives pointer GC grace, §6).
  int64_t last_active_time = 0;

  /// Record-type name queue zones use.
  static constexpr const char* kRecordType = "QueuedItem";

  rl::Record ToRecord() const;
  static Result<QueuedItem> FromRecord(const rl::Record& record);

  bool leased() const { return !lease_id.empty(); }
};

/// An item a consumer holds a lease on.
struct LeasedItem {
  QueuedItem item;
  std::string lease_id;
};

/// A terminally-failed item moved into a zone's dead-letter quarantine
/// instead of being deleted (§2: "a corrupt task should not block the
/// whole system" — without silently losing it). Preserves everything an
/// operator needs to diagnose and requeue the original item.
struct DeadLetterItem {
  /// The original item's id (primary key here too, so requeue restores the
  /// item under its idempotency id).
  std::string id;
  std::string job_type;
  int64_t priority = 0;
  std::string payload;
  /// Original enqueue time of the failed item.
  int64_t enqueue_time = 0;
  /// Preserved for quarantined pointer items.
  std::string db_key;
  /// Total attempts made, including the final failing one.
  int64_t attempts = 0;
  /// Why the item was quarantined: "permanent", "exhausted",
  /// "unknown_job_type", or "corrupt_pointer".
  std::string reason;
  /// Message of the final error.
  std::string final_error;
  /// Wall-clock millis at which the item was quarantined.
  int64_t quarantine_time = 0;

  static constexpr const char* kRecordType = "DeadLetterItem";

  rl::Record ToRecord() const;
  static Result<DeadLetterItem> FromRecord(const rl::Record& record);
};

}  // namespace quick::ck

#endif  // QUICK_CLOUDKIT_QUEUED_ITEM_H_
