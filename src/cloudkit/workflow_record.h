#ifndef QUICK_CLOUDKIT_WORKFLOW_RECORD_H_
#define QUICK_CLOUDKIT_WORKFLOW_RECORD_H_

#include <optional>
#include <string>
#include <string_view>

#include "cloudkit/database_id.h"
#include "tuple/subspace.h"

namespace quick::ck {

/// Durable state of one saga instance, stored in the tenant's `_quick_wf`
/// subspace — inside the database's keyspace prefix, so it migrates with
/// the tenant like its queue zone. The record is updated in the SAME
/// FoundationDB transaction as each step item's terminal transition
/// (complete or quarantine), which is what makes every state transition
/// exactly-once even though step handlers themselves run at-least-once.
///
/// `step_status` holds one char per forward step:
///   'P' pending  — not reached yet
///   'X' executed — the step's finish committed
///   'D' dead-lettered — the step failed terminally (its item is in the
///       zone's quarantine)
///   'C' compensated — the step's compensation finished after a later
///       (or its own) failure
/// The chaos suites assert the executed ⊎ dead-lettered ⊎ compensated
/// partition of these statuses stays exact under crashes and outages.
struct WorkflowRecord {
  enum class State : int64_t {
    kRunning = 0,       // forward chain in flight
    kCompensating = 1,  // a step dead-lettered; rollback chain in flight
    kCompleted = 2,     // every step executed
    kCompensated = 3,   // rollback finished (in reverse step order)
    kFailed = 4,        // a compensation itself failed terminally
  };

  std::string id;    // workflow instance id
  std::string saga;  // saga spec name (resolves the step functions)
  State state = State::kRunning;
  /// Next forward step to run (kRunning) or the compensation cursor —
  /// the step whose compensation runs next (kCompensating).
  int64_t current_step = 0;
  int64_t total_steps = 0;
  std::string step_status;  // one char per step, see above
  /// Message of the failure that triggered compensation / kFailed.
  std::string failure;
  int64_t created_millis = 0;
  int64_t updated_millis = 0;

  bool Terminal() const {
    return state == State::kCompleted || state == State::kCompensated ||
           state == State::kFailed;
  }

  /// Tuple-layer serialization (order-preserving encode is irrelevant here;
  /// the tuple codec is simply a robust length-prefixed format that round-
  /// trips arbitrary strings, unlike delimiter schemes).
  std::string Encode() const;
  static std::optional<WorkflowRecord> Decode(std::string_view encoded);

  /// Key of workflow `workflow_id` in `db_id`'s `_quick_wf` subspace.
  static std::string Key(const DatabaseId& db_id,
                         const std::string& workflow_id);

  /// The tenant's workflow subspace (admin scans).
  static tup::Subspace SubspaceFor(const DatabaseId& db_id);

  static const char* StateName(State state);
};

}  // namespace quick::ck

#endif  // QUICK_CLOUDKIT_WORKFLOW_RECORD_H_
