#include "cloudkit/placement.h"

#include <functional>

namespace quick::ck {

std::string PlacementDirectory::AssignOrGet(const DatabaseId& id) {
  // ClusterDBs are pinned to the cluster they name.
  if (id.kind == DatabaseKind::kCluster) return id.user;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = assignments_.find(id);
  if (it != assignments_.end()) return it->second;
  const size_t h = std::hash<std::string>{}(id.ToKeyString());
  const std::string& cluster = cluster_names_[h % cluster_names_.size()];
  assignments_.emplace(id, cluster);
  return cluster;
}

std::optional<std::string> PlacementDirectory::Get(const DatabaseId& id) const {
  if (id.kind == DatabaseKind::kCluster) return id.user;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = assignments_.find(id);
  if (it == assignments_.end()) return std::nullopt;
  return it->second;
}

void PlacementDirectory::Set(const DatabaseId& id, const std::string& cluster) {
  std::lock_guard<std::mutex> lock(mu_);
  assignments_[id] = cluster;
}

size_t PlacementDirectory::AssignmentCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return assignments_.size();
}

}  // namespace quick::ck
