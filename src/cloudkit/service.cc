#include "cloudkit/service.h"

#include "cloudkit/migration_state.h"
#include "fdb/retry.h"

namespace quick::ck {

DatabaseRef CloudKitService::OpenDatabase(const DatabaseId& id) {
  const std::string cluster_name = placement_.AssignOrGet(id);
  DatabaseRef ref;
  ref.id = id;
  ref.cluster = clusters_->Get(cluster_name);
  ref.subspace = DatabaseSubspace(id);
  return ref;
}

Status CloudKitService::CopyDatabaseData(const DatabaseId& id,
                                         const std::string& dest_cluster) {
  const std::optional<std::string> src_cluster = placement_.Get(id);
  if (!src_cluster.has_value()) {
    return Status::NotFound("database " + id.ToString() + " not placed");
  }
  fdb::Database* src = clusters_->Get(*src_cluster);
  fdb::Database* dst = clusters_->Get(dest_cluster);
  if (src == nullptr || dst == nullptr) {
    return Status::InvalidArgument("unknown cluster");
  }
  const KeyRange range = DatabaseSubspace(id).Range();

  // Batched copy: read a page from the source, write it to the
  // destination, resume after the last key. Each page is its own pair of
  // transactions, so arbitrarily large databases move without hitting
  // transaction limits.
  std::string cursor = range.begin;
  constexpr int kPageSize = 256;
  while (true) {
    std::vector<fdb::KeyValue> page;
    Status st = fdb::RunTransaction(src, [&](fdb::Transaction& txn) {
      fdb::RangeOptions opts;
      opts.limit = kPageSize;
      auto kvs = txn.GetRange(KeyRange{cursor, range.end}, opts,
                              /*snapshot=*/true);
      QUICK_RETURN_IF_ERROR(kvs.status());
      page = *std::move(kvs);
      return Status::OK();
    });
    QUICK_RETURN_IF_ERROR(st);
    if (page.empty()) break;
    st = fdb::RunTransaction(dst, [&](fdb::Transaction& txn) {
      for (const fdb::KeyValue& kv : page) {
        txn.Set(kv.key, kv.value);
      }
      return Status::OK();
    });
    QUICK_RETURN_IF_ERROR(st);
    cursor = KeyAfter(page.back().key);
    if (static_cast<int>(page.size()) < kPageSize) break;
  }
  return Status::OK();
}

Status CloudKitService::CommitMove(const DatabaseId& id,
                                   const std::string& dest_cluster,
                                   const std::string& queue_zone_name) {
  if (id.kind == DatabaseKind::kCluster) {
    return Status::InvalidArgument("cannot move a ClusterDB: " +
                                   id.ToString());
  }
  const std::optional<std::string> src_cluster = placement_.Get(id);
  if (!src_cluster.has_value()) {
    return Status::NotFound("database " + id.ToString() + " not placed");
  }
  if (*src_cluster == dest_cluster) return Status::OK();
  fdb::Database* src = clusters_->Get(*src_cluster);
  fdb::Database* dst = clusters_->Get(dest_cluster);
  if (src == nullptr || dst == nullptr) {
    return Status::InvalidArgument("unknown cluster");
  }
  Status st = fdb::RunTransaction(src, [&](fdb::Transaction& txn) {
    // A sealed migration fence on the source means an orchestrator has
    // frozen the tenant and owns carrying the queue contents across.
    auto fence = txn.Get(MoveState::Key(id));
    QUICK_RETURN_IF_ERROR(fence.status());
    if (fence->has_value()) {
      std::optional<MoveState> state = MoveState::Decode(**fence);
      if (state.has_value() && state->FencesEnqueues()) return Status::OK();
    }
    QueueZone zone(&txn, DatabaseSubspace(id).Sub("z").Sub(queue_zone_name),
                   clock_);
    QUICK_ASSIGN_OR_RETURN(int64_t count, zone.Count());
    QUICK_ASSIGN_OR_RETURN(int64_t dl_count, zone.DeadLetterCount());
    if (count > 0 || dl_count > 0) {
      return Status::FailedPrecondition(
          "refusing placement flip for " + id.ToString() + ": source has " +
          std::to_string(count) + " queued and " + std::to_string(dl_count) +
          " dead-lettered item(s); move them through the orchestrator "
          "(QuickAdmin::MoveTenant) instead");
    }
    return Status::OK();
  });
  QUICK_RETURN_IF_ERROR(st);
  placement_.Set(id, dest_cluster);
  return Status::OK();
}

Status CloudKitService::DeleteDatabaseData(const DatabaseId& id,
                                           const std::string& cluster_name) {
  fdb::Database* db = clusters_->Get(cluster_name);
  if (db == nullptr) return Status::InvalidArgument("unknown cluster");
  const KeyRange range = DatabaseSubspace(id).Range();
  return fdb::RunTransaction(db, [&](fdb::Transaction& txn) {
    txn.ClearRange(range);
    return Status::OK();
  });
}

}  // namespace quick::ck
