#ifndef QUICK_CLOUDKIT_ZONE_CATALOG_H_
#define QUICK_CLOUDKIT_ZONE_CATALOG_H_

#include <string>
#include <utility>
#include <vector>

#include "cloudkit/queue_zone.h"
#include "cloudkit/service.h"

namespace quick::ck {

/// How a zone behaves; fixed at creation ("Designating a zone to act as a
/// queue is done upon its creation", §5).
enum class ZoneType : int64_t {
  /// Plain record zone (directory-like mix of record types, §4).
  kRegular = 0,
  /// Queue zone with the §5 API, (priority, vesting) ordering.
  kQueue = 1,
  /// Queue zone with the additional strict-FIFO (commit-order) view.
  kFifoQueue = 2,
};

/// Per-database registry of zones and their types, stored transactionally
/// with the database's data. Opening a queue zone through the catalog
/// guarantees the FIFO/non-FIFO schema choice made at creation is honoured
/// for the zone's whole lifetime.
class ZoneCatalog {
 public:
  /// Operates within `txn` on `db`'s cluster, like every CloudKit accessor.
  ZoneCatalog(fdb::Transaction* txn, const DatabaseRef& db, Clock* clock);

  /// Registers a zone. Fails with kAlreadyExists when the name is taken
  /// (regardless of type — a zone's type can never change).
  Status CreateZone(const std::string& zone_name, ZoneType type);

  /// The zone's type, or nullopt when it was never created.
  Result<std::optional<ZoneType>> GetZoneType(const std::string& zone_name);

  /// All registered zones, name-ordered.
  Result<std::vector<std::pair<std::string, ZoneType>>> ListZones();

  /// Opens a catalogued queue zone with the schema its type dictates.
  /// Fails with kNotFound for unknown zones and kFailedPrecondition for
  /// regular (non-queue) zones.
  Result<QueueZone> OpenQueueZone(const std::string& zone_name);

  /// Unregisters the zone and deletes all its data.
  Status DeleteZone(const std::string& zone_name);

 private:
  static const rl::RecordMetadata& Metadata();

  fdb::Transaction* txn_;
  DatabaseRef db_;
  Clock* clock_;
  rl::RecordStore store_;
};

}  // namespace quick::ck

#endif  // QUICK_CLOUDKIT_ZONE_CATALOG_H_
