#include "cloudkit/zone_catalog.h"

namespace quick::ck {

namespace {

constexpr const char* kZoneDescriptorType = "ZoneDescriptor";

rl::RecordMetadata BuildCatalogMetadata() {
  rl::RecordMetadata meta;
  rl::RecordTypeDef descriptor;
  descriptor.name = kZoneDescriptorType;
  descriptor.fields = {{"name", rl::FieldType::kString},
                       {"type", rl::FieldType::kInt64}};
  descriptor.primary_key_fields = {"name"};
  Status st = meta.AddRecordType(std::move(descriptor));
  (void)st;
  return meta;
}

}  // namespace

const rl::RecordMetadata& ZoneCatalog::Metadata() {
  static const rl::RecordMetadata* meta =
      new rl::RecordMetadata(BuildCatalogMetadata());
  return *meta;
}

ZoneCatalog::ZoneCatalog(fdb::Transaction* txn, const DatabaseRef& db,
                         Clock* clock)
    : txn_(txn),
      db_(db),
      clock_(clock),
      store_(txn, db.subspace.Sub("zc"), &Metadata()) {}

Status ZoneCatalog::CreateZone(const std::string& zone_name, ZoneType type) {
  if (zone_name.empty()) {
    return Status::InvalidArgument("zone name must not be empty");
  }
  QUICK_ASSIGN_OR_RETURN(std::optional<ZoneType> existing,
                         GetZoneType(zone_name));
  if (existing.has_value()) {
    return Status::AlreadyExists("zone " + zone_name);
  }
  rl::Record descriptor(kZoneDescriptorType);
  descriptor.SetString("name", zone_name)
      .SetInt("type", static_cast<int64_t>(type));
  return store_.SaveRecord(descriptor);
}

Result<std::optional<ZoneType>> ZoneCatalog::GetZoneType(
    const std::string& zone_name) {
  QUICK_ASSIGN_OR_RETURN(
      std::optional<rl::Record> rec,
      store_.LoadRecord(kZoneDescriptorType,
                        tup::Tuple().AddString(zone_name)));
  if (!rec.has_value()) return std::optional<ZoneType>(std::nullopt);
  QUICK_ASSIGN_OR_RETURN(int64_t type, rec->GetInt("type"));
  if (type < 0 || type > 2) {
    return Status::Internal("corrupt zone descriptor for " + zone_name);
  }
  return std::optional<ZoneType>(static_cast<ZoneType>(type));
}

Result<std::vector<std::pair<std::string, ZoneType>>> ZoneCatalog::ListZones() {
  QUICK_ASSIGN_OR_RETURN(std::vector<rl::Record> records,
                         store_.ScanRecords());
  std::vector<std::pair<std::string, ZoneType>> out;
  out.reserve(records.size());
  for (const rl::Record& rec : records) {
    QUICK_ASSIGN_OR_RETURN(std::string name, rec.GetString("name"));
    QUICK_ASSIGN_OR_RETURN(int64_t type, rec.GetInt("type"));
    out.emplace_back(std::move(name), static_cast<ZoneType>(type));
  }
  return out;
}

Result<QueueZone> ZoneCatalog::OpenQueueZone(const std::string& zone_name) {
  QUICK_ASSIGN_OR_RETURN(std::optional<ZoneType> type, GetZoneType(zone_name));
  if (!type.has_value()) {
    return Status::NotFound("zone " + zone_name + " not in catalog");
  }
  if (*type == ZoneType::kRegular) {
    return Status::FailedPrecondition("zone " + zone_name +
                                      " is not a queue zone");
  }
  return QueueZone(txn_, db_.ZoneSubspace(zone_name), clock_,
                   /*fifo=*/*type == ZoneType::kFifoQueue);
}

Status ZoneCatalog::DeleteZone(const std::string& zone_name) {
  QUICK_ASSIGN_OR_RETURN(std::optional<ZoneType> type, GetZoneType(zone_name));
  if (!type.has_value()) {
    return Status::NotFound("zone " + zone_name + " not in catalog");
  }
  QUICK_RETURN_IF_ERROR(
      store_
          .DeleteRecord(kZoneDescriptorType, tup::Tuple().AddString(zone_name))
          .status());
  txn_->ClearRange(db_.ZoneSubspace(zone_name).Range());
  return Status::OK();
}

}  // namespace quick::ck
