#ifndef QUICK_FDB_RESOLVER_H_
#define QUICK_FDB_RESOLVER_H_

#include <cstddef>
#include <vector>

#include "common/bytes.h"
#include "fdb/types.h"

namespace quick::fdb {

/// Interface of the simulated cluster's Resolver: remembers which key
/// ranges recent commits wrote so a committing transaction can be checked
/// for read-write conflicts against everything that committed after its
/// read version. NOT thread-safe; the Database serializes commits (the
/// group-commit leader calls it with the cluster lock held).
///
/// Two implementations exist: the legacy linear-scan ConflictTracker
/// (conflict_tracker.h) and the default IntervalResolver
/// (interval_resolver.h), selected by Database::Options::resolver. Both
/// must give identical verdicts for read versions at or above the prune
/// floor (differentially tested).
class Resolver {
 public:
  virtual ~Resolver() = default;

  /// Records a committed (or declared, §6.1) set of write ranges. With
  /// group commit several transactions share one `version`; AddCommit is
  /// then called once with their combined ranges.
  virtual void AddCommit(Version version,
                         std::vector<KeyRange> write_ranges) = 0;

  /// True when any commit with version > read_version wrote a range
  /// intersecting any of `read_ranges`.
  virtual bool HasConflict(const std::vector<KeyRange>& read_ranges,
                           Version read_version) const = 0;

  /// Oldest version against which conflicts can still be checked. Commits
  /// with read_version older than this must fail with kTransactionTooOld.
  virtual Version MinCheckableVersion() const = 0;

  /// Forgets conflict state at or below `version`. The Database calls this
  /// with the same version floor it enforces for reads (the MVCC-window
  /// floor), so the resolver window and the readable-version window move
  /// together.
  virtual void Prune(Version version) = 0;

  /// Number of retained units — commit records for the linear tracker,
  /// interval nodes for the interval resolver. Exported as the
  /// fdb.resolver.tracked gauge so the retention bound is observable.
  virtual size_t TrackedCount() const = 0;
};

}  // namespace quick::fdb

#endif  // QUICK_FDB_RESOLVER_H_
