#include "fdb/replication.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "fdb/checkpoint.h"
#include "fdb/wal.h"

namespace quick::fdb {

namespace {

constexpr uint32_t kManifestMagic = 0x51464E43u;  // 'QFNC'
constexpr uint32_t kManifestFormat = 1;

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool ReadU32(std::string_view data, size_t* off, uint32_t* v) {
  if (data.size() - *off < 4) return false;
  std::memcpy(v, data.data() + *off, 4);
  *off += 4;
  return true;
}

bool ReadU64(std::string_view data, size_t* off, uint64_t* v) {
  if (data.size() - *off < 8) return false;
  std::memcpy(v, data.data() + *off, 8);
  *off += 8;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// FencingService

Status FencingService::Load() {
  Result<std::string> data = ReadFile(path_);
  if (!data.ok()) {
    // A missing manifest is a fresh group; anything else is a real error.
    return data.status().IsNotFound() ? Status::OK() : data.status();
  }
  const std::string_view view = *data;
  const Status corrupt = Status::Internal("fencing manifest corrupt");
  if (view.size() < 4) return corrupt;
  const uint32_t crc = Crc32c(view.substr(0, view.size() - 4));
  size_t off = view.size() - 4;
  uint32_t stored_crc = 0;
  if (!ReadU32(view, &off, &stored_crc) || stored_crc != crc) return corrupt;

  off = 0;
  uint32_t magic = 0, format = 0, region_len = 0, sealed_count = 0;
  uint64_t epoch = 0, acked = 0;
  uint32_t sealed_flag = 0;
  if (!ReadU32(view, &off, &magic) || magic != kManifestMagic) return corrupt;
  if (!ReadU32(view, &off, &format) || format != kManifestFormat) {
    return corrupt;
  }
  if (!ReadU64(view, &off, &epoch)) return corrupt;
  if (!ReadU32(view, &off, &sealed_flag) || sealed_flag > 1) return corrupt;
  if (!ReadU32(view, &off, &region_len)) return corrupt;
  if (view.size() - off < region_len) return corrupt;
  std::string region(view.substr(off, region_len));
  off += region_len;
  if (!ReadU64(view, &off, &acked)) return corrupt;
  if (!ReadU32(view, &off, &sealed_count)) return corrupt;
  std::map<uint64_t, Version> sealed_acked;
  for (uint32_t i = 0; i < sealed_count; ++i) {
    uint64_t e = 0, a = 0;
    if (!ReadU64(view, &off, &e) || !ReadU64(view, &off, &a)) return corrupt;
    sealed_acked[e] = static_cast<Version>(a);
  }
  if (off != view.size() - 4) return corrupt;

  std::lock_guard<std::mutex> lock(mu_);
  current_epoch_ = epoch;
  sealed_ = sealed_flag == 1;
  primary_region_ = std::move(region);
  acked_ = static_cast<Version>(acked);
  sealed_acked_ = std::move(sealed_acked);
  return Status::OK();
}

Status FencingService::PersistLocked() {
  std::string out;
  PutU32(&out, kManifestMagic);
  PutU32(&out, kManifestFormat);
  PutU64(&out, current_epoch_);
  PutU32(&out, sealed_ ? 1 : 0);
  PutU32(&out, static_cast<uint32_t>(primary_region_.size()));
  out.append(primary_region_);
  PutU64(&out, static_cast<uint64_t>(acked_));
  PutU32(&out, static_cast<uint32_t>(sealed_acked_.size()));
  for (const auto& [epoch, acked] : sealed_acked_) {
    PutU64(&out, epoch);
    PutU64(&out, static_cast<uint64_t>(acked));
  }
  PutU32(&out, Crc32c(out));
  return AtomicWriteFile(path_, out);
}

uint64_t FencingService::current_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_epoch_;
}

std::string FencingService::primary_region() const {
  std::lock_guard<std::mutex> lock(mu_);
  return primary_region_;
}

bool FencingService::sealed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_;
}

Version FencingService::acked_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acked_;
}

Version FencingService::SealedAckedVersion(uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sealed_acked_.find(epoch);
  return it == sealed_acked_.end() ? 0 : it->second;
}

Result<uint64_t> FencingService::BeginEpoch(const std::string& region) {
  std::lock_guard<std::mutex> lock(mu_);
  if (current_epoch_ != 0 && !sealed_) {
    return Status::FailedPrecondition(
        "cannot begin an epoch while the current one is unsealed");
  }
  ++current_epoch_;
  sealed_ = false;
  primary_region_ = region;
  // acked_ deliberately carries over (see header): the promotion guard
  // proved the new primary contains every version acked so far, so the
  // floor below which history is immutable never regresses.
  QUICK_RETURN_IF_ERROR(PersistLocked());
  return current_epoch_;
}

Status FencingService::SealEpoch() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sealed_) return Status::OK();
  sealed_ = true;
  sealed_acked_[current_epoch_] = acked_;
  return PersistLocked();
}

Status FencingService::AckFence(uint64_t epoch, const std::string& region,
                                Version version) {
  std::lock_guard<std::mutex> lock(mu_);
  if (partitioned_.count(region) != 0) {
    return Status::Unavailable("control plane unreachable from " + region);
  }
  if (epoch != current_epoch_ || sealed_ || region != primary_region_) {
    return Status::FailedPrecondition(
        "epoch " + std::to_string(epoch) + " is sealed; " + region +
        " no longer owns this group");
  }
  acked_ = std::max(acked_, version);
  return Status::OK();
}

void FencingService::SetPartitioned(const std::string& region,
                                    bool partitioned) {
  std::lock_guard<std::mutex> lock(mu_);
  if (partitioned) {
    partitioned_.insert(region);
  } else {
    partitioned_.erase(region);
  }
}

bool FencingService::IsPartitioned(const std::string& region) const {
  std::lock_guard<std::mutex> lock(mu_);
  return partitioned_.count(region) != 0;
}

// ---------------------------------------------------------------------------
// ReplicationLink

int ReplicationLink::Transfer(size_t bytes) {
  (void)bytes;
  sends_.fetch_add(1, std::memory_order_relaxed);
  if (partitioned()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  if (faults_ != nullptr) {
    if (std::optional<LinkFault> fault = faults_->NextLinkFault()) {
      switch (fault->kind) {
        case LinkFault::Kind::kDrop:
          dropped_.fetch_add(1, std::memory_order_relaxed);
          return 0;
        case LinkFault::Kind::kPartition:
          SetPartitioned(true);
          dropped_.fetch_add(1, std::memory_order_relaxed);
          return 0;
        case LinkFault::Kind::kDelay:
          if (clock_ != nullptr) clock_->SleepMillis(fault->delay_millis);
          break;
        case LinkFault::Kind::kDuplicate:
          delivered_.fetch_add(2, std::memory_order_relaxed);
          duplicated_.fetch_add(1, std::memory_order_relaxed);
          return 2;
      }
    }
  }
  delivered_.fetch_add(1, std::memory_order_relaxed);
  return 1;
}

ReplicationLink::Stats ReplicationLink::stats() const {
  Stats out;
  out.sends = sends_.load(std::memory_order_relaxed);
  out.delivered = delivered_.load(std::memory_order_relaxed);
  out.dropped = dropped_.load(std::memory_order_relaxed);
  out.duplicated = duplicated_.load(std::memory_order_relaxed);
  return out;
}

// ---------------------------------------------------------------------------
// ReplicaApplier

Status ReplicaApplier::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  QUICK_RETURN_IF_ERROR(CreateDirs(options_.dir));
  // Recover the applied position exactly as primary recovery would: the
  // newest valid checkpoint plus the CRC-clean log tail above it, with
  // any torn suffix truncated (a replica restarting after its own crash).
  Result<CheckpointScan> scan = FindLatestValidCheckpoint(options_.dir);
  QUICK_RETURN_IF_ERROR(scan.status());
  Result<WalReplayResult> replay = ReplayWalDir(
      options_.dir, scan->version,
      [](const WalBatch&) { return Status::OK(); });
  QUICK_RETURN_IF_ERROR(replay.status());
  applied_.store(std::max(scan->version, replay->last_version),
                 std::memory_order_release);
  last_crc_ = 0;
  next_seq_ = replay->max_segment_seq + 1;
  return OpenSegmentLocked();
}

Status ReplicaApplier::OpenSegmentLocked() {
  return file_.Open(options_.dir + "/" + WalSegmentName(next_seq_++));
}

Status ReplicaApplier::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!file_.is_open()) return Status::OK();
  QUICK_RETURN_IF_ERROR(file_.Sync());
  return file_.Close();
}

Status ReplicaApplier::HaltLocked(Version version, const std::string& detail) {
  halted_.store(true, std::memory_order_release);
  if (options_.on_event) {
    ReplicationEvent event;
    event.kind = ReplicationEvent::Kind::kReplicaDivergence;
    event.region = options_.region;
    event.epoch = epoch_seen_;
    event.version = version;
    event.detail = detail;
    options_.on_event(event);
  }
  return Status::Internal("replica divergence on " + options_.region + ": " +
                          detail);
}

Status ReplicaApplier::ApplyFrame(uint64_t epoch, std::string_view frame) {
  std::lock_guard<std::mutex> lock(mu_);
  if (halted_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("replica " + options_.region +
                                      " is halted");
  }
  if (epoch < epoch_seen_) {
    // A zombie primary's shipment from before the failover; refuse but
    // stay healthy — the fence already withheld its acks.
    return Status::FailedPrecondition("stale epoch " + std::to_string(epoch));
  }
  epoch_seen_ = epoch;

  size_t off = 0;
  Result<WalBatch> decoded = DecodeWalRecord(frame, &off);
  if (!decoded.ok() || off != frame.size()) {
    return HaltLocked(0, "frame failed CRC/framing validation: " +
                             decoded.status().message());
  }
  const Version version = decoded->version;
  const Version applied = applied_.load(std::memory_order_relaxed);
  const uint32_t crc = Crc32c(frame);
  if (version <= applied) {
    // Duplicate delivery (or a re-ship after a dropped ack). Idempotent —
    // but the bytes must be identical to what we already hold: the same
    // version with different content is a forked history.
    if (version == applied && last_crc_ != 0 && crc != last_crc_) {
      return HaltLocked(version,
                        "version " + std::to_string(version) +
                            " re-shipped with different bytes");
    }
    frames_skipped_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  if (version != applied + 1) {
    // Commit versions are dense (one per applied batch), so a gap means
    // frames were lost or reordered past the link's in-order guarantee.
    return HaltLocked(version, "version gap: expected " +
                                   std::to_string(applied + 1) + ", got " +
                                   std::to_string(version));
  }
  const Status st = file_.Append(frame);
  if (!st.ok()) {
    halted_.store(true, std::memory_order_release);
    return st;
  }
  applied_.store(version, std::memory_order_release);
  last_crc_ = crc;
  frames_applied_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status ReplicaApplier::InstallCheckpoint(uint64_t epoch, Version version,
                                         std::string_view blob) {
  std::lock_guard<std::mutex> lock(mu_);
  if (halted_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("replica " + options_.region +
                                      " is halted");
  }
  if (epoch < epoch_seen_) {
    return Status::FailedPrecondition("stale epoch " + std::to_string(epoch));
  }
  epoch_seen_ = epoch;
  if (version <= applied_.load(std::memory_order_relaxed)) {
    return Status::OK();  // already caught up past it
  }
  // The checkpoint replaces everything: close and drop the current log,
  // install, and resume applying from the checkpoint version.
  if (file_.is_open()) QUICK_RETURN_IF_ERROR(file_.Close());
  Result<std::vector<std::string>> names = ListDir(options_.dir);
  if (names.ok()) {
    for (const std::string& name : *names) {
      (void)RemoveFile(options_.dir + "/" + name);
    }
  }
  QUICK_RETURN_IF_ERROR(
      AtomicWriteFile(options_.dir + "/" + CheckpointFileName(version), blob));
  next_seq_ = 1;
  QUICK_RETURN_IF_ERROR(OpenSegmentLocked());
  applied_.store(version, std::memory_order_release);
  last_crc_ = 0;
  checkpoints_installed_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status ReplicaApplier::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!file_.is_open()) return Status::OK();
  const Status st = file_.Sync();
  if (!st.ok()) halted_.store(true, std::memory_order_release);
  return st;
}

ReplicaApplier::Stats ReplicaApplier::stats() const {
  Stats out;
  out.frames_applied = frames_applied_.load(std::memory_order_relaxed);
  out.frames_skipped = frames_skipped_.load(std::memory_order_relaxed);
  out.checkpoints_installed =
      checkpoints_installed_.load(std::memory_order_relaxed);
  return out;
}

// ---------------------------------------------------------------------------
// LogShipper

Status LogShipper::PumpOnce() {
  std::lock_guard<std::mutex> lock(mu_);
  pumps_.fetch_add(1, std::memory_order_relaxed);
  if (follower_->halted()) {
    return Status::FailedPrecondition("follower halted");
  }
  if (primary_->DurabilityDead()) {
    return Status::Unavailable("primary dead");
  }
  // Ship only the published prefix: last_version_ advances after the
  // fsync AND the fence ack, so a zombie's withheld appends — durable on
  // its disk but never acknowledged — are never replicated.
  const Version cap = primary_->LastCommittedVersion();
  if (follower_->applied_version() >= cap) return Status::OK();
  const std::string& dir = primary_->options().durability.dir;

  // Catch-up: when the primary checkpointed past the follower (retiring
  // segments the follower still needed), ship the whole checkpoint and
  // resume from its version.
  Result<CheckpointScan> scan = FindLatestValidCheckpoint(dir);
  if (scan.ok() && scan->version > follower_->applied_version()) {
    Result<std::string> blob = ReadFile(scan->path);
    if (blob.ok()) {
      if (link_->Transfer(blob->size()) == 0) return Status::OK();  // stalled
      QUICK_RETURN_IF_ERROR(
          follower_->InstallCheckpoint(epoch_, scan->version, *blob));
      checkpoints_shipped_.fetch_add(1, std::memory_order_relaxed);
      cur_seq_ = 0;
      cur_off_ = 0;
    }
  }

  Result<std::vector<std::string>> names = ListDir(dir);
  if (!names.ok()) return Status::OK();
  std::vector<uint64_t> seqs;
  for (const std::string& name : *names) {
    uint64_t seq = 0;
    if (ParseWalSegmentName(name, &seq)) seqs.push_back(seq);
  }
  std::sort(seqs.begin(), seqs.end());

  bool shipped_any = false;
  for (const uint64_t seq : seqs) {
    if (seq < cur_seq_) continue;
    const uint64_t start_off = seq == cur_seq_ ? cur_off_ : 0;
    Result<std::string> data = ReadFile(dir + "/" + WalSegmentName(seq));
    if (!data.ok()) continue;  // retired between ListDir and here
    if (start_off > data->size()) continue;
    cur_seq_ = seq;
    cur_off_ = start_off;
    SegmentReader reader(std::string_view(*data).substr(start_off));
    SegmentReader::Record rec;
    bool stalled = false;
    while (reader.Next(&rec)) {
      if (rec.batch.version > cap) {
        // Not yet published (possibly a concurrent append racing the
        // fsync); stop here and re-read next pump.
        stalled = true;
        break;
      }
      if (rec.batch.version <= follower_->applied_version()) {
        cur_off_ = start_off + reader.offset();
        continue;  // already applied; no link traffic
      }
      const int copies = link_->Transfer(rec.raw.size());
      if (copies == 0) {
        // Dropped or partitioned: do NOT advance — re-shipping from the
        // same position preserves in-order delivery (invariant 16's
        // transport half).
        stalled = true;
        break;
      }
      for (int c = 0; c < copies; ++c) {
        const Status st = follower_->ApplyFrame(epoch_, rec.raw);
        if (!st.ok()) return st;
      }
      frames_shipped_.fetch_add(1, std::memory_order_relaxed);
      shipped_any = true;
      cur_off_ = start_off + reader.offset();
    }
    if (stalled || !reader.status().ok()) break;
    // Clean end of this segment: move on if a later one exists; otherwise
    // stay, appends will extend it.
  }
  if (shipped_any) return follower_->Sync();
  return Status::OK();
}

LogShipper::Stats LogShipper::stats() const {
  Stats out;
  out.pumps = pumps_.load(std::memory_order_relaxed);
  out.frames_shipped = frames_shipped_.load(std::memory_order_relaxed);
  out.checkpoints_shipped =
      checkpoints_shipped_.load(std::memory_order_relaxed);
  return out;
}

// ---------------------------------------------------------------------------
// ReplicationGroup

ReplicationGroup::ReplicationGroup(std::string name,
                                   ReplicationGroupOptions options)
    : name_(std::move(name)),
      options_(std::move(options)),
      fencing_(options_.dir + "/MANIFEST") {}

ReplicationGroup::~ReplicationGroup() = default;

std::string ReplicationGroup::RegionName(int index) {
  return "region" + std::to_string(index);
}

std::string ReplicationGroup::RegionDir(int index) const {
  return options_.dir + "/" + RegionName(index);
}

int ReplicationGroup::RegionIndex(const std::string& region) const {
  for (int i = 0; i < num_regions(); ++i) {
    if (RegionName(i) == region) return i;
  }
  return -1;
}

void ReplicationGroup::Emit(ReplicationEvent::Kind kind,
                            const std::string& region, uint64_t epoch,
                            Version version, std::string detail) {
  if (!options_.on_event) return;
  ReplicationEvent event;
  event.kind = kind;
  event.region = region;
  event.epoch = epoch;
  event.version = version;
  event.detail = std::move(detail);
  options_.on_event(event);
}

std::unique_ptr<Database> ReplicationGroup::MakeRegionDatabase(
    int region, uint64_t epoch) {
  Database::Options db_options = options_.db_options;
  db_options.durability.enable_wal = true;
  db_options.durability.dir = RegionDir(region);
  const std::string region_name = RegionName(region);
  FencingService* fencing = &fencing_;
  db_options.durability.commit_fence = [fencing, epoch,
                                        region_name](Version version) {
    return fencing->AckFence(epoch, region_name, version);
  };
  // Every region's Database carries the CLUSTER name, not the region
  // name: zone subspaces derive their keyspace from the database name, so
  // a promoted region must resolve the exact keys its predecessor wrote.
  return std::make_unique<Database>(name_, db_options);
}

ReplicationGroup::Follower ReplicationGroup::MakeFollower(int region,
                                                          uint64_t epoch) {
  Follower f;
  ReplicaApplier::Options opts;
  opts.dir = RegionDir(region);
  opts.region = RegionName(region);
  opts.on_event = options_.on_event;
  f.applier = std::make_unique<ReplicaApplier>(std::move(opts));
  f.link = std::make_unique<ReplicationLink>(primary_db_->fault_injector(),
                                             options_.db_options.clock);
  f.shipper = std::make_unique<LogShipper>(primary_db_.get(), f.applier.get(),
                                           f.link.get(), epoch);
  return f;
}

Status ReplicationGroup::Start() {
  QUICK_RETURN_IF_ERROR(CreateDirs(options_.dir));
  QUICK_RETURN_IF_ERROR(fencing_.Load());
  std::lock_guard<std::mutex> lock(mu_);
  if (fencing_.current_epoch() == 0) {
    Result<uint64_t> epoch = fencing_.BeginEpoch(RegionName(0));
    QUICK_RETURN_IF_ERROR(epoch.status());
    epoch_ = *epoch;
    primary_index_ = 0;
  } else {
    primary_index_ = RegionIndex(fencing_.primary_region());
    if (primary_index_ < 0) {
      return Status::Internal("fencing manifest names unknown region " +
                              fencing_.primary_region());
    }
    if (fencing_.sealed()) {
      // A crash landed between seal and promotion; the sealed region's
      // disk still holds everything acked, so it re-takes the group under
      // a fresh epoch.
      Result<uint64_t> epoch = fencing_.BeginEpoch(fencing_.primary_region());
      QUICK_RETURN_IF_ERROR(epoch.status());
      epoch_ = *epoch;
    } else {
      epoch_ = fencing_.current_epoch();
    }
  }
  primary_db_ = MakeRegionDatabase(primary_index_, epoch_);
  if (primary_db_->DurabilityDead()) {
    return Status::Internal("primary region failed recovery");
  }
  for (int i = 0; i < num_regions(); ++i) {
    if (i == primary_index_) continue;
    Follower f = MakeFollower(i, epoch_);
    QUICK_RETURN_IF_ERROR(f.applier->Open());
    followers_.emplace(i, std::move(f));
  }
  return Status::OK();
}

Database* ReplicationGroup::primary() const {
  std::lock_guard<std::mutex> lock(mu_);
  return primary_db_.get();
}

std::string ReplicationGroup::primary_region() const {
  std::lock_guard<std::mutex> lock(mu_);
  return RegionName(primary_index_);
}

uint64_t ReplicationGroup::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

Status ReplicationGroup::PumpOnce() {
  std::lock_guard<std::mutex> lock(mu_);
  Status first_error = Status::OK();
  for (auto& [index, follower] : followers_) {
    const Status st = follower.shipper->PumpOnce();
    // kUnavailable (dead primary) and kFailedPrecondition (halted
    // follower / stale epoch) are expected mid-chaos; keep pumping the
    // other standbys and surface the first error.
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  return first_error;
}

void ReplicationGroup::KillPrimary() {
  std::lock_guard<std::mutex> lock(mu_);
  primary_db_->Halt();
}

Status ReplicationGroup::DrainRegionDir(const std::string& from_dir,
                                        uint64_t old_epoch, Version up_to,
                                        ReplicaApplier* target) {
  // The region's process is gone (or fenced) but its durable log store
  // outlives it: read the checkpoint + tail directly, capped at the
  // sealed epoch's acked version — appends beyond it were never
  // acknowledged and die with the region.
  Result<CheckpointScan> scan = FindLatestValidCheckpoint(from_dir);
  if (scan.ok() && scan->version > target->applied_version()) {
    Result<std::string> blob = ReadFile(scan->path);
    if (blob.ok()) {
      QUICK_RETURN_IF_ERROR(
          target->InstallCheckpoint(old_epoch, scan->version, *blob));
    }
  }
  Result<std::vector<std::string>> names = ListDir(from_dir);
  if (!names.ok()) return Status::OK();
  std::vector<uint64_t> seqs;
  for (const std::string& name : *names) {
    uint64_t seq = 0;
    if (ParseWalSegmentName(name, &seq)) seqs.push_back(seq);
  }
  std::sort(seqs.begin(), seqs.end());
  for (const uint64_t seq : seqs) {
    Result<std::string> data = ReadFile(from_dir + "/" + WalSegmentName(seq));
    if (!data.ok()) continue;
    SegmentReader reader(*data);
    SegmentReader::Record rec;
    while (reader.Next(&rec)) {
      if (rec.batch.version > up_to) return target->Sync();
      if (rec.batch.version <= target->applied_version()) continue;
      QUICK_RETURN_IF_ERROR(target->ApplyFrame(old_epoch, rec.raw));
    }
    if (!reader.status().ok()) break;  // torn tail: durable prefix ends
  }
  return target->Sync();
}

Result<std::string> ReplicationGroup::Failover(const FailoverOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t old_epoch = epoch_;
  const int old_primary = primary_index_;
  QUICK_RETURN_IF_ERROR(fencing_.SealEpoch());
  const Version acked = fencing_.SealedAckedVersion(old_epoch);
  Emit(ReplicationEvent::Kind::kEpochSealed, RegionName(old_primary),
       old_epoch, acked, "epoch sealed for failover");

  int target = options.target_region;
  if (target == old_primary) {
    return Status::InvalidArgument("target is the current primary");
  }
  if (target < 0) {
    Version best = -1;
    for (const auto& [index, follower] : followers_) {
      if (follower.applier->halted()) continue;
      const Version applied = follower.applier->applied_version();
      if (applied > best) {
        best = applied;
        target = index;
      }
    }
    if (target < 0) {
      return Status::FailedPrecondition("no live standby to promote");
    }
  } else if (followers_.count(target) == 0) {
    return Status::InvalidArgument(RegionName(target) + " is not a standby");
  } else if (followers_[target].applier->halted()) {
    return Status::FailedPrecondition(RegionName(target) +
                                      " is halted (diverged)");
  }

  ReplicaApplier* applier = followers_[target].applier.get();
  if (options.drain_from_old_region &&
      applier->applied_version() < acked) {
    // Best-effort: a torn tail or missing file only leaves the target
    // where it was; the guard below still decides.
    (void)DrainRegionDir(RegionDir(old_primary), old_epoch, acked, applier);
  }
  if (applier->applied_version() < acked) {
    Emit(ReplicationEvent::Kind::kPromotionRefused, RegionName(target),
         old_epoch, applier->applied_version(),
         "standby behind sealed acked version " + std::to_string(acked));
    return Status::FailedPrecondition(
        RegionName(target) + " applied " +
        std::to_string(applier->applied_version()) +
        " < sealed acked version " + std::to_string(acked) +
        "; promotion would lose acknowledged commits");
  }

  Result<uint64_t> new_epoch = fencing_.BeginEpoch(RegionName(target));
  QUICK_RETURN_IF_ERROR(new_epoch.status());
  epoch_ = *new_epoch;

  // Retire the old primary but keep it alive: clients cache raw Database
  // pointers, and the zombie must keep answering (with kUnavailable or a
  // fence-refused kCommitUnknownResult) instead of dangling.
  retired_.emplace_back(old_primary, std::move(primary_db_));
  QUICK_RETURN_IF_ERROR(applier->Close());
  followers_.erase(target);
  primary_index_ = target;
  primary_db_ = MakeRegionDatabase(target, epoch_);
  if (primary_db_->DurabilityDead()) {
    return Status::Internal("promoted standby failed recovery");
  }
  // Re-point the remaining standbys at the new primary under the new
  // epoch; their applied history is a prefix of the new primary's (both
  // shipped byte-identical frames from the old one), so shipping resumes
  // where each left off.
  for (auto& [index, follower] : followers_) {
    follower.link = std::make_unique<ReplicationLink>(
        primary_db_->fault_injector(), options_.db_options.clock);
    follower.shipper = std::make_unique<LogShipper>(
        primary_db_.get(), follower.applier.get(), follower.link.get(),
        epoch_);
  }
  Emit(ReplicationEvent::Kind::kPromoted, RegionName(target), epoch_,
       primary_db_->LastCommittedVersion(), "promoted to primary");
  return RegionName(target);
}

Status ReplicationGroup::RejoinAsFollower(const std::string& region) {
  std::lock_guard<std::mutex> lock(mu_);
  const int index = RegionIndex(region);
  if (index < 0) return Status::InvalidArgument("unknown region " + region);
  if (index == primary_index_) {
    return Status::InvalidArgument(region + " is the current primary");
  }
  if (followers_.count(index) != 0) {
    return Status::FailedPrecondition(region + " is already a standby");
  }
  fencing_.SetPartitioned(region, false);
  // Any zombie still holding this directory must stop touching it.
  for (auto& [retired_index, db] : retired_) {
    if (retired_index == index) db->Halt();
  }
  std::error_code ec;
  std::filesystem::remove_all(RegionDir(index), ec);
  QUICK_RETURN_IF_ERROR(CreateDirs(RegionDir(index)));
  Follower f = MakeFollower(index, epoch_);
  QUICK_RETURN_IF_ERROR(f.applier->Open());
  followers_.emplace(index, std::move(f));
  return Status::OK();
}

void ReplicationGroup::SetLinkPartitioned(const std::string& region,
                                          bool partitioned) {
  std::lock_guard<std::mutex> lock(mu_);
  const int index = RegionIndex(region);
  auto it = followers_.find(index);
  if (it != followers_.end()) it->second.link->SetPartitioned(partitioned);
}

void ReplicationGroup::SetControlPartitioned(const std::string& region,
                                             bool partitioned) {
  fencing_.SetPartitioned(region, partitioned);
}

Version ReplicationGroup::ReplicaAppliedVersion(
    const std::string& region) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = followers_.find(RegionIndex(region));
  return it == followers_.end() ? 0 : it->second.applier->applied_version();
}

bool ReplicationGroup::ReplicaHalted(const std::string& region) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = followers_.find(RegionIndex(region));
  return it != followers_.end() && it->second.applier->halted();
}

LogShipper::Stats ReplicationGroup::ShipperStats(
    const std::string& region) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = followers_.find(RegionIndex(region));
  return it == followers_.end() ? LogShipper::Stats{}
                                : it->second.shipper->stats();
}

ReplicaApplier::Stats ReplicationGroup::ApplierStats(
    const std::string& region) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = followers_.find(RegionIndex(region));
  return it == followers_.end() ? ReplicaApplier::Stats{}
                                : it->second.applier->stats();
}

}  // namespace quick::fdb
