#include "fdb/conflict_tracker.h"

namespace quick::fdb {

void ConflictTracker::AddCommit(Version version,
                                std::vector<KeyRange> write_ranges) {
  if (write_ranges.empty()) return;
  commits_.push_back({version, std::move(write_ranges)});
}

bool ConflictTracker::HasConflict(const std::vector<KeyRange>& read_ranges,
                                  Version read_version) const {
  if (read_ranges.empty()) return false;
  // Scan newest-first and stop at the first commit the reader already saw.
  for (auto it = commits_.rbegin(); it != commits_.rend(); ++it) {
    if (it->version <= read_version) break;
    for (const KeyRange& w : it->write_ranges) {
      for (const KeyRange& r : read_ranges) {
        if (w.Intersects(r)) return true;
      }
    }
  }
  return false;
}

void ConflictTracker::Prune(Version version) {
  while (!commits_.empty() && commits_.front().version <= version) {
    commits_.pop_front();
  }
  if (version > min_checkable_) min_checkable_ = version;
}

}  // namespace quick::fdb
