#include "fdb/checkpoint.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/crc32.h"
#include "common/file_io.h"

namespace quick::fdb {

namespace {

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint64_t GetUint(std::string_view data, size_t offset, size_t width) {
  uint64_t v = 0;
  for (size_t i = 0; i < width; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data[offset + i]))
         << (8 * i);
  }
  return v;
}

constexpr size_t kHeaderSize = 24;
constexpr size_t kFooterSize = 4;

}  // namespace

std::string CheckpointFileName(Version version) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "CHECKPOINT-%016" PRIx64 ".ckpt",
                static_cast<uint64_t>(version));
  return buf;
}

bool ParseCheckpointFileName(const std::string& name, Version* version) {
  uint64_t parsed = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "CHECKPOINT-%16" SCNx64 ".ckpt%n", &parsed,
                  &consumed) != 1 ||
      static_cast<size_t>(consumed) != name.size()) {
    return false;
  }
  *version = static_cast<Version>(parsed);
  return true;
}

CheckpointBuilder::CheckpointBuilder(Version version) {
  // The header is assembled up front with a zero key count and patched in
  // Finish(), so Add() can stream without a second pass over the records.
  PutU32(&body_, kCheckpointMagic);
  PutU32(&body_, kCheckpointFormat);
  PutU64(&body_, static_cast<uint64_t>(version));
  PutU64(&body_, 0);  // key count, patched in Finish()
}

void CheckpointBuilder::Add(std::string_view key, std::string_view value) {
  PutU32(&body_, static_cast<uint32_t>(key.size()));
  PutU32(&body_, static_cast<uint32_t>(value.size()));
  body_.append(key);
  body_.append(value);
  ++key_count_;
}

std::string CheckpointBuilder::Finish() {
  const uint64_t count = static_cast<uint64_t>(key_count_);
  for (int i = 0; i < 8; ++i) {
    body_[16 + i] = static_cast<char>((count >> (8 * i)) & 0xFF);
  }
  const uint32_t crc = Crc32c(body_);
  PutU32(&body_, crc);
  return std::move(body_);
}

Result<LoadedCheckpoint> ParseCheckpoint(std::string_view data) {
  if (data.size() < kHeaderSize + kFooterSize) {
    return Status::InvalidArgument("checkpoint too short");
  }
  if (GetUint(data, 0, 4) != kCheckpointMagic) {
    return Status::InvalidArgument("bad checkpoint magic");
  }
  if (GetUint(data, 4, 4) != kCheckpointFormat) {
    return Status::InvalidArgument("unknown checkpoint format");
  }
  const size_t body_size = data.size() - kFooterSize;
  const uint32_t crc =
      static_cast<uint32_t>(GetUint(data, body_size, 4));
  if (Crc32c(data.substr(0, body_size)) != crc) {
    return Status::InvalidArgument("checkpoint checksum mismatch");
  }

  LoadedCheckpoint out;
  out.version = static_cast<Version>(GetUint(data, 8, 8));
  const uint64_t keys = GetUint(data, 16, 8);
  out.entries.reserve(keys);
  size_t pos = kHeaderSize;
  for (uint64_t i = 0; i < keys; ++i) {
    if (pos + 8 > body_size) {
      return Status::InvalidArgument("checkpoint record overrun");
    }
    const uint64_t key_size = GetUint(data, pos, 4);
    const uint64_t value_size = GetUint(data, pos + 4, 4);
    pos += 8;
    if (pos + key_size + value_size > body_size) {
      return Status::InvalidArgument("checkpoint record overrun");
    }
    out.entries.push_back({std::string(data.substr(pos, key_size)),
                           std::string(data.substr(pos + key_size,
                                                   value_size))});
    pos += key_size + value_size;
  }
  if (pos != body_size) {
    return Status::InvalidArgument("checkpoint trailing bytes");
  }
  return out;
}

Result<LoadedCheckpoint> LoadCheckpointFile(const std::string& path) {
  Result<std::string> data = ReadFile(path);
  if (!data.ok()) return data.status();
  return ParseCheckpoint(*data);
}

Result<CheckpointScan> FindLatestValidCheckpoint(const std::string& dir) {
  CheckpointScan scan;
  Result<std::vector<std::string>> names = ListDir(dir);
  if (!names.ok()) {
    if (names.status().IsNotFound()) return scan;
    return names.status();
  }
  std::vector<std::pair<Version, std::string>> candidates;
  for (const std::string& name : *names) {
    Version v = 0;
    if (ParseCheckpointFileName(name, &v)) candidates.emplace_back(v, name);
  }
  std::sort(candidates.rbegin(), candidates.rend());  // newest first
  for (const auto& [version, name] : candidates) {
    const std::string path = dir + "/" + name;
    Result<LoadedCheckpoint> loaded = LoadCheckpointFile(path);
    if (loaded.ok() && loaded->version == version) {
      scan.version = version;
      scan.path = path;
      return scan;
    }
    ++scan.invalid_skipped;
  }
  return scan;
}

void RetireOldCheckpoints(const std::string& dir, Version keep_version) {
  Result<std::vector<std::string>> names = ListDir(dir);
  if (!names.ok()) return;
  for (const std::string& name : *names) {
    Version v = 0;
    if (ParseCheckpointFileName(name, &v)) {
      if (v < keep_version) (void)RemoveFile(dir + "/" + name);
      continue;
    }
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      (void)RemoveFile(dir + "/" + name);
    }
  }
}

}  // namespace quick::fdb
