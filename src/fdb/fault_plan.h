#ifndef QUICK_FDB_FAULT_PLAN_H_
#define QUICK_FDB_FAULT_PLAN_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace quick::fdb {

/// One scheduled fault window: between `start_millis` (inclusive) and
/// `end_millis` (exclusive) of the cluster clock, the listed effects apply
/// on top of the cluster's base probabilistic fault config. Windows model
/// the failure scenarios the paper's fault-tolerance story (§5–§6) must
/// survive: a whole cluster going dark, elevated transient failure rates,
/// forced transaction_too_old storms, and latency spikes.
struct FaultWindow {
  int64_t start_millis = 0;
  int64_t end_millis = 0;

  /// Cluster fully dark: every GRV, read, and commit fails kUnavailable.
  bool full_outage = false;

  /// Elevated transient-failure probabilities, additive with the base
  /// FaultInjector::Config while the window is active.
  double commit_unavailable = 0.0;
  double grv_unavailable = 0.0;
  /// Probability a point read or range read fails kUnavailable.
  double read_unavailable = 0.0;
  /// Probability a read or commit fails kTransactionTooOld (models the MVCC
  /// window collapsing under storage-server lag).
  double transaction_too_old = 0.0;

  /// Latency spike: every operation additionally sleeps this many
  /// milliseconds of the cluster's *Clock* time. Under ManualClock the
  /// sleep advances the clock deterministically instead of blocking, so a
  /// spike makes simulated time pass — long enough spikes age transactions
  /// past their 5s lifetime, exactly as a real degraded cluster would.
  int64_t extra_latency_millis = 0;

  bool Contains(int64_t now_millis) const {
    return now_millis >= start_millis && now_millis < end_millis;
  }

  /// A window during which the cluster is completely unreachable.
  static FaultWindow Outage(int64_t start_millis, int64_t end_millis) {
    FaultWindow w;
    w.start_millis = start_millis;
    w.end_millis = end_millis;
    w.full_outage = true;
    return w;
  }

  /// A window during which every operation pays `extra_millis` more.
  static FaultWindow LatencySpike(int64_t start_millis, int64_t end_millis,
                                  int64_t extra_millis) {
    FaultWindow w;
    w.start_millis = start_millis;
    w.end_millis = end_millis;
    w.extra_latency_millis = extra_millis;
    return w;
  }
};

/// One scheduled disk fault against a durable storage backend (today the
/// fdb WAL and its checkpoints; reusable by any future on-disk backend).
/// Unlike FaultWindow these are keyed by operation *ordinal*, not clock
/// time: "tear the 7th log append" is the crash geometry recovery tests
/// need to hit exactly, and append counts are deterministic where wall
/// time is not. A torn write or checksum corruption is fatal — it models
/// the process dying mid-write, so the backend goes dark (every later
/// operation fails kUnavailable) until a fresh process recovers from disk.
struct DiskFault {
  enum class Kind {
    /// Only a prefix of the record reaches the platter; the process dies.
    kTornWrite,
    /// fsync blocks for `stall_millis` of the cluster Clock, then succeeds
    /// (a hung device that comes back; non-fatal).
    kFsyncStall,
    /// The record is written full-length but a payload byte is flipped on
    /// the way down (bit rot at write time); the process dies unacked.
    kChecksumCorruption,
  };

  /// Which durable operation stream the ordinal counts.
  enum class Op {
    kWalAppend,
    kCheckpointWrite,
  };

  Kind kind = Kind::kTornWrite;
  Op op = Op::kWalAppend;
  /// Fires on the `at_op`-th operation of `op` (1-based).
  int64_t at_op = 1;
  /// kTornWrite: bytes of the record actually written; -1 = half of it.
  int64_t torn_bytes = -1;
  /// kFsyncStall: stall duration, paid on the cluster's Clock.
  int64_t stall_millis = 0;
  /// kChecksumCorruption: record offset whose low bit is flipped (clamped
  /// to the record length).
  int64_t corrupt_offset = 0;

  static DiskFault TornWrite(int64_t at_op, int64_t torn_bytes = -1) {
    DiskFault f;
    f.kind = Kind::kTornWrite;
    f.at_op = at_op;
    f.torn_bytes = torn_bytes;
    return f;
  }

  static DiskFault FsyncStall(int64_t at_op, int64_t stall_millis) {
    DiskFault f;
    f.kind = Kind::kFsyncStall;
    f.at_op = at_op;
    f.stall_millis = stall_millis;
    return f;
  }

  static DiskFault Corruption(int64_t at_op, int64_t corrupt_offset = 0) {
    DiskFault f;
    f.kind = Kind::kChecksumCorruption;
    f.at_op = at_op;
    f.corrupt_offset = corrupt_offset;
    return f;
  }

  /// Same fault scheduled against the checkpoint writer instead of the WAL.
  DiskFault OnCheckpoint() const {
    DiskFault f = *this;
    f.op = Op::kCheckpointWrite;
    return f;
  }
};

/// One scheduled fault on the replication link — the channel shipping WAL
/// frames from a primary to its warm standbys (replication.h). Keyed by
/// send ordinal like DiskFault: "drop the 3rd frame" is the deterministic
/// geometry replication tests need, where wall time is not. A partition
/// downs the link from that send onward until it is explicitly healed
/// (ReplicationGroup::SetLinkPartitioned) — the fenced-zombie failover
/// scenario's network half.
struct LinkFault {
  enum class Kind {
    /// The frame vanishes in flight; the shipper re-ships it next pump.
    kDrop,
    /// Delivered after `delay_millis` of the cluster Clock.
    kDelay,
    /// Delivered twice back-to-back (the applier must be idempotent).
    kDuplicate,
    /// Link down from this send until healed; every send meanwhile drops.
    kPartition,
  };

  Kind kind = Kind::kDrop;
  /// Fires on the `at_op`-th link send (1-based).
  int64_t at_op = 1;
  /// kDelay: extra delivery latency, paid on the cluster's Clock.
  int64_t delay_millis = 0;

  static LinkFault Drop(int64_t at_op) {
    LinkFault f;
    f.kind = Kind::kDrop;
    f.at_op = at_op;
    return f;
  }

  static LinkFault Delay(int64_t at_op, int64_t delay_millis) {
    LinkFault f;
    f.kind = Kind::kDelay;
    f.at_op = at_op;
    f.delay_millis = delay_millis;
    return f;
  }

  static LinkFault Duplicate(int64_t at_op) {
    LinkFault f;
    f.kind = Kind::kDuplicate;
    f.at_op = at_op;
    return f;
  }

  static LinkFault Partition(int64_t at_op) {
    LinkFault f;
    f.kind = Kind::kPartition;
    f.at_op = at_op;
    return f;
  }
};

/// A time-windowed fault schedule for one cluster. Immutable once handed to
/// a Database; evaluation is a pure function of the clock, so a chaos run
/// is fully deterministic given (plan, ManualClock, fault seed).
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& Add(FaultWindow window) {
    windows_.push_back(window);
    return *this;
  }

  /// Schedules a disk fault (see DiskFault). Disk faults are keyed by
  /// operation ordinal, so they compose with the time windows without
  /// sharing their clock.
  FaultPlan& AddDisk(DiskFault fault) {
    disk_faults_.push_back(fault);
    return *this;
  }

  /// Schedules a replication-link fault (see LinkFault); ordinal-keyed
  /// like disk faults.
  FaultPlan& AddLink(LinkFault fault) {
    link_faults_.push_back(fault);
    return *this;
  }

  bool empty() const {
    return windows_.empty() && disk_faults_.empty() && link_faults_.empty();
  }
  const std::vector<FaultWindow>& windows() const { return windows_; }
  const std::vector<DiskFault>& disk_faults() const { return disk_faults_; }
  const std::vector<LinkFault>& link_faults() const { return link_faults_; }

  /// The aggregate effect active at `now_millis`: probabilities of
  /// overlapping windows add, outages OR, latency spikes add. Returns a
  /// zero-effect window when nothing is scheduled.
  FaultWindow EffectAt(int64_t now_millis) const {
    FaultWindow effect;
    for (const FaultWindow& w : windows_) {
      if (!w.Contains(now_millis)) continue;
      effect.full_outage = effect.full_outage || w.full_outage;
      effect.commit_unavailable += w.commit_unavailable;
      effect.grv_unavailable += w.grv_unavailable;
      effect.read_unavailable += w.read_unavailable;
      effect.transaction_too_old += w.transaction_too_old;
      effect.extra_latency_millis += w.extra_latency_millis;
    }
    return effect;
  }

  /// True when any window (of any effect) is active at `now_millis`.
  bool ActiveAt(int64_t now_millis) const {
    return std::any_of(windows_.begin(), windows_.end(),
                       [&](const FaultWindow& w) {
                         return w.Contains(now_millis);
                       });
  }

  /// End of the last scheduled window; 0 when the plan is empty. Chaos
  /// tests advance the clock past this before checking final invariants.
  int64_t EndMillis() const {
    int64_t end = 0;
    for (const FaultWindow& w : windows_) end = std::max(end, w.end_millis);
    return end;
  }

 private:
  std::vector<FaultWindow> windows_;
  std::vector<DiskFault> disk_faults_;
  std::vector<LinkFault> link_faults_;
};

}  // namespace quick::fdb

#endif  // QUICK_FDB_FAULT_PLAN_H_
