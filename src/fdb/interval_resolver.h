#ifndef QUICK_FDB_INTERVAL_RESOLVER_H_
#define QUICK_FDB_INTERVAL_RESOLVER_H_

#include <map>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "fdb/resolver.h"
#include "fdb/types.h"

namespace quick::fdb {

/// Interval-map Resolver: the default conflict-resolution structure of the
/// simulated cluster, modelled on FoundationDB's skip-list resolver.
///
/// Instead of a list of commit records, it keeps the key space partitioned
/// into disjoint, sorted intervals ("nodes"), each annotated with the
/// maximum commit version that last wrote it — a sorted interval map keyed
/// by node start. Because commit versions are assigned monotonically, a new
/// commit's write range simply replaces whatever nodes it overlaps (their
/// versions are always older), splitting boundary nodes as needed:
///
///   AddCommit:   O(log n + nodes replaced), amortized — every replaced
///                node was inserted once.
///   HasConflict: O(log n + nodes overlapping the read ranges), with an
///                early exit on the first node newer than the read version.
///   Prune:       incremental via a lazy min-heap of (version, node start)
///                entries — each heap entry is popped exactly once, so
///                pruning is O(log n) amortized per inserted node rather
///                than a full sweep.
///
/// The linear-scan equivalent lives in conflict_tracker.h; both give
/// identical verdicts for read versions >= the prune floor (differentially
/// tested in tests/fdb/resolver_differential_test.cc).
class IntervalResolver : public Resolver {
 public:
  void AddCommit(Version version, std::vector<KeyRange> write_ranges) override;

  bool HasConflict(const std::vector<KeyRange>& read_ranges,
                   Version read_version) const override;

  Version MinCheckableVersion() const override { return min_checkable_; }

  void Prune(Version version) override;

  size_t TrackedCount() const override { return nodes_.size(); }
  size_t NodeCount() const { return nodes_.size(); }

 private:
  struct Node {
    std::string end;  // half-open [map key, end)
    Version version;  // max commit version that wrote this interval
  };

  /// Inserts [begin, end) at `version`, splitting/replacing overlaps.
  void Insert(const std::string& begin, const std::string& end,
              Version version);

  /// Disjoint intervals keyed by start key, covering exactly the key space
  /// written within the retention window.
  std::map<std::string, Node> nodes_;

  /// Lazy prune index: (version, start key) pushed on every node insert.
  /// Entries whose node was since replaced or re-keyed are skipped at pop
  /// time (the version recorded in the node disambiguates).
  using HeapEntry = std::pair<Version, std::string>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      prune_heap_;

  Version min_checkable_ = 0;
};

}  // namespace quick::fdb

#endif  // QUICK_FDB_INTERVAL_RESOLVER_H_
