#include "fdb/wal.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/crc32.h"

namespace quick::fdb {

namespace {

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xFF));
  out->push_back(static_cast<char>((v >> 8) & 0xFF));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

uint64_t GetUint(std::string_view data, size_t offset, size_t width) {
  uint64_t v = 0;
  for (size_t i = 0; i < width; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data[offset + i]))
         << (8 * i);
  }
  return v;
}

void PutBytes(std::string* out, const std::string& bytes) {
  PutU32(out, static_cast<uint32_t>(bytes.size()));
  out->append(bytes);
}

/// Bounds-checked cursor over a record payload; any overrun flags `fail`.
struct Cursor {
  std::string_view data;
  size_t pos = 0;
  bool fail = false;

  uint64_t Uint(size_t width) {
    if (fail || pos + width > data.size()) {
      fail = true;
      return 0;
    }
    const uint64_t v = GetUint(data, pos, width);
    pos += width;
    return v;
  }

  std::string Bytes() {
    const uint64_t n = Uint(4);
    if (fail || pos + n > data.size()) {
      fail = true;
      return std::string();
    }
    std::string out(data.substr(pos, n));
    pos += n;
    return out;
  }
};

void EncodeMutation(std::string* out, const Mutation& m) {
  out->push_back(static_cast<char>(m.type));
  out->push_back(static_cast<char>(m.op));
  out->push_back(static_cast<char>(m.base_cleared ? 1 : 0));
  PutBytes(out, m.key);
  PutBytes(out, m.end_key);
  PutBytes(out, m.value);
}

bool DecodeMutation(Cursor* c, Mutation* m) {
  const uint64_t type = c->Uint(1);
  const uint64_t op = c->Uint(1);
  const uint64_t base_cleared = c->Uint(1);
  if (c->fail || type > static_cast<uint64_t>(
                            Mutation::Type::kSetVersionstampedValue) ||
      op > static_cast<uint64_t>(AtomicOp::kByteMax) || base_cleared > 1) {
    return false;
  }
  m->type = static_cast<Mutation::Type>(type);
  m->op = static_cast<AtomicOp>(op);
  m->base_cleared = base_cleared == 1;
  m->key = c->Bytes();
  m->end_key = c->Bytes();
  m->value = c->Bytes();
  return !c->fail;
}

bool IsClear(const Mutation& m) {
  return m.type == Mutation::Type::kClear ||
         m.type == Mutation::Type::kClearRange;
}

}  // namespace

std::string EncodeWalRecord(const WalBatchRef& batch, uint64_t prev_offset) {
  std::string payload;
  // The tombstone bit marks batches consisting purely of clears — a
  // delete-only record, per the kvslite header convention.
  bool tombstone_only = true;
  size_t mutation_count = 0;
  for (const auto& [order, mutations] : batch.members) {
    PutU16(&payload, order);
    PutU32(&payload, static_cast<uint32_t>(mutations->size()));
    for (const Mutation& m : *mutations) {
      EncodeMutation(&payload, m);
      ++mutation_count;
      tombstone_only = tombstone_only && IsClear(m);
    }
  }
  uint16_t flags = 0;
  if (mutation_count > 0 && tombstone_only) flags |= kWalFlagTombstoneOnly;

  std::string record;
  record.reserve(kWalHeaderSize + payload.size());
  PutU32(&record, kWalMagic);
  PutU32(&record, 0);  // crc placeholder
  PutU64(&record, prev_offset);
  PutU64(&record, static_cast<uint64_t>(batch.version));
  PutU32(&record, static_cast<uint32_t>(payload.size()));
  PutU16(&record, flags);
  PutU16(&record, static_cast<uint16_t>(batch.members.size()));
  record.append(payload);

  uint32_t crc = Crc32cInit();
  crc = Crc32cExtend(
      crc, std::string_view(record).substr(8, kWalHeaderSize - 8));
  crc = Crc32cExtend(crc, payload);
  crc = Crc32cFinish(crc);
  for (int i = 0; i < 4; ++i) {
    record[4 + i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  return record;
}

Result<WalBatch> DecodeWalRecord(std::string_view data, size_t* offset) {
  const size_t start = *offset;
  if (start + kWalHeaderSize > data.size()) {
    return Status::InvalidArgument("truncated record header");
  }
  if (GetUint(data, start, 4) != kWalMagic) {
    return Status::InvalidArgument("bad record magic");
  }
  const uint32_t crc = static_cast<uint32_t>(GetUint(data, start + 4, 4));
  const uint64_t version = GetUint(data, start + 16, 8);
  const uint32_t payload_size =
      static_cast<uint32_t>(GetUint(data, start + 24, 4));
  const uint16_t member_count =
      static_cast<uint16_t>(GetUint(data, start + 30, 2));
  if (start + kWalHeaderSize + payload_size > data.size()) {
    return Status::InvalidArgument("truncated record payload");
  }
  uint32_t actual = Crc32cInit();
  actual = Crc32cExtend(
      actual, data.substr(start + 8, kWalHeaderSize - 8));
  actual = Crc32cExtend(
      actual, data.substr(start + kWalHeaderSize, payload_size));
  actual = Crc32cFinish(actual);
  if (actual != crc) {
    return Status::InvalidArgument("record checksum mismatch");
  }

  WalBatch batch;
  batch.version = static_cast<Version>(version);
  Cursor c{data.substr(start + kWalHeaderSize, payload_size)};
  for (uint16_t i = 0; i < member_count; ++i) {
    WalBatch::Member member;
    member.batch_order = static_cast<uint16_t>(c.Uint(2));
    const uint64_t mutations = c.Uint(4);
    if (c.fail) return Status::InvalidArgument("malformed record payload");
    member.mutations.resize(mutations);
    for (uint64_t j = 0; j < mutations; ++j) {
      if (!DecodeMutation(&c, &member.mutations[j])) {
        return Status::InvalidArgument("malformed record mutation");
      }
    }
    batch.members.push_back(std::move(member));
  }
  if (c.pos != c.data.size()) {
    return Status::InvalidArgument("record payload overrun");
  }
  *offset = start + kWalHeaderSize + payload_size;
  return batch;
}

bool SegmentReader::Next(Record* out) {
  if (!status_.ok() || offset_ >= data_.size()) return false;
  const size_t start = offset_;
  size_t end = start;
  Result<WalBatch> batch = DecodeWalRecord(data_, &end);
  if (!batch.ok()) {
    status_ = batch.status();
    return false;
  }
  out->batch = *std::move(batch);
  out->offset = start;
  out->raw = data_.substr(start, end - start);
  offset_ = end;
  return true;
}

std::string WalSegmentName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "WAL-%016" PRIx64 ".log", seq);
  return buf;
}

bool ParseWalSegmentName(const std::string& name, uint64_t* seq) {
  uint64_t parsed = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "WAL-%16" SCNx64 ".log%n", &parsed,
                  &consumed) != 1 ||
      static_cast<size_t>(consumed) != name.size()) {
    return false;
  }
  *seq = parsed;
  return true;
}

Wal::Wal(std::string dir, uint64_t start_seq, FaultInjector* faults,
         Clock* clock,
         std::vector<std::pair<uint64_t, Version>> segment_max_versions)
    : dir_(std::move(dir)),
      faults_(faults),
      clock_(clock),
      coalesced_counter_(MetricsRegistry::Default()->GetCounter(
          "fdb.wal.fsyncs_coalesced")),
      seq_(start_seq) {
  for (const auto& [seq, max_version] : segment_max_versions) {
    closed_segments_[seq] = max_version;
  }
}

Status Wal::OpenSegmentLocked() {
  QUICK_RETURN_IF_ERROR(file_.Open(dir_ + "/" + WalSegmentName(seq_)));
  prev_offset_ = kNoPrevOffset;
  current_max_version_ = 0;
  current_segment_bytes_.store(0, std::memory_order_relaxed);
  segments_created_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Wal::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  return OpenSegmentLocked();
}

Result<uint64_t> Wal::AppendBatch(const WalBatchRef& batch) {
  if (dead()) return Status::Unavailable("wal is dead (crashed)");
  std::lock_guard<std::mutex> lock(mu_);
  std::string record = EncodeWalRecord(batch, prev_offset_);
  const uint64_t header_offset = static_cast<uint64_t>(file_.Size());

  std::optional<DiskFault> fault;
  if (faults_ != nullptr) {
    fault = faults_->NextDiskFault(DiskFault::Op::kWalAppend);
  }
  if (fault.has_value() && fault->kind == DiskFault::Kind::kTornWrite) {
    // Only a prefix hits the platter, then the process dies: append the
    // prefix (and let the kernel flush what it will) so a later recovery
    // finds exactly the torn tail this fault models.
    const int64_t limit = static_cast<int64_t>(record.size()) - 1;
    const int64_t n = fault->torn_bytes < 0
                          ? static_cast<int64_t>(record.size()) / 2
                          : std::clamp<int64_t>(fault->torn_bytes, 0, limit);
    (void)file_.Append(
        std::string_view(record).substr(0, static_cast<size_t>(n)));
    (void)file_.Sync();
    dead_.store(true, std::memory_order_release);
    sync_cv_.notify_all();
    return Status::Unavailable("injected torn write; wal crashed mid-append");
  }
  if (fault.has_value() &&
      fault->kind == DiskFault::Kind::kChecksumCorruption) {
    const size_t off = static_cast<size_t>(std::clamp<int64_t>(
        fault->corrupt_offset, 0, static_cast<int64_t>(record.size()) - 1));
    record[off] = static_cast<char>(record[off] ^ 1);
    (void)file_.Append(record);
    (void)file_.Sync();
    dead_.store(true, std::memory_order_release);
    sync_cv_.notify_all();
    return Status::Unavailable(
        "injected checksum corruption; wal crashed on append");
  }
  if (fault.has_value() && fault->kind == DiskFault::Kind::kFsyncStall) {
    // The stall is keyed to this append's ordinal but is a property of
    // the device: the sync that covers this record pays it.
    pending_stall_millis_ += fault->stall_millis;
  }

  Status st = file_.Append(record);
  if (!st.ok()) {
    dead_.store(true, std::memory_order_release);
    sync_cv_.notify_all();
    return st;
  }

  prev_offset_ = header_offset;
  current_max_version_ = std::max(current_max_version_, batch.version);
  current_segment_bytes_.fetch_add(static_cast<int64_t>(record.size()),
                                   std::memory_order_relaxed);
  appends_.fetch_add(1, std::memory_order_relaxed);
  appended_bytes_.fetch_add(static_cast<int64_t>(record.size()),
                            std::memory_order_relaxed);
  appended_end_ += record.size();
  return appended_end_;
}

Status Wal::SyncTo(uint64_t end) {
  std::unique_lock<std::mutex> lock(mu_);
  bool did_sync = false;
  for (;;) {
    if (dead_.load(std::memory_order_acquire)) {
      return Status::Unavailable("wal is dead (crashed)");
    }
    if (synced_end_ >= end) {
      if (!did_sync) {
        fsyncs_coalesced_.fetch_add(1, std::memory_order_relaxed);
        coalesced_counter_->Increment();
      }
      return Status::OK();
    }
    if (syncing_) {
      sync_cv_.wait(lock);
      continue;
    }
    syncing_ = true;
    const int64_t stall = pending_stall_millis_;
    pending_stall_millis_ = 0;
    if (stall > 0 && clock_ != nullptr) {
      // Injected device hang, paid with the lock released: appends pile
      // in behind the stalled sync and ride along under it.
      lock.unlock();
      clock_->SleepMillis(stall);
      lock.lock();
    }
    // Grab the target AFTER any stall and immediately before the fsync:
    // everything appended so far is covered by this one syscall.
    const uint64_t target = appended_end_;
    lock.unlock();
    Status st = file_.Sync();
    lock.lock();
    syncing_ = false;
    sync_cv_.notify_all();
    if (!st.ok()) {
      dead_.store(true, std::memory_order_release);
      return st;
    }
    synced_end_ = std::max(synced_end_, target);
    syncs_.fetch_add(1, std::memory_order_relaxed);
    did_sync = true;
  }
}

Status Wal::AppendBatchAndSync(const WalBatchRef& batch) {
  Result<uint64_t> end = AppendBatch(batch);
  if (!end.ok()) return end.status();
  return SyncTo(*end);
}

Status Wal::RollSegment(Version checkpoint_version) {
  if (dead()) return Status::Unavailable("wal is dead (crashed)");
  std::unique_lock<std::mutex> lock(mu_);
  // Wait out any fsync in flight, then cover the remaining appended bytes
  // ourselves: the segment must be fully durable before its fd closes,
  // and a SyncTo waiter must never fsync the next segment's fd expecting
  // it to cover bytes in this one.
  sync_cv_.wait(lock, [&] {
    return !syncing_ || dead_.load(std::memory_order_acquire);
  });
  if (dead_.load(std::memory_order_acquire)) {
    return Status::Unavailable("wal is dead (crashed)");
  }
  if (synced_end_ < appended_end_) {
    Status st = file_.Sync();
    if (!st.ok()) {
      dead_.store(true, std::memory_order_release);
      sync_cv_.notify_all();
      return st;
    }
    synced_end_ = appended_end_;
    syncs_.fetch_add(1, std::memory_order_relaxed);
    sync_cv_.notify_all();
  }
  closed_segments_[seq_] = current_max_version_;
  QUICK_RETURN_IF_ERROR(file_.Close());
  ++seq_;
  QUICK_RETURN_IF_ERROR(OpenSegmentLocked());
  for (auto it = closed_segments_.begin(); it != closed_segments_.end();) {
    if (it->second <= checkpoint_version) {
      (void)RemoveFile(dir_ + "/" + WalSegmentName(it->first));
      segments_deleted_.fetch_add(1, std::memory_order_relaxed);
      it = closed_segments_.erase(it);
    } else {
      ++it;
    }
  }
  (void)SyncDir(dir_);
  return Status::OK();
}

Wal::Stats Wal::GetStats() const {
  Stats out;
  out.appends = appends_.load(std::memory_order_relaxed);
  out.appended_bytes = appended_bytes_.load(std::memory_order_relaxed);
  out.syncs = syncs_.load(std::memory_order_relaxed);
  out.fsyncs_coalesced = fsyncs_coalesced_.load(std::memory_order_relaxed);
  out.segments_created = segments_created_.load(std::memory_order_relaxed);
  out.segments_deleted = segments_deleted_.load(std::memory_order_relaxed);
  return out;
}

Result<WalReplayResult> ReplayWalDir(
    const std::string& dir, Version from_version,
    const std::function<Status(const WalBatch&)>& apply) {
  WalReplayResult result;
  Result<std::vector<std::string>> names = ListDir(dir);
  if (!names.ok()) {
    if (names.status().IsNotFound()) return result;  // nothing to replay
    return names.status();
  }
  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const std::string& name : *names) {
    uint64_t seq = 0;
    if (ParseWalSegmentName(name, &seq)) segments.emplace_back(seq, name);
  }
  std::sort(segments.begin(), segments.end());

  for (size_t i = 0; i < segments.size(); ++i) {
    const auto& [seq, name] = segments[i];
    const std::string path = dir + "/" + name;
    result.max_segment_seq = std::max(result.max_segment_seq, seq);
    Result<std::string> data = ReadFile(path);
    if (!data.ok()) return data.status();
    ++result.segments_scanned;

    SegmentReader reader(*data);
    SegmentReader::Record record;
    Version segment_max = 0;
    while (reader.Next(&record)) {
      segment_max = std::max(segment_max, record.batch.version);
      if (record.batch.version <= from_version) {
        ++result.records_skipped;
      } else {
        QUICK_RETURN_IF_ERROR(apply(record.batch));
        ++result.records_applied;
        result.last_version =
            std::max(result.last_version, record.batch.version);
      }
    }
    if (!reader.status().ok()) {
      // Torn or corrupt suffix: chop it (and everything after it) so the
      // recovered prefix is exactly the durable prefix and a second
      // recovery converges to the same state.
      result.truncated = true;
      result.truncated_bytes +=
          static_cast<int64_t>(data->size() - reader.offset());
      QUICK_RETURN_IF_ERROR(
          TruncateFile(path, static_cast<int64_t>(reader.offset())));
      for (size_t j = i + 1; j < segments.size(); ++j) {
        const std::string later = dir + "/" + segments[j].second;
        result.max_segment_seq =
            std::max(result.max_segment_seq, segments[j].first);
        Result<int64_t> size = FileSize(later);
        if (size.ok()) result.truncated_bytes += *size;
        QUICK_RETURN_IF_ERROR(RemoveFile(later));
      }
    }
    result.segment_max_versions.emplace_back(seq, segment_max);
    if (result.truncated) break;
  }
  return result;
}

}  // namespace quick::fdb
