#ifndef QUICK_FDB_RETRY_H_
#define QUICK_FDB_RETRY_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "fdb/database.h"
#include "fdb/executor.h"
#include "fdb/future.h"
#include "fdb/transaction.h"

namespace quick::fdb {

inline constexpr int kDefaultMaxAttempts = 25;

/// Registry counter names for the retry loop. Every retry (txn reset and
/// re-executed after a retryable error) and every budget exhaustion is
/// counted, so chaos runs can tell "healthy" from "burning retry budget".
inline constexpr const char* kRetryCounterName = "fdb.txn.retries";
inline constexpr const char* kRetryExhaustedCounterName =
    "fdb.txn.retries_exhausted";

/// Canonical FoundationDB retry loop: runs `body` against a fresh
/// transaction, commits, and on retryable failures (conflicts, too-old,
/// unknown-result, transient unavailability) backs off and re-executes.
/// `body` has signature Status(Transaction&). Note kCommitUnknownResult is
/// retried, so `body` must be idempotent — every QuiCK transaction is, per
/// the paper's at-least-once contract (§2).
///
/// On budget exhaustion the returned kTimedOut status carries the last
/// underlying error (code + message), so a failure under fault injection
/// is diagnosable instead of a bare "budget exhausted".
template <typename Body>
Status RunTransaction(Database* db, const TransactionOptions& topts, Body&& body,
                      int max_attempts = kDefaultMaxAttempts) {
  static Counter* const retries =
      MetricsRegistry::Default()->GetCounter(kRetryCounterName);
  Transaction txn = db->CreateTransaction(topts);
  Status last;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Status st = body(txn);
    if (st.ok()) st = txn.Commit();
    if (st.ok()) return st;
    last = st;
    Status retry = txn.OnError(st);
    if (!retry.ok()) return retry;  // non-retryable: surface the error
    retries->Increment();
  }
  MetricsRegistry::Default()
      ->GetCounter(kRetryExhaustedCounterName)
      ->Increment();
  return Status::TimedOut(
      "transaction retry budget exhausted after " +
      std::to_string(max_attempts) + " attempts; last error: " +
      last.ToString());
}

template <typename Body>
Status RunTransaction(Database* db, Body&& body,
                      int max_attempts = kDefaultMaxAttempts) {
  return RunTransaction(db, TransactionOptions{}, std::forward<Body>(body),
                        max_attempts);
}

namespace internal {

/// Heap state for one async retry chain. Owns the transaction for the
/// chain's whole lifetime (commit acks may land on the cluster's pump
/// thread after the initiating frame has returned).
struct AsyncTxnState {
  AsyncTxnState(Database* db, const TransactionOptions& topts,
                std::function<Status(Transaction&)> body_fn, Executor* exec,
                CancelToken cancel_token, int max)
      : txn(db, topts),
        body(std::move(body_fn)),
        executor(exec),
        cancel(std::move(cancel_token)),
        max_attempts(max) {}

  Transaction txn;
  std::function<Status(Transaction&)> body;
  Executor* executor;
  CancelToken cancel;
  int max_attempts;
  int attempt = 0;
  Status last_error;
  Promise<Status> promise;
};

void AsyncTxnStep(const std::shared_ptr<AsyncTxnState>& s);

/// Resolves one attempt's outcome: success completes the chain, a
/// retryable error schedules a re-arm via Executor::PostAfter — the
/// non-blocking analogue of OnError's backoff sleep; no thread parks for
/// the delay — and anything else (or budget exhaustion) surfaces.
inline void AsyncTxnResolve(const std::shared_ptr<AsyncTxnState>& s,
                            const Status& st) {
  if (st.ok()) {
    s->promise.Set(Status::OK());
    return;
  }
  if (s->cancel.Cancelled()) {
    s->promise.Set(Status::Cancelled("async transaction chain cancelled"));
    return;
  }
  s->last_error = st;
  std::optional<int64_t> delay = s->txn.PrepareRetry(st);
  if (!delay.has_value()) {
    s->promise.Set(st);  // non-retryable: surface the error
    return;
  }
  if (++s->attempt >= s->max_attempts) {
    MetricsRegistry::Default()
        ->GetCounter(kRetryExhaustedCounterName)
        ->Increment();
    s->promise.Set(Status::TimedOut(
        "transaction retry budget exhausted after " +
        std::to_string(s->max_attempts) + " attempts; last error: " +
        s->last_error.ToString()));
    return;
  }
  MetricsRegistry::Default()->GetCounter(kRetryCounterName)->Increment();
  s->executor->PostAfter(*delay, [s] { AsyncTxnStep(s); });
}

inline void AsyncTxnStep(const std::shared_ptr<AsyncTxnState>& s) {
  if (s->cancel.Cancelled()) {
    s->promise.Set(Status::Cancelled("async transaction chain cancelled"));
    return;
  }
  const Status body_st = s->body(s->txn);
  if (!body_st.ok()) {
    AsyncTxnResolve(s, body_st);
    return;
  }
  // CommitAsync's future may complete inline (validation error, read-only
  // no-op) or on the cluster's pump thread; either way the resolution is
  // re-posted onto the executor so retries and continuations never run on
  // — and never block — the thread that drains the commit pipeline.
  s->txn.CommitAsync().OnReady([s](const Status& st) {
    s->executor->Post([s, st] { AsyncTxnResolve(s, st); });
  });
}

}  // namespace internal

/// Asynchronous RunTransaction: the same retry contract (retryable errors
/// re-execute an idempotent `body` against a reset transaction, budget
/// exhaustion surfaces kTimedOut carrying the last error) but no thread is
/// owned while a commit is in flight and no thread sleeps during backoff —
/// the chain re-arms itself with Executor::PostAfter. `body` runs on
/// `executor` threads and must capture state that outlives the chain.
/// Cancelling `cancel` stops the chain at the next step boundary with
/// kCancelled (the future always completes — callers draining an in-flight
/// window can count on it).
inline Future<Status> RunTransactionAsync(
    Database* db, const TransactionOptions& topts,
    std::function<Status(Transaction&)> body, Executor* executor,
    CancelToken cancel = {}, int max_attempts = kDefaultMaxAttempts) {
  auto s = std::make_shared<internal::AsyncTxnState>(
      db, topts, std::move(body), executor, std::move(cancel), max_attempts);
  Future<Status> future = s->promise.GetFuture();
  executor->Post([s] { internal::AsyncTxnStep(s); });
  return future;
}

inline Future<Status> RunTransactionAsync(
    Database* db, std::function<Status(Transaction&)> body, Executor* executor,
    CancelToken cancel = {}, int max_attempts = kDefaultMaxAttempts) {
  return RunTransactionAsync(db, TransactionOptions{}, std::move(body),
                             executor, std::move(cancel), max_attempts);
}

/// Runs `body` and returns a value produced inside the transaction.
/// `body` has signature Status(Transaction&, T*).
template <typename T, typename Body>
Result<T> RunTransactionResult(Database* db, const TransactionOptions& topts,
                               Body&& body,
                               int max_attempts = kDefaultMaxAttempts) {
  T out{};
  Status st = RunTransaction(
      db, topts, [&](Transaction& txn) { return body(txn, &out); },
      max_attempts);
  if (!st.ok()) return st;
  return out;
}

}  // namespace quick::fdb

#endif  // QUICK_FDB_RETRY_H_
