#ifndef QUICK_FDB_RETRY_H_
#define QUICK_FDB_RETRY_H_

#include <string>
#include <utility>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "fdb/database.h"
#include "fdb/transaction.h"

namespace quick::fdb {

inline constexpr int kDefaultMaxAttempts = 25;

/// Registry counter names for the retry loop. Every retry (txn reset and
/// re-executed after a retryable error) and every budget exhaustion is
/// counted, so chaos runs can tell "healthy" from "burning retry budget".
inline constexpr const char* kRetryCounterName = "fdb.txn.retries";
inline constexpr const char* kRetryExhaustedCounterName =
    "fdb.txn.retries_exhausted";

/// Canonical FoundationDB retry loop: runs `body` against a fresh
/// transaction, commits, and on retryable failures (conflicts, too-old,
/// unknown-result, transient unavailability) backs off and re-executes.
/// `body` has signature Status(Transaction&). Note kCommitUnknownResult is
/// retried, so `body` must be idempotent — every QuiCK transaction is, per
/// the paper's at-least-once contract (§2).
///
/// On budget exhaustion the returned kTimedOut status carries the last
/// underlying error (code + message), so a failure under fault injection
/// is diagnosable instead of a bare "budget exhausted".
template <typename Body>
Status RunTransaction(Database* db, const TransactionOptions& topts, Body&& body,
                      int max_attempts = kDefaultMaxAttempts) {
  static Counter* const retries =
      MetricsRegistry::Default()->GetCounter(kRetryCounterName);
  Transaction txn = db->CreateTransaction(topts);
  Status last;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Status st = body(txn);
    if (st.ok()) st = txn.Commit();
    if (st.ok()) return st;
    last = st;
    Status retry = txn.OnError(st);
    if (!retry.ok()) return retry;  // non-retryable: surface the error
    retries->Increment();
  }
  MetricsRegistry::Default()
      ->GetCounter(kRetryExhaustedCounterName)
      ->Increment();
  return Status::TimedOut(
      "transaction retry budget exhausted after " +
      std::to_string(max_attempts) + " attempts; last error: " +
      last.ToString());
}

template <typename Body>
Status RunTransaction(Database* db, Body&& body,
                      int max_attempts = kDefaultMaxAttempts) {
  return RunTransaction(db, TransactionOptions{}, std::forward<Body>(body),
                        max_attempts);
}

/// Runs `body` and returns a value produced inside the transaction.
/// `body` has signature Status(Transaction&, T*).
template <typename T, typename Body>
Result<T> RunTransactionResult(Database* db, const TransactionOptions& topts,
                               Body&& body,
                               int max_attempts = kDefaultMaxAttempts) {
  T out{};
  Status st = RunTransaction(
      db, topts, [&](Transaction& txn) { return body(txn, &out); },
      max_attempts);
  if (!st.ok()) return st;
  return out;
}

}  // namespace quick::fdb

#endif  // QUICK_FDB_RETRY_H_
