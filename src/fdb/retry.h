#ifndef QUICK_FDB_RETRY_H_
#define QUICK_FDB_RETRY_H_

#include <utility>

#include "common/result.h"
#include "common/status.h"
#include "fdb/database.h"
#include "fdb/transaction.h"

namespace quick::fdb {

inline constexpr int kDefaultMaxAttempts = 25;

/// Canonical FoundationDB retry loop: runs `body` against a fresh
/// transaction, commits, and on retryable failures (conflicts, too-old,
/// unknown-result, transient unavailability) backs off and re-executes.
/// `body` has signature Status(Transaction&). Note kCommitUnknownResult is
/// retried, so `body` must be idempotent — every QuiCK transaction is, per
/// the paper's at-least-once contract (§2).
template <typename Body>
Status RunTransaction(Database* db, const TransactionOptions& topts, Body&& body,
                      int max_attempts = kDefaultMaxAttempts) {
  Transaction txn = db->CreateTransaction(topts);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    Status st = body(txn);
    if (st.ok()) st = txn.Commit();
    if (st.ok()) return st;
    Status retry = txn.OnError(st);
    if (!retry.ok()) return retry;  // non-retryable: surface the error
  }
  return Status::TimedOut("transaction retry budget exhausted");
}

template <typename Body>
Status RunTransaction(Database* db, Body&& body,
                      int max_attempts = kDefaultMaxAttempts) {
  return RunTransaction(db, TransactionOptions{}, std::forward<Body>(body),
                        max_attempts);
}

/// Runs `body` and returns a value produced inside the transaction.
/// `body` has signature Status(Transaction&, T*).
template <typename T, typename Body>
Result<T> RunTransactionResult(Database* db, const TransactionOptions& topts,
                               Body&& body,
                               int max_attempts = kDefaultMaxAttempts) {
  T out{};
  Status st = RunTransaction(
      db, topts, [&](Transaction& txn) { return body(txn, &out); },
      max_attempts);
  if (!st.ok()) return st;
  return out;
}

}  // namespace quick::fdb

#endif  // QUICK_FDB_RETRY_H_
