#ifndef QUICK_FDB_WAL_H_
#define QUICK_FDB_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/file_io.h"
#include "common/metrics.h"
#include "common/result.h"
#include "fdb/fault_injector.h"
#include "fdb/types.h"
#include "fdb/versioned_store.h"

namespace quick::fdb {

/// Write-ahead log behind the group-commit pipeline (DESIGN.md §9).
///
/// The baton-passing commit leader already serializes each batch, so the
/// WAL's unit of durability is one batch: all accepted members of a commit
/// batch — their mutations and intra-batch orders — are framed as a single
/// log record at the batch's commit version, appended and fsynced before
/// any member's commit is acknowledged (invariant 15: no ack before
/// fsync).
///
/// Record framing (kvslite-style: prev-pointer, sizes, tombstone bit, plus
/// CRC32C and the commit version; fixed 32-byte header):
///
///   u32 magic        'QWAL'
///   u32 crc          CRC-32C of header-after-this-field + payload
///   u64 prev_offset  file offset of the previous record's header in this
///                    segment (kNoPrevOffset for the segment's first)
///   u64 version      the batch's commit version
///   u32 payload_size
///   u16 flags        bit 0: the batch contains only clears (tombstone-only)
///   u16 member_count accepted members framed in the payload
///
/// The log is segmented: one `WAL-<seq>.log` per checkpoint epoch. A
/// checkpoint rolls to a fresh segment and deletes every closed segment
/// whose last record is at or below the checkpoint version; recovery
/// replays the surviving segments in sequence order.
///
/// Scheduled disk faults (fdb::DiskFault, threaded through the cluster's
/// FaultInjector) fire inside Append: a torn write persists only a prefix
/// of the record, a checksum corruption flips a byte on the way down, an
/// fsync stall sleeps on the cluster Clock. Torn writes and corruptions
/// are fatal — the WAL goes dead, modelling the process dying mid-write;
/// the Database turns a dead WAL into kUnavailable everywhere until a new
/// Database recovers from the directory.

inline constexpr uint32_t kWalMagic = 0x5157414Cu;  // 'QWAL'
inline constexpr uint64_t kNoPrevOffset = ~0ull;
inline constexpr size_t kWalHeaderSize = 32;
inline constexpr uint16_t kWalFlagTombstoneOnly = 1u << 0;

/// One commit batch as framed in (or decoded from) a WAL record.
struct WalBatch {
  struct Member {
    uint16_t batch_order = 0;
    std::vector<Mutation> mutations;
  };
  Version version = 0;
  std::vector<Member> members;
};

/// Zero-copy view of a batch being appended: mutation vectors stay owned
/// by the pending commits while the leader frames the record.
struct WalBatchRef {
  Version version = 0;
  std::vector<std::pair<uint16_t, const std::vector<Mutation>*>> members;
};

/// Serializes `batch` into one framed record (header + payload), with
/// `prev_offset` stitched into the header.
std::string EncodeWalRecord(const WalBatchRef& batch, uint64_t prev_offset);

/// Decodes the record starting at `data[offset]`. Returns the decoded
/// batch and advances `*offset` past it; kInvalidArgument when the bytes
/// at `offset` do not form a complete, CRC-valid record (the torn/corrupt
/// suffix signal recovery truncates on).
Result<WalBatch> DecodeWalRecord(std::string_view data, size_t* offset);

/// Segment file name for `seq` ("WAL-%016llx.log"); parse is the inverse.
std::string WalSegmentName(uint64_t seq);
bool ParseWalSegmentName(const std::string& name, uint64_t* seq);

/// Sequential decoder over one WAL segment's bytes: the single framing
/// reader shared by recovery replay (ReplayWalDir) and the replication
/// log shipper. Next() yields each CRC-valid record together with its raw
/// framed bytes (what the shipper forwards verbatim) and header offset;
/// decoding stops at the first invalid record — a torn tail, checksum
/// mismatch, or bad magic — which status() reports and offset() locates.
class SegmentReader {
 public:
  struct Record {
    WalBatch batch;
    /// Header offset within the segment bytes.
    uint64_t offset = 0;
    /// The complete framed record (header + payload), CRC-valid as-is.
    std::string_view raw;
  };

  explicit SegmentReader(std::string_view data) : data_(data) {}

  /// Decodes the next record into `out`. False at a clean end of data or
  /// at the first invalid record; status() distinguishes the two.
  bool Next(Record* out);

  /// OK while every byte so far framed cleanly (including a clean end);
  /// otherwise the decode error of the record that stopped the reader.
  const Status& status() const { return status_; }

  /// Offset of the first undecoded byte (the invalid record's start after
  /// a failed Next — the truncation point recovery chops at).
  size_t offset() const { return offset_; }

 private:
  std::string_view data_;
  size_t offset_ = 0;
  Status status_ = Status::OK();
};

class Wal {
 public:
  struct Stats {
    int64_t appends = 0;
    int64_t appended_bytes = 0;
    int64_t syncs = 0;
    /// SyncTo calls satisfied by another caller's fsync (group fsync
    /// coalescing: one fsync covers every batch appended behind it).
    int64_t fsyncs_coalesced = 0;
    int64_t segments_created = 0;
    int64_t segments_deleted = 0;
  };

  /// `dir` must exist. `start_seq` must exceed every existing segment's
  /// sequence number (recovery reports the max it saw).
  /// `segment_max_versions` carries the last version in each surviving
  /// pre-existing segment, so checkpoints can retire them.
  Wal(std::string dir, uint64_t start_seq, FaultInjector* faults,
      Clock* clock,
      std::vector<std::pair<uint64_t, Version>> segment_max_versions = {});

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Opens the initial segment.
  Status Open();

  /// Appends `batch` as one framed record WITHOUT forcing it to stable
  /// storage; returns the log end position to hand to SyncTo. Callers are
  /// serialized by the group-commit baton, so records land in version
  /// order. Fatal injected faults (torn write, corruption) fire here and
  /// mark the WAL dead; an injected fsync stall is stashed for the sync
  /// that covers this append.
  Result<uint64_t> AppendBatch(const WalBatchRef& batch);

  /// Blocks until every byte appended at or below `end` is fsynced — the
  /// durability point of the batch. One fsync covers all batches queued
  /// behind it: the syncing caller grabs the log end immediately before
  /// the fsync, so concurrent appends ride along, and a caller whose
  /// `end` is already covered returns without issuing its own fsync
  /// (counted in Stats::fsyncs_coalesced and the
  /// `fdb.wal.fsyncs_coalesced` metric). Non-OK means the WAL died; the
  /// batch must NOT be acknowledged.
  Status SyncTo(uint64_t end);

  /// AppendBatch + SyncTo in one call (the unpipelined path; tests and
  /// single-writer callers).
  Status AppendBatchAndSync(const WalBatchRef& batch);

  /// Starts a new segment and deletes every closed segment whose records
  /// all sit at or below `checkpoint_version` (their state is covered by
  /// the checkpoint). Called by Database::Checkpoint after the checkpoint
  /// file is durable.
  Status RollSegment(Version checkpoint_version);

  /// True after a fatal disk fault or I/O error: the simulated process
  /// died mid-write. No further appends are accepted.
  bool dead() const { return dead_.load(std::memory_order_acquire); }

  /// Bytes appended to the current segment since the last roll (the
  /// checkpoint auto-trigger reads this).
  int64_t CurrentSegmentBytes() const {
    return current_segment_bytes_.load(std::memory_order_relaxed);
  }

  Stats GetStats() const;

 private:
  Status OpenSegmentLocked();

  const std::string dir_;
  FaultInjector* const faults_;
  Clock* const clock_;
  Counter* const coalesced_counter_;

  mutable std::mutex mu_;
  AppendFile file_;
  uint64_t seq_;
  uint64_t prev_offset_ = kNoPrevOffset;
  Version current_max_version_ = 0;
  /// Closed segments (seq -> last version framed in them).
  std::map<uint64_t, Version> closed_segments_;

  /// Group-fsync coordination (guarded by mu_): appended/synced ends are
  /// cumulative over the WAL's lifetime so they stay monotonic across
  /// segment rolls; `syncing_` marks the one fsync in flight (issued with
  /// mu_ released so appends pipeline behind it).
  std::condition_variable sync_cv_;
  bool syncing_ = false;
  uint64_t appended_end_ = 0;
  uint64_t synced_end_ = 0;
  /// Injected fsync-stall milliseconds consumed at append time, paid by
  /// the next sync (so stalled batches coalesce deterministically).
  int64_t pending_stall_millis_ = 0;

  std::atomic<bool> dead_{false};
  std::atomic<int64_t> current_segment_bytes_{0};

  std::atomic<int64_t> appends_{0};
  std::atomic<int64_t> appended_bytes_{0};
  std::atomic<int64_t> syncs_{0};
  std::atomic<int64_t> fsyncs_coalesced_{0};
  std::atomic<int64_t> segments_created_{0};
  std::atomic<int64_t> segments_deleted_{0};
};

/// Per-segment outcome of a replay pass (diagnostics + Wal seeding).
struct WalReplayResult {
  /// Highest version applied (0 when nothing was replayed; callers max
  /// this with the checkpoint version for the exact durable version).
  Version last_version = 0;
  int64_t records_applied = 0;
  int64_t records_skipped = 0;  // at or below from_version (already in ckpt)
  int64_t segments_scanned = 0;
  /// Bytes chopped off the first invalid record onward (torn/corrupt
  /// suffix), plus whole later segments deleted with it.
  int64_t truncated_bytes = 0;
  bool truncated = false;
  uint64_t max_segment_seq = 0;
  /// Last version per surviving segment, for Wal retirement bookkeeping.
  std::vector<std::pair<uint64_t, Version>> segment_max_versions;
};

/// Replays every WAL segment under `dir` in sequence order, invoking
/// `apply` for each CRC-valid record with version > `from_version`
/// (records at or below it are already covered by the checkpoint and are
/// skipped — replay is idempotent across repeated recoveries).
///
/// The first invalid record — torn tail, checksum mismatch, bad magic —
/// ends the replay: the segment is truncated at that offset and any later
/// segments are deleted, so the recovered prefix is exactly the durable
/// prefix and a re-recovery sees the same state. A missing directory
/// replays nothing.
Result<WalReplayResult> ReplayWalDir(
    const std::string& dir, Version from_version,
    const std::function<Status(const WalBatch&)>& apply);

}  // namespace quick::fdb

#endif  // QUICK_FDB_WAL_H_
