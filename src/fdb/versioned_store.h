#ifndef QUICK_FDB_VERSIONED_STORE_H_
#define QUICK_FDB_VERSIONED_STORE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "fdb/types.h"

namespace quick::fdb {

/// One buffered transaction mutation, resolved against storage at apply
/// time (atomic ops read their base value only when the commit applies, so
/// they never create read conflicts).
struct Mutation {
  enum class Type {
    kSet,
    kClear,
    kClearRange,
    kAtomic,
    /// Key = key ("prefix") + 10-byte versionstamp + end_key ("suffix"),
    /// with the stamp filled in from the commit version at apply time
    /// (FoundationDB's SET_VERSIONSTAMPED_KEY).
    kSetVersionstampedKey,
    /// Value = value ("prefix") + 10-byte versionstamp.
    kSetVersionstampedValue,
  };

  Type type = Type::kSet;
  std::string key;      // begin key for kClearRange; prefix for vs-key
  std::string end_key;  // kClearRange end; suffix for vs-key
  std::string value;    // kSet value, atomic operand, or vs-value prefix
  AtomicOp op = AtomicOp::kAdd;
  /// For kAtomic: the base value was cleared earlier in the same
  /// transaction, so the op applies to "missing" regardless of storage.
  bool base_cleared = false;
};

/// The 10-byte versionstamp for a commit version: 8 bytes big-endian
/// version + 2 bytes batch order (always 0 here — the simulator commits one
/// transaction per version). Lexicographic order == commit order.
std::string VersionstampFor(Version version);

/// Applies an atomic operation to an optional existing value, FDB-style
/// (missing values are treated as zero / empty as appropriate).
std::string ApplyAtomicOp(AtomicOp op, const std::optional<std::string>& base,
                          const std::string& operand);

/// MVCC storage for one cluster: every key maps to a version chain and
/// reads are served at an arbitrary retained version. NOT thread-safe; the
/// Database serializes access (shared lock for reads, exclusive for
/// commits).
class VersionedStore {
 public:
  /// Applies a committed transaction's mutations at `version` (must exceed
  /// every previously applied version).
  void Apply(const std::vector<Mutation>& mutations, Version version);

  /// Value of `key` as of `version`; nullopt when absent or cleared.
  std::optional<std::string> Get(const std::string& key, Version version) const;

  /// Key-value pairs in [range.begin, range.end) as of `version`, in key
  /// order (reverse order when options.reverse), up to options.limit.
  std::vector<KeyValue> GetRange(const KeyRange& range, Version version,
                                 const RangeOptions& options = {}) const;

  /// Drops version-chain entries no longer visible to any read version
  /// >= `min_version`. Reads at older versions become incorrect; the
  /// Database enforces the floor before reading.
  void Prune(Version min_version);

  /// Number of live keys at the latest version (for tests/stats).
  size_t LiveKeyCount() const;

  /// Total version-chain entries (for prune tests).
  size_t TotalEntryCount() const;

 private:
  struct Entry {
    Version version;
    std::optional<std::string> value;  // nullopt == tombstone
  };
  using Chain = std::vector<Entry>;

  const std::optional<std::string>* GetInChain(const Chain& chain,
                                               Version version) const;

  std::map<std::string, Chain> data_;
};

}  // namespace quick::fdb

#endif  // QUICK_FDB_VERSIONED_STORE_H_
