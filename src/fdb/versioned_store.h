#ifndef QUICK_FDB_VERSIONED_STORE_H_
#define QUICK_FDB_VERSIONED_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "fdb/types.h"

namespace quick::fdb {

/// One buffered transaction mutation, resolved against storage at apply
/// time (atomic ops read their base value only when the commit applies, so
/// they never create read conflicts).
struct Mutation {
  enum class Type {
    kSet,
    kClear,
    kClearRange,
    kAtomic,
    /// Key = key ("prefix") + 10-byte versionstamp + end_key ("suffix"),
    /// with the stamp filled in from the commit version at apply time
    /// (FoundationDB's SET_VERSIONSTAMPED_KEY).
    kSetVersionstampedKey,
    /// Value = value ("prefix") + 10-byte versionstamp.
    kSetVersionstampedValue,
  };

  Type type = Type::kSet;
  std::string key;      // begin key for kClearRange; prefix for vs-key
  std::string end_key;  // kClearRange end; suffix for vs-key
  std::string value;    // kSet value, atomic operand, or vs-value prefix
  AtomicOp op = AtomicOp::kAdd;
  /// For kAtomic: the base value was cleared earlier in the same
  /// transaction, so the op applies to "missing" regardless of storage.
  bool base_cleared = false;
};

/// The 10-byte versionstamp of a commit: 8 bytes big-endian version + 2
/// bytes big-endian batch order. With group commit the batch order
/// distinguishes the transactions that share one storage version (in their
/// intra-batch commit order); a batch of one gets order 0. Lexicographic
/// order == commit order, within and across batches.
std::string VersionstampFor(Version version, uint16_t batch_order = 0);

/// Applies an atomic operation to an optional existing value, FDB-style
/// (missing values are treated as zero / empty as appropriate).
std::string ApplyAtomicOp(AtomicOp op, const std::optional<std::string>& base,
                          const std::string& operand);

/// Streaming range-read sink: receives each live key-value pair in scan
/// order; return false to stop the scan early. Views are only valid for
/// the duration of the call.
using RangeSink =
    std::function<bool(std::string_view key, std::string_view value)>;

/// MVCC storage for one cluster: every key maps to a version chain and
/// reads are served at an arbitrary retained version. NOT thread-safe; the
/// Database serializes access (shared lock for reads, exclusive for
/// commits).
class VersionedStore {
 public:
  /// Applies a committed transaction's mutations at `version` (must be >=
  /// every previously applied version; members of one commit batch share a
  /// version and are applied in batch order, later members superseding
  /// earlier ones). `batch_order` feeds the versionstamp of
  /// versionstamped mutations.
  void Apply(const std::vector<Mutation>& mutations, Version version,
             uint16_t batch_order = 0);

  /// Value of `key` as of `version`; nullopt when absent or cleared.
  std::optional<std::string> Get(const std::string& key, Version version) const;

  /// Streams key-value pairs in [range.begin, range.end) as of `version`
  /// to `sink`, in key order (reverse order when options.reverse), up to
  /// options.limit. This is the copy-light hot path: values are handed out
  /// as views into the version chains, with no intermediate
  /// materialization, and limit/reverse are honored during iteration.
  void ScanRange(const KeyRange& range, Version version,
                 const RangeOptions& options, const RangeSink& sink) const;

  /// Key-value pairs in [range.begin, range.end) as of `version`
  /// (materializing convenience wrapper over ScanRange).
  std::vector<KeyValue> GetRange(const KeyRange& range, Version version,
                                 const RangeOptions& options = {}) const;

  /// Drops version-chain entries no longer visible to any read version
  /// >= `min_version`, and erases keys whose chain is dead (a lone
  /// tombstone — invisible at every version) so sustained write-then-clear
  /// churn cannot grow the key map without bound. Reads at older versions
  /// become incorrect; the Database enforces the floor before reading.
  void Prune(Version min_version);

  /// Bulk-loads one checkpointed key-value pair as a single-entry chain at
  /// `version`. Recovery only: the store must not contain `key` yet, and
  /// checkpoint entries arrive in key order.
  void LoadSnapshotEntry(std::string key, Version version, std::string value);

  /// Copies live key-value pairs as of `version` into `out`, visiting at
  /// most `max_keys` keys starting after `*resume_key` (empty = from the
  /// start). Returns true when the key space is exhausted; otherwise
  /// updates `*resume_key` so the next call continues where this one
  /// stopped. The checkpoint writer streams the store through this in
  /// chunks so commits interleave with the snapshot.
  bool CollectSnapshotChunk(Version version, std::string* resume_key,
                            size_t max_keys, std::vector<KeyValue>* out) const;

  /// Number of live keys at the latest version (for tests/stats).
  size_t LiveKeyCount() const;

  /// Total version-chain entries (for prune tests).
  size_t TotalEntryCount() const;

 private:
  struct Entry {
    Version version;
    std::optional<std::string> value;  // nullopt == tombstone
  };
  using Chain = std::vector<Entry>;

  const std::optional<std::string>* GetInChain(const Chain& chain,
                                               Version version) const;

  std::map<std::string, Chain> data_;
};

}  // namespace quick::fdb

#endif  // QUICK_FDB_VERSIONED_STORE_H_
