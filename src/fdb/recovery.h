#ifndef QUICK_FDB_RECOVERY_H_
#define QUICK_FDB_RECOVERY_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "fdb/types.h"
#include "fdb/versioned_store.h"

namespace quick::fdb {

/// Outcome of a cold-start recovery pass (DESIGN.md §9): what was loaded,
/// what was replayed, and what the recovered Database must seed its
/// version counters and Wal with.
struct RecoveryInfo {
  /// False when the directory held neither a checkpoint nor any WAL
  /// segment (a genuinely fresh store).
  bool recovered = false;
  /// Version of the checkpoint loaded into the store (0 = none).
  Version checkpoint_version = 0;
  /// The exact last durable commit version: max(checkpoint version,
  /// highest replayed WAL version). The Database resumes allocating from
  /// the next version (invariant 14).
  Version last_durable_version = 0;
  int64_t replayed_records = 0;
  /// Records at or below the checkpoint version, skipped for idempotence.
  int64_t skipped_records = 0;
  /// Bytes removed truncating the torn/corrupt log suffix.
  int64_t truncated_bytes = 0;
  bool truncated = false;
  /// Checkpoint files that failed validation and were skipped.
  int64_t invalid_checkpoints = 0;
  /// First unused WAL segment sequence number (max seen + 1).
  uint64_t next_wal_seq = 1;
  /// Last version per surviving WAL segment, handed to the Wal so a later
  /// checkpoint can retire them.
  std::vector<std::pair<uint64_t, Version>> segment_max_versions;
};

/// Rebuilds `store` from the durable state under `dir`: loads the newest
/// valid checkpoint (falling back past corrupt ones), replays the WAL tail
/// above it in sequence order, and truncates the first torn or corrupt
/// record onward so the recovered state is exactly the durable prefix.
/// `store` must be empty. Safe to re-run: a second recovery over the same
/// directory reproduces the same state.
Result<RecoveryInfo> RecoverVersionedStore(const std::string& dir,
                                           VersionedStore* store);

}  // namespace quick::fdb

#endif  // QUICK_FDB_RECOVERY_H_
