#ifndef QUICK_FDB_CHECKPOINT_H_
#define QUICK_FDB_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "fdb/types.h"

namespace quick::fdb {

/// Checkpoint files snapshot the VersionedStore's live contents at a
/// single durable version, so recovery replays only the log tail above it
/// (DESIGN.md §9). Format:
///
///   header:  u32 magic 'QCKP' | u32 format (1) | u64 version | u64 keys
///   records: (u32 key_size | u32 value_size | key | value) * keys
///   footer:  u32 crc    CRC-32C of header + records
///
/// A checkpoint is written to a temp file, fsynced, and renamed into
/// place (`CHECKPOINT-<version>.ckpt`), so a crash mid-write leaves at
/// worst a stray temp file; a checkpoint either exists whole or not at
/// all. Validation re-walks the whole file against the footer CRC —
/// recovery discards invalid checkpoints and falls back to the newest
/// valid one (or an empty store plus full log replay).

inline constexpr uint32_t kCheckpointMagic = 0x51434B50u;  // 'QCKP'
inline constexpr uint32_t kCheckpointFormat = 1;

std::string CheckpointFileName(Version version);
bool ParseCheckpointFileName(const std::string& name, Version* version);

/// Streams key-value pairs (in key order) into the serialized checkpoint
/// blob; Finish() seals the header counts and footer CRC.
class CheckpointBuilder {
 public:
  explicit CheckpointBuilder(Version version);

  void Add(std::string_view key, std::string_view value);

  /// Returns the complete serialized checkpoint. The builder is spent.
  std::string Finish();

  int64_t key_count() const { return key_count_; }

 private:
  std::string body_;
  int64_t key_count_ = 0;
};

struct LoadedCheckpoint {
  Version version = 0;
  std::vector<KeyValue> entries;
};

/// Parses and validates a serialized checkpoint (magic, format, counts,
/// footer CRC); kInvalidArgument on any mismatch.
Result<LoadedCheckpoint> ParseCheckpoint(std::string_view data);

/// Reads and validates the checkpoint file at `path`.
Result<LoadedCheckpoint> LoadCheckpointFile(const std::string& path);

struct CheckpointScan {
  /// 0 when no valid checkpoint exists under the directory.
  Version version = 0;
  std::string path;
  /// Checkpoint files that failed validation and were skipped (newest
  /// first is tried first, so bit rot on the latest falls back).
  int64_t invalid_skipped = 0;
};

/// Finds the newest checkpoint under `dir` that validates, trying newer
/// versions first. A missing directory scans as "none".
Result<CheckpointScan> FindLatestValidCheckpoint(const std::string& dir);

/// Deletes checkpoint files under `dir` older than `keep_version`, and
/// stray temp files from interrupted writes.
void RetireOldCheckpoints(const std::string& dir, Version keep_version);

}  // namespace quick::fdb

#endif  // QUICK_FDB_CHECKPOINT_H_
