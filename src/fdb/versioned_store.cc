#include "fdb/versioned_store.h"

#include <algorithm>

namespace quick::fdb {

namespace {

uint64_t DecodeLEPadded(const std::string& s) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8 && i < s.size(); ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(s[i])) << (8 * i);
  }
  return v;
}

std::string EncodeLE(uint64_t v, size_t width) {
  std::string out(width, '\0');
  for (size_t i = 0; i < width; ++i) {
    out[i] = static_cast<char>(v & 0xFF);
    v >>= 8;
  }
  return out;
}

}  // namespace

std::string ApplyAtomicOp(AtomicOp op, const std::optional<std::string>& base,
                          const std::string& operand) {
  switch (op) {
    case AtomicOp::kAdd: {
      const uint64_t a = base.has_value() ? DecodeLEPadded(*base) : 0;
      const uint64_t b = DecodeLEPadded(operand);
      // Result width follows the operand, as in FDB.
      return EncodeLE(a + b, std::min<size_t>(operand.size(), 8));
    }
    case AtomicOp::kMin: {
      if (!base.has_value()) {
        return EncodeLE(0, std::min<size_t>(operand.size(), 8));
      }
      const uint64_t a = DecodeLEPadded(*base);
      const uint64_t b = DecodeLEPadded(operand);
      return EncodeLE(std::min(a, b), std::min<size_t>(operand.size(), 8));
    }
    case AtomicOp::kMax: {
      const uint64_t a = base.has_value() ? DecodeLEPadded(*base) : 0;
      const uint64_t b = DecodeLEPadded(operand);
      return EncodeLE(std::max(a, b), std::min<size_t>(operand.size(), 8));
    }
    case AtomicOp::kByteMin:
      if (!base.has_value()) return operand;
      return std::min(*base, operand);
    case AtomicOp::kByteMax:
      if (!base.has_value()) return operand;
      return std::max(*base, operand);
  }
  return operand;
}

void VersionedStore::Apply(const std::vector<Mutation>& mutations,
                           Version version, uint16_t batch_order) {
  for (const Mutation& m : mutations) {
    switch (m.type) {
      case Mutation::Type::kSet:
        data_[m.key].push_back({version, m.value});
        break;
      case Mutation::Type::kClear: {
        auto it = data_.find(m.key);
        if (it != data_.end()) {
          it->second.push_back({version, std::nullopt});
        }
        break;
      }
      case Mutation::Type::kClearRange: {
        for (auto it = data_.lower_bound(m.key);
             it != data_.end() && it->first < m.end_key; ++it) {
          // Only append a tombstone when the key is currently live to keep
          // chains short.
          if (!it->second.empty() && it->second.back().value.has_value()) {
            it->second.push_back({version, std::nullopt});
          }
        }
        break;
      }
      case Mutation::Type::kAtomic: {
        std::optional<std::string> base;
        if (!m.base_cleared) {
          auto it = data_.find(m.key);
          if (it != data_.end() && !it->second.empty()) {
            // Later mutations in the same commit batch see earlier ones:
            // the chain tail is the freshest value.
            base = it->second.back().value;
          }
        }
        data_[m.key].push_back({version, ApplyAtomicOp(m.op, base, m.value)});
        break;
      }
      case Mutation::Type::kSetVersionstampedKey: {
        data_[m.key + VersionstampFor(version, batch_order) + m.end_key]
            .push_back({version, m.value});
        break;
      }
      case Mutation::Type::kSetVersionstampedValue: {
        data_[m.key].push_back(
            {version, m.value + VersionstampFor(version, batch_order)});
        break;
      }
    }
  }
}

std::string VersionstampFor(Version version, uint16_t batch_order) {
  std::string stamp = EncodeBigEndian64(static_cast<uint64_t>(version));
  stamp.push_back(static_cast<char>(batch_order >> 8));
  stamp.push_back(static_cast<char>(batch_order & 0xFF));
  return stamp;
}

const std::optional<std::string>* VersionedStore::GetInChain(
    const Chain& chain, Version version) const {
  if (chain.empty()) return nullptr;
  // Read-version-floor fast path: most reads run at a recent snapshot, so
  // the tail entry usually already satisfies version <= read version —
  // skip the binary search entirely.
  if (chain.back().version <= version) return &chain.back().value;
  // Chains are append-only in version order; find the last entry with
  // entry.version <= version. Entries sharing a version (one commit batch)
  // sort stably in apply order, and upper_bound lands past the last of
  // them — the batch's final write wins, matching intra-batch order.
  auto it = std::upper_bound(
      chain.begin(), chain.end(), version,
      [](Version v, const Entry& e) { return v < e.version; });
  if (it == chain.begin()) return nullptr;
  return &std::prev(it)->value;
}

std::optional<std::string> VersionedStore::Get(const std::string& key,
                                               Version version) const {
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  const std::optional<std::string>* v = GetInChain(it->second, version);
  return v == nullptr ? std::nullopt : *v;
}

void VersionedStore::ScanRange(const KeyRange& range, Version version,
                               const RangeOptions& options,
                               const RangeSink& sink) const {
  int emitted = 0;
  auto visit = [&](const std::string& key, const Chain& chain) {
    const std::optional<std::string>* v = GetInChain(chain, version);
    if (v == nullptr || !v->has_value()) return true;  // dead here; continue
    ++emitted;
    if (!sink(key, **v)) return false;
    return options.limit <= 0 || emitted < options.limit;
  };
  if (!options.reverse) {
    for (auto it = data_.lower_bound(range.begin);
         it != data_.end() && it->first < range.end; ++it) {
      if (!visit(it->first, it->second)) return;
    }
  } else {
    auto it = data_.lower_bound(range.end);
    while (it != data_.begin()) {
      --it;
      if (it->first < range.begin) break;
      if (!visit(it->first, it->second)) return;
    }
  }
}

std::vector<KeyValue> VersionedStore::GetRange(
    const KeyRange& range, Version version,
    const RangeOptions& options) const {
  std::vector<KeyValue> out;
  ScanRange(range, version, options,
            [&out](std::string_view key, std::string_view value) {
              out.push_back({std::string(key), std::string(value)});
              return true;
            });
  return out;
}

void VersionedStore::Prune(Version min_version) {
  for (auto it = data_.begin(); it != data_.end();) {
    Chain& chain = it->second;
    // Fast path: nothing at or below the floor means nothing to compact.
    if (!chain.empty() && chain.front().version > min_version) {
      ++it;
      continue;
    }
    // Keep the last entry with version <= min_version and everything later.
    auto keep_from = chain.begin();
    for (auto e = chain.begin(); e != chain.end(); ++e) {
      if (e->version <= min_version) keep_from = e;
    }
    if (keep_from != chain.begin()) {
      chain.erase(chain.begin(), keep_from);
    }
    // A chain reduced to a lone tombstone is indistinguishable from an
    // absent key at every version — drop it so write-then-clear churn
    // (QuiCK's queue workload) cannot grow the key map without bound.
    if (chain.size() == 1 && !chain[0].value.has_value()) {
      it = data_.erase(it);
    } else {
      ++it;
    }
  }
}

void VersionedStore::LoadSnapshotEntry(std::string key, Version version,
                                       std::string value) {
  Chain& chain = data_[std::move(key)];
  chain.clear();
  chain.push_back({version, std::move(value)});
}

bool VersionedStore::CollectSnapshotChunk(Version version,
                                          std::string* resume_key,
                                          size_t max_keys,
                                          std::vector<KeyValue>* out) const {
  auto it = resume_key->empty() ? data_.begin()
                                : data_.upper_bound(*resume_key);
  size_t visited = 0;
  for (; it != data_.end(); ++it) {
    if (visited >= max_keys) {
      // resume_key already names the last visited key.
      return false;
    }
    ++visited;
    *resume_key = it->first;
    const std::optional<std::string>* v = GetInChain(it->second, version);
    if (v == nullptr || !v->has_value()) continue;  // dead at the snapshot
    out->push_back({it->first, **v});
  }
  return true;
}

size_t VersionedStore::LiveKeyCount() const {
  size_t n = 0;
  for (const auto& [key, chain] : data_) {
    if (!chain.empty() && chain.back().value.has_value()) ++n;
  }
  return n;
}

size_t VersionedStore::TotalEntryCount() const {
  size_t n = 0;
  for (const auto& [key, chain] : data_) n += chain.size();
  return n;
}

}  // namespace quick::fdb
