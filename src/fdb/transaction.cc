#include "fdb/transaction.h"

#include <algorithm>
#include <iterator>

#include "common/backoff.h"
#include "common/random.h"
#include "fdb/database.h"
#include "fdb/versioned_store.h"

namespace quick::fdb {

Transaction::Transaction(Database* db, TransactionOptions options)
    : db_(db),
      options_(options),
      start_millis_(db->clock()->NowMillis()) {}

Status Transaction::CheckUsable() {
  if (committed_) {
    return Status::FailedPrecondition("transaction already committed");
  }
  if (db_->clock()->NowMillis() - start_millis_ >
      db_->options().transaction_timeout_millis) {
    return Status::TransactionTooOld("transaction exceeded its lifetime");
  }
  return Status::OK();
}

Result<Version> Transaction::EnsureReadVersion() {
  if (read_version_ == kInvalidVersion) {
    QUICK_ASSIGN_OR_RETURN(read_version_, db_->AcquireReadVersion(options_));
  }
  return read_version_;
}

Result<Version> Transaction::GetReadVersion() {
  QUICK_RETURN_IF_ERROR(CheckUsable());
  return EnsureReadVersion();
}

Transaction::LocalView Transaction::ClassifyLocal(
    const std::string& key, const WriteEntry** entry) const {
  auto it = writes_.find(key);
  if (it != writes_.end()) {
    *entry = &it->second;
    switch (it->second.kind) {
      case WriteEntry::Kind::kSet:
        return LocalView::kSet;
      case WriteEntry::Kind::kClear:
        return LocalView::kCleared;
      case WriteEntry::Kind::kAtomicChain:
        return LocalView::kAtomic;
    }
  }
  *entry = nullptr;
  if (CoveredByClearedRange(key)) return LocalView::kCleared;
  return LocalView::kUnknown;
}

bool Transaction::CoveredByClearedRange(const std::string& key) const {
  for (const KeyRange& r : cleared_ranges_) {
    if (r.Contains(key)) return true;
  }
  return false;
}

Result<std::optional<std::string>> Transaction::Get(const std::string& key,
                                                    bool snapshot) {
  QUICK_RETURN_IF_ERROR(CheckUsable());
  const WriteEntry* entry = nullptr;
  switch (ClassifyLocal(key, &entry)) {
    case LocalView::kSet:
      // Value fully determined locally: no storage read, no read conflict.
      return std::optional<std::string>(entry->set_value);
    case LocalView::kCleared:
      return std::optional<std::string>(std::nullopt);
    case LocalView::kAtomic: {
      // Reading a key this transaction atomically mutated turns the op into
      // a read-modify-write: the base comes from storage and a read
      // conflict is added (matching FoundationDB's RYW semantics).
      std::optional<std::string> base;
      if (!entry->base_cleared) {
        QUICK_ASSIGN_OR_RETURN(Version rv, EnsureReadVersion());
        QUICK_ASSIGN_OR_RETURN(base, db_->ReadAt(key, rv));
      }
      if (!snapshot) AddReadConflictKey(key);
      std::optional<std::string> value = std::move(base);
      for (const auto& [op, operand] : entry->atomics) {
        value = ApplyAtomicOp(op, value, operand);
      }
      return value;
    }
    case LocalView::kUnknown:
      break;
  }
  QUICK_ASSIGN_OR_RETURN(Version rv, EnsureReadVersion());
  QUICK_ASSIGN_OR_RETURN(std::optional<std::string> value,
                         db_->ReadAt(key, rv));
  if (!snapshot) AddReadConflictKey(key);
  return value;
}

Result<std::vector<KeyValue>> Transaction::GetRange(const KeyRange& range,
                                                    const RangeOptions& options,
                                                    bool snapshot) {
  QUICK_RETURN_IF_ERROR(CheckUsable());
  QUICK_ASSIGN_OR_RETURN(Version rv, EnsureReadVersion());

  // Determine whether the write buffer overlaps the range; if not we can
  // pass the limit straight to storage.
  auto first_write = writes_.lower_bound(range.begin);
  bool writes_overlap =
      first_write != writes_.end() && first_write->first < range.end;
  bool clears_overlap = false;
  for (const KeyRange& r : cleared_ranges_) {
    if (r.Intersects(range)) {
      clears_overlap = true;
      break;
    }
  }

  std::vector<KeyValue> merged;
  if (!writes_overlap && !clears_overlap) {
    QUICK_ASSIGN_OR_RETURN(merged, db_->ReadRangeAt(range, rv, options));
  } else {
    // One-pass ordered merge of the storage stream with the write buffer:
    // no full-range materialization, and the scan stops as soon as `limit`
    // results exist. The storage limit cannot be pushed down (buffered
    // clears may drop stored keys), so the early-stopping sink is what
    // bounds the work.
    const int limit = options.limit;
    auto full = [&] {
      return limit > 0 && static_cast<int>(merged.size()) >= limit;
    };
    // Emits the merged view of one write-buffer entry; `stored` is the
    // storage value at the same key when the merge aligned one.
    auto apply_entry = [&](const std::string& key, const WriteEntry& e,
                           std::optional<std::string> stored) {
      switch (e.kind) {
        case WriteEntry::Kind::kSet:
          merged.push_back({key, e.set_value});
          break;
        case WriteEntry::Kind::kClear:
          break;
        case WriteEntry::Kind::kAtomicChain: {
          std::optional<std::string> v;
          if (!e.base_cleared) v = std::move(stored);
          for (const auto& [op, operand] : e.atomics) {
            v = ApplyAtomicOp(op, v, operand);
          }
          if (v.has_value()) merged.push_back({key, *std::move(v)});
          break;
        }
      }
    };

    RangeOptions scan_opts;
    scan_opts.reverse = options.reverse;
    Status scan_status;
    if (!options.reverse) {
      auto wit = first_write;
      const auto wend = writes_.end();
      auto flush_before = [&](const std::string* bound) {
        while (wit != wend && wit->first < range.end &&
               (bound == nullptr || wit->first < *bound)) {
          apply_entry(wit->first, wit->second, std::nullopt);
          ++wit;
          if (full()) return false;
        }
        return true;
      };
      scan_status = db_->ScanRangeAt(
          range, rv, scan_opts,
          [&](std::string_view k, std::string_view v) {
            const std::string key(k);
            if (!flush_before(&key)) return false;
            if (wit != wend && wit->first == key) {
              apply_entry(key, wit->second,
                          CoveredByClearedRange(key)
                              ? std::nullopt
                              : std::optional<std::string>(std::string(v)));
              ++wit;
            } else if (!CoveredByClearedRange(key)) {
              merged.push_back({key, std::string(v)});
            }
            return !full();
          });
      if (scan_status.ok() && !full()) flush_before(nullptr);
    } else {
      auto wit = std::make_reverse_iterator(writes_.lower_bound(range.end));
      const auto wend = writes_.rend();
      auto in_range = [&] { return wit != wend && wit->first >= range.begin; };
      auto flush_after = [&](const std::string* bound) {
        while (in_range() && (bound == nullptr || wit->first > *bound)) {
          apply_entry(wit->first, wit->second, std::nullopt);
          ++wit;
          if (full()) return false;
        }
        return true;
      };
      scan_status = db_->ScanRangeAt(
          range, rv, scan_opts,
          [&](std::string_view k, std::string_view v) {
            const std::string key(k);
            if (!flush_after(&key)) return false;
            if (in_range() && wit->first == key) {
              apply_entry(key, wit->second,
                          CoveredByClearedRange(key)
                              ? std::nullopt
                              : std::optional<std::string>(std::string(v)));
              ++wit;
            } else if (!CoveredByClearedRange(key)) {
              merged.push_back({key, std::string(v)});
            }
            return !full();
          });
      if (scan_status.ok() && !full()) flush_after(nullptr);
    }
    QUICK_RETURN_IF_ERROR(scan_status);
  }

  if (!snapshot) {
    // Conservative: conflict on the requested range (a finer implementation
    // would clip at the last returned key when a limit stopped the scan).
    AddReadConflictRange(range);
  }
  return merged;
}

Result<std::optional<std::string>> Transaction::GetKey(
    const KeySelector& selector, bool snapshot) {
  QUICK_RETURN_IF_ERROR(CheckUsable());
  // Resolution via a bounded scan around the anchor. `offset` semantics:
  // with the resolved base being the last key <= anchor (or < anchor when
  // !or_equal), offset N steps N keys forward in key order.
  // Implementation strategy: enumerate keys on the relevant side and
  // index into them; selectors in this codebase use offsets 0 and 1, and
  // small positive offsets are supported.
  if (selector.offset >= 1) {
    // Keys starting at (anchor, ...] / [anchor, ...) depending on or_equal.
    KeyRange range;
    range.begin =
        selector.or_equal ? KeyAfter(selector.key) : selector.key;
    range.end = KeyRange::All().end;
    RangeOptions opts;
    opts.limit = selector.offset;
    QUICK_ASSIGN_OR_RETURN(std::vector<KeyValue> kvs,
                           GetRange(range, opts, snapshot));
    if (static_cast<int>(kvs.size()) < selector.offset) {
      return std::optional<std::string>(std::nullopt);
    }
    return std::optional<std::string>(kvs[selector.offset - 1].key);
  }
  // offset <= 0: walk backwards from the anchor.
  KeyRange range;
  range.begin = KeyRange::All().begin;
  range.end = selector.or_equal ? KeyAfter(selector.key) : selector.key;
  RangeOptions opts;
  opts.limit = 1 - selector.offset;
  opts.reverse = true;
  QUICK_ASSIGN_OR_RETURN(std::vector<KeyValue> kvs,
                         GetRange(range, opts, snapshot));
  const int need = 1 - selector.offset;  // 1 for offset 0, 2 for -1, ...
  if (static_cast<int>(kvs.size()) < need) {
    return std::optional<std::string>(std::nullopt);
  }
  return std::optional<std::string>(kvs[need - 1].key);
}

Result<std::vector<KeyValue>> Transaction::GetRangeSelector(
    const KeySelector& begin, const KeySelector& end,
    const RangeOptions& options, bool snapshot) {
  QUICK_ASSIGN_OR_RETURN(std::optional<std::string> begin_key,
                         GetKey(begin, snapshot));
  QUICK_ASSIGN_OR_RETURN(std::optional<std::string> end_key,
                         GetKey(end, snapshot));
  KeyRange range;
  range.begin = begin_key.value_or(KeyRange::All().end);
  range.end = end_key.value_or(KeyRange::All().end);
  if (range.empty()) return std::vector<KeyValue>{};
  return GetRange(range, options, snapshot);
}

void Transaction::Set(const std::string& key, const std::string& value) {
  WriteEntry& e = writes_[key];
  e = WriteEntry{WriteEntry::Kind::kSet, value, {}, false};
  AddWriteConflictKey(key);
  approx_size_ += static_cast<int64_t>(key.size() + value.size());
}

void Transaction::Clear(const std::string& key) {
  WriteEntry& e = writes_[key];
  e = WriteEntry{WriteEntry::Kind::kClear, {}, {}, false};
  AddWriteConflictKey(key);
  approx_size_ += static_cast<int64_t>(key.size());
}

void Transaction::ClearRange(const KeyRange& range) {
  if (range.empty()) return;
  cleared_ranges_.push_back(range);
  for (auto it = writes_.lower_bound(range.begin);
       it != writes_.end() && it->first < range.end;) {
    it->second = WriteEntry{WriteEntry::Kind::kClear, {}, {}, false};
    ++it;
  }
  AddWriteConflictRange(range);
  approx_size_ += static_cast<int64_t>(range.begin.size() + range.end.size());
}

void Transaction::Atomic(AtomicOp op, const std::string& key,
                         const std::string& operand) {
  auto it = writes_.find(key);
  if (it == writes_.end()) {
    WriteEntry e;
    e.kind = WriteEntry::Kind::kAtomicChain;
    e.base_cleared = CoveredByClearedRange(key);
    e.atomics.emplace_back(op, operand);
    writes_.emplace(key, std::move(e));
  } else {
    WriteEntry& e = it->second;
    switch (e.kind) {
      case WriteEntry::Kind::kSet:
        // Base fully known: fold the op into the buffered value.
        e.set_value = ApplyAtomicOp(op, e.set_value, operand);
        break;
      case WriteEntry::Kind::kClear:
        e.kind = WriteEntry::Kind::kAtomicChain;
        e.base_cleared = true;
        e.atomics.clear();
        e.atomics.emplace_back(op, operand);
        break;
      case WriteEntry::Kind::kAtomicChain:
        e.atomics.emplace_back(op, operand);
        break;
    }
  }
  AddWriteConflictKey(key);
  approx_size_ += static_cast<int64_t>(key.size() + operand.size());
}

void Transaction::SetVersionstampedKey(const std::string& prefix,
                                        const std::string& suffix,
                                        const std::string& value) {
  Mutation m;
  m.type = Mutation::Type::kSetVersionstampedKey;
  m.key = prefix;
  m.end_key = suffix;
  m.value = value;
  versionstamped_.push_back(std::move(m));
  // The final key is unknown until commit; conflict on the whole prefix.
  AddWriteConflictRange(KeyRange::Prefix(prefix));
  approx_size_ += static_cast<int64_t>(prefix.size() + suffix.size() +
                                       value.size() + 10);
}

void Transaction::SetVersionstampedValue(const std::string& key,
                                         const std::string& value_prefix) {
  Mutation m;
  m.type = Mutation::Type::kSetVersionstampedValue;
  m.key = key;
  m.value = value_prefix;
  versionstamped_.push_back(std::move(m));
  AddWriteConflictKey(key);
  approx_size_ += static_cast<int64_t>(key.size() + value_prefix.size() + 10);
}

Result<std::string> Transaction::GetVersionstamp() const {
  if (!committed_ || committed_version_ == kInvalidVersion) {
    return Status::FailedPrecondition(
        "versionstamp only available after a successful data commit");
  }
  return VersionstampFor(committed_version_, committed_batch_order_);
}

void Transaction::AddReadConflictRange(const KeyRange& range) {
  if (!range.empty()) read_conflicts_.push_back(range);
}

void Transaction::AddReadConflictKey(const std::string& key) {
  read_conflicts_.push_back(KeyRange::Single(key));
}

void Transaction::AddWriteConflictRange(const KeyRange& range) {
  if (!range.empty()) write_conflicts_.push_back(range);
}

void Transaction::AddWriteConflictKey(const std::string& key) {
  write_conflicts_.push_back(KeyRange::Single(key));
}

Result<bool> Transaction::BuildCommitRequest(CommitRequest* out) {
  QUICK_RETURN_IF_ERROR(CheckUsable());

  // A transaction with nothing to write and nothing declared is a no-op
  // commit, as in FoundationDB: reads-only commits succeed locally.
  if (writes_.empty() && cleared_ranges_.empty() && write_conflicts_.empty() &&
      versionstamped_.empty()) {
    committed_ = true;
    committed_version_ = read_version_;
    return false;
  }

  const int64_t limit = options_.size_limit_bytes > 0
                            ? options_.size_limit_bytes
                            : db_->options().max_transaction_bytes;
  if (approx_size_ > limit) {
    return Status::TransactionTooLarge();
  }

  // Conflict checking needs a read version whenever read conflicts exist.
  if (!read_conflicts_.empty() && read_version_ == kInvalidVersion) {
    QUICK_RETURN_IF_ERROR(EnsureReadVersion().status());
  }

  CommitRequest& request = *out;
  request.read_version = read_version_;
  request.read_conflicts = read_conflicts_;
  request.write_conflicts = write_conflicts_;

  // Range clears first so per-key mutations within the same commit version
  // supersede them.
  for (const KeyRange& r : cleared_ranges_) {
    Mutation m;
    m.type = Mutation::Type::kClearRange;
    m.key = r.begin;
    m.end_key = r.end;
    request.mutations.push_back(std::move(m));
  }
  for (const Mutation& m : versionstamped_) {
    request.mutations.push_back(m);
  }
  for (const auto& [key, e] : writes_) {
    switch (e.kind) {
      case WriteEntry::Kind::kSet: {
        Mutation m;
        m.type = Mutation::Type::kSet;
        m.key = key;
        m.value = e.set_value;
        request.mutations.push_back(std::move(m));
        break;
      }
      case WriteEntry::Kind::kClear: {
        Mutation m;
        m.type = Mutation::Type::kClear;
        m.key = key;
        request.mutations.push_back(std::move(m));
        break;
      }
      case WriteEntry::Kind::kAtomicChain: {
        bool first = true;
        for (const auto& [op, operand] : e.atomics) {
          Mutation m;
          m.type = Mutation::Type::kAtomic;
          m.key = key;
          m.op = op;
          m.value = operand;
          m.base_cleared = e.base_cleared && first;
          first = false;
          request.mutations.push_back(std::move(m));
        }
        break;
      }
    }
  }

  return true;
}

void Transaction::ApplyCommitOutcome(const CommitOutcome& outcome) {
  committed_ = true;
  committed_version_ = outcome.version;
  committed_batch_order_ = outcome.batch_order;
}

Status Transaction::Commit() {
  CommitRequest request;
  QUICK_ASSIGN_OR_RETURN(const bool submit, BuildCommitRequest(&request));
  if (!submit) return Status::OK();  // read-only no-op
  Result<CommitOutcome> result = db_->CommitAt(std::move(request));
  if (!result.ok()) return result.status();
  ApplyCommitOutcome(*result);
  return Status::OK();
}

Future<Status> Transaction::CommitAsync() {
  Promise<Status> promise;
  Future<Status> future = promise.GetFuture();
  CommitRequest request;
  Result<bool> submit = BuildCommitRequest(&request);
  if (!submit.ok()) {
    promise.Set(submit.status());
    return future;
  }
  if (!*submit) {
    promise.Set(Status::OK());  // read-only no-op
    return future;
  }
  db_->CommitAsync(std::move(request),
                   [this, promise](const Result<CommitOutcome>& r) mutable {
                     if (!r.ok()) {
                       promise.Set(r.status());
                       return;
                     }
                     ApplyCommitOutcome(*r);
                     promise.Set(Status::OK());
                   });
  return future;
}

std::optional<int64_t> Transaction::PrepareRetry(const Status& error) {
  if (!error.retryable()) return std::nullopt;
  static const ExponentialBackoff kBackoff(kTxnBackoffInitialMillis,
                                           kTxnBackoffMaxMillis);
  const int64_t delay = kBackoff.JitteredDelayForAttempt(
      retry_attempt_, &Random::ThreadLocal());
  ++retry_attempt_;
  Reset();
  return delay;
}

Status Transaction::OnError(const Status& error) {
  std::optional<int64_t> delay = PrepareRetry(error);
  if (!delay.has_value()) return error;
  db_->clock()->SleepMillis(*delay);
  Reset();  // restart the lifetime clock after the backoff sleep
  return Status::OK();
}

void Transaction::Reset() {
  writes_.clear();
  versionstamped_.clear();
  cleared_ranges_.clear();
  read_conflicts_.clear();
  write_conflicts_.clear();
  approx_size_ = 0;
  read_version_ = kInvalidVersion;
  committed_version_ = kInvalidVersion;
  committed_batch_order_ = 0;
  committed_ = false;
  start_millis_ = db_->clock()->NowMillis();
}

}  // namespace quick::fdb
