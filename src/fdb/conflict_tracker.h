#ifndef QUICK_FDB_CONFLICT_TRACKER_H_
#define QUICK_FDB_CONFLICT_TRACKER_H_

#include <deque>
#include <vector>

#include "common/bytes.h"
#include "fdb/resolver.h"
#include "fdb/types.h"

namespace quick::fdb {

/// Legacy linear-scan Resolver: a deque of commit records scanned
/// newest-first on every check, O(tracked commits × read ranges) per
/// HasConflict. Kept behind Database::Options::resolver = kLegacyLinear
/// for differential testing against the IntervalResolver that replaced it
/// on the hot path; see bench_micro_resolver for the gap.
///
/// Retention is whatever the caller prunes to: the Database prunes it at
/// the MVCC read floor (the 5s window), so the tracked set is bounded by
/// the commits of the last window — not by a commit count.
class ConflictTracker : public Resolver {
 public:
  void AddCommit(Version version, std::vector<KeyRange> write_ranges) override;

  bool HasConflict(const std::vector<KeyRange>& read_ranges,
                   Version read_version) const override;

  Version MinCheckableVersion() const override { return min_checkable_; }

  /// Forgets commits at or below `version`.
  void Prune(Version version) override;

  size_t TrackedCount() const override { return commits_.size(); }
  size_t TrackedCommitCount() const { return commits_.size(); }

 private:
  struct CommitRecord {
    Version version;
    std::vector<KeyRange> write_ranges;
  };

  std::deque<CommitRecord> commits_;  // ascending version order
  Version min_checkable_ = 0;
};

}  // namespace quick::fdb

#endif  // QUICK_FDB_CONFLICT_TRACKER_H_
