#ifndef QUICK_FDB_CONFLICT_TRACKER_H_
#define QUICK_FDB_CONFLICT_TRACKER_H_

#include <deque>
#include <vector>

#include "common/bytes.h"
#include "fdb/types.h"

namespace quick::fdb {

/// The Resolver of the simulated cluster: remembers recent committed write
/// conflict ranges so a committing transaction can be checked for
/// read-write conflicts against everything that committed after its read
/// version. NOT thread-safe; the Database serializes commits.
class ConflictTracker {
 public:
  /// Records a committed (or declared, §6.1) set of write ranges.
  void AddCommit(Version version, std::vector<KeyRange> write_ranges);

  /// True when any commit with version > read_version wrote a range
  /// intersecting any of `read_ranges`.
  bool HasConflict(const std::vector<KeyRange>& read_ranges,
                   Version read_version) const;

  /// Oldest version against which conflicts can still be checked. Commits
  /// with read_version older than this must fail with
  /// kTransactionTooOld.
  Version MinCheckableVersion() const { return min_checkable_; }

  /// Forgets commits at or below `version`.
  void Prune(Version version);

  size_t TrackedCommitCount() const { return commits_.size(); }

 private:
  struct CommitRecord {
    Version version;
    std::vector<KeyRange> write_ranges;
  };

  std::deque<CommitRecord> commits_;  // ascending version order
  Version min_checkable_ = 0;
};

}  // namespace quick::fdb

#endif  // QUICK_FDB_CONFLICT_TRACKER_H_
