#include "fdb/interval_resolver.h"

namespace quick::fdb {

void IntervalResolver::Insert(const std::string& begin, const std::string& end,
                              Version version) {
  // A predecessor node overlapping `begin` is truncated to [its begin,
  // begin); if it extended past `end`, its tail survives as [end, its end)
  // at its own (older) version.
  auto it = nodes_.lower_bound(begin);
  if (it != nodes_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > begin) {
      if (prev->second.end > end) {
        nodes_.emplace(end, Node{prev->second.end, prev->second.version});
        prune_heap_.emplace(prev->second.version, end);
      }
      prev->second.end = begin;
    }
  }
  // Nodes starting inside [begin, end) are superseded: commit versions are
  // monotone, so the incoming version is never older. A node reaching past
  // `end` leaves its tail behind.
  while (it != nodes_.end() && it->first < end) {
    if (it->second.end > end) {
      nodes_.emplace(end, Node{it->second.end, it->second.version});
      prune_heap_.emplace(it->second.version, end);
      nodes_.erase(it);
      break;  // nodes are disjoint: nothing else can start before `end`
    }
    it = nodes_.erase(it);
  }
  nodes_.emplace(begin, Node{end, version});
  prune_heap_.emplace(version, begin);
}

void IntervalResolver::AddCommit(Version version,
                                 std::vector<KeyRange> write_ranges) {
  for (const KeyRange& range : write_ranges) {
    if (range.empty()) continue;
    Insert(range.begin, range.end, version);
  }
}

bool IntervalResolver::HasConflict(const std::vector<KeyRange>& read_ranges,
                                   Version read_version) const {
  for (const KeyRange& range : read_ranges) {
    if (range.empty()) continue;
    auto it = nodes_.lower_bound(range.begin);
    if (it != nodes_.begin()) {
      auto prev = std::prev(it);
      if (prev->second.end > range.begin &&
          prev->second.version > read_version) {
        return true;
      }
    }
    for (; it != nodes_.end() && it->first < range.end; ++it) {
      if (it->second.version > read_version) return true;
    }
  }
  return false;
}

void IntervalResolver::Prune(Version version) {
  if (version > min_checkable_) min_checkable_ = version;
  // Nodes at or below the floor can never conflict with a checkable read
  // version again. The heap may hold stale entries (node replaced or
  // re-keyed since the push); the version match filters them out.
  while (!prune_heap_.empty() && prune_heap_.top().first <= version) {
    const HeapEntry top = prune_heap_.top();
    prune_heap_.pop();
    auto it = nodes_.find(top.second);
    if (it != nodes_.end() && it->second.version == top.first) {
      nodes_.erase(it);
    }
  }
}

}  // namespace quick::fdb
