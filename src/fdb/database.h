#ifndef QUICK_FDB_DATABASE_H_
#define QUICK_FDB_DATABASE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/result.h"
#include "fdb/fault_injector.h"
#include "fdb/recovery.h"
#include "fdb/resolver.h"
#include "fdb/transaction.h"
#include "fdb/types.h"
#include "fdb/versioned_store.h"

namespace quick::fdb {

class Wal;
struct WalBatchRef;

/// One simulated FoundationDB cluster: MVCC storage + resolver + version
/// authority. Thread-safe; any number of threads may run transactions
/// concurrently (reads take a shared lock; commits are group-committed —
/// concurrently arriving commits are resolved and applied as one batch at a
/// single storage version under one exclusive lock acquisition, as a real
/// cluster's commit proxies batch transactions. Injected latencies are paid
/// outside the locks so commits pipeline).
class Database {
 public:
  /// Which conflict-resolution structure the cluster uses.
  enum class ResolverKind {
    /// Sorted interval map with max-commit-version annotations; O(log n)
    /// conflict checks and incremental pruning (interval_resolver.h).
    kInterval,
    /// The original linear-scan commit list (conflict_tracker.h); retained
    /// for differential testing and comparison benchmarks.
    kLegacyLinear,
  };

  struct Options {
    Clock* clock = SystemClock::Default();
    /// FoundationDB's 5-second transaction lifetime; reads/commits on older
    /// transactions fail with kTransactionTooOld.
    int64_t transaction_timeout_millis = 5000;
    /// MVCC retention: versions older than this are pruned.
    int64_t mvcc_window_millis = 5000;
    /// Byte budget per transaction (FDB's limit is 10 MB; smaller default
    /// keeps the simulator honest about batch sizes).
    int64_t max_transaction_bytes = 1 << 20;
    /// How stale a cached read version may be before a real GRV is issued.
    int64_t grv_cache_staleness_millis = 1000;
    /// Batch concurrently arriving commits into one resolution + apply pass
    /// at a single storage version (members get distinct versionstamp
    /// batch-order bytes). Off = every commit is a batch of one.
    bool enable_group_commit = true;
    /// Most transactions resolved and applied per commit batch (capped at
    /// 65535, the versionstamp batch-order range).
    int max_commit_batch = 128;
    ResolverKind resolver = ResolverKind::kInterval;
    LatencyModel latency;
    FaultInjector::Config faults;
    /// Scheduled fault windows (outages, failure-rate spikes, latency
    /// spikes) layered on the probabilistic config; see fault_plan.h.
    FaultPlan fault_plan;
    /// Durable write-ahead log + checkpointing (DESIGN.md §9). Off by
    /// default: the cluster is purely in-memory, exactly as before.
    struct Durability {
      bool enable_wal = false;
      /// Directory for WAL segments and checkpoint files; required (and
      /// created) when enable_wal is set. A restart is modelled by
      /// constructing a new Database over the same directory.
      std::string dir;
      /// Auto-checkpoint once the current WAL segment exceeds this many
      /// bytes; 0 disables the trigger (Checkpoint() is still callable).
      int64_t checkpoint_interval_bytes = 4 << 20;
      /// Keys visited per shared-lock acquisition while the checkpoint
      /// writer streams the store — commits interleave between chunks.
      size_t checkpoint_chunk_keys = 1024;
      /// Replication commit fence (DESIGN.md §10): invoked by the commit
      /// leader after the batch's WAL fsync and before any member is
      /// acknowledged or the version published. Non-OK demotes the whole
      /// batch to kCommitUnknownResult and keeps the version unpublished;
      /// kFailedPrecondition (the epoch is sealed — this region has been
      /// failed away from) additionally halts the database, fencing the
      /// zombie primary for good. Null = no fence (single-region).
      std::function<Status(Version)> commit_fence;
    };
    Durability durability;
  };

  /// Cumulative cluster statistics (observability; Figure 7's collision
  /// breakdown reads the conflict counter).
  struct Stats {
    int64_t grv_calls = 0;
    int64_t grv_cache_hits = 0;
    int64_t commits_attempted = 0;
    int64_t commits_succeeded = 0;
    /// Commit batches applied; commits_attempted / commit_batches is the
    /// mean group-commit batch size.
    int64_t commit_batches = 0;
    int64_t conflicts = 0;
    int64_t too_old = 0;
    int64_t unknown_results = 0;
    int64_t reads = 0;
    // Durability pipeline (all zero when the WAL is disabled).
    int64_t wal_appends = 0;
    int64_t wal_appended_bytes = 0;
    int64_t wal_syncs = 0;
    int64_t wal_fsyncs_coalesced = 0;
    int64_t wal_segments_created = 0;
    int64_t wal_segments_deleted = 0;
    int64_t checkpoints_written = 0;
    int64_t checkpoint_keys_written = 0;
  };

  /// Replaces the injected-latency model. NOT thread-safe: call only while
  /// no transactions are in flight (benchmarks use it to pre-fill data at
  /// full speed before turning realistic latencies on).
  void set_latency(const LatencyModel& latency) { latency_ = latency; }

  explicit Database(std::string name);
  Database(std::string name, Options options);
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Begins a transaction on this cluster.
  Transaction CreateTransaction(TransactionOptions topts = {}) {
    return Transaction(this, topts);
  }

  const std::string& name() const { return name_; }
  const Options& options() const { return options_; }
  Clock* clock() const { return options_.clock; }
  FaultInjector* fault_injector() { return &faults_; }

  /// Latest committed version (no latency; test/diagnostic use).
  Version LastCommittedVersion() const {
    return last_version_.load(std::memory_order_acquire);
  }

  Stats GetStats() const;

  /// Number of live keys (diagnostics).
  size_t LiveKeyCount() const;

  /// Total version-chain entries in storage (prune/churn diagnostics).
  size_t TotalEntryCount() const;

  /// Commit records / interval nodes currently retained by the resolver
  /// (diagnostics; also exported as fdb.resolver.tracked_commits).
  size_t ResolverTrackedCount() const;

  /// Snapshots the store at the latest durable version into a checkpoint
  /// file, rolls the WAL to a fresh segment, and retires segments and
  /// checkpoints wholly covered by the new one. Streams the store in
  /// chunks, so commits and reads proceed concurrently. Returns the
  /// checkpoint version; kFailedPrecondition when the WAL is disabled or
  /// another checkpoint is in flight, kUnavailable after a fatal disk
  /// fault. Also fired automatically by segment growth
  /// (durability.checkpoint_interval_bytes).
  Result<Version> Checkpoint();

  /// What cold-start recovery found in durability.dir (all-defaults when
  /// the WAL is disabled). `recovered` distinguishes a resumed store from
  /// a genuinely fresh directory.
  const RecoveryInfo& GetRecoveryInfo() const { return recovery_info_; }

  /// Version of the newest durable checkpoint (0 before the first). The
  /// MVCC prune floor never passes this while the WAL is on.
  Version DurableCheckpointVersion() const {
    return durable_checkpoint_version_.load(std::memory_order_acquire);
  }

  /// True after a fatal disk fault (torn write, corruption, I/O error):
  /// the simulated process is dead and every operation returns
  /// kUnavailable. Recover by constructing a new Database over the dir.
  bool DurabilityDead() const;

  /// Kills the simulated process (region-kill in failover chaos): every
  /// subsequent operation fails kUnavailable until a new Database
  /// recovers from the directory. Also how a sealed epoch's zombie
  /// primary is fenced off after its ack is refused.
  void Halt() { halted_.store(true, std::memory_order_release); }

 private:
  friend class Transaction;

  /// Completion hook for CommitAsync. Runs exactly once, off the commit
  /// queue lock, on whichever thread finishes the batch (usually the
  /// cluster's commit-pump thread).
  using CommitCallback = std::function<void(Result<CommitOutcome>)>;

  /// One commit waiting in (or being processed from) the group-commit
  /// queue. Blocking commits own theirs on the committing thread's stack
  /// (`on_done` empty; the leader flips `done` under commit_queue_mu_);
  /// async commits are heap-allocated and deleted after `on_done` fires.
  struct PendingCommit {
    CommitRequest request;
    FaultInjector::CommitFault fault;
    Status status = Status::OK();
    CommitOutcome outcome;
    bool done = false;
    /// Drained into an in-flight batch: its leader releases the baton
    /// before the fsync, so a claimed commit must wait for `done` rather
    /// than become leader itself.
    bool claimed = false;
    CommitCallback on_done;
  };

  /// getReadVersion with latency, fault injection, and the version cache.
  Result<Version> AcquireReadVersion(const TransactionOptions& topts);

  Result<std::optional<std::string>> ReadAt(const std::string& key,
                                            Version version);
  Result<std::vector<KeyValue>> ReadRangeAt(const KeyRange& range,
                                            Version version,
                                            const RangeOptions& options);

  /// Streaming range read: sink is invoked under the shared lock with
  /// views into storage — the copy-light path behind Transaction::GetRange.
  Status ScanRangeAt(const KeyRange& range, Version version,
                     const RangeOptions& options, const RangeSink& sink);

  Result<CommitOutcome> CommitAt(CommitRequest&& request);

  /// Fire-and-notify commit: enqueues the request into the same group-
  /// commit pipeline as CommitAt and returns immediately; `done` runs with
  /// the outcome once the batch leader acks (after the WAL fsync and
  /// replication fence, exactly as a blocking commit would unblock). An
  /// in-flight commit therefore no longer owns a thread — hundreds can
  /// ride one pump round. Precheck failures (durability dead, injected
  /// unavailable/too-old) invoke `done` inline before returning.
  void CommitAsync(CommitRequest&& request, CommitCallback done);

  /// Leads one group-commit round. Precondition: `qlock` holds
  /// commit_queue_mu_ and commit_leader_active_ was just set by the
  /// caller. Pays the replication latency (the batching window) with the
  /// queue unlocked, drains one batch, resolves + applies it, runs the
  /// durability pipeline, acks sync members (done flag) and async members
  /// (callbacks, fired outside the lock). Returns with `qlock` re-held and
  /// the baton released.
  void LeadOneRound(std::unique_lock<std::mutex>& qlock, size_t max_batch);

  /// Splits a finished batch under commit_queue_mu_: sync members get
  /// `done = true` (their committer wakes and reads status/outcome); async
  /// members are collected for FireCallbacks.
  void FinishMembersLocked(const std::vector<PendingCommit*>& batch,
                           std::vector<PendingCommit*>* async_done);

  /// Invokes and frees async members' callbacks. Caller must NOT hold
  /// commit_queue_mu_ — callbacks may re-enter the database (retry
  /// re-arms, chained transactions).
  void FireCallbacks(std::vector<PendingCommit*>* async_done);

  /// Lazily starts the commit-pump thread that leads rounds on behalf of
  /// async commits (a blocking commit leads its own round; an async commit
  /// has no thread parked in CommitAt to inherit the baton). Caller holds
  /// commit_queue_mu_.
  void EnsureCommitPumpLocked();
  void CommitPumpLoop();

  size_t MaxCommitBatch() const;

  /// Resolves and applies one batch at a single new version. Caller holds
  /// the exclusive lock.
  void ProcessBatchLocked(const std::vector<PendingCommit*>& batch);

  /// Drops MVCC state older than the retention window: an O(1) staleness
  /// probe on every batch, with the sweep itself rate-limited. Caller holds
  /// the exclusive lock. With the WAL on, the floor is additionally
  /// clamped at the last durable checkpoint version so the chunked
  /// checkpoint writer's snapshot version stays readable between chunks.
  void MaybePruneLocked();

  /// Frames the batch's accepted members as one WAL record and appends it
  /// WITHOUT fsyncing; `*ref` and `*log_end` feed FinishBatchDurable.
  /// Called by the commit leader while it still holds the baton — the
  /// baton serializes appends, so records land in version order.
  Status AppendBatchToWal(const std::vector<PendingCommit*>& batch,
                          WalBatchRef* ref, uint64_t* log_end);

  /// Fsyncs the batch's record (group fsync: one fsync covers every batch
  /// appended behind it), runs the replication commit fence, and publishes
  /// the batch version only when both succeed (invariant 15: no ack before
  /// fsync; invariant 17: no ack past a sealed epoch). On failure every
  /// accepted member is demoted to kCommitUnknownResult. Called after the
  /// baton is released, so the next leader's append overlaps this fsync.
  void FinishBatchDurable(const std::vector<PendingCommit*>& batch,
                          const WalBatchRef& ref, uint64_t log_end,
                          Status append_status);

  /// Runs Checkpoint() when the current WAL segment outgrew the
  /// configured interval; one trigger wins, concurrent ones no-op.
  void MaybeAutoCheckpoint();

  /// Cold-start path when durability.enable_wal is set: recover the store
  /// from the directory, seed the version counters, open the WAL. A
  /// recovery failure halts the database (every operation returns
  /// kUnavailable) rather than serving an inconsistent store.
  void InitDurability();

  void InjectLatency(int64_t micros);

  const std::string name_;
  const Options options_;
  FaultInjector faults_;

  mutable std::shared_mutex mu_;
  VersionedStore store_;
  std::unique_ptr<Resolver> resolver_;
  std::deque<std::pair<Version, int64_t>> version_times_;
  int64_t last_prune_sweep_millis_ = 0;

  /// Group-commit queue: committers enqueue, the first becomes leader and
  /// drains the queue in max_commit_batch-sized batches; the rest wait.
  std::mutex commit_queue_mu_;
  std::condition_variable commit_cv_;
  std::deque<PendingCommit*> commit_queue_;
  bool commit_leader_active_ = false;

  /// Commit pump (async path): started on the first CommitAsync, joined in
  /// the destructor. Guarded by commit_queue_mu_.
  std::thread commit_pump_;
  bool commit_pump_started_ = false;
  bool commit_pump_stop_ = false;

  std::atomic<Version> last_version_{0};
  std::atomic<Version> min_read_version_{0};

  // Durability pipeline; wal_ stays null when durability.enable_wal is
  // off and every path below reduces to today's in-memory behaviour.
  // applied_version_ is the allocation counter: with the WAL on it runs
  // ahead of the published last_version_ between apply and fsync, so
  // readers and GRVs never observe a version that is not yet durable.
  std::unique_ptr<Wal> wal_;
  RecoveryInfo recovery_info_;
  std::atomic<Version> applied_version_{0};
  std::atomic<Version> durable_checkpoint_version_{0};
  std::atomic<bool> checkpoint_in_progress_{false};
  /// Fatal durability failure outside the Wal itself (checkpoint-write
  /// faults): the simulated process is dead.
  std::atomic<bool> halted_{false};
  std::atomic<int64_t> checkpoints_written_{0};
  std::atomic<int64_t> checkpoint_keys_written_{0};

  std::mutex grv_cache_mu_;
  Version cached_grv_ = kInvalidVersion;
  int64_t cached_grv_time_millis_ = 0;

  LatencyModel latency_;

  // Process-wide instruments (MetricsRegistry::Default()), resolved once.
  Histogram* batch_size_hist_;
  Gauge* tracked_commits_gauge_;
  Counter* read_ranges_checked_counter_;
  Counter* resolver_conflicts_counter_;

  // Lock-free statistic counters: reads/commits from every thread touch
  // these, so a mutex here would serialize the whole cluster.
  struct AtomicStats {
    std::atomic<int64_t> grv_calls{0};
    std::atomic<int64_t> grv_cache_hits{0};
    std::atomic<int64_t> commits_attempted{0};
    std::atomic<int64_t> commits_succeeded{0};
    std::atomic<int64_t> commit_batches{0};
    std::atomic<int64_t> conflicts{0};
    std::atomic<int64_t> too_old{0};
    std::atomic<int64_t> unknown_results{0};
    std::atomic<int64_t> reads{0};
  };
  AtomicStats stats_;
};

}  // namespace quick::fdb

#endif  // QUICK_FDB_DATABASE_H_
