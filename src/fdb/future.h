#ifndef QUICK_FDB_FUTURE_H_
#define QUICK_FDB_FUTURE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

namespace quick::fdb {

template <typename T>
class Future;

template <typename T>
class Promise;

namespace internal {

/// Shared completion cell behind a Promise/Future pair. Callbacks added
/// before completion run inline on the completing thread; callbacks added
/// after run inline on the adding thread. The value is stored once and
/// handed to every callback by const reference.
template <typename T>
struct FutureState {
  std::mutex mu;
  std::condition_variable cv;
  std::optional<T> value;
  std::vector<std::function<void(const T&)>> callbacks;
};

template <typename U>
struct IsFuture : std::false_type {};
template <typename U>
struct IsFuture<Future<U>> : std::true_type {};

}  // namespace internal

/// The read side of an asynchronous result. Copyable (copies share the
/// completion cell); cheap to pass by value. A default-constructed Future
/// is invalid until assigned from a Promise.
template <typename T>
class Future {
 public:
  using value_type = T;

  Future() = default;

  bool valid() const { return state_ != nullptr; }

  bool IsReady() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->value.has_value();
  }

  /// Blocks until the future completes (sync wrappers and tests only; the
  /// async pipeline uses OnReady/Then).
  void Wait() const {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->value.has_value(); });
  }

  /// Blocking read of the completed value. The reference lives as long as
  /// this future (or any copy of it).
  const T& Get() const {
    Wait();
    return *state_->value;
  }

  /// Runs `cb` with the value: immediately on this thread if already
  /// complete, otherwise inline on whichever thread completes the promise.
  /// Continuations that must not run on the completing thread should
  /// re-post themselves onto an Executor.
  void OnReady(std::function<void(const T&)> cb) const {
    {
      std::unique_lock<std::mutex> lock(state_->mu);
      if (!state_->value.has_value()) {
        state_->callbacks.push_back(std::move(cb));
        return;
      }
    }
    cb(*state_->value);
  }

  /// Monadic chain: returns a future for fn(value). When fn itself returns
  /// a Future the result is flattened (no Future<Future<U>>).
  template <typename F>
  auto Then(F fn) const {
    using R = std::invoke_result_t<F, const T&>;
    if constexpr (internal::IsFuture<R>::value) {
      using U = typename R::value_type;
      Promise<U> promise;
      OnReady([fn = std::move(fn), promise](const T& v) mutable {
        fn(v).OnReady([promise](const U& u) mutable { promise.Set(u); });
      });
      return promise.GetFuture();
    } else {
      Promise<R> promise;
      OnReady([fn = std::move(fn), promise](const T& v) mutable {
        promise.Set(fn(v));
      });
      return promise.GetFuture();
    }
  }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<internal::FutureState<T>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::FutureState<T>> state_;
};

/// The write side. Copyable so continuations can capture it by value; all
/// copies complete the same future. Completing twice is a no-op (first
/// value wins), which lets racing completers (e.g. cancellation vs the
/// commit ack) resolve without coordination.
template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<internal::FutureState<T>>()) {}

  Future<T> GetFuture() const { return Future<T>(state_); }

  void Set(T value) {
    std::vector<std::function<void(const T&)>> cbs;
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (state_->value.has_value()) return;  // first completion wins
      state_->value.emplace(std::move(value));
      cbs.swap(state_->callbacks);
    }
    state_->cv.notify_all();
    for (auto& cb : cbs) cb(*state_->value);
  }

 private:
  std::shared_ptr<internal::FutureState<T>> state_;
};

/// Completes when every input has: the classic fan-in barrier. Result order
/// matches input order. T must be default-constructible and copyable.
template <typename T>
Future<std::vector<T>> WhenAll(std::vector<Future<T>> futures) {
  struct Ctx {
    std::mutex mu;
    std::vector<T> results;
    size_t remaining;
    Promise<std::vector<T>> promise;
  };
  auto ctx = std::make_shared<Ctx>();
  ctx->results.resize(futures.size());
  ctx->remaining = futures.size();
  if (futures.empty()) {
    ctx->promise.Set({});
    return ctx->promise.GetFuture();
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    futures[i].OnReady([ctx, i](const T& v) {
      bool last = false;
      {
        std::lock_guard<std::mutex> lock(ctx->mu);
        ctx->results[i] = v;
        last = --ctx->remaining == 0;
      }
      if (last) ctx->promise.Set(std::move(ctx->results));
    });
  }
  return ctx->promise.GetFuture();
}

/// Cooperative cancellation flag shared across an async transaction chain.
/// Copies observe the same flag; Cancel() is sticky. Checked at each step
/// boundary — cancellation never interrupts a step mid-flight, it stops the
/// chain from re-arming.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() { flag_->store(true, std::memory_order_release); }
  bool Cancelled() const { return flag_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace quick::fdb

#endif  // QUICK_FDB_FUTURE_H_
