#ifndef QUICK_FDB_TRANSACTION_H_
#define QUICK_FDB_TRANSACTION_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"
#include "fdb/future.h"
#include "fdb/types.h"
#include "fdb/versioned_store.h"

namespace quick::fdb {

class Database;

/// What a commit submits to the cluster's group-commit pipeline: the
/// resolver inputs plus the mutations to apply. Built by the transaction
/// layer (shared by the blocking and async commit paths).
struct CommitRequest {
  Version read_version = kInvalidVersion;
  std::vector<KeyRange> read_conflicts;
  std::vector<KeyRange> write_conflicts;
  std::vector<Mutation> mutations;
};

/// What a successful commit learns: the storage version shared by the whole
/// commit batch plus this transaction's order within it — together the
/// transaction's versionstamp.
struct CommitOutcome {
  Version version = kInvalidVersion;
  uint16_t batch_order = 0;
};

/// Backoff schedule for transaction retries, shared by the blocking
/// Transaction::OnError sleep and the async runner's scheduled re-arm
/// (RunTransactionAsync), so both paths pace identically.
inline constexpr int64_t kTxnBackoffInitialMillis = 2;
inline constexpr int64_t kTxnBackoffMaxMillis = 1000;

/// A FoundationDB-style transaction: reads observe a snapshot at the
/// transaction's read version (with read-your-writes over the local write
/// buffer); writes are buffered and submitted atomically at Commit(), where
/// the cluster's resolver checks the accumulated read conflict ranges
/// against writes committed after the read version — strict serializability
/// via optimistic concurrency (§4 of the paper).
///
/// Not thread-safe; a transaction belongs to one thread. Movable.
class Transaction {
 public:
  explicit Transaction(Database* db, TransactionOptions options = {});

  Transaction(Transaction&&) = default;
  Transaction& operator=(Transaction&&) = default;
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  /// Point read. `snapshot` reads skip the read conflict range
  /// (FoundationDB snapshot isolation reads — never cause this transaction
  /// to abort on behalf of this key).
  Result<std::optional<std::string>> Get(const std::string& key,
                                         bool snapshot = false);

  /// Range read over [range.begin, range.end), merged with the write
  /// buffer. Served as a streaming merge over the cluster's version chains
  /// (no intermediate full-range materialization); limit/reverse stop the
  /// scan early.
  Result<std::vector<KeyValue>> GetRange(const KeyRange& range,
                                         const RangeOptions& options = {},
                                         bool snapshot = false);

  /// Resolves a key selector against the snapshot (merged with the write
  /// buffer); nullopt when no key satisfies it. Adds a read conflict on
  /// the range inspected unless `snapshot`.
  Result<std::optional<std::string>> GetKey(const KeySelector& selector,
                                            bool snapshot = false);

  /// Range read with selector endpoints, as in the FoundationDB API.
  Result<std::vector<KeyValue>> GetRangeSelector(const KeySelector& begin,
                                                 const KeySelector& end,
                                                 const RangeOptions& options = {},
                                                 bool snapshot = false);

  void Set(const std::string& key, const std::string& value);
  void Clear(const std::string& key);
  void ClearRange(const KeyRange& range);

  /// Atomic read-modify-write: adds a write conflict but no read conflict,
  /// so concurrent atomics on one key never abort each other.
  void Atomic(AtomicOp op, const std::string& key, const std::string& operand);

  /// Writes `value` under key = prefix + <10-byte versionstamp> + suffix,
  /// where the stamp is the commit version (FoundationDB's
  /// SET_VERSIONSTAMPED_KEY). Keys written this way sort in commit order —
  /// the mechanism behind Record Layer VERSION indexes and the paper's §5
  /// suggestion for strict-FIFO queue ordering. The final key is unknown
  /// until commit, so these writes are invisible to read-your-writes.
  void SetVersionstampedKey(const std::string& prefix,
                            const std::string& suffix,
                            const std::string& value);

  /// Writes value = prefix + <10-byte versionstamp> under `key`.
  void SetVersionstampedValue(const std::string& key,
                              const std::string& value_prefix);

  /// The versionstamp assigned to this transaction's writes (commit
  /// version + group-commit batch order); only valid after a successful
  /// Commit of a transaction that wrote data.
  Result<std::string> GetVersionstamp() const;

  /// Explicit conflict ranges. AddWriteConflictKey on an index key is the
  /// §6.1 technique: it makes an otherwise read-only transaction behave as
  /// a writer at resolution time without writing any data.
  void AddReadConflictRange(const KeyRange& range);
  void AddReadConflictKey(const std::string& key);
  void AddWriteConflictRange(const KeyRange& range);
  void AddWriteConflictKey(const std::string& key);

  /// Submits the transaction. OK, or kNotCommitted on conflict,
  /// kTransactionTooOld / kTransactionTooLarge / kCommitUnknownResult /
  /// kUnavailable as applicable. After a failed Commit the transaction must
  /// be Reset (normally via OnError) before reuse.
  Status Commit();

  /// Non-blocking commit: builds the same request as Commit() and enqueues
  /// it into the cluster's group-commit pipeline without parking this
  /// thread for the replication round. The future completes — possibly on
  /// the cluster's commit-pump thread — with OK or the same error codes
  /// Commit() returns; continuations that do real work should re-post onto
  /// an Executor. The transaction must outlive the future's completion.
  /// Validation errors (too large, already committed) complete the future
  /// immediately.
  Future<Status> CommitAsync();

  /// Version assigned by a successful Commit; kInvalidVersion otherwise.
  Version GetCommittedVersion() const { return committed_version_; }

  /// The snapshot version reads run at; acquired lazily on first read (or
  /// taken from the cluster's cache per TransactionOptions).
  Result<Version> GetReadVersion();

  /// Pins the read version explicitly (FoundationDB's setReadVersion);
  /// used to reuse a version across transactions within the 5s window.
  void SetReadVersion(Version v) { read_version_ = v; }

  /// Standard FDB retry helper: for retryable errors, backs off and resets
  /// the transaction, returning OK so the caller loops; otherwise returns
  /// the error.
  Status OnError(const Status& error);

  /// Non-blocking half of OnError for async retry loops: classifies
  /// `error` and, when retryable, resets the transaction and returns the
  /// jittered backoff delay (millis) the caller should wait — by
  /// scheduling a re-arm, never by sleeping — before re-executing.
  /// nullopt means not retryable (surface the error).
  std::optional<int64_t> PrepareRetry(const Status& error);

  /// Clears all buffered state; the transaction can be reused.
  void Reset();

  /// Approximate byte footprint of buffered mutations (size-limit input).
  int64_t Size() const { return approx_size_; }

  Database* database() const { return db_; }
  const TransactionOptions& options() const { return options_; }

 private:
  struct WriteEntry {
    enum class Kind { kSet, kClear, kAtomicChain };
    Kind kind = Kind::kSet;
    std::string set_value;
    std::vector<std::pair<AtomicOp, std::string>> atomics;
    bool base_cleared = false;
  };

  /// Returns the transaction-local view of `key` if the write buffer fully
  /// determines it (set or cleared); nullptr when storage must be
  /// consulted.
  enum class LocalView { kUnknown, kSet, kCleared, kAtomic };
  LocalView ClassifyLocal(const std::string& key,
                          const WriteEntry** entry) const;

  bool CoveredByClearedRange(const std::string& key) const;
  Status CheckUsable();
  Result<Version> EnsureReadVersion();

  /// Shared by Commit and CommitAsync: validation plus mutation assembly.
  /// Returns false for a read-only no-op commit (the transaction is marked
  /// committed and `out` is untouched); true when `out` must be submitted.
  Result<bool> BuildCommitRequest(CommitRequest* out);
  /// Records a successful submission's versionstamp.
  void ApplyCommitOutcome(const CommitOutcome& outcome);

  Database* db_;
  TransactionOptions options_;
  int64_t start_millis_;
  Version read_version_ = kInvalidVersion;
  Version committed_version_ = kInvalidVersion;
  uint16_t committed_batch_order_ = 0;
  bool committed_ = false;

  std::map<std::string, WriteEntry> writes_;
  std::vector<Mutation> versionstamped_;
  std::vector<KeyRange> cleared_ranges_;
  std::vector<KeyRange> read_conflicts_;
  std::vector<KeyRange> write_conflicts_;
  int64_t approx_size_ = 0;
  int retry_attempt_ = 0;
};

}  // namespace quick::fdb

#endif  // QUICK_FDB_TRANSACTION_H_
