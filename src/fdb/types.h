#ifndef QUICK_FDB_TYPES_H_
#define QUICK_FDB_TYPES_H_

#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace quick::fdb {

/// Database commit version. Monotonically increasing per cluster; read
/// versions are snapshots named by the version of the latest commit they
/// observe.
using Version = int64_t;

constexpr Version kInvalidVersion = -1;

struct KeyValue {
  std::string key;
  std::string value;

  bool operator==(const KeyValue&) const = default;
};

/// Atomic read-modify-write operations (FoundationDB subset). They add a
/// write conflict but no read conflict, which is what makes the Record
/// Layer COUNT index — and therefore QuiCK's queue-length observability —
/// contention-free (§4).
enum class AtomicOp {
  kAdd,      // little-endian integer addition with wrap-around
  kMin,      // unsigned little-endian minimum
  kMax,      // unsigned little-endian maximum
  kByteMin,  // lexicographic minimum
  kByteMax,  // lexicographic maximum
};

/// Per-transaction knobs mirroring the FoundationDB client options QuiCK
/// uses (§4, §6 "Isolation level").
struct TransactionOptions {
  /// Reuse the cluster's most recent read version when it is fresh enough,
  /// skipping the getReadVersion round-trip. Read-only transactions may
  /// observe slightly stale data; read-write transactions stay strictly
  /// serializable but may abort more.
  bool use_cached_read_version = false;

  /// FoundationDB's causal_read_risky: skip commit-proxy validation during
  /// getReadVersion for a faster, slightly risky read version.
  bool causal_read_risky = false;

  /// Overrides the database's transaction byte budget when non-zero.
  int64_t size_limit_bytes = 0;
};

/// FoundationDB key selector: resolves to a key relative to an anchor —
/// "the first key >= k", "the last key < k", etc., with an optional
/// offset in key order. Used to express range bounds against keys that
/// may not exist.
struct KeySelector {
  std::string key;
  /// True: anchor at keys > `key` (or >= with or_equal); false: anchor at
  /// keys < `key` (or <= with or_equal).
  bool or_equal = false;
  /// Offset in resolved-key order; as in FDB, offset 1 with
  /// (or_equal=false) means "first key >= key".
  int offset = 1;

  static KeySelector FirstGreaterOrEqual(std::string k) {
    return {std::move(k), false, 1};
  }
  static KeySelector FirstGreaterThan(std::string k) {
    return {std::move(k), true, 1};
  }
  static KeySelector LastLessOrEqual(std::string k) {
    return {std::move(k), true, 0};
  }
  static KeySelector LastLessThan(std::string k) {
    return {std::move(k), false, 0};
  }
};

struct RangeOptions {
  /// Maximum key-value pairs returned; 0 means unlimited.
  int limit = 0;
  bool reverse = false;
};

/// Injected latencies, in microseconds, modelling the paper's deployment
/// (two datacenters ~13ms apart plus satellites): GRV and commit pay
/// cross-proxy/replication cost, reads are local. All zero by default so
/// unit tests run at full speed.
struct LatencyModel {
  int64_t grv_micros = 0;
  int64_t grv_causal_read_risky_micros = 0;  // cheaper GRV variant
  int64_t read_micros = 0;
  int64_t commit_micros = 0;

  /// Roughly the paper's test cluster: ~13ms commit (cross-DC sync
  /// replication), ~2ms GRV, sub-millisecond reads.
  static LatencyModel PaperLike() {
    LatencyModel m;
    m.grv_micros = 2000;
    m.grv_causal_read_risky_micros = 300;
    m.read_micros = 300;
    m.commit_micros = 13000;
    return m;
  }
};

}  // namespace quick::fdb

#endif  // QUICK_FDB_TYPES_H_
