#ifndef QUICK_FDB_CLUSTER_SET_H_
#define QUICK_FDB_CLUSTER_SET_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "fdb/database.h"

namespace quick::fdb {

/// The fleet of FoundationDB clusters CloudKit runs on (hundreds in
/// production, §1; as many as the experiment wants here). Clusters are
/// fully independent databases; cross-cluster atomicity is intentionally
/// impossible, exactly as in the paper.
class ClusterSet {
 public:
  explicit ClusterSet(Database::Options default_options = {})
      : default_options_(default_options) {}

  /// Creates a cluster named `name`; returns the existing one if present.
  Database* AddCluster(const std::string& name) {
    return AddCluster(name, default_options_);
  }

  Database* AddCluster(const std::string& name,
                       const Database::Options& options) {
    auto it = clusters_.find(name);
    if (it != clusters_.end()) return it->second.get();
    auto db = std::make_unique<Database>(name, options);
    Database* raw = db.get();
    clusters_.emplace(name, std::move(db));
    names_.push_back(name);
    return raw;
  }

  /// Registers a non-owned cluster under `name` (a ReplicationGroup's
  /// primary — the group keeps ownership and must outlive this set);
  /// later Retarget calls follow failovers.
  Database* AddExternal(const std::string& name, Database* db) {
    Retarget(name, db);
    names_.push_back(name);
    return db;
  }

  /// nullptr when no such cluster exists. A retargeted name (region
  /// failover) resolves to its override — every caller that re-resolves
  /// per operation (cloudkit::Container does) follows the new primary on
  /// its next call.
  Database* Get(const std::string& name) const {
    {
      std::shared_lock<std::shared_mutex> lock(overrides_mu_);
      auto it = overrides_.find(name);
      if (it != overrides_.end()) return it->second;
    }
    auto it = clusters_.find(name);
    return it == clusters_.end() ? nullptr : it->second.get();
  }

  /// Repoints `name` at `db` (NOT owned — a ReplicationGroup's promoted
  /// primary) without touching the owned cluster; nullptr removes the
  /// override. Thread-safe against concurrent Get; the map of owned
  /// clusters itself must still be built before traffic starts.
  void Retarget(const std::string& name, Database* db) {
    std::unique_lock<std::shared_mutex> lock(overrides_mu_);
    if (db == nullptr) {
      overrides_.erase(name);
    } else {
      overrides_[name] = db;
    }
  }

  const std::vector<std::string>& names() const { return names_; }
  size_t size() const { return clusters_.size(); }

 private:
  Database::Options default_options_;
  std::map<std::string, std::unique_ptr<Database>> clusters_;
  std::vector<std::string> names_;
  /// Failover overrides, consulted before the owned clusters (guarded
  /// separately so hot Get paths stay a shared lock).
  mutable std::shared_mutex overrides_mu_;
  std::map<std::string, Database*> overrides_;
};

}  // namespace quick::fdb

#endif  // QUICK_FDB_CLUSTER_SET_H_
