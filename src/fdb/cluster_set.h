#ifndef QUICK_FDB_CLUSTER_SET_H_
#define QUICK_FDB_CLUSTER_SET_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fdb/database.h"

namespace quick::fdb {

/// The fleet of FoundationDB clusters CloudKit runs on (hundreds in
/// production, §1; as many as the experiment wants here). Clusters are
/// fully independent databases; cross-cluster atomicity is intentionally
/// impossible, exactly as in the paper.
class ClusterSet {
 public:
  explicit ClusterSet(Database::Options default_options = {})
      : default_options_(default_options) {}

  /// Creates a cluster named `name`; returns the existing one if present.
  Database* AddCluster(const std::string& name) {
    return AddCluster(name, default_options_);
  }

  Database* AddCluster(const std::string& name,
                       const Database::Options& options) {
    auto it = clusters_.find(name);
    if (it != clusters_.end()) return it->second.get();
    auto db = std::make_unique<Database>(name, options);
    Database* raw = db.get();
    clusters_.emplace(name, std::move(db));
    names_.push_back(name);
    return raw;
  }

  /// nullptr when no such cluster exists.
  Database* Get(const std::string& name) const {
    auto it = clusters_.find(name);
    return it == clusters_.end() ? nullptr : it->second.get();
  }

  const std::vector<std::string>& names() const { return names_; }
  size_t size() const { return clusters_.size(); }

 private:
  Database::Options default_options_;
  std::map<std::string, std::unique_ptr<Database>> clusters_;
  std::vector<std::string> names_;
};

}  // namespace quick::fdb

#endif  // QUICK_FDB_CLUSTER_SET_H_
