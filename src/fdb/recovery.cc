#include "fdb/recovery.h"

#include <algorithm>

#include "fdb/checkpoint.h"
#include "fdb/wal.h"

namespace quick::fdb {

Result<RecoveryInfo> RecoverVersionedStore(const std::string& dir,
                                           VersionedStore* store) {
  RecoveryInfo info;

  Result<CheckpointScan> scan = FindLatestValidCheckpoint(dir);
  if (!scan.ok()) return scan.status();
  info.invalid_checkpoints = scan->invalid_skipped;
  if (scan->version > 0) {
    Result<LoadedCheckpoint> ckpt = LoadCheckpointFile(scan->path);
    if (!ckpt.ok()) return ckpt.status();
    for (KeyValue& kv : ckpt->entries) {
      store->LoadSnapshotEntry(std::move(kv.key), ckpt->version,
                               std::move(kv.value));
    }
    info.checkpoint_version = ckpt->version;
    info.recovered = true;
  }

  Result<WalReplayResult> replay = ReplayWalDir(
      dir, info.checkpoint_version, [&](const WalBatch& batch) {
        for (const WalBatch::Member& member : batch.members) {
          store->Apply(member.mutations, batch.version, member.batch_order);
        }
        return Status::OK();
      });
  if (!replay.ok()) return replay.status();

  info.last_durable_version =
      std::max(info.checkpoint_version, replay->last_version);
  info.replayed_records = replay->records_applied;
  info.skipped_records = replay->records_skipped;
  info.truncated_bytes = replay->truncated_bytes;
  info.truncated = replay->truncated;
  info.next_wal_seq = replay->max_segment_seq + 1;
  info.segment_max_versions = std::move(replay->segment_max_versions);
  if (replay->segments_scanned > 0) info.recovered = true;
  return info;
}

}  // namespace quick::fdb
