#ifndef QUICK_FDB_FAULT_INJECTOR_H_
#define QUICK_FDB_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "common/random.h"
#include "common/status.h"

namespace quick::fdb {

/// Probabilistic fault injection for the simulated cluster. Used by the
/// failure-injection tests to exercise QuiCK's at-least-once guarantee:
/// commit_unknown_result in particular is the FDB failure mode the paper
/// calls out (§6.1, [11]) — the commit may or may not have applied.
class FaultInjector {
 public:
  struct Config {
    /// Probability a commit reports kCommitUnknownResult while having
    /// actually applied.
    double unknown_result_applied = 0.0;
    /// Probability a commit reports kCommitUnknownResult without applying.
    double unknown_result_dropped = 0.0;
    /// Probability a commit fails with a transient kUnavailable before
    /// being applied.
    double commit_unavailable = 0.0;
    /// Probability getReadVersion fails with transient kUnavailable.
    double grv_unavailable = 0.0;
    uint64_t seed = 42;
  };

  FaultInjector() : FaultInjector(Config{}) {}
  explicit FaultInjector(const Config& config)
      : config_(config), rng_(config.seed) {}

  enum class CommitFault { kNone, kUnknownApplied, kUnknownDropped, kUnavailable };

  /// Rolls the dice for one commit attempt. Thread-safe.
  CommitFault NextCommitFault() {
    if (config_.unknown_result_applied == 0 &&
        config_.unknown_result_dropped == 0 && config_.commit_unavailable == 0) {
      return CommitFault::kNone;
    }
    std::lock_guard<std::mutex> lock(mu_);
    const double roll = rng_.NextDouble();
    if (roll < config_.unknown_result_applied) {
      return CommitFault::kUnknownApplied;
    }
    if (roll < config_.unknown_result_applied + config_.unknown_result_dropped) {
      return CommitFault::kUnknownDropped;
    }
    if (roll < config_.unknown_result_applied + config_.unknown_result_dropped +
                   config_.commit_unavailable) {
      return CommitFault::kUnavailable;
    }
    return CommitFault::kNone;
  }

  /// True when this GRV call should fail transiently. Thread-safe.
  bool NextGrvFault() {
    if (config_.grv_unavailable == 0) return false;
    std::lock_guard<std::mutex> lock(mu_);
    return rng_.NextDouble() < config_.grv_unavailable;
  }

  const Config& config() const { return config_; }

 private:
  Config config_;
  std::mutex mu_;
  Random rng_;
};

}  // namespace quick::fdb

#endif  // QUICK_FDB_FAULT_INJECTOR_H_
