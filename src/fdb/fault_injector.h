#ifndef QUICK_FDB_FAULT_INJECTOR_H_
#define QUICK_FDB_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>

#include "common/clock.h"
#include "common/random.h"
#include "common/status.h"
#include "fdb/fault_plan.h"

namespace quick::fdb {

/// Fault injection for the simulated cluster, combining two layers:
///
///  - a base probabilistic config (coin-flip per operation), exercising
///    QuiCK's at-least-once guarantee — commit_unknown_result in particular
///    is the FDB failure mode the paper calls out (§6.1, [11]): the commit
///    may or may not have applied;
///  - an optional time-windowed FaultPlan layering scheduled cluster
///    outages, elevated failure rates, forced transaction_too_old, and
///    latency spikes on top (the adversarial schedules the chaos suites
///    drive).
///
/// Evaluation is deterministic given (config.seed, plan, clock): windows
/// are a pure function of Clock time and all rolls come from one seeded
/// RNG.
class FaultInjector {
 public:
  struct Config {
    /// Probability a commit reports kCommitUnknownResult while having
    /// actually applied.
    double unknown_result_applied = 0.0;
    /// Probability a commit reports kCommitUnknownResult without applying.
    double unknown_result_dropped = 0.0;
    /// Probability a commit fails with a transient kUnavailable before
    /// being applied.
    double commit_unavailable = 0.0;
    /// Probability getReadVersion fails with transient kUnavailable.
    double grv_unavailable = 0.0;
    uint64_t seed = 42;
  };

  /// Cumulative injected-fault counters (observability for chaos tests).
  struct Counts {
    int64_t outage_rejections = 0;
    int64_t read_faults = 0;
    int64_t forced_too_old = 0;
    int64_t latency_spike_millis = 0;
    int64_t torn_writes = 0;
    int64_t corrupted_writes = 0;
    int64_t fsync_stall_millis = 0;
    int64_t link_drops = 0;
    int64_t link_duplicates = 0;
    int64_t link_delay_millis = 0;
    int64_t link_partitions = 0;
  };

  FaultInjector() : FaultInjector(Config{}) {}
  explicit FaultInjector(const Config& config, FaultPlan plan = {},
                         Clock* clock = nullptr)
      : config_(config),
        plan_(std::move(plan)),
        clock_(clock),
        rng_(config.seed) {}

  enum class CommitFault {
    kNone,
    kUnknownApplied,
    kUnknownDropped,
    kUnavailable,
    kTooOld,
  };

  /// Rolls the dice for one commit attempt. Thread-safe.
  CommitFault NextCommitFault() {
    const FaultWindow effect = ActiveEffect();
    if (effect.full_outage) {
      outage_rejections_.fetch_add(1, std::memory_order_relaxed);
      return CommitFault::kUnavailable;
    }
    const double p_unavailable =
        config_.commit_unavailable + effect.commit_unavailable;
    if (config_.unknown_result_applied == 0 &&
        config_.unknown_result_dropped == 0 && p_unavailable == 0 &&
        effect.transaction_too_old == 0) {
      return CommitFault::kNone;
    }
    std::lock_guard<std::mutex> lock(mu_);
    const double roll = rng_.NextDouble();
    double threshold = config_.unknown_result_applied;
    if (roll < threshold) return CommitFault::kUnknownApplied;
    threshold += config_.unknown_result_dropped;
    if (roll < threshold) return CommitFault::kUnknownDropped;
    threshold += p_unavailable;
    if (roll < threshold) return CommitFault::kUnavailable;
    threshold += effect.transaction_too_old;
    if (roll < threshold) {
      forced_too_old_.fetch_add(1, std::memory_order_relaxed);
      return CommitFault::kTooOld;
    }
    return CommitFault::kNone;
  }

  /// True when this GRV call should fail transiently. Thread-safe.
  bool NextGrvFault() {
    const FaultWindow effect = ActiveEffect();
    if (effect.full_outage) {
      outage_rejections_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    const double p = config_.grv_unavailable + effect.grv_unavailable;
    if (p == 0) return false;
    std::lock_guard<std::mutex> lock(mu_);
    return rng_.NextDouble() < p;
  }

  /// Fault decision for one read (point or range): OK, kUnavailable, or
  /// kTransactionTooOld. Thread-safe.
  Status NextReadFault() {
    const FaultWindow effect = ActiveEffect();
    if (effect.full_outage) {
      outage_rejections_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("injected outage: cluster unreachable");
    }
    if (effect.read_unavailable == 0 && effect.transaction_too_old == 0) {
      return Status::OK();
    }
    std::lock_guard<std::mutex> lock(mu_);
    const double roll = rng_.NextDouble();
    if (roll < effect.read_unavailable) {
      read_faults_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable("injected read failure");
    }
    if (roll < effect.read_unavailable + effect.transaction_too_old) {
      forced_too_old_.fetch_add(1, std::memory_order_relaxed);
      return Status::TransactionTooOld("injected transaction_too_old");
    }
    return Status::OK();
  }

  /// Milliseconds of scheduled latency spike currently in effect; the
  /// caller pays them on its Clock (ManualClock advances, SystemClock
  /// blocks). Thread-safe.
  int64_t ExtraLatencyMillis() {
    if (plan_.empty() || clock_ == nullptr) return 0;
    const int64_t extra =
        plan_.EffectAt(clock_->NowMillis()).extra_latency_millis;
    if (extra > 0) {
      latency_spike_millis_.fetch_add(extra, std::memory_order_relaxed);
    }
    return extra;
  }

  /// Advances the ordinal counter for `op` and returns the scheduled disk
  /// fault firing at the new ordinal, if any (at most one fires per
  /// operation; when several are scheduled on the same ordinal the first
  /// added wins). Thread-safe. The WAL / checkpoint writer consumes the
  /// fault; counters here record what was handed out.
  std::optional<DiskFault> NextDiskFault(DiskFault::Op op) {
    if (plan_.disk_faults().empty()) return std::nullopt;
    int64_t ordinal;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ordinal = ++disk_op_counts_[static_cast<size_t>(op)];
    }
    for (const DiskFault& f : plan_.disk_faults()) {
      if (f.op != op || f.at_op != ordinal) continue;
      switch (f.kind) {
        case DiskFault::Kind::kTornWrite:
          torn_writes_.fetch_add(1, std::memory_order_relaxed);
          break;
        case DiskFault::Kind::kChecksumCorruption:
          corrupted_writes_.fetch_add(1, std::memory_order_relaxed);
          break;
        case DiskFault::Kind::kFsyncStall:
          fsync_stall_millis_.fetch_add(f.stall_millis,
                                        std::memory_order_relaxed);
          break;
      }
      return f;
    }
    return std::nullopt;
  }

  /// Advances the replication-link send ordinal and returns the scheduled
  /// link fault firing at the new ordinal, if any (first added wins on a
  /// shared ordinal). Thread-safe. The ReplicationLink consumes the fault;
  /// counters here record what was handed out.
  std::optional<LinkFault> NextLinkFault() {
    if (plan_.link_faults().empty()) return std::nullopt;
    int64_t ordinal;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ordinal = ++link_op_count_;
    }
    for (const LinkFault& f : plan_.link_faults()) {
      if (f.at_op != ordinal) continue;
      switch (f.kind) {
        case LinkFault::Kind::kDrop:
          link_drops_.fetch_add(1, std::memory_order_relaxed);
          break;
        case LinkFault::Kind::kDuplicate:
          link_duplicates_.fetch_add(1, std::memory_order_relaxed);
          break;
        case LinkFault::Kind::kDelay:
          link_delay_millis_.fetch_add(f.delay_millis,
                                       std::memory_order_relaxed);
          break;
        case LinkFault::Kind::kPartition:
          link_partitions_.fetch_add(1, std::memory_order_relaxed);
          break;
      }
      return f;
    }
    return std::nullopt;
  }

  const Config& config() const { return config_; }
  const FaultPlan& plan() const { return plan_; }

  Counts counts() const {
    Counts out;
    out.outage_rejections =
        outage_rejections_.load(std::memory_order_relaxed);
    out.read_faults = read_faults_.load(std::memory_order_relaxed);
    out.forced_too_old = forced_too_old_.load(std::memory_order_relaxed);
    out.latency_spike_millis =
        latency_spike_millis_.load(std::memory_order_relaxed);
    out.torn_writes = torn_writes_.load(std::memory_order_relaxed);
    out.corrupted_writes = corrupted_writes_.load(std::memory_order_relaxed);
    out.fsync_stall_millis =
        fsync_stall_millis_.load(std::memory_order_relaxed);
    out.link_drops = link_drops_.load(std::memory_order_relaxed);
    out.link_duplicates = link_duplicates_.load(std::memory_order_relaxed);
    out.link_delay_millis =
        link_delay_millis_.load(std::memory_order_relaxed);
    out.link_partitions = link_partitions_.load(std::memory_order_relaxed);
    return out;
  }

 private:
  /// The plan's aggregate effect at the cluster's current time; zero-effect
  /// when no plan or no clock was supplied.
  FaultWindow ActiveEffect() const {
    if (plan_.empty() || clock_ == nullptr) return FaultWindow{};
    return plan_.EffectAt(clock_->NowMillis());
  }

  Config config_;
  FaultPlan plan_;
  Clock* clock_;
  std::mutex mu_;
  Random rng_;

  std::atomic<int64_t> outage_rejections_{0};
  std::atomic<int64_t> read_faults_{0};
  std::atomic<int64_t> forced_too_old_{0};
  std::atomic<int64_t> latency_spike_millis_{0};
  std::atomic<int64_t> torn_writes_{0};
  std::atomic<int64_t> corrupted_writes_{0};
  std::atomic<int64_t> fsync_stall_millis_{0};
  std::atomic<int64_t> link_drops_{0};
  std::atomic<int64_t> link_duplicates_{0};
  std::atomic<int64_t> link_delay_millis_{0};
  std::atomic<int64_t> link_partitions_{0};
  /// Per-Op ordinal counters for scheduled disk faults (guarded by mu_).
  int64_t disk_op_counts_[2] = {0, 0};
  /// Replication-link send ordinal (guarded by mu_).
  int64_t link_op_count_ = 0;
};

}  // namespace quick::fdb

#endif  // QUICK_FDB_FAULT_INJECTOR_H_
