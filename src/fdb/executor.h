#ifndef QUICK_FDB_EXECUTOR_H_
#define QUICK_FDB_EXECUTOR_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.h"

namespace quick::fdb {

/// Where async transaction continuations run. Post schedules a task as soon
/// as a thread is free; PostAfter schedules it once `delay_millis` of the
/// executor's clock have elapsed — the non-blocking replacement for a
/// backoff sleep (a retrying transaction re-arms instead of parking the
/// thread that drains the pipeline).
class Executor {
 public:
  virtual ~Executor() = default;
  virtual void Post(std::function<void()> fn) = 0;
  virtual void PostAfter(int64_t delay_millis, std::function<void()> fn) = 0;
};

/// Deterministic single-threaded executor for unit tests: nothing runs
/// until the test pumps it. Posting is thread-safe (commit acks arrive from
/// the cluster's pump thread); running is meant for the test thread.
class ManualExecutor : public Executor {
 public:
  void Post(std::function<void()> fn) override {
    std::lock_guard<std::mutex> lock(mu_);
    ready_.push_back(std::move(fn));
  }

  void PostAfter(int64_t delay_millis, std::function<void()> fn) override {
    std::lock_guard<std::mutex> lock(mu_);
    timers_.emplace_back(now_millis_ + std::max<int64_t>(delay_millis, 0),
                         std::move(fn));
  }

  /// Advances the executor's virtual clock; due timers become ready in
  /// deadline order.
  void AdvanceMillis(int64_t millis) {
    std::lock_guard<std::mutex> lock(mu_);
    now_millis_ += millis;
    std::stable_sort(timers_.begin(), timers_.end(),
                     [](const Timer& a, const Timer& b) {
                       return a.first < b.first;
                     });
    while (!timers_.empty() && timers_.front().first <= now_millis_) {
      ready_.push_back(std::move(timers_.front().second));
      timers_.erase(timers_.begin());
    }
  }

  /// Runs tasks (including those they post) until the queue is empty.
  /// Returns the number executed.
  int RunUntilIdle() {
    int ran = 0;
    for (;;) {
      std::function<void()> task;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (ready_.empty()) return ran;
        task = std::move(ready_.front());
        ready_.pop_front();
      }
      task();
      ++ran;
    }
  }

  size_t PendingTimers() const {
    std::lock_guard<std::mutex> lock(mu_);
    return timers_.size();
  }

  int64_t now_millis() const {
    std::lock_guard<std::mutex> lock(mu_);
    return now_millis_;
  }

 private:
  using Timer = std::pair<int64_t, std::function<void()>>;
  mutable std::mutex mu_;
  std::deque<std::function<void()>> ready_;
  std::vector<Timer> timers_;
  int64_t now_millis_ = 0;
};

/// N worker threads draining a task queue, with timers measured on the
/// injected Clock. With a SystemClock, timer waits are real condition-
/// variable waits; with a ManualClock the pool degrades to a short
/// real-time poll (deterministic tests should prefer ManualExecutor).
class ThreadPoolExecutor : public Executor {
 public:
  explicit ThreadPoolExecutor(int num_threads,
                              Clock* clock = SystemClock::Default())
      : clock_(clock) {
    threads_.reserve(static_cast<size_t>(std::max(num_threads, 1)));
    for (int i = 0; i < std::max(num_threads, 1); ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPoolExecutor() override { Shutdown(); }

  void Post(std::function<void()> fn) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return;  // shutting down: drop (captured state frees)
      ready_.push_back(std::move(fn));
    }
    cv_.notify_one();
  }

  void PostAfter(int64_t delay_millis, std::function<void()> fn) override {
    if (delay_millis <= 0) {
      Post(std::move(fn));
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return;
      timers_.push(Timer{clock_->NowMillis() + delay_millis, next_timer_seq_++,
                         std::move(fn)});
    }
    cv_.notify_one();
  }

  /// Stops the pool and joins every thread. Queued tasks and pending timers
  /// are dropped — callers that need their continuations to finish must
  /// drain before shutting down. Safe to call twice.
  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return;
      stopped_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

 private:
  struct Timer {
    int64_t due_millis;
    uint64_t seq;  // FIFO among equal deadlines
    std::function<void()> fn;
    bool operator>(const Timer& other) const {
      if (due_millis != other.due_millis) return due_millis > other.due_millis;
      return seq > other.seq;
    }
  };

  void WorkerLoop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stopped_) {
      const int64_t now = clock_->NowMillis();
      while (!timers_.empty() && timers_.top().due_millis <= now) {
        ready_.push_back(std::move(const_cast<Timer&>(timers_.top()).fn));
        timers_.pop();
      }
      if (!ready_.empty()) {
        std::function<void()> task = std::move(ready_.front());
        ready_.pop_front();
        lock.unlock();
        task();
        lock.lock();
        continue;
      }
      if (timers_.empty()) {
        cv_.wait(lock);
      } else {
        // Bounded wait so a ManualClock (whose time moves independently of
        // real time) still gets its timers fired promptly.
        const int64_t wait = std::clamp<int64_t>(
            timers_.top().due_millis - now, 1, 20);
        cv_.wait_for(lock, std::chrono::milliseconds(wait));
      }
    }
  }

  Clock* clock_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> ready_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  uint64_t next_timer_seq_ = 0;
  bool stopped_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace quick::fdb

#endif  // QUICK_FDB_EXECUTOR_H_
