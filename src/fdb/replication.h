#ifndef QUICK_FDB_REPLICATION_H_
#define QUICK_FDB_REPLICATION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/file_io.h"
#include "common/result.h"
#include "common/status.h"
#include "fdb/database.h"
#include "fdb/fault_injector.h"
#include "fdb/types.h"

namespace quick::fdb {

/// Warm-standby replication and fenced region failover (DESIGN.md §10).
///
/// Each simulated cluster becomes a replication group: one primary region
/// (a full Database, the only region taking traffic) plus N standby
/// regions that hold byte-identical copies of the primary's WAL. A
/// LogShipper tails the primary's segments and forwards each framed
/// record verbatim over a fault-injectable ReplicationLink; the standby's
/// ReplicaApplier re-validates the CRC and appends the frame to its own
/// log in strict version order, so a promoted standby recovers through
/// the exact same checkpoint-plus-tail path as a restarted primary.
///
/// Failover is fenced by a durably-stored, monotonically increasing
/// replication epoch (FencingService). Every commit the primary
/// acknowledges first passes a commit fence carrying the epoch it was
/// started under; promotion seals the old epoch, so a zombie primary —
/// partitioned but still taking traffic — has every late acknowledgement
/// refused (its clients see kCommitUnknownResult, never success) and the
/// refusal halts it for good. Invariants:
///
///  16. A standby applies version v only after applying v-1 (dense,
///      CRC-checked); any gap, reorder, or byte divergence halts the
///      replica with a kReplicaDivergence alert rather than serving a
///      forked history.
///  17. No commit is acknowledged under a sealed epoch: promotion seals
///      epoch e at acked version A, the new primary provably contains
///      every version <= A, and any post-seal ack attempt from the old
///      primary is refused and fences it.

/// Observable replication state change, surfaced to the workload harness
/// as operator alerts.
struct ReplicationEvent {
  enum class Kind {
    /// A standby detected a version gap, reorder, or CRC divergence and
    /// halted itself (invariant 16).
    kReplicaDivergence,
    /// An epoch was sealed at the start of a failover.
    kEpochSealed,
    /// A standby was promoted to primary under a new epoch.
    kPromoted,
    /// Promotion was refused: the candidate had not applied everything
    /// acknowledged under the sealed epoch (invariant 17's guard).
    kPromotionRefused,
  };
  Kind kind = Kind::kReplicaDivergence;
  std::string region;
  uint64_t epoch = 0;
  Version version = 0;
  std::string detail;
};

/// Invoked inline by replication components; must not call back into the
/// emitting ReplicationGroup (the group's lock may be held).
using ReplicationEventCallback = std::function<void(const ReplicationEvent&)>;

/// The control plane's fencing authority for one replication group: owns
/// the durable MANIFEST recording the current epoch, its primary region,
/// the highest version acknowledged under it, and the final acked version
/// of every sealed epoch. Thread-safe; modelled as always-available
/// (highly-available control plane) except for regions explicitly
/// partitioned from it.
///
/// MANIFEST format (binary, CRC-sealed, written atomically):
///   u32 magic 'QFNC' | u32 format | u64 current_epoch | u8 sealed |
///   u32 region_len | region | u64 acked |
///   u32 sealed_count | (u64 epoch, u64 acked)* | u32 crc
class FencingService {
 public:
  explicit FencingService(std::string manifest_path)
      : path_(std::move(manifest_path)) {}

  /// Loads the manifest; a missing file is a fresh group (epoch 0).
  Status Load();

  uint64_t current_epoch() const;
  std::string primary_region() const;
  bool sealed() const;
  /// Highest version acknowledged under the current epoch.
  Version acked_version() const;
  /// Final acked version of a sealed epoch (0 when unknown).
  Version SealedAckedVersion(uint64_t epoch) const;

  /// Opens epoch current+1 with `region` as primary and persists the
  /// manifest. The acked floor carries over: the promotion precondition
  /// guarantees the new primary contains every version acked so far.
  /// Requires the previous epoch to be sealed (or this to be the first).
  Result<uint64_t> BeginEpoch(const std::string& region);

  /// Seals the current epoch at its acked version and persists; further
  /// AckFence calls under it are refused. Idempotent.
  Status SealEpoch();

  /// The primary's commit fence: confirms `region` still owns `epoch`
  /// before the batch at `version` may be acknowledged. kUnavailable when
  /// the region is partitioned from the control plane (the batch is
  /// demoted but the region keeps serving); kFailedPrecondition when the
  /// epoch is sealed or not the region's (the caller must halt — it has
  /// been failed away from). Acks are recorded in memory and persisted at
  /// seal time.
  Status AckFence(uint64_t epoch, const std::string& region, Version version);

  /// Partitions `region` from the control plane (its fence calls fail
  /// kUnavailable) or heals it.
  void SetPartitioned(const std::string& region, bool partitioned);
  bool IsPartitioned(const std::string& region) const;

 private:
  Status PersistLocked();

  const std::string path_;
  mutable std::mutex mu_;
  uint64_t current_epoch_ = 0;
  bool sealed_ = false;
  std::string primary_region_;
  Version acked_ = 0;
  std::map<uint64_t, Version> sealed_acked_;
  std::set<std::string> partitioned_;
};

/// The network path from a primary to one standby. Scheduled LinkFaults
/// (fault_plan.h) fire per send ordinal; a partition is sticky until
/// healed. Thread-safe.
class ReplicationLink {
 public:
  struct Stats {
    int64_t sends = 0;
    int64_t delivered = 0;
    int64_t dropped = 0;
    int64_t duplicated = 0;
  };

  ReplicationLink(FaultInjector* faults, Clock* clock)
      : faults_(faults), clock_(clock) {}

  /// Attempts one send of `bytes`. Returns how many copies arrive: 0
  /// (dropped, or the link is partitioned), 1 (delivered, possibly after
  /// an injected delay paid on the cluster Clock), or 2 (duplicated).
  int Transfer(size_t bytes);

  void SetPartitioned(bool partitioned) {
    partitioned_.store(partitioned, std::memory_order_release);
  }
  bool partitioned() const {
    return partitioned_.load(std::memory_order_acquire);
  }

  Stats stats() const;

 private:
  FaultInjector* const faults_;
  Clock* const clock_;
  std::atomic<bool> partitioned_{false};
  std::atomic<int64_t> sends_{0};
  std::atomic<int64_t> delivered_{0};
  std::atomic<int64_t> dropped_{0};
  std::atomic<int64_t> duplicated_{0};
};

/// A standby region's apply loop: receives framed WAL records (and whole
/// checkpoints for catch-up), re-validates them, and appends them to the
/// region's own log directory in strict version order. Purely disk-backed
/// — promotion constructs a Database over the directory and runs ordinary
/// recovery. Thread-safe.
class ReplicaApplier {
 public:
  struct Options {
    std::string dir;
    std::string region;
    ReplicationEventCallback on_event;
  };

  struct Stats {
    int64_t frames_applied = 0;
    /// Frames at or below the applied version (duplicates / re-ships),
    /// verified and skipped.
    int64_t frames_skipped = 0;
    int64_t checkpoints_installed = 0;
  };

  explicit ReplicaApplier(Options options) : options_(std::move(options)) {}

  /// Creates the directory and recovers the applied version from any
  /// existing checkpoint + log tail (a replica restart resumes; torn
  /// tails are truncated exactly as primary recovery does).
  Status Open();

  /// Closes the open segment file (called before promotion hands the
  /// directory to Database recovery).
  Status Close();

  /// Applies one framed WAL record shipped under `epoch`. Strictly
  /// ordered: the frame must decode CRC-clean and carry version
  /// applied+1; an already-applied version is verified byte-identical
  /// and skipped (idempotence under duplication). Any gap, stale bytes
  /// at a known version, or decode failure halts the replica and emits
  /// kReplicaDivergence (invariant 16). Frames from an epoch older than
  /// the newest seen are refused without halting (a zombie's shipments).
  Status ApplyFrame(uint64_t epoch, std::string_view frame);

  /// Replaces the replica's entire state with a checkpoint at `version`
  /// (catch-up when the primary retired the segments the replica still
  /// needed): wipes the directory, installs the checkpoint file, and
  /// resumes applying from `version`.
  Status InstallCheckpoint(uint64_t epoch, Version version,
                           std::string_view blob);

  /// Fsyncs the replica's open segment (once per shipper pump, not per
  /// frame).
  Status Sync();

  Version applied_version() const {
    return applied_.load(std::memory_order_acquire);
  }
  bool halted() const { return halted_.load(std::memory_order_acquire); }
  const std::string& dir() const { return options_.dir; }
  const std::string& region() const { return options_.region; }
  Stats stats() const;

 private:
  Status OpenSegmentLocked();
  /// Divergence halt: the replica refuses to extend a forked history.
  Status HaltLocked(Version version, const std::string& detail);

  const Options options_;
  mutable std::mutex mu_;
  AppendFile file_;
  uint64_t next_seq_ = 1;
  uint64_t epoch_seen_ = 0;
  /// CRC-32C of the frame at applied_version (0 = unknown, e.g. right
  /// after open or checkpoint install) — the byte-divergence check for
  /// re-shipped duplicates.
  uint32_t last_crc_ = 0;
  std::atomic<Version> applied_{0};
  std::atomic<bool> halted_{false};
  std::atomic<int64_t> frames_applied_{0};
  std::atomic<int64_t> frames_skipped_{0};
  std::atomic<int64_t> checkpoints_installed_{0};
};

/// Tails the primary's WAL directory and ships each published record to
/// one standby over a ReplicationLink. Pull-based and resumable: the
/// shipper remembers its (segment, offset) position, never advances past
/// an undelivered frame (a drop stalls the stream, preserving order), and
/// ships nothing above the primary's published version — unacknowledged
/// appends, in particular a fenced zombie's, never reach a standby. When
/// the primary has retired segments the standby still needs, the shipper
/// sends the newest checkpoint instead and resumes from its version.
/// Thread-safe; one pump runs at a time.
class LogShipper {
 public:
  struct Stats {
    int64_t pumps = 0;
    int64_t frames_shipped = 0;
    int64_t checkpoints_shipped = 0;
  };

  LogShipper(Database* primary, ReplicaApplier* follower,
             ReplicationLink* link, uint64_t epoch)
      : primary_(primary),
        follower_(follower),
        link_(link),
        epoch_(epoch) {}

  /// Ships as much of the primary's published log as the link allows.
  /// kUnavailable when the primary is dead; kFailedPrecondition when the
  /// follower halted or refused the epoch; OK otherwise (including a
  /// stalled link — the next pump retries from the same position).
  Status PumpOnce();

  Stats stats() const;

 private:
  Database* const primary_;
  ReplicaApplier* const follower_;
  ReplicationLink* const link_;
  const uint64_t epoch_;

  std::mutex mu_;
  /// Resume position: first segment to (re)read and the offset within
  /// it; seq 0 = rescan from the lowest existing segment.
  uint64_t cur_seq_ = 0;
  uint64_t cur_off_ = 0;

  std::atomic<int64_t> pumps_{0};
  std::atomic<int64_t> frames_shipped_{0};
  std::atomic<int64_t> checkpoints_shipped_{0};
};

struct ReplicationGroupOptions {
  /// Warm standbys per group (regions = 1 primary + num_replicas).
  int num_replicas = 1;
  /// Template for every region's Database (clock, latency, faults,
  /// durability tuning); enable_wal, dir, and commit_fence are overridden
  /// per region.
  Database::Options db_options;
  /// Group root; region i lives in <dir>/region<i>, the fencing MANIFEST
  /// at <dir>/MANIFEST.
  std::string dir;
  ReplicationEventCallback on_event;
};

/// One replicated cluster: primary Database + standby appliers + the
/// shippers and fencing that tie them together. Owns every region's
/// objects; a Database retired by failover (the zombie) is kept alive —
/// clients hold raw pointers and must keep observing kUnavailable /
/// kCommitUnknownResult from it, never use-after-free. Thread-safe.
class ReplicationGroup {
 public:
  struct FailoverOptions {
    /// Read the failed region's durable log store directly (checkpoint +
    /// tail, capped at the sealed epoch's acked version) to catch the
    /// target up before promoting — the disk outlives the region. With
    /// this off, a target behind the sealed acked version refuses
    /// promotion instead.
    bool drain_from_old_region = true;
    /// Region index to promote; -1 picks the most-caught-up live standby.
    int target_region = -1;
  };

  ReplicationGroup(std::string name, ReplicationGroupOptions options);
  ~ReplicationGroup();

  ReplicationGroup(const ReplicationGroup&) = delete;
  ReplicationGroup& operator=(const ReplicationGroup&) = delete;

  /// Loads the fencing manifest (resuming a prior epoch after a restart,
  /// or opening epoch 1 on region0), recovers the primary Database, and
  /// opens every standby.
  Status Start();

  static std::string RegionName(int index);
  std::string RegionDir(int index) const;
  int num_regions() const { return options_.num_replicas + 1; }

  /// The current primary. Stable until the next Failover; after one, the
  /// old pointer stays valid but halted/fenced.
  Database* primary() const;
  std::string primary_region() const;
  uint64_t epoch() const;

  /// Ships every standby one pump's worth of log. Safe to call
  /// concurrently with traffic and with Failover.
  Status PumpOnce();

  /// Fails the group over: seals the current epoch at its acked version,
  /// picks the target standby, optionally drains the old region's
  /// durable log into it, refuses (kFailedPrecondition, with a
  /// kPromotionRefused event) if the target still lacks acked history,
  /// then begins the new epoch and recovers a fresh primary Database
  /// over the target's directory. The old primary is retired but kept
  /// alive; its next fence ack refuses and halts it.
  Result<std::string> Failover(const FailoverOptions& options);
  Result<std::string> Failover() { return Failover(FailoverOptions{}); }

  /// Kills the primary region's process (it stops serving immediately);
  /// its disk survives for Failover's drain.
  void KillPrimary();

  /// Wipes a failed region (typically the old primary) and re-enrols it
  /// as an empty standby of the current primary; catch-up arrives via
  /// checkpoint + tail on the next pumps. Heals its control partition.
  Status RejoinAsFollower(const std::string& region);

  /// Partitions the shipping link to one standby region (or heals it).
  void SetLinkPartitioned(const std::string& region, bool partitioned);
  /// Partitions a region from the control plane: a primary so
  /// partitioned keeps serving but every ack is withheld (the zombie
  /// scenario's first half).
  void SetControlPartitioned(const std::string& region, bool partitioned);

  Version ReplicaAppliedVersion(const std::string& region) const;
  bool ReplicaHalted(const std::string& region) const;
  FencingService* fencing() { return &fencing_; }
  LogShipper::Stats ShipperStats(const std::string& region) const;
  ReplicaApplier::Stats ApplierStats(const std::string& region) const;

 private:
  struct Follower {
    std::unique_ptr<ReplicaApplier> applier;
    std::unique_ptr<ReplicationLink> link;
    std::unique_ptr<LogShipper> shipper;
  };

  int RegionIndex(const std::string& region) const;
  std::unique_ptr<Database> MakeRegionDatabase(int region, uint64_t epoch);
  Follower MakeFollower(int region, uint64_t epoch);
  /// Reads the failed region's directory (its durable log store) and
  /// applies everything up to `up_to` into `target` directly — the
  /// out-of-band catch-up path that bypasses the (possibly partitioned)
  /// link.
  Status DrainRegionDir(const std::string& from_dir, uint64_t old_epoch,
                        Version up_to, ReplicaApplier* target);
  void Emit(ReplicationEvent::Kind kind, const std::string& region,
            uint64_t epoch, Version version, std::string detail);

  const std::string name_;
  const ReplicationGroupOptions options_;
  FencingService fencing_;

  mutable std::mutex mu_;
  uint64_t epoch_ = 0;
  int primary_index_ = 0;
  std::unique_ptr<Database> primary_db_;
  std::map<int, Follower> followers_;
  /// Zombie primaries from past epochs, kept alive for stale client
  /// pointers; halted (or about to halt on their next fence refusal).
  std::vector<std::pair<int, std::unique_ptr<Database>>> retired_;
};

}  // namespace quick::fdb

#endif  // QUICK_FDB_REPLICATION_H_
