#include "fdb/database.h"

#include <thread>

namespace quick::fdb {

Database::Database(std::string name) : Database(std::move(name), Options{}) {}

Database::Database(std::string name, Options options)
    : name_(std::move(name)),
      options_(options),
      faults_(options.faults, options.fault_plan, options.clock),
      latency_(options.latency) {}

void Database::InjectLatency(int64_t micros) {
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
  // Scheduled latency spikes are paid on the cluster's Clock so that a
  // ManualClock advances deterministically (and transactions age) instead
  // of the test blocking in real time.
  const int64_t spike_millis = faults_.ExtraLatencyMillis();
  if (spike_millis > 0) {
    options_.clock->SleepMillis(spike_millis);
  }
}

Result<Version> Database::AcquireReadVersion(const TransactionOptions& topts) {
  if (topts.use_cached_read_version) {
    std::lock_guard<std::mutex> lock(grv_cache_mu_);
    if (cached_grv_ != kInvalidVersion &&
        options_.clock->NowMillis() - cached_grv_time_millis_ <=
            options_.grv_cache_staleness_millis) {
      stats_.grv_cache_hits.fetch_add(1, std::memory_order_relaxed);
      return cached_grv_;
    }
  }
  if (faults_.NextGrvFault()) {
    return Status::Unavailable("injected GRV failure");
  }
  InjectLatency(topts.causal_read_risky
                    ? latency_.grv_causal_read_risky_micros
                    : latency_.grv_micros);
  const Version v = last_version_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lock(grv_cache_mu_);
    cached_grv_ = v;
    cached_grv_time_millis_ = options_.clock->NowMillis();
  }
  stats_.grv_calls.fetch_add(1, std::memory_order_relaxed);
  return v;
}

Result<std::optional<std::string>> Database::ReadAt(const std::string& key,
                                                    Version version) {
  InjectLatency(latency_.read_micros);
  QUICK_RETURN_IF_ERROR(faults_.NextReadFault());
  if (version < min_read_version_.load(std::memory_order_acquire)) {
    return Status::TransactionTooOld("read version pruned");
  }
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lock(mu_);
  return store_.Get(key, version);
}

Result<std::vector<KeyValue>> Database::ReadRangeAt(
    const KeyRange& range, Version version, const RangeOptions& options) {
  InjectLatency(latency_.read_micros);
  QUICK_RETURN_IF_ERROR(faults_.NextReadFault());
  if (version < min_read_version_.load(std::memory_order_acquire)) {
    return Status::TransactionTooOld("read version pruned");
  }
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lock(mu_);
  return store_.GetRange(range, version, options);
}

Result<Version> Database::CommitAt(CommitRequest&& request) {
  stats_.commits_attempted.fetch_add(1, std::memory_order_relaxed);
  // Replication latency is paid before entering the critical section so
  // concurrent commits pipeline rather than serialize.
  InjectLatency(latency_.commit_micros);

  const FaultInjector::CommitFault fault = faults_.NextCommitFault();
  if (fault == FaultInjector::CommitFault::kUnavailable) {
    return Status::Unavailable("injected commit failure");
  }
  if (fault == FaultInjector::CommitFault::kTooOld) {
    stats_.too_old.fetch_add(1, std::memory_order_relaxed);
    return Status::TransactionTooOld("injected transaction_too_old");
  }

  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!request.read_conflicts.empty()) {
    if (request.read_version < tracker_.MinCheckableVersion()) {
      stats_.too_old.fetch_add(1, std::memory_order_relaxed);
      return Status::TransactionTooOld("read version predates resolver window");
    }
    if (tracker_.HasConflict(request.read_conflicts, request.read_version)) {
      stats_.conflicts.fetch_add(1, std::memory_order_relaxed);
      return Status::NotCommitted();
    }
  }

  if (fault == FaultInjector::CommitFault::kUnknownDropped) {
    stats_.unknown_results.fetch_add(1, std::memory_order_relaxed);
    return Status::CommitUnknownResult("injected; not applied");
  }

  const Version version = last_version_.load(std::memory_order_relaxed) + 1;
  store_.Apply(request.mutations, version);
  tracker_.AddCommit(version, std::move(request.write_conflicts));
  version_times_.emplace_back(version, options_.clock->NowMillis());
  last_version_.store(version, std::memory_order_release);
  ++commits_since_prune_;
  MaybePruneLocked();

  stats_.commits_succeeded.fetch_add(1, std::memory_order_relaxed);
  if (fault == FaultInjector::CommitFault::kUnknownApplied) {
    stats_.unknown_results.fetch_add(1, std::memory_order_relaxed);
  }
  if (fault == FaultInjector::CommitFault::kUnknownApplied) {
    return Status::CommitUnknownResult("injected; applied");
  }
  return version;
}

void Database::MaybePruneLocked() {
  if (commits_since_prune_ < 256) return;
  commits_since_prune_ = 0;
  const int64_t cutoff =
      options_.clock->NowMillis() - options_.mvcc_window_millis;
  Version pruned = min_read_version_.load(std::memory_order_relaxed);
  while (!version_times_.empty() && version_times_.front().second < cutoff) {
    pruned = version_times_.front().first;
    version_times_.pop_front();
  }
  if (pruned > min_read_version_.load(std::memory_order_relaxed)) {
    tracker_.Prune(pruned);
    store_.Prune(pruned);
    min_read_version_.store(pruned, std::memory_order_release);
  }
}

Database::Stats Database::GetStats() const {
  Stats out;
  out.grv_calls = stats_.grv_calls.load(std::memory_order_relaxed);
  out.grv_cache_hits = stats_.grv_cache_hits.load(std::memory_order_relaxed);
  out.commits_attempted =
      stats_.commits_attempted.load(std::memory_order_relaxed);
  out.commits_succeeded =
      stats_.commits_succeeded.load(std::memory_order_relaxed);
  out.conflicts = stats_.conflicts.load(std::memory_order_relaxed);
  out.too_old = stats_.too_old.load(std::memory_order_relaxed);
  out.unknown_results =
      stats_.unknown_results.load(std::memory_order_relaxed);
  out.reads = stats_.reads.load(std::memory_order_relaxed);
  return out;
}

size_t Database::LiveKeyCount() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return store_.LiveKeyCount();
}

}  // namespace quick::fdb
