#include "fdb/database.h"

#include <algorithm>
#include <iterator>
#include <thread>

#include "fdb/conflict_tracker.h"
#include "fdb/interval_resolver.h"

namespace quick::fdb {

namespace {

std::unique_ptr<Resolver> MakeResolver(Database::ResolverKind kind) {
  if (kind == Database::ResolverKind::kLegacyLinear) {
    return std::make_unique<ConflictTracker>();
  }
  return std::make_unique<IntervalResolver>();
}

}  // namespace

Database::Database(std::string name) : Database(std::move(name), Options{}) {}

Database::Database(std::string name, Options options)
    : name_(std::move(name)),
      options_(options),
      faults_(options.faults, options.fault_plan, options.clock),
      resolver_(MakeResolver(options.resolver)),
      latency_(options.latency),
      batch_size_hist_(
          MetricsRegistry::Default()->GetHistogram("fdb.commit.batch_size")),
      tracked_commits_gauge_(
          MetricsRegistry::Default()->GetGauge("fdb.resolver.tracked_commits")),
      read_ranges_checked_counter_(MetricsRegistry::Default()->GetCounter(
          "fdb.resolver.read_ranges_checked")),
      resolver_conflicts_counter_(
          MetricsRegistry::Default()->GetCounter("fdb.resolver.conflicts")) {}

void Database::InjectLatency(int64_t micros) {
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
  // Scheduled latency spikes are paid on the cluster's Clock so that a
  // ManualClock advances deterministically (and transactions age) instead
  // of the test blocking in real time.
  const int64_t spike_millis = faults_.ExtraLatencyMillis();
  if (spike_millis > 0) {
    options_.clock->SleepMillis(spike_millis);
  }
}

Result<Version> Database::AcquireReadVersion(const TransactionOptions& topts) {
  if (topts.use_cached_read_version) {
    std::lock_guard<std::mutex> lock(grv_cache_mu_);
    if (cached_grv_ != kInvalidVersion &&
        options_.clock->NowMillis() - cached_grv_time_millis_ <=
            options_.grv_cache_staleness_millis) {
      stats_.grv_cache_hits.fetch_add(1, std::memory_order_relaxed);
      return cached_grv_;
    }
  }
  if (faults_.NextGrvFault()) {
    return Status::Unavailable("injected GRV failure");
  }
  InjectLatency(topts.causal_read_risky
                    ? latency_.grv_causal_read_risky_micros
                    : latency_.grv_micros);
  const Version v = last_version_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lock(grv_cache_mu_);
    cached_grv_ = v;
    cached_grv_time_millis_ = options_.clock->NowMillis();
  }
  stats_.grv_calls.fetch_add(1, std::memory_order_relaxed);
  return v;
}

Result<std::optional<std::string>> Database::ReadAt(const std::string& key,
                                                    Version version) {
  InjectLatency(latency_.read_micros);
  QUICK_RETURN_IF_ERROR(faults_.NextReadFault());
  if (version < min_read_version_.load(std::memory_order_acquire)) {
    return Status::TransactionTooOld("read version pruned");
  }
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lock(mu_);
  return store_.Get(key, version);
}

Result<std::vector<KeyValue>> Database::ReadRangeAt(
    const KeyRange& range, Version version, const RangeOptions& options) {
  InjectLatency(latency_.read_micros);
  QUICK_RETURN_IF_ERROR(faults_.NextReadFault());
  if (version < min_read_version_.load(std::memory_order_acquire)) {
    return Status::TransactionTooOld("read version pruned");
  }
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lock(mu_);
  return store_.GetRange(range, version, options);
}

Status Database::ScanRangeAt(const KeyRange& range, Version version,
                             const RangeOptions& options,
                             const RangeSink& sink) {
  InjectLatency(latency_.read_micros);
  QUICK_RETURN_IF_ERROR(faults_.NextReadFault());
  if (version < min_read_version_.load(std::memory_order_acquire)) {
    return Status::TransactionTooOld("read version pruned");
  }
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lock(mu_);
  store_.ScanRange(range, version, options, sink);
  return Status::OK();
}

Result<Database::CommitOutcome> Database::CommitAt(CommitRequest&& request) {
  stats_.commits_attempted.fetch_add(1, std::memory_order_relaxed);

  PendingCommit pc;
  pc.request = std::move(request);
  pc.fault = faults_.NextCommitFault();
  if (pc.fault == FaultInjector::CommitFault::kUnavailable) {
    return Status::Unavailable("injected commit failure");
  }
  if (pc.fault == FaultInjector::CommitFault::kTooOld) {
    stats_.too_old.fetch_add(1, std::memory_order_relaxed);
    return Status::TransactionTooOld("injected transaction_too_old");
  }

  // Every commit flows through the log pipeline: the replication /
  // log-force round (latency.commit_micros) is a SERIALIZED resource —
  // one round is in flight at a time, led by whichever committer holds
  // the baton. With group commit the leader's round doubles as the
  // batching window: commits arriving during it pile into the queue and
  // are resolved and applied together at one version, so the round is
  // amortized across the batch. With group commit disabled the pipeline
  // degrades to batches of exactly one — every commit pays its own
  // round, which is what a commit log without batching costs.
  const size_t max_batch =
      options_.enable_group_commit
          ? static_cast<size_t>(std::clamp(options_.max_commit_batch, 1, 65535))
          : 1;

  std::unique_lock<std::mutex> qlock(commit_queue_mu_);
  commit_queue_.push_back(&pc);
  while (!pc.done) {
    if (commit_leader_active_) {
      // A leader is mid-round; wait to be resolved by it (or to inherit
      // the baton if it retires before reaching this commit).
      commit_cv_.wait(
          qlock, [&] { return pc.done || !commit_leader_active_; });
      continue;
    }
    // Lead one round: pay the replication latency with the queue
    // unlocked (the batching window), then drain and process one batch.
    commit_leader_active_ = true;
    qlock.unlock();
    InjectLatency(latency_.commit_micros);
    qlock.lock();
    std::vector<PendingCommit*> batch;
    const size_t n = std::min(commit_queue_.size(), max_batch);
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch.push_back(commit_queue_.front());
      commit_queue_.pop_front();
    }
    qlock.unlock();
    {
      std::unique_lock<std::shared_mutex> lock(mu_);
      ProcessBatchLocked(batch);
    }
    qlock.lock();
    // Once `done` flips and the queue mutex is released a follower may
    // return and destroy its PendingCommit — no touching batch members
    // beyond this point. Retiring after a single batch passes the baton:
    // a still-undone waiter wakes on !commit_leader_active_ and leads the
    // next round, so no thread is stuck serving others after its own
    // commit completed.
    for (PendingCommit* p : batch) p->done = true;
    commit_leader_active_ = false;
    commit_cv_.notify_all();
  }
  qlock.unlock();

  if (!pc.status.ok()) return pc.status;
  return pc.outcome;
}

void Database::ProcessBatchLocked(const std::vector<PendingCommit*>& batch) {
  const Version version = last_version_.load(std::memory_order_relaxed) + 1;
  // Write ranges of members already accepted in this batch: a later
  // arrival whose reads overlap them must conflict (its read version
  // necessarily predates the shared batch version).
  IntervalResolver batch_writes;
  std::vector<KeyRange> combined_writes;
  uint16_t order = 0;

  for (PendingCommit* pc : batch) {
    CommitRequest& req = pc->request;
    if (!req.read_conflicts.empty()) {
      read_ranges_checked_counter_->Increment(
          static_cast<int64_t>(req.read_conflicts.size()));
      if (req.read_version < resolver_->MinCheckableVersion()) {
        stats_.too_old.fetch_add(1, std::memory_order_relaxed);
        pc->status =
            Status::TransactionTooOld("read version predates resolver window");
        continue;
      }
      if (resolver_->HasConflict(req.read_conflicts, req.read_version) ||
          batch_writes.HasConflict(req.read_conflicts, req.read_version)) {
        stats_.conflicts.fetch_add(1, std::memory_order_relaxed);
        resolver_conflicts_counter_->Increment();
        pc->status = Status::NotCommitted();
        continue;
      }
    }
    if (pc->fault == FaultInjector::CommitFault::kUnknownDropped) {
      stats_.unknown_results.fetch_add(1, std::memory_order_relaxed);
      pc->status = Status::CommitUnknownResult("injected; not applied");
      continue;
    }

    store_.Apply(req.mutations, version, order);
    if (!req.write_conflicts.empty()) {
      batch_writes.AddCommit(version, req.write_conflicts);
      combined_writes.insert(
          combined_writes.end(),
          std::make_move_iterator(req.write_conflicts.begin()),
          std::make_move_iterator(req.write_conflicts.end()));
    }
    pc->outcome = CommitOutcome{version, order};
    ++order;
    stats_.commits_succeeded.fetch_add(1, std::memory_order_relaxed);
    if (pc->fault == FaultInjector::CommitFault::kUnknownApplied) {
      stats_.unknown_results.fetch_add(1, std::memory_order_relaxed);
      pc->status = Status::CommitUnknownResult("injected; applied");
    }
  }

  batch_size_hist_->Record(static_cast<int64_t>(batch.size()));
  stats_.commit_batches.fetch_add(1, std::memory_order_relaxed);
  if (order > 0) {
    resolver_->AddCommit(version, std::move(combined_writes));
    version_times_.emplace_back(version, options_.clock->NowMillis());
    last_version_.store(version, std::memory_order_release);
    tracked_commits_gauge_->Set(
        static_cast<int64_t>(resolver_->TrackedCount()));
  }
  MaybePruneLocked();
}

void Database::MaybePruneLocked() {
  if (version_times_.empty()) return;
  const int64_t now = options_.clock->NowMillis();
  const int64_t cutoff = now - options_.mvcc_window_millis;
  // O(1) staleness probe: pruning is driven by the MVCC window, not by a
  // commit count — the oldest retained version going stale is what arms
  // the sweep.
  if (version_times_.front().second >= cutoff) return;
  // The store sweep walks every key; rate-limit it to once per quarter
  // window so a high commit rate cannot turn pruning into a per-commit
  // full scan.
  if (now - last_prune_sweep_millis_ < options_.mvcc_window_millis / 4) {
    return;
  }
  last_prune_sweep_millis_ = now;
  Version pruned = min_read_version_.load(std::memory_order_relaxed);
  while (!version_times_.empty() && version_times_.front().second < cutoff) {
    pruned = version_times_.front().first;
    version_times_.pop_front();
  }
  if (pruned > min_read_version_.load(std::memory_order_relaxed)) {
    resolver_->Prune(pruned);
    store_.Prune(pruned);
    min_read_version_.store(pruned, std::memory_order_release);
    tracked_commits_gauge_->Set(
        static_cast<int64_t>(resolver_->TrackedCount()));
  }
}

Database::Stats Database::GetStats() const {
  Stats out;
  out.grv_calls = stats_.grv_calls.load(std::memory_order_relaxed);
  out.grv_cache_hits = stats_.grv_cache_hits.load(std::memory_order_relaxed);
  out.commits_attempted =
      stats_.commits_attempted.load(std::memory_order_relaxed);
  out.commits_succeeded =
      stats_.commits_succeeded.load(std::memory_order_relaxed);
  out.commit_batches = stats_.commit_batches.load(std::memory_order_relaxed);
  out.conflicts = stats_.conflicts.load(std::memory_order_relaxed);
  out.too_old = stats_.too_old.load(std::memory_order_relaxed);
  out.unknown_results =
      stats_.unknown_results.load(std::memory_order_relaxed);
  out.reads = stats_.reads.load(std::memory_order_relaxed);
  return out;
}

size_t Database::LiveKeyCount() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return store_.LiveKeyCount();
}

size_t Database::TotalEntryCount() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return store_.TotalEntryCount();
}

size_t Database::ResolverTrackedCount() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return resolver_->TrackedCount();
}

}  // namespace quick::fdb
