#include "fdb/database.h"

#include <algorithm>
#include <iterator>
#include <limits>
#include <thread>

#include "common/file_io.h"
#include "fdb/checkpoint.h"
#include "fdb/conflict_tracker.h"
#include "fdb/interval_resolver.h"
#include "fdb/wal.h"

namespace quick::fdb {

namespace {

std::unique_ptr<Resolver> MakeResolver(Database::ResolverKind kind) {
  if (kind == Database::ResolverKind::kLegacyLinear) {
    return std::make_unique<ConflictTracker>();
  }
  return std::make_unique<IntervalResolver>();
}

}  // namespace

Database::Database(std::string name) : Database(std::move(name), Options{}) {}

Database::Database(std::string name, Options options)
    : name_(std::move(name)),
      options_(options),
      faults_(options.faults, options.fault_plan, options.clock),
      resolver_(MakeResolver(options.resolver)),
      latency_(options.latency),
      batch_size_hist_(
          MetricsRegistry::Default()->GetHistogram("fdb.commit.batch_size")),
      tracked_commits_gauge_(
          MetricsRegistry::Default()->GetGauge("fdb.resolver.tracked_commits")),
      read_ranges_checked_counter_(MetricsRegistry::Default()->GetCounter(
          "fdb.resolver.read_ranges_checked")),
      resolver_conflicts_counter_(
          MetricsRegistry::Default()->GetCounter("fdb.resolver.conflicts")) {
  if (options_.durability.enable_wal) {
    InitDurability();
  }
}

Database::~Database() {
  std::thread pump;
  {
    std::lock_guard<std::mutex> lock(commit_queue_mu_);
    commit_pump_stop_ = true;
    pump = std::move(commit_pump_);
  }
  commit_cv_.notify_all();
  if (pump.joinable()) pump.join();
}

void Database::InitDurability() {
  const std::string& dir = options_.durability.dir;
  if (dir.empty() || !CreateDirs(dir).ok()) {
    halted_.store(true, std::memory_order_release);
    return;
  }
  Result<RecoveryInfo> recovered = RecoverVersionedStore(dir, &store_);
  if (!recovered.ok()) {
    halted_.store(true, std::memory_order_release);
    return;
  }
  recovery_info_ = std::move(*recovered);
  // Resume exactly at the last durable commit version (invariant 14):
  // allocation, publication, and the GRV floor all restart from it.
  applied_version_.store(recovery_info_.last_durable_version,
                         std::memory_order_relaxed);
  last_version_.store(recovery_info_.last_durable_version,
                      std::memory_order_release);
  durable_checkpoint_version_.store(recovery_info_.checkpoint_version,
                                    std::memory_order_release);
  // Checkpoint entries exist only at the checkpoint version; reads below
  // it would see a hole, so the read floor starts there.
  min_read_version_.store(recovery_info_.checkpoint_version,
                          std::memory_order_release);
  wal_ = std::make_unique<Wal>(dir, recovery_info_.next_wal_seq, &faults_,
                               options_.clock,
                               recovery_info_.segment_max_versions);
  if (!wal_->Open().ok()) {
    halted_.store(true, std::memory_order_release);
  }
}

bool Database::DurabilityDead() const {
  if (halted_.load(std::memory_order_acquire)) return true;
  return wal_ != nullptr && wal_->dead();
}

void Database::InjectLatency(int64_t micros) {
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
  // Scheduled latency spikes are paid on the cluster's Clock so that a
  // ManualClock advances deterministically (and transactions age) instead
  // of the test blocking in real time.
  const int64_t spike_millis = faults_.ExtraLatencyMillis();
  if (spike_millis > 0) {
    options_.clock->SleepMillis(spike_millis);
  }
}

Result<Version> Database::AcquireReadVersion(const TransactionOptions& topts) {
  if (options_.durability.enable_wal && DurabilityDead()) {
    return Status::Unavailable("durable log dead; restart required");
  }
  if (topts.use_cached_read_version) {
    std::lock_guard<std::mutex> lock(grv_cache_mu_);
    if (cached_grv_ != kInvalidVersion &&
        options_.clock->NowMillis() - cached_grv_time_millis_ <=
            options_.grv_cache_staleness_millis) {
      stats_.grv_cache_hits.fetch_add(1, std::memory_order_relaxed);
      return cached_grv_;
    }
  }
  if (faults_.NextGrvFault()) {
    return Status::Unavailable("injected GRV failure");
  }
  InjectLatency(topts.causal_read_risky
                    ? latency_.grv_causal_read_risky_micros
                    : latency_.grv_micros);
  const Version v = last_version_.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lock(grv_cache_mu_);
    cached_grv_ = v;
    cached_grv_time_millis_ = options_.clock->NowMillis();
  }
  stats_.grv_calls.fetch_add(1, std::memory_order_relaxed);
  return v;
}

Result<std::optional<std::string>> Database::ReadAt(const std::string& key,
                                                    Version version) {
  if (options_.durability.enable_wal && DurabilityDead()) {
    return Status::Unavailable("durable log dead; restart required");
  }
  InjectLatency(latency_.read_micros);
  QUICK_RETURN_IF_ERROR(faults_.NextReadFault());
  if (version < min_read_version_.load(std::memory_order_acquire)) {
    return Status::TransactionTooOld("read version pruned");
  }
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lock(mu_);
  return store_.Get(key, version);
}

Result<std::vector<KeyValue>> Database::ReadRangeAt(
    const KeyRange& range, Version version, const RangeOptions& options) {
  if (options_.durability.enable_wal && DurabilityDead()) {
    return Status::Unavailable("durable log dead; restart required");
  }
  InjectLatency(latency_.read_micros);
  QUICK_RETURN_IF_ERROR(faults_.NextReadFault());
  if (version < min_read_version_.load(std::memory_order_acquire)) {
    return Status::TransactionTooOld("read version pruned");
  }
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lock(mu_);
  return store_.GetRange(range, version, options);
}

Status Database::ScanRangeAt(const KeyRange& range, Version version,
                             const RangeOptions& options,
                             const RangeSink& sink) {
  if (options_.durability.enable_wal && DurabilityDead()) {
    return Status::Unavailable("durable log dead; restart required");
  }
  InjectLatency(latency_.read_micros);
  QUICK_RETURN_IF_ERROR(faults_.NextReadFault());
  if (version < min_read_version_.load(std::memory_order_acquire)) {
    return Status::TransactionTooOld("read version pruned");
  }
  stats_.reads.fetch_add(1, std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lock(mu_);
  store_.ScanRange(range, version, options, sink);
  return Status::OK();
}

size_t Database::MaxCommitBatch() const {
  // Every commit flows through the log pipeline: the replication /
  // log-force round (latency.commit_micros) is a SERIALIZED resource —
  // one round is in flight at a time, led by whichever committer holds
  // the baton. With group commit the leader's round doubles as the
  // batching window: commits arriving during it pile into the queue and
  // are resolved and applied together at one version, so the round is
  // amortized across the batch. With group commit disabled the pipeline
  // degrades to batches of exactly one — every commit pays its own
  // round, which is what a commit log without batching costs.
  return options_.enable_group_commit
             ? static_cast<size_t>(
                   std::clamp(options_.max_commit_batch, 1, 65535))
             : 1;
}

Result<CommitOutcome> Database::CommitAt(CommitRequest&& request) {
  if (options_.durability.enable_wal && DurabilityDead()) {
    return Status::Unavailable("durable log dead; restart required");
  }
  stats_.commits_attempted.fetch_add(1, std::memory_order_relaxed);

  PendingCommit pc;
  pc.request = std::move(request);
  pc.fault = faults_.NextCommitFault();
  if (pc.fault == FaultInjector::CommitFault::kUnavailable) {
    return Status::Unavailable("injected commit failure");
  }
  if (pc.fault == FaultInjector::CommitFault::kTooOld) {
    stats_.too_old.fetch_add(1, std::memory_order_relaxed);
    return Status::TransactionTooOld("injected transaction_too_old");
  }

  const size_t max_batch = MaxCommitBatch();
  std::unique_lock<std::mutex> qlock(commit_queue_mu_);
  commit_queue_.push_back(&pc);
  while (!pc.done) {
    if (commit_leader_active_ || pc.claimed) {
      // A leader is mid-round (or this commit is already in an in-flight
      // batch whose leader released the baton before the fsync); wait to
      // be resolved, or to inherit the baton if the leader retires before
      // reaching this commit.
      commit_cv_.wait(qlock, [&] {
        return pc.done || (!commit_leader_active_ && !pc.claimed);
      });
      continue;
    }
    commit_leader_active_ = true;
    LeadOneRound(qlock, max_batch);
  }
  qlock.unlock();

  MaybeAutoCheckpoint();

  if (!pc.status.ok()) return pc.status;
  return pc.outcome;
}

void Database::CommitAsync(CommitRequest&& request, CommitCallback done) {
  if (options_.durability.enable_wal && DurabilityDead()) {
    done(Status::Unavailable("durable log dead; restart required"));
    return;
  }
  stats_.commits_attempted.fetch_add(1, std::memory_order_relaxed);

  const FaultInjector::CommitFault fault = faults_.NextCommitFault();
  if (fault == FaultInjector::CommitFault::kUnavailable) {
    done(Status::Unavailable("injected commit failure"));
    return;
  }
  if (fault == FaultInjector::CommitFault::kTooOld) {
    stats_.too_old.fetch_add(1, std::memory_order_relaxed);
    done(Status::TransactionTooOld("injected transaction_too_old"));
    return;
  }

  auto* pc = new PendingCommit();
  pc->request = std::move(request);
  pc->fault = fault;
  pc->on_done = std::move(done);
  {
    std::lock_guard<std::mutex> lock(commit_queue_mu_);
    commit_queue_.push_back(pc);
    EnsureCommitPumpLocked();
  }
  // Wake the pump (or a parked blocking committer that can inherit the
  // baton and drain this commit into its own batch).
  commit_cv_.notify_all();
}

void Database::LeadOneRound(std::unique_lock<std::mutex>& qlock,
                            size_t max_batch) {
  // Pay the replication latency with the queue unlocked (the batching
  // window), then drain and process one batch.
  qlock.unlock();
  InjectLatency(latency_.commit_micros);
  qlock.lock();
  std::vector<PendingCommit*> batch;
  const size_t n = std::min(commit_queue_.size(), max_batch);
  batch.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    batch.push_back(commit_queue_.front());
    commit_queue_.pop_front();
    batch.back()->claimed = true;
  }
  qlock.unlock();
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    ProcessBatchLocked(batch);
  }
  std::vector<PendingCommit*> async_done;
  if (wal_ == nullptr) {
    // In-memory mode: the apply pass is the commit point.
    qlock.lock();
    FinishMembersLocked(batch, &async_done);
    commit_leader_active_ = false;
    commit_cv_.notify_all();
    qlock.unlock();
    FireCallbacks(&async_done);
    qlock.lock();
    return;
  }
  // Pipelined durability: the batch is framed as one WAL record and
  // appended while this thread still holds the baton — the baton
  // serializes appends, so the log sees batches in version order —
  // but the baton is released BEFORE the fsync, so the next leader's
  // append overlaps this batch's sync and one group fsync covers every
  // batch appended behind it. No member is acked before its record is on
  // stable storage and the replication fence has acked (invariant 15: no
  // ack before fsync).
  WalBatchRef ref;
  uint64_t log_end = 0;
  const Status append_st = AppendBatchToWal(batch, &ref, &log_end);
  qlock.lock();
  commit_leader_active_ = false;
  commit_cv_.notify_all();
  qlock.unlock();
  FinishBatchDurable(batch, ref, log_end, append_st);
  qlock.lock();
  // Once `done` flips and the queue mutex is released a follower may
  // return and destroy its PendingCommit — no touching sync batch
  // members beyond this point.
  FinishMembersLocked(batch, &async_done);
  commit_cv_.notify_all();
  qlock.unlock();
  FireCallbacks(&async_done);
  qlock.lock();
}

void Database::FinishMembersLocked(const std::vector<PendingCommit*>& batch,
                                   std::vector<PendingCommit*>* async_done) {
  for (PendingCommit* pc : batch) {
    if (pc->on_done) {
      async_done->push_back(pc);
    } else {
      pc->done = true;
    }
  }
}

void Database::FireCallbacks(std::vector<PendingCommit*>* async_done) {
  for (PendingCommit* pc : *async_done) {
    CommitCallback cb = std::move(pc->on_done);
    Result<CommitOutcome> result =
        pc->status.ok() ? Result<CommitOutcome>(pc->outcome)
                        : Result<CommitOutcome>(pc->status);
    delete pc;
    cb(std::move(result));
  }
  async_done->clear();
}

void Database::EnsureCommitPumpLocked() {
  if (commit_pump_started_ || commit_pump_stop_) return;
  commit_pump_started_ = true;
  commit_pump_ = std::thread([this] { CommitPumpLoop(); });
}

void Database::CommitPumpLoop() {
  const size_t max_batch = MaxCommitBatch();
  std::unique_lock<std::mutex> qlock(commit_queue_mu_);
  for (;;) {
    commit_cv_.wait(qlock, [&] {
      return commit_pump_stop_ ||
             (!commit_queue_.empty() && !commit_leader_active_);
    });
    if (commit_pump_stop_) break;
    commit_leader_active_ = true;
    LeadOneRound(qlock, max_batch);
    qlock.unlock();
    MaybeAutoCheckpoint();
    qlock.lock();
  }
  // Shutdown: fail whatever async commits are still queued so their
  // callbacks (and the state they own) are released. Blocking commits
  // left in the queue belong to live threads inside CommitAt, which will
  // inherit the baton once commit_leader_active_ clears.
  std::vector<PendingCommit*> orphaned;
  for (auto it = commit_queue_.begin(); it != commit_queue_.end();) {
    if ((*it)->on_done && !(*it)->claimed) {
      orphaned.push_back(*it);
      it = commit_queue_.erase(it);
    } else {
      ++it;
    }
  }
  qlock.unlock();
  for (PendingCommit* pc : orphaned) {
    CommitCallback cb = std::move(pc->on_done);
    delete pc;
    cb(Status::Unavailable("database shutting down"));
  }
}

Status Database::AppendBatchToWal(const std::vector<PendingCommit*>& batch,
                                  WalBatchRef* ref, uint64_t* log_end) {
  for (PendingCommit* pc : batch) {
    if (pc->outcome.version == kInvalidVersion) continue;  // not applied
    ref->version = pc->outcome.version;
    ref->members.emplace_back(pc->outcome.batch_order, &pc->request.mutations);
  }
  if (ref->members.empty()) return Status::OK();
  Result<uint64_t> end = wal_->AppendBatch(*ref);
  if (!end.ok()) return end.status();
  *log_end = *end;
  return Status::OK();
}

void Database::FinishBatchDurable(const std::vector<PendingCommit*>& batch,
                                  const WalBatchRef& ref, uint64_t log_end,
                                  Status append_status) {
  if (ref.members.empty()) return;
  Status st = std::move(append_status);
  if (st.ok()) st = wal_->SyncTo(log_end);
  if (st.ok() && options_.durability.commit_fence) {
    // Replication fence (invariant 17): the control plane must confirm
    // this region still owns the current epoch before the batch is acked
    // or its version published. A sealed epoch means a failover happened
    // while the batch was in flight — halt, fencing the zombie primary
    // for good; a mere control-plane partition only demotes the batch
    // (the zombie keeps serving, its acks withheld).
    st = options_.durability.commit_fence(ref.version);
    if (st.code() == StatusCode::kFailedPrecondition) {
      halted_.store(true, std::memory_order_release);
    }
  }
  if (st.ok()) {
    // Publish with a fetch-max: pipelined group fsyncs complete out of
    // order across leaders, and publication must never move backwards.
    Version cur = last_version_.load(std::memory_order_relaxed);
    while (cur < ref.version &&
           !last_version_.compare_exchange_weak(cur, ref.version,
                                                std::memory_order_release,
                                                std::memory_order_relaxed)) {
    }
    return;
  }
  // The batch applied in memory but its durability or fence failed; the
  // version was never published, so no reader saw it. Each accepted
  // member's outcome is genuinely unknown — recovery (or the promoted
  // replica) may or may not surface it.
  for (PendingCommit* pc : batch) {
    if (pc->outcome.version == kInvalidVersion) continue;
    if (pc->status.ok()) {
      stats_.unknown_results.fetch_add(1, std::memory_order_relaxed);
    }
    pc->status = Status::CommitUnknownResult(
        "applied in memory but not confirmed: " + st.message());
  }
}

void Database::MaybeAutoCheckpoint() {
  if (wal_ == nullptr) return;
  const int64_t interval = options_.durability.checkpoint_interval_bytes;
  if (interval <= 0 || DurabilityDead()) return;
  if (wal_->CurrentSegmentBytes() < interval) return;
  // Best effort: a concurrent checkpoint (or a fault inside this one)
  // surfaces through Checkpoint()'s own status; commits never fail on it.
  (void)Checkpoint();
}

Result<Version> Database::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("durability is disabled");
  }
  if (DurabilityDead()) {
    return Status::Unavailable("durable log dead; restart required");
  }
  bool expected = false;
  if (!checkpoint_in_progress_.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    return Status::FailedPrecondition("checkpoint already in progress");
  }
  struct ClearFlag {
    std::atomic<bool>* flag;
    ~ClearFlag() { flag->store(false, std::memory_order_release); }
  } clear_flag{&checkpoint_in_progress_};

  // Snapshot at the published (== durable) version. The prune floor is
  // clamped at the previous checkpoint version, which cannot advance
  // while this checkpoint is in flight, so `snapshot` stays readable
  // across the shared-lock gaps between chunks.
  const Version snapshot = last_version_.load(std::memory_order_acquire);
  // Nothing committed since the last checkpoint: writing again would
  // target the same CHECKPOINT-<version> file, and a write fault there
  // would clobber the only valid checkpoint after its WAL coverage has
  // been retired. The existing file already covers `snapshot` exactly.
  if (snapshot == durable_checkpoint_version_.load(std::memory_order_acquire)) {
    return snapshot;
  }
  CheckpointBuilder builder(snapshot);
  std::string resume_key;
  std::vector<KeyValue> chunk;
  bool exhausted = false;
  while (!exhausted) {
    chunk.clear();
    {
      std::shared_lock<std::shared_mutex> lock(mu_);
      exhausted = store_.CollectSnapshotChunk(
          snapshot, &resume_key, options_.durability.checkpoint_chunk_keys,
          &chunk);
    }
    for (const KeyValue& kv : chunk) builder.Add(kv.key, kv.value);
  }
  const int64_t keys = builder.key_count();
  std::string blob = builder.Finish();
  const std::string path =
      options_.durability.dir + "/" + CheckpointFileName(snapshot);

  // Scheduled checkpoint-write faults model the process dying mid-
  // checkpoint. Crucially the WAL is NOT rolled and nothing is retired:
  // recovery skips the invalid file, falls back to the previous
  // checkpoint, and replays the intact log.
  if (std::optional<DiskFault> fault =
          faults_.NextDiskFault(DiskFault::Op::kCheckpointWrite)) {
    switch (fault->kind) {
      case DiskFault::Kind::kFsyncStall:
        options_.clock->SleepMillis(fault->stall_millis);
        break;
      case DiskFault::Kind::kTornWrite: {
        const size_t keep =
            fault->torn_bytes >= 0
                ? std::min<size_t>(static_cast<size_t>(fault->torn_bytes),
                                   blob.size())
                : blob.size() / 2;
        (void)AtomicWriteFile(path, std::string_view(blob).substr(0, keep));
        halted_.store(true, std::memory_order_release);
        return Status::Unavailable("injected torn checkpoint write");
      }
      case DiskFault::Kind::kChecksumCorruption: {
        if (!blob.empty()) {
          const size_t at = std::min<size_t>(
              static_cast<size_t>(std::max<int64_t>(fault->corrupt_offset, 0)),
              blob.size() - 1);
          blob[at] = static_cast<char>(blob[at] ^ 1);
        }
        (void)AtomicWriteFile(path, blob);
        halted_.store(true, std::memory_order_release);
        return Status::Unavailable("injected corrupt checkpoint write");
      }
    }
  }

  Status st = AtomicWriteFile(path, blob);
  if (!st.ok()) {
    halted_.store(true, std::memory_order_release);
    return st;
  }
  // The checkpoint is durable: roll to a fresh segment and retire every
  // closed segment (and older checkpoint) it fully covers.
  st = wal_->RollSegment(snapshot);
  if (!st.ok()) {
    halted_.store(true, std::memory_order_release);
    return st;
  }
  durable_checkpoint_version_.store(snapshot, std::memory_order_release);
  RetireOldCheckpoints(options_.durability.dir, snapshot);
  checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
  checkpoint_keys_written_.fetch_add(keys, std::memory_order_relaxed);
  return snapshot;
}

void Database::ProcessBatchLocked(const std::vector<PendingCommit*>& batch) {
  // Allocation runs on applied_version_, not the published last_version_:
  // with the WAL on, the batch applies in memory here but last_version_
  // (what GRVs hand out) only advances after the record is fsynced, so
  // no reader ever observes a not-yet-durable version.
  const Version version =
      applied_version_.load(std::memory_order_relaxed) + 1;
  // Write ranges of members already accepted in this batch: a later
  // arrival whose reads overlap them must conflict (its read version
  // necessarily predates the shared batch version).
  IntervalResolver batch_writes;
  std::vector<KeyRange> combined_writes;
  uint16_t order = 0;

  for (PendingCommit* pc : batch) {
    CommitRequest& req = pc->request;
    if (!req.read_conflicts.empty()) {
      read_ranges_checked_counter_->Increment(
          static_cast<int64_t>(req.read_conflicts.size()));
      if (req.read_version < resolver_->MinCheckableVersion()) {
        stats_.too_old.fetch_add(1, std::memory_order_relaxed);
        pc->status =
            Status::TransactionTooOld("read version predates resolver window");
        continue;
      }
      if (resolver_->HasConflict(req.read_conflicts, req.read_version) ||
          batch_writes.HasConflict(req.read_conflicts, req.read_version)) {
        stats_.conflicts.fetch_add(1, std::memory_order_relaxed);
        resolver_conflicts_counter_->Increment();
        pc->status = Status::NotCommitted();
        continue;
      }
    }
    if (pc->fault == FaultInjector::CommitFault::kUnknownDropped) {
      stats_.unknown_results.fetch_add(1, std::memory_order_relaxed);
      pc->status = Status::CommitUnknownResult("injected; not applied");
      continue;
    }

    store_.Apply(req.mutations, version, order);
    if (!req.write_conflicts.empty()) {
      batch_writes.AddCommit(version, req.write_conflicts);
      combined_writes.insert(
          combined_writes.end(),
          std::make_move_iterator(req.write_conflicts.begin()),
          std::make_move_iterator(req.write_conflicts.end()));
    }
    pc->outcome = CommitOutcome{version, order};
    ++order;
    stats_.commits_succeeded.fetch_add(1, std::memory_order_relaxed);
    if (pc->fault == FaultInjector::CommitFault::kUnknownApplied) {
      stats_.unknown_results.fetch_add(1, std::memory_order_relaxed);
      pc->status = Status::CommitUnknownResult("injected; applied");
    }
  }

  batch_size_hist_->Record(static_cast<int64_t>(batch.size()));
  stats_.commit_batches.fetch_add(1, std::memory_order_relaxed);
  if (order > 0) {
    resolver_->AddCommit(version, std::move(combined_writes));
    version_times_.emplace_back(version, options_.clock->NowMillis());
    applied_version_.store(version, std::memory_order_relaxed);
    if (wal_ == nullptr) {
      // In-memory mode acknowledges immediately; with the WAL the leader
      // publishes after the fsync (AppendBatchDurable).
      last_version_.store(version, std::memory_order_release);
    }
    tracked_commits_gauge_->Set(
        static_cast<int64_t>(resolver_->TrackedCount()));
  }
  MaybePruneLocked();
}

void Database::MaybePruneLocked() {
  if (version_times_.empty()) return;
  const int64_t now = options_.clock->NowMillis();
  const int64_t cutoff = now - options_.mvcc_window_millis;
  // O(1) staleness probe: pruning is driven by the MVCC window, not by a
  // commit count — the oldest retained version going stale is what arms
  // the sweep.
  if (version_times_.front().second >= cutoff) return;
  // The store sweep walks every key; rate-limit it to once per quarter
  // window so a high commit rate cannot turn pruning into a per-commit
  // full scan.
  if (now - last_prune_sweep_millis_ < options_.mvcc_window_millis / 4) {
    return;
  }
  last_prune_sweep_millis_ = now;
  // With the WAL on, the floor never passes the last durable checkpoint:
  // the chunked checkpoint writer reads at a snapshot version above it
  // between shared-lock chunks, and pruning past that snapshot would
  // erase entries the snapshot still needs. Entries beyond the clamp stay
  // queued in version_times_ for the sweep after the next checkpoint.
  const Version prune_limit =
      wal_ == nullptr
          ? std::numeric_limits<Version>::max()
          : durable_checkpoint_version_.load(std::memory_order_acquire);
  Version pruned = min_read_version_.load(std::memory_order_relaxed);
  while (!version_times_.empty() && version_times_.front().second < cutoff &&
         version_times_.front().first <= prune_limit) {
    pruned = version_times_.front().first;
    version_times_.pop_front();
  }
  if (pruned > min_read_version_.load(std::memory_order_relaxed)) {
    resolver_->Prune(pruned);
    store_.Prune(pruned);
    min_read_version_.store(pruned, std::memory_order_release);
    tracked_commits_gauge_->Set(
        static_cast<int64_t>(resolver_->TrackedCount()));
  }
}

Database::Stats Database::GetStats() const {
  Stats out;
  out.grv_calls = stats_.grv_calls.load(std::memory_order_relaxed);
  out.grv_cache_hits = stats_.grv_cache_hits.load(std::memory_order_relaxed);
  out.commits_attempted =
      stats_.commits_attempted.load(std::memory_order_relaxed);
  out.commits_succeeded =
      stats_.commits_succeeded.load(std::memory_order_relaxed);
  out.commit_batches = stats_.commit_batches.load(std::memory_order_relaxed);
  out.conflicts = stats_.conflicts.load(std::memory_order_relaxed);
  out.too_old = stats_.too_old.load(std::memory_order_relaxed);
  out.unknown_results =
      stats_.unknown_results.load(std::memory_order_relaxed);
  out.reads = stats_.reads.load(std::memory_order_relaxed);
  if (wal_ != nullptr) {
    const Wal::Stats ws = wal_->GetStats();
    out.wal_appends = ws.appends;
    out.wal_appended_bytes = ws.appended_bytes;
    out.wal_syncs = ws.syncs;
    out.wal_fsyncs_coalesced = ws.fsyncs_coalesced;
    out.wal_segments_created = ws.segments_created;
    out.wal_segments_deleted = ws.segments_deleted;
  }
  out.checkpoints_written =
      checkpoints_written_.load(std::memory_order_relaxed);
  out.checkpoint_keys_written =
      checkpoint_keys_written_.load(std::memory_order_relaxed);
  return out;
}

size_t Database::LiveKeyCount() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return store_.LiveKeyCount();
}

size_t Database::TotalEntryCount() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return store_.TotalEntryCount();
}

size_t Database::ResolverTrackedCount() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return resolver_->TrackedCount();
}

}  // namespace quick::fdb
