#ifndef QUICK_COMMON_CRC32_H_
#define QUICK_COMMON_CRC32_H_

#include <cstdint>
#include <string_view>

namespace quick {

/// CRC-32C (Castagnoli, the polynomial used by iSCSI, ext4, and LevelDB's
/// log format). Software table implementation — fast enough for the WAL's
/// per-batch records, and portable.
///
/// Incremental use: crc = Crc32cExtend(crc, chunk) over successive chunks,
/// starting from Crc32cInit() and finishing with Crc32cFinish(crc).
/// One-shot use: Crc32c(data).

uint32_t Crc32cInit();
uint32_t Crc32cExtend(uint32_t state, std::string_view data);
uint32_t Crc32cFinish(uint32_t state);

/// One-shot CRC-32C of `data`.
uint32_t Crc32c(std::string_view data);

}  // namespace quick

#endif  // QUICK_COMMON_CRC32_H_
