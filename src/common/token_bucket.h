#ifndef QUICK_COMMON_TOKEN_BUCKET_H_
#define QUICK_COMMON_TOKEN_BUCKET_H_

#include <algorithm>
#include <cstdint>

#include "common/clock.h"

namespace quick {

/// A classic token bucket on the Clock abstraction: `burst` tokens of
/// capacity refilled at `rate_per_sec`. Deterministic under ManualClock.
///
/// Not thread-safe: callers (AdmissionController) serialize access under
/// their own mutex so a hierarchy of buckets is charged atomically.
class TokenBucket {
 public:
  TokenBucket(double burst, double rate_per_sec, Clock* clock)
      : burst_(burst),
        rate_per_sec_(rate_per_sec),
        tokens_(burst),
        clock_(clock),
        last_refill_micros_(clock->NowMicros()) {}

  /// Takes `n` tokens if available. A non-positive rate disables the
  /// bucket (always admits), so a hierarchy level can be left unlimited.
  bool TryAcquire(double n = 1.0) {
    if (rate_per_sec_ <= 0) return true;
    Refill();
    if (tokens_ + 1e-9 >= n) {
      tokens_ -= n;
      return true;
    }
    return false;
  }

  /// Milliseconds until `n` tokens will have accumulated, suitable as a
  /// retry-after hint. Zero when the tokens are already there.
  int64_t RetryAfterMillis(double n = 1.0) {
    if (rate_per_sec_ <= 0) return 0;
    Refill();
    const double missing = n - tokens_;
    if (missing <= 0) return 0;
    return static_cast<int64_t>(missing * 1000.0 / rate_per_sec_) + 1;
  }

  /// Returns tokens taken by a speculative TryAcquire that was rolled back
  /// (e.g. the tenant bucket admitted but the cluster bucket refused).
  void Return(double n) {
    if (rate_per_sec_ <= 0) return;
    tokens_ = std::min(burst_, tokens_ + n);
  }

  double Available() {
    if (rate_per_sec_ <= 0) return burst_;
    Refill();
    return tokens_;
  }

  double rate_per_sec() const { return rate_per_sec_; }
  double burst() const { return burst_; }

 private:
  void Refill() {
    const int64_t now = clock_->NowMicros();
    if (now <= last_refill_micros_) return;
    const double elapsed_sec = (now - last_refill_micros_) * 1e-6;
    tokens_ = std::min(burst_, tokens_ + elapsed_sec * rate_per_sec_);
    last_refill_micros_ = now;
  }

  double burst_;
  double rate_per_sec_;
  double tokens_;
  Clock* clock_;
  int64_t last_refill_micros_;
};

}  // namespace quick

#endif  // QUICK_COMMON_TOKEN_BUCKET_H_
